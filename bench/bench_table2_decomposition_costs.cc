/**
 * @file
 * Table 2 — costs of two-qubit operations by native gate, regenerated
 * computationally with the numeric decomposer: for discrete native
 * gates, the minimum application count reaching >= 99.9% fidelity
 * (sqrt(iSWAP) applications cost 0.5 each); for the parametrized
 * CR(theta) gate, the COBYLA-style minimum of sum(|theta|)/90deg
 * under the same fidelity constraint.
 *
 * Paper reference values (Table 2):
 *   operation     CNOT CR90 iSWAP bSWAP MAP  sqrt(iSWAP) CR(theta)
 *   CNOT           1    1    2     2    1    1           1
 *   SWAP           3    3    3     3    3    1.5         3
 *   ZZ(theta)      2    2    2     2    2    1           theta/90
 *   FermionicSim   3    3    3     3    3    1.5         3
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "synth/decomposer.h"

using namespace qpulse;

namespace {

struct TargetRow
{
    const char *name;
    Matrix matrix;
    double paper[7]; // CNOT, CR90, iSWAP, bSWAP, MAP, sqrtISWAP, CRtheta.
};

std::string
costCell(const Decomposition &result)
{
    if (!result.feasible)
        return ">3";
    return fmtFixed(result.cost, 2) + " (F=" +
           fmtFixed(result.fidelity, 4) + ")";
}

} // namespace

int
main()
{
    bench::banner(
        "Table 2: two-qubit decomposition costs by native gate",
        "parity across discrete gates; sqrt(iSWAP) halves costs; "
        "CR(theta) makes ZZ(theta) cost theta/90");

    const std::vector<NativeGate> natives = {
        nativeCnot(),   nativeCr90(), nativeIswap(), nativeBswap(),
        nativeMap(),    nativeSqrtIswap(), nativeCrTheta()};

    // The ZZ row uses a generic angle (60 deg): exactly at 90 deg the
    // ZZ interaction degenerates into the CNOT/CZ class and a single
    // CNOT suffices, which is not the regime the table is about. The
    // paper's circuit has a free Rz(theta), i.e. generic theta.
    std::vector<TargetRow> targets;
    targets.push_back({"CNOT", targetCnot(), {1, 1, 2, 2, 1, 1, 1}});
    targets.push_back({"SWAP", targetSwap(), {3, 3, 3, 3, 3, 1.5, 3}});
    targets.push_back({"ZZ(60deg)", targetZzInteraction(deg(60)),
                       {2, 2, 2, 2, 2, 1, 60.0 / 90.0}});
    targets.push_back({"FermionicSim", targetFermionicSimulation(),
                       {3, 3, 3, 3, 3, 1.5, 3}});

    DecomposerOptions options;
    options.maxApplications = 3;
    options.restartsPerLayer = 14;

    TextTable table({"operation", "native", "paper cost",
                     "measured cost"});
    for (const auto &target : targets) {
        for (std::size_t n = 0; n < natives.size(); ++n) {
            DecomposerOptions opt_for = options;
            if (natives[n].parametrized)
                opt_for.restartsPerLayer = 10;
            const Decomposition result =
                decompose(target.matrix, natives[n], opt_for);
            table.addRow({target.name, natives[n].name,
                          fmtFixed(target.paper[n], 1),
                          costCell(result)});
            std::printf("  %-13s via %-12s -> %s\n", target.name,
                        natives[n].name.c_str(),
                        costCell(result).c_str());
            std::fflush(stdout);
        }
    }
    std::printf("\n%s\n", table.render().c_str());

    // The headline of Section 6: ZZ(theta) cost scales linearly with
    // theta under the parametrized CR gate.
    std::printf("ZZ(theta) via CR(theta) cost sweep "
                "(paper: theta/90deg):\n");
    TextTable sweep({"theta (deg)", "paper cost", "measured cost",
                     "fidelity"});
    for (double degrees : {22.5, 45.0, 67.5, 90.0}) {
        DecomposerOptions opt_for = options;
        opt_for.maxApplications = 1;
        opt_for.restartsPerLayer = 10;
        const Decomposition result = decompose(
            targetZzInteraction(deg(degrees)), nativeCrTheta(), opt_for);
        sweep.addRow({fmtFixed(degrees, 1), fmtFixed(degrees / 90.0, 3),
                      result.feasible ? fmtFixed(result.cost, 3) : ">1",
                      fmtFixed(result.fidelity, 4)});
    }
    std::printf("%s\n", sweep.render().c_str());
    return 0;
}
