/**
 * @file
 * Figure 4 — pulse schedules for the X gate: standard compilation
 * (two Rx(90) pulses, 71.1 ns) vs direct compilation (one Rx(180)
 * pulse, 35.6 ns), including the equal-area argument and the measured
 * pulse-level fidelity/error of both realisations.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

using namespace qpulse;

int
main()
{
    bench::banner("Figure 4: X-gate pulse schedules, standard vs direct",
                  "standard X = 71.1 ns (2 pulses); DirectX = 35.6 ns "
                  "(1 pulse), 2x faster, ~2x lower error");

    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    const PulseCompiler standard(backend, CompileMode::Standard);
    const PulseCompiler optimized(backend, CompileMode::Optimized);

    QuantumCircuit circuit(2);
    circuit.x(0);
    const CompileResult std_result = standard.compile(circuit);
    const CompileResult opt_result = optimized.compile(circuit);

    std::printf("\nstandard schedule:\n%s",
                std_result.schedule.render().c_str());
    std::printf("optimized schedule:\n%s\n",
                opt_result.schedule.render().c_str());

    // Area-under-curve equality (the logical-equivalence argument).
    const double std_area = std_result.schedule.totalAbsArea();
    const double opt_area = opt_result.schedule.totalAbsArea();

    // Pulse-level fidelity of both realisations.
    Calibrator calibrator(config);
    PulseSimulator sim = calibrator.pairSimulator(0, 1);
    const Matrix target = gates::embed1q(gates::x(), 0, 2);
    const double std_fid =
        bench::scheduleFidelity2q(sim, std_result.schedule, target);
    const double opt_fid =
        bench::scheduleFidelity2q(sim, opt_result.schedule, target);

    TextTable table({"flow", "pulses", "duration (dt)", "duration (ns)",
                     "paper (ns)", "|area|", "coherent error"});
    table.addRow({"standard X", std::to_string(std_result.pulseCount),
                  std::to_string(std_result.durationDt),
                  fmtFixed(std_result.durationNs(), 1), "71.1",
                  fmtFixed(std_area, 2), fmtFixed(1.0 - std_fid, 6)});
    table.addRow({"DirectX", std::to_string(opt_result.pulseCount),
                  std::to_string(opt_result.durationDt),
                  fmtFixed(opt_result.durationNs(), 1), "35.6",
                  fmtFixed(opt_area, 2), fmtFixed(1.0 - opt_fid, 6)});
    std::printf("%s\n", table.render().c_str());

    std::printf("speedup: %.2fx (paper: 2x)\n",
                static_cast<double>(std_result.durationDt) /
                    static_cast<double>(opt_result.durationDt));
    std::printf("error ratio (standard/direct): %.2fx (paper: ~2x)\n",
                (1.0 - std_fid) / std::max(1.0 - opt_fid, 1e-12));
    std::printf("area ratio: %.4f (equal area => same rotation)\n",
                std_area / opt_area);
    return 0;
}
