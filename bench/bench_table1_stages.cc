/**
 * @file
 * Table 1 — the four stages of a quantum compiler, demonstrated by
 * lowering the same program through each stage: programming-language
 * level (a QFT call), assembly (1-2 qubit gates), basis gates
 * (hardware-aware set, both flows) and the final pulse schedule.
 */
#include <cstdio>

#include "algos/circuits.h"
#include "bench_util.h"
#include "common/table.h"

using namespace qpulse;

int
main()
{
    bench::banner("Table 1: the four stages of a quantum compiler",
                  "PL -> assembly -> basis gates -> pulse schedule");

    // Stage 1: programming language. qft(qc) on 2 qubits.
    const QuantumCircuit assembly = qftCircuit(2);
    std::printf("\n[stage 1] programming language: qft(qc) on 2 qubits\n");

    // Stage 2: assembly (1-2 qubit gates, hardware-agnostic).
    std::printf("\n[stage 2] assembly (%zu gates):\n%s", assembly.size(),
                assembly.toString().c_str());

    // Stage 3: basis gates under both flows.
    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    const PulseCompiler standard(backend, CompileMode::Standard);
    const PulseCompiler optimized(backend, CompileMode::Optimized);
    const QuantumCircuit std_basis = standard.transpile(assembly);
    const QuantumCircuit opt_basis = optimized.transpile(assembly);
    std::printf("\n[stage 3] standard basis gates (%zu gates):\n%s",
                std_basis.size(), std_basis.toString().c_str());
    std::printf("\n[stage 3'] augmented basis gates (%zu gates):\n%s",
                opt_basis.size(), opt_basis.toString().c_str());

    // Stage 4: pulse schedules.
    const CompileResult std_result = standard.compile(assembly);
    const CompileResult opt_result = optimized.compile(assembly);
    std::printf("\n[stage 4] standard pulse schedule:\n%s",
                std_result.schedule.render().c_str());
    std::printf("\n[stage 4'] optimized pulse schedule:\n%s",
                opt_result.schedule.render().c_str());

    TextTable table({"flow", "basis gates", "pulses", "frame changes",
                     "duration (dt)", "duration (ns)"});
    table.addRow({"standard", std::to_string(std_basis.size()),
                  std::to_string(std_result.pulseCount),
                  std::to_string(std_result.frameChangeCount),
                  std::to_string(std_result.durationDt),
                  fmtFixed(std_result.durationNs(), 1)});
    table.addRow({"optimized", std::to_string(opt_basis.size()),
                  std::to_string(opt_result.pulseCount),
                  std::to_string(opt_result.frameChangeCount),
                  std::to_string(opt_result.durationDt),
                  fmtFixed(opt_result.durationNs(), 1)});
    std::printf("\n%s\n", table.render().c_str());
    return 0;
}
