/**
 * @file
 * Ablation — the three error sources of Section 8.3, isolated. The
 * CH4-dynamics benchmark runs under both flows with each noise-model
 * component (duration-proportional decoherence, per-calibrated-pulse
 * error, amplitude-dependent leakage) switched off in turn, showing
 * how much of the total error — and of the optimized flow's advantage
 * — each source carries.
 */
#include <cstdio>

#include "algos/circuits.h"
#include "algos/hamiltonians.h"
#include "bench_util.h"
#include "common/table.h"
#include "metrics/metrics.h"
#include "noisesim/statevector.h"

using namespace qpulse;

namespace {

double
runWith(const PulseCompiler &compiler, const QuantumCircuit &circuit,
        const std::vector<double> &ideal, const NoiseSwitches &switches,
        Rng &rng)
{
    DensitySimulator simulator = compiler.makeSimulator();
    simulator.setSwitches(switches);
    QuantumCircuit measured = circuit;
    measured.measureAll();
    const NoisyRunResult run =
        simulator.run(compiler.transpile(measured));
    const auto counts = simulator.sampleCounts(run, 8000, rng);
    return hellingerDistance(countsToProbabilities(counts), ideal);
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation: the three fidelity-improvement sources (Section 8.3)",
        "shorter pulses / fewer calibrated pulses / smaller amplitudes "
        "each contribute; shorter pulses dominate (~70%)");

    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    const PulseCompiler standard(backend, CompileMode::Standard);
    const PulseCompiler optimized(backend, CompileMode::Optimized);

    const QuantumCircuit circuit =
        trotterCircuit(methaneHamiltonian(), 1.0, 6);
    const std::vector<double> ideal = idealDistribution(circuit);
    Rng rng(0xAB1);

    struct Config
    {
        const char *label;
        NoiseSwitches switches;
    };
    std::vector<Config> configs;
    configs.push_back({"all sources on", {true, true, true}});
    configs.push_back({"no decoherence", {false, true, true}});
    configs.push_back({"no per-pulse error", {true, false, true}});
    configs.push_back({"no amplitude error", {true, true, false}});
    configs.push_back({"decoherence only", {true, false, false}});
    configs.push_back({"noise-free", {false, false, false}});

    TextTable table({"noise model", "std error", "opt error",
                     "opt advantage"});
    double full_advantage = 0.0, no_decoherence_advantage = 0.0;
    for (const auto &entry : configs) {
        const double std_err =
            runWith(standard, circuit, ideal, entry.switches, rng);
        const double opt_err =
            runWith(optimized, circuit, ideal, entry.switches, rng);
        const double advantage = std_err - opt_err;
        if (std::string(entry.label) == "all sources on")
            full_advantage = advantage;
        if (std::string(entry.label) == "no decoherence")
            no_decoherence_advantage = advantage;
        table.addRow({entry.label, fmtPercent(std_err, 1),
                      fmtPercent(opt_err, 1),
                      fmtPercent(advantage, 1)});
    }
    std::printf("%s\n", table.render().c_str());

    const double share =
        full_advantage > 0.0
            ? 1.0 - no_decoherence_advantage / full_advantage
            : 0.0;
    std::printf("share of the optimized-flow advantage from shorter "
                "schedules (decoherence): %.0f%% (paper attributes "
                "~70%% of RB gains to shorter pulses)\n",
                100.0 * share);
    return 0;
}
