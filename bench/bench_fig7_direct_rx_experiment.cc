/**
 * @file
 * Figure 7 — "experimental" DirectRx(theta) characterization: the
 * same 41-angle sweep as Figure 6 but under experimental conditions —
 * a drifted device (small detuning and amplitude miscalibration since
 * the last daily calibration) and 1000-shot sampled tomography per
 * axis (3 x 41 x 1000 = 123k shots). The X-component deviations come
 * out larger than simulation and translated, as the paper observed,
 * and the empirical dephasing table enables per-angle phase
 * correction.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "metrics/metrics.h"

using namespace qpulse;

int
main()
{
    bench::banner(
        "Figure 7: experimental DirectRx(theta) characterization "
        "(123k shots)",
        "X deviations sinusoidal, translated and larger than "
        "simulation; usable as an empirical phase-correction table");

    BackendConfig config = almadenLineConfig(1);
    Calibrator calibrator(config);
    const QubitCalibration cal = calibrator.calibrateQubit(0);

    // Experimental drift since the daily calibration: the qubit
    // frequency moved by 40 kHz and the amplitude drifted 0.3%.
    BackendConfig drifted = config;
    drifted.qubits[0].frequencyGhz += 40e-6;
    Calibrator drift_cal(drifted);
    PulseSimulator sim(drift_cal.qubitModel(0));
    // The drive stays at the *calibrated* frequency: model by giving
    // the drive a -40 kHz sideband relative to the drifted qubit.
    const double detuning_ghz = -40e-6;
    const double amp_drift = 0.997;

    Rng rng(0xF16);
    Vector ground(3);
    ground[0] = Complex{1.0, 0.0};

    long total_shots = 0;
    TextTable table({"theta (deg)", "X (sampled)", "Y", "Z",
                     "phase corr. (rad)"});
    double max_dev = 0.0;
    for (int k = 0; k <= 40; ++k) {
        const double scale =
            amp_drift * static_cast<double>(k) / 40.0;
        Schedule schedule("direct-rx-exp");
        if (k > 0)
            schedule.play(
                driveChannel(0),
                std::make_shared<SidebandWaveform>(
                    std::make_shared<ScaledWaveform>(
                        cal.x180Pulse(), Complex{scale, 0.0}),
                    detuning_ghz));
        const Vector out = sim.evolveState(schedule, ground);
        const BlochVector sampled = sampledTomography(
            out, shots::kDirectRxPerPoint, rng);
        total_shots += 3 * shots::kDirectRxPerPoint;
        max_dev = std::max(max_dev, std::abs(sampled.x));
        // Empirical phase correction: rotate the measured vector back
        // onto the YZ plane (the attitude the paper recommends).
        const double phase_corr =
            std::atan2(sampled.x,
                       -sampled.y == 0.0 ? 1e-12 : -sampled.y);
        if (k % 4 == 0)
            table.addRow({fmtFixed(4.5 * k, 1),
                          fmtFixed(sampled.x, 4),
                          fmtFixed(sampled.y, 4),
                          fmtFixed(sampled.z, 4),
                          fmtFixed(phase_corr, 4)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("total shots: %ldk (paper: 123k)\n", total_shots / 1000);
    std::printf("max |X| deviation: %.4f (larger than the noiseless "
                "simulation of Figure 6, as in the paper)\n",
                max_dev);
    return 0;
}
