/**
 * @file
 * Ablation — calibration-error susceptibility (error source #2 of
 * Section 8.3): every pulse the AWG emits carries a small control
 * error relative to its calibration (amplitude offset and phase
 * jitter from drift, electronics noise and finite calibration
 * precision). The standard flow applies *two* calibrated pulses per
 * single-qubit gate, so it samples this per-pulse noise twice and
 * "squares the impact of calibration imperfections"; the direct flow
 * samples it once. This bench sweeps the per-pulse noise magnitude
 * and measures the mean X-gate error of both flows over many noise
 * draws.
 *
 * A second sweep covers coherent frequency drift between the daily
 * recalibrations (Section 2.4): there both flows degrade together —
 * the single-pulse advantage is specifically about *per-pulse*
 * (uncorrelated) control error, while fully correlated drift hits a
 * single double-size pulse just as hard.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

using namespace qpulse;

namespace {

/** A waveform with an additive amplitude offset and a phase error. */
WaveformPtr
noisyPulse(const WaveformPtr &base, double amp_offset, double phase,
           Rng &rng)
{
    const double jitter_amp = rng.gaussian(0.0, amp_offset);
    const double jitter_phase = rng.gaussian(0.0, phase);
    // Additive amplitude error modelled multiplicatively against the
    // pulse's own peak so both pulse sizes see the same absolute
    // offset.
    const double peak = base->peakAmplitude();
    const double scale =
        std::max(0.0, std::min(1.0, 1.0 + jitter_amp / peak));
    return std::make_shared<ScaledWaveform>(
        base, std::polar(scale, jitter_phase));
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation: per-pulse control noise vs coherent drift",
        "two calibrated pulses per gate sample the per-pulse noise "
        "twice (standard); the direct gate samples it once");

    BackendConfig config = almadenLineConfig(1);
    Calibrator calibrator(config);
    const QubitCalibration cal = calibrator.calibrateQubit(0);
    PulseSimulator sim(calibrator.qubitModel(0));
    Rng rng(0xAB3);
    const int kTrials = 60;

    // --- Sweep 1: uncorrelated per-pulse noise. ---
    std::printf("\nper-pulse control noise (amplitude offset in a.u., "
                "%d random draws per point):\n",
                kTrials);
    TextTable noise_table({"noise sigma", "std X error",
                           "direct X error", "std/direct"});
    for (double sigma : {0.0005, 0.001, 0.002, 0.004}) {
        double std_err = 0.0, direct_err = 0.0;
        for (int trial = 0; trial < kTrials; ++trial) {
            Schedule standard("std");
            standard.play(driveChannel(0),
                          noisyPulse(cal.x90Pulse(), sigma, 0.01, rng));
            standard.play(driveChannel(0),
                          noisyPulse(cal.x90Pulse(), sigma, 0.01, rng));
            Schedule direct("direct");
            direct.play(driveChannel(0),
                        noisyPulse(cal.x180Pulse(), sigma, 0.01, rng));
            std_err += 1.0 -
                       averageGateFidelity(
                           bench::projectQubit1(
                               sim.evolveUnitary(standard).unitary),
                           gates::rx(kPi));
            direct_err += 1.0 -
                          averageGateFidelity(
                              bench::projectQubit1(
                                  sim.evolveUnitary(direct).unitary),
                              gates::rx(kPi));
        }
        std_err /= kTrials;
        direct_err /= kTrials;
        noise_table.addRow({fmtFixed(sigma, 4), fmtFixed(std_err, 6),
                            fmtFixed(direct_err, 6),
                            fmtFixed(std_err /
                                         std::max(direct_err, 1e-12),
                                     2) +
                                "x"});
    }
    std::printf("%s\n", noise_table.render().c_str());

    // --- Sweep 2: coherent frequency drift (correlated error). ---
    std::printf("coherent frequency drift since calibration "
                "(both flows degrade together):\n");
    TextTable drift_table({"drift (kHz)", "std X error",
                           "direct X error"});
    for (double drift_khz : {0.0, 50.0, 100.0, 200.0}) {
        BackendConfig drifted = config;
        drifted.qubits[0].frequencyGhz += drift_khz * 1e-6;
        Calibrator drift_cal(drifted);
        PulseSimulator drift_sim(drift_cal.qubitModel(0));
        const double sideband = -drift_khz * 1e-6;
        auto x_error = [&](bool direct) {
            Schedule schedule(direct ? "direct" : "standard");
            if (direct) {
                schedule.play(driveChannel(0),
                              std::make_shared<SidebandWaveform>(
                                  cal.x180Pulse(), sideband));
            } else {
                schedule.play(driveChannel(0),
                              std::make_shared<SidebandWaveform>(
                                  cal.x90Pulse(), sideband));
                schedule.play(driveChannel(0),
                              std::make_shared<SidebandWaveform>(
                                  cal.x90Pulse(), sideband));
            }
            const UnitaryResult result =
                drift_sim.evolveUnitary(schedule);
            return 1.0 -
                   averageGateFidelity(
                       bench::projectQubit1(result.unitary),
                       gates::rx(kPi));
        };
        drift_table.addRow({fmtFixed(drift_khz, 0),
                            fmtFixed(x_error(false), 6),
                            fmtFixed(x_error(true), 6)});
    }
    std::printf("%s\n", drift_table.render().c_str());
    std::printf("takeaway: the direct gate's robustness advantage is "
                "against *per-pulse* (uncorrelated) control error — "
                "the f vs f^2 argument of Section 8.3 — while slow "
                "coherent drift affects both flows similarly until "
                "the daily recalibration.\n");
    return 0;
}
