/**
 * @file
 * Figure 6 — simulated DirectRx(theta): the calibrated X pulse is
 * amplitude-scaled by k/40 for k = 0..40 and the final Bloch vector
 * recorded. The trajectory should hug the Prime Meridian (X = 0) of
 * the Bloch sphere with a small sinusoidal X-component deviation that
 * vanishes at 0, 90 and 180 degrees.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "metrics/metrics.h"

using namespace qpulse;

int
main()
{
    bench::banner(
        "Figure 6: simulated DirectRx(theta) Bloch trajectory",
        "XZ trajectory deviates sinusoidally (small) from the X = 0 "
        "meridian; zero dephasing at 0/90/180 deg");

    const BackendConfig config = almadenLineConfig(1);
    Calibrator calibrator(config);
    const QubitCalibration cal = calibrator.calibrateQubit(0);
    PulseSimulator sim(calibrator.qubitModel(0));

    Vector ground(3);
    ground[0] = Complex{1.0, 0.0};

    TextTable table({"k", "theta (deg)", "X", "Y", "Z", "|X| dev"});
    // The 41 sweep points are independent: fan the evolutions out over
    // the thread pool, then aggregate/render in order.
    std::vector<BlochVector> points(41);
    parallelFor(points.size(), [&](std::size_t k) {
        const double scale = static_cast<double>(k) / 40.0;
        Schedule schedule("direct-rx");
        if (k > 0)
            schedule.play(driveChannel(0),
                          std::make_shared<ScaledWaveform>(
                              cal.x180Pulse(), Complex{scale, 0.0}));
        points[k] = blochFromState(sim.evolveState(schedule, ground));
    });
    double max_dev = 0.0, dev_at_0 = 0.0, dev_at_90 = 0.0,
           dev_at_180 = 0.0;
    for (int k = 0; k <= 40; ++k) {
        const double scale = static_cast<double>(k) / 40.0;
        const BlochVector &bloch = points[static_cast<std::size_t>(k)];
        max_dev = std::max(max_dev, std::abs(bloch.x));
        if (k == 0)
            dev_at_0 = std::abs(bloch.x);
        if (k == 20)
            dev_at_90 = std::abs(bloch.x);
        if (k == 40)
            dev_at_180 = std::abs(bloch.x);
        if (k % 4 == 0)
            table.addRow({std::to_string(k), fmtFixed(scale * 180.0, 1),
                          fmtFixed(bloch.x, 5), fmtFixed(bloch.y, 5),
                          fmtFixed(bloch.z, 5),
                          fmtFixed(std::abs(bloch.x), 5)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("max |X| deviation from the meridian: %.5f "
                "(paper: 'quite small')\n",
                max_dev);
    std::printf("|X| at 0 / 90 / 180 deg: %.6f / %.6f / %.6f "
                "(paper: no dephasing at these angles)\n",
                dev_at_0, dev_at_90, dev_at_180);
    return 0;
}
