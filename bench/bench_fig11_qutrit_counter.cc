/**
 * @file
 * Figure 11 — the base-3 qutrit counter (Section 7): calibrate the
 * f12 sideband and f02/2 two-photon pulses, train an LDA classifier
 * on the readout IQ clouds of the three qutrit states, then cycle
 * |0> -> |1> -> |2> -> |0> and record the fraction of shots found
 * back in the ground state as a function of the cycle count. The
 * paper drives 60 cycles (180 hops) before "dropout" exceeds 40%,
 * over 150k shots.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/ascii_plot.h"
#include "common/table.h"
#include "readout/readout.h"

using namespace qpulse;

int
main()
{
    bench::banner(
        "Figure 11: base-3 qutrit counter via f12 and f02/2 drives "
        "(150k shots)",
        "~60 cycles (180 hops) before ground-state dropout exceeds "
        "40%");

    const BackendConfig config = armonkConfig();
    Calibrator calibrator(config);
    QubitCalibration cal = calibrator.calibrateQubit(0);
    calibrator.calibrateQutrit(0, cal);
    PulseSimulator sim(calibrator.qubitModel(0));
    const double alpha = config.qubits[0].anharmonicityGhz;

    std::printf("\ncalibrated pulses (35.6 ns each):\n");
    std::printf("  single-photon x180 amplitude: %.4f  (paper p_one "
                "~ 0.109 a.u.)\n",
                cal.x180Amp);
    std::printf("  f12 sideband amplitude:       %.4f\n", cal.x12Amp);
    std::printf("  f02/2 two-photon amplitude:   %.4f  (paper p_two "
                "~ 0.44 a.u.)\n",
                cal.x02Amp);
    std::printf("  transition frequencies: f01 = %.3f GHz, f12 = "
                "%.3f GHz, f02/2 = %.3f GHz\n\n",
                config.qubits[0].frequencyGhz,
                config.qubits[0].frequencyGhz + alpha,
                config.qubits[0].frequencyGhz + alpha / 2.0);

    // --- LDA readout training on the three calibrated states
    //     (Figure 11, left panel). ---
    const IqReadoutModel iq = IqReadoutModel::qutritDefault();
    Rng rng(0xF1B);
    std::vector<IqPoint> train_points;
    std::vector<std::size_t> train_labels;
    for (std::size_t level = 0; level < 3; ++level)
        for (int k = 0; k < 2000; ++k) {
            train_points.push_back(iq.sampleShot(level, rng));
            train_labels.push_back(level);
        }
    LdaClassifier lda;
    lda.fit(train_points, train_labels);
    std::printf("LDA training accuracy on calibration shots: %s\n\n",
                fmtPercent(lda.trainingAccuracy(train_points,
                                                train_labels),
                           1)
                    .c_str());

    // --- The counter: one cycle = three hops. Evolve the density
    //     matrix (T1/T2 included) and classify sampled IQ shots. ---
    auto hop = [&](Schedule &schedule, double amp, double sideband) {
        WaveformPtr pulse = std::make_shared<GaussianWaveform>(
            cal.qutritDuration, cal.sigma, Complex{amp, 0.0});
        if (sideband != 0.0)
            pulse = std::make_shared<SidebandWaveform>(pulse, sideband);
        schedule.play(driveChannel(0), pulse);
    };

    TextTable table({"cycles", "hops", "P(|0>) shots", "dropout"});
    PlotSeries ground_curve{"P(|0>) vs cycles", 'o', {}, {}};
    Matrix rho(3, 3);
    rho(0, 0) = Complex{1.0, 0.0};
    long total_shots = 0;
    int cycles_to_40 = -1;
    const int max_cycles = 60;
    for (int cycle = 1; cycle <= max_cycles; ++cycle) {
        // Evolve incrementally, one 3-hop cycle at a time.
        Schedule cycle_only("cycle");
        hop(cycle_only, cal.x180Amp, 0.0);
        hop(cycle_only, cal.x12Amp, alpha);
        hop(cycle_only, cal.x02Amp, alpha / 2.0);
        rho = sim.evolveLindblad(cycle_only, rho);

        // Probe every few cycles with 2.5k shots.
        if (cycle % 5 == 0 || cycle == 1) {
            const std::vector<double> pops = {rho(0, 0).real(),
                                              rho(1, 1).real(),
                                              rho(2, 2).real()};
            long zeros = 0;
            for (long shot = 0; shot < shots::kQutrit; ++shot)
                if (lda.predict(iq.sampleShot(pops, rng)) == 0)
                    ++zeros;
            total_shots += shots::kQutrit;
            const double p0 = static_cast<double>(zeros) /
                              static_cast<double>(shots::kQutrit);
            table.addRow({std::to_string(cycle),
                          std::to_string(3 * cycle), fmtPercent(p0, 1),
                          fmtPercent(1.0 - p0, 1)});
            ground_curve.xs.push_back(cycle);
            ground_curve.ys.push_back(p0);
            if (cycles_to_40 < 0 && 1.0 - p0 > 0.40)
                cycles_to_40 = cycle;
        }
    }
    std::printf("%s\n", table.render().c_str());
    PlotOptions plot;
    plot.yLo = 0.0;
    plot.yHi = 1.0;
    std::printf("%s\n", renderAsciiPlot({ground_curve}, plot).c_str());
    if (cycles_to_40 < 0)
        std::printf("dropout stayed below 40%% through %d cycles "
                    "(%d hops) — paper: exceeds 40%% around 60 "
                    "cycles/180 hops\n",
                    max_cycles, 3 * max_cycles);
    else
        std::printf("dropout exceeded 40%% at ~%d cycles (%d hops) — "
                    "paper: ~60 cycles / 180 hops\n",
                    cycles_to_40, 3 * cycles_to_40);
    std::printf("total classification shots: %ldk (paper: 150k)\n",
                total_shots / 1000);
    return 0;
}
