/**
 * @file
 * Acceptance bench for the two-tier memoized compile cache
 * (src/compile/compile_cache.h, docs/PERFORMANCE.md "Compile path").
 * The Optimized-mode CR-pair CNOT workload is compiled (a) cold —
 * the full transpile/schedule/analyze/validate pipeline, exactly what
 * a cache-less compiler pays; (b) warm — an in-memory LRU hit; and
 * (c) from a simulated fresh process — cold memory tier, the
 * CompiledSchedule record served off disk through a cold ArtifactStore
 * handle (the store *open* is untimed setup, mirroring a service that
 * opens its store once at startup and then compiles on the hot path).
 *
 * Embedded acceptance (BENCH_compile.json):
 *  - warm in-memory hit >= 20x over the cold compile;
 *  - fresh-process persistent hit >= 5x over the cold compile;
 *  - CompileResult fingerprints (schedule hash, pulse/frame-change
 *    counts, duration) bit-identical across cold/warm/persistent —
 *    the cold leg IS the QPULSE_CACHE_DIR-unset behavior, so this is
 *    also the no-cache bit-identity gate.
 *
 * Cross-process CI gate: run twice with one QPULSE_CACHE_DIR. The
 * second run reports preexisting_persist_hits > 0 (records written by
 * the first process served to the second) and the same fingerprint.
 * The "determinism-fingerprint:" stdout line must be identical across
 * QPULSE_THREADS=1/8.
 */
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "bench_util.h"
#include "common/env.h"
#include "common/status.h"
#include "compile/compile_cache.h"
#include "compile/compiler.h"
#include "device/calibration.h"
#include "store/artifact_store.h"
#include "store/serde.h"

namespace {

using namespace qpulse;

constexpr int kColdReps = 300;
constexpr int kWarmReps = 2000;
constexpr int kPersistReps = 200;
constexpr double kMinWarmSpeedup = 20.0;
constexpr double kMinPersistSpeedup = 5.0;

/** The paper's CR-pair workload: H-CX-H on the calibrated 2q line. */
QuantumCircuit
cnotWorkload()
{
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.h(1);
    circuit.cx(0, 1);
    circuit.h(1);
    return circuit;
}

/** Everything two CompileResults must agree on bit-for-bit. */
struct Fingerprint
{
    std::uint64_t scheduleHash = 0;
    std::size_t pulses = 0;
    std::size_t frameChanges = 0;
    long durationDt = 0;

    bool operator==(const Fingerprint &other) const = default;
};

Fingerprint
fingerprintOf(const CompileResult &result)
{
    return Fingerprint{store::hashSchedule(result.schedule),
                       result.pulseCount, result.frameChangeCount,
                       result.durationDt};
}

} // namespace

int
main()
{
    bench::banner(
        "bench_compile: two-tier memoized compile cache",
        "compilation latency is on the critical path of variational "
        "iteration; memoizing the compile makes recompiles free");

    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    const QuantumCircuit circuit = cnotWorkload();

    // Store directory: QPULSE_CACHE_DIR when set (the CI cross-process
    // gate runs the bench twice against one directory), else a
    // throwaway directory owned by this process.
    const std::optional<std::string> env_dir = envCacheDir();
    const std::string dir =
        env_dir.has_value()
            ? *env_dir
            : (std::filesystem::temp_directory_path() /
               ("qpulse-bench-compile-" + std::to_string(::getpid())))
                  .string();
    std::printf("store directory: %s%s\n\n", dir.c_str(),
                env_dir.has_value() ? " (from QPULSE_CACHE_DIR)"
                                    : " (throwaway)");

    auto store = store::ArtifactStore::open(
        dir, static_cast<std::uint64_t>(envCacheMaxBytes()));
    if (store == nullptr) {
        std::fprintf(stderr, "cannot open artifact store\n");
        return 1;
    }

    // --- Cross-process gate + record seeding. A fresh cache over the
    // env directory: hits here were written by a previous process.
    std::uint64_t preexisting_persist_hits = 0;
    Fingerprint persist_print{};
    {
        auto seed_cache = std::make_shared<CompileCache>(16, store);
        PulseCompiler compiler(backend, CompileMode::Optimized);
        compiler.setCompileCache(seed_cache);
        const CompileResult seeded = compiler.compile(circuit);
        if (!seeded.validation.ok()) {
            std::fprintf(stderr, "workload failed validation: %s\n",
                         seeded.validation.toString().c_str());
            return 1;
        }
        persist_print = fingerprintOf(seeded);
        preexisting_persist_hits = seed_cache->stats().persistHits;
        throwIfError(seed_cache->flush());
    }
    std::printf("seed pass: %llu records served from a previous "
                "process\n",
                static_cast<unsigned long long>(
                    preexisting_persist_hits));

    // --- Cold leg: the full pipeline, no cache attached. This is
    // bit-for-bit the QPULSE_CACHE_DIR-unset behavior. One warmup
    // compile already ran above (process statics, waveform tables).
    PulseCompiler cold_compiler(backend, CompileMode::Optimized);
    Fingerprint cold_print{};
    double cold_us = 0.0;
    for (int rep = 0; rep < kColdReps; ++rep) {
        bench::Stopwatch watch;
        const CompileResult result = cold_compiler.compile(circuit);
        const double us = watch.elapsedMs() * 1e3;
        cold_us = rep == 0 ? us : std::min(cold_us, us);
        cold_print = fingerprintOf(result);
    }

    // --- Warm leg: in-memory LRU hit (miss primed outside the timed
    // region).
    PulseCompiler warm_compiler(backend, CompileMode::Optimized);
    auto warm_cache = std::make_shared<CompileCache>(16);
    warm_compiler.setCompileCache(warm_cache);
    (void)warm_compiler.compile(circuit);
    Fingerprint warm_print{};
    double warm_us = 0.0;
    for (int rep = 0; rep < kWarmReps; ++rep) {
        bench::Stopwatch watch;
        const CompileResult result = warm_compiler.compile(circuit);
        const double us = watch.elapsedMs() * 1e3;
        warm_us = rep == 0 ? us : std::min(warm_us, us);
        warm_print = fingerprintOf(result);
    }
    const bool warm_hits_ok =
        warm_cache->stats().hits >=
        static_cast<std::uint64_t>(kWarmReps);

    // --- Persistent leg: simulated process restart per rep. The
    // store handle is reopened (cold mmap, index re-parse) and the
    // memory tier is fresh, so the one timed compile() is served from
    // the CompiledSchedule record on disk: key probe, record CRC,
    // decode, re-validate. The open itself is untimed setup — a
    // service opens its store once at startup, then compiles on the
    // hot path.
    PulseCompiler persist_compiler(backend, CompileMode::Optimized);
    double persist_us = 0.0;
    std::uint64_t persist_hits = 0;
    for (int rep = 0; rep < kPersistReps; ++rep) {
        auto cold_store = store::ArtifactStore::open(
            dir, static_cast<std::uint64_t>(envCacheMaxBytes()));
        if (cold_store == nullptr) {
            std::fprintf(stderr, "cannot reopen artifact store\n");
            return 1;
        }
        auto cold_cache =
            std::make_shared<CompileCache>(16, cold_store);
        persist_compiler.setCompileCache(cold_cache);

        bench::Stopwatch watch;
        const CompileResult result = persist_compiler.compile(circuit);
        const double us = watch.elapsedMs() * 1e3;
        persist_us = rep == 0 ? us : std::min(persist_us, us);
        persist_print = fingerprintOf(result);
        persist_hits += cold_cache->stats().persistHits;
        persist_compiler.setCompileCache(nullptr);
    }

    const double warm_speedup = cold_us / warm_us;
    const double persist_speedup = cold_us / persist_us;
    const bool warm_ok = warm_speedup >= kMinWarmSpeedup;
    const bool persist_ok = persist_speedup >= kMinPersistSpeedup;
    const bool identical =
        cold_print == warm_print && cold_print == persist_print;
    const bool persist_hits_ok =
        persist_hits ==
        static_cast<std::uint64_t>(kPersistReps);
    const bool pass = warm_ok && persist_ok && identical &&
                      warm_hits_ok && persist_hits_ok;

    std::printf("\noptimized-mode cr-pair cnot compile (min over "
                "reps):\n");
    std::printf("  cold pipeline:          %8.2f us  (%d reps)\n",
                cold_us, kColdReps);
    std::printf("  warm in-memory hit:     %8.2f us  (%.1fx)\n",
                warm_us, warm_speedup);
    std::printf("  fresh-process disk hit: %8.2f us  (%.1fx)\n",
                persist_us, persist_speedup);
    std::printf("  persist hits %llu/%d, warm hits ok: %s\n",
                static_cast<unsigned long long>(persist_hits),
                kPersistReps, warm_hits_ok ? "yes" : "no");
    std::printf("determinism-fingerprint: schedule=%016llx pulses=%zu "
                "fc=%zu dur=%ld\n",
                static_cast<unsigned long long>(
                    cold_print.scheduleHash),
                cold_print.pulses, cold_print.frameChanges,
                cold_print.durationDt);
    std::printf("acceptance: warm >= %.0fx: %s; persistent >= %.0fx: "
                "%s; bit-identical: %s => %s\n",
                kMinWarmSpeedup, warm_ok ? "yes" : "no",
                kMinPersistSpeedup, persist_ok ? "yes" : "no",
                identical ? "yes" : "no", pass ? "PASS" : "FAIL");

    bench::printTelemetry();
    std::FILE *out = bench::openBenchJson("BENCH_compile.json");
    if (out == nullptr)
        return pass ? 0 : 1;
    std::fprintf(out, "{\n");
    bench::writeBenchHeader(out, "compile");
    std::fprintf(out,
                 "  \"workload\": {\"name\": \"cr_pair_cnot\", "
                 "\"mode\": \"optimized\", \"cold_reps\": %d, "
                 "\"warm_reps\": %d, \"persist_reps\": %d},\n",
                 kColdReps, kWarmReps, kPersistReps);
    std::fprintf(out, "  \"cold_us\": %.3f,\n", cold_us);
    std::fprintf(out, "  \"warm_us\": %.3f,\n", warm_us);
    std::fprintf(out, "  \"persist_us\": %.3f,\n", persist_us);
    std::fprintf(out, "  \"warm_speedup\": %.2f,\n", warm_speedup);
    std::fprintf(out, "  \"persist_speedup\": %.2f,\n",
                 persist_speedup);
    std::fprintf(out, "  \"preexisting_persist_hits\": %llu,\n",
                 static_cast<unsigned long long>(
                     preexisting_persist_hits));
    std::fprintf(out,
                 "  \"fingerprint\": {\"schedule\": \"%016llx\", "
                 "\"pulses\": %zu, \"frame_changes\": %zu, "
                 "\"duration_dt\": %ld},\n",
                 static_cast<unsigned long long>(
                     cold_print.scheduleHash),
                 cold_print.pulses, cold_print.frameChanges,
                 cold_print.durationDt);
    bench::writeTelemetryField(out);
    std::fprintf(
        out,
        "  \"acceptance\": {\"min_warm_speedup\": %.1f, "
        "\"min_persist_speedup\": %.1f, \"warm_ok\": %s, "
        "\"persist_ok\": %s, \"bit_identical\": %s, "
        "\"persist_hits_ok\": %s, \"pass\": %s}\n",
        kMinWarmSpeedup, kMinPersistSpeedup,
        warm_ok ? "true" : "false", persist_ok ? "true" : "false",
        identical ? "true" : "false",
        persist_hits_ok ? "true" : "false", pass ? "true" : "false");
    std::fprintf(out, "}\n");
    bench::closeBenchJson(out, "BENCH_compile.json");

    if (!env_dir.has_value())
        std::filesystem::remove_all(dir);
    return pass ? 0 : 1;
}
