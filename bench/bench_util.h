/**
 * @file
 * Shared helpers for the figure/table reproduction benches: calibrated
 * backend construction, qubit-subspace projection and schedule
 * fidelity measurement on the pulse simulator, banner printing, and
 * the BENCH_*.json emission boilerplate (open/close plus the standard
 * "telemetry" section every bench artifact carries).
 */
#ifndef QPULSE_BENCH_BENCH_UTIL_H
#define QPULSE_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "compile/compiler.h"
#include "device/calibration.h"
#include "linalg/gates.h"
#include "telemetry/report.h"

namespace qpulse {
namespace bench {

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_claim)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s\n", what.c_str());
    std::printf("paper: %s\n", paper_claim.c_str());
    std::printf("==========================================================="
                "=====================\n");
}

/** Project a 9x9 two-transmon propagator onto the 2x2 (x) 2x2 block. */
inline Matrix
projectQubits2(const Matrix &u)
{
    const std::size_t idx[4] = {0, 1, 3, 4};
    Matrix p(4, 4);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            p(r, c) = u(idx[r], idx[c]);
    return p;
}

/** Project a 3x3 single-transmon propagator onto the qubit block. */
inline Matrix
projectQubit1(const Matrix &u)
{
    Matrix p(2, 2);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            p(r, c) = u(r, c);
    return p;
}

/** Fidelity of a 2q schedule against a 4x4 target on a pair sim. */
inline double
scheduleFidelity2q(const PulseSimulator &sim, const Schedule &schedule,
                   const Matrix &target)
{
    const UnitaryResult result = sim.evolveUnitary(schedule);
    return averageGateFidelity(
        projectQubits2(sim.effectiveUnitary(result)), target);
}

/**
 * Open a BENCH_*.json artifact for writing, warning (not failing) on
 * an unwritable working directory so benches still report to stdout.
 */
inline std::FILE *
openBenchJson(const std::string &path)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr)
        std::fprintf(stderr, "warning: could not open %s\n",
                     path.c_str());
    return out;
}

/** Close a BENCH_*.json artifact and announce it on stdout. */
inline void
closeBenchJson(std::FILE *out, const std::string &path)
{
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Version of the BENCH_*.json artifact layout. Bump when a field
 * every artifact carries (the header written below, "telemetry")
 * changes shape, so downstream tooling can dispatch on it instead of
 * sniffing fields.
 */
constexpr int kBenchSchemaVersion = 1;

/** `git describe` of the tree the bench binary was built from
 *  (configure-time; "unknown" outside a git checkout). */
inline const char *
gitDescribe()
{
#ifdef QPULSE_GIT_DESCRIBE
    return QPULSE_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

/**
 * Emit the uniform artifact header every BENCH_*.json starts with:
 * the bench name, the schema version, and the provenance of the
 * binary that wrote it. Call immediately after the opening "{".
 */
inline void
writeBenchHeader(std::FILE *out, const std::string &bench_name)
{
    std::fprintf(out, "  \"bench\": \"%s\",\n", bench_name.c_str());
    std::fprintf(out, "  \"schema_version\": %d,\n",
                 kBenchSchemaVersion);
    std::fprintf(out, "  \"git_describe\": \"%s\",\n", gitDescribe());
}

/**
 * Emit the standard top-level "telemetry" member: a snapshot of the
 * global metrics registry (counters, gauges, latency histograms) at
 * the moment the bench writes its artifact. Pass trailing_comma=false
 * when this is the last member of the enclosing object.
 */
inline void
writeTelemetryField(std::FILE *out, bool trailing_comma = true)
{
    const telemetry::Report report = telemetry::Report::capture();
    std::fprintf(out, "  \"telemetry\": %s%s\n",
                 report.toJson("  ").c_str(),
                 trailing_comma ? "," : "");
}

/** Print the same telemetry snapshot human-readably on stdout. */
inline void
printTelemetry()
{
    std::printf("%s\n", telemetry::Report::capture().toText().c_str());
}

/** Wall-clock stopwatch for per-job latency measurements. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Exact p50/p95 over a sample set (nearest-rank on the sorted copy —
 * unlike the fixed-bucket telemetry histograms there is no
 * interpolation error, which keeps small bench sample sets honest).
 */
struct LatencySummary
{
    double p50Ms = 0.0;
    double p95Ms = 0.0;

    static LatencySummary
    of(std::vector<double> samples)
    {
        LatencySummary summary;
        if (samples.empty())
            return summary;
        std::sort(samples.begin(), samples.end());
        const auto rank = [&](double q) {
            const std::size_t idx = static_cast<std::size_t>(
                q * static_cast<double>(samples.size() - 1) + 0.5);
            return samples[std::min(idx, samples.size() - 1)];
        };
        summary.p50Ms = rank(0.50);
        summary.p95Ms = rank(0.95);
        return summary;
    }
};

} // namespace bench
} // namespace qpulse

#endif // QPULSE_BENCH_BENCH_UTIL_H
