/**
 * @file
 * Engineering micro-benchmarks (google-benchmark): throughput of the
 * transpiler pipelines, schedule assembly, the pulse simulator and
 * the noisy density simulator. Not a paper figure — this tracks the
 * performance of the infrastructure itself.
 */
#include <benchmark/benchmark.h>

#include <memory>

#include "algos/circuits.h"
#include "algos/hamiltonians.h"
#include "bench_util.h"

using namespace qpulse;

namespace {

/** Shared calibrated backend (calibration excluded from timings). */
const std::shared_ptr<const PulseBackend> &
sharedBackend()
{
    static const std::shared_ptr<const PulseBackend> backend =
        makeCalibratedBackend(almadenLineConfig(2));
    return backend;
}

QuantumCircuit
trotterBench()
{
    return trotterCircuit(methaneHamiltonian(), 1.0, 6);
}

void
BM_TranspileStandard(benchmark::State &state)
{
    const PulseCompiler compiler(sharedBackend(), CompileMode::Standard);
    const QuantumCircuit circuit = trotterBench();
    for (auto _ : state)
        benchmark::DoNotOptimize(compiler.transpile(circuit));
}
BENCHMARK(BM_TranspileStandard)->Unit(benchmark::kMillisecond);

void
BM_TranspileOptimized(benchmark::State &state)
{
    const PulseCompiler compiler(sharedBackend(),
                                 CompileMode::Optimized);
    const QuantumCircuit circuit = trotterBench();
    for (auto _ : state)
        benchmark::DoNotOptimize(compiler.transpile(circuit));
}
BENCHMARK(BM_TranspileOptimized)->Unit(benchmark::kMillisecond);

void
BM_FullCompileOptimized(benchmark::State &state)
{
    const PulseCompiler compiler(sharedBackend(),
                                 CompileMode::Optimized);
    const QuantumCircuit circuit = trotterBench();
    for (auto _ : state)
        benchmark::DoNotOptimize(compiler.compile(circuit));
}
BENCHMARK(BM_FullCompileOptimized)->Unit(benchmark::kMillisecond);

void
BM_ScheduleAssembly(benchmark::State &state)
{
    const PulseCompiler compiler(sharedBackend(),
                                 CompileMode::Optimized);
    const QuantumCircuit basis =
        compiler.transpile(trotterBench());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sharedBackend()->scheduleCircuit(basis));
}
BENCHMARK(BM_ScheduleAssembly)->Unit(benchmark::kMillisecond);

void
BM_PulseSimCnot(benchmark::State &state)
{
    Calibrator calibrator(almadenLineConfig(2));
    PulseSimulator sim = calibrator.pairSimulator(0, 1);
    const Schedule schedule =
        sharedBackend()->schedule(makeGate(GateType::Cnot, {0, 1}));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.evolveUnitary(schedule));
}
BENCHMARK(BM_PulseSimCnot)->Unit(benchmark::kMillisecond);

void
BM_DensitySimTrotter(benchmark::State &state)
{
    const PulseCompiler compiler(sharedBackend(),
                                 CompileMode::Optimized);
    DensitySimulator simulator = compiler.makeSimulator();
    QuantumCircuit circuit = trotterBench();
    circuit.measureAll();
    const QuantumCircuit basis = compiler.transpile(circuit);
    for (auto _ : state)
        benchmark::DoNotOptimize(simulator.run(basis));
}
BENCHMARK(BM_DensitySimTrotter)->Unit(benchmark::kMillisecond);

void
BM_QubitCalibration(benchmark::State &state)
{
    const BackendConfig config = almadenLineConfig(1);
    for (auto _ : state) {
        Calibrator calibrator(config); // Fresh cache each iteration.
        benchmark::DoNotOptimize(calibrator.calibrateQubit(0));
    }
}
BENCHMARK(BM_QubitCalibration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
