/**
 * @file
 * Pulse-simulator hot-path performance bench: times single-qubit,
 * CR-pair and Lindblad evolutions with the propagator cache off and
 * on, and the repeated-schedule shot workload (PulseBackend::runShots)
 * in the legacy configuration (no cache, one thread) versus the
 * optimized one (shared cache, four threads). Results — wall times,
 * cache hit rates, speedups and cached-vs-uncached agreement — are
 * printed as a table and written machine-readably to
 * BENCH_pulsesim.json for regression tracking.
 *
 * Acceptance bars (see docs/PERFORMANCE.md): the repeated-schedule
 * shot workload must run >= 5x faster optimized than legacy; the
 * overhauled uncached path (drift-frame kernel + warm Jacobi + SIMD
 * GEMM) must run >= 3x faster than the pre-overhaul per-sample path
 * on cr_pair_cnot_unitary; and both the cached and overhauled paths
 * must agree with their reference to 1e-12 in max-abs difference.
 *
 * "Legacy" throughout means the pre-overhaul configuration, emulated
 * with setDriftKernelEnabled(false) + scalar kernel dispatch, so the
 * baselines stay comparable across PRs.
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "linalg/eigen.h"
#include "linalg/simd.h"
#include "linalg/state_panel.h"
#include "linalg/workspace.h"

using namespace qpulse;

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

std::string
fmtExp(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1e", value);
    return buf;
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    double max_diff = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            max_diff = std::max(max_diff, std::abs(a(r, c) - b(r, c)));
    return max_diff;
}

/** One cache-off-vs-on evolution workload's measurements. */
struct EvolveRow
{
    std::string name;
    int reps = 0;
    double uncachedMs = 0.0;
    double cachedMs = 0.0;
    double hitRate = 0.0;
    double maxDiff = 0.0;

    double speedup() const { return uncachedMs / cachedMs; }
};

/**
 * Time `reps` repeated evolutions of one schedule with caching
 * disabled (legacy per-sample path) and with a fresh shared cache,
 * recording the hit rate and the max-abs difference of the results.
 */
EvolveRow
benchUnitary(const std::string &name, PulseSimulator sim,
             const Schedule &schedule, int reps)
{
    EvolveRow row;
    row.name = name;
    row.reps = reps;

    sim.setCachingEnabled(false);
    Matrix exact;
    auto start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        exact = sim.evolveUnitary(schedule).unitary;
    row.uncachedMs = elapsedMs(start);

    sim.setCachingEnabled(true);
    auto cache = std::make_shared<PropagatorCache>();
    sim.setPropagatorCache(cache);
    Matrix cached;
    start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        cached = sim.evolveUnitary(schedule).unitary;
    row.cachedMs = elapsedMs(start);
    row.hitRate = cache->stats().hitRate();
    row.maxDiff = maxAbsDiff(exact, cached);
    return row;
}

/** Same as benchUnitary for the Lindblad density-matrix path. */
EvolveRow
benchLindblad(const std::string &name, PulseSimulator sim,
              const Schedule &schedule, int reps)
{
    EvolveRow row;
    row.name = name;
    row.reps = reps;

    Matrix rho0(sim.model().dim(), sim.model().dim());
    rho0(0, 0) = Complex{1.0, 0.0};

    sim.setCachingEnabled(false);
    Matrix exact;
    auto start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        exact = sim.evolveLindblad(schedule, rho0);
    row.uncachedMs = elapsedMs(start);

    sim.setCachingEnabled(true);
    auto cache = std::make_shared<PropagatorCache>();
    sim.setPropagatorCache(cache);
    Matrix cached;
    start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        cached = sim.evolveLindblad(schedule, rho0);
    row.cachedMs = elapsedMs(start);
    row.hitRate = cache->stats().hitRate();
    row.maxDiff = maxAbsDiff(exact, cached);
    return row;
}

/** One baseline-vs-optimized kernel microbench measurement. */
struct KernelRow
{
    std::string name;
    std::size_t n = 0;
    int iters = 0;
    double baselineMs = 0.0;
    double optimizedMs = 0.0;

    double speedup() const
    {
        return optimizedMs > 0.0 ? baselineMs / optimizedMs : 1.0;
    }
};

/** Deterministic dense complex matrix (xorshift-free LCG entries). */
Matrix
denseTestMatrix(std::size_t n, std::uint64_t seed)
{
    Matrix m(n, n);
    std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 1;
    auto draw = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>(state >> 11) /
                   static_cast<double>(1ull << 53) -
               0.5;
    };
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            m(r, c) = Complex{draw(), draw()};
    return m;
}

double
timeGemm(const Matrix &a, const Matrix &b, int iters)
{
    Matrix out;
    gemmInto(out, a, b); // Warm-up sizes the output buffer.
    const auto start = Clock::now();
    for (int i = 0; i < iters; ++i)
        gemmInto(out, a, b);
    return elapsedMs(start);
}

/** gemmInto at one size, scalar dispatch vs the SIMD fast path. */
KernelRow
benchGemmKernel(std::size_t n, int iters)
{
    KernelRow row;
    row.name = "gemm_scalar_vs_simd";
    row.n = n;
    row.iters = iters;
    const Matrix a = denseTestMatrix(n, 2 * n + 1);
    const Matrix b = denseTestMatrix(n, 2 * n + 2);
    const kernels::SimdMode saved = kernels::activeSimd();
    kernels::setActiveSimd(kernels::SimdMode::Scalar);
    row.baselineMs = timeGemm(a, b, iters);
    kernels::setActiveSimd(kernels::avx2Supported()
                               ? kernels::SimdMode::Avx2
                               : kernels::SimdMode::Scalar);
    row.optimizedMs = timeGemm(a, b, iters);
    kernels::setActiveSimd(saved);
    return row;
}

/**
 * Jacobi eigendecomposition over a drive-ramp-like family of
 * Hermitian matrices, cold every step vs seeded with the previous
 * step's eigenvectors (the simulator's warm-start pattern).
 */
KernelRow
benchEigKernel(std::size_t n, int iters)
{
    KernelRow row;
    row.name = "eig_cold_vs_warm";
    row.n = n;
    row.iters = iters;
    const Matrix base = denseTestMatrix(n, 31);
    const Matrix pert = denseTestMatrix(n, 47);
    const Matrix h0 = (base + base.adjoint()) * Complex{0.5, 0.0};
    const Matrix dh = (pert + pert.adjoint()) * Complex{0.005, 0.0};

    Workspace ws;
    std::vector<double> values;
    Matrix vectors;
    Matrix h = h0;

    auto start = Clock::now();
    for (int i = 0; i < iters; ++i) {
        h = h0 + dh * Complex{static_cast<double>(i), 0.0};
        eigHermitianInPlace(h, nullptr, values, vectors, ws,
                            /*sortAscending=*/false);
    }
    row.baselineMs = elapsedMs(start);

    eigHermitianInPlace(h0, nullptr, values, vectors, ws, false);
    start = Clock::now();
    for (int i = 0; i < iters; ++i) {
        h = h0 + dh * Complex{static_cast<double>(i), 0.0};
        eigHermitianInPlace(h, &vectors, values, vectors, ws,
                            /*sortAscending=*/false);
    }
    row.optimizedMs = elapsedMs(start);
    return row;
}

/** Uncached overhaul measurement: legacy per-sample vs drift kernel. */
struct UncachedRow
{
    std::string name;
    int reps = 0;
    double legacyMs = 0.0;
    double overhauledMs = 0.0;
    double maxDiff = 0.0;

    double speedup() const { return legacyMs / overhauledMs; }
};

/**
 * Time the uncached path in the pre-overhaul configuration (drift
 * kernel off, scalar dispatch) against the overhauled default, and
 * record their propagator agreement.
 */
UncachedRow
benchUncachedOverhaul(const std::string &name, PulseSimulator sim,
                      const Schedule &schedule, int reps)
{
    UncachedRow row;
    row.name = name;
    row.reps = reps;
    sim.setCachingEnabled(false);

    const kernels::SimdMode saved = kernels::activeSimd();
    sim.setDriftKernelEnabled(false);
    kernels::setActiveSimd(kernels::SimdMode::Scalar);
    Matrix legacy_u;
    auto start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        legacy_u = sim.evolveUnitary(schedule).unitary;
    row.legacyMs = elapsedMs(start);

    sim.setDriftKernelEnabled(true);
    kernels::setActiveSimd(saved);
    Matrix fast_u;
    start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        fast_u = sim.evolveUnitary(schedule).unitary;
    row.overhauledMs = elapsedMs(start);
    row.maxDiff = maxAbsDiff(legacy_u, fast_u);
    return row;
}

/** Batched-vs-looped state evolution measurement (the panel engine). */
struct BatchedRow
{
    std::string name;
    std::size_t width = 0;
    double loopedMs = 0.0;
    double batchedMs = 0.0;
    double maxDiff = 0.0;

    double speedup() const { return loopedMs / batchedMs; }
};

/**
 * Time K looped evolveState calls against one evolveStatesBatched
 * panel of width K with caching DISABLED, so the measurement isolates
 * the panel engine's propagator sharing (every per-sample propagator
 * is computed K times looped, once batched) rather than cache reuse.
 * Records the worst per-column max-abs final-state difference.
 */
BatchedRow
benchBatchedEvolve(const std::string &name, PulseSimulator sim,
                   const Schedule &schedule, std::size_t width)
{
    BatchedRow row;
    row.name = name;
    row.width = width;
    sim.setCachingEnabled(false);

    const std::size_t dim = sim.model().dim();
    Vector ground(dim);
    ground[0] = Complex{1.0, 0.0};

    Vector looped_final;
    auto start = Clock::now();
    for (std::size_t k = 0; k < width; ++k)
        looped_final = sim.evolveState(schedule, ground);
    row.loopedMs = elapsedMs(start);

    StatePanel panel(dim, width);
    panel.fillColumns(ground);
    start = Clock::now();
    sim.evolveStatesBatched(schedule, panel);
    row.batchedMs = elapsedMs(start);

    Vector column;
    for (std::size_t k = 0; k < width; ++k) {
        panel.getColumn(k, column);
        for (std::size_t i = 0; i < dim; ++i)
            row.maxDiff = std::max(
                row.maxDiff, std::abs(looped_final[i] - column[i]));
    }
    return row;
}

void
writeJson(const std::vector<EvolveRow> &rows,
          const std::vector<KernelRow> &kernels,
          const UncachedRow &uncached, const BatchedRow &batched,
          long shots, double baseline_ms, double optimized_ms,
          double shot_hit_rate, std::size_t threads)
{
    std::FILE *out = bench::openBenchJson("BENCH_pulsesim.json");
    if (out == nullptr)
        return;
    const double shot_speedup = baseline_ms / optimized_ms;
    std::fprintf(out, "{\n");
    bench::writeBenchHeader(out, "pulsesim");
    std::fprintf(out, "  \"threads\": %zu,\n", threads);
    std::fprintf(out, "  \"workloads\": [\n");
    for (std::size_t k = 0; k < rows.size(); ++k) {
        const EvolveRow &row = rows[k];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"reps\": %d, "
                     "\"uncached_wall_ms\": %.3f, "
                     "\"cached_wall_ms\": %.3f, \"speedup\": %.2f, "
                     "\"cache_hit_rate\": %.4f, "
                     "\"max_abs_diff\": %.3e},\n",
                     row.name.c_str(), row.reps, row.uncachedMs,
                     row.cachedMs, row.speedup(), row.hitRate,
                     row.maxDiff);
    }
    std::fprintf(out,
                 "    {\"name\": \"repeated_schedule_shots\", "
                 "\"shots\": %ld, \"baseline_wall_ms\": %.3f, "
                 "\"optimized_wall_ms\": %.3f, \"speedup\": %.2f, "
                 "\"cache_hit_rate\": %.4f}\n",
                 shots, baseline_ms, optimized_ms, shot_speedup,
                 shot_hit_rate);
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"kernels\": [\n");
    for (std::size_t k = 0; k < kernels.size(); ++k) {
        const KernelRow &row = kernels[k];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"n\": %zu, "
                     "\"iters\": %d, \"baseline_wall_ms\": %.3f, "
                     "\"optimized_wall_ms\": %.3f, "
                     "\"speedup\": %.2f}%s\n",
                     row.name.c_str(), row.n, row.iters, row.baselineMs,
                     row.optimizedMs, row.speedup(),
                     k + 1 < kernels.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"uncached\": {\"workload\": \"%s\", \"reps\": %d, "
                 "\"legacy_wall_ms\": %.3f, "
                 "\"overhauled_wall_ms\": %.3f, \"speedup\": %.2f, "
                 "\"max_abs_diff\": %.3e, \"simd\": \"%s\"},\n",
                 uncached.name.c_str(), uncached.reps, uncached.legacyMs,
                 uncached.overhauledMs, uncached.speedup(),
                 uncached.maxDiff,
                 kernels::simdModeName(kernels::activeSimd()));
    std::fprintf(out,
                 "  \"batched\": {\"workload\": \"%s\", "
                 "\"width\": %zu, \"looped_wall_ms\": %.3f, "
                 "\"batched_wall_ms\": %.3f, \"speedup\": %.2f, "
                 "\"max_abs_diff\": %.3e, \"simd\": \"%s\"},\n",
                 batched.name.c_str(), batched.width, batched.loopedMs,
                 batched.batchedMs, batched.speedup(), batched.maxDiff,
                 kernels::simdModeName(kernels::activeSimd()));
    bench::writeTelemetryField(out);
    const bool pass = shot_speedup >= 5.0 &&
                      uncached.speedup() >= 3.0 &&
                      uncached.maxDiff <= 1e-12 &&
                      batched.speedup() >= 3.0 &&
                      batched.maxDiff <= 1e-12;
    std::fprintf(out,
                 "  \"acceptance\": {\"required_speedup\": 5.0, "
                 "\"measured_speedup\": %.2f, "
                 "\"required_uncached_speedup\": 3.0, "
                 "\"measured_uncached_speedup\": %.2f, "
                 "\"uncached_max_abs_diff\": %.3e, "
                 "\"required_batched_speedup\": 3.0, "
                 "\"measured_batched_speedup\": %.2f, "
                 "\"batched_max_abs_diff\": %.3e, \"pass\": %s}\n",
                 shot_speedup, uncached.speedup(), uncached.maxDiff,
                 batched.speedup(), batched.maxDiff,
                 pass ? "true" : "false");
    std::fprintf(out, "}\n");
    bench::closeBenchJson(out, "BENCH_pulsesim.json");
}

} // namespace

int
main()
{
    bench::banner(
        "Pulse-simulator perf: propagator cache + threaded shots",
        "repeated-schedule shot workload >= 5x faster with the cache "
        "on; cached == uncached to 1e-12");

    const std::size_t threads = ThreadPool::global().size();
    std::printf("thread pool size: %zu (QPULSE_THREADS overrides)\n\n",
                threads);

    // --- Workload construction (calibration excluded from timings).
    const BackendConfig pair_config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(pair_config);
    Calibrator calibrator(pair_config);
    const QubitCalibration cal = calibrator.calibrateQubit(0);

    Schedule x_schedule("x180");
    x_schedule.play(driveChannel(0), cal.x180Pulse());

    const Schedule cnot_schedule =
        backend->schedule(makeGate(GateType::Cnot, {0, 1}));

    std::vector<EvolveRow> rows;
    rows.push_back(benchUnitary(
        "single_qubit_x_unitary",
        PulseSimulator(calibrator.qubitModel(0)), x_schedule, 32));
    rows.push_back(benchUnitary("cr_pair_cnot_unitary",
                                calibrator.pairSimulator(0, 1),
                                cnot_schedule, 8));
    rows.push_back(benchLindblad(
        "single_qubit_x_lindblad",
        PulseSimulator(calibrator.qubitModel(0)), x_schedule, 32));

    TextTable table({"workload", "reps", "uncached (ms)", "cached (ms)",
                     "speedup", "hit rate", "max |diff|"});
    for (const EvolveRow &row : rows)
        table.addRow({row.name, std::to_string(row.reps),
                      fmtFixed(row.uncachedMs, 1),
                      fmtFixed(row.cachedMs, 1),
                      fmtFixed(row.speedup(), 1) + "x",
                      fmtPercent(row.hitRate, 1),
                      fmtExp(row.maxDiff)});
    std::printf("%s\n", table.render().c_str());

    // --- Per-kernel microbenches: gemm scalar vs SIMD dispatch at the
    // simulator's working sizes (d=3, d^2=9, and a larger 16), and the
    // Jacobi solver cold vs warm-started.
    std::printf("active SIMD dispatch: %s (QPULSE_SIMD=0 forces "
                "scalar)\n\n",
                kernels::simdModeName(kernels::activeSimd()));
    std::vector<KernelRow> kernel_rows;
    kernel_rows.push_back(benchGemmKernel(3, 400000));
    kernel_rows.push_back(benchGemmKernel(9, 60000));
    kernel_rows.push_back(benchGemmKernel(16, 15000));
    kernel_rows.push_back(benchEigKernel(9, 20000));

    TextTable ktable({"kernel", "n", "iters", "baseline (ms)",
                      "optimized (ms)", "speedup"});
    for (const KernelRow &row : kernel_rows)
        ktable.addRow({row.name, std::to_string(row.n),
                       std::to_string(row.iters),
                       fmtFixed(row.baselineMs, 1),
                       fmtFixed(row.optimizedMs, 1),
                       fmtFixed(row.speedup(), 2) + "x"});
    std::printf("%s\n", ktable.render().c_str());

    // --- Uncached overhaul: the tentpole acceptance measurement. The
    // legacy configuration replays the pre-overhaul per-sample path
    // (no drift kernel, scalar dispatch).
    const UncachedRow uncached = benchUncachedOverhaul(
        "cr_pair_cnot_unitary", calibrator.pairSimulator(0, 1),
        cnot_schedule, 8);
    std::printf("uncached overhaul (%s, %d reps):\n",
                uncached.name.c_str(), uncached.reps);
    std::printf("  legacy (no drift kernel, scalar):  %8.1f ms\n",
                uncached.legacyMs);
    std::printf("  overhauled (drift kernel, %s): %8.1f ms\n",
                kernels::simdModeName(kernels::activeSimd()),
                uncached.overhauledMs);
    std::printf("  speedup: %.1fx (acceptance: >= 3x) %s\n",
                uncached.speedup(),
                uncached.speedup() >= 3.0 ? "PASS" : "FAIL");
    std::printf("  max |diff| vs legacy propagators: %s "
                "(acceptance: <= 1e-12) %s\n\n",
                fmtExp(uncached.maxDiff).c_str(),
                uncached.maxDiff <= 1e-12 ? "PASS" : "FAIL");

    // --- Batched panel engine: K looped uncached evolutions vs one
    // width-K panel on the CR-pair CNOT workload. With the cache off
    // the looped path recomputes every per-sample propagator K times;
    // the panel computes each once and applies it as a single gemm.
    const BatchedRow batched = benchBatchedEvolve(
        "cr_pair_cnot_state", calibrator.pairSimulator(0, 1),
        cnot_schedule, 64);
    std::printf("batched panel evolution (%s, K=%zu, uncached):\n",
                batched.name.c_str(), batched.width);
    std::printf("  looped (K evolveState calls):     %8.1f ms\n",
                batched.loopedMs);
    std::printf("  batched (one width-K panel):      %8.1f ms\n",
                batched.batchedMs);
    std::printf("  speedup: %.1fx (acceptance: >= 3x) %s\n",
                batched.speedup(),
                batched.speedup() >= 3.0 ? "PASS" : "FAIL");
    std::printf("  max |diff| vs looped final state: %s "
                "(acceptance: <= 1e-12) %s\n\n",
                fmtExp(batched.maxDiff).c_str(),
                batched.maxDiff <= 1e-12 ? "PASS" : "FAIL");

    // --- Repeated-schedule shot workload: the original acceptance
    // criterion. Legacy baseline = the seed code path (no memoization,
    // one thread, no drift kernel, scalar dispatch) so the 5x gate
    // keeps measuring against the same pre-cache baseline; optimized =
    // shared cache + up to four threads + overhauled kernels.
    PulseSimulator shot_sim_legacy(calibrator.qubitModel(0));
    shot_sim_legacy.setDriftKernelEnabled(false);
    const PulseSimulator shot_sim(calibrator.qubitModel(0));
    PulseShotOptions legacy;
    legacy.shots = 192;
    legacy.seed = 7;
    legacy.useCache = false;
    legacy.maxThreads = 1;
    const kernels::SimdMode dispatch_mode = kernels::activeSimd();
    kernels::setActiveSimd(kernels::SimdMode::Scalar);
    auto start = Clock::now();
    const PulseShotResult base =
        backend->runShots(shot_sim_legacy, x_schedule, legacy);
    const double baseline_ms = elapsedMs(start);
    kernels::setActiveSimd(dispatch_mode);

    PulseShotOptions fast;
    fast.shots = 192;
    fast.seed = 7;
    fast.useCache = true;
    fast.maxThreads = 4;
    start = Clock::now();
    const PulseShotResult opt =
        backend->runShots(shot_sim, x_schedule, fast);
    const double optimized_ms = elapsedMs(start);

    bool counts_match = base.counts == opt.counts;
    const double shot_speedup = baseline_ms / optimized_ms;
    std::printf("repeated-schedule shots (%ld shots of x180):\n",
                legacy.shots);
    std::printf("  legacy (no cache, 1 thread):      %8.1f ms\n",
                baseline_ms);
    std::printf("  optimized (cache, <=4 threads):   %8.1f ms "
                "(hit rate %.1f%%)\n",
                optimized_ms, 100.0 * opt.cacheStats.hitRate());
    std::printf("  speedup: %.1fx (acceptance: >= 5x) %s\n",
                shot_speedup, shot_speedup >= 5.0 ? "PASS" : "FAIL");
    std::printf("  counts identical across configurations: %s\n\n",
                counts_match ? "yes" : "NO (BUG)");

    bench::printTelemetry();
    writeJson(rows, kernel_rows, uncached, batched, legacy.shots,
              baseline_ms, optimized_ms, opt.cacheStats.hitRate(),
              threads);
    return shot_speedup >= 5.0 && uncached.speedup() >= 3.0 &&
                   uncached.maxDiff <= 1e-12 &&
                   batched.speedup() >= 3.0 &&
                   batched.maxDiff <= 1e-12 && counts_match
               ? 0
               : 1;
}
