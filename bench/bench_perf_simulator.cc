/**
 * @file
 * Pulse-simulator hot-path performance bench: times single-qubit,
 * CR-pair and Lindblad evolutions with the propagator cache off and
 * on, and the repeated-schedule shot workload (PulseBackend::runShots)
 * in the legacy configuration (no cache, one thread) versus the
 * optimized one (shared cache, four threads). Results — wall times,
 * cache hit rates, speedups and cached-vs-uncached agreement — are
 * printed as a table and written machine-readably to
 * BENCH_pulsesim.json for regression tracking.
 *
 * Acceptance bar (see docs/PERFORMANCE.md): the repeated-schedule
 * shot workload must run >= 5x faster optimized than legacy, and the
 * cached evolutions must agree with the exact per-sample path to
 * 1e-12 in max-abs difference.
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "common/thread_pool.h"

using namespace qpulse;

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

std::string
fmtExp(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1e", value);
    return buf;
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    double max_diff = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            max_diff = std::max(max_diff, std::abs(a(r, c) - b(r, c)));
    return max_diff;
}

/** One cache-off-vs-on evolution workload's measurements. */
struct EvolveRow
{
    std::string name;
    int reps = 0;
    double uncachedMs = 0.0;
    double cachedMs = 0.0;
    double hitRate = 0.0;
    double maxDiff = 0.0;

    double speedup() const { return uncachedMs / cachedMs; }
};

/**
 * Time `reps` repeated evolutions of one schedule with caching
 * disabled (legacy per-sample path) and with a fresh shared cache,
 * recording the hit rate and the max-abs difference of the results.
 */
EvolveRow
benchUnitary(const std::string &name, PulseSimulator sim,
             const Schedule &schedule, int reps)
{
    EvolveRow row;
    row.name = name;
    row.reps = reps;

    sim.setCachingEnabled(false);
    Matrix exact;
    auto start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        exact = sim.evolveUnitary(schedule).unitary;
    row.uncachedMs = elapsedMs(start);

    sim.setCachingEnabled(true);
    auto cache = std::make_shared<PropagatorCache>();
    sim.setPropagatorCache(cache);
    Matrix cached;
    start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        cached = sim.evolveUnitary(schedule).unitary;
    row.cachedMs = elapsedMs(start);
    row.hitRate = cache->stats().hitRate();
    row.maxDiff = maxAbsDiff(exact, cached);
    return row;
}

/** Same as benchUnitary for the Lindblad density-matrix path. */
EvolveRow
benchLindblad(const std::string &name, PulseSimulator sim,
              const Schedule &schedule, int reps)
{
    EvolveRow row;
    row.name = name;
    row.reps = reps;

    Matrix rho0(sim.model().dim(), sim.model().dim());
    rho0(0, 0) = Complex{1.0, 0.0};

    sim.setCachingEnabled(false);
    Matrix exact;
    auto start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        exact = sim.evolveLindblad(schedule, rho0);
    row.uncachedMs = elapsedMs(start);

    sim.setCachingEnabled(true);
    auto cache = std::make_shared<PropagatorCache>();
    sim.setPropagatorCache(cache);
    Matrix cached;
    start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        cached = sim.evolveLindblad(schedule, rho0);
    row.cachedMs = elapsedMs(start);
    row.hitRate = cache->stats().hitRate();
    row.maxDiff = maxAbsDiff(exact, cached);
    return row;
}

void
writeJson(const std::vector<EvolveRow> &rows, long shots,
          double baseline_ms, double optimized_ms, double shot_hit_rate,
          std::size_t threads)
{
    std::FILE *out = bench::openBenchJson("BENCH_pulsesim.json");
    if (out == nullptr)
        return;
    const double shot_speedup = baseline_ms / optimized_ms;
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"pulsesim\",\n");
    std::fprintf(out, "  \"threads\": %zu,\n", threads);
    std::fprintf(out, "  \"workloads\": [\n");
    for (std::size_t k = 0; k < rows.size(); ++k) {
        const EvolveRow &row = rows[k];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"reps\": %d, "
                     "\"uncached_wall_ms\": %.3f, "
                     "\"cached_wall_ms\": %.3f, \"speedup\": %.2f, "
                     "\"cache_hit_rate\": %.4f, "
                     "\"max_abs_diff\": %.3e},\n",
                     row.name.c_str(), row.reps, row.uncachedMs,
                     row.cachedMs, row.speedup(), row.hitRate,
                     row.maxDiff);
    }
    std::fprintf(out,
                 "    {\"name\": \"repeated_schedule_shots\", "
                 "\"shots\": %ld, \"baseline_wall_ms\": %.3f, "
                 "\"optimized_wall_ms\": %.3f, \"speedup\": %.2f, "
                 "\"cache_hit_rate\": %.4f}\n",
                 shots, baseline_ms, optimized_ms, shot_speedup,
                 shot_hit_rate);
    std::fprintf(out, "  ],\n");
    bench::writeTelemetryField(out);
    std::fprintf(out,
                 "  \"acceptance\": {\"required_speedup\": 5.0, "
                 "\"measured_speedup\": %.2f, \"pass\": %s}\n",
                 shot_speedup, shot_speedup >= 5.0 ? "true" : "false");
    std::fprintf(out, "}\n");
    bench::closeBenchJson(out, "BENCH_pulsesim.json");
}

} // namespace

int
main()
{
    bench::banner(
        "Pulse-simulator perf: propagator cache + threaded shots",
        "repeated-schedule shot workload >= 5x faster with the cache "
        "on; cached == uncached to 1e-12");

    const std::size_t threads = ThreadPool::global().size();
    std::printf("thread pool size: %zu (QPULSE_THREADS overrides)\n\n",
                threads);

    // --- Workload construction (calibration excluded from timings).
    const BackendConfig pair_config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(pair_config);
    Calibrator calibrator(pair_config);
    const QubitCalibration cal = calibrator.calibrateQubit(0);

    Schedule x_schedule("x180");
    x_schedule.play(driveChannel(0), cal.x180Pulse());

    const Schedule cnot_schedule =
        backend->schedule(makeGate(GateType::Cnot, {0, 1}));

    std::vector<EvolveRow> rows;
    rows.push_back(benchUnitary(
        "single_qubit_x_unitary",
        PulseSimulator(calibrator.qubitModel(0)), x_schedule, 32));
    rows.push_back(benchUnitary("cr_pair_cnot_unitary",
                                calibrator.pairSimulator(0, 1),
                                cnot_schedule, 8));
    rows.push_back(benchLindblad(
        "single_qubit_x_lindblad",
        PulseSimulator(calibrator.qubitModel(0)), x_schedule, 32));

    TextTable table({"workload", "reps", "uncached (ms)", "cached (ms)",
                     "speedup", "hit rate", "max |diff|"});
    for (const EvolveRow &row : rows)
        table.addRow({row.name, std::to_string(row.reps),
                      fmtFixed(row.uncachedMs, 1),
                      fmtFixed(row.cachedMs, 1),
                      fmtFixed(row.speedup(), 1) + "x",
                      fmtPercent(row.hitRate, 1),
                      fmtExp(row.maxDiff)});
    std::printf("%s\n", table.render().c_str());

    // --- Repeated-schedule shot workload: the acceptance criterion.
    // Legacy baseline = the seed code path (no memoization, one
    // thread); optimized = shared cache + up to four threads.
    const PulseSimulator shot_sim(calibrator.qubitModel(0));
    PulseShotOptions legacy;
    legacy.shots = 192;
    legacy.seed = 7;
    legacy.useCache = false;
    legacy.maxThreads = 1;
    auto start = Clock::now();
    const PulseShotResult base =
        backend->runShots(shot_sim, x_schedule, legacy);
    const double baseline_ms = elapsedMs(start);

    PulseShotOptions fast;
    fast.shots = 192;
    fast.seed = 7;
    fast.useCache = true;
    fast.maxThreads = 4;
    start = Clock::now();
    const PulseShotResult opt =
        backend->runShots(shot_sim, x_schedule, fast);
    const double optimized_ms = elapsedMs(start);

    bool counts_match = base.counts == opt.counts;
    const double shot_speedup = baseline_ms / optimized_ms;
    std::printf("repeated-schedule shots (%ld shots of x180):\n",
                legacy.shots);
    std::printf("  legacy (no cache, 1 thread):      %8.1f ms\n",
                baseline_ms);
    std::printf("  optimized (cache, <=4 threads):   %8.1f ms "
                "(hit rate %.1f%%)\n",
                optimized_ms, 100.0 * opt.cacheStats.hitRate());
    std::printf("  speedup: %.1fx (acceptance: >= 5x) %s\n",
                shot_speedup, shot_speedup >= 5.0 ? "PASS" : "FAIL");
    std::printf("  counts identical across configurations: %s\n\n",
                counts_match ? "yes" : "NO (BUG)");

    bench::printTelemetry();
    writeJson(rows, legacy.shots, baseline_ms, optimized_ms,
              opt.cacheStats.hitRate(), threads);
    return shot_speedup >= 5.0 && counts_match ? 0 : 1;
}
