/**
 * @file
 * Extension — zero-noise extrapolation via pulse stretching (the
 * paper's reference [8] application of OpenPulse, built on this
 * compiler's stretching machinery): measure the ZZ parity of a
 * Trotterised evolution at stretch factors c = 1, 1.5, 2, and
 * Richardson-extrapolate to c = 0. Run for both compiler flows: the
 * optimized flow starts closer to ideal AND extrapolates better
 * (its shorter schedules leave less noise to extrapolate away).
 */
#include <cstdio>

#include "algos/hamiltonians.h"
#include "bench_util.h"
#include "common/table.h"
#include "compile/zne.h"

using namespace qpulse;

int
main()
{
    bench::banner(
        "Extension: zero-noise extrapolation by pulse stretching",
        "reference [8] (Garmon et al.): OpenPulse noise extrapolation; "
        "stretch c = 1 / 1.5 / 2, Richardson to c = 0");

    BackendConfig config = almadenLineConfig(2);
    for (auto &readout : config.readout)
        readout = ReadoutError{0.0, 0.0}; // Isolate gate noise.
    const auto backend = makeCalibratedBackend(config);

    // A ZZ-parity-conserving workload with a known ideal value:
    // repeated pi ZZ rotations (barriers keep the pulses in place).
    QuantumCircuit circuit(2);
    circuit.x(0);
    for (int k = 0; k < 6; ++k) {
        circuit.barrier();
        circuit.rzz(kPi, 0, 1);
    }
    circuit.barrier();
    circuit.x(0);
    const DiagonalObservable zz = {1.0, -1.0, -1.0, 1.0};
    const double ideal = 1.0;

    Rng rng(0x2E1);
    TextTable table({"flow", "c=1.0", "c=1.5", "c=2.0",
                     "extrapolated", "raw error", "mitigated error"});
    for (const CompileMode mode :
         {CompileMode::Standard, CompileMode::Optimized}) {
        const PulseCompiler compiler(backend, mode);
        const ZneResult result = zeroNoiseExtrapolate(
            compiler, circuit, zz, {1.0, 1.5, 2.0}, 100000, rng);
        table.addRow(
            {mode == CompileMode::Standard ? "standard" : "optimized",
             fmtFixed(result.measured[0], 4),
             fmtFixed(result.measured[1], 4),
             fmtFixed(result.measured[2], 4),
             fmtFixed(result.extrapolated, 4),
             fmtFixed(std::abs(result.unmitigated - ideal), 4),
             fmtFixed(std::abs(result.extrapolated - ideal), 4)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("ideal <ZZ> = %.1f; extrapolation recovers most of "
                "the noise-induced bias for both flows, on top of the "
                "optimized flow's head start.\n",
                ideal);
    return 0;
}
