/**
 * @file
 * Figure 8 / Section 5.2 — the open-CNOT under both flows: the
 * optimized compiler's cross-gate pulse cancellation removes the X
 * pulses adjacent to the CNOT echo, cutting the schedule duration by
 * ~24% (1984 dt -> 1504 dt in the paper; our calibrated echo is a
 * little longer but the proportional saving matches). The success
 * probability of both variants is measured over 16k shots.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

using namespace qpulse;

int
main()
{
    bench::banner(
        "Figure 8: open-CNOT pulse schedules, standard vs optimized",
        "24% duration reduction (1984 dt -> 1504 dt); success "
        "87.1(9)% -> 87.3(9)% over 16k shots");

    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    const PulseCompiler standard(backend, CompileMode::Standard);
    const PulseCompiler optimized(backend, CompileMode::Optimized);

    QuantumCircuit circuit(2);
    circuit.openCx(0, 1);
    const CompileResult std_result = standard.compile(circuit);
    const CompileResult opt_result = optimized.compile(circuit);

    std::printf("\nstandard schedule:\n%s",
                std_result.schedule.render().c_str());
    std::printf("\noptimized schedule:\n%s\n",
                opt_result.schedule.render().c_str());
    std::printf("optimized basis circuit (X cancellations visible):\n%s\n",
                opt_result.basisCircuit.toString().c_str());

    const double reduction =
        100.0 * (1.0 - static_cast<double>(opt_result.durationDt) /
                           static_cast<double>(std_result.durationDt));

    TextTable table({"flow", "pulses", "duration (dt)", "paper (dt)"});
    table.addRow({"standard", std::to_string(std_result.pulseCount),
                  std::to_string(std_result.durationDt), "1984"});
    table.addRow({"optimized", std::to_string(opt_result.pulseCount),
                  std::to_string(opt_result.durationDt), "1504"});
    std::printf("%s", table.render().c_str());
    std::printf("\nduration reduction: %.1f%% (paper: 24%%)\n\n",
                reduction);

    // Success probability over 16k shots through the noisy simulator:
    // from |00>, the open-CNOT should produce |01>.
    Rng rng(0xF18);
    TextTable success({"flow", "success probability", "sigma", "paper"});
    const std::pair<const PulseCompiler *, const char *> modes[] = {
        {&standard, "standard"}, {&optimized, "optimized"}};
    for (const auto &entry : modes) {
        DensitySimulator simulator = entry.first->makeSimulator();
        QuantumCircuit measured(2);
        measured.openCx(0, 1);
        measured.measureAll();
        const NoisyRunResult run =
            simulator.run(entry.first->transpile(measured));
        const auto counts =
            simulator.sampleCounts(run, shots::kOpenCnot, rng);
        const double p = static_cast<double>(counts[1]) /
                         static_cast<double>(shots::kOpenCnot);
        const double sigma =
            std::sqrt(p * (1.0 - p) /
                      static_cast<double>(shots::kOpenCnot));
        success.addRow({entry.second, fmtPercent(p, 2),
                        fmtPercent(sigma, 2),
                        std::string(entry.second) == "standard"
                            ? "87.1(9)%"
                            : "87.3(9)%"});
    }
    std::printf("%s\n", success.render().c_str());
    return 0;
}
