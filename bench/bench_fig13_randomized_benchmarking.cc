/**
 * @file
 * Figure 13 — randomized-benchmarking-style experiment on the
 * Armonk-like backend: K = 2..25, five random sequences per length,
 * 8000 shots each, three compile modes (5 x 24 x 3 x 8k = 2.88M
 * shots). Decays are fit to a * f^K + b; the paper extracts
 * f = 99.87% (optimized), 99.83% (optimized-slow), 99.82% (standard),
 * attributing ~70% of the improvement to shorter pulses. Also checks
 * the coherence-limit bound (>= 0.01% improvement from the 2x pulse
 * speedup).
 */
#include <cstdio>

#include "bench_util.h"
#include "common/ascii_plot.h"
#include "common/table.h"
#include "rb/randomized_benchmarking.h"

using namespace qpulse;

int
main()
{
    bench::banner(
        "Figure 13: randomized benchmarking, three compile modes "
        "(2.88M shots)",
        "f = 99.87% optimized / 99.83% optimized-slow / 99.82% "
        "standard; ~70% of the gain from shorter pulses");

    const BackendConfig config = armonkConfig();
    const auto backend = makeCalibratedBackend(config);

    RbConfig rb_config;
    rb_config.minLength = 2;
    rb_config.maxLength = 25;
    rb_config.lengthStride = 1;
    rb_config.sequencesPerLength = 5;
    rb_config.shots = shots::kRbPerPoint;
    rb_config.parallelSequences = true; // Batch over the thread pool.

    // RB-under-faults: QPULSE_FAULT_PLAN (docs/ROBUSTNESS.md) turns on
    // deterministic per-cell fault accounting, so a faulted Figure 13
    // is reproducible from this binary alone, e.g.
    //   QPULSE_FAULT_PLAN="transient=0.2,ro_flip=0.01" ./bench_fig13...
    rb_config.faultPlan = FaultPlan::fromEnv();
    if (rb_config.faultPlan.enabled())
        std::printf("fault plan active: %s\n",
                    rb_config.faultPlan.toString().c_str());

    const std::pair<RbMode, const char *> modes[] = {
        {RbMode::Optimized, "optimized"},
        {RbMode::OptimizedSlow, "optimized-slow"},
        {RbMode::Standard, "standard"},
    };
    const char *paper[] = {"99.87%", "99.83%", "99.82%"};

    std::vector<RbResult> results;
    TextTable table({"mode", "fitted f", "paper f", "error / gate"});
    int index = 0;
    for (const auto &mode : modes) {
        const RbResult result = runRb(backend, mode.first, rb_config);
        table.addRow({mode.second, fmtPercent(result.gateFidelity, 3),
                      paper[index],
                      fmtPercent(1.0 - result.gateFidelity, 3)});
        results.push_back(result);
        std::printf("  %-15s f = %.5f\n", mode.second,
                    result.gateFidelity);
        if (rb_config.faultPlan.enabled())
            std::printf("  %-15s resilience: %s\n", "",
                        result.resilience.toString().c_str());
        std::fflush(stdout);
        ++index;
    }

    // Decay curves.
    std::printf("\ndecay curves (survival vs K):\n");
    TextTable decay({"K", "optimized", "optimized-slow", "standard"});
    for (std::size_t point = 0; point < results[0].decay.size();
         point += 3)
        decay.addRow(
            {std::to_string(results[0].decay[point].sequenceLength),
             fmtFixed(results[0].decay[point].survival, 4),
             fmtFixed(results[1].decay[point].survival, 4),
             fmtFixed(results[2].decay[point].survival, 4)});
    std::printf("%s\n", decay.render().c_str());

    // Sketch the three decay curves (the Figure 13 panel).
    std::vector<PlotSeries> curves;
    const char glyphs[3] = {'o', 's', 'x'};
    for (std::size_t m = 0; m < results.size(); ++m) {
        PlotSeries entry;
        entry.label = modes[m].second;
        entry.glyph = glyphs[m];
        for (const auto &point : results[m].decay) {
            entry.xs.push_back(point.sequenceLength);
            entry.ys.push_back(point.survival);
        }
        curves.push_back(std::move(entry));
    }
    std::printf("%s\n", renderAsciiPlot(curves).c_str());
    std::printf("%s\n", table.render().c_str());

    const double total =
        results[0].gateFidelity - results[2].gateFidelity;
    const double from_speed =
        results[0].gateFidelity - results[1].gateFidelity;
    std::printf("improvement attribution: %.0f%% from shorter pulses, "
                "%.0f%% from fewer/smaller pulses (paper: 70%% / "
                "30%%)\n",
                100.0 * from_speed / total,
                100.0 * (1.0 - from_speed / total));

    // Coherence-limit sanity bound (Section 8.3, [104] Eq. 24).
    const double limit_slow = coherenceLimitError(
        71.1, config.qubits[0].t1Us, config.qubits[0].t2Us);
    const double limit_fast = coherenceLimitError(
        35.6, config.qubits[0].t1Us, config.qubits[0].t2Us);
    std::printf("coherence-limit bound: 2x speedup must give >= %.4f%% "
                "fidelity (paper: 0.01%%); measured speed gain: "
                "%.4f%%\n",
                100.0 * (limit_slow - limit_fast), 100.0 * from_speed);
    std::printf("total shots: 5 x 24 x 3 x %ldk = %.2fM (paper: "
                "2.88M)\n",
                shots::kRbPerPoint / 1000,
                5.0 * 24.0 * 3.0 * shots::kRbPerPoint / 1e6);
    return 0;
}
