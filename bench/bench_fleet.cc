/**
 * @file
 * Fleet bench: drive the fleet-mode ExecutionService over an 8-member
 * BackendPool with independent seed-derived fault plans and emit
 * BENCH_fleet.json.
 *
 * The scenario models a production cloud fleet under sustained
 * multi-tenant load:
 *
 *  - 8 backends: two wedged (100% timeouts), two badly flaky (70%
 *    transients), four near-healthy (5% transients, one also
 *    drifting), every plan derived per backend
 *    (FaultPlan::deriveForBackend) so members fail independently;
 *  - 17 tenants (16 workload tenants with mixed weights/quotas plus
 *    an "ops" tenant that pins maintenance jobs at the wedged
 *    members, forcing their breakers to trip and quarantine them);
 *  - two phases: in phase 2 one wedged backend is "repaired" (its
 *    injector cleared) and must earn its way back into routing
 *    through half-open health probes — the other stays quarantined
 *    to the end;
 *  - a single-backend, failover-disabled baseline runs the same
 *    flaky fault rate to show what the fleet machinery buys.
 *
 * Acceptance thresholds (embedded in the JSON): >= 2000 jobs across
 * >= 16 tenants and 8 backends; the fleet completes >= 99% of
 * admitted jobs while the baseline stays below 70%; quarantine
 * happened and recovery went through probes only. Every deadline is a
 * generous afterMsOrBudget, the breaker cooldown counts denied calls,
 * and probe seeds derive from probe ordinals, so the printed
 * `determinism-fingerprint:` line is bit-identical across
 * QPULSE_THREADS under QPULSE_VIRTUAL_TIME=1 (CI diffs it at 1 vs 8).
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "device/fault_injector.h"
#include "service/backend_pool.h"
#include "service/execution_service.h"
#include "telemetry/metrics.h"

using namespace qpulse;

namespace {

constexpr long kShots = 32;
constexpr std::uint64_t kSeed = 0xF1EE7;
constexpr std::size_t kBackends = 8;
constexpr int kWorkloadTenants = 16;
constexpr int kJobsPerTenantPerPhase = 75;

// Embedded acceptance thresholds (also written to the JSON).
constexpr long kMinJobs = 2000;
constexpr int kMinTenants = 16;
constexpr double kFleetMinCompletion = 0.99;
constexpr double kBaselineMaxCompletion = 0.70;

/** The calibrated substrate every fleet member shares. */
struct Substrate
{
    Substrate()
        : config(almadenLineConfig(1)),
          backend(makeCalibratedBackend(config)),
          calibrator(config), sim(calibrator.qubitModel(0))
    {
        QuantumCircuit circuit(1);
        circuit.x(0);
        PulseCompiler optimized(backend, CompileMode::Optimized);
        PulseCompiler standard(backend, CompileMode::Standard);
        const CompileResult primary = optimized.compile(circuit);
        const CompileResult secondary = standard.compile(circuit);
        throwIfError(primary.validation);
        throwIfError(secondary.validation);
        schedule = primary.schedule;
        fallback = secondary.schedule;
        budgetUnits = static_cast<std::uint64_t>(
                          std::max<long>(schedule.duration(), 1)) *
                      static_cast<std::uint64_t>(kShots);
    }

    BackendConfig config;
    std::shared_ptr<const PulseBackend> backend;
    Calibrator calibrator;
    PulseSimulator sim;
    Schedule schedule;
    Schedule fallback;
    std::uint64_t budgetUnits = 0;
};

/** A budget no healthy job ever exhausts (virtual or wall-clock). */
Deadline
generous(const Substrate &sub)
{
    return Deadline::afterMsOrBudget(5000.0, sub.budgetUnits * 16);
}

BackendPool::Policies
fleetPoolPolicies()
{
    BackendPool::Policies policies;
    policies.retry.maxAttempts = 2;
    policies.retry.jitter = 0.0;
    policies.retry.maxTotalBackoffMs = 16.0;
    policies.breaker.window = 4;
    policies.breaker.minSamples = 2;
    policies.breaker.openFailureRate = 0.5;
    policies.breaker.cooldownDenials = 2;
    policies.breaker.halfOpenSuccesses = 2;
    return policies;
}

ServicePolicy
fleetServicePolicy()
{
    ServicePolicy policy;
    policy.queueCapacity = 4096;
    policy.retry.maxAttempts = 2;
    policy.breaker.window = 4;
    policy.breaker.minSamples = 2;
    policy.fleet.failoverBudget = 5;
    // 16 workload tenants with mixed weights; t00 runs over-quota to
    // exercise admission. "ops" is deliberately light so maintenance
    // jobs dequeue after routing traffic has pumped the probe loop.
    for (int t = 0; t < kWorkloadTenants; ++t) {
        TenantQuota quota;
        quota.weight = 1.0 + static_cast<double>(t % 3);
        quota.maxQueued = 100;
        char name[8];
        std::snprintf(name, sizeof name, "t%02d", t);
        policy.fleet.tenants[name] = quota;
    }
    policy.fleet.tenants["t00"].maxQueued = 40;
    policy.fleet.tenants["ops"].weight = 0.25;
    return policy;
}

std::string
tenantName(int t)
{
    char name[8];
    std::snprintf(name, sizeof name, "t%02d", t);
    return name;
}

struct RunResult
{
    ServiceStats stats;
    FleetStats pool;
    std::vector<JobOutcome> outcomes;
    std::uint64_t fingerprint = 0;
    double completion = 0.0;
    bool repairedActive = false;      ///< b0 back in routing.
    bool wedgeStillQuarantined = false; ///< b1 never recovered.
    bool adminReadmitBlocked = false; ///< Quarantine exempt from admin.
};

std::uint64_t
fnv1a(std::uint64_t hash, const std::string &text)
{
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return hash;
}

std::uint64_t
digestOutcomes(const std::vector<JobOutcome> &outcomes)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (const JobOutcome &out : outcomes) {
        hash = fnv1a(hash, std::to_string(out.id));
        hash = fnv1a(hash, errorCodeName(out.status.code()));
        hash = fnv1a(hash, out.backend);
        hash = fnv1a(hash, out.tenant);
        hash = fnv1a(hash, std::to_string(out.drainSeq));
        for (const FailoverHop &hop : out.path) {
            hash = fnv1a(hash, hop.backend);
            hash = fnv1a(hash, errorCodeName(hop.code));
        }
    }
    return hash;
}

JobRequest
makeJob(const Substrate &sub, const std::string &tenant,
        std::uint64_t job_index, int priority)
{
    JobRequest job;
    job.schedule = sub.schedule;
    job.fallback = sub.fallback;
    job.key = "x180/q0";
    job.tenant = tenant;
    job.shots = kShots;
    job.seed = Rng::deriveSeed(kSeed, job_index);
    job.priority = priority;
    job.deadline = generous(sub);
    return job;
}

/** The 8-member fleet under multi-tenant load, two phases. */
RunResult
fleetRun(const Substrate &sub)
{
    auto pool = std::make_shared<BackendPool>(fleetPoolPolicies());
    for (std::size_t i = 0; i < kBackends; ++i)
        pool->addBackend("b" + std::to_string(i), sub.backend,
                         sub.sim);

    // Independent per-backend fault plans from one base plan: two
    // wedged, two badly flaky, one drifting, three near-healthy.
    FaultPlan base;
    base.seed = 0xFA017;
    for (std::size_t i = 0; i < kBackends; ++i) {
        FaultPlan plan = base.deriveForBackend(i);
        if (i < 2) {
            plan.timeoutRate = 1.0; // b0, b1: wedged.
        } else if (i < 4) {
            plan.transientRate = 0.7; // b2, b3: badly flaky.
        } else {
            plan.transientRate = 0.05; // b4..b7: near-healthy.
            if (i == 5) {
                plan.driftRate = 0.05; // b5 also drifts.
                plan.driftFreqKhz = 6000.0;
                plan.driftAmpError = 0.25;
            }
        }
        pool->setFaultInjector(
            "b" + std::to_string(i),
            std::make_shared<FaultInjector>(plan));
    }

    ExecutionService service(pool, fleetServicePolicy());
    RunResult run;
    std::uint64_t jobIndex = 0;

    const auto submitPhase = [&](int pinnedAtB0, int pinnedAtB1) {
        for (int t = 0; t < kWorkloadTenants; ++t)
            for (int i = 0; i < kJobsPerTenantPerPhase; ++i)
                (void)service.submit(makeJob(sub, tenantName(t),
                                             jobIndex++, i % 3));
        // Maintenance traffic pinned at the wedged members: routing
        // would otherwise starve them of the failures that trip their
        // breakers into quarantine.
        for (int i = 0; i < pinnedAtB0 + pinnedAtB1; ++i) {
            JobRequest job = makeJob(sub, "ops", jobIndex++, 0);
            job.backendName = i < pinnedAtB0 ? "b0" : "b1";
            (void)service.submit(std::move(job));
        }
        for (const JobOutcome &out : service.drain())
            run.outcomes.push_back(out);
    };

    submitPhase(/*pinnedAtB0=*/6, /*pinnedAtB1=*/6);

    // Between phases both wedged members sit quarantined; admin
    // re-admission must be refused — probes are the only way back.
    run.adminReadmitBlocked =
        pool->adminState("b0") == BackendAdminState::Quarantined &&
        pool->adminState("b1") == BackendAdminState::Quarantined &&
        !pool->readmit("b0").ok() && !pool->readmit("b1").ok();

    // Phase 2: b0 is repaired; its probes now pass and re-admit it,
    // after which its pinned maintenance jobs complete. b1 stays
    // wedged — and stays quarantined.
    pool->setFaultInjector("b0", nullptr);
    submitPhase(/*pinnedAtB0=*/8, /*pinnedAtB1=*/0);

    run.stats = service.stats();
    run.pool = pool->stats();
    run.fingerprint = digestOutcomes(run.outcomes);
    run.completion =
        run.stats.admitted > 0
            ? static_cast<double>(run.stats.completed) /
                  static_cast<double>(run.stats.admitted)
            : 0.0;
    run.repairedActive =
        pool->adminState("b0") == BackendAdminState::Active;
    run.wedgeStillQuarantined =
        pool->adminState("b1") == BackendAdminState::Quarantined;
    return run;
}

/**
 * The control: one backend at the flaky members' fault rate, no
 * failover (a fleet of one). Same tenants, same job shape.
 */
RunResult
baselineRun(const Substrate &sub)
{
    auto pool = std::make_shared<BackendPool>(fleetPoolPolicies());
    pool->addBackend("solo", sub.backend, sub.sim);
    FaultPlan base;
    base.seed = 0xFA017;
    FaultPlan plan = base.deriveForBackend(2);
    plan.transientRate = 0.7;
    pool->setFaultInjector("solo",
                           std::make_shared<FaultInjector>(plan));

    ServicePolicy policy = fleetServicePolicy();
    policy.fleet.failoverEnabled = false;
    ExecutionService service(pool, policy);

    RunResult run;
    std::uint64_t jobIndex = 1u << 20; // Distinct seed stream.
    for (int t = 0; t < kWorkloadTenants; ++t)
        for (int i = 0; i < 38; ++i)
            (void)service.submit(
                makeJob(sub, tenantName(t), jobIndex++, i % 3));
    run.outcomes = service.drain();
    run.stats = service.stats();
    run.pool = pool->stats();
    run.fingerprint = digestOutcomes(run.outcomes);
    run.completion =
        run.stats.admitted > 0
            ? static_cast<double>(run.stats.completed) /
                  static_cast<double>(run.stats.admitted)
            : 0.0;
    return run;
}

} // namespace

int
main()
{
    bench::banner(
        "Backend fleet: health-aware routing, failover, quarantine "
        "and recovery",
        "(engineering bench) 8 backends with independent fault "
        "plans, 17 tenants, weighted-fair scheduling; single-backend "
        "baseline for contrast");

    const Substrate sub;
    const RunResult fleet = fleetRun(sub);
    const RunResult baseline = baselineRun(sub);

    TextTable table({"metric", "fleet", "baseline"});
    table.addRow({"submitted", std::to_string(fleet.stats.submitted),
                  std::to_string(baseline.stats.submitted)});
    table.addRow({"admitted", std::to_string(fleet.stats.admitted),
                  std::to_string(baseline.stats.admitted)});
    table.addRow({"completed", std::to_string(fleet.stats.completed),
                  std::to_string(baseline.stats.completed)});
    table.addRow({"completion",
                  fmtFixed(fleet.completion * 100.0, 2) + " %",
                  fmtFixed(baseline.completion * 100.0, 2) + " %"});
    table.addRow({"tenant_rejected",
                  std::to_string(fleet.stats.tenantRejected),
                  std::to_string(baseline.stats.tenantRejected)});
    table.addRow({"failovers", std::to_string(fleet.stats.failovers),
                  std::to_string(baseline.stats.failovers)});
    table.addRow({"breaker_fastfails",
                  std::to_string(fleet.stats.breakerFastFails),
                  std::to_string(baseline.stats.breakerFastFails)});
    table.addRow({"quarantines",
                  std::to_string(fleet.pool.quarantines),
                  std::to_string(baseline.pool.quarantines)});
    table.addRow({"probes", std::to_string(fleet.pool.probes),
                  std::to_string(baseline.pool.probes)});
    table.addRow({"probe_failures",
                  std::to_string(fleet.pool.probeFailures),
                  std::to_string(baseline.pool.probeFailures)});
    table.addRow({"readmissions",
                  std::to_string(fleet.pool.readmissions),
                  std::to_string(baseline.pool.readmissions)});
    table.addRow({"recalibrations",
                  std::to_string(fleet.pool.recalibrations),
                  std::to_string(baseline.pool.recalibrations)});
    std::printf("%s\n", table.render().c_str());

    const std::string fp =
        "fleet=" + std::to_string(fleet.fingerprint) +
        " baseline=" + std::to_string(baseline.fingerprint) +
        " submitted=" + std::to_string(fleet.stats.submitted) +
        " admitted=" + std::to_string(fleet.stats.admitted) +
        " completed=" + std::to_string(fleet.stats.completed) +
        " failovers=" + std::to_string(fleet.stats.failovers) +
        " fastfails=" + std::to_string(fleet.stats.breakerFastFails) +
        " quarantines=" + std::to_string(fleet.pool.quarantines) +
        " probes=" + std::to_string(fleet.pool.probes) +
        " readmissions=" + std::to_string(fleet.pool.readmissions);
    std::printf("determinism-fingerprint: %s\n", fp.c_str());

    // Acceptance.
    const long totalJobs =
        fleet.stats.submitted + baseline.stats.submitted;
    const bool scale_ok =
        totalJobs >= kMinJobs && kWorkloadTenants >= kMinTenants &&
        kBackends == 8;
    const bool fleet_completion_ok =
        fleet.completion >= kFleetMinCompletion;
    const bool baseline_contrast_ok =
        baseline.completion < kBaselineMaxCompletion;
    const bool quarantine_ok =
        fleet.pool.quarantines >= 2 && fleet.pool.readmissions >= 1 &&
        fleet.repairedActive && fleet.wedgeStillQuarantined &&
        fleet.adminReadmitBlocked;
    const bool quota_ok = fleet.stats.tenantRejected > 0;
    const bool failover_ok = fleet.stats.failovers > 0;
    const bool accounted =
        fleet.stats.submitted ==
        fleet.stats.rejected + fleet.stats.shed +
            fleet.stats.breakerFastFails + fleet.stats.completed +
            fleet.stats.cancelled + fleet.stats.deadlineExceeded +
            fleet.stats.failed;
    const bool pass = scale_ok && fleet_completion_ok &&
                      baseline_contrast_ok && quarantine_ok &&
                      quota_ok && failover_ok && accounted;
    std::printf(
        "acceptance: scale=%s fleet_completion=%s baseline=%s "
        "quarantine=%s quota=%s failover=%s accounted=%s => %s\n",
        scale_ok ? "yes" : "no", fleet_completion_ok ? "yes" : "no",
        baseline_contrast_ok ? "yes" : "no",
        quarantine_ok ? "yes" : "no", quota_ok ? "yes" : "no",
        failover_ok ? "yes" : "no", accounted ? "yes" : "no",
        pass ? "PASS" : "FAIL");

    bench::printTelemetry();
    std::FILE *out = bench::openBenchJson("BENCH_fleet.json");
    if (out == nullptr)
        return pass ? 0 : 1;
    std::fprintf(out, "{\n");
    bench::writeBenchHeader(out, "fleet");
    std::fprintf(out,
                 "  \"thresholds\": {\"min_jobs\": %ld, "
                 "\"min_tenants\": %d, \"backends\": %zu, "
                 "\"fleet_min_completion\": %.2f, "
                 "\"baseline_max_completion\": %.2f},\n",
                 kMinJobs, kMinTenants, kBackends,
                 kFleetMinCompletion, kBaselineMaxCompletion);
    std::fprintf(
        out,
        "  \"fleet\": {\"submitted\": %ld, \"admitted\": %ld, "
        "\"completed\": %ld, \"failed\": %ld, "
        "\"breaker_fastfails\": %ld, \"tenant_rejected\": %ld, "
        "\"failovers\": %ld, \"completion\": %.4f},\n",
        fleet.stats.submitted, fleet.stats.admitted,
        fleet.stats.completed, fleet.stats.failed,
        fleet.stats.breakerFastFails, fleet.stats.tenantRejected,
        fleet.stats.failovers, fleet.completion);
    std::fprintf(
        out,
        "  \"pool\": {\"jobs\": %ld, \"failures\": %ld, "
        "\"quarantines\": %ld, \"readmissions\": %ld, "
        "\"probes\": %ld, \"probe_failures\": %ld, "
        "\"recalibrations\": %ld},\n",
        fleet.pool.jobs, fleet.pool.failures, fleet.pool.quarantines,
        fleet.pool.readmissions, fleet.pool.probes,
        fleet.pool.probeFailures, fleet.pool.recalibrations);
    std::fprintf(out,
                 "  \"baseline\": {\"submitted\": %ld, "
                 "\"admitted\": %ld, \"completed\": %ld, "
                 "\"completion\": %.4f},\n",
                 baseline.stats.submitted, baseline.stats.admitted,
                 baseline.stats.completed, baseline.completion);
    std::fprintf(out, "  \"fingerprint\": \"%s\",\n", fp.c_str());
    bench::writeTelemetryField(out);
    std::fprintf(
        out,
        "  \"acceptance\": {\"scale_ok\": %s, "
        "\"fleet_completion_ok\": %s, \"baseline_contrast_ok\": %s, "
        "\"quarantine_ok\": %s, \"quota_ok\": %s, "
        "\"failover_ok\": %s, \"accounted\": %s, \"pass\": %s}\n",
        scale_ok ? "true" : "false",
        fleet_completion_ok ? "true" : "false",
        baseline_contrast_ok ? "true" : "false",
        quarantine_ok ? "true" : "false", quota_ok ? "true" : "false",
        failover_ok ? "true" : "false", accounted ? "true" : "false",
        pass ? "true" : "false");
    std::fprintf(out, "}\n");
    bench::closeBenchJson(out, "BENCH_fleet.json");
    return pass ? 0 : 1;
}
