/**
 * @file
 * Ingestion-boundary bench: a faulted streaming run through the
 * RequestFrontEnd and emit BENCH_ingest.json.
 *
 * Sixty client documents — a well-formed x180 job envelope or, every
 * fifth document, a deliberately malformed payload cycling through the
 * parser's rejection taxonomy — are each delivered over their own
 * logical connection through a FaultInjector whose ingest classes
 * (truncate/corrupt/dup-key/disconnect) sum to a 25% fault rate. The
 * acceptance embedded in the JSON is the robustness contract of
 * docs/ROBUSTNESS.md "Ingestion boundary":
 *
 *   - zero crashes: the whole faulted run completes without an
 *     exception escaping the boundary;
 *   - every malformed document that reaches the parser intact is
 *     rejected with a structured ErrorCode carrying byte context, and
 *     no malformed document ever completes;
 *   - >= 95% of well-formed jobs whose bytes arrive unmutated
 *     complete with full counts;
 *   - the run is bit-identical across QPULSE_THREADS: a shadow copy
 *     of the fault plan predicts every mutation, chunk seeds derive
 *     from (job seed, chunk), and counters count work — CI diffs the
 *     printed `determinism-fingerprint:` line across 1 and 8 threads.
 */
#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "device/fault_injector.h"
#include "ingest/frontend.h"
#include "pulse/qobj.h"
#include "telemetry/metrics.h"

using namespace qpulse;
using namespace qpulse::ingest;

namespace {

constexpr int kDocuments = 60;       ///< Every 5th one is malformed.
constexpr std::uint64_t kSeed = 0x1A9E57;
constexpr long kBatchShots = 16;

/** One malformed exemplar per parser rejection class (the same
 *  taxonomy as tests/corpus/ingest/invalid). */
const char *const kMalformed[] = {
    "{\"name\": \"a\", \"name\": \"a\"}",               // duplicate-key
    "{\"name\": \"cut",                                  // unexpected-end
    "{\"a\": 01}",                                       // malformed-json
    "{\"a\": \"\xC0\xAF\"}",                             // invalid-utf8
    "{\"d\": 1e999}",                                    // number-out-of-range
    "{\"name\": \"x\", \"instructions\": [], \"zzz\": 1}", // unknown-field
    "{\"instructions\": 3}",                             // schema-error
};
constexpr int kMalformedKinds =
    static_cast<int>(sizeof kMalformed / sizeof kMalformed[0]);

/** 80-deep nesting (depth-limit) built at runtime. */
std::string
deepDocument()
{
    std::string doc;
    for (int i = 0; i < 80; ++i)
        doc.push_back('[');
    for (int i = 0; i < 80; ++i)
        doc.push_back(']');
    return doc;
}

/** What the bench expects of one delivered document. */
struct DocPlan
{
    int connection = -1;
    bool wellFormed = false;
    bool mutated = false;      ///< Shadow-predicted payload mutation.
    bool disconnected = false; ///< Shadow-predicted mid-stream cut.
    long shots = 0;
};

/** Per-connection event roll-up. */
struct ConnOutcome
{
    bool completed = false;
    bool rejectedStructured = false; ///< >=1 reject, all with codes.
    bool rejectedUnstructured = false;
    bool rejectLacksByteContext = false;
    long shotsCompleted = 0;
};

std::string
fingerprint(const FrontEndStats &stats,
            const std::vector<StreamEvent> &events)
{
    std::string fp =
        "bytes=" + std::to_string(stats.bytesReceived) +
        " documents=" + std::to_string(stats.documents) +
        " accepted=" + std::to_string(stats.accepted) +
        " rejected=" + std::to_string(stats.rejected) +
        " completed=" + std::to_string(stats.completed) +
        " failed=" + std::to_string(stats.failed) +
        " disconnected=" + std::to_string(stats.disconnected) +
        " overflow=" + std::to_string(stats.overflowDrops) +
        " chunks=" + std::to_string(stats.chunksExecuted) +
        " faults=" + std::to_string(stats.ingestFaults) + " |";
    // Terminal events only: one segment per document outcome, plus a
    // counts digest for completions (bit-identical across threads).
    for (const StreamEvent &ev : events) {
        if (ev.kind == StreamEventKind::Accepted ||
            ev.kind == StreamEventKind::Partial)
            continue;
        fp += " c" + std::to_string(ev.connection) + ":" +
              streamEventKindName(ev.kind) + ":" +
              errorCodeName(ev.status.code());
        if (ev.kind == StreamEventKind::Completed) {
            fp += ":" + std::to_string(ev.shotsCompleted) + "[";
            for (std::size_t i = 0; i < ev.counts.size(); ++i) {
                if (i != 0u)
                    fp += ",";
                fp += std::to_string(ev.counts[i]);
            }
            fp += "]";
        }
    }
    return fp;
}

} // namespace

int
main()
{
    bench::banner(
        "Ingestion boundary: faulted streaming over the defensive "
        "parser",
        "(engineering bench) malformed and transport-faulted "
        "documents reject with structured codes while well-formed "
        "jobs stream to completion");

    const BackendConfig config = almadenLineConfig(1);
    const auto backend = makeCalibratedBackend(config);
    Calibrator calibrator(config);
    const QubitCalibration cal = calibrator.calibrateQubit(0);
    const PulseSimulator sim(calibrator.qubitModel(0));

    Schedule x180("x180");
    x180.play(driveChannel(0), cal.x180Pulse());
    QobjWriteOptions wire;
    wire.includeSamples = true;
    const std::string qobj = scheduleToQobjJson(x180, wire);
    const std::string deep = deepDocument();

    // Every pump submits one chunk per active stream, so the queue
    // must hold the whole concurrent stream set (48 well-formed docs).
    ServicePolicy servicePolicy;
    servicePolicy.queueCapacity = kDocuments;
    ExecutionService service(backend, sim, servicePolicy);

    FrontEndPolicy policy;
    policy.budget = ChannelBudget::fromConfig(config);
    policy.streamBatchShots = kBatchShots;

    RequestFrontEnd front(service, policy);
    std::vector<StreamEvent> events;
    front.setEventSink(
        [&](const StreamEvent &ev) { events.push_back(ev); });

    // The transport: 25% of deliveries are faulted. The shadow
    // injector replays the same deterministic stream so the bench
    // knows, per document, whether its bytes arrived intact.
    FaultPlan plan;
    plan.seed = kSeed;
    plan.ingestTruncateRate = 0.08;
    plan.ingestCorruptRate = 0.08;
    plan.ingestDupKeyRate = 0.04;
    plan.ingestDisconnectRate = 0.05;
    const double faultRate =
        plan.ingestTruncateRate + plan.ingestCorruptRate +
        plan.ingestDupKeyRate + plan.ingestDisconnectRate;
    front.setFaultInjector(std::make_shared<FaultInjector>(plan));
    FaultInjector shadow(plan);

    bool zeroCrashes = true;
    std::vector<DocPlan> docs;
    docs.reserve(kDocuments);
    try {
        for (int i = 0; i < kDocuments; ++i) {
            DocPlan doc;
            doc.wellFormed = (i % 5) != 4;
            std::string payload;
            if (doc.wellFormed) {
                doc.shots = 24 + (i % 3) * 8;
                payload =
                    "{\"qobj\": " + qobj +
                    ", \"shots\": " + std::to_string(doc.shots) +
                    ", \"seed\": " +
                    // Wire seeds must sit in [0, 2^53): JSON integers
                    // beyond that are rejected as number-out-of-range.
                    std::to_string(
                        Rng::deriveSeed(kSeed,
                                        static_cast<std::uint64_t>(i)) &
                        ((1ull << 53) - 1)) +
                    ", \"key\": \"well/" + std::to_string(i) + "\"}";
            } else {
                const int kind = (i / 5) % (kMalformedKinds + 1);
                payload = kind == kMalformedKinds ? deep
                                                  : kMalformed[kind];
            }

            const FaultInjector::IngestInjection predicted =
                shadow.injectIngest(
                    payload, static_cast<std::uint64_t>(i));
            doc.mutated = predicted.mutated();
            doc.disconnected = predicted.disconnected;

            doc.connection = front.open();
            (void)front.deliver(doc.connection, payload);
            front.finish(doc.connection);
            docs.push_back(doc);
        }
        front.run();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_ingest: boundary threw: %s\n",
                     e.what());
        zeroCrashes = false;
    } catch (...) {
        std::fprintf(stderr,
                     "bench_ingest: boundary threw a non-standard "
                     "exception\n");
        zeroCrashes = false;
    }

    // Roll events up per connection (one document per connection).
    std::map<int, ConnOutcome> outcomes;
    for (const StreamEvent &ev : events) {
        ConnOutcome &out = outcomes[ev.connection];
        switch (ev.kind) {
        case StreamEventKind::Completed:
            out.completed = true;
            out.shotsCompleted = ev.shotsCompleted;
            break;
        case StreamEventKind::Rejected:
            if (ev.status.ok())
                out.rejectedUnstructured = true;
            else
                out.rejectedStructured = true;
            if (ev.status.message().find(" at byte ") ==
                std::string::npos)
                out.rejectLacksByteContext = true;
            break;
        default:
            break;
        }
    }

    long wellClean = 0, wellCleanCompleted = 0;
    long wellFaulted = 0, malformedTotal = 0, malformedIntact = 0;
    bool malformedRejected = true;
    bool structuredRejections = true;
    for (const DocPlan &doc : docs) {
        const ConnOutcome out = outcomes.count(doc.connection) != 0u
                                    ? outcomes[doc.connection]
                                    : ConnOutcome{};
        if (out.rejectedUnstructured)
            structuredRejections = false;
        if (doc.wellFormed) {
            if (doc.mutated || doc.disconnected) {
                ++wellFaulted;
            } else {
                ++wellClean;
                if (out.completed &&
                    out.shotsCompleted == doc.shots)
                    ++wellCleanCompleted;
            }
            continue;
        }
        ++malformedTotal;
        // A malformed document must never complete, faulted or not.
        if (out.completed)
            malformedRejected = false;
        // One that arrived intact must carry a located structured
        // rejection.
        if (!doc.mutated && !doc.disconnected) {
            ++malformedIntact;
            if (!out.rejectedStructured || out.rejectLacksByteContext)
                malformedRejected = false;
        }
    }

    const FrontEndStats &stats = front.stats();
    const double completion =
        wellClean > 0 ? static_cast<double>(wellCleanCompleted) /
                            static_cast<double>(wellClean)
                      : 0.0;

    TextTable table({"counter", "value"});
    table.addRow({"documents delivered", std::to_string(kDocuments)});
    table.addRow({"bytes received",
                  std::to_string(stats.bytesReceived)});
    table.addRow({"frames parsed", std::to_string(stats.documents)});
    table.addRow({"accepted", std::to_string(stats.accepted)});
    table.addRow({"rejected", std::to_string(stats.rejected)});
    table.addRow({"completed", std::to_string(stats.completed)});
    table.addRow({"failed", std::to_string(stats.failed)});
    table.addRow({"disconnected",
                  std::to_string(stats.disconnected)});
    table.addRow({"shot chunks", std::to_string(stats.chunksExecuted)});
    table.addRow({"transport faults",
                  std::to_string(stats.ingestFaults)});
    table.addRow({"well-formed, clean transport",
                  std::to_string(wellClean)});
    table.addRow({"  ... completed with full counts",
                  std::to_string(wellCleanCompleted)});
    table.addRow({"well-formed, faulted transport",
                  std::to_string(wellFaulted)});
    table.addRow({"malformed (intact / total)",
                  std::to_string(malformedIntact) + " / " +
                      std::to_string(malformedTotal)});
    table.addRow({"clean completion fraction", fmtFixed(completion, 4)});
    std::printf("%s\n", table.render().c_str());

    const std::string fp = fingerprint(stats, events);
    std::printf("determinism-fingerprint: %s\n", fp.c_str());

    // Acceptance.
    const bool accounted =
        stats.documents == stats.accepted + stats.rejected &&
        stats.accepted == stats.completed + stats.failed +
                              stats.disconnected &&
        front.activeRequests() == 0;
    const bool faulted =
        faultRate >= 0.2 && stats.ingestFaults > 0;
    const bool completionOk = wellClean > 0 && completion >= 0.95;
    const bool pass = zeroCrashes && accounted && faulted &&
                      malformedRejected && structuredRejections &&
                      completionOk;
    std::printf(
        "acceptance: zero_crashes=%s accounted=%s fault_rate=%.2f "
        "faulted=%s malformed_rejected=%s structured=%s "
        "completion=%.4f completion_ok=%s => %s\n",
        zeroCrashes ? "yes" : "no", accounted ? "yes" : "no",
        faultRate, faulted ? "yes" : "no",
        malformedRejected ? "yes" : "no",
        structuredRejections ? "yes" : "no", completion,
        completionOk ? "yes" : "no", pass ? "PASS" : "FAIL");

    bench::printTelemetry();
    std::FILE *out = bench::openBenchJson("BENCH_ingest.json");
    if (out == nullptr)
        return pass ? 0 : 1;
    std::fprintf(out, "{\n");
    bench::writeBenchHeader(out, "ingest");
    std::fprintf(out, "  \"documents\": %d,\n", kDocuments);
    std::fprintf(out, "  \"batch_shots\": %ld,\n", kBatchShots);
    std::fprintf(out, "  \"fault_plan\": \"%s\",\n",
                 plan.toString().c_str());
    std::fprintf(out, "  \"fault_rate\": %.4f,\n", faultRate);
    std::fprintf(
        out,
        "  \"stats\": {\"bytes\": %ld, \"documents\": %ld, "
        "\"accepted\": %ld, \"rejected\": %ld, \"completed\": %ld, "
        "\"failed\": %ld, \"disconnected\": %ld, \"overflow\": %ld, "
        "\"chunks\": %ld, \"ingest_faults\": %ld},\n",
        stats.bytesReceived, stats.documents, stats.accepted,
        stats.rejected, stats.completed, stats.failed,
        stats.disconnected, stats.overflowDrops, stats.chunksExecuted,
        stats.ingestFaults);
    std::fprintf(out,
                 "  \"well_formed\": {\"clean\": %ld, "
                 "\"clean_completed\": %ld, \"faulted\": %ld, "
                 "\"completion\": %.4f},\n",
                 wellClean, wellCleanCompleted, wellFaulted,
                 completion);
    std::fprintf(out,
                 "  \"malformed\": {\"total\": %ld, \"intact\": %ld},\n",
                 malformedTotal, malformedIntact);
    std::fprintf(out, "  \"fingerprint\": \"%s\",\n", fp.c_str());
    bench::writeTelemetryField(out);
    std::fprintf(
        out,
        "  \"acceptance\": {\"zero_crashes\": %s, \"accounted\": %s, "
        "\"faulted\": %s, \"malformed_rejected\": %s, "
        "\"structured_rejections\": %s, \"wellformed_completion\": "
        "%.4f, \"completion_ok\": %s, \"pass\": %s}\n",
        zeroCrashes ? "true" : "false", accounted ? "true" : "false",
        faulted ? "true" : "false",
        malformedRejected ? "true" : "false",
        structuredRejections ? "true" : "false", completion,
        completionOk ? "true" : "false", pass ? "true" : "false");
    std::fprintf(out, "}\n");
    bench::closeBenchJson(out, "BENCH_ingest.json");
    return pass ? 0 : 1;
}
