/**
 * @file
 * Ablation — near-term vs far-term workloads (the Section 8.1
 * discussion): the paper argues its gains concentrate on near-term
 * algorithms because they are dominated by the ZZ interaction, while
 * far-term kernels (Bernstein-Vazirani, hidden shift, QFT, adders)
 * have other structure. This bench runs both families through both
 * flows and compares the speedups: ZZ-heavy circuits should gain the
 * most, with far-term kernels still enjoying the baseline ~2x from
 * direct single-qubit rotations but not the CR(theta) factor.
 */
#include <cstdio>
#include <functional>

#include "algos/circuits.h"
#include "algos/hamiltonians.h"
#include "bench_util.h"
#include "common/table.h"
#include "transpile/routing.h"

using namespace qpulse;

int
main()
{
    bench::banner(
        "Ablation: near-term (ZZ-dominated) vs far-term kernels",
        "near-term algorithms benefit the most (Section 8.1); "
        "far-term kernels keep only the 1q speedup");

    struct Workload
    {
        std::string name;
        bool near_term;
        std::size_t qubits;
        std::function<QuantumCircuit()> build;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"CH4 dynamics (near)", true, 2, [] {
        return trotterCircuit(methaneHamiltonian(), 1.0, 6);
    }});
    workloads.push_back({"QAOA-4 (near)", true, 4, [] {
        return qaoaLineCircuit(4, {0.6}, {0.4});
    }});
    workloads.push_back({"H2O dynamics (near)", true, 2, [] {
        return trotterCircuit(waterHamiltonian(), 1.0, 6);
    }});
    workloads.push_back({"Bernstein-Vazirani (far)", false, 4, [] {
        return bernsteinVaziraniCircuit(4, 0b1011);
    }});
    workloads.push_back({"hidden shift (far)", false, 4, [] {
        return hiddenShiftCircuit(4, 0b0110);
    }});
    workloads.push_back({"QFT-3 (far)", false, 3, [] {
        return qftCircuit(3);
    }});
    workloads.push_back({"adder 2+2 bit (far)", false, 5, [] {
        return adderCircuit(2, 2, 3);
    }});

    TextTable table({"workload", "std dur (dt)", "opt dur (dt)",
                     "speedup", "std 2q pulses", "opt 2q pulses"});
    double near_speedup = 0.0, far_speedup = 0.0;
    int near_count = 0, far_count = 0;
    for (const auto &workload : workloads) {
        const BackendConfig config =
            almadenLineConfig(workload.qubits);
        const auto backend = makeCalibratedBackend(config);
        const PulseCompiler standard(backend, CompileMode::Standard);
        const PulseCompiler optimized(backend, CompileMode::Optimized);
        // Route onto the line topology first (QFT/hidden-shift/adder
        // touch non-neighbouring pairs).
        std::vector<std::pair<std::size_t, std::size_t>> edges;
        for (const auto &edge : config.couplings)
            edges.emplace_back(edge.control, edge.target);
        const CouplingGraph graph(config.numQubits, std::move(edges));
        const QuantumCircuit circuit =
            routeCircuit(workload.build(), graph).circuit;
        const CompileResult std_result = standard.compile(circuit);
        const CompileResult opt_result = optimized.compile(circuit);
        const double speedup =
            static_cast<double>(std_result.durationDt) /
            static_cast<double>(std::max(opt_result.durationDt, 1L));
        if (workload.near_term) {
            near_speedup += speedup;
            ++near_count;
        } else {
            far_speedup += speedup;
            ++far_count;
        }

        auto count_2q_pulses = [](const Schedule &schedule) {
            std::size_t count = 0;
            for (const auto &inst : schedule.instructions())
                if (inst.kind == PulseInstructionKind::Play &&
                    inst.channel.kind == ChannelKind::Control)
                    ++count;
            return count;
        };
        table.addRow(
            {workload.name, std::to_string(std_result.durationDt),
             std::to_string(opt_result.durationDt),
             fmtFixed(speedup, 2) + "x",
             std::to_string(count_2q_pulses(std_result.schedule)),
             std::to_string(count_2q_pulses(opt_result.schedule))});
        std::printf("  %-26s %.2fx\n", workload.name.c_str(), speedup);
        std::fflush(stdout);
    }

    std::printf("\n%s\n", table.render().c_str());
    std::printf("mean speedup: near-term %.2fx vs far-term %.2fx\n",
                near_speedup / near_count, far_speedup / far_count);
    std::printf("(the paper's headline 2x execution speedup refers to "
                "the near-term family)\n");
    return 0;
}
