/**
 * @file
 * Service bench: drive the ExecutionService through the four regimes
 * the layer exists for and emit BENCH_service.json.
 *
 *  1. Saturation — a capacity-4 queue under 6 low-priority and 2
 *     high-priority submissions: low-priority overflow is rejected,
 *     high-priority newcomers shed queued low-priority jobs, and one
 *     tight virtual-time budget surfaces a deadline-exceeded partial
 *     result instead of discarding completed shots.
 *  2. Cancellation — a token cancelled between submit() and drain()
 *     terminates the job at the service gate without touching the
 *     backend.
 *  3. Wedged backend — 100% injected timeouts: the circuit breaker
 *     trips after the failure window fills and the rest of the job set
 *     fast-fails with `unavailable` instead of burning retry budgets.
 *  4. Recovery — the faults clear; half-open probes succeed, the
 *     breaker closes, and subsequent jobs complete.
 *
 * Every deadline is a virtual-time budget (or a generous
 * afterMsOrBudget that never fires), and the breaker cooldown is
 * counted in denied calls, so the service counters and the printed
 * `determinism-fingerprint:` line are bit-identical across
 * QPULSE_THREADS settings. CI runs this bench at QPULSE_THREADS=1 and
 * =8 under QPULSE_VIRTUAL_TIME=1 and diffs the fingerprint lines.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "device/fault_injector.h"
#include "service/execution_service.h"
#include "telemetry/metrics.h"

using namespace qpulse;

namespace {

constexpr long kShots = 128;
constexpr std::uint64_t kSeed = 0x5E41;
constexpr std::size_t kQueueCapacity = 4;

struct Scenario
{
    ExecutionService &service;
    const Schedule &schedule;
    const Schedule &fallback;
    std::uint64_t budgetUnits = 0; ///< Simulated samples for one job.
    int jobIndex = 0;
};

JobRequest
makeJob(Scenario &s, int priority, Deadline deadline,
        CancelToken token = {})
{
    JobRequest job;
    job.schedule = s.schedule;
    job.fallback = s.fallback;
    job.key = "x180/q0";
    job.shots = kShots;
    job.seed = Rng::deriveSeed(
        kSeed, static_cast<std::uint64_t>(s.jobIndex++));
    job.priority = priority;
    job.deadline = deadline;
    job.token = token;
    return job;
}

/** A budget no healthy job ever exhausts (virtual or wall-clock). */
Deadline
generous(const Scenario &s)
{
    return Deadline::afterMsOrBudget(2000.0, s.budgetUnits * 16);
}

/**
 * The thread-count-invariant digest CI compares across QPULSE_THREADS:
 * every service counter plus each job's terminal code (and, for
 * partials, the deterministic shots-completed fraction).
 */
std::string
fingerprint(const ServiceStats &stats,
            const std::vector<JobOutcome> &outcomes)
{
    std::string fp =
        "submitted=" + std::to_string(stats.submitted) +
        " admitted=" + std::to_string(stats.admitted) +
        " rejected=" + std::to_string(stats.rejected) +
        " shed=" + std::to_string(stats.shed) +
        " cancelled=" + std::to_string(stats.cancelled) +
        " deadline_exceeded=" + std::to_string(stats.deadlineExceeded) +
        " breaker_fastfails=" + std::to_string(stats.breakerFastFails) +
        " completed=" + std::to_string(stats.completed) +
        " failed=" + std::to_string(stats.failed) + " |";
    for (const JobOutcome &out : outcomes) {
        fp += " " + std::to_string(out.id) + ":" +
              errorCodeName(out.status.code());
        if (out.executed && out.execution.result.partial)
            fp += "(" +
                  std::to_string(out.execution.result.shotsCompleted) +
                  "/" +
                  std::to_string(out.execution.result.shotsRequested) +
                  ")";
    }
    return fp;
}

} // namespace

int
main()
{
    bench::banner(
        "Execution service: saturation, cancellation, breaker trip "
        "and recovery",
        "(engineering bench) bounded queue sheds by priority, "
        "deadlines surface partials, a wedged backend fast-fails "
        "behind the breaker");

    const BackendConfig config = almadenLineConfig(1);
    const auto backend = makeCalibratedBackend(config);
    Calibrator calibrator(config);
    const PulseSimulator sim(calibrator.qubitModel(0));

    QuantumCircuit circuit(1);
    circuit.x(0);
    PulseCompiler optimized_compiler(backend, CompileMode::Optimized);
    PulseCompiler standard_compiler(backend, CompileMode::Standard);
    const CompileResult primary = optimized_compiler.compile(circuit);
    const CompileResult secondary = standard_compiler.compile(circuit);
    throwIfError(primary.validation);
    throwIfError(secondary.validation);

    ServicePolicy policy;
    policy.queueCapacity = kQueueCapacity;
    policy.retry.maxAttempts = 2;
    policy.retry.jitter = 0.0;
    policy.retry.maxTotalBackoffMs = 32.0;
    ExecutionService service(backend, sim, policy);

    Scenario s{service, primary.schedule, secondary.schedule};
    s.budgetUnits = static_cast<std::uint64_t>(
                        std::max<long>(primary.schedule.duration(), 1)) *
                    static_cast<std::uint64_t>(kShots);

    std::vector<JobOutcome> all;
    const auto drainInto = [&] {
        std::vector<JobOutcome> outcomes = service.drain();
        all.insert(all.end(), outcomes.begin(), outcomes.end());
    };

    // Phase 1: saturation. Six low-priority submissions against a
    // capacity-4 queue (the overflow is rejected), then two
    // high-priority ones (each sheds a queued low-priority job). The
    // first job runs on a half-shot virtual budget and must come back
    // as a deadline-exceeded partial.
    for (int i = 0; i < 6; ++i)
        (void)service.submit(makeJob(
            s, /*priority=*/0,
            i == 0 ? Deadline::virtualBudget(s.budgetUnits / 2)
                   : generous(s)));
    for (int i = 0; i < 2; ++i)
        (void)service.submit(makeJob(s, /*priority=*/5, generous(s)));
    drainInto();

    // Phase 2: cancellation between submit and drain.
    CancelToken cancel_me = CancelToken::make();
    (void)service.submit(
        makeJob(s, /*priority=*/0, generous(s), cancel_me));
    cancel_me.cancel();
    drainInto();

    // Phase 3: the backend wedges (every batch times out). Two
    // drains of four jobs each: the breaker trips partway through the
    // first and fast-fails most of the second.
    FaultPlan wedged;
    wedged.timeoutRate = 1.0;
    service.setFaultInjector(std::make_shared<FaultInjector>(wedged));
    for (int batch = 0; batch < 2; ++batch) {
        for (int i = 0; i < 4; ++i)
            (void)service.submit(
                makeJob(s, /*priority=*/0, generous(s)));
        drainInto();
    }

    // Phase 4: faults clear. Cooldown denials, then successful
    // half-open probes close the breaker and the tail completes.
    service.setFaultInjector(nullptr);
    for (int i = 0; i < 4; ++i)
        (void)service.submit(makeJob(s, /*priority=*/0, generous(s)));
    drainInto();
    for (int i = 0; i < 2; ++i)
        (void)service.submit(makeJob(s, /*priority=*/0, generous(s)));
    drainInto();

    const ServiceStats &stats = service.stats();
    const CircuitBreaker &brk = service.breaker("default");
    const telemetry::Histogram::Snapshot latency =
        telemetry::MetricsRegistry::global()
            .histogram("service.job.wall_us")
            .snapshot();

    TextTable table({"counter", "value"});
    table.addRow({"submitted", std::to_string(stats.submitted)});
    table.addRow({"admitted", std::to_string(stats.admitted)});
    table.addRow({"rejected", std::to_string(stats.rejected)});
    table.addRow({"shed", std::to_string(stats.shed)});
    table.addRow({"cancelled", std::to_string(stats.cancelled)});
    table.addRow(
        {"deadline_exceeded", std::to_string(stats.deadlineExceeded)});
    table.addRow(
        {"breaker_fastfails", std::to_string(stats.breakerFastFails)});
    table.addRow({"completed", std::to_string(stats.completed)});
    table.addRow({"failed", std::to_string(stats.failed)});
    table.addRow({"breaker trips", std::to_string(brk.trips())});
    table.addRow(
        {"breaker state", breakerStateName(brk.state())});
    table.addRow(
        {"job latency p50 (us)", fmtFixed(latency.p50(), 1)});
    table.addRow(
        {"job latency p95 (us)", fmtFixed(latency.p95(), 1)});
    std::printf("%s\n", table.render().c_str());

    const std::string fp = fingerprint(stats, all);
    std::printf("determinism-fingerprint: %s\n", fp.c_str());

    // Acceptance.
    const bool accounted =
        stats.submitted ==
        stats.rejected + stats.shed + stats.breakerFastFails +
            stats.completed + stats.cancelled + stats.deadlineExceeded +
            stats.failed;
    bool priority_respected = stats.rejected > 0 && stats.shed > 0;
    for (const JobOutcome &out : all) {
        if (out.shed && out.priority != 0)
            priority_respected = false; // Only low-priority jobs shed.
        if (out.priority == 5 && !out.status.ok())
            priority_respected = false; // High-priority always ran.
    }
    bool partial_surfaced = false;
    for (const JobOutcome &out : all)
        if (out.status.code() == ErrorCode::DeadlineExceeded &&
            out.executed && out.execution.result.partial &&
            out.execution.result.shotsCompleted > 0 &&
            out.execution.result.shotsCompleted <
                out.execution.result.shotsRequested)
            partial_surfaced = true;
    const bool breaker_tripped =
        brk.trips() >= 1 && stats.breakerFastFails > 0;
    const bool breaker_recovered =
        brk.state() == BreakerState::Closed && all.size() >= 2 &&
        all[all.size() - 1].status.ok() &&
        all[all.size() - 2].status.ok();
    const bool cancelled_cleanly = stats.cancelled == 1;
    const bool pass = accounted && priority_respected &&
                      partial_surfaced && breaker_tripped &&
                      breaker_recovered && cancelled_cleanly;
    std::printf("acceptance: accounted=%s priority=%s partial=%s "
                "breaker_trip=%s breaker_recovery=%s cancel=%s => %s\n",
                accounted ? "yes" : "no",
                priority_respected ? "yes" : "no",
                partial_surfaced ? "yes" : "no",
                breaker_tripped ? "yes" : "no",
                breaker_recovered ? "yes" : "no",
                cancelled_cleanly ? "yes" : "no",
                pass ? "PASS" : "FAIL");

    bench::printTelemetry();
    std::FILE *out = bench::openBenchJson("BENCH_service.json");
    if (out == nullptr)
        return pass ? 0 : 1;
    std::fprintf(out, "{\n");
    bench::writeBenchHeader(out, "service");
    std::fprintf(out, "  \"shots\": %ld,\n", kShots);
    std::fprintf(out, "  \"queue_capacity\": %zu,\n", kQueueCapacity);
    std::fprintf(
        out,
        "  \"stats\": {\"submitted\": %ld, \"admitted\": %ld, "
        "\"rejected\": %ld, \"shed\": %ld, \"cancelled\": %ld, "
        "\"deadline_exceeded\": %ld, \"breaker_fastfails\": %ld, "
        "\"completed\": %ld, \"failed\": %ld},\n",
        stats.submitted, stats.admitted, stats.rejected, stats.shed,
        stats.cancelled, stats.deadlineExceeded, stats.breakerFastFails,
        stats.completed, stats.failed);
    std::fprintf(out,
                 "  \"breaker\": {\"state\": \"%s\", \"trips\": %llu, "
                 "\"denials\": %llu},\n",
                 breakerStateName(brk.state()),
                 static_cast<unsigned long long>(brk.trips()),
                 static_cast<unsigned long long>(brk.denials()));
    std::fprintf(out,
                 "  \"job_latency_us\": {\"p50\": %.1f, "
                 "\"p95\": %.1f},\n",
                 latency.p50(), latency.p95());
    std::fprintf(out, "  \"fingerprint\": \"%s\",\n", fp.c_str());
    bench::writeTelemetryField(out);
    std::fprintf(
        out,
        "  \"acceptance\": {\"accounted\": %s, "
        "\"priority_respected\": %s, \"partial_surfaced\": %s, "
        "\"breaker_tripped\": %s, \"breaker_recovered\": %s, "
        "\"cancelled_cleanly\": %s, \"pass\": %s}\n",
        accounted ? "true" : "false",
        priority_respected ? "true" : "false",
        partial_surfaced ? "true" : "false",
        breaker_tripped ? "true" : "false",
        breaker_recovered ? "true" : "false",
        cancelled_cleanly ? "true" : "false", pass ? "true" : "false");
    std::fprintf(out, "}\n");
    bench::closeBenchJson(out, "BENCH_service.json");
    return pass ? 0 : 1;
}
