/**
 * @file
 * Figure 12 — full-benchmark error reduction: the six near-term
 * benchmarks (H2 VQE, LiH VQE, 4- and 5-qubit QAOA-MAXCUT on line
 * graphs, methane and water Hamiltonian dynamics with 6 Trotter
 * steps) compiled under both flows, executed on the duration-aware
 * noisy simulator with 8000 shots each (6 x 2 x 8k = 96k), with
 * measurement-error mitigation, scored by Hellinger error against the
 * ideal distribution. The paper reports a mean error-reduction factor
 * of 1.55x with the largest benchmark (5-qubit QAOA) at 2.32x.
 */
#include <cstdio>
#include <functional>

#include "algos/circuits.h"
#include "algos/hamiltonians.h"
#include "algos/vqe.h"
#include "bench_util.h"
#include "common/table.h"
#include "metrics/metrics.h"
#include "noisesim/statevector.h"
#include "readout/readout.h"

using namespace qpulse;

namespace {

struct Benchmark
{
    std::string name;
    std::size_t qubits;
    std::function<QuantumCircuit()> build;
};

} // namespace

int
main()
{
    bench::banner("Figure 12: benchmark error reduction (96k shots)",
                  "mean 1.55x lower Hellinger error; largest benchmark "
                  "(5-qubit QAOA) 2.32x (33.7% -> 14.5%)");

    std::vector<Benchmark> benchmarks;
    benchmarks.push_back({"H2 VQE", 2, [] {
        const VariationalResult trained = runVqe2q(h2Hamiltonian());
        return uccAnsatz2q(trained.params[0]);
    }});
    benchmarks.push_back({"LiH VQE", 2, [] {
        const VariationalResult trained = runVqe2q(lihHamiltonian());
        return uccAnsatz2q(trained.params[0]);
    }});
    benchmarks.push_back({"QAOA-4 MAXCUT", 4, [] {
        const VariationalResult trained = runQaoaLine(4, 1);
        return qaoaLineCircuit(4, {trained.params[0]},
                               {trained.params[1]});
    }});
    benchmarks.push_back({"QAOA-5 MAXCUT", 5, [] {
        const VariationalResult trained = runQaoaLine(5, 1);
        return qaoaLineCircuit(5, {trained.params[0]},
                               {trained.params[1]});
    }});
    benchmarks.push_back({"CH4 dynamics", 2, [] {
        return trotterCircuit(methaneHamiltonian(), 1.0, 6);
    }});
    benchmarks.push_back({"H2O dynamics", 2, [] {
        return trotterCircuit(waterHamiltonian(), 1.0, 6);
    }});

    Rng rng(0xF1C);
    TextTable table({"benchmark", "std error", "opt error",
                     "reduction", "std dur (dt)", "opt dur (dt)"});
    double reduction_sum = 0.0;
    double largest_reduction = 0.0;
    std::string largest_name;

    for (const auto &benchmark : benchmarks) {
        const BackendConfig config =
            almadenLineConfig(benchmark.qubits);
        const auto backend = makeCalibratedBackend(config);
        const PulseCompiler standard(backend, CompileMode::Standard);
        const PulseCompiler optimized(backend, CompileMode::Optimized);

        const QuantumCircuit circuit = benchmark.build();
        const std::vector<double> ideal = idealDistribution(circuit);

        std::vector<std::pair<double, long>> errors;
        for (const PulseCompiler *compiler : {&standard, &optimized}) {
            DensitySimulator simulator = compiler->makeSimulator();
            QuantumCircuit measured = circuit;
            measured.measureAll();
            const QuantumCircuit basis = compiler->transpile(measured);
            const NoisyRunResult run = simulator.run(basis);
            const auto counts =
                simulator.sampleCounts(run, shots::kBenchmarks, rng);
            std::vector<std::pair<double, double>> flips;
            for (std::size_t q = 0; q < benchmark.qubits; ++q)
                flips.emplace_back(config.readout[q].probFlip0to1,
                                   config.readout[q].probFlip1to0);
            const auto mitigated =
                MeasurementMitigator::forQubits(flips).mitigate(
                    countsToProbabilities(counts));
            // Duration of the compute part (without readout).
            const CompileResult compiled = compiler->compile(circuit);
            errors.emplace_back(hellingerDistance(mitigated, ideal),
                                compiled.durationDt);
        }
        const double reduction = errors[0].first /
                                 std::max(errors[1].first, 1e-9);
        reduction_sum += reduction;
        if (reduction > largest_reduction) {
            largest_reduction = reduction;
            largest_name = benchmark.name;
        }
        table.addRow({benchmark.name, fmtPercent(errors[0].first, 1),
                      fmtPercent(errors[1].first, 1),
                      fmtFixed(reduction, 2) + "x",
                      std::to_string(errors[0].second),
                      std::to_string(errors[1].second)});
        std::printf("  %-14s std=%.3f opt=%.3f (%.2fx)\n",
                    benchmark.name.c_str(), errors[0].first,
                    errors[1].first, reduction);
        std::fflush(stdout);
    }

    std::printf("\n%s\n", table.render().c_str());
    std::printf("mean error-reduction factor: %.2fx (paper: 1.55x)\n",
                reduction_sum / static_cast<double>(benchmarks.size()));
    std::printf("largest reduction: %s at %.2fx (paper: 5-qubit QAOA "
                "at 2.32x)\n",
                largest_name.c_str(), largest_reduction);
    std::printf("shots: %zu benchmarks x 2 flows x %ld = %ldk "
                "(paper: 96k)\n",
                benchmarks.size(), shots::kBenchmarks,
                benchmarks.size() * 2 * shots::kBenchmarks / 1000);
    return 0;
}
