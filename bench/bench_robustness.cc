/**
 * @file
 * Robustness bench: sweep fault-injection rates against an unprotected
 * client and the ResilientExecutor on the same deterministic fault
 * streams, and emit BENCH_robustness.json.
 *
 * The unprotected client models the pre-robustness code path: a failed
 * or rejected shot batch is simply lost, a corrupted upload aborts the
 * run (structured reject from the validation gate — before that gate
 * it would have been silent garbage), and coherent drift persists
 * forever because nothing watches for it. The executor retries,
 * re-uploads, recalibrates on drift crossings and degrades to the
 * standard two-x90 decomposition, so its measured fidelity must stay
 * at or above the unprotected client at every swept rate and strictly
 * above it at the highest rate.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "device/fault_injector.h"
#include "device/resilient_executor.h"

using namespace qpulse;

namespace {

constexpr long kShots = 256;
constexpr int kRuns = 24;
constexpr std::uint64_t kSeed = 0xBE7C;

/** The swept plan: every class scales with one knob. */
FaultPlan
planAtRate(double rate)
{
    FaultPlan plan;
    plan.transientRate = rate;
    plan.awgNanRate = rate / 2.0;
    plan.awgDropRate = rate / 2.0;
    plan.driftRate = rate;
    plan.driftFreqKhz = 6000.0;
    plan.driftAmpError = 0.25;
    plan.readoutFlipRate = rate / 10.0;
    return plan;
}

PulseShotOptions
runOptions(int run, std::size_t max_threads = 0)
{
    PulseShotOptions opts;
    opts.shots = kShots;
    opts.seed = Rng::deriveSeed(kSeed, static_cast<std::uint64_t>(run));
    opts.maxThreads = max_threads;
    return opts;
}

struct SweepPoint
{
    double rate = 0.0;
    double unprotectedFidelity = 0.0;
    double executorFidelity = 0.0;
    ResilienceStats stats;
    bench::LatencySummary latency;
};

/** P(target state) averaged over runs, unprotected client. */
double
runUnprotected(const PulseBackend &backend, const PulseSimulator &sim,
               const Schedule &schedule, std::size_t target,
               const FaultPlan &plan)
{
    FaultInjector injector(plan);
    double total = 0.0;
    for (int run = 0; run < kRuns; ++run) {
        const FaultInjector::Injection injection =
            injector.inject(schedule, static_cast<std::uint64_t>(run),
                            /*attempt=*/0);
        if (injection.transient || injection.timeout)
            continue; // Batch lost; no shots land.
        try {
            PulseShotResult result = backend.runShots(
                sim, injection.schedule, runOptions(run));
            injector.applyReadoutFaults(
                result.counts, result.populations,
                static_cast<std::uint64_t>(run), 0);
            total += static_cast<double>(result.counts[target]) /
                     static_cast<double>(kShots);
        } catch (const StatusError &) {
            // Corrupted upload rejected by the validation gate; the
            // unprotected client has no retry, so the run is lost.
        }
        // Note: no recalibration ever happens here, so a drift spike
        // keeps degrading every subsequent run.
    }
    return total / kRuns;
}

/** Same workload through the ResilientExecutor. */
SweepPoint
runProtected(const std::shared_ptr<const PulseBackend> &backend,
             const PulseSimulator &sim, const Schedule &schedule,
             const Schedule &fallback, std::size_t target,
             const FaultPlan &plan, std::size_t max_threads,
             std::vector<std::vector<long>> *counts_log = nullptr)
{
    ResilientExecutor executor(backend);
    executor.setFaultInjector(std::make_shared<FaultInjector>(plan));
    ResilientRequest request;
    request.schedule = schedule;
    request.key = "x180/q0";
    request.fallback = fallback;

    SweepPoint point;
    std::vector<double> latencies;
    latencies.reserve(kRuns);
    for (int run = 0; run < kRuns; ++run) {
        const bench::Stopwatch watch;
        const ResilientOutcome outcome = executor.run(
            sim, request, runOptions(run, max_threads));
        latencies.push_back(watch.elapsedMs());
        if (outcome.status.ok())
            point.executorFidelity +=
                static_cast<double>(outcome.result.counts[target]) /
                static_cast<double>(kShots);
        if (counts_log != nullptr)
            counts_log->push_back(outcome.result.counts);
    }
    point.executorFidelity /= kRuns;
    point.stats = executor.stats();
    point.latency = bench::LatencySummary::of(std::move(latencies));
    return point;
}

} // namespace

int
main()
{
    bench::banner(
        "Robustness: fault-rate sweep, unprotected client vs "
        "ResilientExecutor",
        "(engineering bench) executor fidelity >= unprotected at "
        "every rate, strictly better at the highest");

    const BackendConfig config = almadenLineConfig(1);
    const auto backend = makeCalibratedBackend(config);
    Calibrator calibrator(config);
    const PulseSimulator sim(calibrator.qubitModel(0));

    // Compile the primary (augmented direct-X entry) and the fallback
    // (standard x90-based decomposition) through the full
    // PulseCompiler rather than hand-assembling schedules: one traced
    // bench run then exercises every compile stage, the shot-batch
    // loop and the executor's retry machinery in a single timeline
    // (docs/OBSERVABILITY.md).
    QuantumCircuit circuit(1);
    circuit.x(0);
    PulseCompiler optimized_compiler(backend, CompileMode::Optimized);
    PulseCompiler standard_compiler(backend, CompileMode::Standard);
    const CompileResult primary = optimized_compiler.compile(circuit);
    const CompileResult secondary = standard_compiler.compile(circuit);
    throwIfError(primary.validation);
    throwIfError(secondary.validation);
    const Schedule &x180 = primary.schedule;
    const Schedule &fallback = secondary.schedule;

    // Fault-free target state: the dominant population after x180.
    Vector ground(sim.model().dim());
    ground[0] = Complex{1.0, 0.0};
    const std::vector<double> pops =
        sim.populations(sim.evolveState(x180, ground));
    std::size_t target = 0;
    for (std::size_t i = 0; i < pops.size(); ++i)
        if (pops[i] > pops[target])
            target = i;

    const double rates[] = {0.0, 0.1, 0.2, 0.4};
    std::vector<SweepPoint> sweep;
    TextTable table({"fault rate", "unprotected", "executor",
                     "retries", "recals", "fallbacks", "p50 ms",
                     "p95 ms"});
    for (const double rate : rates) {
        const FaultPlan plan = planAtRate(rate);
        SweepPoint point =
            runProtected(backend, sim, x180, fallback, target, plan,
                         /*max_threads=*/0);
        point.rate = rate;
        point.unprotectedFidelity =
            runUnprotected(*backend, sim, x180, target, plan);
        table.addRow({fmtFixed(rate, 2),
                      fmtFixed(point.unprotectedFidelity, 4),
                      fmtFixed(point.executorFidelity, 4),
                      std::to_string(point.stats.retries),
                      std::to_string(point.stats.recalibrations),
                      std::to_string(point.stats.fallbacks),
                      fmtFixed(point.latency.p50Ms, 2),
                      fmtFixed(point.latency.p95Ms, 2)});
        sweep.push_back(point);
    }
    std::printf("%s\n", table.render().c_str());

    // Determinism: the protected sweep at one faulty rate must be
    // bit-identical between a sequential and an 8-thread shot loop.
    std::vector<std::vector<long>> counts_seq, counts_thr;
    runProtected(backend, sim, x180, fallback, target, planAtRate(0.2),
                 1, &counts_seq);
    runProtected(backend, sim, x180, fallback, target, planAtRate(0.2),
                 8, &counts_thr);
    const bool deterministic = counts_seq == counts_thr;
    std::printf("thread determinism (1 vs 8 threads): %s\n",
                deterministic ? "bit-identical" : "MISMATCH");

    bool never_worse = true;
    for (const SweepPoint &point : sweep)
        never_worse = never_worse &&
            point.executorFidelity >= point.unprotectedFidelity;
    const SweepPoint &worst = sweep.back();
    const bool strictly_better =
        worst.executorFidelity > worst.unprotectedFidelity;
    const bool pass = never_worse && strictly_better && deterministic;
    std::printf("acceptance: never_worse=%s strictly_better_at_max=%s "
                "=> %s\n",
                never_worse ? "yes" : "no",
                strictly_better ? "yes" : "no",
                pass ? "PASS" : "FAIL");

    bench::printTelemetry();
    std::FILE *out = bench::openBenchJson("BENCH_robustness.json");
    if (out == nullptr)
        return pass ? 0 : 1;
    std::fprintf(out, "{\n");
    bench::writeBenchHeader(out, "robustness");
    std::fprintf(out, "  \"shots\": %ld,\n", kShots);
    std::fprintf(out, "  \"runs_per_rate\": %d,\n", kRuns);
    std::fprintf(out, "  \"sweep\": [\n");
    for (std::size_t k = 0; k < sweep.size(); ++k) {
        const SweepPoint &point = sweep[k];
        std::fprintf(
            out,
            "    {\"fault_rate\": %.2f, "
            "\"unprotected_fidelity\": %.4f, "
            "\"executor_fidelity\": %.4f, \"attempts\": %ld, "
            "\"retries\": %ld, \"recalibrations\": %ld, "
            "\"fallbacks\": %ld, \"degraded_runs\": %ld, "
            "\"validation_rejects\": %ld, "
            "\"job_latency_ms\": {\"p50\": %.3f, \"p95\": %.3f}}%s\n",
            point.rate, point.unprotectedFidelity,
            point.executorFidelity, point.stats.attempts,
            point.stats.retries, point.stats.recalibrations,
            point.stats.fallbacks, point.stats.degradedRuns,
            point.stats.validationRejects, point.latency.p50Ms,
            point.latency.p95Ms,
            k + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"determinism\": "
                 "{\"threads1_equals_threads8\": %s},\n",
                 deterministic ? "true" : "false");
    bench::writeTelemetryField(out);
    std::fprintf(out,
                 "  \"acceptance\": {\"executor_never_worse\": %s, "
                 "\"strictly_better_at_max_rate\": %s, "
                 "\"pass\": %s}\n",
                 never_worse ? "true" : "false",
                 strictly_better ? "true" : "false",
                 pass ? "true" : "false");
    std::fprintf(out, "}\n");
    bench::closeBenchJson(out, "BENCH_robustness.json");
    return pass ? 0 : 1;
}
