/**
 * @file
 * Figure 5 — gate-level vs pulse-level rotation about the X axis:
 * for a sweep of angles, the standard two-pulse realisation and the
 * direct scaled-pulse realisation are executed on the pulse simulator
 * with decoherence, their final states reconstructed by shot-sampled
 * state tomography, and the state fidelity against the ideal Rx(theta)
 * target compared. The paper reports 2x speedup and 16% lower error
 * on average for the direct pulses.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "metrics/metrics.h"

using namespace qpulse;

int
main()
{
    bench::banner(
        "Figure 5: Rx(theta) fidelity, standard vs optimized pulses",
        "optimized is 2x faster with ~16% lower error on average");

    const BackendConfig config = almadenLineConfig(1);
    const auto backend = makeCalibratedBackend(config);
    const PulseCompiler standard(backend, CompileMode::Standard);
    const PulseCompiler optimized(backend, CompileMode::Optimized);

    Calibrator calibrator(config);
    PulseSimulator sim(calibrator.qubitModel(0));
    Rng rng(0xF15);

    // Decoherence during the pulses is included via the Lindblad path.
    auto run_mode = [&](const PulseCompiler &compiler, double theta) {
        QuantumCircuit circuit(1);
        circuit.rx(theta, 0);
        const CompileResult result = compiler.compile(circuit);
        Matrix rho0(3, 3);
        rho0(0, 0) = Complex{1.0, 0.0};
        const Matrix rho = sim.evolveLindblad(result.schedule, rho0);
        // Qubit-subspace Bloch vector with sampled tomography noise.
        Matrix qubit(2, 2);
        for (std::size_t r = 0; r < 2; ++r)
            for (std::size_t c = 0; c < 2; ++c)
                qubit(r, c) = rho(r, c);
        BlochVector bloch = blochFromDensity(qubit);
        // Tomography axes follow the software frame: fold the pending
        // virtual-Z frame back in (rotate x + iy by -frame), exactly
        // what effectiveUnitary does for unitaries.
        double frame = 0.0;
        for (const auto &inst : result.schedule.instructions())
            if (inst.kind == PulseInstructionKind::ShiftPhase &&
                inst.channel == driveChannel(0))
                frame += inst.phase;
        const double cos_f = std::cos(-frame);
        const double sin_f = std::sin(-frame);
        const double x_rot = bloch.x * cos_f - bloch.y * sin_f;
        const double y_rot = bloch.x * sin_f + bloch.y * cos_f;
        bloch.x = x_rot;
        bloch.y = y_rot;
        // Sampled tomography (1000 shots/axis, as in the paper's
        // figure) shows the per-point jitter; the mean-error
        // statistics below use the exact expectation values, which a
        // simulator can provide without the statistical floor.
        BlochVector sampled = bloch;
        auto sample_axis = [&](double expectation) {
            const long shots = shots::kDirectRxPerPoint;
            const long plus =
                rng.binomial(shots, (1.0 + expectation) / 2.0);
            return 2.0 * static_cast<double>(plus) / shots - 1.0;
        };
        sampled.x = sample_axis(bloch.x);
        sampled.y = sample_axis(bloch.y);
        sampled.z = sample_axis(bloch.z);
        const BlochVector ideal{0.0, -std::sin(theta),
                                std::cos(theta)};
        struct PointResult
        {
            double exactFidelity;
            double sampledFidelity;
            long duration;
        };
        return PointResult{blochStateFidelity(bloch, ideal),
                           blochStateFidelity(sampled, ideal),
                           result.durationDt};
    };

    TextTable table({"theta (deg)", "std F (1k shots)",
                     "opt F (1k shots)", "std F (exact)",
                     "opt F (exact)", "std dur", "opt dur"});
    double std_err_total = 0.0, opt_err_total = 0.0;
    int points = 0;
    for (int k = 1; k <= 40; ++k) {
        const double theta = deg(4.5 * k);
        const auto std_point = run_mode(standard, theta);
        const auto opt_point = run_mode(optimized, theta);
        std_err_total += 1.0 - std_point.exactFidelity;
        opt_err_total += 1.0 - opt_point.exactFidelity;
        ++points;
        if (k % 5 == 0)
            table.addRow({fmtFixed(4.5 * k, 1),
                          fmtFixed(std_point.sampledFidelity, 4),
                          fmtFixed(opt_point.sampledFidelity, 4),
                          fmtFixed(std_point.exactFidelity, 5),
                          fmtFixed(opt_point.exactFidelity, 5),
                          std::to_string(std_point.duration),
                          std::to_string(opt_point.duration)});
    }
    std::printf("%s\n", table.render().c_str());

    const double std_mean = std_err_total / points;
    const double opt_mean = opt_err_total / points;
    std::printf("mean error: standard %.4f, optimized %.4f\n", std_mean,
                opt_mean);
    std::printf("error reduction: %.1f%% (paper: 16%% lower on "
                "average)\n",
                100.0 * (1.0 - opt_mean / std_mean));
    std::printf("shots per tomography axis: %ld (paper: 1000)\n",
                shots::kDirectRxPerPoint);
    return 0;
}
