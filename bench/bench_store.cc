/**
 * @file
 * Acceptance bench for the persistent artifact store (src/store,
 * docs/PERSISTENCE.md): a repeated-shot CR-pair CNOT workload is run
 * (a) with a cold in-memory propagator cache — every unique sample
 * pays the eigendecomposition — and (b) in a simulated fresh process
 * whose cold PersistentPropagatorCache serves the propagators from a
 * previously persisted QPULSE_CACHE_DIR via mmap.
 *
 * Embedded acceptance (BENCH_store.json):
 *  - persisted-cache serve >= 5x end-to-end over cold derivation;
 *  - served results bit-identical to fresh derivation (counts equal,
 *    populations within 1e-12);
 *  - the serve actually came from disk (disk hits > 0).
 *
 * Cross-process CI gate: run this bench twice with the same
 * QPULSE_CACHE_DIR. The second run reports preexisting_disk_hits > 0
 * (records written by the first process served to the second) and the
 * same counts fingerprint. The "determinism-fingerprint:" stdout line
 * must also be identical across QPULSE_THREADS=1/8.
 */
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "store/artifact_store.h"
#include "store/persistent_propagator_cache.h"
#include "store/serde.h"

namespace {

using namespace qpulse;

constexpr long kShots = 2;
constexpr int kReps = 7;
constexpr double kMinSpeedup = 5.0;
constexpr double kMaxDiff = 1e-12;

/** FNV-1a over the counts vector: the determinism fingerprint. */
std::uint64_t
countsFingerprint(const std::vector<long> &counts)
{
    return store::hashBytes(counts.data(),
                            counts.size() * sizeof(long));
}

/** One pass of the repeated-shot CR-pair workload. */
PulseShotResult
runWorkload(const PulseBackend &backend, const PulseSimulator &sim,
            const Schedule &schedule,
            const std::shared_ptr<PropagatorCache> &cache)
{
    PulseShotOptions opts;
    opts.shots = kShots;
    opts.seed = 0x5709E;
    opts.cache = cache;
    return backend.runShots(sim, schedule, opts);
}

double
maxPopulationDiff(const PulseShotResult &a, const PulseShotResult &b)
{
    double max_diff = 0.0;
    for (std::size_t k = 0; k < a.populations.size(); ++k)
        max_diff = std::max(
            max_diff, std::abs(a.populations[k] - b.populations[k]));
    return max_diff;
}

} // namespace

int
main()
{
    bench::banner(
        "bench_store: persistent propagator cache cold-start serve",
        "compilation artifacts are reusable across runs; persisting "
        "them removes the recurring derivation cost");

    // Store directory: QPULSE_CACHE_DIR when set (the CI cross-process
    // gate runs the bench twice against one directory), else a
    // throwaway directory owned by this process.
    const std::optional<std::string> env_dir = envCacheDir();
    const std::string dir =
        env_dir.has_value()
            ? *env_dir
            : (std::filesystem::temp_directory_path() /
               ("qpulse-bench-store-" + std::to_string(::getpid())))
                  .string();
    std::printf("store directory: %s%s\n\n", dir.c_str(),
                env_dir.has_value() ? " (from QPULSE_CACHE_DIR)"
                                    : " (throwaway)");

    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    Calibrator calibrator(config);
    const PulseSimulator sim = calibrator.pairSimulator(0, 1);
    const Schedule cnot =
        backend->schedule(makeGate(GateType::Cnot, {0, 1}));
    const std::uint64_t generation = sim.basisVersion();
    const std::uint64_t fingerprint = store::simConfigFingerprint(sim);

    Status open_status;
    auto store = store::ArtifactStore::open(
        dir, static_cast<std::uint64_t>(envCacheMaxBytes()),
        &open_status);
    if (store == nullptr) {
        std::fprintf(stderr, "cannot open artifact store: %s\n",
                     open_status.toString().c_str());
        return 1;
    }

    // --- Phase 1: cross-process gate + population pass. Whatever a
    // previous process left in the directory is served here;
    // everything else is derived and written back.
    auto persist_cache =
        std::make_shared<store::PersistentPropagatorCache>(
            store, generation, fingerprint);
    bench::Stopwatch populate_watch;
    runWorkload(*backend, sim, cnot, persist_cache);
    const double populate_ms = populate_watch.elapsedMs();
    const std::uint64_t preexisting_disk_hits =
        persist_cache->persistStats().diskHits;
    throwIfError(persist_cache->flush());
    std::printf("populate pass: %.1f ms, %llu propagators served from "
                "a previous process\n",
                populate_ms,
                static_cast<unsigned long long>(preexisting_disk_hits));

    // --- Phase 2+3, interleaved per rep. The baseline leg is what a
    // fresh process *without* persistence pays: a cold in-memory
    // cache, every unique sample through the eigendecomposition. The
    // serve leg opens the directory cold — new store handle (cold
    // mmap, re-validated checksums), new cache (cold memory tier) —
    // exactly a process restart with the store populated; every
    // propagator comes off disk. Running the two legs back to back
    // inside each rep keeps CPU frequency/scheduling drift common to
    // both, and the min over reps is the noise-resistant estimate of
    // each leg's true cost (spikes only ever add time).
    PulseShotResult baseline_shots;
    PulseShotResult served_shots;
    PulseShotResult first_cold_shots;
    store::PersistStats disk;
    double baseline_ms = 0.0;
    double served_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        bench::Stopwatch baseline_watch;
        baseline_shots = runWorkload(
            *backend, sim, cnot, std::make_shared<PropagatorCache>());
        const double baseline_rep_ms = baseline_watch.elapsedMs();

        bench::Stopwatch serve_watch;
        auto cold_store = store::ArtifactStore::open(
            dir, static_cast<std::uint64_t>(envCacheMaxBytes()));
        if (cold_store == nullptr) {
            std::fprintf(stderr, "cannot reopen artifact store\n");
            return 1;
        }
        auto cold_cache =
            std::make_shared<store::PersistentPropagatorCache>(
                cold_store, generation, fingerprint);
        served_shots = runWorkload(*backend, sim, cnot, cold_cache);
        const double serve_rep_ms = serve_watch.elapsedMs();

        baseline_ms = rep == 0
                          ? baseline_rep_ms
                          : std::min(baseline_ms, baseline_rep_ms);
        served_ms = rep == 0 ? serve_rep_ms
                             : std::min(served_ms, serve_rep_ms);
        if (rep == 0)
            first_cold_shots = served_shots;
        disk = cold_cache->persistStats();
    }

    const double speedup = baseline_ms / served_ms;
    const double max_diff =
        std::max(maxPopulationDiff(baseline_shots, served_shots),
                 maxPopulationDiff(baseline_shots, first_cold_shots));
    const bool identical =
        baseline_shots.counts == served_shots.counts &&
        baseline_shots.counts == first_cold_shots.counts &&
        max_diff <= kMaxDiff;
    const bool disk_hits_ok = disk.diskHits > 0;
    const bool speedup_ok = speedup >= kMinSpeedup;
    const bool pass = identical && disk_hits_ok && speedup_ok;
    const std::uint64_t fp = countsFingerprint(served_shots.counts);

    std::printf("\ncr-pair cnot, %ld shots, %d fresh-process reps "
                "(min over reps):\n",
                kShots, kReps);
    std::printf("  cold derivation:        %8.1f ms\n", baseline_ms);
    std::printf("  persisted-cache serve:  %8.1f ms  (%.1fx)\n",
                served_ms, speedup);
    std::printf("  disk hits %llu, misses %llu, fallbacks %llu\n",
                static_cast<unsigned long long>(disk.diskHits),
                static_cast<unsigned long long>(disk.diskMisses),
                static_cast<unsigned long long>(disk.fallbacks));
    std::printf("  max |population diff| vs fresh: %.3e\n", max_diff);
    std::printf("determinism-fingerprint: counts=%016llx\n",
                static_cast<unsigned long long>(fp));
    std::printf("acceptance: speedup >= %.1fx: %s; bit-identical: %s; "
                "served from disk: %s => %s\n",
                kMinSpeedup, speedup_ok ? "yes" : "no",
                identical ? "yes" : "no", disk_hits_ok ? "yes" : "no",
                pass ? "PASS" : "FAIL");

    bench::printTelemetry();
    std::FILE *out = bench::openBenchJson("BENCH_store.json");
    if (out == nullptr)
        return pass ? 0 : 1;
    std::fprintf(out, "{\n");
    bench::writeBenchHeader(out, "store");
    std::fprintf(out,
                 "  \"workload\": {\"name\": \"cr_pair_cnot\", "
                 "\"shots\": %ld, \"reps\": %d},\n",
                 kShots, kReps);
    std::fprintf(out, "  \"baseline_ms\": %.3f,\n", baseline_ms);
    std::fprintf(out, "  \"persisted_ms\": %.3f,\n", served_ms);
    std::fprintf(out, "  \"speedup\": %.2f,\n", speedup);
    std::fprintf(out, "  \"preexisting_disk_hits\": %llu,\n",
                 static_cast<unsigned long long>(
                     preexisting_disk_hits));
    std::fprintf(
        out,
        "  \"disk\": {\"hits\": %llu, \"misses\": %llu, "
        "\"write_backs\": %llu, \"fallbacks\": %llu},\n",
        static_cast<unsigned long long>(disk.diskHits),
        static_cast<unsigned long long>(disk.diskMisses),
        static_cast<unsigned long long>(disk.writeBacks),
        static_cast<unsigned long long>(disk.fallbacks));
    const store::StoreStats sstats = store->stats();
    std::fprintf(
        out,
        "  \"store\": {\"puts\": %llu, \"bytes_written\": %llu, "
        "\"bytes_read\": %llu, \"disk_bytes\": %llu, "
        "\"records\": %zu},\n",
        static_cast<unsigned long long>(sstats.puts),
        static_cast<unsigned long long>(sstats.bytesWritten),
        static_cast<unsigned long long>(sstats.bytesRead),
        static_cast<unsigned long long>(store->diskBytes()),
        store->size());
    std::fprintf(out, "  \"max_abs_population_diff\": %.3e,\n",
                 max_diff);
    std::fprintf(out, "  \"counts_fingerprint\": \"%016llx\",\n",
                 static_cast<unsigned long long>(fp));
    bench::writeTelemetryField(out);
    std::fprintf(
        out,
        "  \"acceptance\": {\"min_speedup\": %.1f, "
        "\"max_abs_diff\": %.1e, \"speedup_ok\": %s, "
        "\"bit_identical\": %s, \"disk_hits_ok\": %s, "
        "\"pass\": %s}\n",
        kMinSpeedup, kMaxDiff, speedup_ok ? "true" : "false",
        identical ? "true" : "false",
        disk_hits_ok ? "true" : "false", pass ? "true" : "false");
    std::fprintf(out, "}\n");
    bench::closeBenchJson(out, "BENCH_store.json");

    if (!env_dir.has_value())
        std::filesystem::remove_all(dir);
    return pass ? 0 : 1;
}
