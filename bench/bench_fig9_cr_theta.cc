/**
 * @file
 * Figure 9 — tomography on the target qubit of the stretched
 * CR(theta) pulse: for 41 angles the echoed, stretched cross-resonance
 * schedule is executed on the two-transmon pulse simulator for both
 * control states; the target's Bloch components (sampled with 1000
 * shots each, 41 x 3 x 2 x 1000 = 246k total) must track the ideal
 * conditional rotation: <Y> = -sin(theta), <Z> = cos(theta) for
 * control |0>, mirrored for control |1>.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "metrics/metrics.h"

using namespace qpulse;

namespace {

/** Bloch vector of the target from a 9-dim pair state. */
BlochVector
targetBloch(const Vector &state, std::size_t control_level)
{
    // Reduced target qubit amplitudes for the given control level.
    const std::size_t base = control_level * 3;
    Vector reduced{state[base], state[base + 1]};
    const double norm = reduced.norm();
    if (norm > 1e-9) {
        reduced[0] /= norm;
        reduced[1] /= norm;
    }
    return blochFromState(reduced);
}

} // namespace

int
main()
{
    bench::banner("Figure 9: CR(theta) target-qubit tomography "
                  "(246k shots)",
                  "measured components track the ideal curve for both "
                  "control states");

    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    Calibrator calibrator(config);
    PulseSimulator sim = calibrator.pairSimulator(0, 1);
    Rng rng(0xF19);

    TextTable table({"theta (deg)", "ctrl", "Y meas", "Y ideal",
                     "Z meas", "Z ideal"});
    double sum_sq_err = 0.0;
    int points = 0;
    long total_shots = 0;

    for (int k = 0; k <= 40; k += 1) {
        const double theta = deg(4.5 * k);
        const Gate cr = makeGate(GateType::Cr, {0, 1}, {theta});
        const Schedule schedule = backend->schedule(cr);
        const UnitaryResult result = sim.evolveUnitary(schedule);
        const Matrix effective = sim.effectiveUnitary(result);
        for (std::size_t control = 0; control < 2; ++control) {
            Vector input(9);
            input[control * 3] = Complex{1.0, 0.0};
            const Vector out = effective.apply(input);
            BlochVector bloch = targetBloch(out, control);
            auto sample = [&](double expectation) {
                const long shots = shots::kCrTomoPerPoint;
                total_shots += shots;
                const long plus =
                    rng.binomial(shots, (1.0 + expectation) / 2.0);
                return 2.0 * static_cast<double>(plus) / shots - 1.0;
            };
            bloch.x = sample(bloch.x);
            bloch.y = sample(bloch.y);
            bloch.z = sample(bloch.z);
            // CR(theta): target rotates by +theta (control 0) or
            // -theta (control 1) about X.
            const double sign = control == 0 ? 1.0 : -1.0;
            const double y_ideal = -std::sin(sign * theta);
            const double z_ideal = std::cos(theta);
            sum_sq_err += (bloch.y - y_ideal) * (bloch.y - y_ideal) +
                          (bloch.z - z_ideal) * (bloch.z - z_ideal);
            points += 2;
            if (k % 5 == 0)
                table.addRow({fmtFixed(4.5 * k, 1),
                              control == 0 ? "|0>" : "|1>",
                              fmtFixed(bloch.y, 4),
                              fmtFixed(y_ideal, 4),
                              fmtFixed(bloch.z, 4),
                              fmtFixed(z_ideal, 4)});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("rms deviation from ideal: %.4f "
                "(paper: experiment/simulation agree with ideal)\n",
                std::sqrt(sum_sq_err / points));
    std::printf("total shots: %ldk (paper: 246k)\n", total_shots / 1000);
    return 0;
}
