/**
 * @file
 * Figure 10 — state fidelity of the ZZ interaction, standard
 * compilation (CNOT . Rz . CNOT) vs optimized compilation
 * (H . CR(theta) . H), for theta = 0..90 deg in 4.5 deg steps with
 * 2000 shots per point (21 x 2 x 2000 = 84k). The paper measures
 * 98.4% vs 99.0% average fidelity — a 60% error reduction — with the
 * win coming from the stretched pulse being ~2x shorter.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "metrics/metrics.h"
#include "readout/readout.h"

using namespace qpulse;

int
main()
{
    bench::banner(
        "Figure 10: ZZ-interaction state fidelity (84k shots)",
        "standard 98.4% vs optimized 99.0% -> 60% less error");

    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    const PulseCompiler standard(backend, CompileMode::Standard);
    const PulseCompiler optimized(backend, CompileMode::Optimized);
    Rng rng(0xF1A);

    // The experiment: prepare |++>, apply ZZ(theta), rotate back and
    // compare the outcome distribution against the ideal one —
    // summarised as a state fidelity (Hellinger fidelity of the
    // 2000-shot sampled distribution vs ideal).
    auto run_point = [&](const PulseCompiler &compiler, double theta) {
        QuantumCircuit circuit(2);
        circuit.h(0);
        circuit.h(1);
        circuit.cx(0, 1);
        circuit.rz(theta, 1);
        circuit.cx(0, 1);
        circuit.h(0);
        circuit.h(1);
        const std::vector<double> ideal = [&] {
            QuantumCircuit pure = circuit;
            Vector state = pure.runStatevector();
            std::vector<double> probs(4);
            for (std::size_t i = 0; i < 4; ++i)
                probs[i] = std::norm(state[i]);
            return probs;
        }();

        DensitySimulator simulator = compiler.makeSimulator();
        QuantumCircuit measured = circuit;
        measured.measureAll();
        const NoisyRunResult run =
            simulator.run(compiler.transpile(measured));
        const auto counts =
            simulator.sampleCounts(run, shots::kZzPerPoint, rng);
        // Measurement-error mitigation, as in Section 2.4.
        const MeasurementMitigator mitigator =
            MeasurementMitigator::forQubits(
                {{config.readout[0].probFlip0to1,
                  config.readout[0].probFlip1to0},
                 {config.readout[1].probFlip0to1,
                  config.readout[1].probFlip1to0}});
        return hellingerFidelity(
            mitigator.mitigate(countsToProbabilities(counts)), ideal);
    };

    TextTable table({"theta (deg)", "standard F", "optimized F"});
    double std_total = 0.0, opt_total = 0.0;
    int points = 0;
    for (int k = 0; k <= 20; ++k) {
        const double theta = deg(4.5 * k);
        const double std_f = run_point(standard, theta);
        const double opt_f = run_point(optimized, theta);
        std_total += std_f;
        opt_total += opt_f;
        ++points;
        table.addRow({fmtFixed(4.5 * k, 1), fmtFixed(std_f, 4),
                      fmtFixed(opt_f, 4)});
    }
    std::printf("%s\n", table.render().c_str());

    const double std_mean = std_total / points;
    const double opt_mean = opt_total / points;
    std::printf("average fidelity: standard %s (paper 98.4%%), "
                "optimized %s (paper 99.0%%)\n",
                fmtPercent(std_mean, 2).c_str(),
                fmtPercent(opt_mean, 2).c_str());
    std::printf("error reduction: %.0f%% (paper: 60%%)\n",
                100.0 * (1.0 - (1.0 - opt_mean) / (1.0 - std_mean)));
    std::printf("total shots: %d x 2 x %ld = %ldk (paper: 84k)\n",
                points, shots::kZzPerPoint,
                points * 2 * shots::kZzPerPoint / 1000);
    return 0;
}
