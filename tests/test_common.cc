/**
 * @file
 * Unit tests for the common library: RNG determinism and statistical
 * sanity, table formatting, logging helpers and unit conversions.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <set>

#include "common/constants.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/ascii_plot.h"
#include "common/table.h"

namespace qpulse {
namespace {

TEST(Constants, DtMatchesAwgRate)
{
    // 4.5 GS/s -> one sample every 2/9 ns (Section 3.1.4).
    EXPECT_NEAR(kDtNs, 0.2222222, 1e-6);
    EXPECT_NEAR(dtToNs(160), 35.56, 0.01);  // DirectX duration, Fig. 4.
    EXPECT_NEAR(dtToNs(320), 71.11, 0.01);  // Standard X duration.
    EXPECT_EQ(nsToDt(35.56), 160);
}

TEST(Constants, DegreeConversions)
{
    EXPECT_NEAR(deg(180.0), kPi, 1e-12);
    EXPECT_NEAR(toDegrees(kPi / 2), 90.0, 1e-12);
    EXPECT_NEAR(deg(toDegrees(1.234)), 1.234, 1e-12);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        if (a.nextU64() != b.nextU64())
            any_diff = true;
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, UniformMeanAndVariance)
{
    Rng rng(11);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        sum += u;
        sum_sq += u * u;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.01);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(19);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // All outcomes reachable.
}

TEST(Rng, BinomialEdgeCases)
{
    Rng rng(23);
    EXPECT_EQ(rng.binomial(1000, 0.0), 0);
    EXPECT_EQ(rng.binomial(1000, 1.0), 1000);
    EXPECT_EQ(rng.binomial(0, 0.5), 0);
}

TEST(Rng, BinomialMean)
{
    Rng rng(29);
    // Small-n exact path.
    long total = 0;
    for (int i = 0; i < 2000; ++i)
        total += rng.binomial(40, 0.3);
    EXPECT_NEAR(static_cast<double>(total) / 2000.0, 12.0, 0.4);
    // Large-n Gaussian path.
    total = 0;
    for (int i = 0; i < 500; ++i)
        total += rng.binomial(100000, 0.25);
    EXPECT_NEAR(static_cast<double>(total) / 500.0, 25000.0, 60.0);
}

TEST(Rng, BinomialWithinBounds)
{
    Rng rng(31);
    for (int i = 0; i < 200; ++i) {
        const long k = rng.binomial(100000, 0.5);
        EXPECT_GE(k, 0);
        EXPECT_LE(k, 100000);
    }
}

TEST(Rng, MultinomialSumsToShots)
{
    Rng rng(37);
    const std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
    const auto counts = rng.multinomial(10000, probs);
    long total = 0;
    for (long c : counts)
        total += c;
    EXPECT_EQ(total, 10000);
    EXPECT_NEAR(static_cast<double>(counts[3]) / 10000.0, 0.4, 0.03);
}

TEST(Rng, MultinomialUnnormalisedProbs)
{
    Rng rng(41);
    const auto counts = rng.multinomial(5000, {2.0, 2.0});
    EXPECT_EQ(counts[0] + counts[1], 5000);
    EXPECT_NEAR(static_cast<double>(counts[0]) / 5000.0, 0.5, 0.05);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(43);
    std::vector<long> histogram(3, 0);
    for (int i = 0; i < 30000; ++i)
        ++histogram[rng.discrete({0.5, 0.0, 0.5})];
    EXPECT_EQ(histogram[1], 0);
    EXPECT_NEAR(static_cast<double>(histogram[0]) / 30000.0, 0.5, 0.02);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(qpulseFatal("bad ", 42), FatalError);
    EXPECT_THROW(qpulsePanic("bug"), PanicError);
}

TEST(Logging, RequireAndAssert)
{
    EXPECT_NO_THROW(qpulseRequire(true, "fine"));
    EXPECT_THROW(qpulseRequire(false, "nope"), FatalError);
    EXPECT_NO_THROW(qpulseAssert(true, "fine"));
    EXPECT_THROW(qpulseAssert(false, "bug"), PanicError);
}

TEST(Logging, MessageContent)
{
    try {
        qpulseFatal("value was ", 17, " not ", 3.5);
        FAIL() << "expected throw";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("value was 17 not 3.5"),
                  std::string::npos);
    }
}

TEST(Table, RendersAlignedRows)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"bb", "12345"});
    const std::string out = table.render();
    EXPECT_NE(out.find("| name "), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("12345"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, RejectsWrongArity)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), FatalError);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtFixed(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.984, 1), "98.4%");
    EXPECT_EQ(fmtPercent(0.5), "50.00%");
}

TEST(AsciiPlot, RendersGlyphsAndLegend)
{
    PlotSeries up{"rising", 'o', {0, 1, 2, 3}, {0, 1, 2, 3}};
    PlotSeries down{"falling", 'x', {0, 1, 2, 3}, {3, 2, 1, 0}};
    const std::string chart = renderAsciiPlot({up, down});
    EXPECT_NE(chart.find('o'), std::string::npos);
    EXPECT_NE(chart.find('x'), std::string::npos);
    EXPECT_NE(chart.find("rising"), std::string::npos);
    EXPECT_NE(chart.find("falling"), std::string::npos);
    // The rising series' last point sits on the top row; the falling
    // series' first point shares it.
    const std::size_t first_row_end = chart.find('\n', 0);
    const std::size_t second_row_end =
        chart.find('\n', first_row_end + 1);
    const std::string top_row = chart.substr(
        first_row_end + 1, second_row_end - first_row_end - 1);
    EXPECT_NE(top_row.find('o'), std::string::npos);
    EXPECT_NE(top_row.find('x'), std::string::npos);
}

TEST(AsciiPlot, FixedBoundsClamp)
{
    PlotSeries series{"s", '*', {0, 1}, {-5.0, 5.0}};
    PlotOptions options;
    options.yLo = 0.0;
    options.yHi = 1.0;
    EXPECT_NO_THROW(renderAsciiPlot({series}, options));
}


/** RAII guard restoring an env var on scope exit. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (old_.has_value())
            setenv(name_, old_->c_str(), 1);
        else
            unsetenv(name_);
    }

    const char *name_;
    std::optional<std::string> old_;
};

TEST(Env, BytesSuffixesAndDefaults)
{
    constexpr long kDefault = 8L << 20;
    {
        EnvGuard guard("QPULSE_TEST_BYTES", nullptr);
        EXPECT_EQ(envBytes("QPULSE_TEST_BYTES", kDefault, 1,
                           1L << 40),
                  kDefault);
    }
    {
        EnvGuard guard("QPULSE_TEST_BYTES", "12345");
        EXPECT_EQ(envBytes("QPULSE_TEST_BYTES", kDefault, 1,
                           1L << 40),
                  12345);
    }
    {
        EnvGuard guard("QPULSE_TEST_BYTES", "64K");
        EXPECT_EQ(envBytes("QPULSE_TEST_BYTES", kDefault, 1,
                           1L << 40),
                  64L << 10);
    }
    {
        EnvGuard guard("QPULSE_TEST_BYTES", "2m");
        EXPECT_EQ(envBytes("QPULSE_TEST_BYTES", kDefault, 1,
                           1L << 40),
                  2L << 20);
    }
    {
        EnvGuard guard("QPULSE_TEST_BYTES", "1G");
        EXPECT_EQ(envBytes("QPULSE_TEST_BYTES", kDefault, 1,
                           1L << 40),
                  1L << 30);
    }
}

TEST(Env, BytesWarnsAndClampsLikeEnvLong)
{
    constexpr long kDefault = 8L << 20;
    {
        // Garbage value: default, not a crash or a silent zero.
        EnvGuard guard("QPULSE_TEST_BYTES", "lots");
        EXPECT_EQ(envBytes("QPULSE_TEST_BYTES", kDefault, 1,
                           1L << 40),
                  kDefault);
    }
    {
        // Unknown suffix counts as garbage.
        EnvGuard guard("QPULSE_TEST_BYTES", "12Q");
        EXPECT_EQ(envBytes("QPULSE_TEST_BYTES", kDefault, 1,
                           1L << 40),
                  kDefault);
    }
    {
        // Trailing junk after the suffix counts as garbage.
        EnvGuard guard("QPULSE_TEST_BYTES", "12MB");
        EXPECT_EQ(envBytes("QPULSE_TEST_BYTES", kDefault, 1,
                           1L << 40),
                  kDefault);
    }
    {
        // Out of range: warn-and-clamp, matching envLong.
        EnvGuard guard("QPULSE_TEST_BYTES", "4T");
        EXPECT_EQ(envBytes("QPULSE_TEST_BYTES", kDefault, 1,
                           1L << 40),
                  1L << 40);
    }
    {
        // A suffix that would overflow `long` saturates, then clamps.
        EnvGuard guard("QPULSE_TEST_BYTES", "99999999999T");
        EXPECT_EQ(envBytes("QPULSE_TEST_BYTES", kDefault, 1,
                           1L << 40),
                  1L << 40);
    }
    {
        EnvGuard guard("QPULSE_TEST_BYTES", "0");
        EXPECT_EQ(envBytes("QPULSE_TEST_BYTES", kDefault, 1,
                           1L << 40),
                  1);
    }
}

TEST(Env, CacheAndIngestBudgetsRouteThroughEnvBytes)
{
    {
        EnvGuard guard("QPULSE_CACHE_MAX_BYTES", "64M");
        EXPECT_EQ(envCacheMaxBytes(), 64L << 20);
    }
    {
        // Below the 1 MiB floor: warn-and-clamp, never a zero budget.
        EnvGuard guard("QPULSE_CACHE_MAX_BYTES", "3");
        EXPECT_EQ(envCacheMaxBytes(), 1L << 20);
    }
    {
        EnvGuard guard("QPULSE_INGEST_MAX_BYTES", nullptr);
        EXPECT_EQ(envIngestMaxBytes(), 8L << 20);
    }
    {
        EnvGuard guard("QPULSE_INGEST_MAX_BYTES", "256K");
        EXPECT_EQ(envIngestMaxBytes(), 256L << 10);
    }
    {
        EnvGuard guard("QPULSE_INGEST_MAX_BYTES", "1");
        EXPECT_EQ(envIngestMaxBytes(), 4L << 10);
    }
}

TEST(AsciiPlot, Validation)
{
    EXPECT_THROW(renderAsciiPlot({}), FatalError);
    PlotSeries ragged{"r", '*', {0, 1}, {0}};
    EXPECT_THROW(renderAsciiPlot({ragged}), FatalError);
}

} // namespace
} // namespace qpulse
