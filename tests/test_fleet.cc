/**
 * @file
 * Tests for the fault-tolerant backend fleet: BackendPool health
 * scoring and routing order, quarantine on breaker trip, probe-driven
 * recovery (and its admin-path exclusivity), graceful drain/readmit,
 * and the fleet-mode ExecutionService — cross-backend failover with
 * breadcrumbs, pinned jobs, per-tenant quotas, weighted-fair dequeue,
 * and the virtual-time determinism contract across thread counts.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "compile/compiler.h"
#include "device/fault_injector.h"
#include "service/backend_pool.h"
#include "service/execution_service.h"

namespace qpulse {
namespace {

/** Calibrated single-qubit substrate shared by every fleet member. */
struct Substrate
{
    Substrate()
        : config(almadenLineConfig(1)),
          backend(makeCalibratedBackend(config)),
          calibrator(config), cal(calibrator.calibrateQubit(0)),
          sim(calibrator.qubitModel(0))
    {}

    Schedule
    x180Schedule() const
    {
        Schedule schedule("x180");
        schedule.play(driveChannel(0), cal.x180Pulse());
        return schedule;
    }

    BackendConfig config;
    std::shared_ptr<const PulseBackend> backend;
    Calibrator calibrator;
    QubitCalibration cal;
    PulseSimulator sim;
};

/** Breaker that trips fast and recovers after two probes. */
CircuitBreakerPolicy
snappyBreaker()
{
    CircuitBreakerPolicy policy;
    policy.window = 4;
    policy.minSamples = 2;
    policy.openFailureRate = 0.5;
    policy.cooldownDenials = 2;
    policy.halfOpenSuccesses = 2;
    return policy;
}

BackendPool::Policies
poolPolicies()
{
    BackendPool::Policies policies;
    policies.retry.maxAttempts = 2;
    policies.breaker = snappyBreaker();
    return policies;
}

std::shared_ptr<BackendPool>
makePool(const Substrate &sub, std::size_t n,
         BackendPool::Policies policies)
{
    auto pool = std::make_shared<BackendPool>(policies);
    for (std::size_t i = 0; i < n; ++i)
        pool->addBackend("b" + std::to_string(i), sub.backend,
                         sub.sim);
    return pool;
}

FaultPlan
wedgedPlan()
{
    FaultPlan plan;
    plan.timeoutRate = 1.0; // Every attempt times out.
    return plan;
}

ResilientRequest
poolRequest(const Substrate &sub)
{
    ResilientRequest request;
    request.schedule = sub.x180Schedule();
    return request;
}

PulseShotOptions
poolOptions(long shots = 16)
{
    PulseShotOptions opts;
    opts.shots = shots;
    opts.seed = 0xB0B;
    opts.maxThreads = 1;
    return opts;
}

/** Route jobs at `name` until it leaves Active (or `limit` jobs). */
void
wedgeUntilQuarantined(BackendPool &pool, const Substrate &sub,
                      const std::string &name, int limit = 8)
{
    pool.setFaultInjector(
        name, std::make_shared<FaultInjector>(wedgedPlan()));
    for (int i = 0; i < limit; ++i) {
        if (pool.adminState(name) != BackendAdminState::Active)
            break;
        (void)pool.runOn(name, poolRequest(sub), poolOptions());
    }
}

/** RAII guard restoring an env var on scope exit. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (old_.has_value())
            setenv(name_, old_->c_str(), 1);
        else
            unsetenv(name_);
    }
    const char *name_;
    std::optional<std::string> old_;
};

// ---------------------------------------------------------------------
// BackendPool: construction, scoring, routing.

TEST(FleetPool, DegeneratePoliciesRejectedAtConstruction)
{
    {
        BackendPool::Policies policies;
        policies.health.window = 0;
        EXPECT_THROW(BackendPool pool(policies), StatusError);
    }
    {
        BackendPool::Policies policies;
        policies.health.freshnessHorizonJobs = 0.0;
        EXPECT_THROW(BackendPool pool(policies), StatusError);
    }
    {
        BackendPool::Policies policies;
        policies.probe.shots = 0;
        EXPECT_THROW(BackendPool pool(policies), StatusError);
    }
    {
        BackendPool::Policies policies;
        policies.breaker.halfOpenSuccesses = 0;
        EXPECT_THROW(BackendPool pool(policies), StatusError);
    }
}

TEST(FleetPool, MembershipAndInitialHealth)
{
    const Substrate sub;
    auto pool = makePool(sub, 3, poolPolicies());
    EXPECT_EQ(pool->size(), 3u);
    EXPECT_TRUE(pool->has("b1"));
    EXPECT_FALSE(pool->has("nope"));
    EXPECT_EQ(pool->names(),
              (std::vector<std::string>{"b0", "b1", "b2"}));
    for (const std::string &name : pool->names()) {
        EXPECT_EQ(pool->adminState(name), BackendAdminState::Active);
        EXPECT_DOUBLE_EQ(pool->healthScore(name), 1.0);
        EXPECT_EQ(pool->breaker(name).state(), BreakerState::Closed);
    }
    // A fresh fleet routes in insertion order.
    EXPECT_EQ(pool->routingOrder(),
              (std::vector<std::string>{"b0", "b1", "b2"}));
    // Duplicate names are a construction error.
    EXPECT_THROW(pool->addBackend("b0", sub.backend, sub.sim),
                 FatalError);
}

TEST(FleetPool, RoutingOrderDemotesFailingBackend)
{
    const Substrate sub;
    BackendPool::Policies policies = poolPolicies();
    // Wide breaker window: failures here dent the health score long
    // before the breaker trips.
    policies.breaker.window = 16;
    policies.breaker.minSamples = 16;
    auto pool = makePool(sub, 2, policies);
    pool->setFaultInjector(
        "b0", std::make_shared<FaultInjector>(wedgedPlan()));

    for (int i = 0; i < 3; ++i)
        (void)pool->runOn("b0", poolRequest(sub), poolOptions());

    EXPECT_EQ(pool->adminState("b0"), BackendAdminState::Active);
    EXPECT_LT(pool->healthScore("b0"), pool->healthScore("b1"));
    EXPECT_EQ(pool->routingOrder(),
              (std::vector<std::string>{"b1", "b0"}));
    EXPECT_EQ(pool->stats().failures, 3);
}

TEST(FleetPool, CalibrationStalenessLowersScoreUntilReadmit)
{
    const Substrate sub;
    BackendPool::Policies policies = poolPolicies();
    policies.health.freshnessHorizonJobs = 4.0;
    auto pool = makePool(sub, 2, policies);

    for (int i = 0; i < 2; ++i)
        (void)pool->runOn("b0", poolRequest(sub), poolOptions());
    EXPECT_EQ(pool->jobsSinceCalibration("b0"), 2);
    // Staleness 0.5 at weight 0.5: b0 scores 0.75 against b1's 1.0.
    EXPECT_DOUBLE_EQ(pool->healthScore("b0"), 0.75);
    EXPECT_EQ(pool->routingOrder(),
              (std::vector<std::string>{"b1", "b0"}));

    // A drain/readmit recalibration restores full freshness.
    EXPECT_TRUE(pool->beginDrain("b0").ok());
    EXPECT_TRUE(pool->readmit("b0").ok());
    EXPECT_EQ(pool->jobsSinceCalibration("b0"), 0);
    EXPECT_EQ(pool->calibrationVersion("b0"), 1);
    EXPECT_DOUBLE_EQ(pool->healthScore("b0"), 1.0);
    EXPECT_EQ(pool->routingOrder(),
              (std::vector<std::string>{"b0", "b1"}));
}

// ---------------------------------------------------------------------
// Quarantine and probe-driven recovery.

TEST(FleetPool, BreakerTripQuarantinesAndRemovesFromRouting)
{
    const Substrate sub;
    auto pool = makePool(sub, 2, poolPolicies());
    wedgeUntilQuarantined(*pool, sub, "b0");

    EXPECT_EQ(pool->adminState("b0"), BackendAdminState::Quarantined);
    EXPECT_EQ(pool->breaker("b0").state(), BreakerState::Open);
    EXPECT_EQ(pool->stats().quarantines, 1);
    EXPECT_DOUBLE_EQ(pool->healthScore("b0"), 0.0);
    EXPECT_EQ(pool->routingOrder(),
              (std::vector<std::string>{"b1"}));
}

TEST(FleetPool, SuccessfulProbesReadmitQuarantinedBackend)
{
    const Substrate sub;
    auto pool = makePool(sub, 2, poolPolicies());
    wedgeUntilQuarantined(*pool, sub, "b0");
    ASSERT_EQ(pool->adminState("b0"), BackendAdminState::Quarantined);

    // The fault clears (an operator fixed the device); recovery still
    // must be earned through probes. cooldownDenials = 2 pumps spend
    // the cooldown, then halfOpenSuccesses = 2 probe jobs re-admit.
    pool->setFaultInjector("b0", nullptr);
    pool->pumpProbes(); // Denial 1.
    pool->pumpProbes(); // Denial 2.
    EXPECT_EQ(pool->adminState("b0"), BackendAdminState::Quarantined);
    EXPECT_EQ(pool->stats().probes, 0);
    pool->pumpProbes(); // Half-open probe 1 succeeds.
    EXPECT_EQ(pool->adminState("b0"), BackendAdminState::Quarantined);
    EXPECT_EQ(pool->breaker("b0").state(), BreakerState::HalfOpen);
    pool->pumpProbes(); // Probe 2 succeeds: breaker closes.
    EXPECT_EQ(pool->adminState("b0"), BackendAdminState::Active);
    EXPECT_EQ(pool->breaker("b0").state(), BreakerState::Closed);
    EXPECT_EQ(pool->stats().probes, 2);
    EXPECT_EQ(pool->stats().probeFailures, 0);
    EXPECT_EQ(pool->stats().readmissions, 1);
    // Back in the routing set — but probe recovery is not a
    // recalibration, so b0 keeps its calibration age and ranks a
    // hair behind the never-used b1.
    EXPECT_EQ(pool->routingOrder(),
              (std::vector<std::string>{"b1", "b0"}));
    EXPECT_GT(pool->healthScore("b0"), 0.9);
}

TEST(FleetPool, FailedProbesKeepBackendQuarantined)
{
    const Substrate sub;
    auto pool = makePool(sub, 2, poolPolicies());
    wedgeUntilQuarantined(*pool, sub, "b0");

    // Still wedged: the half-open probe fails, the breaker re-opens,
    // and the member never rejoins routing.
    for (int i = 0; i < 9; ++i)
        pool->pumpProbes();
    EXPECT_EQ(pool->adminState("b0"), BackendAdminState::Quarantined);
    EXPECT_GE(pool->stats().probeFailures, 2);
    EXPECT_EQ(pool->stats().readmissions, 0);
    EXPECT_EQ(pool->routingOrder(),
              (std::vector<std::string>{"b1"}));
}

TEST(FleetPool, QuarantineIsExemptFromAdminDrainAndReadmit)
{
    const Substrate sub;
    auto pool = makePool(sub, 2, poolPolicies());
    wedgeUntilQuarantined(*pool, sub, "b0");

    // The only road back from quarantine is the probe loop: both
    // admin verbs refuse with a structured `unavailable`.
    const Status drain = pool->beginDrain("b0");
    EXPECT_EQ(drain.code(), ErrorCode::Unavailable);
    const Status readmit = pool->readmit("b0");
    EXPECT_EQ(readmit.code(), ErrorCode::Unavailable);
    EXPECT_NE(readmit.message().find("health probes"),
              std::string::npos)
        << readmit.message();
    EXPECT_EQ(pool->adminState("b0"), BackendAdminState::Quarantined);
}

TEST(FleetPool, DrainLifecycleAndInvalidTransitions)
{
    const Substrate sub;
    auto pool = makePool(sub, 2, poolPolicies());

    EXPECT_EQ(pool->readmit("b0").code(), ErrorCode::InvalidArgument);
    EXPECT_TRUE(pool->beginDrain("b0").ok());
    EXPECT_EQ(pool->adminState("b0"), BackendAdminState::Draining);
    EXPECT_EQ(pool->routingOrder(),
              (std::vector<std::string>{"b1"}));
    EXPECT_EQ(pool->beginDrain("b0").code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(pool->beginDrain("ghost").code(),
              ErrorCode::InvalidArgument);
    EXPECT_TRUE(pool->readmit("b0").ok());
    EXPECT_EQ(pool->adminState("b0"), BackendAdminState::Active);
    EXPECT_EQ(pool->stats().drains, 1);
    EXPECT_EQ(pool->stats().drainReadmissions, 1);
}

// ---------------------------------------------------------------------
// Fleet-mode ExecutionService: failover, pinning, tenants.

ServicePolicy
fleetServicePolicy(std::size_t capacity = 64)
{
    ServicePolicy policy;
    policy.queueCapacity = capacity;
    policy.maxThreads = 1;
    policy.retry.maxAttempts = 2;
    policy.breaker = snappyBreaker();
    return policy;
}

JobRequest
fleetJob(const Substrate &sub, const std::string &tenant = "default",
         int priority = 0, long shots = 16)
{
    JobRequest job;
    job.schedule = sub.x180Schedule();
    job.shots = shots;
    job.seed = 0xB0B;
    job.priority = priority;
    job.tenant = tenant;
    return job;
}

TEST(FleetService, DegenerateFleetPolicyRejectedAtConstruction)
{
    const Substrate sub;
    auto pool = makePool(sub, 2, poolPolicies());
    {
        ServicePolicy policy = fleetServicePolicy();
        policy.fleet.failoverBudget = 0;
        EXPECT_THROW(ExecutionService service(pool, policy),
                     StatusError);
    }
    {
        ServicePolicy policy = fleetServicePolicy();
        policy.fleet.tenants["alice"].weight = 0.0;
        EXPECT_THROW(ExecutionService service(pool, policy),
                     StatusError);
    }
}

TEST(FleetService, FailoverCompletesJobAndRecordsBreadcrumbs)
{
    const Substrate sub;
    auto pool = makePool(sub, 2, poolPolicies());
    // b0 is wedged but still ranks first (fresh, tie to insertion
    // order), so the job tries it, fails, and fails over to b1.
    pool->setFaultInjector(
        "b0", std::make_shared<FaultInjector>(wedgedPlan()));
    ExecutionService service(pool, fleetServicePolicy());

    EXPECT_TRUE(service.submit(fleetJob(sub)).ok());
    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    const JobOutcome &out = outcomes[0];
    EXPECT_TRUE(out.status.ok()) << out.status.toString();
    EXPECT_TRUE(out.executed);
    EXPECT_EQ(out.backend, "b1");
    ASSERT_EQ(out.path.size(), 2u);
    EXPECT_EQ(out.path[0].backend, "b0");
    EXPECT_EQ(out.path[0].code, ErrorCode::RetriesExhausted);
    EXPECT_EQ(out.path[1].backend, "b1");
    EXPECT_EQ(out.path[1].code, ErrorCode::Ok);
    EXPECT_EQ(service.stats().failovers, 1);
    EXPECT_EQ(service.stats().completed, 1);
}

TEST(FleetService, FailoverBudgetBoundsHopsAndAnnotatesStatus)
{
    const Substrate sub;
    auto pool = makePool(sub, 3, poolPolicies());
    for (const std::string &name : pool->names())
        pool->setFaultInjector(
            name, std::make_shared<FaultInjector>(wedgedPlan()));

    ServicePolicy policy = fleetServicePolicy();
    policy.fleet.failoverBudget = 2;
    ExecutionService service(pool, policy);

    EXPECT_TRUE(service.submit(fleetJob(sub)).ok());
    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    const JobOutcome &out = outcomes[0];
    EXPECT_EQ(out.status.code(), ErrorCode::RetriesExhausted);
    // Budget 2: exactly two backends tried, three available.
    ASSERT_EQ(out.path.size(), 2u);
    // The terminal Status carries the full breadcrumb trail.
    EXPECT_NE(out.status.message().find("[fleet path: "),
              std::string::npos)
        << out.status.message();
    EXPECT_NE(out.status.message().find("b0:retries-exhausted"),
              std::string::npos)
        << out.status.message();
}

TEST(FleetService, FailoverDisabledTriesExactlyOneBackend)
{
    const Substrate sub;
    auto pool = makePool(sub, 3, poolPolicies());
    pool->setFaultInjector(
        "b0", std::make_shared<FaultInjector>(wedgedPlan()));

    ServicePolicy policy = fleetServicePolicy();
    policy.fleet.failoverEnabled = false;
    ExecutionService service(pool, policy);

    EXPECT_TRUE(service.submit(fleetJob(sub)).ok());
    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status.code(),
              ErrorCode::RetriesExhausted);
    EXPECT_EQ(outcomes[0].path.size(), 1u);
    EXPECT_EQ(service.stats().failovers, 0);
}

TEST(FleetService, PinnedJobsSkipFailoverAndFastFailWhenOffline)
{
    const Substrate sub;
    auto pool = makePool(sub, 2, poolPolicies());
    ExecutionService service(pool, fleetServicePolicy());

    // Unknown backend: structured invalid-argument.
    JobRequest ghost = fleetJob(sub);
    ghost.backendName = "ghost";
    EXPECT_TRUE(service.submit(std::move(ghost)).ok());

    // Pinned to a healthy member: runs there, no failover.
    JobRequest pinned = fleetJob(sub);
    pinned.backendName = "b1";
    EXPECT_TRUE(service.submit(std::move(pinned)).ok());

    std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].status.code(), ErrorCode::InvalidArgument);
    EXPECT_TRUE(outcomes[1].status.ok());
    EXPECT_EQ(outcomes[1].backend, "b1");
    ASSERT_EQ(outcomes[1].path.size(), 1u);

    // Quarantine b0, then pin to it: the fast-fail Status names the
    // backend and its breaker state (satellite contract).
    wedgeUntilQuarantined(*pool, sub, "b0");
    JobRequest toQuarantined = fleetJob(sub);
    toQuarantined.backendName = "b0";
    EXPECT_TRUE(service.submit(std::move(toQuarantined)).ok());
    outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status.code(), ErrorCode::Unavailable);
    EXPECT_TRUE(outcomes[0].breakerFastFail);
    EXPECT_FALSE(outcomes[0].executed);
    EXPECT_NE(outcomes[0].status.message().find("backend 'b0'"),
              std::string::npos)
        << outcomes[0].status.message();
    EXPECT_NE(outcomes[0].status.message().find("circuit breaker"),
              std::string::npos)
        << outcomes[0].status.message();
}

TEST(FleetService, TenantQuotaCapsAdmissionPerTenant)
{
    const Substrate sub;
    auto pool = makePool(sub, 2, poolPolicies());
    ServicePolicy policy = fleetServicePolicy(8);
    policy.fleet.tenants["alice"].maxQueued = 2;
    ExecutionService service(pool, policy);

    EXPECT_TRUE(service.submit(fleetJob(sub, "alice")).ok());
    EXPECT_TRUE(service.submit(fleetJob(sub, "alice")).ok());
    const Status refused = service.submit(fleetJob(sub, "alice"));
    EXPECT_EQ(refused.code(), ErrorCode::ResourceExhausted);
    EXPECT_NE(refused.message().find("tenant 'alice'"),
              std::string::npos)
        << refused.message();
    EXPECT_EQ(service.stats().tenantRejected, 1);

    // The quota is per tenant: bob is still admissible, and the queue
    // still has headroom the quota preserved for him.
    EXPECT_TRUE(service.submit(fleetJob(sub, "bob")).ok());
    EXPECT_EQ(service.queueDepth(), 3u);

    // Draining clears alice's hold: she is admissible again.
    (void)service.drain();
    EXPECT_TRUE(service.submit(fleetJob(sub, "alice")).ok());
}

TEST(FleetService, WeightedFairDequeueInterleavesTenants)
{
    const Substrate sub;
    auto pool = makePool(sub, 1, poolPolicies());
    ServicePolicy policy = fleetServicePolicy(16);
    policy.fleet.tenants["alice"].weight = 2.0;
    policy.fleet.tenants["bob"].weight = 1.0;
    ExecutionService service(pool, policy);

    // alice submits all six of her jobs before bob's six arrive —
    // FIFO would run her burst first, weighted-fair must not.
    for (int i = 0; i < 6; ++i)
        EXPECT_TRUE(service.submit(fleetJob(sub, "alice")).ok());
    for (int i = 0; i < 6; ++i)
        EXPECT_TRUE(service.submit(fleetJob(sub, "bob")).ok());

    std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 12u);
    std::vector<std::string> order(12);
    for (const JobOutcome &out : outcomes) {
        ASSERT_GE(out.drainSeq, 0);
        ASSERT_LT(out.drainSeq, 12);
        order[static_cast<std::size_t>(out.drainSeq)] = out.tenant;
    }
    // Virtual finish times: alice at 0.5, 1.0, 1.5...; bob at 1, 2,
    // 3... Ties go to the lexicographically first lane.
    const std::vector<std::string> expected{
        "alice", "alice", "bob", "alice", "alice", "bob",
        "alice", "alice", "bob", "bob",   "bob",   "bob"};
    EXPECT_EQ(order, expected);
}

TEST(FleetService, QuotaKeepsQueueOpenWhileOtherTenantsWait)
{
    const Substrate sub;
    auto pool = makePool(sub, 2, poolPolicies());
    ServicePolicy policy = fleetServicePolicy(8);
    policy.fleet.defaultQuota.maxQueued = 4;
    ExecutionService service(pool, policy);

    // A greedy tenant bursts past its quota: only 4 land.
    int admitted = 0;
    for (int i = 0; i < 8; ++i)
        if (service.submit(fleetJob(sub, "greedy")).ok())
            ++admitted;
    EXPECT_EQ(admitted, 4);
    EXPECT_EQ(service.stats().tenantRejected, 4);

    // Every other tenant finds the headroom the quota protected.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(service.submit(fleetJob(sub, "patient")).ok());
    EXPECT_EQ(service.queueDepth(), 8u);

    // And no tenant ever exceeds its cap while others queue.
    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 8u);
    for (const JobOutcome &out : outcomes)
        EXPECT_TRUE(out.status.ok()) << out.status.toString();
}

TEST(FleetService, QuarantineAndProbeRecoveryDuringDrain)
{
    const Substrate sub;
    auto pool = makePool(sub, 2, poolPolicies());
    // b0 wedged: scheduled traffic trips its breaker mid-drain, the
    // pool quarantines it, and — once the wedge clears — the per-job
    // probe pump earns it back in, all within service draining.
    pool->setFaultInjector(
        "b0", std::make_shared<FaultInjector>(wedgedPlan()));
    ServicePolicy policy = fleetServicePolicy(32);
    policy.fleet.failoverEnabled = false;
    ExecutionService service(pool, policy);

    // Pin jobs at b0 so routing cannot dodge the wedged member.
    for (int i = 0; i < 4; ++i) {
        JobRequest job = fleetJob(sub);
        job.backendName = "b0";
        EXPECT_TRUE(service.submit(std::move(job)).ok());
    }
    (void)service.drain();
    EXPECT_EQ(pool->adminState("b0"), BackendAdminState::Quarantined);
    EXPECT_EQ(pool->stats().quarantines, 1);

    // The device is repaired; free-routed traffic pumps the probe
    // loop as a side effect of draining, and b0 earns its way back.
    pool->setFaultInjector("b0", nullptr);
    for (int i = 0; i < 6; ++i)
        EXPECT_TRUE(service.submit(fleetJob(sub)).ok());
    const std::vector<JobOutcome> outcomes = service.drain();
    for (const JobOutcome &out : outcomes)
        EXPECT_TRUE(out.status.ok()) << out.status.toString();
    EXPECT_EQ(pool->adminState("b0"), BackendAdminState::Active);
    EXPECT_EQ(pool->stats().readmissions, 1);
    EXPECT_GE(pool->stats().probes, 2);
}

TEST(FleetService, VirtualTimeFleetRunsBitIdenticalAcrossThreads)
{
    EnvGuard guard("QPULSE_VIRTUAL_TIME", "1");
    const Substrate sub;
    const auto duration = static_cast<std::uint64_t>(
        sub.x180Schedule().duration());

    struct RunRecord
    {
        std::vector<std::uint64_t> ids;
        std::vector<ErrorCode> codes;
        std::vector<long> drainSeqs;
        std::vector<std::string> backends;
        long failovers = 0;
        long quarantines = 0;
        long probes = 0;
        long poolJobs = 0;
    };
    const auto run = [&](std::size_t max_threads) {
        auto pool = makePool(sub, 3, poolPolicies());
        FaultPlan flaky;
        flaky.transientRate = 0.7;
        pool->setFaultInjector(
            "b1", std::make_shared<FaultInjector>(
                      flaky.deriveForBackend(1)));
        pool->setFaultInjector(
            "b2", std::make_shared<FaultInjector>(wedgedPlan()));

        ServicePolicy policy = fleetServicePolicy(64);
        policy.maxThreads = max_threads;
        policy.fleet.tenants["t0"].weight = 3.0;
        ExecutionService service(pool, policy);
        for (int i = 0; i < 24; ++i) {
            JobRequest job = fleetJob(
                sub, "t" + std::to_string(i % 4), i % 3, 32);
            job.seed = 0xFEED + static_cast<std::uint64_t>(i);
            job.deadline =
                Deadline::afterMsOrBudget(50.0, duration * 80);
            if (i % 8 == 5)
                job.backendName = "b2"; // Pin some at the wedge.
            (void)service.submit(std::move(job));
        }
        RunRecord record;
        for (const JobOutcome &out : service.drain()) {
            record.ids.push_back(out.id);
            record.codes.push_back(out.status.code());
            record.drainSeqs.push_back(out.drainSeq);
            record.backends.push_back(out.backend);
        }
        record.failovers = service.stats().failovers;
        record.quarantines = pool->stats().quarantines;
        record.probes = pool->stats().probes;
        record.poolJobs = pool->stats().jobs;
        return record;
    };

    const RunRecord seq = run(1);
    const RunRecord par = run(8);
    EXPECT_EQ(seq.ids, par.ids);
    EXPECT_EQ(seq.codes, par.codes);
    EXPECT_EQ(seq.drainSeqs, par.drainSeqs);
    EXPECT_EQ(seq.backends, par.backends);
    EXPECT_EQ(seq.failovers, par.failovers);
    EXPECT_EQ(seq.quarantines, par.quarantines);
    EXPECT_EQ(seq.probes, par.probes);
    EXPECT_EQ(seq.poolJobs, par.poolJobs);

    // The scenario exercised the interesting machinery.
    EXPECT_GT(seq.quarantines, 0);
    EXPECT_GT(seq.failovers, 0);
}

TEST(FleetService, LegacyAccessorsFatalInFleetMode)
{
    const Substrate sub;
    auto pool = makePool(sub, 1, poolPolicies());
    ExecutionService service(pool, fleetServicePolicy());
    EXPECT_TRUE(service.fleetMode());
    EXPECT_THROW(service.executor(), FatalError);
    EXPECT_THROW(service.setFaultInjector(nullptr), FatalError);

    ExecutionService legacy(sub.backend, sub.sim,
                            fleetServicePolicy());
    EXPECT_FALSE(legacy.fleetMode());
    EXPECT_THROW(legacy.pool(), FatalError);
}

} // namespace
} // namespace qpulse
