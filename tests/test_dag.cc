/**
 * @file
 * Tests for the circuit DAG: wire linkage, node removal/replacement,
 * adjacent swaps and topological linearisation round-trips.
 */
#include <gtest/gtest.h>

#include "circuit/dag.h"
#include "common/rng.h"
#include "linalg/gates.h"

namespace qpulse {
namespace {

QuantumCircuit
sampleCircuit()
{
    QuantumCircuit circuit(3);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.rz(0.5, 1);
    circuit.cx(0, 1);
    circuit.x(2);
    circuit.cx(1, 2);
    return circuit;
}

TEST(Dag, RoundTripPreservesUnitary)
{
    const QuantumCircuit circuit = sampleCircuit();
    const CircuitDag dag(circuit);
    const QuantumCircuit rebuilt = dag.toCircuit();
    EXPECT_GT(unitaryOverlap(circuit.unitary(), rebuilt.unitary()),
              1 - 1e-10);
    EXPECT_EQ(rebuilt.size(), circuit.size());
}

TEST(Dag, WireFrontAndNext)
{
    const QuantumCircuit circuit = sampleCircuit();
    const CircuitDag dag(circuit);
    // Wire 0: h(0) -> cx(0,1) -> cx(0,1).
    const std::size_t front = dag.wireFront(0);
    EXPECT_EQ(dag.node(front).gate.type, GateType::H);
    const std::size_t second = dag.nextOnWire(front, 0);
    EXPECT_EQ(dag.node(second).gate.type, GateType::Cnot);
    EXPECT_EQ(dag.prevOnWire(second, 0), front);
}

TEST(Dag, AliveCountTracksRemovals)
{
    CircuitDag dag(sampleCircuit());
    EXPECT_EQ(dag.aliveCount(), 6u);
    dag.removeNode(dag.wireFront(2)); // Remove x(2).
    EXPECT_EQ(dag.aliveCount(), 5u);
}

TEST(Dag, RemoveStitchesNeighbours)
{
    CircuitDag dag(sampleCircuit());
    // Remove rz(0.5) on wire 1; the two CNOTs become adjacent.
    const std::size_t first_cx = dag.nextOnWire(dag.wireFront(0), 0);
    const std::size_t rz = dag.nextOnWire(first_cx, 1);
    EXPECT_EQ(dag.node(rz).gate.type, GateType::Rz);
    dag.removeNode(rz);
    const std::size_t after = dag.nextOnWire(first_cx, 1);
    EXPECT_EQ(dag.node(after).gate.type, GateType::Cnot);
}

TEST(Dag, RemoveFrontUpdatesWireFront)
{
    CircuitDag dag(sampleCircuit());
    const std::size_t front = dag.wireFront(0);
    dag.removeNode(front);
    EXPECT_EQ(dag.node(dag.wireFront(0)).gate.type, GateType::Cnot);
}

TEST(Dag, ReplaceNodePreservesPosition)
{
    CircuitDag dag(sampleCircuit());
    // Replace h(0) by rz-x90-rz-x90-rz and check unitary equivalence.
    const std::size_t front = dag.wireFront(0);
    const auto inserted = dag.replaceNode(
        front, {makeGate(GateType::Rz, {0}, {kPi}),
                makeGate(GateType::X90, {0}),
                makeGate(GateType::Rz, {0}, {kPi / 2 + kPi}),
                makeGate(GateType::X90, {0}),
                makeGate(GateType::Rz, {0}, {kPi})});
    EXPECT_EQ(inserted.size(), 5u);
    const QuantumCircuit rebuilt = dag.toCircuit();
    EXPECT_GT(unitaryOverlap(sampleCircuit().unitary(),
                             rebuilt.unitary()),
              1 - 1e-9);
}

TEST(Dag, ReplaceTwoQubitNodeBySequence)
{
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.h(1);
    CircuitDag dag(circuit);
    const std::size_t cx = dag.nextOnWire(dag.wireFront(0), 0);
    ASSERT_EQ(dag.node(cx).gate.type, GateType::Cnot);
    // CX = H_t CZ H_t.
    dag.replaceNode(cx, {makeGate(GateType::H, {1}),
                         makeGate(GateType::Cz, {0, 1}),
                         makeGate(GateType::H, {1})});
    EXPECT_GT(unitaryOverlap(circuit.unitary(), dag.toCircuit().unitary()),
              1 - 1e-10);
}

TEST(Dag, ReplaceWithEmptyRemovesViaRemoveNode)
{
    QuantumCircuit circuit(1);
    circuit.x(0);
    circuit.x(0);
    CircuitDag dag(circuit);
    dag.removeNode(dag.wireFront(0));
    dag.removeNode(dag.wireFront(0));
    EXPECT_EQ(dag.aliveCount(), 0u);
    EXPECT_EQ(dag.toCircuit().size(), 0u);
}

TEST(Dag, SwapAdjacentCommutingGates)
{
    QuantumCircuit circuit(2);
    circuit.rz(0.3, 0);
    circuit.x(1);
    circuit.cx(0, 1);
    CircuitDag dag(circuit);
    // Swap rz(0.3) with cx on wire 0 (they commute: rz on control).
    const std::size_t rz = dag.wireFront(0);
    dag.swapAdjacent(rz, 0);
    const QuantumCircuit rebuilt = dag.toCircuit();
    // Order changed...
    EXPECT_EQ(rebuilt.gates().back().type, GateType::Rz);
    // ...and since Rz commutes with the CNOT control the unitary is
    // unchanged.
    EXPECT_GT(unitaryOverlap(circuit.unitary(), rebuilt.unitary()),
              1 - 1e-10);
}

TEST(Dag, BarrierSpansAllWires)
{
    QuantumCircuit circuit(3);
    circuit.x(0);
    circuit.barrier();
    circuit.x(2);
    CircuitDag dag(circuit);
    // The barrier should be the successor of x(0) on wire 0 and the
    // predecessor of x(2) on wire 2.
    const std::size_t x0 = dag.wireFront(0);
    const std::size_t barrier = dag.nextOnWire(x0, 0);
    EXPECT_EQ(dag.node(barrier).gate.type, GateType::Barrier);
    const std::size_t x2 = dag.nextOnWire(barrier, 2);
    EXPECT_EQ(dag.node(x2).gate.type, GateType::X);
    // Round trip emits the barrier with cleared wires.
    const QuantumCircuit rebuilt = dag.toCircuit();
    EXPECT_EQ(rebuilt.gates()[1].type, GateType::Barrier);
    EXPECT_TRUE(rebuilt.gates()[1].qubits.empty());
}

TEST(Dag, RandomCircuitRoundTripProperty)
{
    Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        QuantumCircuit circuit(4);
        for (int g = 0; g < 25; ++g) {
            const int kind = static_cast<int>(rng.uniformInt(4));
            const std::size_t a = rng.uniformInt(4);
            std::size_t b = rng.uniformInt(4);
            while (b == a)
                b = rng.uniformInt(4);
            switch (kind) {
              case 0: circuit.h(a); break;
              case 1: circuit.rz(rng.uniform(-3, 3), a); break;
              case 2: circuit.cx(a, b); break;
              default: circuit.rzz(rng.uniform(-3, 3), a, b); break;
            }
        }
        const CircuitDag dag(circuit);
        EXPECT_GT(unitaryOverlap(circuit.unitary(),
                                 dag.toCircuit().unitary()),
                  1 - 1e-9);
    }
}

} // namespace
} // namespace qpulse
