/**
 * @file
 * Tests for the transpiler passes of Section 3.3. Every rewrite is
 * checked for exact unitary preservation (up to global phase), and
 * the headline behaviours are asserted: ZZ template matching through
 * false dependencies (Figure 3), cross-gate cancellation on the
 * open-CNOT (Section 5.2), Equation 2 vs Equation 3 lowering, and
 * basis-set conformance of both pipelines.
 */
#include <gtest/gtest.h>

#include <set>

#include "common/constants.h"
#include "common/rng.h"
#include "linalg/gates.h"
#include "transpile/passes.h"

namespace qpulse {
namespace {

TranspilerTarget
lineTarget(std::size_t n, bool augmented)
{
    TranspilerTarget target;
    for (std::size_t q = 0; q + 1 < n; ++q)
        target.edges.emplace_back(q, q + 1);
    target.augmented = augmented;
    return target;
}

/** Unitary equality up to global phase. */
void
expectEquivalent(const QuantumCircuit &a, const QuantumCircuit &b,
                 double tol = 1e-9)
{
    EXPECT_GT(unitaryOverlap(a.unitary(), b.unitary()), 1 - tol)
        << "---- a ----\n"
        << a.toString() << "---- b ----\n"
        << b.toString();
}

std::set<GateType>
gateTypesOf(const QuantumCircuit &circuit)
{
    std::set<GateType> types;
    for (const auto &gate : circuit.gates())
        types.insert(gate.type);
    return types;
}

TEST(CancelInverses, RemovesAdjacentPairs)
{
    QuantumCircuit circuit(2);
    circuit.x(0);
    circuit.x(0);
    circuit.cx(0, 1);
    circuit.cx(0, 1);
    circuit.h(1);
    CircuitDag dag(circuit);
    CancelAdjacentInversesPass pass;
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out.gates()[0].type, GateType::H);
}

TEST(CancelInverses, CancelsParametrizedInverses)
{
    QuantumCircuit circuit(1);
    circuit.rz(0.8, 0);
    circuit.rz(-0.8, 0);
    circuit.t(0);
    circuit.tdg(0);
    CircuitDag dag(circuit);
    CancelAdjacentInversesPass pass;
    pass.run(dag);
    EXPECT_EQ(dag.toCircuit().size(), 0u);
}

TEST(CancelInverses, CascadesThroughFreshAdjacency)
{
    // x h h x: inner pair cancels, making the outer pair adjacent.
    QuantumCircuit circuit(1);
    circuit.x(0);
    circuit.h(0);
    circuit.h(0);
    circuit.x(0);
    CircuitDag dag(circuit);
    CancelAdjacentInversesPass pass;
    pass.run(dag);
    EXPECT_EQ(dag.toCircuit().size(), 0u);
}

TEST(CancelInverses, DoesNotCancelAcrossBlockingGate)
{
    QuantumCircuit circuit(2);
    circuit.x(0);
    circuit.cx(0, 1); // Blocks.
    circuit.x(0);
    CircuitDag dag(circuit);
    CancelAdjacentInversesPass pass;
    EXPECT_FALSE(pass.run(dag));
    EXPECT_EQ(dag.toCircuit().size(), 3u);
}

TEST(CancelInverses, TwoQubitNeedsAdjacencyOnBothWires)
{
    QuantumCircuit circuit(3);
    circuit.cx(0, 1);
    circuit.h(1); // Breaks wire-1 adjacency.
    circuit.cx(0, 1);
    CircuitDag dag(circuit);
    CancelAdjacentInversesPass pass;
    EXPECT_FALSE(pass.run(dag));
}

TEST(ZzTemplate, MatchesPlainSandwich)
{
    QuantumCircuit circuit(2);
    circuit.cx(0, 1);
    circuit.rz(0.7, 1);
    circuit.cx(0, 1);
    CircuitDag dag(circuit);
    ZzTemplateMatchPass pass;
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.gates()[0].type, GateType::Rzz);
    EXPECT_NEAR(out.gates()[0].params[0], 0.7, 1e-12);
    expectEquivalent(out, circuit);
}

TEST(ZzTemplate, AbsorbsMultipleDiagonals)
{
    // T and S and Rz between the CNOTs all fold into one angle.
    QuantumCircuit circuit(2);
    circuit.cx(0, 1);
    circuit.t(1);
    circuit.rz(0.3, 1);
    circuit.s(1);
    circuit.cx(0, 1);
    CircuitDag dag(circuit);
    ZzTemplateMatchPass pass;
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out.gates()[0].params[0],
                kPi / 4 + 0.3 + kPi / 2, 1e-12);
    expectEquivalent(out, circuit);
}

TEST(ZzTemplate, CommutativityDetectionOnControlWire)
{
    // Figure 3: a diagonal gate on the control wire between the CNOTs
    // is a false dependency; the match must still fire.
    QuantumCircuit circuit(2);
    circuit.cx(0, 1);
    circuit.rz(0.9, 0); // On the control wire, commutes.
    circuit.rz(0.4, 1);
    circuit.cx(0, 1);
    CircuitDag dag(circuit);
    ZzTemplateMatchPass pass;
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    // Rzz plus the floated Rz on the control.
    EXPECT_EQ(out.size(), 2u);
    expectEquivalent(out, circuit);
}

TEST(ZzTemplate, BlockedByNonDiagonalOnTarget)
{
    QuantumCircuit circuit(2);
    circuit.cx(0, 1);
    circuit.h(1);
    circuit.cx(0, 1);
    CircuitDag dag(circuit);
    ZzTemplateMatchPass pass;
    EXPECT_FALSE(pass.run(dag));
}

TEST(ZzTemplate, BlockedByNonDiagonalOnControl)
{
    QuantumCircuit circuit(2);
    circuit.cx(0, 1);
    circuit.rz(0.4, 1);
    circuit.x(0); // Does NOT commute with the control.
    circuit.cx(0, 1);
    CircuitDag dag(circuit);
    ZzTemplateMatchPass pass;
    EXPECT_FALSE(pass.run(dag));
    expectEquivalent(dag.toCircuit(), circuit);
}

TEST(ZzTemplate, RepeatedMatchesInChain)
{
    // Two ZZ sandwiches back to back (a Trotter chain).
    QuantumCircuit circuit(3);
    circuit.cx(0, 1);
    circuit.rz(0.5, 1);
    circuit.cx(0, 1);
    circuit.cx(1, 2);
    circuit.rz(0.6, 2);
    circuit.cx(1, 2);
    CircuitDag dag(circuit);
    ZzTemplateMatchPass pass;
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    EXPECT_EQ(out.countType(GateType::Rzz), 2u);
    EXPECT_EQ(out.countType(GateType::Cnot), 0u);
    expectEquivalent(out, circuit);
}

TEST(Decompose2q, StandardRzzBecomesTextbook)
{
    QuantumCircuit circuit(2);
    circuit.rzz(0.8, 0, 1);
    CircuitDag dag(circuit);
    DecomposeTwoQubitPass pass(lineTarget(2, false));
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    EXPECT_EQ(out.countType(GateType::Cnot), 2u);
    EXPECT_EQ(out.countType(GateType::Rz), 1u);
    expectEquivalent(out, circuit);
}

TEST(Decompose2q, AugmentedRzzBecomesHCrH)
{
    QuantumCircuit circuit(2);
    circuit.rzz(0.8, 0, 1);
    CircuitDag dag(circuit);
    DecomposeTwoQubitPass pass(lineTarget(2, true));
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    EXPECT_EQ(out.countType(GateType::Cr), 1u);
    EXPECT_EQ(out.countType(GateType::H), 2u);
    expectEquivalent(out, circuit);
}

TEST(Decompose2q, AugmentedRzzUsesReversedEdge)
{
    // Only edge (1, 0) is calibrated: the H's must land on qubit 0
    // and the CR must run 1 -> 0.
    TranspilerTarget target;
    target.edges.emplace_back(1, 0);
    target.augmented = true;
    QuantumCircuit circuit(2);
    circuit.rzz(0.8, 0, 1);
    CircuitDag dag(circuit);
    DecomposeTwoQubitPass pass(target);
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    bool found_cr = false;
    for (const auto &gate : out.gates())
        if (gate.type == GateType::Cr) {
            found_cr = true;
            EXPECT_EQ(gate.qubits[0], 1u);
            EXPECT_EQ(gate.qubits[1], 0u);
        }
    EXPECT_TRUE(found_cr);
    expectEquivalent(out, circuit);
}

TEST(Decompose2q, AugmentedCnotBecomesEchoAtoms)
{
    QuantumCircuit circuit(2);
    circuit.cx(0, 1);
    CircuitDag dag(circuit);
    DecomposeTwoQubitPass pass(lineTarget(2, true));
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    EXPECT_EQ(out.countType(GateType::CrHalf), 2u);
    EXPECT_EQ(out.countType(GateType::DirectX), 2u);
    expectEquivalent(out, circuit);
}

TEST(Decompose2q, DirectionFixViaHadamards)
{
    // Only (0, 1) calibrated; CX(1, 0) needs H conjugation.
    QuantumCircuit circuit(2);
    circuit.cx(1, 0);
    CircuitDag dag(circuit);
    DecomposeTwoQubitPass pass(lineTarget(2, false));
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    for (const auto &gate : out.gates())
        if (gate.type == GateType::Cnot) {
            EXPECT_EQ(gate.qubits[0], 0u);
            EXPECT_EQ(gate.qubits[1], 1u);
        }
    expectEquivalent(out, circuit);
}

TEST(Decompose2q, SwapAndCzAndOpenCnot)
{
    QuantumCircuit circuit(2);
    circuit.swap(0, 1);
    circuit.cz(0, 1);
    circuit.openCx(0, 1);
    CircuitDag dag(circuit);
    DecomposeTwoQubitPass pass(lineTarget(2, false));
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    EXPECT_EQ(out.countType(GateType::Swap), 0u);
    EXPECT_EQ(out.countType(GateType::Cz), 0u);
    EXPECT_EQ(out.countType(GateType::OpenCnot), 0u);
    expectEquivalent(out, circuit);
}

TEST(Collapse1q, FusesRunIntoEquation2)
{
    QuantumCircuit circuit(1);
    circuit.h(0);
    circuit.t(0);
    circuit.h(0);
    CircuitDag dag(circuit);
    Collapse1qRunsPass pass(false);
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    // Equation 2 shape: at most rz x90 rz x90 rz.
    EXPECT_EQ(out.countType(GateType::X90), 2u);
    EXPECT_LE(out.size(), 5u);
    expectEquivalent(out, circuit);
}

TEST(Collapse1q, FusesRunIntoEquation3)
{
    QuantumCircuit circuit(1);
    circuit.h(0);
    circuit.t(0);
    circuit.h(0);
    CircuitDag dag(circuit);
    Collapse1qRunsPass pass(true);
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    EXPECT_EQ(out.countType(GateType::DirectRx), 1u);
    EXPECT_LE(out.size(), 3u);
    expectEquivalent(out, circuit);
}

TEST(Collapse1q, IdentityRunVanishes)
{
    QuantumCircuit circuit(1);
    circuit.h(0);
    circuit.h(0);
    CircuitDag dag(circuit);
    Collapse1qRunsPass pass(true);
    EXPECT_TRUE(pass.run(dag));
    EXPECT_EQ(dag.toCircuit().size(), 0u);
}

TEST(Collapse1q, PureRzRunStaysVirtual)
{
    QuantumCircuit circuit(1);
    circuit.rz(0.2, 0);
    circuit.t(0);
    circuit.rz(0.1, 0);
    CircuitDag dag(circuit);
    Collapse1qRunsPass pass(true);
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.gates()[0].type, GateType::Rz);
    expectEquivalent(out, circuit);
}

TEST(Collapse1q, RunsBreakAtTwoQubitGates)
{
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.h(0);
    CircuitDag dag(circuit);
    Collapse1qRunsPass pass(true);
    pass.run(dag);
    const QuantumCircuit out = dag.toCircuit();
    EXPECT_EQ(out.countType(GateType::Cnot), 1u);
    expectEquivalent(out, circuit);
}

TEST(Pipelines, StandardBasisConformance)
{
    Rng rng(31);
    QuantumCircuit circuit(3);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.rzz(0.4, 1, 2);
    circuit.ry(0.9, 2);
    circuit.openCx(0, 1);
    circuit.t(1);
    const PassManager manager = standardPassManager(lineTarget(3, false));
    const QuantumCircuit out = manager.run(circuit);
    const std::set<GateType> allowed = {GateType::Rz, GateType::X90,
                                        GateType::Cnot, GateType::Measure,
                                        GateType::Barrier};
    for (GateType type : gateTypesOf(out))
        EXPECT_TRUE(allowed.count(type)) << gateName(type);
    expectEquivalent(out, circuit);
}

TEST(Pipelines, OptimizedBasisConformance)
{
    QuantumCircuit circuit(3);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.rzz(0.4, 1, 2);
    circuit.ry(0.9, 2);
    circuit.openCx(0, 1);
    circuit.t(1);
    const PassManager manager =
        optimizedPassManager(lineTarget(3, true));
    const QuantumCircuit out = manager.run(circuit);
    const std::set<GateType> allowed = {
        GateType::Rz, GateType::DirectRx, GateType::DirectX,
        GateType::Cr, GateType::CrHalf, GateType::Measure,
        GateType::Barrier};
    for (GateType type : gateTypesOf(out))
        EXPECT_TRUE(allowed.count(type)) << gateName(type);
    expectEquivalent(out, circuit);
}

TEST(Pipelines, OptimizedFindsZzThroughTrotterChain)
{
    // A 2-qubit Trotter step written with textbook CX.Rz.CX must come
    // out as CR gates, not CNOT echoes.
    QuantumCircuit circuit(2);
    for (int step = 0; step < 3; ++step) {
        circuit.cx(0, 1);
        circuit.rz(0.25, 1);
        circuit.cx(0, 1);
    }
    const PassManager manager =
        optimizedPassManager(lineTarget(2, true));
    const QuantumCircuit out = manager.run(circuit);
    EXPECT_EQ(out.countType(GateType::CrHalf), 0u);
    EXPECT_GE(out.countType(GateType::Cr), 1u);
    expectEquivalent(out, circuit);
}

TEST(Pipelines, OpenCnotCancellation)
{
    // Section 5.2: the optimized flow saves pulses on the open-CNOT.
    QuantumCircuit circuit(2);
    circuit.openCx(0, 1);

    const QuantumCircuit standard =
        standardPassManager(lineTarget(2, false)).run(circuit);
    const QuantumCircuit optimized =
        optimizedPassManager(lineTarget(2, true)).run(circuit);
    expectEquivalent(standard, circuit);
    expectEquivalent(optimized, circuit);

    // Standard keeps the two X wrappers (as U3 pulse pairs): 4 X90s.
    EXPECT_EQ(standard.countType(GateType::X90), 4u);
    // Optimized cancels the leading X against the echo's internal X:
    // at most 3 full-amplitude 1q pulses survive around the echo.
    std::size_t optimized_1q_pulses =
        optimized.countType(GateType::DirectX) +
        optimized.countType(GateType::DirectRx);
    EXPECT_LE(optimized_1q_pulses, 4u);
    EXPECT_EQ(optimized.countType(GateType::CrHalf), 2u);
}

TEST(Pipelines, RandomCircuitsPreserveUnitary)
{
    Rng rng(37);
    for (int trial = 0; trial < 10; ++trial) {
        QuantumCircuit circuit(3);
        for (int g = 0; g < 20; ++g) {
            const std::size_t a = rng.uniformInt(3);
            std::size_t b = rng.uniformInt(3);
            while (b == a)
                b = rng.uniformInt(3);
            switch (rng.uniformInt(6)) {
              case 0: circuit.h(a); break;
              case 1: circuit.u3(rng.uniform(0, 3), rng.uniform(-3, 3),
                                 rng.uniform(-3, 3), a); break;
              case 2: circuit.rz(rng.uniform(-3, 3), a); break;
              case 3:
                if (a + 1 < 3)
                    circuit.cx(a, a + 1);
                else
                    circuit.cx(a - 1, a);
                break;
              case 4:
                if (a + 1 < 3)
                    circuit.rzz(rng.uniform(-3, 3), a, a + 1);
                else
                    circuit.rzz(rng.uniform(-3, 3), a - 1, a);
                break;
              default: circuit.t(a); break;
            }
        }
        const QuantumCircuit standard =
            standardPassManager(lineTarget(3, false)).run(circuit);
        const QuantumCircuit optimized =
            optimizedPassManager(lineTarget(3, true)).run(circuit);
        expectEquivalent(standard, circuit, 1e-7);
        expectEquivalent(optimized, circuit, 1e-7);
    }
}

TEST(Merge2q, AdjacentRzzFuse)
{
    QuantumCircuit circuit(2);
    circuit.rzz(0.4, 0, 1);
    circuit.rzz(0.5, 0, 1);
    CircuitDag dag(circuit);
    MergeTwoQubitRotationsPass pass;
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out.gates()[0].params[0], 0.9, 1e-12);
    expectEquivalent(out, circuit);
}

TEST(Merge2q, CancellingAnglesVanish)
{
    QuantumCircuit circuit(2);
    circuit.append(makeGate(GateType::Cr, {0, 1}, {0.6}));
    circuit.append(makeGate(GateType::Cr, {0, 1}, {-0.6}));
    CircuitDag dag(circuit);
    MergeTwoQubitRotationsPass pass;
    EXPECT_TRUE(pass.run(dag));
    EXPECT_EQ(dag.toCircuit().size(), 0u);
}

TEST(Merge2q, ChainsCascade)
{
    QuantumCircuit circuit(2);
    for (int k = 0; k < 4; ++k)
        circuit.rzz(0.25, 0, 1);
    CircuitDag dag(circuit);
    MergeTwoQubitRotationsPass pass;
    pass.run(dag);
    const QuantumCircuit out = dag.toCircuit();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out.gates()[0].params[0], 1.0, 1e-12);
}

TEST(Merge2q, BlockedByInterveningGate)
{
    QuantumCircuit circuit(2);
    circuit.rzz(0.4, 0, 1);
    circuit.h(1);
    circuit.rzz(0.5, 0, 1);
    CircuitDag dag(circuit);
    MergeTwoQubitRotationsPass pass;
    EXPECT_FALSE(pass.run(dag));
}

TEST(Merge2q, DifferentPairsUntouched)
{
    QuantumCircuit circuit(3);
    circuit.rzz(0.4, 0, 1);
    circuit.rzz(0.5, 1, 2);
    CircuitDag dag(circuit);
    MergeTwoQubitRotationsPass pass;
    EXPECT_FALSE(pass.run(dag));
    EXPECT_EQ(dag.toCircuit().size(), 2u);
}

TEST(Relocate, FloatsRzThroughControlToMerge)
{
    // rz . cx . rz on the control wire: the first rz floats through
    // the CNOT control to meet the second.
    QuantumCircuit circuit(2);
    circuit.rz(0.3, 0);
    circuit.cx(0, 1);
    circuit.rz(0.4, 0);
    CircuitDag dag(circuit);
    CommutationRelocationPass pass;
    EXPECT_TRUE(pass.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    expectEquivalent(out, circuit);
    // The two Rz's are now adjacent: the 1q collapser can fuse them.
    Collapse1qRunsPass collapse(true);
    CircuitDag dag2(out);
    collapse.run(dag2);
    const QuantumCircuit fused = dag2.toCircuit();
    EXPECT_EQ(fused.countType(GateType::Rz), 1u);
    expectEquivalent(fused, circuit);
}

TEST(Relocate, FloatsXThroughTargetToCancel)
{
    QuantumCircuit circuit(2);
    circuit.x(1);
    circuit.cx(0, 1);
    circuit.x(1);
    CircuitDag dag(circuit);
    CommutationRelocationPass relocate;
    EXPECT_TRUE(relocate.run(dag));
    CancelAdjacentInversesPass cancel;
    EXPECT_TRUE(cancel.run(dag));
    const QuantumCircuit out = dag.toCircuit();
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out.gates()[0].type, GateType::Cnot);
    expectEquivalent(out, circuit);
}

TEST(Relocate, DoesNotMoveThroughNonCommuting)
{
    QuantumCircuit circuit(2);
    circuit.rz(0.3, 1); // On the *target* wire: does not commute.
    circuit.cx(0, 1);
    circuit.rz(0.4, 1);
    CircuitDag dag(circuit);
    CommutationRelocationPass pass;
    EXPECT_FALSE(pass.run(dag));
}

TEST(Relocate, UnitaryPreservedOnRandomCircuits)
{
    Rng rng(53);
    for (int trial = 0; trial < 8; ++trial) {
        QuantumCircuit circuit(3);
        for (int g = 0; g < 15; ++g) {
            const std::size_t a = rng.uniformInt(3);
            switch (rng.uniformInt(4)) {
              case 0: circuit.rz(rng.uniform(-3, 3), a); break;
              case 1: circuit.x(a); break;
              case 2:
                circuit.cx(a, (a + 1) % 3);
                break;
              default:
                circuit.rzz(rng.uniform(-3, 3), a, (a + 1) % 3);
                break;
            }
        }
        CircuitDag dag(circuit);
        CommutationRelocationPass pass;
        pass.run(dag);
        expectEquivalent(dag.toCircuit(), circuit, 1e-8);
    }
}

TEST(Pipelines, TrotterChainsMergeAcrossSteps)
{
    // Two adjacent identical-pair ZZ rotations from consecutive
    // Trotter steps fuse into one stretched CR.
    QuantumCircuit circuit(2);
    for (int step = 0; step < 2; ++step) {
        circuit.cx(0, 1);
        circuit.rz(0.3, 1);
        circuit.cx(0, 1);
    }
    const QuantumCircuit out =
        optimizedPassManager(lineTarget(2, true)).run(circuit);
    EXPECT_EQ(out.countType(GateType::Cr), 1u);
    ASSERT_GE(out.size(), 1u);
    expectEquivalent(out, circuit);
}

TEST(Helpers, DiagonalAngleValues)
{
    EXPECT_TRUE(gateIsDiagonal(GateType::T));
    EXPECT_FALSE(gateIsDiagonal(GateType::H));
    EXPECT_NEAR(diagonalAngle(makeGate(GateType::S, {0})), kPi / 2,
                1e-12);
    EXPECT_NEAR(diagonalAngle(makeGate(GateType::Rz, {0}, {0.3})), 0.3,
                1e-12);
    EXPECT_THROW(diagonalAngle(makeGate(GateType::X, {0})), PanicError);
}

} // namespace
} // namespace qpulse
