/**
 * @file
 * Tests for the execution-service layer: cooperative cancellation
 * (CancelToken), wall-clock and virtual-time deadlines, partial shot
 * results surfacing through PulseBackend::runShots and the
 * ResilientExecutor, the cumulative-backoff cap, the new structured
 * validation codes (empty-schedule / zero-duration-play), the
 * per-backend circuit breaker state machine, and the ExecutionService
 * itself — admission control (reject vs shed), priority draining,
 * wedged-backend fast fail, and the virtual-time determinism contract
 * (bit-identical stats and outcomes across thread counts).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <thread>

#include "common/cancellation.h"
#include "common/env.h"
#include "common/status.h"
#include "compile/compiler.h"
#include "device/fault_injector.h"
#include "device/resilient_executor.h"
#include "device/schedule_validation.h"
#include "service/circuit_breaker.h"
#include "service/execution_service.h"

namespace qpulse {
namespace {

/** Calibrated single-qubit rig shared by the service tests. */
struct Rig
{
    Rig()
        : config(almadenLineConfig(1)),
          backend(makeCalibratedBackend(config)),
          calibrator(config), cal(calibrator.calibrateQubit(0)),
          sim(calibrator.qubitModel(0))
    {}

    Schedule
    x180Schedule() const
    {
        Schedule schedule("x180");
        schedule.play(driveChannel(0), cal.x180Pulse());
        return schedule;
    }

    /** Standard-flow stand-in: two sequential x90 pulses. */
    Schedule
    twoX90Schedule() const
    {
        Schedule schedule("x90x90");
        schedule.play(driveChannel(0), cal.x90Pulse());
        schedule.play(driveChannel(0), cal.x90Pulse());
        return schedule;
    }

    BackendConfig config;
    std::shared_ptr<const PulseBackend> backend;
    Calibrator calibrator;
    QubitCalibration cal;
    PulseSimulator sim;
};

PulseShotOptions
shotOptions(long shots = 256, std::size_t max_threads = 0)
{
    PulseShotOptions opts;
    opts.shots = shots;
    opts.seed = 0xB0B;
    opts.maxThreads = max_threads;
    return opts;
}

/** RAII guard restoring an env var on scope exit. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (old_.has_value())
            setenv(name_, old_->c_str(), 1);
        else
            unsetenv(name_);
    }
    const char *name_;
    std::optional<std::string> old_;
};

// ---------------------------------------------------------------------
// CancelToken / Deadline primitives.

TEST(Cancellation, InertTokenNeverFiresAndIsFreeToCheck)
{
    CancelToken token;
    EXPECT_FALSE(token.cancellable());
    EXPECT_FALSE(token.cancelled());
    token.cancel(); // No-op, must not crash.
    EXPECT_FALSE(token.cancelled());
    EXPECT_TRUE(token.reason().ok());
}

TEST(Cancellation, FirstCancelWinsAndCopiesShareState)
{
    CancelToken token = CancelToken::make();
    CancelToken copy = token;
    EXPECT_TRUE(token.cancellable());
    EXPECT_FALSE(token.cancelled());

    copy.cancel(Status::error(ErrorCode::Cancelled, "first"));
    token.cancel(Status::error(ErrorCode::Cancelled, "second"));
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason().message(), "first");
    EXPECT_EQ(copy.reason().message(), "first");
}

TEST(Cancellation, VirtualBudgetAdmitsTheCrossingChargeThenRefuses)
{
    const Deadline deadline = Deadline::virtualBudget(100);
    EXPECT_TRUE(deadline.isVirtual());
    EXPECT_FALSE(deadline.expired());
    EXPECT_EQ(deadline.remainingUnits(), 100u);

    EXPECT_TRUE(deadline.tryCharge(60));  // 60 spent.
    EXPECT_TRUE(deadline.tryCharge(60));  // Crossing unit: admitted.
    EXPECT_TRUE(deadline.expired());
    EXPECT_FALSE(deadline.tryCharge(1));  // After the boundary: refused.
    EXPECT_EQ(deadline.remainingUnits(), 0u);

    // Virtual budgets bound work, not latency.
    EXPECT_TRUE(std::isinf(deadline.remainingMs()));
}

TEST(Cancellation, UnlimitedAndWallClockDeadlines)
{
    const Deadline none = Deadline::none();
    EXPECT_TRUE(none.unlimited());
    EXPECT_FALSE(none.expired());
    EXPECT_TRUE(none.tryCharge(1u << 30));

    const Deadline past = Deadline::afterMs(0.0);
    EXPECT_FALSE(past.isVirtual());
    EXPECT_TRUE(past.expired());
    EXPECT_FALSE(past.tryCharge(1));
    EXPECT_EQ(past.remainingMs(), 0.0);

    const Deadline future = Deadline::afterMs(60'000.0);
    EXPECT_FALSE(future.expired());
    EXPECT_GT(future.remainingMs(), 1'000.0);
}

TEST(Cancellation, CheckPrefersCancellationOverExpiry)
{
    CancelToken token = CancelToken::make();
    const Deadline expired = Deadline::virtualBudget(0);
    EXPECT_EQ(expired.check(token).code(),
              ErrorCode::DeadlineExceeded);
    token.cancel();
    EXPECT_EQ(expired.check(token).code(), ErrorCode::Cancelled);
}

TEST(Cancellation, AfterMsOrBudgetFollowsTheEnvFlip)
{
    {
        EnvGuard guard("QPULSE_VIRTUAL_TIME", nullptr);
        EXPECT_FALSE(virtualTimeEnabled());
        EXPECT_FALSE(Deadline::afterMsOrBudget(50.0, 100).isVirtual());
    }
    {
        EnvGuard guard("QPULSE_VIRTUAL_TIME", "1");
        EXPECT_TRUE(virtualTimeEnabled());
        const Deadline deadline = Deadline::afterMsOrBudget(50.0, 100);
        EXPECT_TRUE(deadline.isVirtual());
        EXPECT_EQ(deadline.remainingUnits(), 100u);
    }
}

// ---------------------------------------------------------------------
// Validation satellites: distinct structured codes.

TEST(Validation, EmptyScheduleRejectedWithDistinctCode)
{
    const Rig rig;
    const Schedule empty("nothing");
    const Status status = validateSchedule(empty, rig.config);
    EXPECT_EQ(status.code(), ErrorCode::EmptySchedule);
    EXPECT_EQ(std::string(errorCodeName(status.code())),
              "empty-schedule");
}

TEST(Validation, ZeroDurationPlayRejectedWithDistinctCode)
{
    const Rig rig;
    Schedule schedule("empty_play");
    schedule.play(driveChannel(0), std::make_shared<ConstantWaveform>(
                                       0, Complex{0.1, 0.0}));
    const Status status = validateSchedule(schedule, rig.config);
    EXPECT_EQ(status.code(), ErrorCode::ZeroDurationPlay);
    EXPECT_EQ(std::string(errorCodeName(status.code())),
              "zero-duration-play");
}

// ---------------------------------------------------------------------
// Partial results through runShots.

TEST(PartialResults, FullRunIsNotPartial)
{
    const Rig rig;
    const PulseShotResult result =
        rig.backend->runShots(rig.sim, rig.x180Schedule(),
                              shotOptions(64));
    EXPECT_FALSE(result.partial);
    EXPECT_TRUE(result.interruption.ok());
    EXPECT_EQ(result.shotsRequested, 64);
    EXPECT_EQ(result.shotsCompleted, 64);
}

TEST(PartialResults, PreCancelledRunReturnsEmptyPartial)
{
    const Rig rig;
    PulseShotOptions opts = shotOptions(64);
    opts.token = CancelToken::make();
    opts.token.cancel();
    const PulseShotResult result =
        rig.backend->runShots(rig.sim, rig.x180Schedule(), opts);
    EXPECT_TRUE(result.partial);
    EXPECT_EQ(result.interruption.code(), ErrorCode::Cancelled);
    EXPECT_EQ(result.shotsCompleted, 0);
    long total = 0;
    for (long c : result.counts)
        total += c;
    EXPECT_EQ(total, 0);
}

TEST(PartialResults, VirtualBudgetYieldsDeterministicPartialCounts)
{
    const Rig rig;
    const Schedule schedule = rig.x180Schedule();
    const auto duration =
        static_cast<std::uint64_t>(schedule.duration());
    const long shots = 256;
    // Budget for roughly half the shots, in simulated samples.
    const std::uint64_t budget =
        duration * static_cast<std::uint64_t>(shots) / 2;

    const auto run = [&](std::size_t max_threads) {
        PulseShotOptions opts = shotOptions(shots, max_threads);
        opts.deadline = Deadline::virtualBudget(budget);
        return rig.backend->runShots(rig.sim, schedule, opts);
    };
    const PulseShotResult seq = run(1);
    const PulseShotResult par = run(8);

    EXPECT_TRUE(seq.partial);
    EXPECT_EQ(seq.interruption.code(), ErrorCode::DeadlineExceeded);
    EXPECT_GT(seq.shotsCompleted, 0);
    EXPECT_LT(seq.shotsCompleted, shots);

    // The determinism contract: admitted batches — and therefore the
    // partial counts — are a pure function of the workload.
    EXPECT_EQ(seq.shotsCompleted, par.shotsCompleted);
    EXPECT_EQ(seq.counts, par.counts);
    EXPECT_EQ(seq.partial, par.partial);
    EXPECT_EQ(seq.interruption.code(), par.interruption.code());

    long total = 0;
    for (long c : seq.counts)
        total += c;
    EXPECT_EQ(total, seq.shotsCompleted);
}

// ---------------------------------------------------------------------
// Executor integration: deadlines, cancellation, backoff caps.

TEST(ExecutorDeadlines, VirtualExpirySurfacesPartialResult)
{
    const Rig rig;
    ResilientExecutor executor(rig.backend);
    ResilientRequest request;
    request.schedule = rig.x180Schedule();

    PulseShotOptions opts = shotOptions(256);
    opts.deadline = Deadline::virtualBudget(
        static_cast<std::uint64_t>(request.schedule.duration()) * 128);
    const ResilientOutcome outcome =
        executor.run(rig.sim, request, opts);
    EXPECT_EQ(outcome.status.code(), ErrorCode::DeadlineExceeded);
    EXPECT_TRUE(outcome.result.partial);
    EXPECT_GT(outcome.result.shotsCompleted, 0);
    EXPECT_LT(outcome.result.shotsCompleted, 256);
}

TEST(ExecutorDeadlines, CancelledBeforeRunTerminatesWithoutAttempts)
{
    const Rig rig;
    ResilientExecutor executor(rig.backend);
    ResilientRequest request;
    request.schedule = rig.x180Schedule();

    PulseShotOptions opts = shotOptions(64);
    opts.token = CancelToken::make();
    opts.token.cancel();
    const ResilientOutcome outcome =
        executor.run(rig.sim, request, opts);
    EXPECT_EQ(outcome.status.code(), ErrorCode::Cancelled);
    EXPECT_EQ(outcome.stats.attempts, 0);
    EXPECT_TRUE(outcome.result.partial);
    EXPECT_EQ(outcome.result.shotsCompleted, 0);
}

TEST(ExecutorDeadlines, CancelMidRetryStopsTheAttemptLoop)
{
    const Rig rig;
    FaultPlan plan;
    plan.driftRate = 1.0;
    plan.driftFreqKhz = 8000.0;
    plan.driftAmpError = 0.3;

    RetryPolicy retry;
    retry.maxAttempts = 6;
    ResilientExecutor executor(rig.backend, retry);
    executor.setFaultInjector(std::make_shared<FaultInjector>(plan));

    // The drift watchdog fires, triggers recalibration — and the hook
    // cancels the job, as a service shedding load mid-recovery would.
    PulseShotOptions opts = shotOptions(128);
    opts.token = CancelToken::make();
    executor.setRecalibrationHook(
        [&opts] { opts.token.cancel(); });

    ResilientRequest request;
    request.schedule = rig.x180Schedule();
    const ResilientOutcome outcome =
        executor.run(rig.sim, request, opts);
    EXPECT_EQ(outcome.status.code(), ErrorCode::Cancelled);
    EXPECT_GE(outcome.stats.recalibrations, 1);
    EXPECT_LT(outcome.stats.attempts, retry.maxAttempts);
}

TEST(ExecutorBackoff, MaxTotalBackoffCapsCumulativeDelay)
{
    const Rig rig;
    FaultPlan plan;
    plan.transientRate = 1.0; // Every attempt fails: retries burn.

    RetryPolicy retry;
    retry.maxAttempts = 6;
    retry.backoffBaseMs = 8.0;
    retry.backoffFactor = 2.0;
    retry.backoffCapMs = 64.0;
    retry.jitter = 0.0;
    retry.maxTotalBackoffMs = 20.0;

    ResilientExecutor executor(rig.backend, retry);
    executor.setFaultInjector(std::make_shared<FaultInjector>(plan));
    ResilientRequest request;
    request.schedule = rig.x180Schedule();
    const ResilientOutcome outcome =
        executor.run(rig.sim, request, shotOptions(32));

    // Uncapped, the five retries would sleep 8+16+32+64+64 = 184 ms;
    // the cap bounds the cumulative total while keeping every retry.
    EXPECT_EQ(outcome.status.code(), ErrorCode::RetriesExhausted);
    EXPECT_EQ(outcome.stats.retries, retry.maxAttempts - 1);
    EXPECT_LE(outcome.stats.backoffTotalMs, 20.0 + 1e-9);
}

TEST(ExecutorFaults, FallbackAndRecalibrationUnderEnvPlanWithDeadline)
{
    EnvGuard guard("QPULSE_FAULT_PLAN",
                   "seed=7,drift=1,drift_khz=9000,drift_amp=0.35");
    const Rig rig;
    RetryPolicy retry;
    retry.maxAttempts = 2;
    DriftWatchdogPolicy watchdog;
    watchdog.tolerance = 0.05;
    watchdog.maxRecalibrations = 1;
    ResilientExecutor executor(rig.backend, retry, watchdog);
    executor.setFaultInjector(
        std::make_shared<FaultInjector>(FaultPlan::fromEnv()));

    ResilientRequest request;
    request.schedule = rig.x180Schedule();
    request.key = "x180/q0";
    request.fallback = rig.twoX90Schedule();

    // A generous virtual budget: the deadline machinery is live but
    // must not interfere with recovery.
    PulseShotOptions opts = shotOptions(128);
    opts.deadline = Deadline::virtualBudget(
        static_cast<std::uint64_t>(request.schedule.duration()) *
        1'000'000);
    const ResilientOutcome outcome =
        executor.run(rig.sim, request, opts);

    // Recovery ran its course under the deadline: recalibration fired
    // and the run terminated structurally (either an accepted result
    // or RetriesExhausted after both phases), never deadline-exceeded.
    EXPECT_GE(outcome.stats.recalibrations, 1);
    EXPECT_NE(outcome.status.code(), ErrorCode::DeadlineExceeded);
    EXPECT_FALSE(outcome.result.partial);
}

// ---------------------------------------------------------------------
// Circuit breaker state machine.

TEST(Breaker, TripsAfterWindowedFailureRateAndRecovers)
{
    CircuitBreakerPolicy policy;
    policy.window = 4;
    policy.minSamples = 2;
    policy.openFailureRate = 0.5;
    policy.cooldownDenials = 2;
    policy.halfOpenSuccesses = 2;
    CircuitBreaker breaker(policy);

    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_TRUE(breaker.allow());
    breaker.recordFailure();
    EXPECT_EQ(breaker.state(), BreakerState::Closed); // 1 < minSamples.
    breaker.recordFailure();
    EXPECT_EQ(breaker.state(), BreakerState::Open); // 2/2 failures.
    EXPECT_EQ(breaker.trips(), 1u);

    // Cooldown counted in denied calls, then a Half-Open probe.
    EXPECT_FALSE(breaker.allow());
    EXPECT_FALSE(breaker.allow());
    EXPECT_EQ(breaker.denials(), 2u);
    EXPECT_TRUE(breaker.allow());
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);

    // A probe failure re-opens; a success streak closes.
    breaker.recordFailure();
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_FALSE(breaker.allow());
    EXPECT_FALSE(breaker.allow());
    EXPECT_TRUE(breaker.allow());
    breaker.recordSuccess();
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
    breaker.recordSuccess();
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

TEST(Breaker, PolicyValidationRejectsDegenerateConfigs)
{
    const CircuitBreakerPolicy good;
    EXPECT_TRUE(validateBreakerPolicy(good).ok());

    CircuitBreakerPolicy bad = good;
    bad.window = 0;
    EXPECT_EQ(validateBreakerPolicy(bad).code(),
              ErrorCode::InvalidArgument);

    bad = good;
    bad.minSamples = bad.window + 1; // Rate never evaluated.
    const Status neverOpens = validateBreakerPolicy(bad);
    EXPECT_EQ(neverOpens.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(neverOpens.message().find("never"), std::string::npos)
        << neverOpens.message();

    bad = good;
    bad.openFailureRate = 1.5; // Rate can never exceed 1.
    EXPECT_EQ(validateBreakerPolicy(bad).code(),
              ErrorCode::InvalidArgument);

    bad = good;
    bad.openFailureRate = 0.0;
    EXPECT_EQ(validateBreakerPolicy(bad).code(),
              ErrorCode::InvalidArgument);

    bad = good;
    bad.cooldownDenials = -1;
    EXPECT_EQ(validateBreakerPolicy(bad).code(),
              ErrorCode::InvalidArgument);

    bad = good;
    bad.halfOpenSuccesses = 0; // Open could never close again.
    EXPECT_EQ(validateBreakerPolicy(bad).code(),
              ErrorCode::InvalidArgument);
    // The constructor throws the same structured Status.
    EXPECT_THROW(CircuitBreaker breaker(bad), StatusError);
}

TEST(Breaker, ServiceRefusesToStartWithDegenerateBreakerPolicy)
{
    const Rig rig;
    ServicePolicy policy;
    policy.queueCapacity = 4;
    policy.breaker.minSamples = policy.breaker.window + 1;
    EXPECT_THROW(ExecutionService service(rig.backend, rig.sim,
                                          policy),
                 StatusError);
}

TEST(EnvKnobs, BatchWidthParsesWarnsAndClamps)
{
    {
        EnvGuard guard("QPULSE_BATCH", nullptr);
        EXPECT_EQ(envBatchWidth(), 64u);
    }
    {
        EnvGuard guard("QPULSE_BATCH", "16");
        EXPECT_EQ(envBatchWidth(), 16u);
    }
    {
        // Garbage warns and falls back to the default.
        EnvGuard guard("QPULSE_BATCH", "garbage");
        EXPECT_EQ(envBatchWidth(), 64u);
    }
    {
        // Out-of-range values warn and clamp, like QPULSE_THREADS.
        EnvGuard guard("QPULSE_BATCH", "99999");
        EXPECT_EQ(envBatchWidth(), 4096u);
    }
    {
        EnvGuard guard("QPULSE_BATCH", "0");
        EXPECT_EQ(envBatchWidth(), 1u);
    }
}

// ---------------------------------------------------------------------
// ExecutionService: admission control, draining, fast fail.

ServicePolicy
smallQueuePolicy(std::size_t capacity)
{
    ServicePolicy policy;
    policy.queueCapacity = capacity;
    policy.maxThreads = 1;
    return policy;
}

JobRequest
makeJob(const Rig &rig, int priority, long shots = 32)
{
    JobRequest job;
    job.schedule = rig.x180Schedule();
    job.shots = shots;
    job.seed = 0xB0B;
    job.priority = priority;
    return job;
}

TEST(Service, AdmissionRejectsWhenNothingOutranked)
{
    const Rig rig;
    ExecutionService service(rig.backend, rig.sim,
                             smallQueuePolicy(2));
    EXPECT_TRUE(service.submit(makeJob(rig, 1)).ok());
    EXPECT_TRUE(service.submit(makeJob(rig, 1)).ok());
    // Equal priority never displaces a queued job.
    const Status rejected = service.submit(makeJob(rig, 1));
    EXPECT_EQ(rejected.code(), ErrorCode::ResourceExhausted);
    EXPECT_EQ(service.stats().rejected, 1);
    EXPECT_EQ(service.queueDepth(), 2u);
}

TEST(Service, AdmissionShedsLowestPriorityMostRecentFirst)
{
    const Rig rig;
    ExecutionService service(rig.backend, rig.sim,
                             smallQueuePolicy(3));
    EXPECT_TRUE(service.submit(makeJob(rig, 0)).ok()); // id 0
    EXPECT_TRUE(service.submit(makeJob(rig, 0)).ok()); // id 1
    EXPECT_TRUE(service.submit(makeJob(rig, 2)).ok()); // id 2
    // Ties at priority 0: the most recent (id 1) is the victim.
    EXPECT_TRUE(service.submit(makeJob(rig, 5)).ok()); // id 3
    EXPECT_EQ(service.stats().shed, 1);

    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 4u);
    // Outcomes come back sorted by submission id.
    EXPECT_FALSE(outcomes[0].shed);
    EXPECT_TRUE(outcomes[1].shed);
    EXPECT_EQ(outcomes[1].status.code(), ErrorCode::ResourceExhausted);
    EXPECT_FALSE(outcomes[1].executed);
    EXPECT_FALSE(outcomes[2].shed);
    EXPECT_FALSE(outcomes[3].shed);
    for (const JobOutcome &out : outcomes)
        if (!out.shed) {
            EXPECT_TRUE(out.executed);
            EXPECT_TRUE(out.status.ok()) << out.status.toString();
        }
}

TEST(Service, CancelledBeforeAdmissionNeverTakesASlot)
{
    const Rig rig;
    ExecutionService service(rig.backend, rig.sim,
                             smallQueuePolicy(4));
    JobRequest job = makeJob(rig, 1);
    job.token = CancelToken::make();
    job.token.cancel();
    const Status status = service.submit(std::move(job));
    EXPECT_EQ(status.code(), ErrorCode::Cancelled);
    EXPECT_EQ(service.queueDepth(), 0u);
    EXPECT_EQ(service.stats().cancelled, 1);
    EXPECT_EQ(service.stats().admitted, 0);
}

TEST(Service, WedgedBackendTripsBreakerAndFastFailsTheQueue)
{
    const Rig rig;
    FaultPlan plan;
    plan.timeoutRate = 1.0; // 100% timeouts: fully wedged.

    ServicePolicy policy = smallQueuePolicy(16);
    policy.retry.maxAttempts = 2;
    policy.breaker.window = 4;
    policy.breaker.minSamples = 2;
    policy.breaker.openFailureRate = 0.5;
    policy.breaker.cooldownDenials = 3;
    ExecutionService service(rig.backend, rig.sim, policy);
    service.setFaultInjector(std::make_shared<FaultInjector>(plan));

    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(service.submit(makeJob(rig, 0, 16)).ok());
    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 10u);

    // The first jobs burn their (bounded) retry budget; once the
    // breaker trips, the rest fail fast with `unavailable` instead of
    // timing out one by one — the whole set terminates, no hang.
    int exhausted = 0, fastfailed = 0;
    for (const JobOutcome &out : outcomes) {
        if (out.status.code() == ErrorCode::RetriesExhausted)
            ++exhausted;
        if (out.breakerFastFail) {
            ++fastfailed;
            EXPECT_EQ(out.status.code(), ErrorCode::Unavailable);
            EXPECT_FALSE(out.executed);
        }
    }
    EXPECT_GE(exhausted, 2);
    EXPECT_GE(fastfailed, 3);
    EXPECT_EQ(service.stats().breakerFastFails, fastfailed);
    EXPECT_EQ(service.breaker("default").state(), BreakerState::Open);
}

TEST(Service, UnavailableStatusNamesBackendStateAndCooldown)
{
    const Rig rig;
    ServicePolicy policy = smallQueuePolicy(16);
    policy.retry.maxAttempts = 2;
    policy.breaker.window = 4;
    policy.breaker.minSamples = 2;
    policy.breaker.openFailureRate = 0.5;
    policy.breaker.cooldownDenials = 3;
    ExecutionService service(rig.backend, rig.sim, policy);
    service.setFaultInjector(
        std::make_shared<FaultInjector>([] {
            FaultPlan plan;
            plan.timeoutRate = 1.0;
            return plan;
        }()));

    // Two failed jobs trip the breaker; the third is denied.
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(service.submit(makeJob(rig, 0, 16)).ok());
    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 3u);
    const JobOutcome &denied = outcomes[2];
    ASSERT_TRUE(denied.breakerFastFail);
    EXPECT_EQ(denied.status.code(), ErrorCode::Unavailable);
    // The satellite contract: the message carries the backend name,
    // the breaker state, and the cooldown progress.
    const std::string &message = denied.status.message();
    EXPECT_NE(message.find("backend 'default'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("circuit breaker open"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("2 more denied jobs"), std::string::npos)
        << message;
    EXPECT_EQ(service.breaker("default").cooldownRemaining(), 2);
}

TEST(Service, HalfOpenProbeFailureReopensAndRestartsCooldown)
{
    // Deterministic breaker trajectory under virtual time: trip ->
    // cooldown (counted in denied jobs) -> half-open probe fails ->
    // re-open with a fresh cooldown -> fault clears -> probes close.
    EnvGuard guard("QPULSE_VIRTUAL_TIME", "1");
    const Rig rig;
    ServicePolicy policy = smallQueuePolicy(16);
    policy.retry.maxAttempts = 2;
    policy.breaker.window = 4;
    policy.breaker.minSamples = 2;
    policy.breaker.openFailureRate = 0.5;
    policy.breaker.cooldownDenials = 2;
    policy.breaker.halfOpenSuccesses = 2;
    ExecutionService service(rig.backend, rig.sim, policy);
    FaultPlan wedged;
    wedged.timeoutRate = 1.0;
    service.setFaultInjector(
        std::make_shared<FaultInjector>(wedged));

    const auto drainCodes = [&](int jobs) {
        for (int i = 0; i < jobs; ++i)
            EXPECT_TRUE(service.submit(makeJob(rig, 0, 16)).ok());
        std::vector<ErrorCode> codes;
        for (const JobOutcome &out : service.drain())
            codes.push_back(out.status.code());
        return codes;
    };

    // Trip: two retries-exhausted jobs open the breaker.
    EXPECT_EQ(drainCodes(2),
              (std::vector<ErrorCode>{ErrorCode::RetriesExhausted,
                                      ErrorCode::RetriesExhausted}));
    EXPECT_EQ(service.breaker("default").state(), BreakerState::Open);
    EXPECT_EQ(service.breaker("default").cooldownRemaining(), 2);

    // Cooldown accounting: each denied job spends one denial.
    EXPECT_EQ(drainCodes(1),
              (std::vector<ErrorCode>{ErrorCode::Unavailable}));
    EXPECT_EQ(service.breaker("default").cooldownRemaining(), 1);
    EXPECT_EQ(drainCodes(1),
              (std::vector<ErrorCode>{ErrorCode::Unavailable}));
    EXPECT_EQ(service.breaker("default").cooldownRemaining(), 0);
    EXPECT_EQ(service.stats().breakerFastFails, 2);

    // Cooldown spent: the next job is the half-open probe. Still
    // wedged, it fails — the breaker re-opens and the cooldown
    // restarts in full.
    EXPECT_EQ(drainCodes(1),
              (std::vector<ErrorCode>{ErrorCode::RetriesExhausted}));
    EXPECT_EQ(service.breaker("default").state(), BreakerState::Open);
    EXPECT_EQ(service.breaker("default").cooldownRemaining(), 2);

    // The fault clears; the same path now closes the breaker: two
    // denials, then two successful probes.
    service.setFaultInjector(nullptr);
    EXPECT_EQ(drainCodes(2),
              (std::vector<ErrorCode>{ErrorCode::Unavailable,
                                      ErrorCode::Unavailable}));
    EXPECT_EQ(drainCodes(1),
              (std::vector<ErrorCode>{ErrorCode::Ok}));
    EXPECT_EQ(service.breaker("default").state(),
              BreakerState::HalfOpen);
    EXPECT_EQ(drainCodes(1),
              (std::vector<ErrorCode>{ErrorCode::Ok}));
    EXPECT_EQ(service.breaker("default").state(),
              BreakerState::Closed);
}

TEST(Service, SaturationIsBitIdenticalAcrossThreadCountsUnderVirtualTime)
{
    EnvGuard guard("QPULSE_VIRTUAL_TIME", "1");
    const Rig rig;
    const Schedule schedule = rig.x180Schedule();
    const auto duration =
        static_cast<std::uint64_t>(schedule.duration());

    struct RunRecord
    {
        ServiceStats stats;
        std::vector<std::pair<std::uint64_t, ErrorCode>> outcomes;
        std::vector<long> partialShots;
    };
    const auto run = [&](std::size_t max_threads) {
        ServicePolicy policy = smallQueuePolicy(4);
        policy.maxThreads = max_threads;
        ExecutionService service(rig.backend, rig.sim, policy);
        // Fill the queue with low-priority work, then displace some of
        // it with high-priority jobs; give every job a tight virtual
        // budget so some expire with partial results.
        for (int i = 0; i < 6; ++i) {
            JobRequest job = makeJob(rig, 0, 64);
            job.deadline =
                Deadline::afterMsOrBudget(50.0, duration * 40);
            (void)service.submit(std::move(job));
        }
        for (int i = 0; i < 2; ++i) {
            JobRequest job = makeJob(rig, 5, 64);
            job.deadline =
                Deadline::afterMsOrBudget(50.0, duration * 40);
            (void)service.submit(std::move(job));
        }
        RunRecord record;
        for (const JobOutcome &out : service.drain()) {
            record.outcomes.emplace_back(out.id, out.status.code());
            record.partialShots.push_back(
                out.executed ? out.execution.result.shotsCompleted
                             : -1);
        }
        record.stats = service.stats();
        return record;
    };

    const RunRecord seq = run(1);
    const RunRecord par = run(8);

    EXPECT_EQ(seq.outcomes, par.outcomes);
    EXPECT_EQ(seq.partialShots, par.partialShots);
    EXPECT_EQ(seq.stats.submitted, par.stats.submitted);
    EXPECT_EQ(seq.stats.admitted, par.stats.admitted);
    EXPECT_EQ(seq.stats.rejected, par.stats.rejected);
    EXPECT_EQ(seq.stats.shed, par.stats.shed);
    EXPECT_EQ(seq.stats.deadlineExceeded, par.stats.deadlineExceeded);
    EXPECT_EQ(seq.stats.completed, par.stats.completed);

    // The scenario actually exercised the interesting paths.
    EXPECT_GT(seq.stats.shed + seq.stats.rejected, 0);
    EXPECT_GT(seq.stats.deadlineExceeded, 0);
}

TEST(Service, AsyncCancellationWindsDownCleanly)
{
    // Genuinely concurrent cancel: a second thread fires the token
    // while the job runs. The outcome is timing-dependent (completed
    // or cancelled) — the invariants are: no hang, a structured
    // status, and a coherent (possibly partial) result. Run under
    // TSan in CI, this is the data-race check for the token path.
    const Rig rig;
    ResilientExecutor executor(rig.backend);
    ResilientRequest request;
    request.schedule = rig.x180Schedule();

    PulseShotOptions opts = shotOptions(512);
    opts.token = CancelToken::make();
    std::thread canceller([token = opts.token]() mutable {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        token.cancel();
    });
    const ResilientOutcome outcome =
        executor.run(rig.sim, request, opts);
    canceller.join();

    if (outcome.status.ok()) {
        EXPECT_EQ(outcome.result.shotsCompleted, 512);
        EXPECT_FALSE(outcome.result.partial);
    } else {
        EXPECT_EQ(outcome.status.code(), ErrorCode::Cancelled);
        EXPECT_TRUE(outcome.result.partial);
        long total = 0;
        for (long c : outcome.result.counts)
            total += c;
        EXPECT_EQ(total, outcome.result.shotsCompleted);
    }
}

} // namespace
} // namespace qpulse
