/**
 * @file
 * Tests for the hardened OpenPulse-JSON ingestion boundary: the
 * defensive parser (distinct structured codes, golden byte/line/column
 * location messages, depth safety without stack overflow, strict
 * UTF-8), the lowering into Schedule/IngestedJob, the checked-in
 * corpus (one valid exemplar per instruction kind, one minimized
 * invalid exemplar per ingest ErrorCode, round-tripped through parse
 * -> validateSchedule), the DocumentFramer, and the RequestFrontEnd
 * streaming loop (partial results, admission, buffer budgets,
 * disconnects, deterministic ingest fault injection).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.h"
#include "device/fault_injector.h"
#include "device/schedule_validation.h"
#include "ingest/frontend.h"
#include "ingest/json.h"
#include "ingest/openpulse.h"
#include "pulse/qobj.h"
#include "service/execution_service.h"

namespace qpulse {
namespace ingest {
namespace {

namespace fs = std::filesystem;

Status
parseText(const std::string &text, JsonLimits limits = {})
{
    JsonValue out;
    return parseJson(text, limits, out);
}

TEST(IngestJson, ParsesScalarsAndContainers)
{
    JsonValue root;
    const Status status = parseJson(
        "{\"a\": [1, 2.5, -3e2], \"b\": \"x\\u0041\", "
        "\"c\": true, \"d\": null, \"e\": {}}",
        JsonLimits{}, root);
    ASSERT_TRUE(status.ok()) << status.message();
    ASSERT_TRUE(root.isObject());
    const JsonValue *a = root.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[0].number(), 1.0);
    EXPECT_DOUBLE_EQ(a->items()[1].number(), 2.5);
    EXPECT_DOUBLE_EQ(a->items()[2].number(), -300.0);
    ASSERT_NE(root.find("b"), nullptr);
    EXPECT_EQ(root.find("b")->string(), "xA");
    EXPECT_TRUE(root.find("c")->boolean());
    EXPECT_TRUE(root.find("d")->isNull());
    EXPECT_TRUE(root.find("e")->isObject());
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(IngestJson, GoldenLocationMessages)
{
    // The canonical suffix contract: " at byte B (line L, column C)".
    // Golden-tested so the format cannot silently regress.
    Status status = parseText("[1, 2, x]");
    EXPECT_EQ(status.code(), ErrorCode::MalformedJson);
    EXPECT_TRUE(status.message().ends_with(
        " at byte 7 (line 1, column 8)"))
        << status.message();

    status = parseText("{\n  \"a\": nope\n}");
    EXPECT_EQ(status.code(), ErrorCode::MalformedJson);
    EXPECT_TRUE(status.message().ends_with(
        " at byte 9 (line 2, column 8)"))
        << status.message();

    status = parseText("{\"a\": 1");
    EXPECT_EQ(status.code(), ErrorCode::UnexpectedEnd);
    EXPECT_TRUE(status.message().ends_with(
        " at byte 7 (line 1, column 8)"))
        << status.message();
}

TEST(IngestJson, LocateOffsetCountsLinesAndColumns)
{
    const std::string text = "ab\ncde\n\nf";
    EXPECT_EQ(locateOffset(text, 0).line, 1u);
    EXPECT_EQ(locateOffset(text, 0).column, 1u);
    EXPECT_EQ(locateOffset(text, 3).line, 2u);
    EXPECT_EQ(locateOffset(text, 3).column, 1u);
    EXPECT_EQ(locateOffset(text, 5).line, 2u);
    EXPECT_EQ(locateOffset(text, 5).column, 3u);
    EXPECT_EQ(locateOffset(text, 8).line, 4u);
    EXPECT_EQ(locateOffset(text, 8).column, 1u);
    EXPECT_EQ(locationSuffix(text, 5),
              " at byte 5 (line 2, column 3)");
}

TEST(IngestJson, DeepNestingHitsDepthLimitNotTheStack)
{
    // 200k-deep nesting must exhaust the *limit*, never the call
    // stack — the parser is iterative by construction.
    std::string deep(200000, '[');
    JsonLimits limits;
    limits.maxValues = 1u << 20;
    const Status status = parseText(deep, limits);
    EXPECT_EQ(status.code(), ErrorCode::DepthLimitExceeded);
}

TEST(IngestJson, DistinctStructuredCodes)
{
    EXPECT_EQ(parseText("{\"a\": 1,}").code(),
              ErrorCode::MalformedJson);
    EXPECT_EQ(parseText("{\"a\": 01}").code(),
              ErrorCode::MalformedJson);
    EXPECT_EQ(parseText("").code(), ErrorCode::UnexpectedEnd);
    EXPECT_EQ(parseText("{\"a\": ").code(),
              ErrorCode::UnexpectedEnd);
    EXPECT_EQ(parseText("{\"a\": 1e999}").code(),
              ErrorCode::NumberOutOfRange);
    EXPECT_EQ(parseText("{\"a\": 1, \"a\": 2}").code(),
              ErrorCode::DuplicateKey);

    JsonLimits tight;
    tight.maxBytes = 8;
    EXPECT_EQ(parseText("{\"abcdef\": 1}", tight).code(),
              ErrorCode::SizeLimitExceeded);
    tight = JsonLimits{};
    tight.maxStringBytes = 4;
    EXPECT_EQ(parseText("{\"abcdefgh\": 1}", tight).code(),
              ErrorCode::SizeLimitExceeded);
    tight = JsonLimits{};
    tight.maxValues = 3;
    EXPECT_EQ(parseText("[1, 2, 3, 4, 5]", tight).code(),
              ErrorCode::SizeLimitExceeded);
    tight = JsonLimits{};
    tight.maxDepth = 2;
    EXPECT_EQ(parseText("[[[1]]]", tight).code(),
              ErrorCode::DepthLimitExceeded);
}

TEST(IngestJson, StrictUtf8)
{
    // Overlong encoding of '/'.
    EXPECT_EQ(parseText("{\"a\": \"\xC0\xAF\"}").code(),
              ErrorCode::InvalidUtf8);
    // Raw surrogate half.
    EXPECT_EQ(parseText("{\"a\": \"\xED\xA0\x80\"}").code(),
              ErrorCode::InvalidUtf8);
    // Code point above U+10FFFF.
    EXPECT_EQ(parseText("{\"a\": \"\xF4\x90\x80\x80\"}").code(),
              ErrorCode::InvalidUtf8);
    // Truncated multi-byte sequence.
    EXPECT_EQ(parseText("{\"a\": \"\xE2\x82\"}").code(),
              ErrorCode::InvalidUtf8);
    // Well-formed multi-byte text is accepted verbatim.
    JsonValue root;
    const Status ok = parseJson(
        "{\"a\": \"\xCF\x80\xE2\x9C\x93\xF0\x9F\x98\x80\"}",
        JsonLimits{}, root);
    ASSERT_TRUE(ok.ok()) << ok.message();
    EXPECT_EQ(root.find("a")->string(),
              "\xCF\x80\xE2\x9C\x93\xF0\x9F\x98\x80");
}

TEST(IngestJson, EscapeHandling)
{
    JsonValue root;
    // Surrogate-pair escape decodes to one 4-byte code point.
    Status status = parseJson("{\"a\": \"\\uD83D\\uDE00\"}",
                              JsonLimits{}, root);
    ASSERT_TRUE(status.ok()) << status.message();
    EXPECT_EQ(root.find("a")->string(), "\xF0\x9F\x98\x80");

    // Lone surrogate escapes are invalid UTF-8, not valid JSON text.
    EXPECT_EQ(parseText("{\"a\": \"\\uD800\"}").code(),
              ErrorCode::InvalidUtf8);
    // Unknown escapes and raw control characters are malformed.
    EXPECT_EQ(parseText("{\"a\": \"\\x\"}").code(),
              ErrorCode::MalformedJson);
    EXPECT_EQ(parseText("{\"a\": \"\x01\"}").code(),
              ErrorCode::MalformedJson);
}

// ---------------------------------------------------------------------
// Lowering.

TEST(IngestLowering, AcceptsQobjWireFormat)
{
    Schedule original("demo");
    original.shiftPhase(driveChannel(0), -0.5);
    original.play(driveChannel(0),
                  std::make_shared<GaussianWaveform>(
                      16, 4.0, Complex{0.1, 0.0}));
    original.delay(driveChannel(1), 8);
    original.shiftFrequency(driveChannel(1), -0.33);
    original.acquire(acquireChannel(0), 32);

    QobjWriteOptions options;
    options.includeSamples = true;
    const std::string json = scheduleToQobjJson(original, options);

    IngestedJob job;
    const Status status = parseJob(json, IngestLimits{}, job);
    ASSERT_TRUE(status.ok()) << status.message();
    EXPECT_EQ(job.schedule.name(), "demo");
    ASSERT_EQ(job.schedule.instructions().size(),
              original.instructions().size());
    for (std::size_t i = 0; i < original.instructions().size(); ++i) {
        const PulseInstruction &want = original.instructions()[i];
        const PulseInstruction &got = job.schedule.instructions()[i];
        EXPECT_EQ(got.kind, want.kind) << i;
        EXPECT_EQ(got.channel.kind, want.channel.kind) << i;
        EXPECT_EQ(got.channel.index, want.channel.index) << i;
        EXPECT_EQ(got.startTime, want.startTime) << i;
    }

    ChannelBudget budget;
    budget.driveChannels = 2;
    budget.acquireChannels = 1;
    const Status gate = validateSchedule(job.schedule, budget);
    EXPECT_TRUE(gate.ok()) << gate.message();
}

TEST(IngestLowering, EnvelopeCarriesJobParameters)
{
    const std::string envelope =
        "{\"qobj\": {\"name\": \"env\", \"duration\": 0, "
        "\"instructions\": [{\"t0\": 0, \"ch\": \"d0\", "
        "\"name\": \"fc\", \"phase\": 0.5}]}, \"shots\": 77, "
        "\"seed\": 12345, \"priority\": -3, \"tenant\": \"alice\", "
        "\"backend\": \"west\", \"key\": \"jobs/42\"}";
    IngestedJob job;
    const Status status = parseJob(envelope, IngestLimits{}, job);
    ASSERT_TRUE(status.ok()) << status.message();
    EXPECT_EQ(job.shots, 77);
    EXPECT_EQ(job.seed, 12345u);
    EXPECT_EQ(job.priority, -3);
    EXPECT_EQ(job.tenant, "alice");
    EXPECT_EQ(job.backend, "west");
    EXPECT_EQ(job.key, "jobs/42");
    EXPECT_EQ(job.schedule.instructions().size(), 1u);
}

TEST(IngestLowering, SchemaRejectsAreDistinctAndLocated)
{
    IngestedJob job;
    IngestLimits limits;

    Status status = parseJob("{\"name\": \"x\"}", limits, job);
    EXPECT_EQ(status.code(), ErrorCode::SchemaError);
    EXPECT_NE(status.message().find(" at byte "), std::string::npos);

    status = parseJob(
        "{\"name\": \"x\", \"instructions\": [], \"zzz\": 1}",
        limits, job);
    EXPECT_EQ(status.code(), ErrorCode::UnknownField);
    EXPECT_NE(status.message().find("\"zzz\""), std::string::npos);

    status = parseJob(
        "{\"qobj\": {\"name\": \"x\", \"instructions\": []}, "
        "\"shots\": 0}",
        limits, job);
    EXPECT_EQ(status.code(), ErrorCode::NumberOutOfRange);

    status = parseJob(
        "{\"qobj\": {\"name\": \"x\", \"instructions\": []}, "
        "\"shots\": 1.5}",
        limits, job);
    EXPECT_EQ(status.code(), ErrorCode::SchemaError);

    status = parseJob(
        "{\"instructions\": [{\"t0\": 0, \"ch\": \"q0\", "
        "\"name\": \"fc\", \"phase\": 0}]}",
        limits, job);
    EXPECT_EQ(status.code(), ErrorCode::SchemaError);

    status = parseJob(
        "{\"instructions\": [{\"t0\": 0, \"ch\": \"d99999\", "
        "\"name\": \"fc\", \"phase\": 0}]}",
        limits, job);
    EXPECT_EQ(status.code(), ErrorCode::NumberOutOfRange);

    limits.maxSamples = 1;
    status = parseJob(
        "{\"instructions\": [{\"t0\": 0, \"ch\": \"d0\", "
        "\"name\": \"play\", \"samples\": [[0.1, 0], [0.1, 0]]}]}",
        limits, job);
    EXPECT_EQ(status.code(), ErrorCode::SizeLimitExceeded);
    limits = IngestLimits{};

    limits.maxNameBytes = 3;
    status = parseJob(
        "{\"name\": \"abcdefgh\", \"instructions\": []}", limits,
        job);
    EXPECT_EQ(status.code(), ErrorCode::SizeLimitExceeded);
}

// ---------------------------------------------------------------------
// Corpus: one valid exemplar per instruction kind, one minimized
// invalid exemplar per ingest ErrorCode; filenames of invalid
// exemplars encode the expected code ("<code>__<slug>.json").

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::vector<fs::path>
corpusFiles(const char *subdir)
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(
             fs::path(QPULSE_INGEST_CORPUS_DIR) / subdir))
        if (entry.path().extension() == ".json")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(IngestCorpus, ValidExemplarsParseValidateAndRoundTrip)
{
    const std::vector<fs::path> files = corpusFiles("valid");
    ASSERT_GE(files.size(), 6u); // play/fc/sf/delay/acquire/envelope.

    ChannelBudget budget;
    budget.driveChannels = 1;
    budget.controlChannels = 1;
    budget.measureChannels = 1;
    budget.acquireChannels = 1;

    std::size_t kinds = 0;
    for (const fs::path &path : files) {
        IngestedJob job;
        const Status status =
            parseJob(readFile(path), IngestLimits{}, job);
        ASSERT_TRUE(status.ok())
            << path.filename() << ": " << status.message();
        const Status gate = validateSchedule(job.schedule, budget);
        EXPECT_TRUE(gate.ok())
            << path.filename() << ": " << gate.message();
        kinds |= 1u << static_cast<std::size_t>(
                     job.schedule.instructions().at(0).kind);

        // Round trip: re-emit through the trusted writer and re-parse
        // through the defensive boundary.
        QobjWriteOptions options;
        options.includeSamples = true;
        IngestedJob again;
        const Status rt = parseJob(
            scheduleToQobjJson(job.schedule, options), IngestLimits{},
            again);
        ASSERT_TRUE(rt.ok())
            << path.filename() << ": " << rt.message();
        EXPECT_EQ(again.schedule.instructions().size(),
                  job.schedule.instructions().size())
            << path.filename();
    }
    // All five instruction kinds are covered by the corpus.
    EXPECT_EQ(kinds, (1u << 0) | (1u << 1) | (1u << 2) | (1u << 3) |
                         (1u << 4));
}

TEST(IngestCorpus, InvalidExemplarsRejectWithTheEncodedCode)
{
    std::map<std::string, ErrorCode> codes;
    for (const ErrorCode code :
         {ErrorCode::MalformedJson, ErrorCode::UnexpectedEnd,
          ErrorCode::InvalidUtf8, ErrorCode::DepthLimitExceeded,
          ErrorCode::SizeLimitExceeded, ErrorCode::NumberOutOfRange,
          ErrorCode::DuplicateKey, ErrorCode::SchemaError,
          ErrorCode::UnknownField})
        codes[errorCodeName(code)] = code;

    const std::vector<fs::path> files = corpusFiles("invalid");
    std::map<std::string, int> seen;
    for (const fs::path &path : files) {
        const std::string stem = path.stem().string();
        const std::size_t sep = stem.find("__");
        ASSERT_NE(sep, std::string::npos) << stem;
        const std::string codeName = stem.substr(0, sep);
        ASSERT_TRUE(codes.count(codeName)) << stem;

        IngestedJob job;
        const Status status =
            parseJob(readFile(path), IngestLimits{}, job);
        EXPECT_EQ(status.code(), codes[codeName])
            << path.filename() << ": " << status.message();
        ++seen[codeName];
    }
    // Every ingest code has at least one minimized exemplar.
    EXPECT_EQ(seen.size(), codes.size());
}

// ---------------------------------------------------------------------
// DocumentFramer.

TEST(IngestFramer, SplitsConcatenatedMultilineDocuments)
{
    DocumentFramer framer;
    std::vector<std::string> frames;
    framer.feed("{\"a\":\n 1}\n  {\"b\": \"}{\"}[1, 2]", frames);
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0], "{\"a\":\n 1}");
    EXPECT_EQ(frames[1], "{\"b\": \"}{\"}");
    EXPECT_EQ(frames[2], "[1, 2]");
    EXPECT_EQ(framer.buffered(), 0u);
}

TEST(IngestFramer, ResynchronizesAfterGarbage)
{
    DocumentFramer framer;
    std::vector<std::string> frames;
    framer.feed("!!noise!! {\"a\": 1}", frames);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0], "!!noise!! ");
    EXPECT_EQ(frames[1], "{\"a\": 1}");
}

TEST(IngestFramer, FlushReturnsTrailingPartialFrame)
{
    DocumentFramer framer;
    std::vector<std::string> frames;
    framer.feed("{\"a\": [1, 2", frames);
    EXPECT_TRUE(frames.empty());
    EXPECT_GT(framer.buffered(), 0u);
    std::string trailing;
    ASSERT_TRUE(framer.flush(trailing));
    EXPECT_EQ(trailing, "{\"a\": [1, 2");
    EXPECT_EQ(framer.buffered(), 0u);
    EXPECT_FALSE(framer.flush(trailing));
}

TEST(IngestFramer, EscapedQuotesInsideStrings)
{
    DocumentFramer framer;
    std::vector<std::string> frames;
    framer.feed("{\"a\": \"\\\"}{\\\\\"}", frames);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0], "{\"a\": \"\\\"}{\\\\\"}");
}

// ---------------------------------------------------------------------
// RequestFrontEnd over a calibrated single-qubit rig.

struct Rig
{
    Rig()
        : config(almadenLineConfig(1)),
          backend(makeCalibratedBackend(config)),
          calibrator(config), cal(calibrator.calibrateQubit(0)),
          sim(calibrator.qubitModel(0))
    {}

    Schedule
    x180Schedule() const
    {
        Schedule schedule("x180");
        schedule.play(driveChannel(0), cal.x180Pulse());
        return schedule;
    }

    std::string
    envelopeJson(long shots, const std::string &key,
                 std::uint64_t seed = 11) const
    {
        QobjWriteOptions options;
        options.includeSamples = true;
        return "{\"qobj\": " +
               scheduleToQobjJson(x180Schedule(), options) +
               ", \"shots\": " + std::to_string(shots) +
               ", \"seed\": " + std::to_string(seed) +
               ", \"key\": \"" + key + "\"}";
    }

    BackendConfig config;
    std::shared_ptr<const PulseBackend> backend;
    Calibrator calibrator;
    QubitCalibration cal;
    PulseSimulator sim;
};

FrontEndPolicy
rigPolicy(const Rig &rig)
{
    FrontEndPolicy policy;
    policy.budget = ChannelBudget::fromConfig(rig.config);
    policy.streamBatchShots = 16;
    return policy;
}

TEST(IngestFrontEnd, StreamsPartialResultsPerChunk)
{
    Rig rig;
    ExecutionService service(rig.backend, rig.sim);
    RequestFrontEnd front(service, rigPolicy(rig));
    std::vector<StreamEvent> events;
    front.setEventSink(
        [&](const StreamEvent &e) { events.push_back(e); });

    const int conn = front.open();
    front.feed(conn, rig.envelopeJson(48, "stream/x180"));
    front.finish(conn);
    front.run();

    ASSERT_EQ(events.size(), 4u); // Accepted, 2 Partial, Completed.
    EXPECT_EQ(events[0].kind, StreamEventKind::Accepted);
    EXPECT_EQ(events[0].key, "stream/x180");
    EXPECT_EQ(events[0].shotsRequested, 48);
    EXPECT_EQ(events[1].kind, StreamEventKind::Partial);
    EXPECT_EQ(events[1].shotsCompleted, 16);
    EXPECT_EQ(events[2].kind, StreamEventKind::Partial);
    EXPECT_EQ(events[2].shotsCompleted, 32);
    EXPECT_EQ(events[3].kind, StreamEventKind::Completed);
    EXPECT_EQ(events[3].shotsCompleted, 48);
    long total = 0;
    for (long c : events[3].counts)
        total += c;
    EXPECT_EQ(total, 48);
    EXPECT_EQ(front.stats().accepted, 1);
    EXPECT_EQ(front.stats().completed, 1);
    EXPECT_EQ(front.stats().chunksExecuted, 3);
    EXPECT_EQ(front.activeRequests(), 0u);
}

TEST(IngestFrontEnd, RejectsMalformedWithStructuredCodes)
{
    Rig rig;
    ExecutionService service(rig.backend, rig.sim);
    RequestFrontEnd front(service, rigPolicy(rig));
    std::vector<StreamEvent> events;
    front.setEventSink(
        [&](const StreamEvent &e) { events.push_back(e); });

    const int conn = front.open();
    front.feed(conn, "{\"name\": 3, \"instructions\": []}");
    front.feed(conn, "{\"a\": 1, \"a\": 2}");
    front.finish(conn);
    front.run();

    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, StreamEventKind::Rejected);
    EXPECT_EQ(events[0].status.code(), ErrorCode::SchemaError);
    EXPECT_EQ(events[1].kind, StreamEventKind::Rejected);
    EXPECT_EQ(events[1].status.code(), ErrorCode::DuplicateKey);
    EXPECT_NE(events[1].status.message().find(" at byte "),
              std::string::npos);
    EXPECT_EQ(front.stats().rejected, 2);
    EXPECT_EQ(front.stats().accepted, 0);
}

TEST(IngestFrontEnd, TruncatedTrailingDocumentRejectsOnFinish)
{
    Rig rig;
    ExecutionService service(rig.backend, rig.sim);
    RequestFrontEnd front(service, rigPolicy(rig));
    std::vector<StreamEvent> events;
    front.setEventSink(
        [&](const StreamEvent &e) { events.push_back(e); });

    const int conn = front.open();
    const std::string doc = rig.envelopeJson(16, "cut");
    front.feed(conn, std::string_view(doc).substr(0, doc.size() / 2));
    front.finish(conn);
    front.run();

    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, StreamEventKind::Rejected);
    EXPECT_EQ(events[0].status.code(), ErrorCode::UnexpectedEnd);
}

TEST(IngestFrontEnd, BufferBudgetOverflowRejectsAndResyncs)
{
    Rig rig;
    FrontEndPolicy policy = rigPolicy(rig);
    policy.maxConnectionBufferBytes = 64;
    ExecutionService service(rig.backend, rig.sim);
    RequestFrontEnd front(service, policy);
    std::vector<StreamEvent> events;
    front.setEventSink(
        [&](const StreamEvent &e) { events.push_back(e); });

    const int conn = front.open();
    // An unterminated document far beyond the 64-byte budget.
    front.feed(conn,
               "{\"name\": \"" + std::string(100000, 'a') + "\"");
    ASSERT_GE(events.size(), 1u);
    EXPECT_EQ(events[0].kind, StreamEventKind::Rejected);
    EXPECT_EQ(events[0].status.code(),
              ErrorCode::SizeLimitExceeded);
    EXPECT_GE(front.stats().overflowDrops, 1L);

    // The connection still works for subsequent documents.
    events.clear();
    front.feed(conn, "{\"a\": 1, \"a\": 2}");
    bool sawDuplicate = false;
    for (const StreamEvent &e : events)
        sawDuplicate |= e.status.code() == ErrorCode::DuplicateKey;
    EXPECT_TRUE(sawDuplicate);
}

TEST(IngestFrontEnd, AdmissionBudgetRejectsExcessRequests)
{
    Rig rig;
    FrontEndPolicy policy = rigPolicy(rig);
    policy.maxPendingPerConnection = 1;
    ExecutionService service(rig.backend, rig.sim);
    RequestFrontEnd front(service, policy);
    std::vector<StreamEvent> events;
    front.setEventSink(
        [&](const StreamEvent &e) { events.push_back(e); });

    const int conn = front.open();
    front.feed(conn, rig.envelopeJson(16, "first"));
    front.feed(conn, rig.envelopeJson(16, "second"));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, StreamEventKind::Accepted);
    EXPECT_EQ(events[1].kind, StreamEventKind::Rejected);
    EXPECT_EQ(events[1].status.code(),
              ErrorCode::ResourceExhausted);
    front.run();
    EXPECT_EQ(front.stats().completed, 1);
}

TEST(IngestFrontEnd, CloseDisconnectsInFlightRequests)
{
    Rig rig;
    ExecutionService service(rig.backend, rig.sim);
    RequestFrontEnd front(service, rigPolicy(rig));
    std::vector<StreamEvent> events;
    front.setEventSink(
        [&](const StreamEvent &e) { events.push_back(e); });

    const int conn = front.open();
    front.feed(conn, rig.envelopeJson(64, "doomed"));
    EXPECT_EQ(front.pump(), 1u); // First chunk lands.
    front.close(conn);
    front.run();

    ASSERT_GE(events.size(), 3u);
    EXPECT_EQ(events.back().kind, StreamEventKind::Disconnected);
    EXPECT_EQ(events.back().status.code(), ErrorCode::Cancelled);
    EXPECT_EQ(events.back().shotsCompleted, 16);
    EXPECT_EQ(front.stats().disconnected, 1);
    // Bytes of a dead peer are dropped silently.
    const std::size_t before = events.size();
    front.feed(conn, "{\"a\": 1}");
    EXPECT_EQ(events.size(), before);
}

TEST(IngestFrontEnd, FaultedDeliveryIsDeterministic)
{
    Rig rig;
    FaultPlan plan;
    plan.seed = 99;
    plan.ingestTruncateRate = 0.3;
    plan.ingestCorruptRate = 0.3;
    plan.ingestDupKeyRate = 0.2;
    plan.ingestDisconnectRate = 0.1;

    auto runOnce = [&]() {
        ExecutionService service(rig.backend, rig.sim);
        RequestFrontEnd front(service, rigPolicy(rig));
        front.setFaultInjector(
            std::make_shared<FaultInjector>(plan));
        std::vector<std::string> trace;
        front.setEventSink([&](const StreamEvent &e) {
            std::string entry = streamEventKindName(e.kind);
            entry += ":";
            entry += errorCodeName(e.status.code());
            trace.push_back(std::move(entry));
        });
        for (int i = 0; i < 24; ++i) {
            const int conn = front.open();
            std::string key = "f";
            key += std::to_string(i);
            front.deliver(conn, rig.envelopeJson(16, key, 100 + i));
            front.finish(conn);
        }
        front.run();
        return trace;
    };

    const std::vector<std::string> first = runOnce();
    const std::vector<std::string> second = runOnce();
    EXPECT_EQ(first, second);

    // The plan's rates are high enough that both mutated-and-rejected
    // and clean-and-completed documents occur in 24 deliveries.
    bool sawReject = false;
    for (const std::string &entry : first)
        sawReject |= entry.rfind("rejected:", 0) == 0;
    EXPECT_TRUE(sawReject);
}

TEST(IngestFaultPlan, IngestKeysRoundTripThroughSpec)
{
    FaultPlan plan;
    plan.ingestTruncateRate = 0.25;
    plan.ingestCorruptRate = 0.125;
    plan.ingestDupKeyRate = 0.5;
    plan.ingestDisconnectRate = 0.0625;
    EXPECT_TRUE(plan.enabled());

    FaultPlan reparsed;
    const Status status = FaultPlan::parse(plan.toString(), reparsed);
    ASSERT_TRUE(status.ok()) << status.message();
    EXPECT_EQ(reparsed.ingestTruncateRate, 0.25);
    EXPECT_EQ(reparsed.ingestCorruptRate, 0.125);
    EXPECT_EQ(reparsed.ingestDupKeyRate, 0.5);
    EXPECT_EQ(reparsed.ingestDisconnectRate, 0.0625);

    EXPECT_EQ(FaultPlan::parse("ingest_trunc=1.5", reparsed).code(),
              ErrorCode::ParseError);

    // The mutation classes produce payloads the parser rejects with
    // the matching structured code — deterministically per ordinal.
    FaultPlan always;
    always.ingestDupKeyRate = 1.0;
    FaultInjector injector(always);
    const std::string doc = "{\"name\": \"x\"}";
    const auto injection = injector.injectIngest(doc, 7);
    EXPECT_TRUE(injection.duplicatedKey);
    IngestedJob job;
    EXPECT_EQ(parseJob(injection.payload, IngestLimits{}, job).code(),
              ErrorCode::DuplicateKey);
    const auto again =
        FaultInjector(always).injectIngest(doc, 7);
    EXPECT_EQ(again.payload, injection.payload);
}

} // namespace
} // namespace ingest
} // namespace qpulse
