/**
 * @file
 * Tests for the OpenQASM 2.0 front end: parsing the supported gate
 * set, angle-expression arithmetic, error handling and round-tripping
 * through toQasm().
 */
#include <gtest/gtest.h>

#include "circuit/qasm.h"
#include "common/constants.h"
#include "linalg/gates.h"

namespace qpulse {
namespace {

TEST(QasmParse, HeaderAndRegisters)
{
    const QuantumCircuit circuit = parseQasm(R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        creg c[3];
        h q[0];
    )");
    EXPECT_EQ(circuit.numQubits(), 3u);
    EXPECT_EQ(circuit.size(), 1u);
    EXPECT_EQ(circuit.gates()[0].type, GateType::H);
}

TEST(QasmParse, AllSimpleGates)
{
    const QuantumCircuit circuit = parseQasm(
        "qreg q[2]; id q[0]; h q[0]; x q[0]; y q[0]; z q[0]; s q[0]; "
        "sdg q[0]; t q[0]; tdg q[0]; cx q[0],q[1]; cz q[0],q[1]; "
        "swap q[0],q[1];");
    EXPECT_EQ(circuit.size(), 12u);
    EXPECT_EQ(circuit.countType(GateType::Cnot), 1u);
    EXPECT_EQ(circuit.countType(GateType::Swap), 1u);
}

TEST(QasmParse, ParamGatesAndExpressions)
{
    const QuantumCircuit circuit = parseQasm(
        "qreg q[2];"
        "rx(pi/2) q[0];"
        "rz(-pi/4) q[1];"
        "u1(2*pi/8) q[0];"
        "u2(0, pi) q[0];"
        "u3(pi/2, -pi, 0.25) q[1];"
        "rzz(3*(1+0.5)) q[0],q[1];");
    ASSERT_EQ(circuit.size(), 6u);
    EXPECT_NEAR(circuit.gates()[0].params[0], kPi / 2, 1e-12);
    EXPECT_NEAR(circuit.gates()[1].params[0], -kPi / 4, 1e-12);
    EXPECT_NEAR(circuit.gates()[2].params[0], kPi / 4, 1e-12);
    EXPECT_EQ(circuit.gates()[3].params.size(), 2u);
    EXPECT_NEAR(circuit.gates()[4].params[2], 0.25, 1e-12);
    EXPECT_NEAR(circuit.gates()[5].params[0], 4.5, 1e-12);
}

TEST(QasmParse, ScientificNotation)
{
    const QuantumCircuit circuit =
        parseQasm("qreg q[1]; rx(1.5e-1) q[0];");
    EXPECT_NEAR(circuit.gates()[0].params[0], 0.15, 1e-12);
}

TEST(QasmParse, MeasureAndBarrier)
{
    const QuantumCircuit circuit = parseQasm(
        "qreg q[2]; creg c[2]; h q[0]; barrier q; "
        "measure q[0] -> c[0]; measure q[1] -> c[1];");
    EXPECT_EQ(circuit.countType(GateType::Measure), 2u);
    EXPECT_EQ(circuit.countType(GateType::Barrier), 1u);
}

TEST(QasmParse, CommentsStripped)
{
    const QuantumCircuit circuit = parseQasm(
        "// a comment\nqreg q[1]; // trailing\nx q[0]; // done\n");
    EXPECT_EQ(circuit.size(), 1u);
}

TEST(QasmParse, Errors)
{
    EXPECT_THROW(parseQasm("x q[0];"), FatalError); // No qreg.
    EXPECT_THROW(parseQasm("qreg q[1]; frobnicate q[0];"), FatalError);
    EXPECT_THROW(parseQasm("qreg q[1]; rx(pi q[0];"), FatalError);
    EXPECT_THROW(parseQasm("qreg q[1]; x r[0];"), FatalError);
    EXPECT_THROW(parseQasm("qreg q[1]; rx(1/0) q[0];"), FatalError);
}

TEST(QasmParse, SemanticEquivalenceToBuilder)
{
    const QuantumCircuit parsed = parseQasm(
        "qreg q[2]; h q[0]; cx q[0],q[1]; rz(0.7) q[1]; "
        "cx q[0],q[1];");
    QuantumCircuit built(2);
    built.h(0);
    built.cx(0, 1);
    built.rz(0.7, 1);
    built.cx(0, 1);
    EXPECT_GT(unitaryOverlap(parsed.unitary(), built.unitary()),
              1 - 1e-12);
}

TEST(QasmRoundTrip, PreservesUnitary)
{
    QuantumCircuit circuit(3);
    circuit.h(0);
    circuit.u3(0.4, -0.3, 1.2, 1);
    circuit.cx(0, 1);
    circuit.rzz(0.9, 1, 2);
    circuit.t(2);
    circuit.swap(0, 2);
    circuit.measureAll();

    const std::string qasm = toQasm(circuit);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    const QuantumCircuit reparsed = parseQasm(qasm);
    EXPECT_EQ(reparsed.numQubits(), 3u);
    EXPECT_GT(unitaryOverlap(
                  reparsed.withoutDirectives().unitary(),
                  circuit.withoutDirectives().unitary()),
              1 - 1e-9);
    EXPECT_EQ(reparsed.countType(GateType::Measure), 3u);
}

TEST(QasmRoundTrip, RejectsAugmentedGates)
{
    QuantumCircuit circuit(1);
    circuit.append(makeGate(GateType::DirectX, {0}));
    EXPECT_THROW(toQasm(circuit), FatalError);
}

} // namespace
} // namespace qpulse
