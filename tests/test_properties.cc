/**
 * @file
 * End-to-end property and failure-injection tests.
 *
 * Properties: for random single-qubit programs, BOTH compiler flows
 * produce pulse schedules whose simulated unitary matches the program
 * (the strongest end-to-end guarantee the compiler gives). Failure
 * injection: deliberately corrupted calibrations, drives and inputs
 * must be either detected (fatal) or measurably degrade fidelity —
 * never silently produce a "healthy" result.
 */
#include <gtest/gtest.h>

#include <memory>

#include "common/constants.h"
#include "compile/compiler.h"
#include "linalg/gates.h"
#include "rb/randomized_benchmarking.h"

namespace qpulse {
namespace {

class EndToEndProperty : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        config_ = new BackendConfig(almadenLineConfig(1));
        backend_ = new std::shared_ptr<const PulseBackend>(
            makeCalibratedBackend(*config_));
        calibrator_ = new Calibrator(*config_);
        sim_ = new PulseSimulator(calibrator_->qubitModel(0));
    }
    static void TearDownTestSuite()
    {
        delete sim_;
        delete calibrator_;
        delete backend_;
        delete config_;
    }

    static Matrix qubitBlock(const Matrix &u)
    {
        Matrix block(2, 2);
        for (std::size_t r = 0; r < 2; ++r)
            for (std::size_t c = 0; c < 2; ++c)
                block(r, c) = u(r, c);
        return block;
    }

    static double compiledFidelity(CompileMode mode,
                                   const QuantumCircuit &circuit)
    {
        const PulseCompiler compiler(*backend_, mode);
        const CompileResult result = compiler.compile(circuit);
        const UnitaryResult evolved =
            sim_->evolveUnitary(result.schedule);
        const Matrix effective =
            qubitBlock(sim_->effectiveUnitary(evolved));
        return averageGateFidelity(effective, circuit.unitary());
    }

    static BackendConfig *config_;
    static std::shared_ptr<const PulseBackend> *backend_;
    static Calibrator *calibrator_;
    static PulseSimulator *sim_;
};

BackendConfig *EndToEndProperty::config_ = nullptr;
std::shared_ptr<const PulseBackend> *EndToEndProperty::backend_ = nullptr;
Calibrator *EndToEndProperty::calibrator_ = nullptr;
PulseSimulator *EndToEndProperty::sim_ = nullptr;

TEST_F(EndToEndProperty, RandomProgramsCompileFaithfullyBothFlows)
{
    Rng rng(0xE2E);
    for (int trial = 0; trial < 6; ++trial) {
        QuantumCircuit circuit(1);
        const int gates = 3 + static_cast<int>(rng.uniformInt(5));
        for (int g = 0; g < gates; ++g) {
            switch (rng.uniformInt(5)) {
              case 0: circuit.h(0); break;
              case 1: circuit.rx(rng.uniform(-3, 3), 0); break;
              case 2: circuit.rz(rng.uniform(-3, 3), 0); break;
              case 3: circuit.t(0); break;
              default:
                circuit.u3(rng.uniform(0, 3), rng.uniform(-3, 3),
                           rng.uniform(-3, 3), 0);
                break;
            }
        }
        EXPECT_GT(compiledFidelity(CompileMode::Standard, circuit),
                  0.995)
            << circuit.toString();
        EXPECT_GT(compiledFidelity(CompileMode::Optimized, circuit),
                  0.995)
            << circuit.toString();
    }
}

TEST_F(EndToEndProperty, OptimizedNeverSlowerThanStandard)
{
    Rng rng(0xE2F);
    const PulseCompiler standard(*backend_, CompileMode::Standard);
    const PulseCompiler optimized(*backend_, CompileMode::Optimized);
    for (int trial = 0; trial < 6; ++trial) {
        QuantumCircuit circuit(1);
        for (int g = 0; g < 6; ++g) {
            if (rng.uniform() < 0.5)
                circuit.rx(rng.uniform(-3, 3), 0);
            else
                circuit.h(0);
        }
        EXPECT_LE(optimized.compile(circuit).durationDt,
                  standard.compile(circuit).durationDt);
    }
}

// --- Failure injection. ---

TEST_F(EndToEndProperty, MiscalibratedAmplitudeDegradesFidelity)
{
    // Corrupt the calibrated amplitude by 10%: the compiled X gate
    // must visibly degrade (and not be silently corrected).
    PulseLibrary corrupted = (*backend_)->library();
    corrupted.qubits[0].x180Amp *= 1.10;
    corrupted.qubits[0].x90Amp *= 1.10;
    const auto bad_backend =
        std::make_shared<const PulseBackend>(corrupted);
    const PulseCompiler compiler(bad_backend, CompileMode::Optimized);
    QuantumCircuit circuit(1);
    circuit.x(0);
    const CompileResult result = compiler.compile(circuit);
    const Matrix effective = qubitBlock(sim_->effectiveUnitary(
        sim_->evolveUnitary(result.schedule)));
    const double fidelity =
        averageGateFidelity(effective, gates::x());
    EXPECT_LT(fidelity, 0.995);
    EXPECT_GT(fidelity, 0.8); // Degraded, not destroyed.
}

TEST_F(EndToEndProperty, CoherentOverRotationAccumulatesWithLength)
{
    // A 2% over-rotated X90 applied K times accumulates coherent
    // error quadratically in K (worse than linear) — the failure mode
    // an RB-style experiment amplifies and detects.
    PulseLibrary corrupted = (*backend_)->library();
    corrupted.qubits[0].x90Amp *= 1.02;
    const auto bad_backend =
        std::make_shared<const PulseBackend>(corrupted);

    auto error_after = [&](int pairs) {
        Schedule schedule("seq");
        for (int k = 0; k < 2 * pairs; ++k)
            schedule.append(bad_backend->schedule(
                makeGate(GateType::X90, {0})));
        const Matrix effective = qubitBlock(sim_->effectiveUnitary(
            sim_->evolveUnitary(schedule)));
        // 2*pairs X90 pulses = `pairs` full X rotations.
        const Matrix target =
            pairs % 2 == 0 ? Matrix::identity(2) : gates::x();
        return 1.0 - averageGateFidelity(effective, target);
    };

    const double short_error = error_after(1);
    const double long_error = error_after(6);
    EXPECT_GT(long_error, 4.0 * short_error);
    EXPECT_GT(long_error, 0.005);
}

TEST_F(EndToEndProperty, UndefinedGateIsFatalNotSilent)
{
    // The 1-qubit backend has no 2q entries: requesting one must be
    // loud.
    EXPECT_THROW((*backend_)->schedule(makeGate(GateType::Cnot, {0, 1})),
                 FatalError);
}

TEST_F(EndToEndProperty, OverdrivenScaledPulseIsRejected)
{
    // Amplitude scaling beyond |d| = 1 violates the OpenPulse bound
    // and must be rejected at construction.
    auto base = std::make_shared<ConstantWaveform>(10, Complex{0.9, 0});
    EXPECT_THROW(ScaledWaveform(base, Complex{1.2, 0.0}), FatalError);
}

TEST_F(EndToEndProperty, NegativeShotCountsRejected)
{
    Rng rng(1);
    EXPECT_THROW(rng.binomial(-5, 0.5), FatalError);
}

} // namespace
} // namespace qpulse
