/**
 * @file
 * Tests for the persistent content-addressed artifact store
 * (src/store, docs/PERSISTENCE.md): canonical little-endian serde
 * round-trips, store put/flush/get with cross-process reopen, the
 * generation invalidation model (single backend recalibration and
 * fleet drain/readmit), fail-closed corruption handling (bit flips,
 * truncation, zero fill, version mismatch, index damage), the
 * PersistentPropagatorCache disk tier under the simulator shot loop,
 * the documented lock-order contract under concurrent evolve +
 * snapshot + flush, and the QPULSE_CACHE_DIR env gate.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "compile/compiler.h"
#include "device/calibration.h"
#include "device/fault_injector.h"
#include "pulsesim/simulator.h"
#include "service/backend_pool.h"
#include "service/execution_service.h"
#include "store/artifact_store.h"
#include "store/persistent_propagator_cache.h"
#include "store/serde.h"

namespace qpulse {
namespace {

namespace fs = std::filesystem;

/** Fresh unique store directory, removed on scope exit. */
struct TempDir
{
    TempDir()
    {
        static int counter = 0;
        path = fs::temp_directory_path() /
               ("qpulse-store-test-" + std::to_string(::getpid()) +
                "-" + std::to_string(counter++));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
    fs::path path;
};

/** RAII guard restoring an env var on scope exit. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (old_.has_value())
            setenv(name_, old_->c_str(), 1);
        else
            unsetenv(name_);
    }

    const char *name_;
    std::optional<std::string> old_;
};

/** Calibrated single-qubit substrate for service/fleet tests. */
struct Rig
{
    Rig()
        : config(almadenLineConfig(1)),
          backend(makeCalibratedBackend(config)),
          calibrator(config), cal(calibrator.calibrateQubit(0)),
          sim(calibrator.qubitModel(0))
    {}

    Schedule
    x180Schedule() const
    {
        Schedule schedule("x180");
        schedule.play(driveChannel(0), cal.x180Pulse());
        return schedule;
    }

    BackendConfig config;
    std::shared_ptr<const PulseBackend> backend;
    Calibrator calibrator;
    QubitCalibration cal;
    PulseSimulator sim;
};

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    double max_diff = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            max_diff = std::max(max_diff, std::abs(a(r, c) - b(r, c)));
    return max_diff;
}

std::vector<std::uint8_t>
readFile(const fs::path &path)
{
    std::FILE *in = std::fopen(path.string().c_str(), "rb");
    EXPECT_NE(in, nullptr) << path;
    std::fseek(in, 0, SEEK_END);
    const long size = std::ftell(in);
    std::fseek(in, 0, SEEK_SET);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), in),
              bytes.size());
    std::fclose(in);
    return bytes;
}

void
writeFile(const fs::path &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *out = std::fopen(path.string().c_str(), "wb");
    ASSERT_NE(out, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out),
              bytes.size());
    std::fclose(out);
}

/** The first segment file in `dir` (there must be exactly >= 1). */
fs::path
firstSegment(const std::string &dir)
{
    std::vector<fs::path> segments;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".qps")
            segments.push_back(entry.path());
    EXPECT_FALSE(segments.empty());
    std::sort(segments.begin(), segments.end());
    return segments.front();
}

store::ArtifactKey
testKey(std::uint64_t content = 0xABCDu)
{
    store::ArtifactKey key;
    key.contentHash = content;
    key.generation = 7;
    key.configFingerprint = 42;
    key.kind = static_cast<std::uint32_t>(
        store::ArtifactKind::PropagatorBlock);
    return key;
}

// ------------------------------------------------------------------
// Serde: canonical little-endian encoding and exact round-trips.
// ------------------------------------------------------------------

TEST(Serde, GoldenLittleEndianEncoding)
{
    store::ByteWriter w;
    w.u32(0x11223344u);
    w.u64(0x0102030405060708ull);
    w.f64(1.0); // IEEE-754: 0x3FF0000000000000.
    const std::vector<std::uint8_t> expected = {
        0x44, 0x33, 0x22, 0x11, // u32, little-endian
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // u64
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F, // f64 1.0
    };
    EXPECT_EQ(w.bytes(), expected);

    store::ByteReader r(expected.data(), expected.size());
    std::uint32_t a = 0;
    std::uint64_t b = 0;
    double c = 0.0;
    ASSERT_TRUE(r.u32(a).ok());
    ASSERT_TRUE(r.u64(b).ok());
    ASSERT_TRUE(r.f64(c).ok());
    EXPECT_EQ(a, 0x11223344u);
    EXPECT_EQ(b, 0x0102030405060708ull);
    EXPECT_EQ(c, 1.0);
    EXPECT_TRUE(r.exhausted());

    // A short buffer is a structured failure, never UB.
    store::ByteReader short_reader(expected.data(), 3);
    std::uint32_t d = 0;
    EXPECT_EQ(short_reader.u32(d).code(), ErrorCode::StoreCorrupt);
}

TEST(Serde, MatrixRoundTripsBitIdentically)
{
    Matrix m(5, 3);
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            m(r, c) = Complex(0.1 * static_cast<double>(r) - 1.0 / 3.0,
                              -0.7 * static_cast<double>(c) + 1e-13);

    store::ByteWriter w;
    store::serializeMatrix(m, w);
    const std::vector<std::uint8_t> bytes = w.take();

    store::ByteReader r(bytes.data(), bytes.size());
    Matrix out;
    ASSERT_TRUE(store::deserializeMatrix(r, out).ok());
    ASSERT_EQ(out.rows(), m.rows());
    ASSERT_EQ(out.cols(), m.cols());
    for (std::size_t row = 0; row < m.rows(); ++row)
        for (std::size_t col = 0; col < m.cols(); ++col)
            EXPECT_EQ(out(row, col), m(row, col)); // Exact, not approx.

    // Truncated payload: structured corrupt, not a crash.
    store::ByteReader trunc(bytes.data(), bytes.size() - 5);
    Matrix bad;
    EXPECT_EQ(store::deserializeMatrix(trunc, bad).code(),
              ErrorCode::StoreCorrupt);
}

TEST(Serde, PropagatorKeyRoundTrips)
{
    PropagatorKey key;
    key.words = {1, -2, 1LL << 60, -(1LL << 60), 0};
    store::ByteWriter w;
    store::serializePropagatorKey(key, w);
    const std::vector<std::uint8_t> bytes = w.take();
    store::ByteReader r(bytes.data(), bytes.size());
    PropagatorKey out;
    ASSERT_TRUE(store::deserializePropagatorKey(r, out).ok());
    EXPECT_TRUE(out == key);
}

TEST(Serde, OverflowingDimensionsFailClosed)
{
    // rows*cols wraps u64 (2^33 * 2^33 = 2^66 = 0 mod 2^64): the
    // division-based guard must reject the shape before any
    // allocation or a rows()/cols()-vs-storage mismatch.
    store::ByteWriter w;
    w.u64(1ull << 33);
    w.u64(1ull << 33);
    w.f64(0.0); // A few payload bytes, far short of the claim.
    const std::vector<std::uint8_t> bytes = w.take();
    store::ByteReader r(bytes.data(), bytes.size());
    Matrix out;
    EXPECT_EQ(store::deserializeMatrix(r, out).code(),
              ErrorCode::StoreCorrupt);

    // A word count near 2^64 must not wrap the byte-total bound
    // inside the bulk array read either.
    store::ByteWriter kw;
    kw.u64(~0ull - 3);
    kw.u64(0);
    const std::vector<std::uint8_t> kb = kw.take();
    store::ByteReader kr(kb.data(), kb.size());
    PropagatorKey key;
    EXPECT_EQ(store::deserializePropagatorKey(kr, key).code(),
              ErrorCode::StoreCorrupt);
}

TEST(Serde, ScheduleRoundTripsAndHashIsContentSensitive)
{
    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    Calibrator calibrator(config);
    const Schedule cnot =
        backend->schedule(makeGate(GateType::Cnot, {0, 1}));

    store::ByteWriter w;
    store::serializeSchedule(cnot, w);
    const std::vector<std::uint8_t> bytes = w.take();
    store::ByteReader r(bytes.data(), bytes.size());
    Schedule loaded;
    ASSERT_TRUE(store::deserializeSchedule(r, loaded).ok());

    // The loaded schedule carries sampled waveforms whose samples are
    // bit-identical, so the content hash is unchanged...
    EXPECT_EQ(store::hashSchedule(loaded), store::hashSchedule(cnot));

    // ...and so is the physics it drives, to the repo-wide budget.
    PulseSimulator sim = calibrator.pairSimulator(0, 1);
    const Matrix u_orig = sim.effectiveUnitary(sim.evolveUnitary(cnot));
    const Matrix u_load =
        sim.effectiveUnitary(sim.evolveUnitary(loaded));
    EXPECT_LE(maxAbsDiff(u_orig, u_load), 1e-12);

    // Any content change reroutes the hash.
    Schedule shifted = cnot;
    shifted.shiftPhase(driveChannel(0), 1e-9);
    EXPECT_NE(store::hashSchedule(shifted), store::hashSchedule(cnot));
}

TEST(Serde, PulseLibraryRoundTrips)
{
    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    const PulseLibrary &library = backend->library();

    store::ByteWriter w;
    store::serializePulseLibrary(library, w);
    const std::vector<std::uint8_t> bytes = w.take();
    store::ByteReader r(bytes.data(), bytes.size());
    PulseLibrary loaded;
    ASSERT_TRUE(store::deserializePulseLibrary(r, loaded).ok());

    EXPECT_EQ(loaded.config.name, library.config.name);
    EXPECT_EQ(loaded.qubits.size(), library.qubits.size());
    EXPECT_EQ(loaded.crs.size(), library.crs.size());
    EXPECT_EQ(store::hashPulseLibrary(loaded),
              store::hashPulseLibrary(library));
}

// ------------------------------------------------------------------
// ArtifactStore: round-trips, reopen, invalidation, size budget.
// ------------------------------------------------------------------

TEST(ArtifactStore, PutFlushGetAndCrossProcessReopen)
{
    TempDir dir;
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
    const store::ArtifactKey key = testKey();

    {
        Status status;
        auto store = store::ArtifactStore::open(dir.str(), 1 << 20,
                                                &status);
        ASSERT_NE(store, nullptr) << status.toString();
        ASSERT_TRUE(store->put(key, payload).ok());
        // Not yet flushed: not addressable.
        EXPECT_FALSE(store->contains(key));
        ASSERT_TRUE(store->flush().ok());
        EXPECT_TRUE(store->contains(key));
        store::ArtifactView view;
        ASSERT_TRUE(store->get(key, view).ok());
        ASSERT_EQ(view.size, payload.size());
        EXPECT_EQ(std::vector<std::uint8_t>(view.data,
                                            view.data + view.size),
                  payload);
        EXPECT_EQ(store->stats().hits, 1u);
    } // "Process" exits.

    // A fresh open over the same directory serves the same bytes.
    auto reopened = store::ArtifactStore::open(dir.str(), 1 << 20);
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->size(), 1u);
    store::ArtifactView view;
    ASSERT_TRUE(reopened->get(key, view).ok());
    ASSERT_EQ(view.size, payload.size());
    EXPECT_EQ(
        std::vector<std::uint8_t>(view.data, view.data + view.size),
        payload);

    // A different generation is simply unreachable.
    store::ArtifactKey other = key;
    other.generation += 1;
    store::ArtifactView missing;
    EXPECT_FALSE(reopened->get(other, missing).ok());
    EXPECT_EQ(reopened->stats().misses, 1u);
}

TEST(ArtifactStore, MissingIndexIsRebuiltByScan)
{
    TempDir dir;
    const store::ArtifactKey key = testKey();
    {
        auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
        ASSERT_NE(store, nullptr);
        ASSERT_TRUE(store->put(key, {9, 9, 9}).ok());
        ASSERT_TRUE(store->flush().ok());
    }
    ASSERT_TRUE(fs::remove(dir.path / "index.qpi"));

    auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
    ASSERT_NE(store, nullptr);
    store::ArtifactView view;
    ASSERT_TRUE(store->get(key, view).ok());
    EXPECT_EQ(view.size, 3u);
}

TEST(ArtifactStore, CorruptIndexFallsBackToScan)
{
    TempDir dir;
    const store::ArtifactKey key = testKey();
    {
        auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
        ASSERT_NE(store, nullptr);
        ASSERT_TRUE(store->put(key, {5, 5}).ok());
        ASSERT_TRUE(store->flush().ok());
    }
    auto bytes = readFile(dir.path / "index.qpi");
    ASSERT_GT(bytes.size(), 10u);
    bytes[bytes.size() / 2] ^= 0xFF;
    writeFile(dir.path / "index.qpi", bytes);

    auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
    ASSERT_NE(store, nullptr);
    store::ArtifactView view;
    ASSERT_TRUE(store->get(key, view).ok());
    EXPECT_EQ(view.size, 2u);
}

TEST(ArtifactStore, BitFlippedRecordFailsClosedForever)
{
    TempDir dir;
    const store::ArtifactKey key = testKey();
    {
        auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
        ASSERT_NE(store, nullptr);
        ASSERT_TRUE(store->put(key, {1, 2, 3, 4, 5, 6, 7, 8}).ok());
        ASSERT_TRUE(store->flush().ok());
    }
    const fs::path segment = firstSegment(dir.str());
    auto bytes = readFile(segment);
    // Flip one payload byte (the header stays intact, so the record
    // still frames — the CRC must catch it on first validation).
    bytes[48 + 3] ^= 0x40;
    writeFile(segment, bytes);

    auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
    ASSERT_NE(store, nullptr);
    store::ArtifactView view;
    EXPECT_EQ(store->get(key, view).code(), ErrorCode::StoreCorrupt);
    // Quarantined: the second get fails the same way without
    // re-reading a byte — the record is never trusted again.
    EXPECT_EQ(store->get(key, view).code(), ErrorCode::StoreCorrupt);
    EXPECT_GE(store->stats().corrupt, 1u);
    EXPECT_GE(store->stats().quarantined, 1u);
}

TEST(ArtifactStore, TruncatedSegmentKeepsOnlyThePrefix)
{
    TempDir dir;
    const store::ArtifactKey first = testKey(1);
    const store::ArtifactKey second = testKey(2);
    {
        auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
        ASSERT_NE(store, nullptr);
        ASSERT_TRUE(store->put(first, {1, 1, 1, 1}).ok());
        ASSERT_TRUE(store->put(second, {2, 2, 2, 2}).ok());
        ASSERT_TRUE(store->flush().ok());
    }
    const fs::path segment = firstSegment(dir.str());
    auto bytes = readFile(segment);
    bytes.resize(bytes.size() - 6); // Chop into the last record.
    writeFile(segment, bytes);
    // Drop the index so the reopen takes the segment-scan path (the
    // index path simply rejects the out-of-bounds entry).
    ASSERT_TRUE(fs::remove(dir.path / "index.qpi"));

    auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
    ASSERT_NE(store, nullptr);
    store::ArtifactView view;
    ASSERT_TRUE(store->get(first, view).ok());
    EXPECT_EQ(view.size, 4u);
    EXPECT_FALSE(store->get(second, view).ok()); // Structured, no crash.
    EXPECT_GE(store->stats().quarantined, 1u);
}

TEST(ArtifactStore, ZeroFilledSegmentServesNothing)
{
    TempDir dir;
    const store::ArtifactKey key = testKey();
    {
        auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
        ASSERT_NE(store, nullptr);
        ASSERT_TRUE(store->put(key, {1, 2, 3}).ok());
        ASSERT_TRUE(store->flush().ok());
    }
    const fs::path segment = firstSegment(dir.str());
    writeFile(segment,
              std::vector<std::uint8_t>(readFile(segment).size(), 0));
    ASSERT_TRUE(fs::remove(dir.path / "index.qpi"));

    auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
    ASSERT_NE(store, nullptr);
    store::ArtifactView view;
    EXPECT_FALSE(store->get(key, view).ok());
    EXPECT_EQ(store->size(), 0u);
}

TEST(ArtifactStore, ForeignFormatVersionIsVersionMismatch)
{
    TempDir dir;
    const store::ArtifactKey key = testKey();

    // Hand-craft a well-formed record written by a "future" layout:
    // correct framing and CRC, format version bumped.
    store::ByteWriter w;
    w.u32(0x52535051u); // Record magic "QPSR".
    w.u32(store::kFormatVersion + 17);
    w.u32(key.kind);
    w.u32(0);
    w.u64(key.contentHash);
    w.u64(key.generation);
    w.u64(key.configFingerprint);
    const std::vector<std::uint8_t> payload = {1, 2, 3};
    w.u64(payload.size());
    w.raw(payload.data(), payload.size());
    w.u64(store::crc64(w.bytes().data(), w.size()));
    writeFile(dir.path / "seg-000001-1.qps", w.bytes());

    auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
    ASSERT_NE(store, nullptr);
    store::ArtifactView view;
    EXPECT_EQ(store->get(key, view).code(),
              ErrorCode::StoreVersionMismatch);
    EXPECT_GE(store->stats().versionMismatch, 1u);
}

TEST(ArtifactStore, SizeBudgetDropsOldestSegments)
{
    TempDir dir;
    // Budget of ~2 small segments; 6 flushes of 1 KiB payloads.
    auto store = store::ArtifactStore::open(dir.str(), 3000);
    ASSERT_NE(store, nullptr);
    std::vector<std::uint8_t> payload(1024, 0x5A);
    for (std::uint64_t k = 0; k < 6; ++k) {
        ASSERT_TRUE(store->put(testKey(1000 + k), payload).ok());
        ASSERT_TRUE(store->flush().ok());
    }
    EXPECT_GT(store->stats().segmentsDropped, 0u);
    EXPECT_LE(store->diskBytes(), 3000u);
    // The newest artifact always survives the budget.
    store::ArtifactView view;
    ASSERT_TRUE(store->get(testKey(1005), view).ok());
    // The oldest was reclaimed.
    EXPECT_FALSE(store->get(testKey(1000), view).ok());
}

TEST(ArtifactStore, WrappingRecordLengthTerminatesTheScan)
{
    TempDir dir;
    const store::ArtifactKey key = testKey();
    // Frame a record claiming a payload of 2^64-56 bytes: the total
    // record span (header + payload + trailer) wraps u64 to exactly
    // 0. open() must quarantine the damage and terminate — an
    // unbounded span check would pass and the scan would never
    // advance past the record.
    store::ByteWriter w;
    w.u32(0x52535051u); // Record magic "QPSR".
    w.u32(store::kFormatVersion);
    w.u32(key.kind);
    w.u32(0);
    w.u64(key.contentHash);
    w.u64(key.generation);
    w.u64(key.configFingerprint);
    w.u64(~0ull - 55); // payloadBytes = 2^64 - 56.
    w.u64(0xDEADBEEFu); // Trailing bytes the scan would spin on.
    writeFile(dir.path / "seg-000001-1.qps", w.bytes());

    auto store = store::ArtifactStore::open(dir.str(), 1 << 20);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->size(), 0u);
    store::ArtifactView view;
    EXPECT_FALSE(store->get(key, view).ok());
    EXPECT_GE(store->stats().quarantined, 1u);
}

TEST(ArtifactStore, ViewOutlivesBudgetDropAndStoreDestruction)
{
    TempDir dir;
    const std::vector<std::uint8_t> payload(1024, 0xA5);
    store::ArtifactView view;
    {
        auto store = store::ArtifactStore::open(dir.str(), 3000);
        ASSERT_NE(store, nullptr);
        ASSERT_TRUE(store->put(testKey(1), payload).ok());
        ASSERT_TRUE(store->flush().ok());
        ASSERT_TRUE(store->get(testKey(1), view).ok());

        // Flush until the size budget drops the segment the view
        // points into.
        for (std::uint64_t k = 2; k < 8; ++k) {
            ASSERT_TRUE(store->put(testKey(k), payload).ok());
            ASSERT_TRUE(store->flush().ok());
        }
        store::ArtifactView gone;
        ASSERT_FALSE(store->get(testKey(1), gone).ok());

        // The pinned bytes are still mapped and intact (ASan-checked).
        ASSERT_EQ(view.size, payload.size());
        EXPECT_EQ(std::vector<std::uint8_t>(view.data,
                                            view.data + view.size),
                  payload);
    } // Store destroyed; the view alone keeps the mapping alive.
    EXPECT_EQ(
        std::vector<std::uint8_t>(view.data, view.data + view.size),
        payload);
}

/**
 * The use-after-munmap regression (run under ASan in CI): a reader
 * consumes views with no store lock held while a writer's flushes
 * evict the segment being read. Before views pinned their mappings,
 * enforceBudget()'s munmap could yank the bytes out from under the
 * reader mid-consumption.
 */
TEST(ArtifactStore, ConcurrentReadsSurviveBudgetEviction)
{
    TempDir dir;
    auto store = store::ArtifactStore::open(dir.str(), 3000);
    ASSERT_NE(store, nullptr);
    const std::vector<std::uint8_t> payload(1024, 0x3C);
    ASSERT_TRUE(store->put(testKey(0), payload).ok());
    ASSERT_TRUE(store->flush().ok());

    std::atomic<bool> stop{false};
    std::thread reader([&store, &stop] {
        while (!stop.load()) {
            store::ArtifactView view;
            if (!store->get(testKey(0), view).ok())
                continue; // Evicted: later gets simply miss.
            std::uint32_t sum = 0;
            for (std::size_t i = 0; i < view.size; ++i)
                sum += view.data[i];
            EXPECT_EQ(sum, 0x3Cu * 1024u);
        }
    });
    for (std::uint64_t k = 1; k <= 32; ++k) {
        ASSERT_TRUE(store->put(testKey(k), payload).ok());
        ASSERT_TRUE(store->flush().ok());
    }
    stop.store(true);
    reader.join();
}

TEST(ArtifactStore, TwoWritersOneDirectoryKeepAllRecordsAddressable)
{
    TempDir dir;
    // Two stores (standing in for two processes) open the same empty
    // directory, so both compute segment sequence number 1.
    auto a = store::ArtifactStore::open(dir.str(), 1 << 20);
    auto b = store::ArtifactStore::open(dir.str(), 1 << 20);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(a->put(testKey(1), {0xAA}).ok());
    ASSERT_TRUE(a->flush().ok());
    ASSERT_TRUE(b->put(testKey(2), {0xBB}).ok());
    ASSERT_TRUE(b->flush().ok());

    // Distinct writer tags: neither rename clobbered the other.
    std::size_t segment_files = 0;
    for (const auto &entry : fs::directory_iterator(dir.str()))
        segment_files += entry.path().extension() == ".qps";
    EXPECT_EQ(segment_files, 2u);

    // A fresh open serves BOTH writers' records: same-sequence
    // segments must not alias in the index, and the writer that lost
    // the last-writer-wins index race is healed by segment scan.
    auto c = store::ArtifactStore::open(dir.str(), 1 << 20);
    ASSERT_NE(c, nullptr);
    store::ArtifactView view;
    ASSERT_TRUE(c->get(testKey(1), view).ok());
    ASSERT_EQ(view.size, 1u);
    EXPECT_EQ(view.data[0], 0xAA);
    ASSERT_TRUE(c->get(testKey(2), view).ok());
    ASSERT_EQ(view.size, 1u);
    EXPECT_EQ(view.data[0], 0xBB);
    EXPECT_EQ(c->stats().corrupt, 0u);
    EXPECT_EQ(c->stats().quarantined, 0u);
}

TEST(ArtifactStore, EnvGateOffMeansNoStore)
{
    EnvGuard dir_guard("QPULSE_CACHE_DIR", nullptr);
    EXPECT_EQ(store::ArtifactStore::openFromEnv(), nullptr);

    EnvGuard empty_guard("QPULSE_CACHE_DIR", "");
    EXPECT_EQ(store::ArtifactStore::openFromEnv(), nullptr);
}

// ------------------------------------------------------------------
// PersistentPropagatorCache: disk tier under the shot loop.
// ------------------------------------------------------------------

TEST(PersistentCache, ColdProcessServesFromDiskBitIdentically)
{
    TempDir dir;
    const Rig rig;
    const Schedule schedule = rig.x180Schedule();
    const std::uint64_t generation = rig.sim.basisVersion();
    const std::uint64_t fingerprint =
        store::simConfigFingerprint(rig.sim);

    PulseShotOptions opts;
    opts.shots = 64;
    opts.seed = 0xC0FFEE;
    opts.maxThreads = 1;

    // Fresh derivation, no persistence: the reference result.
    const PulseShotResult fresh =
        rig.backend->runShots(rig.sim, schedule, opts);

    // "Process 1": derive, write back, flush, exit.
    {
        auto store = store::ArtifactStore::open(dir.str(), 64 << 20);
        ASSERT_NE(store, nullptr);
        auto cache =
            std::make_shared<store::PersistentPropagatorCache>(
                store, generation, fingerprint);
        opts.cache = cache;
        const PulseShotResult warm =
            rig.backend->runShots(rig.sim, schedule, opts);
        EXPECT_EQ(warm.counts, fresh.counts);
        const store::PersistStats stats = cache->persistStats();
        EXPECT_EQ(stats.diskHits, 0u);
        EXPECT_GT(stats.writeBacks, 0u);
        ASSERT_TRUE(cache->flush().ok());
        EXPECT_GT(store->stats().puts, 0u);
    }

    // "Process 2": a cold memory tier over the same directory must
    // serve from disk, bit-identical to fresh derivation.
    auto store = store::ArtifactStore::open(dir.str(), 64 << 20);
    ASSERT_NE(store, nullptr);
    auto cache = std::make_shared<store::PersistentPropagatorCache>(
        store, generation, fingerprint);
    opts.cache = cache;
    const PulseShotResult served =
        rig.backend->runShots(rig.sim, schedule, opts);
    const store::PersistStats stats = cache->persistStats();
    EXPECT_GT(stats.diskHits, 0u);
    EXPECT_EQ(stats.fallbacks, 0u);
    EXPECT_EQ(served.counts, fresh.counts);
    ASSERT_EQ(served.populations.size(), fresh.populations.size());
    for (std::size_t k = 0; k < fresh.populations.size(); ++k)
        EXPECT_LE(std::abs(served.populations[k] -
                           fresh.populations[k]),
                  1e-12);
}

TEST(PersistentCache, GenerationBumpMakesDiskRecordsUnreachable)
{
    TempDir dir;
    const Rig rig;
    const Schedule schedule = rig.x180Schedule();
    auto store = store::ArtifactStore::open(dir.str(), 64 << 20);
    ASSERT_NE(store, nullptr);
    auto cache = std::make_shared<store::PersistentPropagatorCache>(
        store, /*generation=*/1,
        store::simConfigFingerprint(rig.sim));

    PulseShotOptions opts;
    opts.shots = 32;
    opts.seed = 0xFEED;
    opts.maxThreads = 1;
    opts.cache = cache;

    (void)rig.backend->runShots(rig.sim, schedule, opts);
    ASSERT_TRUE(cache->flush().ok());
    const std::size_t persisted = store->size();
    ASSERT_GT(persisted, 0u);

    // Invalidate: the memory tier clears, the disk keys reroute.
    cache->setGeneration(2);
    EXPECT_EQ(cache->generation(), 2u);
    const store::PersistStats before = cache->persistStats();
    (void)rig.backend->runShots(rig.sim, schedule, opts);
    const store::PersistStats after = cache->persistStats();
    EXPECT_EQ(after.diskHits, before.diskHits); // Zero new disk hits.
    EXPECT_GT(after.writeBacks, before.writeBacks); // Re-derived.

    // The re-derivation repopulates the store under the new key.
    ASSERT_TRUE(cache->flush().ok());
    EXPECT_GT(store->size(), persisted);
}

TEST(PersistentCache, CorruptRecordsFallBackToDerivation)
{
    TempDir dir;
    const Rig rig;
    const Schedule schedule = rig.x180Schedule();
    const std::uint64_t generation = rig.sim.basisVersion();
    const std::uint64_t fingerprint =
        store::simConfigFingerprint(rig.sim);

    PulseShotOptions opts;
    opts.shots = 48;
    opts.seed = 0xBADC0DE;
    opts.maxThreads = 1;

    const PulseShotResult fresh =
        rig.backend->runShots(rig.sim, schedule, opts);

    {
        auto store = store::ArtifactStore::open(dir.str(), 64 << 20);
        ASSERT_NE(store, nullptr);
        auto cache =
            std::make_shared<store::PersistentPropagatorCache>(
                store, generation, fingerprint);
        opts.cache = cache;
        (void)rig.backend->runShots(rig.sim, schedule, opts);
        ASSERT_TRUE(cache->flush().ok());
    }

    // Flip a byte in the middle of every record's payload region.
    const fs::path segment = firstSegment(dir.str());
    auto bytes = readFile(segment);
    for (std::size_t off = 60; off < bytes.size(); off += 97)
        bytes[off] ^= 0x01;
    writeFile(segment, bytes);

    auto store = store::ArtifactStore::open(dir.str(), 64 << 20);
    ASSERT_NE(store, nullptr);
    auto cache = std::make_shared<store::PersistentPropagatorCache>(
        store, generation, fingerprint);
    opts.cache = cache;
    const PulseShotResult served =
        rig.backend->runShots(rig.sim, schedule, opts);

    // Whatever mix of quarantines and misses the flips produced, the
    // run must succeed, fall back on every damaged record, and agree
    // with fresh derivation bit-for-bit on the counts.
    const store::PersistStats stats = cache->persistStats();
    EXPECT_GT(stats.fallbacks + stats.diskMisses, 0u);
    EXPECT_EQ(served.counts, fresh.counts);
    ASSERT_EQ(served.populations.size(), fresh.populations.size());
    for (std::size_t k = 0; k < fresh.populations.size(); ++k)
        EXPECT_LE(std::abs(served.populations[k] -
                           fresh.populations[k]),
                  1e-12);
}

/**
 * Lock-order regression (run under TSan in CI): concurrent evolve
 * traffic through getOrCompute, a snapshot thread taking the
 * documented LRU-then-persist sequence, and a flush thread draining
 * the write-back queue. The contract in propagator_cache.h says both
 * mutexes are leaf locks — any nesting regression deadlocks or races
 * here.
 */
TEST(PersistentCache, ConcurrentEvolveSnapshotAndFlushAreClean)
{
    TempDir dir;
    auto store = store::ArtifactStore::open(dir.str(), 64 << 20);
    ASSERT_NE(store, nullptr);
    auto cache = std::make_shared<store::PersistentPropagatorCache>(
        store, /*generation=*/3, /*config_fingerprint=*/9,
        /*capacity=*/128);

    constexpr int kWorkers = 4;
    constexpr int kIterations = 400;
    std::vector<std::thread> threads;
    for (int t = 0; t < kWorkers; ++t) {
        threads.emplace_back([&cache, t] {
            for (int i = 0; i < kIterations; ++i) {
                PropagatorKey key;
                key.words = {t, i % 64, (t * 7 + i) % 16};
                Matrix value = cache->getOrCompute(key, [&] {
                    Matrix m(2, 2);
                    m(0, 0) = Complex(t, i);
                    m(1, 1) = Complex(i, -t);
                    return m;
                });
                ASSERT_EQ(value.rows(), 2u);
            }
        });
    }
    threads.emplace_back([&cache] {
        for (int i = 0; i < 50; ++i)
            (void)cache->snapshotAndResetAll();
    });
    threads.emplace_back([&cache] {
        for (int i = 0; i < 50; ++i)
            (void)cache->flush();
    });
    for (std::thread &thread : threads)
        thread.join();
    ASSERT_TRUE(cache->flush().ok());
    EXPECT_GT(store->size(), 0u);
}

// ------------------------------------------------------------------
// Service and fleet wiring: env gate, invalidation on recalibration
// and drain/readmit.
// ------------------------------------------------------------------

JobRequest
x180Job(const Rig &rig, long shots = 64)
{
    JobRequest request;
    request.schedule = rig.x180Schedule();
    request.key = "x180";
    request.shots = shots;
    request.seed = 0xA11CE;
    return request;
}

TEST(ServicePersistence, OffByDefaultAndOnViaEnv)
{
    const Rig rig;
    {
        EnvGuard guard("QPULSE_CACHE_DIR", nullptr);
        ExecutionService service(rig.backend, rig.sim);
        EXPECT_EQ(service.persistentCache(), nullptr);
        EXPECT_EQ(service.artifactStore(), nullptr);
        EXPECT_TRUE(service.flushPersistence().ok());
    }
    TempDir dir;
    EnvGuard guard("QPULSE_CACHE_DIR", dir.str().c_str());
    ExecutionService service(rig.backend, rig.sim);
    ASSERT_NE(service.persistentCache(), nullptr);
    ASSERT_NE(service.artifactStore(), nullptr);

    ASSERT_TRUE(service.submit(x180Job(rig)).ok());
    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].status.ok())
        << outcomes[0].status.toString();
    // drain() flushed: the store holds the derived propagators.
    EXPECT_GT(service.artifactStore()->stats().puts, 0u);
    EXPECT_GT(service.artifactStore()->size(), 0u);

    // A second service ("new process") over the same directory serves
    // the same job from disk.
    ExecutionService second(rig.backend, rig.sim);
    ASSERT_NE(second.persistentCache(), nullptr);
    ASSERT_TRUE(second.submit(x180Job(rig)).ok());
    const std::vector<JobOutcome> again = second.drain();
    ASSERT_EQ(again.size(), 1u);
    EXPECT_TRUE(again[0].status.ok());
    EXPECT_GT(second.persistentCache()->persistStats().diskHits, 0u);
    EXPECT_EQ(again[0].execution.result.counts,
              outcomes[0].execution.result.counts);
}

TEST(ServicePersistence, WatchdogRecalibrationBumpsGeneration)
{
    TempDir dir;
    EnvGuard guard("QPULSE_CACHE_DIR", dir.str().c_str());
    const Rig rig;

    ServicePolicy policy;
    policy.watchdog.tolerance = 0.1;
    policy.watchdog.maxRecalibrations = 2;
    ExecutionService service(rig.backend, rig.sim, policy);
    ASSERT_NE(service.persistentCache(), nullptr);
    const std::uint64_t gen0 =
        service.persistentCache()->generation();

    FaultPlan plan;
    plan.driftRate = 1.0;
    plan.driftFreqKhz = 8000.0;
    plan.driftAmpError = 0.3;
    service.setFaultInjector(std::make_shared<FaultInjector>(plan));
    int hook_calls = 0;
    service.setRecalibrationHook([&hook_calls] { ++hook_calls; });

    ASSERT_TRUE(service.submit(x180Job(rig, /*shots=*/512)).ok());
    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].status.ok())
        << outcomes[0].status.toString();
    EXPECT_EQ(outcomes[0].execution.stats.recalibrations, 1);
    // The recalibration retired the generation AND ran the user hook.
    EXPECT_NE(service.persistentCache()->generation(), gen0);
    EXPECT_EQ(hook_calls, 1);
}

TEST(FleetPersistence, DrainReadmitInvalidatesPerMember)
{
    TempDir dir;
    const Rig rig;
    auto store = store::ArtifactStore::open(dir.str(), 64 << 20);
    ASSERT_NE(store, nullptr);

    BackendPool::Policies policies;
    policies.artifactStore = store;
    BackendPool pool(policies);
    pool.addBackend("b0", rig.backend, rig.sim);
    pool.addBackend("b1", rig.backend, rig.sim);
    const auto cache_b0 = pool.persistentCache("b0");
    const auto cache_b1 = pool.persistentCache("b1");
    ASSERT_NE(cache_b0, nullptr);
    ASSERT_NE(cache_b1, nullptr);
    // Per-member generations differ even for identical calibrations:
    // the member name is part of the key.
    EXPECT_NE(cache_b0->generation(), cache_b1->generation());

    ResilientRequest request;
    request.schedule = rig.x180Schedule();
    PulseShotOptions opts;
    opts.shots = 32;
    opts.seed = 0xF1EE7;
    opts.maxThreads = 1;

    // Populate b0's artifacts and flush.
    ASSERT_TRUE(pool.runOn("b0", request, opts).outcome.status.ok());
    ASSERT_TRUE(pool.flushPersistence().ok());
    const std::size_t persisted = store->size();
    ASSERT_GT(persisted, 0u);

    // A cold pool over the same store serves b0 from disk.
    BackendPool::Policies policies2;
    policies2.artifactStore = store;
    BackendPool second(policies2);
    second.addBackend("b0", rig.backend, rig.sim);
    ASSERT_TRUE(
        second.runOn("b0", request, opts).outcome.status.ok());
    EXPECT_GT(
        second.persistentCache("b0")->persistStats().diskHits, 0u);

    // Drain/readmit recalibrates: generation bumps, old disk records
    // become unreachable, re-derivation repopulates under a new key.
    const std::uint64_t gen_before =
        second.persistentCache("b0")->generation();
    ASSERT_TRUE(second.beginDrain("b0").ok());
    ASSERT_TRUE(second.readmit("b0").ok());
    EXPECT_NE(second.persistentCache("b0")->generation(), gen_before);

    const store::PersistStats before =
        second.persistentCache("b0")->persistStats();
    ASSERT_TRUE(
        second.runOn("b0", request, opts).outcome.status.ok());
    const store::PersistStats after =
        second.persistentCache("b0")->persistStats();
    EXPECT_EQ(after.diskHits, before.diskHits); // Disk hits at zero.
    EXPECT_GT(after.writeBacks, before.writeBacks);
    ASSERT_TRUE(second.flushPersistence().ok());
    EXPECT_GT(store->size(), persisted);
}

TEST(FleetPersistence, EnvGatedFleetServiceRoundTrips)
{
    TempDir dir;
    EnvGuard guard("QPULSE_CACHE_DIR", dir.str().c_str());
    const Rig rig;

    auto pool = std::make_shared<BackendPool>();
    pool->addBackend("b0", rig.backend, rig.sim);
    ASSERT_NE(pool->artifactStore(), nullptr);
    ExecutionService service(pool);
    ASSERT_NE(service.artifactStore(), nullptr);

    JobRequest job = x180Job(rig);
    ASSERT_TRUE(service.submit(job).ok());
    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].status.ok())
        << outcomes[0].status.toString();
    // drain() flushed through the pool.
    EXPECT_GT(pool->artifactStore()->size(), 0u);
}

} // namespace
} // namespace qpulse
