/**
 * @file
 * Batched state-evolution tests (ctest label: batch): the SoA panel
 * primitives, evolveStatesBatched / evolveLindbladBatched agreement
 * with the looped per-state paths to 1e-12 across batch widths and
 * SIMD dispatch tiers, panel-width-aware workspace reuse (via a
 * counting global allocator), and the batched runShots contract —
 * counts invariant across batch widths and thread counts, exactly one
 * schedule validation per run, and unchanged partial / cancellation
 * semantics under virtual time.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <optional>
#include <string>

#include "common/cancellation.h"
#include "common/constants.h"
#include "common/rng.h"
#include "compile/compiler.h"
#include "device/calibration.h"
#include "device/pulse_backend.h"
#include "linalg/simd.h"
#include "linalg/state_panel.h"
#include "linalg/workspace.h"
#include "pulsesim/simulator.h"
#include "telemetry/metrics.h"

// ---------------------------------------------------------------------
// Counting allocator: every heap allocation in this binary bumps the
// counter, so tests can assert a code region is heap-silent.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size ? size : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

// The replaced operator new above allocates with std::malloc, so
// releasing with std::free is correct; GCC cannot see the pairing.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace qpulse {
namespace {

std::uint64_t
allocCount()
{
    return g_alloc_count.load(std::memory_order_relaxed);
}

/** Restores the dispatch mode active at construction. */
class ScopedSimdMode
{
  public:
    explicit ScopedSimdMode(kernels::SimdMode mode)
        : saved_(kernels::activeSimd())
    {
        kernels::setActiveSimd(mode);
    }
    ~ScopedSimdMode() { kernels::setActiveSimd(saved_); }

  private:
    kernels::SimdMode saved_;
};

/** RAII guard restoring an env var on scope exit. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (old_.has_value())
            setenv(name_, old_->c_str(), 1);
        else
            unsetenv(name_);
    }
    const char *name_;
    std::optional<std::string> old_;
};

TransmonParams
testQubit()
{
    TransmonParams params;
    params.frequencyGhz = 5.0;
    params.anharmonicityGhz = -0.33;
    params.driveStrengthGhz = 0.25;
    return params;
}

/** The Gaussian amplitude rotating the test qubit by pi in 160 dt. */
constexpr double kPiAmp = 0.0941;

double
maxAbsDiff(const Vector &a, const Vector &b)
{
    double worst = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k)
        worst = std::max(worst, std::abs(a[k] - b[k]));
    return worst;
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    double worst = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            worst = std::max(worst, std::abs(a(r, c) - b(r, c)));
    return worst;
}

/** A normalized pseudo-random state vector. */
Vector
randomState(std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    Vector psi(dim);
    double norm2 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
        psi[i] = Complex{rng.uniform(-1.0, 1.0),
                         rng.uniform(-1.0, 1.0)};
        norm2 += std::norm(psi[i]);
    }
    const double inv = 1.0 / std::sqrt(norm2);
    for (std::size_t i = 0; i < dim; ++i)
        psi[i] *= inv;
    return psi;
}

/**
 * A single-transmon schedule whose flat-top collapses into repeated
 * identical samples (the powm path of the cached evolution) and whose
 * Gaussian edges stay per-sample (the generic cached path).
 */
Schedule
transmonSchedule(long gaussian_duration = 160)
{
    Schedule schedule("batch-x");
    schedule.play(driveChannel(0),
                  std::make_shared<GaussianSquareWaveform>(
                      240, 15.0, 40, Complex{0.08, 0.0}));
    schedule.shiftPhase(driveChannel(0), kPi / 5.0);
    schedule.play(driveChannel(0),
                  std::make_shared<GaussianWaveform>(
                      gaussian_duration, gaussian_duration / 4.0,
                      Complex{kPiAmp, 0.0}));
    return schedule;
}

/**
 * Coupled 9-level pair (dim 81) with the CR control channel mapped
 * and a caller-owned propagator cache attached, so the 81x81
 * eigensolves are paid once across the whole width/mode sweep.
 */
PulseSimulator
qutritPairSimulator()
{
    TransmonParams control = testQubit();
    TransmonParams target = testQubit();
    target.frequencyGhz = 5.1;
    PulseSimulator sim(TransmonModel::pair(
        control, target, CouplingParams{0, 1, 0.0035}, 9));
    sim.setControlChannel(
        0, ControlChannelSpec{0, 2.0 * kPi * (5.0 - 5.1)});
    sim.setPropagatorCache(std::make_shared<PropagatorCache>());
    return sim;
}

/** A short CR-tone schedule for the 81-dim pair. */
Schedule
pairSchedule()
{
    Schedule schedule("batch-cr");
    schedule.play(controlChannel(0),
                  std::make_shared<GaussianSquareWaveform>(
                      120, 15.0, 40, Complex{0.14, 0.0}));
    schedule.play(driveChannel(0),
                  std::make_shared<GaussianWaveform>(
                      64, 16.0, Complex{kPiAmp, 0.0}));
    return schedule;
}

/**
 * Assert every column of the batched evolution matches the looped
 * per-state evolveState to 1e-12 for the given widths.
 */
void
expectBatchedMatchesLooped(const PulseSimulator &sim,
                           const Schedule &schedule,
                           std::initializer_list<std::size_t> widths,
                           std::uint64_t seed_base)
{
    const std::size_t dim = sim.model().dim();
    for (const std::size_t width : widths) {
        StatePanel panel(dim, width);
        std::vector<Vector> initial(width);
        for (std::size_t c = 0; c < width; ++c) {
            initial[c] = randomState(dim, seed_base + 17 * c);
            panel.setColumn(c, initial[c]);
        }
        sim.evolveStatesBatched(schedule, panel);
        Vector column;
        for (std::size_t c = 0; c < width; ++c) {
            const Vector looped =
                sim.evolveState(schedule, initial[c]);
            panel.getColumn(c, column);
            EXPECT_LE(maxAbsDiff(looped, column), 1e-12)
                << "batched/looped divergence at width=" << width
                << " column=" << c << " mode="
                << kernels::simdModeName(kernels::activeSimd());
        }
    }
}

// ---------------------------------------------------------------------
// Panel primitives.
// ---------------------------------------------------------------------

TEST(BatchPanels, StatePanelColumnRoundTrip)
{
    StatePanel panel(5, 3);
    panel.setZero();
    const Vector a = randomState(5, 11);
    const Vector b = randomState(5, 12);
    panel.setColumn(0, a);
    panel.setColumn(2, b);
    Vector out;
    panel.getColumn(0, out);
    EXPECT_LE(maxAbsDiff(a, out), 0.0);
    panel.getColumn(2, out);
    EXPECT_LE(maxAbsDiff(b, out), 0.0);
    panel.getColumn(1, out);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(out[i], (Complex{0.0, 0.0}));

    panel.fillColumns(a);
    for (std::size_t c = 0; c < 3; ++c) {
        panel.getColumn(c, out);
        EXPECT_LE(maxAbsDiff(a, out), 0.0);
    }
}

TEST(BatchPanels, DensityPanelBlockRoundTrip)
{
    DensityPanel panel(4, 2);
    panel.setZero();
    Matrix rho(4, 4);
    Rng rng(21);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            rho(r, c) = Complex{rng.uniform(-1.0, 1.0),
                                rng.uniform(-1.0, 1.0)};
    panel.setBlock(1, rho);
    Matrix out;
    panel.getBlock(1, out);
    EXPECT_LE(maxAbsDiff(rho, out), 0.0);
    panel.getBlock(0, out);
    EXPECT_LE(maxAbsDiff(out, Matrix(4, 4)), 0.0);
    EXPECT_EQ(panel.at(1, 2, 3), rho(2, 3));
}

TEST(BatchPanels, ApplyPanelMatchesPerColumnApplyAndCounts)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    const std::uint64_t calls_before =
        registry.counter("linalg.gemm.batched_calls").value();

    const std::size_t dim = 9, width = 7;
    Rng rng(31);
    Matrix u(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            u(r, c) = Complex{rng.uniform(-1.0, 1.0),
                              rng.uniform(-1.0, 1.0)};
    StatePanel in(dim, width);
    for (std::size_t c = 0; c < width; ++c)
        in.setColumn(c, randomState(dim, 40 + c));

    StatePanel out;
    applyPanelInto(out, u, in);

    Vector x, got;
    for (std::size_t c = 0; c < width; ++c) {
        in.getColumn(c, x);
        Vector want;
        applyInto(want, u, x);
        out.getColumn(c, got);
        EXPECT_LE(maxAbsDiff(want, got), 1e-12) << "column " << c;
    }
    EXPECT_GT(registry.counter("linalg.gemm.batched_calls").value(),
              calls_before);
    EXPECT_GT(registry.counter("linalg.gemm.batched_madds").value(),
              0u);
}

TEST(BatchPanels, ConjugatePanelMatchesPerBlockConjugation)
{
    const std::size_t dim = 5, width = 4;
    Rng rng(51);
    Matrix u(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            u(r, c) = Complex{rng.uniform(-1.0, 1.0),
                              rng.uniform(-1.0, 1.0)};
    DensityPanel in(dim, width);
    for (std::size_t b = 0; b < width; ++b) {
        Matrix rho(dim, dim);
        for (std::size_t r = 0; r < dim; ++r)
            for (std::size_t c = 0; c < dim; ++c)
                rho(r, c) = Complex{rng.uniform(-1.0, 1.0),
                                    rng.uniform(-1.0, 1.0)};
        in.setBlock(b, rho);
    }

    DensityPanel out, tmp;
    conjugatePanelInto(out, u, in, tmp);

    Matrix block, got;
    for (std::size_t b = 0; b < width; ++b) {
        in.getBlock(b, block);
        const Matrix want = u * block * u.adjoint();
        out.getBlock(b, got);
        EXPECT_LE(maxAbsDiff(want, got), 1e-12) << "block " << b;
    }
}

// ---------------------------------------------------------------------
// Batched-vs-looped agreement across widths and dispatch tiers.
// ---------------------------------------------------------------------

TEST(BatchEvolve, MatchesLoopedAcrossWidthsAndModes)
{
    const Schedule schedule = transmonSchedule();
    const kernels::SimdMode tiers[] = {
        kernels::SimdMode::Scalar, kernels::SimdMode::Sse2,
        kernels::SimdMode::Avx2, kernels::SimdMode::Avx512};
    for (const kernels::SimdMode tier : tiers) {
        ScopedSimdMode mode(tier);
        if (kernels::activeSimd() != tier)
            continue; // tier not supported on this host

        // Cached path (run-length collapse + propagator memoization).
        const PulseSimulator cached(
            TransmonModel::single(testQubit(), 3));
        expectBatchedMatchesLooped(cached, schedule, {1, 3, 8, 64},
                                   1000);

        // Uncached per-sample path.
        PulseSimulator exact(TransmonModel::single(testQubit(), 3));
        exact.setCachingEnabled(false);
        expectBatchedMatchesLooped(exact, schedule, {1, 3, 8, 64},
                                   2000);
    }
}

TEST(BatchEvolve, MatchesLoopedOnQutritPair81)
{
    // dim 81: the qutrit-pair regime the blocked gemm was sized for.
    // One simulator (shared propagator cache) keeps the eigensolves
    // amortized across the width sweep; Scalar plus the host's best
    // tier cover both ends of the dispatch range.
    const Schedule schedule = pairSchedule();
    const PulseSimulator sim = qutritPairSimulator();
    expectBatchedMatchesLooped(sim, schedule, {1, 3, 8, 64}, 3000);
    {
        // Scalar dispatch over the same (already warm) propagator
        // cache: the batched panel products must agree with the
        // looped path on the pure-scalar tier too. The full batch
        // label additionally runs under QPULSE_SIMD=0 in CI, which
        // covers the scalar eigensolve path end to end.
        ScopedSimdMode mode(kernels::SimdMode::Scalar);
        expectBatchedMatchesLooped(sim, schedule, {3, 64}, 4000);
    }
}

TEST(BatchEvolve, LindbladBatchedMatchesLooped)
{
    TransmonParams params = testQubit();
    params.t1Us = 45.0;
    params.t2Us = 30.0;
    const PulseSimulator sim(TransmonModel::single(params, 3));
    const Schedule schedule = transmonSchedule();
    const std::size_t dim = sim.model().dim();

    Workspace ws;
    for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
        DensityPanel panel(dim, width);
        std::vector<Matrix> initial(width);
        for (std::size_t b = 0; b < width; ++b) {
            const Vector psi = randomState(dim, 5000 + 13 * b);
            Matrix rho(dim, dim);
            for (std::size_t r = 0; r < dim; ++r)
                for (std::size_t c = 0; c < dim; ++c)
                    rho(r, c) = psi[r] * std::conj(psi[c]);
            initial[b] = rho;
            panel.setBlock(b, rho);
        }
        sim.evolveLindbladBatched(schedule, panel, ws);
        Matrix got;
        for (std::size_t b = 0; b < width; ++b) {
            const Matrix want =
                sim.evolveLindblad(schedule, initial[b]);
            panel.getBlock(b, got);
            EXPECT_LE(maxAbsDiff(want, got), 1e-12)
                << "Lindblad batched/looped divergence at width="
                << width << " block=" << b;
        }
    }
}

TEST(BatchEvolve, BatchCountersAccumulate)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    const std::uint64_t calls_before =
        registry.counter("sim.batch.calls").value();
    const std::uint64_t states_before =
        registry.counter("sim.batch.states").value();
    const std::uint64_t samples_before =
        registry.counter("sim.batch.samples").value();

    const PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    const Schedule schedule = transmonSchedule();
    StatePanel panel(sim.model().dim(), 6);
    panel.fillColumns(randomState(sim.model().dim(), 61));
    sim.evolveStatesBatched(schedule, panel);

    EXPECT_EQ(registry.counter("sim.batch.calls").value(),
              calls_before + 1);
    EXPECT_EQ(registry.counter("sim.batch.states").value(),
              states_before + 6);
    EXPECT_EQ(registry.counter("sim.batch.samples").value(),
              samples_before +
                  static_cast<std::uint64_t>(schedule.duration()));
}

// ---------------------------------------------------------------------
// Workspace reuse: panel-width-aware slots, heap-silent steady state.
// ---------------------------------------------------------------------

TEST(BatchWorkspace, PanelSlotsReuseCapacity)
{
    Workspace ws;
    StatePanel &sp = ws.statePanel(0, 81, 64);
    DensityPanel &dp = ws.densityPanel(0, 9, 16);
    const std::uint64_t before = allocCount();
    // Same slot at the same or smaller shape: no allocation, same
    // object.
    StatePanel &sp2 = ws.statePanel(0, 81, 64);
    StatePanel &sp3 = ws.statePanel(0, 81, 8);
    StatePanel &sp4 = ws.statePanel(0, 3, 64);
    DensityPanel &dp2 = ws.densityPanel(0, 9, 4);
    EXPECT_EQ(&sp, &sp2);
    EXPECT_EQ(&sp, &sp3);
    EXPECT_EQ(&sp, &sp4);
    EXPECT_EQ(&dp, &dp2);
    EXPECT_EQ(allocCount(), before);
}

TEST(BatchWorkspace, BatchedEvolveAllocsAreDurationAndWidthIndependent)
{
    // The uncached drift kernel is the zero-alloc-per-sample contract
    // (the cached path allocates per memoization lookup); the batched
    // engine must preserve it: a whole call performs a constant
    // number of allocations whatever the duration or panel width.
    PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    sim.setCachingEnabled(false);
    const std::size_t dim = sim.model().dim();
    const Schedule short_schedule = transmonSchedule(80);
    const Schedule long_schedule = transmonSchedule(160);
    const Vector ground = randomState(dim, 71);

    Workspace ws;
    StatePanel wide(dim, 64);
    StatePanel narrow(dim, 8);

    // Warm-up: populate the propagator cache for both schedules and
    // size every workspace slot at the widest panel.
    for (int i = 0; i < 2; ++i) {
        wide.fillColumns(ground);
        sim.evolveStatesBatched(long_schedule, wide, ws);
        wide.fillColumns(ground);
        sim.evolveStatesBatched(short_schedule, wide, ws);
        narrow.fillColumns(ground);
        sim.evolveStatesBatched(long_schedule, narrow, ws);
    }

    const auto measure = [&](const Schedule &schedule,
                             StatePanel &panel) {
        panel.fillColumns(ground);
        const std::uint64_t before = allocCount();
        sim.evolveStatesBatched(schedule, panel, ws);
        return allocCount() - before;
    };

    const std::uint64_t long_wide = measure(long_schedule, wide);
    const std::uint64_t short_wide = measure(short_schedule, wide);
    const std::uint64_t long_narrow = measure(long_schedule, narrow);

    // Twice the samples, same allocations: the steady-state inner
    // loop is heap-silent; per-call work is O(1) allocations.
    EXPECT_EQ(long_wide, short_wide);
    // Eight times the batch width, same allocations: panel slots are
    // width-aware and reuse their widest-seen capacity.
    EXPECT_EQ(long_wide, long_narrow);
}

// ---------------------------------------------------------------------
// runShots: batched shot formation.
// ---------------------------------------------------------------------

struct ShotRig
{
    BackendConfig config = almadenLineConfig(1);
    std::shared_ptr<const PulseBackend> backend =
        makeCalibratedBackend(config);
    PulseSimulator sim;
    Schedule schedule{"x180"};

    ShotRig() : sim(Calibrator(config).qubitModel(0))
    {
        Calibrator calibrator(config);
        const QubitCalibration cal = calibrator.calibrateQubit(0);
        schedule.play(driveChannel(0), cal.x180Pulse());
    }
};

TEST(BatchShots, CountsInvariantAcrossWidthsAndThreads)
{
    const ShotRig rig;
    const auto run = [&](std::size_t width, std::size_t threads) {
        PulseShotOptions opts;
        opts.shots = 96;
        opts.seed = 0xFEED;
        opts.batchWidth = width;
        opts.maxThreads = threads;
        return rig.backend->runShots(rig.sim, rig.schedule, opts);
    };

    const PulseShotResult looped = run(1, 1);
    long total = 0;
    for (const long count : looped.counts)
        total += count;
    EXPECT_EQ(total, 96);
    EXPECT_FALSE(looped.partial);

    EXPECT_EQ(looped.counts, run(64, 1).counts);
    EXPECT_EQ(looped.counts, run(64, 8).counts);
    EXPECT_EQ(looped.counts, run(7, 8).counts);
    // 0 = the QPULSE_BATCH environment default.
    EXPECT_EQ(looped.counts, run(0, 1).counts);
}

TEST(BatchShots, QpulseBatchEnvControlsDefaultWidth)
{
    const ShotRig rig;
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    telemetry::Counter &c_calls = registry.counter("sim.batch.calls");

    PulseShotOptions opts;
    opts.shots = 24;
    opts.seed = 0xFEED;
    opts.maxThreads = 1;

    // An explicit looped width never enters the batched engine.
    opts.batchWidth = 1;
    const std::uint64_t before_looped = c_calls.value();
    const PulseShotResult looped =
        rig.backend->runShots(rig.sim, rig.schedule, opts);
    EXPECT_EQ(c_calls.value(), before_looped);

    // Width 0 defers to QPULSE_BATCH; the batched engine runs and the
    // counts still match the looped reference.
    EnvGuard env("QPULSE_BATCH", "5");
    opts.batchWidth = 0;
    const std::uint64_t before_batched = c_calls.value();
    const PulseShotResult batched =
        rig.backend->runShots(rig.sim, rig.schedule, opts);
    EXPECT_GT(c_calls.value(), before_batched);
    EXPECT_EQ(looped.counts, batched.counts);
}

TEST(BatchShots, ValidatesScheduleExactlyOncePerRun)
{
    const ShotRig rig;
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    telemetry::Counter &c_calls =
        registry.counter("device.validation.calls");
    telemetry::Counter &c_rejects =
        registry.counter("device.validation.rejects");

    for (const std::size_t width : {std::size_t{1}, std::size_t{64}}) {
        PulseShotOptions opts;
        opts.shots = 16;
        opts.seed = 0xFEED;
        opts.batchWidth = width;
        const std::uint64_t calls_before = c_calls.value();
        const std::uint64_t rejects_before = c_rejects.value();
        rig.backend->runShots(rig.sim, rig.schedule, opts);
        EXPECT_EQ(c_calls.value(), calls_before + 1)
            << "batchWidth=" << width;
        EXPECT_EQ(c_rejects.value(), rejects_before);
    }
}

TEST(BatchShots, VirtualTimePartialInvariantAcrossWidthsAndThreads)
{
    EnvGuard env("QPULSE_VIRTUAL_TIME", "1");
    const ShotRig rig;
    const long shots = 96;
    const std::uint64_t duration =
        static_cast<std::uint64_t>(rig.schedule.duration());
    // Budget for roughly half the shots, in simulated samples.
    const std::uint64_t budget =
        duration * static_cast<std::uint64_t>(shots) / 2;

    const auto run = [&](std::size_t width, std::size_t threads) {
        PulseShotOptions opts;
        opts.shots = shots;
        opts.seed = 0xFEED;
        opts.batchWidth = width;
        opts.maxThreads = threads;
        opts.deadline = Deadline::afterMsOrBudget(50.0, budget);
        return rig.backend->runShots(rig.sim, rig.schedule, opts);
    };

    const PulseShotResult base = run(1, 1);
    EXPECT_TRUE(base.partial);
    EXPECT_EQ(base.interruption.code(), ErrorCode::DeadlineExceeded);
    EXPECT_GT(base.shotsCompleted, 0);
    EXPECT_LT(base.shotsCompleted, shots);
    long total = 0;
    for (const long count : base.counts)
        total += count;
    EXPECT_EQ(total, base.shotsCompleted);

    // The admitted batch set is charged before panel formation, so the
    // partial result is a pure function of the workload: identical
    // whatever the batch width or thread count.
    for (const auto &[width, threads] :
         {std::pair<std::size_t, std::size_t>{64, 1},
          {64, 8},
          {7, 8}}) {
        const PulseShotResult r = run(width, threads);
        EXPECT_EQ(base.counts, r.counts)
            << "width=" << width << " threads=" << threads;
        EXPECT_EQ(base.shotsCompleted, r.shotsCompleted);
        EXPECT_EQ(base.partial, r.partial);
        EXPECT_EQ(base.interruption.code(), r.interruption.code());
    }
}

TEST(BatchShots, PreCancelledTokenYieldsEmptyPartialAtAnyWidth)
{
    const ShotRig rig;
    for (const std::size_t width : {std::size_t{1}, std::size_t{64}}) {
        CancelToken token = CancelToken::make();
        token.cancel();
        PulseShotOptions opts;
        opts.shots = 32;
        opts.seed = 0xFEED;
        opts.batchWidth = width;
        opts.token = token;
        const PulseShotResult result =
            rig.backend->runShots(rig.sim, rig.schedule, opts);
        EXPECT_TRUE(result.partial) << "batchWidth=" << width;
        EXPECT_EQ(result.shotsCompleted, 0) << "batchWidth=" << width;
        EXPECT_EQ(result.interruption.code(), ErrorCode::Cancelled)
            << "batchWidth=" << width;
    }
}

} // namespace
} // namespace qpulse
