/**
 * @file
 * Tests for zero-noise extrapolation via pulse stretching: the
 * Richardson helper on exact polynomials, noise amplification
 * monotonicity, and end-to-end mitigation of a ZZ-parity observable.
 */
#include <gtest/gtest.h>

#include <memory>

#include "algos/hamiltonians.h"
#include "algos/circuits.h"
#include "common/constants.h"
#include "compile/zne.h"

namespace qpulse {
namespace {

TEST(Richardson, ExactOnLine)
{
    // y = 3 - 2x -> p(0) = 3.
    EXPECT_NEAR(richardsonExtrapolate({1.0, 2.0}, {1.0, -1.0}), 3.0,
                1e-12);
}

TEST(Richardson, ExactOnQuadratic)
{
    // y = 1 + x^2 at x = 1, 1.5, 2 -> p(0) = 1.
    EXPECT_NEAR(
        richardsonExtrapolate({1.0, 1.5, 2.0}, {2.0, 3.25, 5.0}), 1.0,
        1e-10);
}

TEST(Richardson, RejectsDegenerateInput)
{
    EXPECT_THROW(richardsonExtrapolate({1.0}, {2.0}), FatalError);
    EXPECT_THROW(richardsonExtrapolate({1.0, 1.0}, {2.0, 3.0}),
                 FatalError);
}

class ZneTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        config_ = new BackendConfig(almadenLineConfig(2));
        // Turn the readout error off so the observable bias is purely
        // from gate noise (what stretching amplifies).
        for (auto &readout : config_->readout)
            readout = ReadoutError{0.0, 0.0};
        backend_ = new std::shared_ptr<const PulseBackend>(
            makeCalibratedBackend(*config_));
        compiler_ =
            new PulseCompiler(*backend_, CompileMode::Optimized);
    }
    static void TearDownTestSuite()
    {
        delete compiler_;
        delete backend_;
        delete config_;
    }
    static BackendConfig *config_;
    static std::shared_ptr<const PulseBackend> *backend_;
    static PulseCompiler *compiler_;
};

BackendConfig *ZneTest::config_ = nullptr;
std::shared_ptr<const PulseBackend> *ZneTest::backend_ = nullptr;
PulseCompiler *ZneTest::compiler_ = nullptr;

TEST_F(ZneTest, StretchingAmplifiesError)
{
    // ZZ parity after 4 Trotterised ZZ rotations of pi (net
    // identity): ideal <ZZ> = +1 from |00>; noise pulls it down, and
    // more stretch pulls it down further.
    QuantumCircuit circuit(2);
    circuit.x(0); // Populate |1> so T1 bites.
    for (int k = 0; k < 4; ++k) {
        // Barriers keep the optimizer from legally merging the four
        // pi rotations into nothing -- the point is to keep pulses.
        circuit.barrier();
        circuit.rzz(kPi, 0, 1);
    }
    circuit.barrier();
    circuit.x(0);
    const DiagonalObservable zz = {1.0, -1.0, -1.0, 1.0};

    Rng rng(0x27E);
    const ZneResult result = zeroNoiseExtrapolate(
        *compiler_, circuit, zz, {1.0, 2.0, 3.0}, 60000, rng);
    ASSERT_EQ(result.measured.size(), 3u);
    EXPECT_GT(result.measured[0], result.measured[2]);
    EXPECT_LT(result.measured[0], 1.0);
}

TEST_F(ZneTest, ExtrapolationBeatsUnmitigated)
{
    QuantumCircuit circuit(2);
    circuit.x(0);
    for (int k = 0; k < 4; ++k) {
        circuit.barrier();
        circuit.rzz(kPi, 0, 1);
    }
    circuit.barrier();
    circuit.x(0);
    const DiagonalObservable zz = {1.0, -1.0, -1.0, 1.0};
    const double ideal = 1.0;

    Rng rng(0x27F);
    const ZneResult result = zeroNoiseExtrapolate(
        *compiler_, circuit, zz, {1.0, 1.5, 2.0}, 60000, rng);
    const double raw_error = std::abs(result.unmitigated - ideal);
    const double mitigated_error =
        std::abs(result.extrapolated - ideal);
    EXPECT_LT(mitigated_error, raw_error);
}

TEST_F(ZneTest, RejectsCompressionBelowCalibration)
{
    QuantumCircuit circuit(2);
    circuit.x(0);
    const DiagonalObservable z0 = {1.0, 1.0, -1.0, -1.0};
    Rng rng(1);
    EXPECT_THROW(zeroNoiseExtrapolate(*compiler_, circuit, z0,
                                      {0.5, 1.0}, 1000, rng),
                 FatalError);
    EXPECT_THROW(zeroNoiseExtrapolate(*compiler_, circuit,
                                      {1.0, 1.0}, // Wrong length.
                                      {1.0, 2.0}, 1000, rng),
                 FatalError);
}

} // namespace
} // namespace qpulse
