/**
 * @file
 * Tests for single-qubit process tomography: PTMs of known unitaries,
 * trace preservation, unitarity of decohering channels, and fidelity
 * extraction for a calibrated pulse against its target.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "device/calibration.h"
#include "linalg/gates.h"
#include "metrics/process_tomography.h"

namespace qpulse {
namespace {

TEST(Ptm, IdentityChannel)
{
    const PauliTransferMatrix ptm = ptmOfUnitary(gates::i2());
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_NEAR(ptm.r[i][j], i == j ? 1.0 : 0.0, 1e-9)
                << i << "," << j;
    EXPECT_TRUE(ptm.isTracePreserving());
    EXPECT_NEAR(ptm.unitarity(), 1.0, 1e-9);
}

TEST(Ptm, PauliXChannel)
{
    // X conjugation: x -> x, y -> -y, z -> -z.
    const PauliTransferMatrix ptm = ptmOfUnitary(gates::x());
    EXPECT_NEAR(ptm.r[1][1], 1.0, 1e-9);
    EXPECT_NEAR(ptm.r[2][2], -1.0, 1e-9);
    EXPECT_NEAR(ptm.r[3][3], -1.0, 1e-9);
    EXPECT_NEAR(ptm.unitarity(), 1.0, 1e-9);
}

TEST(Ptm, HadamardSwapsXandZ)
{
    const PauliTransferMatrix ptm = ptmOfUnitary(gates::h());
    EXPECT_NEAR(ptm.r[1][3], 1.0, 1e-9); // z -> x.
    EXPECT_NEAR(ptm.r[3][1], 1.0, 1e-9); // x -> z.
    EXPECT_NEAR(ptm.r[2][2], -1.0, 1e-9);
}

TEST(Ptm, RotationBlock)
{
    // Rz(theta) rotates the xy plane by theta.
    const double theta = 0.8;
    const PauliTransferMatrix ptm = ptmOfUnitary(gates::rz(theta));
    EXPECT_NEAR(ptm.r[1][1], std::cos(theta), 1e-9);
    EXPECT_NEAR(ptm.r[2][1], std::sin(theta), 1e-9);
    EXPECT_NEAR(ptm.r[3][3], 1.0, 1e-9);
}

TEST(Ptm, FidelityOfMatchingUnitaries)
{
    const PauliTransferMatrix a = ptmOfUnitary(gates::rx(0.6));
    const PauliTransferMatrix b = ptmOfUnitary(gates::rx(0.6));
    EXPECT_NEAR(a.averageGateFidelity(b), 1.0, 1e-9);
    // Orthogonal Paulis: F = 1/3 (matches the unitary-overlap value).
    const PauliTransferMatrix x = ptmOfUnitary(gates::x());
    const PauliTransferMatrix z = ptmOfUnitary(gates::z());
    EXPECT_NEAR(x.averageGateFidelity(z), 1.0 / 3.0, 1e-9);
}

TEST(Ptm, DepolarizingChannelUnitarity)
{
    // A hand-built 20% depolarizing channel: Bloch vector shrinks.
    const BlochChannel channel = [](const BlochVector &in) {
        return BlochVector{0.8 * in.x, 0.8 * in.y, 0.8 * in.z};
    };
    const PauliTransferMatrix ptm = processTomography(channel);
    EXPECT_TRUE(ptm.isTracePreserving());
    EXPECT_NEAR(ptm.unitarity(), 0.64, 1e-9);
    const double f =
        ptm.averageGateFidelity(ptmOfUnitary(gates::i2()));
    EXPECT_NEAR(f, (2.0 * (1.0 + 3 * 0.8) / 4.0 + 1.0) / 3.0, 1e-9);
}

TEST(Ptm, AmplitudeDampingShift)
{
    // Amplitude damping has a non-unital shift toward |0> (+z).
    const double gamma = 0.3;
    const BlochChannel channel = [&](const BlochVector &in) {
        return BlochVector{std::sqrt(1 - gamma) * in.x,
                           std::sqrt(1 - gamma) * in.y,
                           gamma + (1 - gamma) * in.z};
    };
    const PauliTransferMatrix ptm = processTomography(channel);
    EXPECT_NEAR(ptm.r[3][0], gamma, 1e-9); // The affine z shift.
    EXPECT_TRUE(ptm.isTracePreserving());
    EXPECT_LT(ptm.unitarity(), 1.0);
}

TEST(Ptm, CalibratedPulseThroughSimulator)
{
    // Tomograph the calibrated DirectX pulse on the transmon
    // simulator: high fidelity against the ideal X PTM.
    const BackendConfig config = almadenLineConfig(1);
    Calibrator calibrator(config);
    const QubitCalibration cal = calibrator.calibrateQubit(0);
    PulseSimulator sim(calibrator.qubitModel(0));

    const BlochChannel channel = [&](const BlochVector &in) {
        const double theta = std::acos(std::clamp(in.z, -1.0, 1.0));
        const double phi = std::atan2(in.y, in.x);
        Vector state(3);
        state[0] = Complex{std::cos(theta / 2), 0.0};
        state[1] = std::polar(std::sin(theta / 2), phi);
        Schedule schedule("x");
        schedule.play(driveChannel(0), cal.x180Pulse());
        const Vector out = sim.evolveState(schedule, state);
        return blochFromState(out);
    };
    const PauliTransferMatrix measured = processTomography(channel);
    const double fidelity =
        measured.averageGateFidelity(ptmOfUnitary(gates::x()));
    EXPECT_GT(fidelity, 0.999);
    // Tiny leakage makes the channel marginally non-TP.
    EXPECT_TRUE(measured.isTracePreserving(0.01));
}

} // namespace
} // namespace qpulse
