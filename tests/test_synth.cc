/**
 * @file
 * Tests for single-qubit synthesis: U3 angle extraction from
 * arbitrary unitaries and the Equation 2 / Equation 3 lowerings the
 * two compiler flows are built on.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/rng.h"
#include "linalg/gates.h"
#include "synth/euler.h"

namespace qpulse {
namespace {

Matrix
randomSu2(Rng &rng)
{
    const double theta = std::acos(1.0 - 2.0 * rng.uniform());
    const double phi = rng.uniform(-kPi, kPi);
    const double lambda = rng.uniform(-kPi, kPi);
    const Complex phase = std::exp(Complex{0, rng.uniform(-kPi, kPi)});
    return gates::u3(theta, phi, lambda) * phase;
}

Matrix
sequenceUnitary(const std::vector<Gate> &gates_list)
{
    Matrix u = Matrix::identity(2);
    for (const auto &gate : gates_list)
        u = gate.matrix() * u;
    return u;
}

TEST(WrapAngle, Basics)
{
    EXPECT_NEAR(wrapAngle(0.0), 0.0, 1e-15);
    EXPECT_NEAR(wrapAngle(3 * kPi), kPi, 1e-12);
    EXPECT_NEAR(wrapAngle(-3 * kPi), kPi, 1e-12);
    EXPECT_NEAR(wrapAngle(2 * kPi + 0.1), 0.1, 1e-12);
    EXPECT_TRUE(angleIsZero(2 * kPi));
    EXPECT_FALSE(angleIsZero(0.1));
}

TEST(U3FromUnitary, KnownGates)
{
    const U3Angles x = u3FromUnitary(gates::x());
    EXPECT_NEAR(x.theta, kPi, 1e-10);
    const U3Angles h = u3FromUnitary(gates::h());
    EXPECT_NEAR(h.theta, kPi / 2, 1e-10);
    const U3Angles id = u3FromUnitary(gates::i2());
    EXPECT_NEAR(id.theta, 0.0, 1e-10);
}

class U3RoundTripTest : public ::testing::TestWithParam<int>
{
};

TEST_P(U3RoundTripTest, ReconstructsUnitary)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 1);
    const Matrix u = randomSu2(rng);
    const U3Angles angles = u3FromUnitary(u);
    const Matrix rebuilt =
        gates::u3(angles.theta, angles.phi, angles.lambda);
    EXPECT_GT(unitaryOverlap(u, rebuilt), 1 - 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RandomUnitaries, U3RoundTripTest,
                         ::testing::Range(0, 20));

TEST(U3FromUnitary, EdgeThetaZero)
{
    // Pure Rz: theta = 0, all the action in phi + lambda.
    const U3Angles angles = u3FromUnitary(gates::rz(1.3));
    EXPECT_NEAR(angles.theta, 0.0, 1e-9);
    const Matrix rebuilt =
        gates::u3(angles.theta, angles.phi, angles.lambda);
    EXPECT_GT(unitaryOverlap(gates::rz(1.3), rebuilt), 1 - 1e-10);
}

TEST(U3FromUnitary, EdgeThetaPi)
{
    const U3Angles angles = u3FromUnitary(gates::y());
    EXPECT_NEAR(angles.theta, kPi, 1e-9);
    const Matrix rebuilt =
        gates::u3(angles.theta, angles.phi, angles.lambda);
    EXPECT_GT(unitaryOverlap(gates::y(), rebuilt), 1 - 1e-10);
}

TEST(U3FromUnitary, RejectsNonUnitary)
{
    Matrix bad{{1, 1}, {0, 1}};
    EXPECT_THROW(u3FromUnitary(bad), FatalError);
}

class LoweringTest : public ::testing::TestWithParam<int>
{
  protected:
    Matrix randomTarget()
    {
        Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
        return randomSu2(rng);
    }
};

TEST_P(LoweringTest, Equation2StandardForm)
{
    // Equation 2: U3 = Rz . X90 . Rz . X90 . Rz (two pulses).
    const Matrix target = randomTarget();
    const auto sequence = lowerU3Standard(u3FromUnitary(target), 0);
    ASSERT_EQ(sequence.size(), 5u);
    EXPECT_EQ(sequence[1].type, GateType::X90);
    EXPECT_EQ(sequence[3].type, GateType::X90);
    EXPECT_GT(unitaryOverlap(sequenceUnitary(sequence), target),
              1 - 1e-9);
}

TEST_P(LoweringTest, Equation3DirectForm)
{
    // Equation 3: U3 = Rz . DirectRx(theta) . Rz (one pulse).
    const Matrix target = randomTarget();
    const auto sequence = lowerU3Direct(u3FromUnitary(target), 0);
    ASSERT_EQ(sequence.size(), 3u);
    EXPECT_EQ(sequence[1].type, GateType::DirectRx);
    EXPECT_GT(unitaryOverlap(sequenceUnitary(sequence), target),
              1 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomTargets, LoweringTest,
                         ::testing::Range(0, 16));

TEST(Lowering, PulseCountsMatchPaper)
{
    // The whole point of Section 4: standard = 2 pulses, direct = 1.
    const U3Angles x = u3FromUnitary(gates::x());
    std::size_t standard_pulses = 0;
    for (const auto &gate : lowerU3Standard(x, 0))
        if (gate.type == GateType::X90)
            ++standard_pulses;
    std::size_t direct_pulses = 0;
    for (const auto &gate : lowerU3Direct(x, 0))
        if (gate.type == GateType::DirectRx)
            ++direct_pulses;
    EXPECT_EQ(standard_pulses, 2u);
    EXPECT_EQ(direct_pulses, 1u);
}

TEST(Lowering, DirectRxAngleEqualsTheta)
{
    const U3Angles angles = u3FromUnitary(gates::rx(0.61));
    const auto sequence = lowerU3Direct(angles, 3);
    EXPECT_NEAR(sequence[1].params[0], 0.61, 1e-9);
    EXPECT_EQ(sequence[1].qubits[0], 3u);
}

} // namespace
} // namespace qpulse
