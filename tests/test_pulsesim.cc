/**
 * @file
 * Physics tests for the transmon model and pulse-level simulator:
 * Rabi rotation via pulse area, virtual-Z frame changes, leakage and
 * DRAG suppression, sideband driving of qutrit transitions,
 * cross-resonance via the J-coupled pair model, and Lindblad decay.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "linalg/gates.h"
#include "pulsesim/simulator.h"

namespace qpulse {
namespace {

TransmonParams
testQubit()
{
    TransmonParams params;
    params.frequencyGhz = 5.0;
    params.anharmonicityGhz = -0.33;
    params.driveStrengthGhz = 0.25;
    return params;
}

/** The Gaussian amplitude rotating the test qubit by pi in 160 dt. */
constexpr double kPiAmp = 0.0941;

Matrix
qubitBlock(const Matrix &u)
{
    Matrix block(2, 2);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            block(r, c) = u(r, c);
    return block;
}

TEST(TransmonModel, Dimensions)
{
    const TransmonModel single = TransmonModel::single(testQubit(), 3);
    EXPECT_EQ(single.dim(), 3u);
    const TransmonModel pair = TransmonModel::pair(
        testQubit(), testQubit(), CouplingParams{0, 1, 0.003}, 3);
    EXPECT_EQ(pair.dim(), 9u);
    EXPECT_EQ(pair.basisIndex({1, 2}), 5u);
    EXPECT_EQ(pair.basisIndex({2, 0}), 6u);
}

TEST(TransmonModel, LoweringOperator)
{
    const TransmonModel model = TransmonModel::single(testQubit(), 3);
    const Matrix a = model.lowering(0);
    EXPECT_NEAR(a(0, 1).real(), 1.0, 1e-12);
    EXPECT_NEAR(a(1, 2).real(), std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(a(1, 0)), 0.0, 1e-12);
}

TEST(TransmonModel, StaticHamiltonianAnharmonicity)
{
    const TransmonModel model = TransmonModel::single(testQubit(), 3);
    const Matrix h = model.staticHamiltonian();
    EXPECT_NEAR(h(0, 0).real(), 0.0, 1e-12);
    EXPECT_NEAR(h(1, 1).real(), 0.0, 1e-12);
    // Level 2 sits at alpha (angular): 2 pi * (-0.33).
    EXPECT_NEAR(h(2, 2).real(), 2.0 * kPi * -0.33, 1e-9);
}

TEST(PulseSim, ConstantPulseRotationAngle)
{
    PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    // theta = omega * amp * T.
    Schedule schedule("c");
    schedule.play(driveChannel(0), std::make_shared<ConstantWaveform>(
                                       200, Complex{0.05, 0.0}));
    Vector ground(3);
    ground[0] = Complex{1, 0};
    const Vector out = sim.evolveState(schedule, ground);
    const double theta = 2.0 * kPi * 0.25 * 0.05 * 200 * kDtNs;
    EXPECT_NEAR(std::norm(out[1]), std::pow(std::sin(theta / 2), 2),
                2e-3);
}

TEST(PulseSim, GaussianPiPulse)
{
    PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    Schedule schedule("x");
    schedule.play(driveChannel(0), std::make_shared<GaussianWaveform>(
                                       160, 40.0, Complex{kPiAmp, 0.0}));
    Vector ground(3);
    ground[0] = Complex{1, 0};
    const Vector out = sim.evolveState(schedule, ground);
    EXPECT_GT(std::norm(out[1]), 0.995);
}

TEST(PulseSim, AmplitudeScalingRotatesProportionally)
{
    // The DirectRx principle (Section 4.2): scaling the amplitude by
    // theta/180 rotates by theta, to first order.
    PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    Vector ground(3);
    ground[0] = Complex{1, 0};
    for (double fraction : {0.25, 0.5, 0.75}) {
        Schedule schedule("scaled");
        schedule.play(driveChannel(0),
                      std::make_shared<GaussianWaveform>(
                          160, 40.0, Complex{kPiAmp * fraction, 0.0}));
        const Vector out = sim.evolveState(schedule, ground);
        const double expected =
            std::pow(std::sin(fraction * kPi / 2), 2);
        EXPECT_NEAR(std::norm(out[1]), expected, 5e-3) << fraction;
    }
}

TEST(PulseSim, UnitaryIsUnitary)
{
    PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    Schedule schedule("x");
    schedule.play(driveChannel(0), std::make_shared<DragWaveform>(
                                       160, 40.0, Complex{0.07, 0.0},
                                       2.0));
    const UnitaryResult result = sim.evolveUnitary(schedule);
    EXPECT_TRUE(result.unitary.isUnitary(1e-8));
    EXPECT_EQ(result.duration, 160);
}

TEST(PulseSim, VirtualZFrameChange)
{
    // shiftPhase(-lambda) then nothing = Rz(lambda) after folding.
    PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    Schedule schedule("rz");
    schedule.shiftPhase(driveChannel(0), -0.8);
    const UnitaryResult result = sim.evolveUnitary(schedule);
    const Matrix effective = sim.effectiveUnitary(result);
    EXPECT_GT(unitaryOverlap(qubitBlock(effective), gates::rz(0.8)),
              1 - 1e-9);
}

TEST(PulseSim, VirtualZComposesWithPulses)
{
    // Rz(l) then X90-pulse: effective unitary = Rx(90) Rz(l).
    PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    Schedule schedule("rz-x90");
    schedule.shiftPhase(driveChannel(0), -1.1);
    schedule.play(driveChannel(0),
                  std::make_shared<GaussianWaveform>(
                      160, 40.0, Complex{kPiAmp / 2, 0.0}));
    const UnitaryResult result = sim.evolveUnitary(schedule);
    const Matrix effective = qubitBlock(sim.effectiveUnitary(result));
    const Matrix expected = gates::rx(kPi / 2) * gates::rz(1.1);
    EXPECT_GT(unitaryOverlap(effective, expected), 1 - 5e-3);
}

TEST(PulseSim, LeakageSuppressedByDrag)
{
    // A fast strong pulse leaks into |2>; DRAG reduces it.
    TransmonParams params = testQubit();
    PulseSimulator sim(TransmonModel::single(params, 3));
    Vector ground(3);
    ground[0] = Complex{1, 0};
    auto leakage = [&](double beta, long duration, double amp) {
        Schedule schedule("drag");
        schedule.play(driveChannel(0),
                      std::make_shared<DragWaveform>(
                          duration, duration / 4.0, Complex{amp, 0.0},
                          beta));
        const Vector out = sim.evolveState(schedule, ground);
        return std::norm(out[2]);
    };
    // Very short pulse (24 dt, ~5 ns) with pi area: leakage is
    // non-adiabatic and DRAG (optimal beta ~ 1 sample ~ 1/(2|alpha|))
    // suppresses it several-fold. The optimal coefficient depends on
    // the pulse details, so scan for it — calibration does the same.
    const double strong_amp = 0.63;
    const double bare = leakage(0.0, 24, strong_amp);
    double best = bare;
    for (double beta = -3.0; beta <= 3.0; beta += 0.25)
        best = std::min(best, leakage(beta, 24, strong_amp));
    EXPECT_GT(bare, 1e-4);
    EXPECT_LT(best, bare * 0.5);
}

TEST(PulseSim, SidebandDrivesOneTwoTransition)
{
    // Prepare |1>, then drive at f12 = f01 + alpha: population moves
    // to |2> (Section 7.1).
    TransmonParams params = testQubit();
    PulseSimulator sim(TransmonModel::single(params, 3));
    Vector one(3);
    one[1] = Complex{1, 0};
    Schedule schedule("x12");
    schedule.play(driveChannel(0),
                  std::make_shared<SidebandWaveform>(
                      std::make_shared<GaussianWaveform>(
                          160, 40.0, Complex{kPiAmp / std::sqrt(2.0),
                                             0.0}),
                      params.anharmonicityGhz));
    const Vector out = sim.evolveState(schedule, one);
    EXPECT_GT(std::norm(out[2]), 0.95);
}

TEST(PulseSim, ResonantDriveDoesNotExciteOneTwo)
{
    // Without the sideband the drive is detuned by alpha from the 1-2
    // transition and mostly de-excites |1> -> |0> instead.
    TransmonParams params = testQubit();
    PulseSimulator sim(TransmonModel::single(params, 3));
    Vector one(3);
    one[1] = Complex{1, 0};
    Schedule schedule("x01");
    schedule.play(driveChannel(0), std::make_shared<GaussianWaveform>(
                                       160, 40.0, Complex{kPiAmp, 0.0}));
    const Vector out = sim.evolveState(schedule, one);
    EXPECT_LT(std::norm(out[2]), 0.05);
    EXPECT_GT(std::norm(out[0]), 0.9);
}

TEST(PulseSim, TwoPhotonTransitionNeedsMorePower)
{
    // The f02/2 two-photon drive barely moves population at single-
    // photon power but succeeds at higher drive (Section 7.2).
    TransmonParams params = testQubit();
    PulseSimulator sim(TransmonModel::single(params, 3));
    Vector ground(3);
    ground[0] = Complex{1, 0};
    auto p2_for = [&](double amp) {
        Schedule schedule("x02");
        schedule.play(driveChannel(0),
                      std::make_shared<SidebandWaveform>(
                          std::make_shared<GaussianWaveform>(
                              160, 40.0, Complex{amp, 0.0}),
                          params.anharmonicityGhz / 2.0));
        const Vector out = sim.evolveState(schedule, ground);
        return std::norm(out[2]);
    };
    EXPECT_LT(p2_for(kPiAmp), 0.2);
    double best = 0.0;
    for (double amp = 0.15; amp < 0.8; amp += 0.02)
        best = std::max(best, p2_for(amp));
    EXPECT_GT(best, 0.8);
}

TEST(PulseSim, CrossResonanceRotatesTarget)
{
    // Driving the control at the target's frequency rotates the
    // target conditionally (the raw CR effect, Section 6.1).
    TransmonParams control = testQubit();
    TransmonParams target = testQubit();
    target.frequencyGhz = 5.1;
    PulseSimulator sim(TransmonModel::pair(
        control, target, CouplingParams{0, 1, 0.0035}, 3));
    sim.setControlChannel(
        0, ControlChannelSpec{0, 2.0 * kPi * (5.0 - 5.1)});

    Schedule schedule("cr");
    schedule.play(controlChannel(0),
                  std::make_shared<GaussianSquareWaveform>(
                      1200, 15.0, 60, Complex{0.14, 0.0}));
    Vector ground(9);
    ground[0] = Complex{1, 0};
    const Vector out = sim.evolveState(schedule, ground);
    // Target population (levels |01>, index 1) should move.
    EXPECT_GT(std::norm(out[1]), 0.05);
}

TEST(PulseSim, CrossResonanceSilentWithoutCoupling)
{
    TransmonParams control = testQubit();
    TransmonParams target = testQubit();
    target.frequencyGhz = 5.1;
    PulseSimulator sim(TransmonModel::pair(
        control, target, CouplingParams{0, 1, 0.0}, 3));
    sim.setControlChannel(
        0, ControlChannelSpec{0, 2.0 * kPi * (5.0 - 5.1)});
    Schedule schedule("cr");
    schedule.play(controlChannel(0),
                  std::make_shared<GaussianSquareWaveform>(
                      1200, 15.0, 60, Complex{0.14, 0.0}));
    Vector ground(9);
    ground[0] = Complex{1, 0};
    const Vector out = sim.evolveState(schedule, ground);
    EXPECT_LT(std::norm(out[1]), 1e-3);
}

TEST(PulseSim, LindbladT1Decay)
{
    TransmonParams params = testQubit();
    params.t1Us = 0.010; // 10 ns, exaggerated for the test.
    params.t2Us = 0.020; // Pure-T1-limited.
    PulseSimulator sim(TransmonModel::single(params, 3));

    Matrix rho_one(3, 3);
    rho_one(1, 1) = Complex{1, 0};
    Schedule idle("idle");
    idle.delay(driveChannel(0), nsToDt(10.0)); // One T1.
    const Matrix rho = sim.evolveLindblad(idle, rho_one);
    EXPECT_NEAR(rho(1, 1).real(), std::exp(-1.0), 0.02);
    EXPECT_NEAR(rho(0, 0).real(), 1.0 - std::exp(-1.0), 0.02);
    EXPECT_NEAR(std::abs(rho.trace() - Complex{1.0, 0.0}), 0.0, 1e-6);
}

TEST(PulseSim, LindbladDephasing)
{
    TransmonParams params = testQubit();
    params.t1Us = 1000.0; // Effectively no relaxation.
    params.t2Us = 0.020;  // 20 ns dephasing.
    PulseSimulator sim(TransmonModel::single(params, 3));

    // |+> state density matrix in the qutrit space.
    Matrix rho(3, 3);
    rho(0, 0) = rho(0, 1) = rho(1, 0) = rho(1, 1) = Complex{0.5, 0.0};
    Schedule idle("idle");
    idle.delay(driveChannel(0), nsToDt(20.0)); // One T2.
    const Matrix out = sim.evolveLindblad(idle, rho);
    EXPECT_NEAR(std::abs(out(0, 1)), 0.5 * std::exp(-1.0), 0.02);
    EXPECT_NEAR(out(1, 1).real(), 0.5, 1e-3);
}

TEST(PulseSim, LindbladMatchesUnitaryWhenCoherent)
{
    TransmonParams params = testQubit();
    params.t1Us = 1e9;
    params.t2Us = 1e9;
    PulseSimulator sim(TransmonModel::single(params, 3));
    Schedule schedule("x");
    schedule.play(driveChannel(0), std::make_shared<GaussianWaveform>(
                                       160, 40.0, Complex{kPiAmp, 0.0}));
    Matrix rho0(3, 3);
    rho0(0, 0) = Complex{1, 0};
    const Matrix rho = sim.evolveLindblad(schedule, rho0);
    Vector ground(3);
    ground[0] = Complex{1, 0};
    const Vector psi = sim.evolveState(schedule, ground);
    EXPECT_NEAR(rho(1, 1).real(), std::norm(psi[1]), 1e-6);
}

TEST(PulseSim, RejectsUnmappedControlChannel)
{
    PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    Schedule schedule("bad");
    schedule.play(controlChannel(0), std::make_shared<ConstantWaveform>(
                                         10, Complex{0.1, 0.0}));
    EXPECT_THROW(sim.evolveUnitary(schedule), FatalError);
}

} // namespace
} // namespace qpulse
