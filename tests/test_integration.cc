/**
 * @file
 * Cross-module integration tests: the paper's headline claims end to
 * end. A calibrated backend is built once; full benchmark circuits are
 * compiled under both flows, run through the duration-aware noisy
 * simulator, and the optimized flow must win on Hellinger error while
 * staying unitarily faithful on the pulse simulator.
 */
#include <gtest/gtest.h>

#include <memory>

#include "algos/circuits.h"
#include "algos/hamiltonians.h"
#include "algos/vqe.h"
#include "common/constants.h"
#include "compile/compiler.h"
#include "linalg/gates.h"
#include "metrics/metrics.h"
#include "noisesim/statevector.h"
#include "readout/readout.h"

namespace qpulse {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        config_ = new BackendConfig(almadenLineConfig(2));
        backend_ = new std::shared_ptr<const PulseBackend>(
            makeCalibratedBackend(*config_));
        standard_ =
            new PulseCompiler(*backend_, CompileMode::Standard);
        optimized_ =
            new PulseCompiler(*backend_, CompileMode::Optimized);
    }

    static void TearDownTestSuite()
    {
        delete optimized_;
        delete standard_;
        delete backend_;
        delete config_;
    }

    /** Hellinger error of a compiled circuit vs its ideal output. */
    static double hellingerError(const PulseCompiler &compiler,
                                 const QuantumCircuit &circuit,
                                 long shots, std::uint64_t seed)
    {
        const std::vector<double> ideal = idealDistribution(circuit);
        DensitySimulator simulator = compiler.makeSimulator();
        QuantumCircuit with_measure = circuit;
        with_measure.measureAll();
        const NoisyRunResult run =
            simulator.run(compiler.transpile(with_measure));
        Rng rng(seed);
        const auto counts = simulator.sampleCounts(run, shots, rng);
        // Measurement-error mitigation, as in Section 2.4.
        std::vector<std::pair<double, double>> flips;
        for (std::size_t q = 0; q < circuit.numQubits(); ++q)
            flips.emplace_back(config_->readout[q].probFlip0to1,
                               config_->readout[q].probFlip1to0);
        const MeasurementMitigator mitigator =
            MeasurementMitigator::forQubits(flips);
        const auto mitigated =
            mitigator.mitigate(countsToProbabilities(counts));
        return hellingerDistance(mitigated, ideal);
    }

    static BackendConfig *config_;
    static std::shared_ptr<const PulseBackend> *backend_;
    static PulseCompiler *standard_;
    static PulseCompiler *optimized_;
};

BackendConfig *IntegrationTest::config_ = nullptr;
std::shared_ptr<const PulseBackend> *IntegrationTest::backend_ = nullptr;
PulseCompiler *IntegrationTest::standard_ = nullptr;
PulseCompiler *IntegrationTest::optimized_ = nullptr;

TEST_F(IntegrationTest, H2VqeBenchmark)
{
    const PauliOperator h = h2Hamiltonian();
    const VariationalResult trained = runVqe2q(h);
    const QuantumCircuit ansatz = uccAnsatz2q(trained.params[0]);
    const double err_std =
        hellingerError(*standard_, ansatz, shots::kBenchmarks, 1);
    const double err_opt =
        hellingerError(*optimized_, ansatz, shots::kBenchmarks, 2);
    EXPECT_LT(err_opt, err_std * 1.05);
    EXPECT_LT(err_opt, 0.25);
}

TEST_F(IntegrationTest, MethaneDynamicsBenchmark)
{
    const QuantumCircuit circuit =
        trotterCircuit(methaneHamiltonian(), 1.0, 6);
    const double err_std =
        hellingerError(*standard_, circuit, shots::kBenchmarks, 3);
    const double err_opt =
        hellingerError(*optimized_, circuit, shots::kBenchmarks, 4);
    // 6 Trotter steps of ZZ-heavy evolution: the optimized flow's CR
    // stretching must produce a clear win.
    EXPECT_LT(err_opt, err_std);
}

TEST_F(IntegrationTest, TrotterCircuitsCompileToCr)
{
    const QuantumCircuit circuit =
        trotterCircuit(waterHamiltonian(), 1.0, 6);
    const QuantumCircuit basis = optimized_->transpile(circuit);
    EXPECT_GE(basis.countType(GateType::Cr), 6u);
    EXPECT_EQ(basis.countType(GateType::Cnot), 0u);
    // Unitary preserved through the full pipeline.
    EXPECT_GT(unitaryOverlap(basis.withoutDirectives().unitary(),
                             circuit.unitary()),
              1 - 1e-7);
}

TEST_F(IntegrationTest, MakespanAdvantageOnTrotter)
{
    const QuantumCircuit circuit =
        trotterCircuit(methaneHamiltonian(), 1.0, 6);
    const CompileResult std_result = standard_->compile(circuit);
    const CompileResult opt_result = optimized_->compile(circuit);
    // Paper: ~2x faster execution overall for near-term algorithms.
    EXPECT_LT(static_cast<double>(opt_result.durationDt),
              0.75 * static_cast<double>(std_result.durationDt));
}

TEST_F(IntegrationTest, QutritCounterSingleCycle)
{
    // One full 0 -> 1 -> 2 -> 0 cycle of the Section 7 counter, on a
    // calibrated qutrit, classified with the LDA readout.
    const BackendConfig armonk = armonkConfig();
    Calibrator calibrator(armonk);
    QubitCalibration cal = calibrator.calibrateQubit(0);
    calibrator.calibrateQutrit(0, cal);
    PulseSimulator sim(calibrator.qubitModel(0));

    const double alpha = armonk.qubits[0].anharmonicityGhz;
    Schedule cycle("counter");
    cycle.play(driveChannel(0), cal.x180Pulse()); // 0 -> 1.
    cycle.play(driveChannel(0),
               std::make_shared<SidebandWaveform>(
                   std::make_shared<GaussianWaveform>(
                       cal.qutritDuration, cal.sigma,
                       Complex{cal.x12Amp, 0.0}),
                   alpha)); // 1 -> 2.
    cycle.play(driveChannel(0),
               std::make_shared<SidebandWaveform>(
                   std::make_shared<GaussianWaveform>(
                       cal.qutritDuration, cal.sigma,
                       Complex{cal.x02Amp, 0.0}),
                   alpha / 2.0)); // 2 -> 0.

    Vector ground(3);
    ground[0] = Complex{1, 0};
    const Vector out = sim.evolveState(cycle, ground);
    EXPECT_GT(std::norm(out[0]), 0.85);

    // Readout classification of the final state.
    const IqReadoutModel iq = IqReadoutModel::qutritDefault();
    Rng rng(9);
    std::vector<IqPoint> train_points;
    std::vector<std::size_t> train_labels;
    for (std::size_t level = 0; level < 3; ++level)
        for (int k = 0; k < 500; ++k) {
            train_points.push_back(iq.sampleShot(level, rng));
            train_labels.push_back(level);
        }
    LdaClassifier lda;
    lda.fit(train_points, train_labels);

    int zeros = 0;
    const int shots = 500;
    std::vector<double> pops = {std::norm(out[0]), std::norm(out[1]),
                                std::norm(out[2])};
    for (int k = 0; k < shots; ++k)
        if (lda.predict(iq.sampleShot(pops, rng)) == 0)
            ++zeros;
    EXPECT_GT(static_cast<double>(zeros) / shots, 0.75);
}

TEST_F(IntegrationTest, BernsteinVaziraniFarTermKernel)
{
    // The far-term comparison kernels also go through both flows.
    const QuantumCircuit circuit = bernsteinVaziraniCircuit(2, 0b10);
    const double err_std = hellingerError(*standard_, circuit, 8000, 5);
    const double err_opt = hellingerError(*optimized_, circuit, 8000, 6);
    EXPECT_LT(err_std, 0.35);
    EXPECT_LT(err_opt, 0.35);
}

TEST_F(IntegrationTest, MitigationImprovesHellinger)
{
    // With vs without measurement-error mitigation on a Bell state.
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.cx(0, 1);
    const std::vector<double> ideal = idealDistribution(circuit);

    DensitySimulator simulator = optimized_->makeSimulator();
    QuantumCircuit with_measure = circuit;
    with_measure.measureAll();
    const NoisyRunResult run =
        simulator.run(optimized_->transpile(with_measure));
    Rng rng(7);
    const auto counts = simulator.sampleCounts(run, 20000, rng);
    const auto raw = countsToProbabilities(counts);

    std::vector<std::pair<double, double>> flips;
    for (std::size_t q = 0; q < 2; ++q)
        flips.emplace_back(config_->readout[q].probFlip0to1,
                           config_->readout[q].probFlip1to0);
    const auto mitigated =
        MeasurementMitigator::forQubits(flips).mitigate(raw);

    EXPECT_LT(hellingerDistance(mitigated, ideal),
              hellingerDistance(raw, ideal));
}

} // namespace
} // namespace qpulse
