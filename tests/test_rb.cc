/**
 * @file
 * Tests for the randomized-benchmarking harness (Section 8.3): RB
 * sequences invert to identity, the decay behaves like f^K, and the
 * Figure 13 ordering (optimized > optimized-slow > standard fidelity)
 * holds on the Armonk-like backend.
 */
#include <gtest/gtest.h>

#include <memory>

#include "common/constants.h"
#include "linalg/gates.h"
#include "rb/randomized_benchmarking.h"

namespace qpulse {
namespace {

TEST(RbSequence, InvertsToIdentity)
{
    Rng rng(3);
    for (int length : {2, 5, 12, 25}) {
        const QuantumCircuit circuit = rbSequence(length, 0, 1, rng);
        EXPECT_EQ(circuit.withoutDirectives().size(),
                  static_cast<std::size_t>(length));
        EXPECT_GT(unitaryOverlap(circuit.unitary(),
                                 Matrix::identity(2)),
                  1 - 1e-9)
            << length;
    }
}

TEST(RbSequence, SequencesAreRandom)
{
    Rng rng(5);
    const QuantumCircuit a = rbSequence(10, 0, 1, rng);
    const QuantumCircuit b = rbSequence(10, 0, 1, rng);
    bool differ = false;
    for (std::size_t g = 0; g + 1 < a.size(); ++g)
        if (!(a.gates()[g] == b.gates()[g]))
            differ = true;
    EXPECT_TRUE(differ);
}

TEST(CoherenceLimit, MatchesFirstOrderExpansion)
{
    // Small t: E ~ t/6T1 + t/3T2.
    const double t = 35.6, t1 = 140.0, t2 = 90.0;
    const double exact = coherenceLimitError(t, t1, t2);
    const double approx =
        t / (6.0 * t1 * 1000.0) + t / (3.0 * t2 * 1000.0);
    EXPECT_NEAR(exact, approx, approx * 0.01);
    EXPECT_GT(exact, 0.0);
}

TEST(CoherenceLimit, TwoXSpeedupBound)
{
    // Section 8.3: the 2x pulse speedup yields >= 0.01% improvement.
    const double slow = coherenceLimitError(71.1, 140.0, 90.0);
    const double fast = coherenceLimitError(35.6, 140.0, 90.0);
    EXPECT_GT(slow - fast, 0.0001);
}

class RbExperimentTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        backend_ = new std::shared_ptr<const PulseBackend>(
            makeCalibratedBackend(armonkConfig()));
        RbConfig config;
        config.maxLength = 20;
        config.lengthStride = 3;
        config.sequencesPerLength = 3;
        config.shots = 4000;
        standard_ = new RbResult(
            runRb(*backend_, RbMode::Standard, config));
        optimized_ = new RbResult(
            runRb(*backend_, RbMode::Optimized, config));
        slow_ = new RbResult(
            runRb(*backend_, RbMode::OptimizedSlow, config));
    }

    static void TearDownTestSuite()
    {
        delete slow_;
        delete optimized_;
        delete standard_;
        delete backend_;
    }

    static std::shared_ptr<const PulseBackend> *backend_;
    static RbResult *standard_;
    static RbResult *optimized_;
    static RbResult *slow_;
};

std::shared_ptr<const PulseBackend> *RbExperimentTest::backend_ = nullptr;
RbResult *RbExperimentTest::standard_ = nullptr;
RbResult *RbExperimentTest::optimized_ = nullptr;
RbResult *RbExperimentTest::slow_ = nullptr;

TEST_F(RbExperimentTest, DecayIsMonotoneOnAverage)
{
    // Survival at the shortest length beats survival at the longest.
    const auto &decay = standard_->decay;
    EXPECT_GT(decay.front().survival, decay.back().survival);
    EXPECT_GT(decay.front().survival, 0.85);
}

TEST_F(RbExperimentTest, FidelitiesInPlausibleRange)
{
    for (const RbResult *result : {standard_, optimized_, slow_}) {
        EXPECT_GT(result->gateFidelity, 0.990);
        EXPECT_LT(result->gateFidelity, 0.99999);
    }
}

TEST_F(RbExperimentTest, Figure13Ordering)
{
    // optimized >= optimized-slow >= standard (f = 99.87 / 99.83 /
    // 99.82 in the paper).
    EXPECT_GT(optimized_->gateFidelity, slow_->gateFidelity - 1e-5);
    EXPECT_GT(slow_->gateFidelity, standard_->gateFidelity - 1e-5);
    // And the total improvement is macroscopic.
    EXPECT_GT(optimized_->gateFidelity - standard_->gateFidelity,
              0.0001);
}

TEST_F(RbExperimentTest, ShorterPulsesDominateImprovement)
{
    // Section 8.3 attributes ~70% of the gain to shorter pulses
    // (optimized vs optimized-slow); require it to be the majority
    // share here too.
    const double total =
        optimized_->gateFidelity - standard_->gateFidelity;
    const double from_speed =
        optimized_->gateFidelity - slow_->gateFidelity;
    EXPECT_GT(from_speed, 0.4 * total);
}

} // namespace
} // namespace qpulse
