/**
 * @file
 * Tests for the Pauli-string / Pauli-operator algebra: products with
 * phase tracking, commutation rules, dense conversion, expectation
 * values and the ground-state solver.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen.h"
#include "linalg/gates.h"
#include "pauli/pauli.h"

namespace qpulse {
namespace {

TEST(PauliProduct, CyclicRules)
{
    // X*Y = iZ, Y*Z = iX, Z*X = iY.
    auto xy = multiplyPauli(PauliOp::X, PauliOp::Y);
    EXPECT_EQ(xy.op, PauliOp::Z);
    EXPECT_EQ(xy.iPower, 1);
    auto yz = multiplyPauli(PauliOp::Y, PauliOp::Z);
    EXPECT_EQ(yz.op, PauliOp::X);
    EXPECT_EQ(yz.iPower, 1);
    auto zx = multiplyPauli(PauliOp::Z, PauliOp::X);
    EXPECT_EQ(zx.op, PauliOp::Y);
    EXPECT_EQ(zx.iPower, 1);
}

TEST(PauliProduct, AnticyclicRules)
{
    auto yx = multiplyPauli(PauliOp::Y, PauliOp::X);
    EXPECT_EQ(yx.op, PauliOp::Z);
    EXPECT_EQ(yx.iPower, 3); // -i.
}

TEST(PauliProduct, IdentityAndSquares)
{
    EXPECT_EQ(multiplyPauli(PauliOp::I, PauliOp::X).op, PauliOp::X);
    EXPECT_EQ(multiplyPauli(PauliOp::X, PauliOp::X).op, PauliOp::I);
    EXPECT_EQ(multiplyPauli(PauliOp::X, PauliOp::X).iPower, 0);
}

TEST(PauliString, ParseAndToString)
{
    const PauliString s = PauliString::parse("XZIY");
    EXPECT_EQ(s.numQubits(), 4u);
    EXPECT_EQ(s.op(0), PauliOp::X);
    EXPECT_EQ(s.op(2), PauliOp::I);
    EXPECT_EQ(s.toString(), "XZIY");
    EXPECT_THROW(PauliString::parse("XQ"), FatalError);
}

TEST(PauliString, WeightAndIdentity)
{
    EXPECT_EQ(PauliString::parse("XZIY").weight(), 3u);
    EXPECT_TRUE(PauliString::parse("III").isIdentity());
    EXPECT_FALSE(PauliString::parse("IIZ").isIdentity());
}

TEST(PauliString, CommutationRules)
{
    // Same-position different Paulis anticommute; two such positions
    // restore commutation.
    EXPECT_FALSE(PauliString::parse("X").commutesWith(
        PauliString::parse("Z")));
    EXPECT_TRUE(PauliString::parse("XX").commutesWith(
        PauliString::parse("ZZ")));
    EXPECT_TRUE(PauliString::parse("XI").commutesWith(
        PauliString::parse("IZ")));
    EXPECT_FALSE(PauliString::parse("XY").commutesWith(
        PauliString::parse("XZ")));
}

TEST(PauliString, CommutationMatchesMatrices)
{
    const std::vector<std::string> strings = {"XY", "ZI", "YY", "XZ",
                                              "IX"};
    for (const auto &a_text : strings) {
        for (const auto &b_text : strings) {
            const PauliString a = PauliString::parse(a_text);
            const PauliString b = PauliString::parse(b_text);
            const Matrix ma = a.toMatrix();
            const Matrix mb = b.toMatrix();
            const Matrix comm = ma * mb - mb * ma;
            const bool commutes = comm.frobeniusNorm() < 1e-12;
            EXPECT_EQ(a.commutesWith(b), commutes)
                << a_text << " vs " << b_text;
        }
    }
}

TEST(PauliString, MultiplyMatchesMatrices)
{
    const PauliString a = PauliString::parse("XY");
    const PauliString b = PauliString::parse("YX");
    const auto [product, i_power] = a.multiply(b);
    // Matrix check: a.toMatrix() * b.toMatrix() == i^power * product.
    Matrix expected = product.toMatrix();
    Complex phase{1, 0};
    for (int k = 0; k < i_power; ++k)
        phase *= Complex{0, 1};
    expected *= phase;
    EXPECT_LT((a.toMatrix() * b.toMatrix()).maxAbsDiff(expected), 1e-12);
}

TEST(PauliString, ToMatrixZZ)
{
    const Matrix zz = PauliString::parse("ZZ").toMatrix();
    EXPECT_LT(zz.maxAbsDiff(kron(gates::z(), gates::z())), 1e-12);
}

TEST(PauliOperator, AddTermCombines)
{
    PauliOperator op(2);
    op.addTerm(0.5, "ZZ");
    op.addTerm(0.25, "ZZ");
    ASSERT_EQ(op.terms().size(), 1u);
    EXPECT_NEAR(op.terms()[0].coefficient, 0.75, 1e-12);
}

TEST(PauliOperator, Prune)
{
    PauliOperator op(1);
    op.addTerm(1e-15, "Z");
    op.addTerm(0.5, "X");
    op.prune();
    ASSERT_EQ(op.terms().size(), 1u);
    EXPECT_EQ(op.terms()[0].string.toString(), "X");
}

TEST(PauliOperator, ExpectationOnBasisStates)
{
    PauliOperator op(1);
    op.addTerm(1.0, "Z");
    Vector zero{Complex{1, 0}, Complex{0, 0}};
    Vector one{Complex{0, 0}, Complex{1, 0}};
    EXPECT_NEAR(op.expectation(zero), 1.0, 1e-12);
    EXPECT_NEAR(op.expectation(one), -1.0, 1e-12);
}

TEST(PauliOperator, ExpectationMatchesMatrix)
{
    PauliOperator op(2);
    op.addTerm(0.3, "XX");
    op.addTerm(-0.2, "ZI");
    op.addTerm(0.1, "YZ");
    // |+0> state.
    Vector state(4);
    state[0] = Complex{1 / std::sqrt(2.0), 0};
    state[2] = Complex{1 / std::sqrt(2.0), 0};
    const Matrix m = op.toMatrix();
    const double direct = state.dot(m.apply(state)).real();
    EXPECT_NEAR(op.expectation(state), direct, 1e-12);
}

TEST(PauliOperator, GroundStateOfZZ)
{
    PauliOperator op(2);
    op.addTerm(1.0, "ZZ");
    EXPECT_NEAR(op.groundStateEnergy(), -1.0, 1e-9);
}

TEST(PauliOperator, GroundStateOfTransverseIsing)
{
    // H = -ZZ - g(XI + IX), g = 1: E0 = -sqrt(1+... (2 qubits:
    // eigenvalues of [-1 shell]); check against dense diagonalisation.
    PauliOperator op(2);
    op.addTerm(-1.0, "ZZ");
    op.addTerm(-1.0, "XI");
    op.addTerm(-1.0, "IX");
    const double e0 = op.groundStateEnergy();
    const EigenSystem es = eigHermitian(op.toMatrix());
    EXPECT_NEAR(e0, es.values[0], 1e-9);
    EXPECT_LT(e0, -2.0);
}

TEST(PauliOperator, SumAndScale)
{
    PauliOperator a(1), b(1);
    a.addTerm(0.5, "Z");
    b.addTerm(0.25, "Z");
    b.addTerm(1.0, "X");
    const PauliOperator sum = a + b;
    const Matrix expected =
        gates::z() * Complex{0.75, 0} + gates::x() * Complex{1.0, 0};
    EXPECT_LT(sum.toMatrix().maxAbsDiff(expected), 1e-12);
    const PauliOperator scaled = sum * 2.0;
    EXPECT_LT(scaled.toMatrix().maxAbsDiff(expected * Complex{2, 0}),
              1e-12);
}

TEST(PauliOperator, HermiticityOfMatrix)
{
    PauliOperator op(2);
    op.addTerm(0.7, "XY");
    op.addTerm(-0.3, "YX");
    op.addTerm(0.2, "ZZ");
    EXPECT_TRUE(op.toMatrix().isHermitian(1e-12));
}

} // namespace
} // namespace qpulse
