/**
 * @file
 * Deterministic mutation-loop fuzz gate for the ingestion boundary
 * (docs/ROBUSTNESS.md, "Ingestion boundary").
 *
 * Seeds are the checked-in corpus (tests/corpus/ingest); each
 * iteration draws a seed document and a mutation (byte flip, truncate,
 * insert, chunk duplication, cross-document splice) from an Rng stream
 * derived from the iteration index, pushes the mutant through
 * parseJob -> validateSchedule and through the DocumentFramer with
 * randomized chunk sizes, and requires the invariant this PR exists
 * for: *every* outcome is Ok or a distinct structured ErrorCode —
 * never a crash, never an exception, never a hang. CI runs this under
 * ASan/LSan so memory errors and leaks fail the gate too.
 *
 * Usage: fuzz_ingest [iterations] [base-seed]
 * On a violation the offending payload is written to
 * ingest-repro-<iteration>.json in the working directory (commit it
 * back to tests/corpus/ingest/invalid once minimized) and the exit
 * code is 1.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "device/schedule_validation.h"
#include "ingest/frontend.h"
#include "ingest/json.h"
#include "ingest/openpulse.h"

namespace fs = std::filesystem;
using namespace qpulse;
using namespace qpulse::ingest;

namespace {

std::vector<std::string>
loadCorpus()
{
    std::vector<std::string> seeds;
    std::vector<fs::path> files;
    for (const char *subdir : {"valid", "invalid"})
        for (const auto &entry : fs::directory_iterator(
                 fs::path(QPULSE_INGEST_CORPUS_DIR) / subdir))
            if (entry.path().extension() == ".json")
                files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const fs::path &path : files) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        seeds.push_back(os.str());
    }
    return seeds;
}

std::string
mutate(const std::vector<std::string> &seeds, Rng &rng)
{
    std::string doc = seeds[rng.uniformInt(seeds.size())];
    const int mutations = 1 + static_cast<int>(rng.uniformInt(4));
    for (int m = 0; m < mutations; ++m) {
        if (doc.empty())
            doc.push_back('{');
        switch (rng.uniformInt(6)) {
        case 0: { // Byte flip.
            const std::size_t at = rng.uniformInt(doc.size());
            doc[at] = static_cast<char>(
                static_cast<unsigned char>(doc[at]) ^
                static_cast<unsigned char>(1 + rng.uniformInt(255)));
            break;
        }
        case 1: // Truncate.
            doc.resize(rng.uniformInt(doc.size() + 1));
            break;
        case 2: { // Insert a random interesting byte.
            static const char kBytes[] = "{}[]\",:\\\x00\x7f\xff"
                                         "e-+.0123456789u";
            const std::size_t at = rng.uniformInt(doc.size() + 1);
            doc.insert(doc.begin() + static_cast<long>(at),
                       kBytes[rng.uniformInt(sizeof kBytes - 1)]);
            break;
        }
        case 3: { // Duplicate a chunk (dup keys, repeated values).
            const std::size_t start = rng.uniformInt(doc.size());
            const std::size_t len = std::min(
                doc.size() - start, 1 + rng.uniformInt(32));
            doc.insert(start, doc.substr(start, len));
            break;
        }
        case 4: { // Splice a window from another seed document.
            const std::string &other =
                seeds[rng.uniformInt(seeds.size())];
            if (other.empty())
                break;
            const std::size_t from = rng.uniformInt(other.size());
            const std::size_t len = std::min(
                other.size() - from, 1 + rng.uniformInt(64));
            const std::size_t at = rng.uniformInt(doc.size() + 1);
            doc.insert(at, other.substr(from, len));
            break;
        }
        default: // Nest the document one level deeper.
            if (rng.uniformInt(2) != 0u) {
                doc.insert(0, 1, '[');
                doc.push_back(']');
            } else {
                doc.insert(0, "{\"w\": ");
                doc.push_back('}');
            }
            break;
        }
    }
    return doc;
}

void
writeRepro(std::uint64_t iteration, const std::string &payload)
{
    const std::string name =
        "ingest-repro-" + std::to_string(iteration) + ".json";
    std::ofstream out(name, std::ios::binary);
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    std::fprintf(stderr,
                 "fuzz_ingest: repro written to %s (commit the "
                 "minimized form to tests/corpus/ingest/invalid)\n",
                 name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t iterations =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
    const std::uint64_t base =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    const std::vector<std::string> seeds = loadCorpus();
    if (seeds.empty()) {
        std::fprintf(stderr, "fuzz_ingest: empty corpus at %s\n",
                     QPULSE_INGEST_CORPUS_DIR);
        return 1;
    }

    ChannelBudget budget;
    budget.driveChannels = 2;
    budget.controlChannels = 1;
    budget.measureChannels = 1;
    budget.acquireChannels = 1;

    std::uint64_t parsedOk = 0;
    std::uint64_t rejected = 0;
    for (std::uint64_t i = 0; i < iterations; ++i) {
        Rng rng(Rng::deriveSeed(base, i));
        const std::string doc = mutate(seeds, rng);
        try {
            // The full defensive pipeline must return a structured
            // Status, whatever the bytes are.
            IngestedJob job;
            const Status status =
                parseJob(doc, IngestLimits{}, job);
            if (status.ok()) {
                ++parsedOk;
                const Status gate =
                    validateSchedule(job.schedule, budget);
                (void)gate; // Either outcome is fine; no crash is not.
            } else {
                ++rejected;
                if (status.message().find(" at byte ") ==
                    std::string::npos) {
                    std::fprintf(stderr,
                                 "fuzz_ingest: iteration %llu: "
                                 "rejection without location "
                                 "context: %s\n",
                                 static_cast<unsigned long long>(i),
                                 status.toString().c_str());
                    writeRepro(i, doc);
                    return 1;
                }
            }

            // The framer must survive the same bytes in arbitrary
            // chunkings without losing the byte budget invariant.
            DocumentFramer framer;
            std::vector<std::string> frames;
            std::size_t cursor = 0;
            while (cursor < doc.size()) {
                const std::size_t take = std::min(
                    doc.size() - cursor,
                    static_cast<std::size_t>(
                        1 + rng.uniformInt(97)));
                framer.feed(
                    std::string_view(doc).substr(cursor, take),
                    frames);
                cursor += take;
            }
            std::string trailing;
            if (framer.flush(trailing))
                frames.push_back(std::move(trailing));
            for (const std::string &frame : frames) {
                IngestedJob reframed;
                (void)parseJob(frame, IngestLimits{}, reframed);
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "fuzz_ingest: iteration %llu threw: %s\n",
                         static_cast<unsigned long long>(i),
                         e.what());
            writeRepro(i, doc);
            return 1;
        } catch (...) {
            std::fprintf(
                stderr,
                "fuzz_ingest: iteration %llu threw a non-standard "
                "exception\n",
                static_cast<unsigned long long>(i));
            writeRepro(i, doc);
            return 1;
        }
    }

    std::printf("fuzz_ingest: %llu iterations over %zu corpus seeds: "
                "%llu parsed ok, %llu structured rejections, zero "
                "crashes\n",
                static_cast<unsigned long long>(iterations),
                seeds.size(),
                static_cast<unsigned long long>(parsedOk),
                static_cast<unsigned long long>(rejected));
    return 0;
}
