/**
 * @file
 * Tests for the two-tier memoized compile cache (src/compile,
 * docs/PERFORMANCE.md "Compile path"): CompileKey sensitivity to every
 * input a compile is a function of, hit-vs-fresh bit-identity,
 * generation invalidation through both recalibration paths (drift
 * watchdog and fleet drain/readmit), fail-closed fallback from corrupt
 * persisted records, calibration-snapshot bootstrap, single-flight
 * coalescing under concurrency, fleet failover compiling through the
 * shared cache, and the CRC-64 CLMUL fast path the persistent tier
 * leans on.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "compile/compile_cache.h"
#include "compile/compiler.h"
#include "device/calibration.h"
#include "device/fault_injector.h"
#include "linalg/simd.h"
#include "pulsesim/simulator.h"
#include "service/backend_pool.h"
#include "service/execution_service.h"
#include "store/artifact_store.h"
#include "store/serde.h"

namespace qpulse {
namespace {

namespace fs = std::filesystem;

/** Fresh unique store directory, removed on scope exit. */
struct TempDir
{
    TempDir()
    {
        static int counter = 0;
        path = fs::temp_directory_path() /
               ("qpulse-compile-test-" + std::to_string(::getpid()) +
                "-" + std::to_string(counter++));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
    fs::path path;
};

/** RAII guard restoring an env var on scope exit. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (old_.has_value())
            setenv(name_, old_->c_str(), 1);
        else
            unsetenv(name_);
    }

    const char *name_;
    std::optional<std::string> old_;
};

/** The paper's CR-pair workload: H-CX-H on a calibrated 2q line. */
QuantumCircuit
cnotWorkload()
{
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.h(1);
    circuit.cx(0, 1);
    circuit.h(1);
    return circuit;
}

/** Everything two CompileResults must agree on bit-for-bit. */
struct ResultFingerprint
{
    std::uint64_t scheduleHash;
    long durationDt;
    std::size_t pulseCount;
    std::size_t frameChangeCount;

    bool operator==(const ResultFingerprint &other) const = default;
};

ResultFingerprint
fingerprintOf(const CompileResult &result)
{
    return ResultFingerprint{store::hashSchedule(result.schedule),
                             result.durationDt, result.pulseCount,
                             result.frameChangeCount};
}

// ------------------------------------------------------------------
// Key derivation.
// ------------------------------------------------------------------

TEST(CompileKey, SensitiveToEveryCompileInput)
{
    const BackendConfig config2 = almadenLineConfig(2);
    const BackendConfig config3 = almadenLineConfig(3);
    const auto backend = makeCalibratedBackend(config2);
    const QuantumCircuit base = cnotWorkload();

    // Gate-parameter change reroutes the circuit fingerprint.
    QuantumCircuit rotated(2);
    rotated.h(0);
    rotated.h(1);
    rotated.cx(0, 1);
    rotated.rz(0.25, 1);
    EXPECT_NE(circuitFingerprint(base, config2),
              circuitFingerprint(rotated, config2));

    // Topology change (2q line vs 3q line) reroutes it too: the
    // router sees a different coupling graph.
    EXPECT_NE(circuitFingerprint(base, config2),
              circuitFingerprint(base, config3));

    // Mode, generation and pass config each reroute the full key.
    PulseCompiler optimized(backend, CompileMode::Optimized);
    PulseCompiler standard(backend, CompileMode::Standard);
    const CompileKey opt_key = optimized.cacheKey(base);
    const CompileKey std_key = standard.cacheKey(base);
    EXPECT_FALSE(opt_key == std_key);
    EXPECT_NE(opt_key.mode, std_key.mode);
    EXPECT_NE(opt_key.passConfigFingerprint,
              std_key.passConfigFingerprint);

    PulseCompiler bumped(backend, CompileMode::Optimized);
    bumped.setCompileGeneration(calibrationGeneration(
        backend->library(), /*epoch=*/1));
    EXPECT_FALSE(optimized.cacheKey(base) == bumped.cacheKey(base));
    EXPECT_EQ(opt_key.circuitFingerprint,
              bumped.cacheKey(base).circuitFingerprint);
}

// ------------------------------------------------------------------
// Memory tier: hit identity and single-flight.
// ------------------------------------------------------------------

TEST(CompileCacheMemory, HitIsBitIdenticalToFreshCompile)
{
    const auto backend =
        makeCalibratedBackend(almadenLineConfig(2));
    const QuantumCircuit circuit = cnotWorkload();

    PulseCompiler uncached(backend, CompileMode::Optimized);
    const CompileResult fresh = uncached.compile(circuit);
    ASSERT_TRUE(fresh.validation.ok());

    PulseCompiler cached(backend, CompileMode::Optimized);
    cached.setCompileCache(std::make_shared<CompileCache>(16));
    const CompileResult miss = cached.compile(circuit);
    const CompileResult hit = cached.compile(circuit);

    EXPECT_EQ(fingerprintOf(fresh), fingerprintOf(miss));
    EXPECT_EQ(fingerprintOf(fresh), fingerprintOf(hit));
    EXPECT_TRUE(hit.validation.ok());
    const CompileCacheStats stats = cached.compileCache()->stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST(CompileCacheMemory, SingleFlightCoalescesConcurrentCompiles)
{
    const auto backend =
        makeCalibratedBackend(almadenLineConfig(2));
    const QuantumCircuit circuit = cnotWorkload();
    PulseCompiler compiler(backend, CompileMode::Optimized);
    const CompileKey key = compiler.cacheKey(circuit);

    CompileCache cache(16);
    std::atomic<int> factory_runs{0};
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<ResultFingerprint> prints(kThreads);
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&, i] {
            const CompileResult result = cache.getOrCompile(key, [&] {
                ++factory_runs;
                return compiler.compile(circuit);
            });
            prints[static_cast<std::size_t>(i)] =
                fingerprintOf(result);
        });
    for (std::thread &thread : threads)
        thread.join();

    // N concurrent compiles of one key cost exactly one pipeline run;
    // everyone else was served a hit or coalesced behind the leader.
    EXPECT_EQ(factory_runs.load(), 1);
    const CompileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits + stats.coalesced,
              static_cast<std::uint64_t>(kThreads - 1));
    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(prints[0], prints[static_cast<std::size_t>(i)]);
}

// ------------------------------------------------------------------
// Persistent tier.
// ------------------------------------------------------------------

TEST(CompileCachePersist, FreshProcessServesFromDiskBitIdentically)
{
    TempDir dir;
    const auto backend =
        makeCalibratedBackend(almadenLineConfig(2));
    const QuantumCircuit circuit = cnotWorkload();

    ResultFingerprint first_print{};
    {
        auto store = store::ArtifactStore::open(dir.str(), 64 << 20);
        ASSERT_NE(store, nullptr);
        PulseCompiler compiler(backend, CompileMode::Optimized);
        compiler.setCompileCache(
            std::make_shared<CompileCache>(16, store));
        const CompileResult result = compiler.compile(circuit);
        ASSERT_TRUE(result.validation.ok());
        first_print = fingerprintOf(result);
        ASSERT_TRUE(compiler.compileCache()->flush().ok());
    }

    // "New process": cold memory tier over the same directory.
    auto store = store::ArtifactStore::open(dir.str(), 64 << 20);
    ASSERT_NE(store, nullptr);
    PulseCompiler compiler(backend, CompileMode::Optimized);
    auto cache = std::make_shared<CompileCache>(16, store);
    compiler.setCompileCache(cache);
    const CompileResult served = compiler.compile(circuit);
    EXPECT_TRUE(served.validation.ok());
    EXPECT_EQ(first_print, fingerprintOf(served));
    EXPECT_EQ(cache->stats().persistHits, 1u);
    EXPECT_EQ(cache->stats().misses, 0u);
}

TEST(CompileCachePersist, CorruptRecordFallsBackFailClosed)
{
    TempDir dir;
    const auto backend =
        makeCalibratedBackend(almadenLineConfig(2));
    const QuantumCircuit circuit = cnotWorkload();
    PulseCompiler compiler(backend, CompileMode::Optimized);
    const CompileKey key = compiler.cacheKey(circuit);

    // Plant a record whose store framing is valid (CRC passes) but
    // whose payload is garbage — the decoder, not the checksum, must
    // reject it.
    auto store = store::ArtifactStore::open(dir.str(), 64 << 20);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store
                    ->put(compileArtifactKey(key),
                          std::vector<std::uint8_t>(
                              {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}))
                    .ok());
    ASSERT_TRUE(store->flush().ok());

    auto cache = std::make_shared<CompileCache>(16, store);
    compiler.setCompileCache(cache);
    const CompileResult result = compiler.compile(circuit);
    // Fail closed: the bad record was discarded and a fresh compile
    // produced a valid result.
    EXPECT_TRUE(result.validation.ok());
    const CompileCacheStats stats = cache->stats();
    EXPECT_GE(stats.persistFallbacks, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.persistHits, 0u);
}

TEST(CompileCachePersist, RecordRoundTripGuardsKeyEcho)
{
    const auto backend =
        makeCalibratedBackend(almadenLineConfig(2));
    const QuantumCircuit circuit = cnotWorkload();
    PulseCompiler compiler(backend, CompileMode::Optimized);
    const CompileResult result = compiler.compile(circuit);
    const CompileKey key = compiler.cacheKey(circuit);

    store::ByteWriter writer;
    serializeCompileResult(key, result, writer);

    CompileResult decoded{QuantumCircuit(1)};
    store::ByteReader reader(writer.bytes().data(), writer.size());
    ASSERT_TRUE(deserializeCompileResult(reader, key, decoded).ok());
    EXPECT_EQ(fingerprintOf(result), fingerprintOf(decoded));

    // A hash-colliding record (key echo mismatch) must fail closed.
    CompileKey other = key;
    other.calibrationGeneration ^= 1;
    CompileResult rejected{QuantumCircuit(1)};
    store::ByteReader reader2(writer.bytes().data(), writer.size());
    const Status mismatch =
        deserializeCompileResult(reader2, other, rejected);
    EXPECT_EQ(mismatch.code(), ErrorCode::StoreCorrupt);
}

// ------------------------------------------------------------------
// Calibration-snapshot bootstrap.
// ------------------------------------------------------------------

TEST(CalibrationSnapshot, BootstrapRoundTripSkipsTheSweep)
{
    TempDir dir;
    const BackendConfig config = almadenLineConfig(2);
    auto store = store::ArtifactStore::open(dir.str(), 64 << 20);
    ASSERT_NE(store, nullptr);

    bool loaded = true;
    const auto cold = makeCalibratedBackend(
        config, /*include_qutrit=*/false, store, &loaded);
    EXPECT_FALSE(loaded); // First build runs the sweep and persists.

    const auto warm = makeCalibratedBackend(
        config, /*include_qutrit=*/false, store, &loaded);
    EXPECT_TRUE(loaded); // Second build bootstraps from the snapshot.
    EXPECT_EQ(store::hashPulseLibrary(cold->library()),
              store::hashPulseLibrary(warm->library()));

    // The qutrit variant keys separately: it must re-sweep, not get
    // served the qubit-only snapshot.
    const auto qutrit = makeCalibratedBackend(
        config, /*include_qutrit=*/true, store, &loaded);
    EXPECT_FALSE(loaded);
    EXPECT_TRUE(libraryHasQutrit(qutrit->library()));
    EXPECT_FALSE(libraryHasQutrit(warm->library()));
}

// ------------------------------------------------------------------
// Generation invalidation: both recalibration paths.
// ------------------------------------------------------------------

/** Calibrated single-qubit substrate for service/fleet tests. */
struct Rig
{
    Rig()
        : config(almadenLineConfig(1)),
          backend(makeCalibratedBackend(config)),
          calibrator(config), sim(calibrator.qubitModel(0))
    {}

    BackendConfig config;
    std::shared_ptr<const PulseBackend> backend;
    Calibrator calibrator;
    PulseSimulator sim;
};

JobRequest
circuitJob(long shots = 64)
{
    QuantumCircuit circuit(1);
    circuit.x(0);
    JobRequest request;
    request.circuit = circuit;
    request.key = "x-circuit";
    request.shots = shots;
    request.seed = 0xA11CE;
    return request;
}

TEST(CompileCacheService, WatchdogRecalibrationInvalidates)
{
    EnvGuard guard("QPULSE_CACHE_DIR", nullptr);
    const Rig rig;

    ServicePolicy policy;
    policy.watchdog.tolerance = 0.1;
    policy.watchdog.maxRecalibrations = 2;
    policy.maxThreads = 1;
    ExecutionService service(rig.backend, rig.sim, policy);
    ASSERT_NE(service.compileCache(), nullptr);
    const std::uint64_t gen0 = service.compiler().compileGeneration();

    FaultPlan plan;
    plan.driftRate = 1.0;
    plan.driftFreqKhz = 8000.0;
    plan.driftAmpError = 0.3;
    service.setFaultInjector(std::make_shared<FaultInjector>(plan));

    ASSERT_TRUE(service.submit(circuitJob(/*shots=*/512)).ok());
    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].status.ok())
        << outcomes[0].status.toString();
    ASSERT_EQ(outcomes[0].execution.stats.recalibrations, 1);

    // The watchdog recalibration advanced the compile generation, so
    // the same circuit misses (its old schedule is unreachable).
    EXPECT_NE(service.compiler().compileGeneration(), gen0);
    const std::uint64_t misses_before =
        service.compileCache()->stats().misses;
    ASSERT_TRUE(service.submit(circuitJob()).ok());
    service.drain();
    EXPECT_GT(service.compileCache()->stats().misses, misses_before);
}

TEST(CompileCacheFleet, DrainReadmitInvalidatesPerMember)
{
    EnvGuard guard("QPULSE_CACHE_DIR", nullptr);
    const Rig rig;
    auto pool = std::make_shared<BackendPool>();
    pool->addBackend("b0", rig.backend, rig.sim);
    pool->addBackend("b1", rig.backend, rig.sim);

    // Identical libraries + epoch 0: both members share one compile
    // generation (by design — failover hops serve from cache).
    EXPECT_EQ(pool->compileGeneration("b0"),
              pool->compileGeneration("b1"));

    const std::uint64_t gen0 = pool->compileGeneration("b0");
    ASSERT_TRUE(pool->beginDrain("b0").ok());
    ASSERT_TRUE(pool->readmit("b0").ok());
    EXPECT_NE(pool->compileGeneration("b0"), gen0);
    EXPECT_EQ(pool->compileGeneration("b1"), gen0);

    // The recalibrated member misses; the untouched member still hits.
    QuantumCircuit circuit(1);
    circuit.x(0);
    (void)pool->compiler("b1").compile(circuit);
    const std::uint64_t misses1 = pool->compileCache()->stats().misses;
    (void)pool->compiler("b1").compile(circuit);
    EXPECT_EQ(pool->compileCache()->stats().misses, misses1);
    (void)pool->compiler("b0").compile(circuit);
    EXPECT_GT(pool->compileCache()->stats().misses, misses1);
}

// ------------------------------------------------------------------
// Fleet failover compiles through the shared cache.
// ------------------------------------------------------------------

TEST(CompileCacheFleet, FailoverHopCompilesAreCacheHits)
{
    EnvGuard guard("QPULSE_CACHE_DIR", nullptr);
    const Rig rig;
    auto pool = std::make_shared<BackendPool>();
    pool->addBackend("b0", rig.backend, rig.sim);
    pool->addBackend("b1", rig.backend, rig.sim);

    // Wedge b0 so the job fails over to b1.
    FaultPlan wedged;
    wedged.timeoutRate = 1.0; // Every attempt times out.
    pool->setFaultInjector(
        "b0", std::make_shared<FaultInjector>(wedged));

    ServicePolicy policy;
    policy.maxThreads = 1;
    policy.retry.maxAttempts = 2;
    ExecutionService service(pool, policy);

    ASSERT_TRUE(service.submit(circuitJob()).ok());
    const std::vector<JobOutcome> outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    const JobOutcome &out = outcomes[0];
    EXPECT_TRUE(out.status.ok()) << out.status.toString();
    EXPECT_EQ(out.backend, "b1");
    ASSERT_EQ(out.path.size(), 2u);

    // Regression (the old behavior re-ran the pass pipeline per hop):
    // one precompile miss, then BOTH hop compiles — b0's and b1's —
    // hit the shared cache, because the members share a calibration
    // generation.
    const CompileCacheStats stats = pool->compileCache()->stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_GE(stats.hits, 2u);
}

// ------------------------------------------------------------------
// The CRC-64 fast path the persistent tier leans on.
// ------------------------------------------------------------------

TEST(Crc64, ClmulPathIsLiveAndMatchesTable)
{
    std::vector<std::uint8_t> buffer(4096);
    std::uint64_t lcg = 0x6A09E667F3BCC909ull;
    for (std::uint8_t &byte : buffer) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        byte = static_cast<std::uint8_t>(lcg >> 56);
    }

    // Differential: one whole-buffer CRC (CLMUL-eligible) must equal
    // the CRC chained through sub-64-byte pieces (table path only).
    const std::uint64_t whole =
        store::crc64(buffer.data(), buffer.size());
    std::uint64_t chained = 0;
    for (std::size_t pos = 0; pos < buffer.size(); pos += 13)
        chained = store::crc64(buffer.data() + pos,
                               std::min<std::size_t>(
                                   13, buffer.size() - pos),
                               chained);
    EXPECT_EQ(whole, chained);

    EXPECT_STREQ(store::crc64ActivePath(16), "table");
    if (kernels::pclmulSupported()) {
        // On capable hardware the fast path must actually be live for
        // large inputs — a silent fallback is a perf regression.
        EXPECT_STREQ(store::crc64ActivePath(4096), "clmul");
        // The QPULSE_SIMD escape hatch forces the table path.
        const kernels::SimdMode saved = kernels::activeSimd();
        kernels::setActiveSimd(kernels::SimdMode::Scalar);
        EXPECT_STREQ(store::crc64ActivePath(4096), "table");
        kernels::setActiveSimd(saved);
    }
}

} // namespace
} // namespace qpulse
