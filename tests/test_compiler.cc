/**
 * @file
 * Tests for the end-to-end PulseCompiler: the two Figure 1 flows,
 * their duration/pulse-count headline numbers (2x faster X, ~2x
 * shorter ZZ, ~24% shorter open-CNOT), and the physical correctness
 * of compiled schedules against the pulse simulator.
 */
#include <gtest/gtest.h>

#include <memory>

#include "common/constants.h"
#include "compile/compiler.h"
#include "linalg/gates.h"

namespace qpulse {
namespace {

class CompilerTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        config_ = new BackendConfig(almadenLineConfig(2));
        backend_ = new std::shared_ptr<const PulseBackend>(
            makeCalibratedBackend(*config_));
        standard_ =
            new PulseCompiler(*backend_, CompileMode::Standard);
        optimized_ =
            new PulseCompiler(*backend_, CompileMode::Optimized);
        calibrator_ = new Calibrator(*config_);
        pair_sim_ = new PulseSimulator(calibrator_->pairSimulator(0, 1));
    }

    static void TearDownTestSuite()
    {
        delete pair_sim_;
        delete calibrator_;
        delete optimized_;
        delete standard_;
        delete backend_;
        delete config_;
    }

    static double scheduleFidelity(const Schedule &schedule,
                                   const Matrix &target)
    {
        const UnitaryResult result = pair_sim_->evolveUnitary(schedule);
        const Matrix eff = pair_sim_->effectiveUnitary(result);
        const std::size_t idx[4] = {0, 1, 3, 4};
        Matrix projected(4, 4);
        for (std::size_t r = 0; r < 4; ++r)
            for (std::size_t c = 0; c < 4; ++c)
                projected(r, c) = eff(idx[r], idx[c]);
        return averageGateFidelity(projected, target);
    }

    static BackendConfig *config_;
    static std::shared_ptr<const PulseBackend> *backend_;
    static PulseCompiler *standard_;
    static PulseCompiler *optimized_;
    static Calibrator *calibrator_;
    static PulseSimulator *pair_sim_;
};

BackendConfig *CompilerTest::config_ = nullptr;
std::shared_ptr<const PulseBackend> *CompilerTest::backend_ = nullptr;
PulseCompiler *CompilerTest::standard_ = nullptr;
PulseCompiler *CompilerTest::optimized_ = nullptr;
Calibrator *CompilerTest::calibrator_ = nullptr;
PulseSimulator *CompilerTest::pair_sim_ = nullptr;

TEST_F(CompilerTest, DirectXTwiceAsFast)
{
    // Figure 4: 71.1 ns standard vs 35.6 ns optimized.
    QuantumCircuit circuit(2);
    circuit.x(0);
    const CompileResult std_result = standard_->compile(circuit);
    const CompileResult opt_result = optimized_->compile(circuit);
    EXPECT_EQ(std_result.durationDt, 320);
    EXPECT_EQ(opt_result.durationDt, 160);
    EXPECT_NEAR(std_result.durationNs(), 71.1, 0.1);
    EXPECT_NEAR(opt_result.durationNs(), 35.6, 0.1);
    EXPECT_EQ(std_result.pulseCount, 2u);
    EXPECT_EQ(opt_result.pulseCount, 1u);
}

TEST_F(CompilerTest, DirectRxHalvesPulseCountForAllAngles)
{
    // Figure 5: every Rx(theta) is 2x faster and uses 1 pulse.
    for (double theta : {0.2, 0.9, 1.8, 2.9}) {
        QuantumCircuit circuit(2);
        circuit.rx(theta, 0);
        const CompileResult std_result = standard_->compile(circuit);
        const CompileResult opt_result = optimized_->compile(circuit);
        EXPECT_EQ(std_result.pulseCount, 2u) << theta;
        EXPECT_EQ(opt_result.pulseCount, 1u) << theta;
        EXPECT_EQ(std_result.durationDt, 2 * opt_result.durationDt);
    }
}

TEST_F(CompilerTest, CompiledXIsCorrectOnHardware)
{
    QuantumCircuit circuit(2);
    circuit.x(0);
    const Matrix target = gates::embed1q(gates::x(), 0, 2);
    EXPECT_GT(scheduleFidelity(standard_->compile(circuit).schedule,
                               target),
              0.995);
    EXPECT_GT(scheduleFidelity(optimized_->compile(circuit).schedule,
                               target),
              0.995);
}

TEST_F(CompilerTest, GenericU3CorrectBothFlows)
{
    QuantumCircuit circuit(2);
    circuit.u3(1.1, 0.4, -0.8, 1);
    const Matrix target =
        gates::embed1q(gates::u3(1.1, 0.4, -0.8), 1, 2);
    EXPECT_GT(scheduleFidelity(standard_->compile(circuit).schedule,
                               target),
              0.99);
    EXPECT_GT(scheduleFidelity(optimized_->compile(circuit).schedule,
                               target),
              0.99);
}

TEST_F(CompilerTest, ZzInteractionTwiceAsCheap)
{
    // Section 6.2: ZZ(theta) = one stretched CR vs two CNOTs.
    QuantumCircuit circuit(2);
    circuit.cx(0, 1);
    circuit.rz(0.7, 1);
    circuit.cx(0, 1);
    const CompileResult std_result = standard_->compile(circuit);
    const CompileResult opt_result = optimized_->compile(circuit);
    // Optimized should be at least 2x shorter for small angles.
    EXPECT_LT(2 * opt_result.durationDt, std_result.durationDt + 400);
    EXPECT_GT(scheduleFidelity(std_result.schedule, gates::zz(0.7)),
              0.95);
    EXPECT_GT(scheduleFidelity(opt_result.schedule, gates::zz(0.7)),
              0.95);
    // And the optimized flow must have produced an actual CR gate.
    EXPECT_EQ(opt_result.basisCircuit.countType(GateType::Cr), 1u);
    EXPECT_EQ(opt_result.basisCircuit.countType(GateType::Cnot), 0u);
}

TEST_F(CompilerTest, OpenCnotReduction)
{
    // Figure 8: ~24% duration reduction from cross-gate cancellation.
    QuantumCircuit circuit(2);
    circuit.openCx(0, 1);
    const CompileResult std_result = standard_->compile(circuit);
    const CompileResult opt_result = optimized_->compile(circuit);
    const double reduction =
        1.0 - static_cast<double>(opt_result.durationDt) /
                  static_cast<double>(std_result.durationDt);
    EXPECT_GT(reduction, 0.15);
    EXPECT_LT(reduction, 0.40);
    EXPECT_GT(scheduleFidelity(std_result.schedule, gates::openCnot()),
              0.96);
    EXPECT_GT(scheduleFidelity(opt_result.schedule, gates::openCnot()),
              0.96);
}

TEST_F(CompilerTest, CnotCorrectBothFlows)
{
    QuantumCircuit circuit(2);
    circuit.cx(0, 1);
    EXPECT_GT(scheduleFidelity(standard_->compile(circuit).schedule,
                               gates::cnot()),
              0.97);
    EXPECT_GT(scheduleFidelity(optimized_->compile(circuit).schedule,
                               gates::cnot()),
              0.97);
}

TEST_F(CompilerTest, BellCircuitBothFlows)
{
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.cx(0, 1);
    const Matrix target = circuit.unitary();
    EXPECT_GT(scheduleFidelity(standard_->compile(circuit).schedule,
                               target),
              0.96);
    EXPECT_GT(scheduleFidelity(optimized_->compile(circuit).schedule,
                               target),
              0.96);
}

TEST_F(CompilerTest, RzIsFreeInBothFlows)
{
    QuantumCircuit circuit(2);
    circuit.rz(1.3, 0);
    EXPECT_EQ(standard_->compile(circuit).durationDt, 0);
    EXPECT_EQ(optimized_->compile(circuit).durationDt, 0);
    EXPECT_EQ(standard_->compile(circuit).pulseCount, 0u);
}

TEST_F(CompilerTest, FrameChangeCountTracked)
{
    QuantumCircuit circuit(2);
    circuit.u3(0.5, 0.2, 0.1, 0);
    const CompileResult result = optimized_->compile(circuit);
    EXPECT_GE(result.frameChangeCount, 1u);
}

TEST_F(CompilerTest, MeasurementLowersToStimulus)
{
    QuantumCircuit circuit(2);
    circuit.x(0);
    circuit.measure(0);
    const CompileResult result = optimized_->compile(circuit);
    EXPECT_GE(result.durationDt, config_->measureDuration);
}

TEST_F(CompilerTest, SimulatorWiring)
{
    // makeSimulator produces a working duration-aware simulator.
    DensitySimulator simulator = optimized_->makeSimulator();
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.cx(0, 1);
    const NoisyRunResult result = simulator.run(
        optimized_->transpile(circuit));
    double total = 0.0;
    for (double p : result.probs)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Bell-ish distribution despite the noise.
    EXPECT_GT(result.probs[0], 0.35);
    EXPECT_GT(result.probs[3], 0.35);
}

TEST_F(CompilerTest, CompiledSchedulesValidateClean)
{
    // Every compiled schedule obeys the hardware constraints: bounded
    // envelopes and no channel overlap.
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.rzz(0.7, 0, 1);
    circuit.openCx(0, 1);
    circuit.u3(0.9, 0.2, -1.0, 1);
    for (const PulseCompiler *compiler : {standard_, optimized_}) {
        const CompileResult result = compiler->compile(circuit);
        const auto violations = result.schedule.validate();
        EXPECT_TRUE(violations.empty())
            << (violations.empty() ? "" : violations.front());
    }
}

TEST_F(CompilerTest, OptimizedBeatsStandardOnHellinger)
{
    // The core claim, in miniature: a ZZ-heavy circuit runs with
    // lower Hellinger error under the optimized flow.
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.h(1);
    for (int step = 0; step < 4; ++step) {
        circuit.cx(0, 1);
        circuit.rz(0.5, 1);
        circuit.cx(0, 1);
        circuit.rx(0.6, 0);
        circuit.rx(0.6, 1);
    }
    // (Hellinger comparison itself lives in test_integration; here we
    // just assert the optimized program is much shorter.)
    const CompileResult std_result = standard_->compile(circuit);
    const CompileResult opt_result = optimized_->compile(circuit);
    EXPECT_LT(opt_result.durationDt, std_result.durationDt / 2 + 400);
    EXPECT_LT(opt_result.pulseCount, std_result.pulseCount);
}

} // namespace
} // namespace qpulse
