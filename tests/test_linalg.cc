/**
 * @file
 * Unit + property tests for the linear algebra substrate: matrix
 * arithmetic, Kronecker products, the Hermitian eigensolver, matrix
 * exponentials, gate matrices and fidelity measures.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/gates.h"
#include "linalg/matrix.h"

namespace qpulse {
namespace {

Matrix
randomHermitian(std::size_t n, Rng &rng)
{
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = Complex{rng.uniform(-1, 1), 0.0};
        for (std::size_t j = i + 1; j < n; ++j) {
            const Complex z{rng.uniform(-1, 1), rng.uniform(-1, 1)};
            a(i, j) = z;
            a(j, i) = std::conj(z);
        }
    }
    return a;
}

TEST(Vector, NormAndNormalize)
{
    Vector v{Complex{3, 0}, Complex{0, 4}};
    EXPECT_NEAR(v.norm(), 5.0, 1e-12);
    v.normalize();
    EXPECT_NEAR(v.norm(), 1.0, 1e-12);
}

TEST(Vector, DotConjugateLinear)
{
    Vector a{Complex{0, 1}, Complex{1, 0}};
    Vector b{Complex{1, 0}, Complex{0, 0}};
    // <a|b> = conj(i) * 1 = -i.
    const Complex d = a.dot(b);
    EXPECT_NEAR(d.real(), 0.0, 1e-12);
    EXPECT_NEAR(d.imag(), -1.0, 1e-12);
}

TEST(Matrix, IdentityAndDiagonal)
{
    const Matrix eye = Matrix::identity(3);
    EXPECT_TRUE(eye.isIdentity());
    const Matrix d = Matrix::diagonal({Complex{1, 0}, Complex{0, 1}});
    EXPECT_EQ(d(1, 1), (Complex{0, 1}));
    EXPECT_EQ(d(0, 1), (Complex{0, 0}));
}

TEST(Matrix, MultiplyKnownProduct)
{
    // X * Z = -iY.
    const Matrix xz = gates::x() * gates::z();
    const Matrix expected = gates::y() * Complex{0, -1};
    EXPECT_LT(xz.maxAbsDiff(expected), 1e-12);
}

TEST(Matrix, AdjointAndTranspose)
{
    Matrix m{{Complex{1, 2}, Complex{3, 4}},
             {Complex{5, 6}, Complex{7, 8}}};
    const Matrix adj = m.adjoint();
    EXPECT_EQ(adj(0, 1), (Complex{5, -6}));
    const Matrix tr = m.transpose();
    EXPECT_EQ(tr(0, 1), (Complex{5, 6}));
    EXPECT_LT((m.conjugate().transpose()).maxAbsDiff(adj), 1e-15);
}

TEST(Matrix, TraceAndNorm)
{
    const Matrix z = gates::z();
    EXPECT_NEAR(std::abs(z.trace()), 0.0, 1e-12);
    EXPECT_NEAR(z.frobeniusNorm(), std::sqrt(2.0), 1e-12);
}

TEST(Matrix, UnitaryChecks)
{
    EXPECT_TRUE(gates::h().isUnitary());
    EXPECT_TRUE(gates::cnot().isUnitary());
    Matrix not_unitary{{1, 1}, {0, 1}};
    EXPECT_FALSE(not_unitary.isUnitary());
}

TEST(Matrix, HermitianCheck)
{
    EXPECT_TRUE(gates::x().isHermitian());
    EXPECT_TRUE(gates::y().isHermitian());
    EXPECT_FALSE(gates::s().isHermitian());
}

TEST(Kron, PauliProducts)
{
    const Matrix zz = kron(gates::z(), gates::z());
    EXPECT_EQ(zz.rows(), 4u);
    EXPECT_EQ(zz(0, 0), (Complex{1, 0}));
    EXPECT_EQ(zz(1, 1), (Complex{-1, 0}));
    EXPECT_EQ(zz(2, 2), (Complex{-1, 0}));
    EXPECT_EQ(zz(3, 3), (Complex{1, 0}));
}

TEST(Kron, MixedProductProperty)
{
    // (A (x) B)(C (x) D) = AC (x) BD.
    Rng rng(3);
    const Matrix a = randomHermitian(2, rng);
    const Matrix b = randomHermitian(2, rng);
    const Matrix c = randomHermitian(2, rng);
    const Matrix d = randomHermitian(2, rng);
    const Matrix lhs = kron(a, b) * kron(c, d);
    const Matrix rhs = kron(a * c, b * d);
    EXPECT_LT(lhs.maxAbsDiff(rhs), 1e-12);
}

TEST(Kron, VectorKron)
{
    Vector zero{Complex{1, 0}, Complex{0, 0}};
    Vector one{Complex{0, 0}, Complex{1, 0}};
    const Vector v = kron(zero, one); // |01>
    EXPECT_NEAR(std::norm(v[1]), 1.0, 1e-12);
}

TEST(Eigen, DiagonalMatrix)
{
    const Matrix d =
        Matrix::diagonal({Complex{3, 0}, Complex{-1, 0}, Complex{2, 0}});
    const EigenSystem es = eigHermitian(d);
    EXPECT_NEAR(es.values[0], -1.0, 1e-10);
    EXPECT_NEAR(es.values[1], 2.0, 1e-10);
    EXPECT_NEAR(es.values[2], 3.0, 1e-10);
}

TEST(Eigen, PauliX)
{
    const EigenSystem es = eigHermitian(gates::x());
    EXPECT_NEAR(es.values[0], -1.0, 1e-10);
    EXPECT_NEAR(es.values[1], 1.0, 1e-10);
}

class EigenRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EigenRandomTest, ReconstructsMatrix)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 8;
    const Matrix a = randomHermitian(n, rng);
    const EigenSystem es = eigHermitian(a);

    // V diag(values) V^dag == A.
    std::vector<Complex> diag(n);
    for (std::size_t i = 0; i < n; ++i)
        diag[i] = Complex{es.values[i], 0.0};
    const Matrix rebuilt =
        es.vectors * Matrix::diagonal(diag) * es.vectors.adjoint();
    EXPECT_LT(rebuilt.maxAbsDiff(a), 1e-9);
    EXPECT_TRUE(es.vectors.isUnitary(1e-9));

    // Eigenvalues ascending.
    for (std::size_t i = 1; i < n; ++i)
        EXPECT_LE(es.values[i - 1], es.values[i] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomHermitians, EigenRandomTest,
                         ::testing::Range(0, 12));

TEST(Expm, HermitianPropagatorIsUnitary)
{
    Rng rng(5);
    const Matrix h = randomHermitian(5, rng);
    const Matrix u = expMinusIHt(h, 0.37);
    EXPECT_TRUE(u.isUnitary(1e-9));
}

TEST(Expm, MatchesAnalyticRotation)
{
    // exp(-i theta/2 X) = Rx(theta).
    const double theta = 1.234;
    const Matrix u = expMinusIHt(gates::x(), theta / 2);
    EXPECT_LT(u.maxAbsDiff(gates::rx(theta)), 1e-10);
}

TEST(Expm, GeneralAgainstHermitianPath)
{
    Rng rng(9);
    const Matrix h = randomHermitian(4, rng);
    const Matrix via_eig = expMinusIHt(h, 1.0);
    const Matrix via_taylor = expm(h * Complex{0.0, -1.0});
    EXPECT_LT(via_eig.maxAbsDiff(via_taylor), 1e-9);
}

TEST(Expm, Identity)
{
    const Matrix z = Matrix::zero(3);
    EXPECT_TRUE(expm(z).isIdentity(1e-12));
}

TEST(Expm, EarlyExitKeepsHermitianAgreementAcrossScales)
{
    // The Taylor loop's relative early exit (documented bound: tail
    // after term T_k is <= ||T_k|| once the scaled 1-norm is <= 1/2)
    // must agree with the eigendecomposition path at small norms (no
    // squaring), at norms just above the squaring threshold, and at
    // large norms (many squarings compound the truncation error).
    Rng rng(11);
    const Matrix h = randomHermitian(5, rng);
    for (const double t : {1e-4, 0.3, 1.0, 7.0, 30.0}) {
        const Matrix via_eig = expMinusIHt(h, t);
        const Matrix via_taylor = expm(h * Complex{0.0, -t});
        EXPECT_LT(via_eig.maxAbsDiff(via_taylor), 1e-9)
            << "expm diverged from the Hermitian path at t=" << t;
        EXPECT_TRUE(via_taylor.isUnitary(1e-8));
    }
}

TEST(Expm, EarlyExitMatchesScaledIdentity)
{
    // exp(a I) = e^a I exactly; the early exit fires after very few
    // terms here and must not degrade the result.
    const double a = 0.125;
    Matrix m = Matrix::identity(4);
    m *= Complex{a, 0.0};
    const Matrix e = expm(m);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(e(i, i).real(), std::exp(a), 1e-13);
}

TEST(SolveLinear, SolvesKnownSystem)
{
    // x + 2y = 5; 3x - y = 1 -> x = 1, y = 2.
    const auto x = solveLinearReal({{1, 2}, {3, -1}}, {5, 1});
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(SolveLinear, SingularThrows)
{
    EXPECT_THROW(solveLinearReal({{1, 2}, {2, 4}}, {1, 2}), FatalError);
}

TEST(Gates, RotationComposition)
{
    // Rx(a) Rx(b) = Rx(a + b).
    const Matrix lhs = gates::rx(0.4) * gates::rx(0.9);
    EXPECT_LT(lhs.maxAbsDiff(gates::rx(1.3)), 1e-12);
    const Matrix lz = gates::rz(0.4) * gates::rz(0.9);
    EXPECT_LT(lz.maxAbsDiff(gates::rz(1.3)), 1e-12);
}

TEST(Gates, HadamardConjugation)
{
    // H X H = Z and H Z H = X.
    const Matrix h = gates::h();
    EXPECT_LT((h * gates::x() * h).maxAbsDiff(gates::z()), 1e-12);
    EXPECT_LT((h * gates::z() * h).maxAbsDiff(gates::x()), 1e-12);
}

TEST(Gates, U3Identities)
{
    // U3(pi, 0, pi) = X.
    EXPECT_GT(unitaryOverlap(gates::u3(kPi, 0, kPi), gates::x()),
              1 - 1e-10);
    // U3(pi/2, 0, pi) = H.
    EXPECT_GT(unitaryOverlap(gates::u3(kPi / 2, 0, kPi), gates::h()),
              1 - 1e-10);
    // U3(theta, -pi/2, pi/2) = Rx(theta).
    EXPECT_GT(unitaryOverlap(gates::u3(0.7, -kPi / 2, kPi / 2),
                             gates::rx(0.7)),
              1 - 1e-10);
}

TEST(Gates, CnotFromCr)
{
    // CNOT = e^{-i pi/4} Rz(-90)_c Rx(-90)_t CR(90) (Section 5.1).
    const Matrix built = kron(gates::rz(-kPi / 2), gates::i2()) *
                         kron(gates::i2(), gates::rx(-kPi / 2)) *
                         gates::cr(kPi / 2);
    EXPECT_GT(unitaryOverlap(built, gates::cnot()), 1 - 1e-10);
}

TEST(Gates, EchoedCrIdentity)
{
    // (X (x) I) CR(-t/2) (X (x) I) CR(t/2) = CR(t) (Section 5.1).
    const double theta = 0.9;
    const Matrix xc = kron(gates::x(), gates::i2());
    const Matrix echo =
        xc * gates::cr(-theta / 2) * xc * gates::cr(theta / 2);
    EXPECT_LT(echo.maxAbsDiff(gates::cr(theta)), 1e-12);
}

TEST(Gates, ZzFromCr)
{
    // ZZ(t) = (I (x) H) CR(t) (I (x) H) (Section 6.2).
    const double theta = 0.8;
    const Matrix ih = kron(gates::i2(), gates::h());
    EXPECT_LT((ih * gates::cr(theta) * ih).maxAbsDiff(gates::zz(theta)),
              1e-12);
}

TEST(Gates, SqrtIswapSquares)
{
    const Matrix half = gates::sqrtIswap();
    EXPECT_LT((half * half).maxAbsDiff(gates::iswap()), 1e-12);
}

TEST(Gates, OpenCnotFromCnot)
{
    const Matrix xi = kron(gates::x(), gates::i2());
    EXPECT_LT((xi * gates::cnot() * xi).maxAbsDiff(gates::openCnot()),
              1e-12);
}

TEST(Gates, Embed1qPlacesCorrectWire)
{
    const Matrix x0 = gates::embed1q(gates::x(), 0, 2);
    const Matrix x1 = gates::embed1q(gates::x(), 1, 2);
    EXPECT_LT(x0.maxAbsDiff(kron(gates::x(), gates::i2())), 1e-12);
    EXPECT_LT(x1.maxAbsDiff(kron(gates::i2(), gates::x())), 1e-12);
}

TEST(Gates, Embed2qMatchesKronForAdjacent)
{
    const Matrix direct = gates::embed2q(gates::cnot(), 0, 1, 2);
    EXPECT_LT(direct.maxAbsDiff(gates::cnot()), 1e-12);
}

TEST(Gates, Embed2qReversedWires)
{
    // CNOT with control = wire 1, target = wire 0 equals the
    // SWAP-conjugated CNOT.
    const Matrix reversed = gates::embed2q(gates::cnot(), 1, 0, 2);
    const Matrix expected =
        gates::swap() * gates::cnot() * gates::swap();
    EXPECT_LT(reversed.maxAbsDiff(expected), 1e-12);
}

TEST(Gates, Embed2qNonAdjacent)
{
    // CNOT between wires 0 and 2 of a 3-qubit register: check action
    // on basis states.
    const Matrix cx02 = gates::embed2q(gates::cnot(), 0, 2, 3);
    // |100> (index 4) -> |101> (index 5).
    Vector in(8);
    in[4] = Complex{1, 0};
    const Vector out = cx02.apply(in);
    EXPECT_NEAR(std::norm(out[5]), 1.0, 1e-12);
}

TEST(Fidelity, OverlapInvariantToGlobalPhase)
{
    const Matrix u = gates::h();
    const Matrix phased = u * std::exp(Complex{0, 1.1});
    EXPECT_NEAR(unitaryOverlap(u, phased), 1.0, 1e-12);
}

TEST(Fidelity, AverageGateFidelityRange)
{
    EXPECT_NEAR(averageGateFidelity(gates::x(), gates::x()), 1.0, 1e-12);
    // Orthogonal gates: Fp = 0, avg = 1/(d+1).
    EXPECT_NEAR(averageGateFidelity(gates::x(), gates::z()), 1.0 / 3.0,
                1e-12);
}

TEST(Fidelity, StateFidelity)
{
    Vector a{Complex{1, 0}, Complex{0, 0}};
    Vector b{Complex{0, 0}, Complex{1, 0}};
    EXPECT_NEAR(stateFidelity(a, a), 1.0, 1e-12);
    EXPECT_NEAR(stateFidelity(a, b), 0.0, 1e-12);
}

} // namespace
} // namespace qpulse
