/**
 * @file
 * Tests for the OpenPulse-style JSON serialisation: structural
 * content, sample inlining, round-trips, and physics equivalence of a
 * round-tripped compiled schedule on the pulse simulator.
 */
#include <gtest/gtest.h>

#include "common/constants.h"
#include "compile/compiler.h"
#include "linalg/gates.h"
#include "pulse/qobj.h"

namespace qpulse {
namespace {

Schedule
sampleSchedule()
{
    Schedule schedule("demo");
    schedule.shiftPhase(driveChannel(0), -0.5);
    schedule.play(driveChannel(0),
                  std::make_shared<GaussianWaveform>(
                      16, 4.0, Complex{0.1, 0.0}));
    schedule.delay(driveChannel(1), 8);
    schedule.shiftFrequency(driveChannel(1), -0.33);
    schedule.acquire(acquireChannel(0), 32);
    return schedule;
}

TEST(Qobj, EmitsStructuralFields)
{
    const std::string json = scheduleToQobjJson(sampleSchedule());
    EXPECT_NE(json.find("\"name\": \"demo\""), std::string::npos);
    EXPECT_NE(json.find("\"ch\": \"d0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"fc\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"play\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"delay\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"sf\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"acquire\""), std::string::npos);
    // Samples only on demand.
    EXPECT_EQ(json.find("\"samples\""), std::string::npos);
    QobjWriteOptions options;
    options.includeSamples = true;
    EXPECT_NE(scheduleToQobjJson(sampleSchedule(), options)
                  .find("\"samples\""),
              std::string::npos);
}

TEST(Qobj, RoundTripPreservesStructure)
{
    QobjWriteOptions options;
    options.includeSamples = true;
    const Schedule original = sampleSchedule();
    const Schedule reparsed =
        scheduleFromQobjJson(scheduleToQobjJson(original, options));

    EXPECT_EQ(reparsed.name(), original.name());
    EXPECT_EQ(reparsed.duration(), original.duration());
    ASSERT_EQ(reparsed.instructions().size(),
              original.instructions().size());
    for (std::size_t i = 0; i < original.instructions().size(); ++i) {
        const auto &a = original.instructions()[i];
        const auto &b = reparsed.instructions()[i];
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_TRUE(a.channel == b.channel);
        EXPECT_EQ(a.startTime, b.startTime);
        EXPECT_EQ(a.duration, b.duration);
        if (a.kind == PulseInstructionKind::ShiftPhase) {
            EXPECT_NEAR(a.phase, b.phase, 1e-9);
        }
        if (a.kind == PulseInstructionKind::Play) {
            for (long t = 0; t < a.duration; ++t)
                EXPECT_NEAR(std::abs(a.waveform->sample(t) -
                                     b.waveform->sample(t)),
                            0.0, 1e-7);
        }
    }
}

TEST(Qobj, RoundTrippedScheduleSamePhysics)
{
    // Export a compiled DirectX schedule, re-import, and check both
    // produce the same propagator on the transmon simulator.
    const BackendConfig config = almadenLineConfig(1);
    const auto backend = makeCalibratedBackend(config);
    const Schedule original =
        backend->schedule(makeGate(GateType::DirectX, {0}));

    QobjWriteOptions options;
    options.includeSamples = true;
    const Schedule reparsed =
        scheduleFromQobjJson(scheduleToQobjJson(original, options));

    Calibrator calibrator(config);
    PulseSimulator sim(calibrator.qubitModel(0));
    const Matrix u_original =
        sim.evolveUnitary(original).unitary;
    const Matrix u_reparsed =
        sim.evolveUnitary(reparsed).unitary;
    EXPECT_LT(u_original.maxAbsDiff(u_reparsed), 1e-6);
}

TEST(Qobj, ParseErrorsAreFatal)
{
    EXPECT_THROW(scheduleFromQobjJson("not json"), FatalError);
    EXPECT_THROW(scheduleFromQobjJson("{\"bogus\": 1}"), FatalError);
    // Play without samples cannot round-trip.
    const std::string no_samples =
        scheduleToQobjJson(sampleSchedule()); // Samples omitted.
    EXPECT_THROW(scheduleFromQobjJson(no_samples), FatalError);
}

} // namespace
} // namespace qpulse
