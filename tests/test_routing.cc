/**
 * @file
 * Tests for the coupling graph and the greedy SWAP router: shortest
 * paths, adjacency, permutation tracking, and semantic equivalence of
 * routed circuits modulo the final layout permutation.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "device/backend_config.h"
#include "linalg/gates.h"
#include "transpile/routing.h"

namespace qpulse {
namespace {

CouplingGraph
lineGraph(std::size_t n)
{
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t q = 0; q + 1 < n; ++q)
        edges.emplace_back(q, q + 1);
    return CouplingGraph(n, std::move(edges));
}

/** Permutation matrix sending logical q to physical layout[q]. */
Matrix
layoutPermutation(const std::vector<std::size_t> &layout,
                  std::size_t n_physical)
{
    const std::size_t dim = std::size_t{1} << n_physical;
    Matrix perm(dim, dim);
    for (std::size_t in = 0; in < dim; ++in) {
        std::size_t out = 0;
        // Logical qubit q (bit n-1-q of `in`) lands on physical wire
        // layout[q] (bit n-1-layout[q] of `out`); physical wires not
        // holding logicals keep their own bits.
        std::vector<bool> assigned(n_physical, false);
        for (std::size_t q = 0; q < layout.size(); ++q) {
            const bool bit = (in >> (n_physical - 1 - q)) & 1;
            if (bit)
                out |= std::size_t{1} << (n_physical - 1 - layout[q]);
            assigned[layout[q]] = true;
        }
        for (std::size_t p = 0; p < n_physical; ++p) {
            if (assigned[p])
                continue;
            // Unused physical wires map from the same-index input bit.
            const bool bit = (in >> (n_physical - 1 - p)) & 1;
            if (bit)
                out |= std::size_t{1} << (n_physical - 1 - p);
        }
        perm(out, in) = Complex{1.0, 0.0};
    }
    return perm;
}

TEST(CouplingGraph, Adjacency)
{
    const CouplingGraph graph = lineGraph(4);
    EXPECT_TRUE(graph.connected(0, 1));
    EXPECT_TRUE(graph.connected(1, 0));
    EXPECT_FALSE(graph.connected(0, 2));
    EXPECT_THROW(graph.connected(0, 9), FatalError);
}

TEST(CouplingGraph, ShortestPathsOnLine)
{
    const CouplingGraph graph = lineGraph(5);
    EXPECT_EQ(graph.distance(0, 4), 4u);
    EXPECT_EQ(graph.distance(2, 2), 0u);
    const auto path = graph.shortestPath(0, 3);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 3u);
}

TEST(CouplingGraph, DisconnectedFatal)
{
    CouplingGraph graph(4, {{0, 1}, {2, 3}});
    EXPECT_THROW(graph.shortestPath(0, 3), FatalError);
}

TEST(CouplingGraph, AlmadenLattice)
{
    const BackendConfig config = almadenConfig();
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (const auto &edge : config.couplings)
        edges.emplace_back(edge.control, edge.target);
    const CouplingGraph graph(config.numQubits, std::move(edges));
    // Fully connected lattice.
    for (std::size_t q = 1; q < config.numQubits; ++q)
        EXPECT_LT(graph.distance(0, q), config.numQubits);
    // Row hop 0 -> 5 uses the rung: 0-1-6-5 or similar, <= 4 hops.
    EXPECT_LE(graph.distance(0, 5), 4u);
}

TEST(Router, AdjacentGatesUntouched)
{
    const CouplingGraph graph = lineGraph(3);
    QuantumCircuit circuit(3);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.cx(1, 2);
    const RoutingResult result = routeCircuit(circuit, graph);
    EXPECT_EQ(result.swapsInserted, 0u);
    EXPECT_EQ(result.circuit.size(), circuit.size());
    for (std::size_t q = 0; q < 3; ++q)
        EXPECT_EQ(result.finalLayout[q], q);
}

TEST(Router, InsertsSwapForDistantPair)
{
    const CouplingGraph graph = lineGraph(4);
    QuantumCircuit circuit(4);
    circuit.cx(0, 3);
    const RoutingResult result = routeCircuit(circuit, graph);
    EXPECT_EQ(result.swapsInserted, 2u); // Distance 3 -> 2 swaps.
    // Every 2q gate in the output must be on an edge.
    for (const auto &gate : result.circuit.gates()) {
        if (gate.qubits.size() == 2) {
            EXPECT_TRUE(graph.connected(gate.qubits[0], gate.qubits[1]))
                << gate.toString();
        }
    }
}

TEST(Router, SemanticEquivalenceModuloLayout)
{
    const CouplingGraph graph = lineGraph(4);
    QuantumCircuit circuit(4);
    circuit.h(0);
    circuit.cx(0, 3);
    circuit.rz(0.4, 3);
    circuit.cx(1, 3);
    circuit.cx(0, 2);
    const RoutingResult result = routeCircuit(circuit, graph);

    // P . U_original == U_routed, where P sends logical to physical.
    const Matrix u_routed = result.circuit.unitary();
    const Matrix perm = layoutPermutation(result.finalLayout, 4);
    const Matrix expected = perm * circuit.unitary();
    EXPECT_GT(unitaryOverlap(u_routed, expected), 1 - 1e-9)
        << result.circuit.toString();
}

TEST(Router, RandomCircuitsProperty)
{
    const CouplingGraph graph = lineGraph(4);
    Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        QuantumCircuit circuit(4);
        for (int g = 0; g < 12; ++g) {
            const std::size_t a = rng.uniformInt(4);
            std::size_t b = rng.uniformInt(4);
            while (b == a)
                b = rng.uniformInt(4);
            if (rng.uniform() < 0.4)
                circuit.h(a);
            else
                circuit.cx(a, b);
        }
        const RoutingResult result = routeCircuit(circuit, graph);
        for (const auto &gate : result.circuit.gates()) {
            if (gate.qubits.size() == 2) {
                EXPECT_TRUE(
                    graph.connected(gate.qubits[0], gate.qubits[1]));
            }
        }
        const Matrix perm = layoutPermutation(result.finalLayout, 4);
        EXPECT_GT(unitaryOverlap(result.circuit.unitary(),
                                 perm * circuit.unitary()),
                  1 - 1e-8);
    }
}

TEST(Router, MeasurementsFollowLayout)
{
    const CouplingGraph graph = lineGraph(3);
    QuantumCircuit circuit(3);
    circuit.x(0);
    circuit.cx(0, 2); // Forces a swap.
    circuit.measureAll();
    const RoutingResult result = routeCircuit(circuit, graph);
    EXPECT_GT(result.swapsInserted, 0u);
    // The measure gates in the routed circuit target physical wires.
    std::size_t measures = 0;
    for (const auto &gate : result.circuit.gates())
        if (gate.type == GateType::Measure)
            ++measures;
    EXPECT_EQ(measures, 3u);
}

} // namespace
} // namespace qpulse
