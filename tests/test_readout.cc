/**
 * @file
 * Tests for the readout chain: IQ cloud model, the LDA classifier
 * (Figure 11 left panel pipeline) and measurement-error mitigation.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "readout/readout.h"

namespace qpulse {
namespace {

TEST(IqModel, ShotsClusterAroundCentroids)
{
    const IqReadoutModel model = IqReadoutModel::qutritDefault();
    Rng rng(5);
    for (std::size_t level = 0; level < model.levels(); ++level) {
        double mean_i = 0.0, mean_q = 0.0;
        const int n = 4000;
        for (int k = 0; k < n; ++k) {
            const IqPoint p = model.sampleShot(level, rng);
            mean_i += p.i;
            mean_q += p.q;
        }
        mean_i /= n;
        mean_q /= n;
        EXPECT_NEAR(mean_i, model.centroids()[level].i, 0.1);
        EXPECT_NEAR(mean_q, model.centroids()[level].q, 0.1);
    }
}

TEST(IqModel, PopulationSamplingRespectsWeights)
{
    const IqReadoutModel model = IqReadoutModel::qutritDefault();
    Rng rng(7);
    // Pure |2>: every shot near centroid 2.
    int near_two = 0;
    for (int k = 0; k < 1000; ++k) {
        const IqPoint p = model.sampleShot({0.0, 0.0, 1.0}, rng);
        const double dx = p.i - model.centroids()[2].i;
        const double dy = p.q - model.centroids()[2].q;
        if (dx * dx + dy * dy < 9.0)
            ++near_two;
    }
    EXPECT_GT(near_two, 950);
}

TEST(IqModel, Validation)
{
    EXPECT_THROW(IqReadoutModel({{0, 0}}, 1.0), FatalError);
    EXPECT_THROW(IqReadoutModel({{0, 0}, {1, 1}}, 0.0), FatalError);
}

class LdaSeparationTest : public ::testing::TestWithParam<double>
{
};

TEST_P(LdaSeparationTest, AccuracyGrowsWithSeparation)
{
    // Training pipeline exactly as in Section 7.2: labelled
    // calibration shots -> LDA -> classify.
    const double separation = GetParam();
    const IqReadoutModel model(
        {{0.0, 0.0}, {separation, 0.0}, {separation / 2,
                                         separation * 0.87}},
        1.0);
    Rng rng(11);
    std::vector<IqPoint> points;
    std::vector<std::size_t> labels;
    for (std::size_t level = 0; level < 3; ++level)
        for (int k = 0; k < 600; ++k) {
            points.push_back(model.sampleShot(level, rng));
            labels.push_back(level);
        }
    LdaClassifier lda;
    lda.fit(points, labels);
    const double accuracy = lda.trainingAccuracy(points, labels);
    if (separation >= 6.0)
        EXPECT_GT(accuracy, 0.97);
    else if (separation >= 4.0)
        EXPECT_GT(accuracy, 0.90);
    else
        EXPECT_GT(accuracy, 0.60);
    EXPECT_EQ(lda.classCount(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Separations, LdaSeparationTest,
                         ::testing::Values(2.0, 4.0, 6.0));

TEST(Lda, PredictsNearestMeanForEqualPriors)
{
    LdaClassifier lda;
    std::vector<IqPoint> points;
    std::vector<std::size_t> labels;
    Rng rng(13);
    for (int k = 0; k < 500; ++k) {
        points.push_back({rng.gaussian(0.0, 0.5), rng.gaussian(0, 0.5)});
        labels.push_back(0);
        points.push_back({rng.gaussian(5.0, 0.5), rng.gaussian(0, 0.5)});
        labels.push_back(1);
    }
    lda.fit(points, labels);
    EXPECT_EQ(lda.predict({0.2, 0.1}), 0u);
    EXPECT_EQ(lda.predict({4.8, -0.1}), 1u);
    const auto scores = lda.decisionFunction({2.5, 0.0});
    EXPECT_EQ(scores.size(), 2u);
    EXPECT_NEAR(scores[0], scores[1], 0.5); // Near the boundary.
}

TEST(Lda, UsedBeforeFitThrows)
{
    const LdaClassifier lda;
    EXPECT_THROW(lda.predict({0, 0}), FatalError);
}

TEST(Lda, EmptyClassThrows)
{
    LdaClassifier lda;
    // Labels skip class 1.
    EXPECT_THROW(lda.fit({{0, 0}, {1, 1}}, {0, 2}), FatalError);
}

TEST(Mitigation, InvertsKnownConfusion)
{
    // Single qubit with 10%/5% flips: measured distribution maps back
    // to the prepared one.
    const MeasurementMitigator mitigator =
        MeasurementMitigator::forQubits({{0.10, 0.05}});
    // Prepared pure |1>: measured = (0.05, 0.95).
    const auto recovered = mitigator.mitigate({0.05, 0.95});
    EXPECT_NEAR(recovered[0], 0.0, 1e-9);
    EXPECT_NEAR(recovered[1], 1.0, 1e-9);
}

TEST(Mitigation, TwoQubitTensorStructure)
{
    const MeasurementMitigator mitigator =
        MeasurementMitigator::forQubits({{0.1, 0.1}, {0.02, 0.02}});
    // Prepared |10>: p(measured) has q0 flips at 10%, q1 at 2%.
    std::vector<double> measured = {
        0.1 * 0.98, 0.1 * 0.02, 0.9 * 0.98, 0.9 * 0.02};
    const auto recovered = mitigator.mitigate(measured);
    EXPECT_NEAR(recovered[2], 1.0, 1e-9);
    EXPECT_NEAR(recovered[0], 0.0, 1e-9);
}

TEST(Mitigation, ClipsNegativeSolutions)
{
    const MeasurementMitigator mitigator =
        MeasurementMitigator::forQubits({{0.2, 0.2}});
    // A "measured" distribution more extreme than any physical one
    // (e.g. from shot noise): mitigation clips and renormalises.
    const auto recovered = mitigator.mitigate({0.9, 0.1});
    EXPECT_GE(recovered[0], 0.0);
    EXPECT_GE(recovered[1], 0.0);
    EXPECT_NEAR(recovered[0] + recovered[1], 1.0, 1e-12);
}

TEST(Mitigation, RejectsBadConfusion)
{
    // Columns must sum to 1.
    EXPECT_THROW(MeasurementMitigator({{0.9, 0.0}, {0.2, 1.0}}),
                 FatalError);
}

TEST(Mitigation, ImprovesHellingerUnderNoise)
{
    // End-to-end: biased readout on a known distribution; mitigation
    // must bring the distribution closer to truth.
    const MeasurementMitigator mitigator =
        MeasurementMitigator::forQubits({{0.08, 0.04}});
    const std::vector<double> truth = {0.7, 0.3};
    const std::vector<double> measured = {
        0.7 * 0.92 + 0.3 * 0.04, 0.7 * 0.08 + 0.3 * 0.96};
    const auto recovered = mitigator.mitigate(measured);
    const double err_before = std::abs(measured[0] - truth[0]);
    const double err_after = std::abs(recovered[0] - truth[0]);
    EXPECT_LT(err_after, err_before * 0.1);
}

} // namespace
} // namespace qpulse
