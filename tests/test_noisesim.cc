/**
 * @file
 * Tests for the duration-aware noisy density-matrix simulator and the
 * ideal statevector reference: trace preservation, decoherence scaling
 * with schedule length, the per-pulse and amplitude error knobs,
 * readout confusion and shot sampling.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "noisesim/density_sim.h"
#include "noisesim/statevector.h"

namespace qpulse {
namespace {

/** Simple synthetic provider: fixed duration/weights by gate arity. */
NoiseInfoProvider
syntheticProvider(long duration_1q = 160, long duration_2q = 1800)
{
    return [=](const Gate &gate) {
        GateNoiseInfo info;
        if (gateIsDirective(gate.type)) {
            if (gate.type == GateType::Measure)
                info.duration = 16000;
            return info;
        }
        if (gate.qubits.size() == 1) {
            info.duration = duration_1q;
            info.error1qWeight = 1.0;
            info.peakAmplitude = 0.1;
        } else {
            info.duration = duration_2q;
            info.error2qWeight = 2.0;
            info.error1qWeight = 2.0;
            info.peakAmplitude = 0.15;
        }
        return info;
    };
}

BackendConfig
quietConfig(std::size_t n)
{
    BackendConfig config = almadenLineConfig(n);
    config.noise.perPulseError1q = 0.0;
    config.noise.perPulseError2q = 0.0;
    config.noise.leakagePerAmpSq = 0.0;
    for (auto &readout : config.readout)
        readout = ReadoutError{0.0, 0.0};
    return config;
}

TEST(Statevector, IdealDistributionBell)
{
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.cx(0, 1);
    const auto probs = idealDistribution(circuit);
    EXPECT_NEAR(probs[0], 0.5, 1e-12);
    EXPECT_NEAR(probs[3], 0.5, 1e-12);
    EXPECT_NEAR(probs[1] + probs[2], 0.0, 1e-12);
}

TEST(Statevector, SampleCountsSumToShots)
{
    QuantumCircuit circuit(2);
    circuit.h(0);
    Rng rng(3);
    const auto counts = sampleIdealCounts(circuit, 5000, rng);
    long total = 0;
    for (long c : counts)
        total += c;
    EXPECT_EQ(total, 5000);
    EXPECT_NEAR(static_cast<double>(counts[0]) / 5000.0, 0.5, 0.05);
}

TEST(DensitySim, NoiselessMatchesIdeal)
{
    BackendConfig config = quietConfig(2);
    // Effectively infinite coherence.
    for (auto &qubit : config.qubits) {
        qubit.t1Us = 1e9;
        qubit.t2Us = 1e9;
    }
    DensitySimulator sim(config, syntheticProvider());
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.measureAll();
    const NoisyRunResult result = sim.run(circuit);
    EXPECT_NEAR(result.probs[0], 0.5, 1e-9);
    EXPECT_NEAR(result.probs[3], 0.5, 1e-9);
}

TEST(DensitySim, TracePreserved)
{
    const BackendConfig config = almadenLineConfig(3);
    DensitySimulator sim(config, syntheticProvider());
    QuantumCircuit circuit(3);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.cx(1, 2);
    circuit.rz(0.3, 2);
    circuit.measureAll();
    const NoisyRunResult result = sim.run(circuit);
    double total = 0.0;
    for (double p : result.probs)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_NEAR(std::abs(result.density.trace() - Complex{1, 0}), 0.0,
                1e-9);
}

TEST(DensitySim, LongerSchedulesDecohereMore)
{
    // Error source #1 (Section 8.3): same circuit, double duration ->
    // lower survival of the excited state.
    BackendConfig config = quietConfig(1);
    DensitySimulator fast(config, syntheticProvider(160));
    DensitySimulator slow(config, syntheticProvider(3200));
    QuantumCircuit circuit(1);
    for (int k = 0; k < 15; ++k)
        circuit.x(0);
    circuit.x(0); // 16 X gates -> ends in |0> ... actually |0> flips.
    // 16 X gates = identity; survival = P(0).
    const double p_fast = fast.run(circuit).probs[0];
    const double p_slow = slow.run(circuit).probs[0];
    EXPECT_GT(p_fast, p_slow);
    EXPECT_GT(p_fast, 0.99);
}

TEST(DensitySim, IdleQubitsDecohereDuringTwoQubitGates)
{
    // A spectator in |1> decays while a long 2q gate runs elsewhere.
    BackendConfig config = quietConfig(3);
    DensitySimulator sim(config, syntheticProvider(160, 18000));
    QuantumCircuit circuit(3);
    circuit.x(2);
    circuit.cx(0, 1);
    circuit.cx(0, 1);
    circuit.cx(0, 1);
    circuit.barrier();
    const NoisyRunResult result = sim.run(circuit);
    // P(q2 = 1) = sum of probs with bit 2 set (LSB ordering: wire 2 is
    // the least significant of 3).
    double p_one = 0.0;
    for (std::size_t idx = 0; idx < 8; ++idx)
        if (idx & 1)
            p_one += result.probs[idx];
    const double elapsed_ns = dtToNs(3 * 18000);
    const double expected = std::exp(-elapsed_ns / (94.0 * 1000.0));
    EXPECT_NEAR(p_one, expected, 0.02);
    EXPECT_LT(p_one, 0.95);
}

TEST(DensitySim, PulseErrorKnob)
{
    BackendConfig config = quietConfig(1);
    for (auto &qubit : config.qubits) {
        qubit.t1Us = 1e9;
        qubit.t2Us = 1e9;
    }
    config.noise.perPulseError1q = 0.01;
    DensitySimulator sim(config, syntheticProvider());
    NoiseSwitches off;
    off.pulseError = false;
    QuantumCircuit circuit(1);
    circuit.x(0);
    circuit.x(0);
    // With the knob on: two gates with weight 1 -> ~2% depolarizing.
    const double with_error = sim.run(circuit).probs[1];
    sim.setSwitches(off);
    const double without_error = sim.run(circuit).probs[1];
    EXPECT_NEAR(without_error, 0.0, 1e-9);
    EXPECT_NEAR(with_error, 2.0 * 0.01 / 2.0, 0.004);
}

TEST(DensitySim, AmplitudeErrorKnob)
{
    BackendConfig config = quietConfig(1);
    for (auto &qubit : config.qubits) {
        qubit.t1Us = 1e9;
        qubit.t2Us = 1e9;
    }
    config.noise.leakagePerAmpSq = 1.0;
    DensitySimulator sim(config, syntheticProvider());
    QuantumCircuit circuit(1);
    circuit.x(0);
    const double p_wrong = sim.run(circuit).probs[0];
    EXPECT_GT(p_wrong, 0.001); // 0.1^2 * 1.0 / 2 depolarizing leak.
    NoiseSwitches off;
    off.amplitudeError = false;
    sim.setSwitches(off);
    EXPECT_NEAR(sim.run(circuit).probs[0], 0.0, 1e-9);
}

TEST(DensitySim, ReadoutErrorFoldsIn)
{
    BackendConfig config = quietConfig(1);
    config.readout[0] = ReadoutError{0.1, 0.05};
    for (auto &qubit : config.qubits) {
        qubit.t1Us = 1e9;
        qubit.t2Us = 1e9;
    }
    config.noise = NoiseBudget{0, 0, 0, 0};
    DensitySimulator sim(config, syntheticProvider());
    QuantumCircuit circuit(1);
    const NoisyRunResult ground = sim.run(circuit);
    EXPECT_NEAR(ground.probs[1], 0.1, 1e-9);
    QuantumCircuit flipped(1);
    flipped.x(0);
    const NoisyRunResult excited = sim.run(flipped);
    EXPECT_NEAR(excited.probs[0], 0.05, 1e-9);
}

TEST(DensitySim, ReadoutErrorTwoQubitIndependent)
{
    BackendConfig config = quietConfig(2);
    config.readout[0] = ReadoutError{0.2, 0.2};
    config.readout[1] = ReadoutError{0.0, 0.0};
    for (auto &qubit : config.qubits) {
        qubit.t1Us = 1e9;
        qubit.t2Us = 1e9;
    }
    DensitySimulator sim(config, syntheticProvider());
    QuantumCircuit circuit(2); // |00>.
    const NoisyRunResult result = sim.run(circuit);
    EXPECT_NEAR(result.probs[0], 0.8, 1e-9);  // 00.
    EXPECT_NEAR(result.probs[2], 0.2, 1e-9);  // 10 (qubit 0 flipped).
    EXPECT_NEAR(result.probs[1], 0.0, 1e-9);
}

TEST(DensitySim, SampleCountsDistribution)
{
    const BackendConfig config = quietConfig(1);
    DensitySimulator sim(config, syntheticProvider());
    QuantumCircuit circuit(1);
    circuit.h(0);
    const NoisyRunResult result = sim.run(circuit);
    Rng rng(17);
    const auto counts = sim.sampleCounts(result, 20000, rng);
    EXPECT_EQ(counts.size(), 2u);
    EXPECT_NEAR(static_cast<double>(counts[0]) / 20000.0, 0.5, 0.02);
}

TEST(DensitySim, MakespanAccounting)
{
    const BackendConfig config = quietConfig(2);
    DensitySimulator sim(config, syntheticProvider(160, 1800));
    QuantumCircuit circuit(2);
    circuit.x(0);       // 160 on q0.
    circuit.x(1);       // 160 on q1 (parallel).
    circuit.cx(0, 1);   // 1800 on both.
    circuit.x(1);       // 160.
    const NoisyRunResult result = sim.run(circuit);
    EXPECT_EQ(result.makespan, 160 + 1800 + 160);
}

TEST(DensitySim, RejectsWiderCircuit)
{
    const BackendConfig config = quietConfig(1);
    DensitySimulator sim(config, syntheticProvider());
    QuantumCircuit circuit(2);
    circuit.h(0);
    EXPECT_THROW(sim.run(circuit), FatalError);
}

TEST(DensitySim, DepolarizingHalvesBlochVector)
{
    // A 1q depolarizing channel of strength p shrinks Z expectation
    // by (1 - p) on average: check via the pulse-error path.
    BackendConfig config = quietConfig(1);
    for (auto &qubit : config.qubits) {
        qubit.t1Us = 1e9;
        qubit.t2Us = 1e9;
    }
    config.noise.perPulseError1q = 0.5;
    DensitySimulator sim(config, syntheticProvider());
    QuantumCircuit circuit(1);
    circuit.x(0);
    const NoisyRunResult result = sim.run(circuit);
    // One gate with weight 1 -> p = 0.5 -> rho = 0.5 |1><1| + 0.25 I.
    EXPECT_NEAR(result.probs[1], 0.75, 1e-9);
}

} // namespace
} // namespace qpulse
