/**
 * @file
 * Tests for the calibration routines — the bootstrap the whole paper
 * rests on. Every calibrated pulse is validated against the pulse
 * simulator it was tuned on: X90/X180 fidelities, DRAG behaviour,
 * qutrit sideband amplitudes, echoed-CR angle bookkeeping and the
 * stretch logic behind CR(theta).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "device/calibration.h"
#include "linalg/gates.h"

namespace qpulse {
namespace {

/** Shared fixture: calibrate the 2-qubit line once. */
class CalibrationTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        config_ = new BackendConfig(almadenLineConfig(2));
        calibrator_ = new Calibrator(*config_);
        q0_ = new QubitCalibration(calibrator_->calibrateQubit(0));
        calibrator_->calibrateQutrit(0, *q0_);
        cr_ = new CrCalibration(calibrator_->calibrateCr(0, 1, *q0_));
    }

    static void TearDownTestSuite()
    {
        delete cr_;
        delete q0_;
        delete calibrator_;
        delete config_;
    }

    static Matrix qubitBlock(const Matrix &u)
    {
        Matrix block(2, 2);
        for (std::size_t r = 0; r < 2; ++r)
            for (std::size_t c = 0; c < 2; ++c)
                block(r, c) = u(r, c);
        return block;
    }

    static BackendConfig *config_;
    static Calibrator *calibrator_;
    static QubitCalibration *q0_;
    static CrCalibration *cr_;
};

BackendConfig *CalibrationTest::config_ = nullptr;
Calibrator *CalibrationTest::calibrator_ = nullptr;
QubitCalibration *CalibrationTest::q0_ = nullptr;
CrCalibration *CalibrationTest::cr_ = nullptr;

TEST_F(CalibrationTest, PulseDurationsMatchPaper)
{
    // 160 dt = 35.6 ns single pulses (Figure 4).
    EXPECT_EQ(q0_->duration, 160);
    EXPECT_NEAR(dtToNs(q0_->duration), 35.6, 0.1);
}

TEST_F(CalibrationTest, X90IsHalfOfX180)
{
    EXPECT_NEAR(q0_->x90Amp, q0_->x180Amp / 2.0, 1e-9);
    EXPECT_GT(q0_->x180Amp, 0.05);
    EXPECT_LT(q0_->x180Amp, 0.2);
}

TEST_F(CalibrationTest, X180HighFidelity)
{
    PulseSimulator sim(calibrator_->qubitModel(0));
    Schedule schedule("x");
    schedule.play(driveChannel(0), q0_->x180Pulse());
    const UnitaryResult result = sim.evolveUnitary(schedule);
    EXPECT_GT(unitaryOverlap(qubitBlock(result.unitary),
                             gates::rx(kPi)),
              0.999);
}

TEST_F(CalibrationTest, X90HighFidelity)
{
    PulseSimulator sim(calibrator_->qubitModel(0));
    Schedule schedule("x90");
    schedule.play(driveChannel(0), q0_->x90Pulse());
    const UnitaryResult result = sim.evolveUnitary(schedule);
    EXPECT_GT(unitaryOverlap(qubitBlock(result.unitary),
                             gates::rx(kPi / 2)),
              0.999);
}

TEST_F(CalibrationTest, TwoX90sEqualOneX180)
{
    // The Figure 4 equivalence: same area, same rotation.
    PulseSimulator sim(calibrator_->qubitModel(0));
    Schedule two("2x90");
    two.play(driveChannel(0), q0_->x90Pulse());
    two.play(driveChannel(0), q0_->x90Pulse());
    Schedule one("x180");
    one.play(driveChannel(0), q0_->x180Pulse());
    const Matrix u_two =
        qubitBlock(sim.evolveUnitary(two).unitary);
    const Matrix u_one =
        qubitBlock(sim.evolveUnitary(one).unitary);
    EXPECT_GT(unitaryOverlap(u_two, u_one), 0.999);
    // And the direct pulse is exactly half the duration.
    EXPECT_EQ(one.duration() * 2, two.duration());
}

TEST_F(CalibrationTest, ScaledPulseImplementsPartialRotation)
{
    // DirectRx(theta) via amplitude scaling (Section 4.2).
    PulseSimulator sim(calibrator_->qubitModel(0));
    for (double theta : {0.4, 1.1, 2.2}) {
        Schedule schedule("scaled");
        schedule.play(driveChannel(0),
                      std::make_shared<ScaledWaveform>(
                          q0_->x180Pulse(),
                          Complex{theta / kPi, 0.0}));
        const UnitaryResult result = sim.evolveUnitary(schedule);
        EXPECT_GT(unitaryOverlap(qubitBlock(result.unitary),
                                 gates::rx(theta)),
                  0.998)
            << theta;
    }
}

TEST_F(CalibrationTest, QutritPulsesCalibrated)
{
    // x12 near x180/sqrt(2) (matrix element sqrt(2) stronger); x02
    // needs substantially more power (two-photon, Section 7.2).
    EXPECT_NEAR(q0_->x12Amp, q0_->x180Amp / std::sqrt(2.0),
                0.25 * q0_->x180Amp);
    EXPECT_GT(q0_->x02Amp, 2.0 * q0_->x180Amp);
}

TEST_F(CalibrationTest, QutritX12PulseWorks)
{
    PulseSimulator sim(calibrator_->qubitModel(0));
    Vector ground(3);
    ground[0] = Complex{1, 0};
    Schedule schedule("x01-x12");
    schedule.play(driveChannel(0), q0_->x180Pulse());
    schedule.play(driveChannel(0),
                  std::make_shared<SidebandWaveform>(
                      std::make_shared<GaussianWaveform>(
                          q0_->qutritDuration, q0_->sigma,
                          Complex{q0_->x12Amp, 0.0}),
                      config_->qubits[0].anharmonicityGhz));
    const Vector out = sim.evolveState(schedule, ground);
    EXPECT_GT(std::norm(out[2]), 0.98);
}

TEST_F(CalibrationTest, QutritX02PulseWorks)
{
    PulseSimulator sim(calibrator_->qubitModel(0));
    Vector ground(3);
    ground[0] = Complex{1, 0};
    Schedule schedule("x02");
    schedule.play(driveChannel(0),
                  std::make_shared<SidebandWaveform>(
                      std::make_shared<GaussianWaveform>(
                          q0_->qutritDuration, q0_->sigma,
                          Complex{q0_->x02Amp, 0.0}),
                      config_->qubits[0].anharmonicityGhz / 2.0));
    // The two-photon drive is AC-Stark-shifted at the powers it
    // needs, so its peak transfer sits below a single-photon pulse's —
    // the same imperfection the paper's counter "dropout" reflects.
    const Vector out = sim.evolveState(schedule, ground);
    EXPECT_GT(std::norm(out[2]), 0.80);
}

TEST_F(CalibrationTest, CrCalibrationBookkeeping)
{
    EXPECT_EQ(cr_->control, 0u);
    EXPECT_EQ(cr_->target, 1u);
    EXPECT_GT(cr_->flatFor90, 100);
    EXPECT_GT(cr_->radPerDtFlat, 0.0);
    EXPECT_GT(cr_->radAtZeroFlat, 0.0);
    EXPECT_LT(cr_->radAtZeroFlat, 0.5);
}

TEST_F(CalibrationTest, StretchForInvertsAngleFormula)
{
    // stretchFor must invert theta = radAtZeroFlat + rate * flat.
    for (double theta : {0.3, 0.9, kPi / 2}) {
        const auto stretch = cr_->stretchFor(theta);
        if (stretch.ampScale == 1.0) {
            const double angle =
                cr_->radAtZeroFlat +
                cr_->radPerDtFlat * static_cast<double>(stretch.flat);
            EXPECT_NEAR(angle, theta, cr_->radPerDtFlat);
        }
    }
    // Small angles go through amplitude scaling with zero flat.
    const auto tiny = cr_->stretchFor(cr_->radAtZeroFlat / 2.0);
    EXPECT_EQ(tiny.flat, 0);
    EXPECT_NEAR(tiny.ampScale, 0.5, 1e-9);
}

TEST_F(CalibrationTest, StretchScalesMonotonically)
{
    long last_flat = -1;
    for (double theta = 0.2; theta < 1.6; theta += 0.2) {
        const auto stretch = cr_->stretchFor(theta);
        if (stretch.ampScale == 1.0) {
            EXPECT_GE(stretch.flat, last_flat);
            last_flat = stretch.flat;
        }
    }
}

TEST_F(CalibrationTest, CachedCalibrationIsReused)
{
    // Identical parameters -> the memoised result comes back.
    const QubitCalibration again = calibrator_->calibrateQubit(0);
    EXPECT_EQ(again.x180Amp, q0_->x180Amp);
    EXPECT_EQ(again.dragBeta, q0_->dragBeta);
}

TEST_F(CalibrationTest, CalibrateAllCoversEverything)
{
    Calibrator fresh(*config_);
    const PulseLibrary library = fresh.calibrateAll(false);
    EXPECT_EQ(library.qubits.size(), 2u);
    EXPECT_EQ(library.crs.size(), 1u);
    EXPECT_NO_THROW(library.cr(0, 1));
    EXPECT_THROW(library.cr(1, 0), FatalError);
    EXPECT_EQ(library.controlChannelIndex(0, 1), 0u);
}

TEST(CalibrationStandalone, ArmonkSingleQubit)
{
    const BackendConfig config = armonkConfig();
    Calibrator calibrator(config);
    const QubitCalibration cal = calibrator.calibrateQubit(0);
    PulseSimulator sim(calibrator.qubitModel(0));
    Schedule schedule("x");
    schedule.play(driveChannel(0), cal.x180Pulse());
    Vector ground(3);
    ground[0] = Complex{1, 0};
    const Vector out = sim.evolveState(schedule, ground);
    EXPECT_GT(std::norm(out[1]), 0.995);
}

} // namespace
} // namespace qpulse
