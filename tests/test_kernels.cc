/**
 * @file
 * Dense-kernel layer tests (ctest label: kernels): SIMD-vs-scalar
 * parity, bit-identity of the scalar kernels with the historical
 * triple loops, warm-started Jacobi agreement, powm semantics, and —
 * via a counting global allocator — zero-heap-allocation assertions on
 * the workspace API and the evolve inner loop.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>

#include "common/constants.h"
#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "linalg/workspace.h"
#include "pulsesim/simulator.h"
#include "telemetry/metrics.h"

// ---------------------------------------------------------------------
// Counting allocator: every heap allocation in this binary bumps the
// counter, so tests can assert a code region is heap-silent.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size ? size : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

// The replaced operator new above allocates with std::malloc, so
// releasing with std::free is correct; GCC cannot see the pairing.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace qpulse {
namespace {

std::uint64_t
allocCount()
{
    return g_alloc_count.load(std::memory_order_relaxed);
}

/** Restores the dispatch mode active at construction. */
class ScopedSimdMode
{
  public:
    explicit ScopedSimdMode(kernels::SimdMode mode)
        : saved_(kernels::activeSimd())
    {
        kernels::setActiveSimd(mode);
    }
    ~ScopedSimdMode() { kernels::setActiveSimd(saved_); }

  private:
    kernels::SimdMode saved_;
};

Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = Complex{rng.uniform(-1.0, 1.0),
                              rng.uniform(-1.0, 1.0)};
    return m;
}

Matrix
randomHermitian(std::size_t n, std::uint64_t seed)
{
    const Matrix m = randomMatrix(n, n, seed);
    return (m + m.adjoint()) * Complex{0.5, 0.0};
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    double worst = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            worst = std::max(worst, std::abs(a(r, c) - b(r, c)));
    return worst;
}

/** The historical Matrix::operator* triple loop, verbatim. */
Matrix
referenceGemm(const Matrix &a, const Matrix &b)
{
    Matrix result(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const Complex aik = a(i, k);
            if (aik == Complex{0.0, 0.0})
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                result(i, j) += aik * b(k, j);
        }
    }
    return result;
}

TEST(Kernels, ScalarGemmBitIdenticalToReferenceLoop)
{
    ScopedSimdMode scalar(kernels::SimdMode::Scalar);
    for (std::size_t n : {2u, 3u, 9u, 16u}) {
        const Matrix a = randomMatrix(n, n, 100 + n);
        const Matrix b = randomMatrix(n, n, 200 + n);
        const Matrix expected = referenceGemm(a, b);
        const Matrix got = a * b;
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c) {
                EXPECT_EQ(got(r, c).real(), expected(r, c).real());
                EXPECT_EQ(got(r, c).imag(), expected(r, c).imag());
            }
    }
}

TEST(Kernels, SimdGemmMatchesScalarAcrossSizes)
{
    if (!kernels::avx2Supported())
        GTEST_SKIP() << "no AVX2 on this host";
    // All sizes 2..16, covering the d=3 and d=9 transmon dimensions
    // and every odd size (scalar-tail coverage in the AVX2 kernels).
    for (std::size_t n = 2; n <= 16; ++n) {
        const Matrix a = randomMatrix(n, n, 300 + n);
        const Matrix b = randomMatrix(n, n, 400 + n);
        Matrix scalar_out, simd_out;
        {
            ScopedSimdMode mode(kernels::SimdMode::Scalar);
            gemmInto(scalar_out, a, b);
        }
        {
            ScopedSimdMode mode(kernels::SimdMode::Avx2);
            gemmInto(simd_out, a, b);
        }
        EXPECT_LE(maxAbsDiff(scalar_out, simd_out), 1e-12)
            << "gemm parity failed at n=" << n;
    }
}

TEST(Kernels, SimdAdjointKernelsMatchScalarAcrossSizes)
{
    if (!kernels::avx2Supported())
        GTEST_SKIP() << "no AVX2 on this host";
    for (std::size_t n = 2; n <= 16; ++n) {
        const Matrix a = randomMatrix(n, n, 500 + n);
        const Matrix b = randomMatrix(n, n, 600 + n);
        Matrix s_adjb, s_adja, v_adjb, v_adja;
        {
            ScopedSimdMode mode(kernels::SimdMode::Scalar);
            gemmAdjBInto(s_adjb, a, b);
            gemmAdjAInto(s_adja, a, b);
        }
        {
            ScopedSimdMode mode(kernels::SimdMode::Avx2);
            gemmAdjBInto(v_adjb, a, b);
            gemmAdjAInto(v_adja, a, b);
        }
        EXPECT_LE(maxAbsDiff(s_adjb, v_adjb), 1e-12)
            << "a*b^dag parity failed at n=" << n;
        EXPECT_LE(maxAbsDiff(s_adja, v_adja), 1e-12)
            << "a^dag*b parity failed at n=" << n;
    }
}

TEST(Kernels, SimdMatvecMatchesScalarAcrossSizes)
{
    if (!kernels::avx2Supported())
        GTEST_SKIP() << "no AVX2 on this host";
    for (std::size_t n = 2; n <= 16; ++n) {
        const Matrix a = randomMatrix(n, n, 700 + n);
        Rng rng(800 + n);
        Vector x(n);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = Complex{rng.uniform(-1.0, 1.0),
                           rng.uniform(-1.0, 1.0)};
        Vector s_out, v_out;
        {
            ScopedSimdMode mode(kernels::SimdMode::Scalar);
            applyInto(s_out, a, x);
        }
        {
            ScopedSimdMode mode(kernels::SimdMode::Avx2);
            applyInto(v_out, a, x);
        }
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_LE(std::abs(s_out[i] - v_out[i]), 1e-12)
                << "matvec parity failed at n=" << n;
    }
}

/**
 * Full kernel-family parity (gemm, both adjoint forms, matvec) of one
 * dispatch tier against Scalar, across every size 2..16 so odd sizes
 * exercise the scalar tails of each vector kernel.
 */
void
expectTierMatchesScalar(kernels::SimdMode tier)
{
    for (std::size_t n = 2; n <= 16; ++n) {
        const Matrix a = randomMatrix(n, n, 2100 + n);
        const Matrix b = randomMatrix(n, n, 2200 + n);
        Rng rng(2300 + n);
        Vector x(n);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = Complex{rng.uniform(-1.0, 1.0),
                           rng.uniform(-1.0, 1.0)};
        Matrix s_gemm, s_adjb, s_adja, t_gemm, t_adjb, t_adja;
        Vector s_vec, t_vec;
        {
            ScopedSimdMode mode(kernels::SimdMode::Scalar);
            gemmInto(s_gemm, a, b);
            gemmAdjBInto(s_adjb, a, b);
            gemmAdjAInto(s_adja, a, b);
            applyInto(s_vec, a, x);
        }
        {
            ScopedSimdMode mode(tier);
            gemmInto(t_gemm, a, b);
            gemmAdjBInto(t_adjb, a, b);
            gemmAdjAInto(t_adja, a, b);
            applyInto(t_vec, a, x);
        }
        const char *name = kernels::simdModeName(tier);
        EXPECT_LE(maxAbsDiff(s_gemm, t_gemm), 1e-12)
            << name << " gemm parity failed at n=" << n;
        EXPECT_LE(maxAbsDiff(s_adjb, t_adjb), 1e-12)
            << name << " a*b^dag parity failed at n=" << n;
        EXPECT_LE(maxAbsDiff(s_adja, t_adja), 1e-12)
            << name << " a^dag*b parity failed at n=" << n;
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_LE(std::abs(s_vec[i] - t_vec[i]), 1e-12)
                << name << " matvec parity failed at n=" << n;
    }
}

TEST(Kernels, Sse2KernelsMatchScalarAcrossSizes)
{
    if (!kernels::sse2Supported())
        GTEST_SKIP() << "no SSE2 on this host";
    expectTierMatchesScalar(kernels::SimdMode::Sse2);
}

TEST(Kernels, Avx512KernelsMatchScalarAcrossSizes)
{
    if (!kernels::avx512Supported())
        GTEST_SKIP() << "no AVX-512 on this host";
    expectTierMatchesScalar(kernels::SimdMode::Avx512);
}

TEST(Kernels, Avx512ReductionKernelsMatchScalarDirectly)
{
    // The dispatchers deliberately keep reductions 256-bit under the
    // Avx512 tier (src/linalg/simd.h); the 512-bit forms are still
    // part of the kernel surface and must individually agree with
    // scalar to 1e-12 for direct callers.
    if (!kernels::avx512Supported())
        GTEST_SKIP() << "no AVX-512 on this host";
    for (std::size_t n = 2; n <= 16; ++n) {
        const Matrix a = randomMatrix(n, n, 2800 + n);
        const Matrix b = randomMatrix(n, n, 2900 + n);
        Rng rng(3000 + n);
        Vector x(n);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = Complex{rng.uniform(-1.0, 1.0),
                           rng.uniform(-1.0, 1.0)};
        Matrix s_adjb(n, n), s_adja(n, n), v_adjb(n, n), v_adja(n, n);
        Vector s_vec(n), v_vec(n);
        kernels::gemmAdjBScalar(s_adjb.data().data(), a.data().data(),
                                b.data().data(), n, n, n);
        kernels::gemmAdjAScalar(s_adja.data().data(), a.data().data(),
                                b.data().data(), n, n, n);
        kernels::matvecScalar(s_vec.data().data(), a.data().data(),
                              x.data().data(), n, n);
        kernels::gemmAdjBAvx512(v_adjb.data().data(), a.data().data(),
                                b.data().data(), n, n, n);
        kernels::gemmAdjAAvx512(v_adja.data().data(), a.data().data(),
                                b.data().data(), n, n, n);
        kernels::matvecAvx512(v_vec.data().data(), a.data().data(),
                              x.data().data(), n, n);
        EXPECT_LE(maxAbsDiff(s_adjb, v_adjb), 1e-12)
            << "avx512 a*b^dag failed at n=" << n;
        EXPECT_LE(maxAbsDiff(s_adja, v_adja), 1e-12)
            << "avx512 a^dag*b failed at n=" << n;
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_LE(std::abs(s_vec[i] - v_vec[i]), 1e-12)
                << "avx512 matvec failed at n=" << n;
    }
}

TEST(Kernels, BlockedGemmMatchesScalarAtLargeDims)
{
    // Dimensions at and above kGemmBlockThreshold route square gemms
    // through the tiled kernel on every non-Scalar tier; 81 is the
    // 9-level qutrit-pair dimension the blocking was sized for.
    const std::size_t dims[] = {kernels::kGemmBlockThreshold, 81, 96};
    const kernels::SimdMode tiers[] = {kernels::SimdMode::Sse2,
                                       kernels::SimdMode::Avx2,
                                       kernels::SimdMode::Avx512};
    for (const std::size_t n : dims) {
        const Matrix a = randomMatrix(n, n, 2400 + n);
        const Matrix b = randomMatrix(n, n, 2500 + n);
        Matrix scalar_out;
        {
            ScopedSimdMode mode(kernels::SimdMode::Scalar);
            gemmInto(scalar_out, a, b);
        }
        for (const kernels::SimdMode tier : tiers) {
            ScopedSimdMode mode(tier);
            if (kernels::activeSimd() != tier)
                continue; // tier not supported on this host
            Matrix tiled_out;
            gemmInto(tiled_out, a, b);
            EXPECT_LE(maxAbsDiff(scalar_out, tiled_out), 1e-12)
                << kernels::simdModeName(tier)
                << " blocked gemm parity failed at n=" << n;
        }
    }
}

TEST(Kernels, BlockedGemmHandlesRectangularTails)
{
    // Rectangular shapes with k/n just off the tile sizes (32/48)
    // exercise partial-tile edges in the accumulating micro-kernels.
    struct Shape { std::size_t m, k, n; };
    const Shape shapes[] = {{5, 81, 60}, {81, 50, 49}, {7, 64, 97}};
    for (const Shape &s : shapes) {
        const Matrix a = randomMatrix(s.m, s.k, 2600 + s.m);
        const Matrix b = randomMatrix(s.k, s.n, 2700 + s.n);
        Matrix want(s.m, s.n);
        kernels::gemmScalar(want.data().data(), a.data().data(),
                            b.data().data(), s.m, s.k, s.n);
        const kernels::SimdMode tiers[] = {kernels::SimdMode::Sse2,
                                           kernels::SimdMode::Avx2,
                                           kernels::SimdMode::Avx512};
        for (const kernels::SimdMode tier : tiers) {
            ScopedSimdMode mode(tier);
            if (kernels::activeSimd() != tier)
                continue;
            Matrix got(s.m, s.n);
            kernels::gemmBlocked(got.data().data(), a.data().data(),
                                 b.data().data(), s.m, s.k, s.n, tier);
            EXPECT_LE(maxAbsDiff(want, got), 1e-12)
                << kernels::simdModeName(tier)
                << " blocked gemm failed at m=" << s.m << " k=" << s.k
                << " n=" << s.n;
        }
    }
}

TEST(Kernels, AdjointKernelsMatchMaterializedAdjoint)
{
    const Matrix a = randomMatrix(9, 9, 901);
    const Matrix b = randomMatrix(9, 9, 902);
    Matrix adjb, adja;
    gemmAdjBInto(adjb, a, b);
    gemmAdjAInto(adja, a, b);
    EXPECT_LE(maxAbsDiff(adjb, a * b.adjoint()), 1e-13);
    EXPECT_LE(maxAbsDiff(adja, a.adjoint() * b), 1e-13);
}

TEST(Kernels, AddScaledPlusAdjointBitIdenticalToLegacyExpression)
{
    const Matrix op = randomMatrix(9, 9, 1000);
    const Complex s{0.374, -0.221};
    Matrix h_new = randomHermitian(9, 1001);
    Matrix h_old = h_new;

    addScaledPlusAdjoint(h_new, op, s);
    const Matrix term = op * s;
    h_old += term + term.adjoint();

    for (std::size_t r = 0; r < 9; ++r)
        for (std::size_t c = 0; c < 9; ++c) {
            EXPECT_EQ(h_new(r, c).real(), h_old(r, c).real());
            EXPECT_EQ(h_new(r, c).imag(), h_old(r, c).imag());
        }
}

TEST(Kernels, PowmMatchesRepeatedMultiplication)
{
    ScopedSimdMode scalar(kernels::SimdMode::Scalar);
    const Matrix base = randomMatrix(5, 5, 1100) * Complex{0.3, 0.0};
    Matrix expected = base;
    for (std::uint64_t count = 1; count <= 12; ++count) {
        EXPECT_LE(maxAbsDiff(powm(base, count), expected), 1e-12)
            << "powm failed at count=" << count;
        expected = base * expected;
    }
}

TEST(Kernels, WarmStartedEigMatchesColdAndSavesSweeps)
{
    const Matrix h0 = randomHermitian(9, 1200);
    // A small perturbation stands in for the O(dt) drive delta
    // between adjacent AWG samples.
    const Matrix h1 =
        h0 + randomHermitian(9, 1201) * Complex{1e-3, 0.0};

    Workspace ws;
    std::vector<double> values;
    Matrix vectors;
    const int cold_sweeps = eigHermitianInPlace(
        h0, nullptr, values, vectors, ws, /*sortAscending=*/false);
    EXPECT_GT(cold_sweeps, 2);

    // Warm solve of the perturbed matrix, seeded in place.
    std::vector<double> warm_values = values;
    Matrix warm_vectors = vectors;
    const int warm_sweeps =
        eigHermitianInPlace(h1, &warm_vectors, warm_values,
                            warm_vectors, ws, /*sortAscending=*/false);
    EXPECT_LT(warm_sweeps, cold_sweeps);

    // The warm decomposition reconstructs h1 and matches the cold
    // (sorted) decomposition of h1 eigenvalue-by-eigenvalue.
    Matrix scaled = warm_vectors;
    for (std::size_t r = 0; r < 9; ++r)
        for (std::size_t c = 0; c < 9; ++c)
            scaled(r, c) *= Complex{warm_values[c], 0.0};
    EXPECT_LE(maxAbsDiff(scaled * warm_vectors.adjoint(), h1), 1e-11);

    const EigenSystem cold = eigHermitian(h1);
    std::vector<double> sorted_warm = warm_values;
    std::sort(sorted_warm.begin(), sorted_warm.end());
    for (std::size_t i = 0; i < 9; ++i)
        EXPECT_NEAR(sorted_warm[i], cold.values[i], 1e-11);
}

TEST(Kernels, EigSweepCountersAreExported)
{
    auto &reg = telemetry::MetricsRegistry::global();
    telemetry::Counter &calls = reg.counter("sim.eig.calls");
    telemetry::Counter &sweeps = reg.counter("sim.eig.sweeps");
    telemetry::Counter &warm_calls = reg.counter("sim.eig.warm.calls");

    const std::uint64_t calls0 = calls.value();
    const std::uint64_t sweeps0 = sweeps.value();
    const std::uint64_t warm0 = warm_calls.value();

    const Matrix h = randomHermitian(6, 1300);
    Workspace ws;
    std::vector<double> values;
    Matrix vectors;
    eigHermitianInPlace(h, nullptr, values, vectors, ws, false);
    EXPECT_EQ(calls.value(), calls0 + 1);
    EXPECT_GT(sweeps.value(), sweeps0);
    EXPECT_EQ(warm_calls.value(), warm0);

    eigHermitianInPlace(h, &vectors, values, vectors, ws, false);
    EXPECT_EQ(calls.value(), calls0 + 2);
    EXPECT_EQ(warm_calls.value(), warm0 + 1);
}

TEST(Kernels, SetActiveSimdControlsDispatch)
{
    const kernels::SimdMode original = kernels::activeSimd();
    kernels::setActiveSimd(kernels::SimdMode::Scalar);
    EXPECT_EQ(kernels::activeSimd(), kernels::SimdMode::Scalar);
    if (kernels::sse2Supported()) {
        kernels::setActiveSimd(kernels::SimdMode::Sse2);
        EXPECT_EQ(kernels::activeSimd(), kernels::SimdMode::Sse2);
    }
    if (kernels::avx2Supported()) {
        kernels::setActiveSimd(kernels::SimdMode::Avx2);
        EXPECT_EQ(kernels::activeSimd(), kernels::SimdMode::Avx2);
    }
    if (kernels::avx512Supported()) {
        kernels::setActiveSimd(kernels::SimdMode::Avx512);
        EXPECT_EQ(kernels::activeSimd(), kernels::SimdMode::Avx512);
    } else {
        // Requesting an unsupported tier must clamp, not crash.
        kernels::setActiveSimd(kernels::SimdMode::Avx512);
        EXPECT_NE(kernels::activeSimd(), kernels::SimdMode::Avx512);
    }
    kernels::setActiveSimd(original);
}

// ---------------------------------------------------------------------
// Zero-allocation assertions.
// ---------------------------------------------------------------------

TEST(Kernels, GemmIntoIsHeapSilentAfterWarmup)
{
    const Matrix a = randomMatrix(9, 9, 1400);
    const Matrix b = randomMatrix(9, 9, 1401);
    Matrix out;
    gemmInto(out, a, b); // Warm-up sizes the output buffer.

    const std::uint64_t before = allocCount();
    for (int i = 0; i < 100; ++i)
        gemmInto(out, a, b);
    EXPECT_EQ(allocCount(), before);
}

TEST(Kernels, PowmIntoIsHeapSilentAfterWarmup)
{
    const Matrix base = randomMatrix(9, 9, 1500) * Complex{0.3, 0.0};
    Workspace ws;
    Matrix out;
    powmInto(out, base, 13, ws); // Warm-up.

    const std::uint64_t before = allocCount();
    for (int i = 0; i < 50; ++i)
        powmInto(out, base, 13, ws);
    EXPECT_EQ(allocCount(), before);
}

TEST(Kernels, WarmEigIsHeapSilentAfterWarmup)
{
    const Matrix h = randomHermitian(9, 1600);
    Workspace ws;
    std::vector<double> values;
    Matrix vectors;
    eigHermitianInPlace(h, nullptr, values, vectors, ws, false);
    // The seeded path touches one extra workspace slot; warm it too.
    eigHermitianInPlace(h, &vectors, values, vectors, ws, false);

    const std::uint64_t before = allocCount();
    for (int i = 0; i < 50; ++i)
        eigHermitianInPlace(h, &vectors, values, vectors, ws, false);
    EXPECT_EQ(allocCount(), before);
}

TEST(Kernels, EvolveInnerLoopAllocsAreDurationIndependent)
{
    // The uncached drift kernel performs a constant number of
    // allocations per evolve CALL (workspace warm-up, drive timeline)
    // and zero per SAMPLE: doubling the schedule duration must leave
    // the allocation count of a whole call unchanged.
    TransmonParams params;
    params.frequencyGhz = 5.0;
    params.anharmonicityGhz = -0.33;
    params.driveStrengthGhz = 0.25;
    PulseSimulator sim(TransmonModel::single(params, 3));
    sim.setCachingEnabled(false);

    const auto makeSchedule = [](long duration) {
        Schedule schedule("x");
        schedule.play(driveChannel(0),
                      std::make_shared<GaussianWaveform>(
                          duration, duration / 4.0,
                          Complex{0.0941, 0.0}));
        return schedule;
    };
    const Schedule short_schedule = makeSchedule(80);
    const Schedule long_schedule = makeSchedule(160);

    // Warm-up pass (telemetry handles, thread-local state).
    (void)sim.evolveUnitary(short_schedule);
    (void)sim.evolveUnitary(long_schedule);

    const std::uint64_t base = allocCount();
    (void)sim.evolveUnitary(short_schedule);
    const std::uint64_t short_allocs = allocCount() - base;
    (void)sim.evolveUnitary(long_schedule);
    const std::uint64_t long_allocs = allocCount() - base - short_allocs;

    EXPECT_EQ(short_allocs, long_allocs)
        << "evolve allocations scale with duration: the inner loop "
           "is allocating per sample";

    // Same property for the state-vector path.
    Vector ground(3);
    ground[0] = Complex{1.0, 0.0};
    (void)sim.evolveState(short_schedule, ground);
    (void)sim.evolveState(long_schedule, ground);
    const std::uint64_t base_state = allocCount();
    (void)sim.evolveState(short_schedule, ground);
    const std::uint64_t short_state = allocCount() - base_state;
    (void)sim.evolveState(long_schedule, ground);
    const std::uint64_t long_state =
        allocCount() - base_state - short_state;
    EXPECT_EQ(short_state, long_state);
}

TEST(Kernels, WorkspaceReusesSlotCapacity)
{
    Workspace ws;
    (void)ws.matrix(0, 9, 9);
    (void)ws.vector(0, 9);
    const std::uint64_t before = allocCount();
    for (int i = 0; i < 100; ++i) {
        Matrix &m = ws.matrix(0, 9, 9);
        m.setZero();
        Vector &v = ws.vector(0, 9);
        v.setZero();
        // Shrinking and re-growing within capacity stays silent too.
        (void)ws.matrix(0, 3, 3);
        (void)ws.vector(0, 3);
    }
    EXPECT_EQ(allocCount(), before);
}

} // namespace
} // namespace qpulse
