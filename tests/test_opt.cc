/**
 * @file
 * Tests for the derivative-free optimisers and curve fitters:
 * Nelder-Mead on standard landscapes, the constrained (COBYLA-style)
 * wrapper, Brent, SPSA, and the Rabi/RB fit routines.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "opt/fitting.h"
#include "opt/nelder_mead.h"
#include "opt/spsa.h"

namespace qpulse {
namespace {

TEST(NelderMead, QuadraticBowl)
{
    const Objective f = [](const std::vector<double> &x) {
        return (x[0] - 1.0) * (x[0] - 1.0) +
               (x[1] + 2.0) * (x[1] + 2.0);
    };
    const OptResult result = nelderMead(f, {0.0, 0.0});
    EXPECT_NEAR(result.x[0], 1.0, 1e-4);
    EXPECT_NEAR(result.x[1], -2.0, 1e-4);
    EXPECT_LT(result.fun, 1e-7);
}

TEST(NelderMead, Rosenbrock2d)
{
    const Objective f = [](const std::vector<double> &x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    NelderMeadOptions options;
    options.maxIterations = 20000;
    const OptResult result = nelderMead(f, {-1.2, 1.0}, options);
    EXPECT_NEAR(result.x[0], 1.0, 1e-3);
    EXPECT_NEAR(result.x[1], 1.0, 1e-3);
}

TEST(NelderMead, OneDimensional)
{
    const Objective f = [](const std::vector<double> &x) {
        return std::cos(x[0]);
    };
    const OptResult result = nelderMead(f, {2.5});
    EXPECT_NEAR(std::cos(result.x[0]), -1.0, 1e-8);
}

TEST(NelderMeadMultiStart, EscapesLocalMinimum)
{
    // f has a shallow local min near x=0 and a deep global min near
    // x=4 (well depth 2 beats the 0.16 quadratic cost there).
    const Objective f = [](const std::vector<double> &x) {
        const double t = x[0];
        return 0.01 * t * t - 2.0 * std::exp(-(t - 4.0) * (t - 4.0));
    };
    Rng rng(1);
    const OptResult result = nelderMeadMultiStart(f, {0.0}, 20, 6.0, rng);
    EXPECT_NEAR(result.x[0], 4.0, 0.3);
}

TEST(ConstrainedMinimize, ActiveConstraint)
{
    // Minimise x subject to x >= 2 -> optimum at x = 2.
    const Objective f = [](const std::vector<double> &x) { return x[0]; };
    const std::vector<Constraint> constraints = {
        [](const std::vector<double> &x) { return x[0] - 2.0; }};
    Rng rng(2);
    const OptResult result =
        constrainedMinimize(f, constraints, {5.0}, 4, 6.0, rng);
    EXPECT_NEAR(result.x[0], 2.0, 1e-2);
    EXPECT_GE(result.x[0], 2.0 - 1e-6);
}

TEST(ConstrainedMinimize, InactiveConstraint)
{
    const Objective f = [](const std::vector<double> &x) {
        return x[0] * x[0];
    };
    const std::vector<Constraint> constraints = {
        [](const std::vector<double> &x) { return 5.0 - x[0]; }};
    Rng rng(3);
    const OptResult result =
        constrainedMinimize(f, constraints, {3.0}, 4, 4.0, rng);
    EXPECT_NEAR(result.x[0], 0.0, 1e-2);
}

TEST(Brent, FindsCosineMinimum)
{
    const double x =
        brentMinimize([](double t) { return std::cos(t); }, 2.0, 4.5);
    EXPECT_NEAR(x, kPi, 1e-6);
}

TEST(Brent, QuadraticExact)
{
    const double x = brentMinimize(
        [](double t) { return (t - 0.3) * (t - 0.3); }, -1.0, 1.0);
    EXPECT_NEAR(x, 0.3, 1e-6);
}

TEST(Spsa, NoisyQuadratic)
{
    Rng noise(7);
    const Objective f = [&](const std::vector<double> &x) {
        double value = 0.0;
        for (double xi : x)
            value += (xi - 1.0) * (xi - 1.0);
        return value + noise.gaussian(0.0, 0.01);
    };
    Rng rng(11);
    SpsaOptions options;
    options.iterations = 600;
    const OptResult result = spsa(f, {0.0, 0.0, 0.0}, rng, options);
    for (double xi : result.x)
        EXPECT_NEAR(xi, 1.0, 0.25);
}

TEST(LevenbergMarquardt, FitsLine)
{
    const FitModel line = [](double x, const std::vector<double> &p) {
        return p[0] + p[1] * x;
    };
    std::vector<double> xs, ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(i);
        ys.push_back(2.0 + 0.5 * i);
    }
    const FitResult fit = levenbergMarquardt(line, xs, ys, {0.0, 0.0});
    EXPECT_NEAR(fit.params[0], 2.0, 1e-6);
    EXPECT_NEAR(fit.params[1], 0.5, 1e-6);
}

class CosineFitTest
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(CosineFitTest, RecoversFrequencyAndPhase)
{
    const double freq = std::get<0>(GetParam());
    const double phase = std::get<1>(GetParam());
    std::vector<double> xs, ys;
    for (int i = 0; i <= 40; ++i) {
        const double x = 0.01 * i;
        xs.push_back(x);
        ys.push_back(0.5 - 0.5 * std::cos(2 * kPi * freq * x + phase));
    }
    const FitResult fit = fitCosine(xs, ys);
    EXPECT_NEAR(fit.params[2], freq, 0.05 * freq);
    EXPECT_LT(fit.residualSumSq, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CosineFitTest,
    ::testing::Combine(::testing::Values(3.0, 5.3, 9.0),
                       ::testing::Values(0.0, 0.7, -1.1)));

TEST(CosineFit, RejectsAliasedFit)
{
    // A sparse Rabi-like scan must not lock onto a super-Nyquist
    // frequency (regression test for the calibration aliasing bug).
    std::vector<double> xs, ys;
    for (int k = 0; k <= 24; ++k) {
        const double amp = 0.3 * k / 24.0;
        xs.push_back(amp);
        ys.push_back(0.5 - 0.5 * std::cos(2 * kPi * 5.31 * amp));
    }
    const FitResult fit = fitCosine(xs, ys);
    const double nyquist = 0.5 / (xs[1] - xs[0]);
    EXPECT_LE(std::abs(fit.params[2]), nyquist);
    EXPECT_NEAR(std::abs(fit.params[2]), 5.31, 0.1);
}

class ExpDecayFitTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ExpDecayFitTest, RecoversFidelity)
{
    const double f = GetParam();
    std::vector<double> ks, ys;
    for (int k = 2; k <= 25; ++k) {
        ks.push_back(k);
        ys.push_back(0.5 * std::pow(f, k) + 0.48);
    }
    const FitResult fit = fitExponentialDecay(ks, ys);
    EXPECT_NEAR(fit.params[1], f, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(FidelitySweep, ExpDecayFitTest,
                         ::testing::Values(0.99, 0.995, 0.998, 0.9987));

TEST(Stats, MeanAndStddev)
{
    const std::vector<double> xs = {1, 2, 3, 4};
    EXPECT_NEAR(mean(xs), 2.5, 1e-12);
    EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
}

} // namespace
} // namespace qpulse
