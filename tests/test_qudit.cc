/**
 * @file
 * Tests for the qutrit library: ideal qutrit unitaries, the calibrated
 * QutritRig counter and parity accumulator, and leakage detection.
 */
#include <gtest/gtest.h>

#include "qudit/qutrit.h"

namespace qpulse {
namespace {

TEST(QutritUnitaries, AreUnitary)
{
    EXPECT_TRUE(qutrit::x01().isUnitary(1e-12));
    EXPECT_TRUE(qutrit::x12().isUnitary(1e-12));
    EXPECT_TRUE(qutrit::x02().isUnitary(1e-12));
    EXPECT_TRUE(qutrit::increment().isUnitary(1e-12));
}

TEST(QutritUnitaries, SubspaceAction)
{
    Vector zero(3), one(3), two(3);
    zero[0] = one[1] = two[2] = Complex{1, 0};
    // x01 swaps 0 and 1 (with phase), leaves 2 alone.
    EXPECT_NEAR(std::norm(qutrit::x01().apply(zero)[1]), 1.0, 1e-12);
    EXPECT_NEAR(std::norm(qutrit::x01().apply(two)[2]), 1.0, 1e-12);
    // x12 swaps 1 and 2, leaves 0 alone.
    EXPECT_NEAR(std::norm(qutrit::x12().apply(one)[2]), 1.0, 1e-12);
    EXPECT_NEAR(std::norm(qutrit::x12().apply(zero)[0]), 1.0, 1e-12);
    // x02 swaps 0 and 2.
    EXPECT_NEAR(std::norm(qutrit::x02().apply(two)[0]), 1.0, 1e-12);
}

TEST(QutritUnitaries, IncrementCycles)
{
    const Matrix inc = qutrit::increment();
    Vector zero(3);
    zero[0] = Complex{1, 0};
    Vector state = inc.apply(zero);
    EXPECT_NEAR(std::norm(state[1]), 1.0, 1e-12);
    state = inc.apply(state);
    EXPECT_NEAR(std::norm(state[2]), 1.0, 1e-12);
    state = inc.apply(state);
    EXPECT_NEAR(std::norm(state[0]), 1.0, 1e-12);
}

TEST(QutritUnitaries, FullCycleReturnsGroundState)
{
    // The three-hop pulse sequence returns the ground state to itself
    // (the counter's operating condition).
    const Matrix cycle = qutrit::cycle();
    Vector zero(3);
    zero[0] = Complex{1, 0};
    EXPECT_NEAR(std::norm(cycle.apply(zero)[0]), 1.0, 1e-12);
    // And the intermediate hops visit |1> then |2>.
    Vector mid = qutrit::x01().apply(zero);
    EXPECT_NEAR(std::norm(mid[1]), 1.0, 1e-12);
    mid = qutrit::x12().apply(mid);
    EXPECT_NEAR(std::norm(mid[2]), 1.0, 1e-12);
}

class QutritRigTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        rig_ = new QutritRig(armonkConfig());
    }
    static void TearDownTestSuite()
    {
        delete rig_;
    }
    static QutritRig *rig_;
};

QutritRig *QutritRigTest::rig_ = nullptr;

TEST_F(QutritRigTest, HopAndCycleScheduleShape)
{
    for (int phase = 0; phase < 3; ++phase) {
        const Schedule hop = rig_->hopSchedule(phase);
        EXPECT_EQ(hop.playCount(), 1u);
        EXPECT_EQ(hop.duration(),
                  rig_->calibration().qutritDuration);
    }
    const Schedule cycle = rig_->cycleSchedule();
    EXPECT_EQ(cycle.playCount(), 3u);
    EXPECT_EQ(cycle.duration(),
              3 * rig_->calibration().qutritDuration);
}

TEST_F(QutritRigTest, HopsAdvanceTheLevel)
{
    // One hop -> |1>, two hops -> |2> (through the density path).
    Matrix rho(3, 3);
    rho(0, 0) = Complex{1.0, 0.0};
    rho = rig_->simulator().evolveLindblad(rig_->hopSchedule(0), rho);
    EXPECT_GT(rho(1, 1).real(), 0.95);
    rho = rig_->simulator().evolveLindblad(rig_->hopSchedule(1), rho);
    EXPECT_GT(rho(2, 2).real(), 0.9);
}

TEST_F(QutritRigTest, CounterScheduleComposes)
{
    const Schedule five = rig_->counterSchedule(5);
    EXPECT_EQ(five.playCount(), 15u);
    EXPECT_EQ(five.duration(),
              15 * rig_->calibration().qutritDuration);
}

TEST_F(QutritRigTest, OneCycleReturnsToGround)
{
    const auto pops = rig_->runCounter(1);
    EXPECT_GT(pops[0], 0.85);
    EXPECT_NEAR(pops[0] + pops[1] + pops[2], 1.0, 1e-6);
}

TEST_F(QutritRigTest, DropoutGrowsWithCyclesOnAverage)
{
    // Coherent control imperfections make the per-cycle dropout
    // wiggle, so compare window averages rather than single points.
    double early = 0.0, late = 0.0;
    for (int cycle = 1; cycle <= 4; ++cycle)
        early += rig_->runCounter(cycle)[0];
    for (int cycle = 30; cycle <= 33; ++cycle)
        late += rig_->runCounter(cycle)[0];
    EXPECT_GT(early / 4.0, late / 4.0);
    EXPECT_GT(late / 4.0, 0.5); // Still usable after ~30 cycles.
}

TEST_F(QutritRigTest, ParityAccumulator)
{
    // 4 set bits -> 4 mod 3 = 1: the dominant level must be |1>.
    const std::vector<bool> bits = {true, false, true, true,
                                    false, true};
    const auto pops = rig_->runParityAccumulator(bits);
    EXPECT_GT(pops[1], pops[0]);
    EXPECT_GT(pops[1], pops[2]);
    EXPECT_GT(pops[1], 0.6);
}

TEST_F(QutritRigTest, ParityOfZeroStreamIsZero)
{
    const auto pops =
        rig_->runParityAccumulator({false, false, false});
    EXPECT_GT(pops[0], 0.99);
}

TEST_F(QutritRigTest, ClassifyShotsMatchesPopulations)
{
    Rng rng(5);
    const std::vector<double> pops = {0.7, 0.2, 0.1};
    const auto counts = rig_->classifyShots(pops, 20000, rng);
    EXPECT_EQ(counts[0] + counts[1] + counts[2], 20000);
    EXPECT_NEAR(static_cast<double>(counts[0]) / 20000.0, 0.7, 0.05);
    EXPECT_NEAR(static_cast<double>(counts[2]) / 20000.0, 0.1, 0.05);
}

TEST_F(QutritRigTest, LeakageDetection)
{
    Rng rng(7);
    // A state fully inside the qubit subspace shows only the small
    // discriminator confusion...
    const double clean =
        rig_->leakageProbability({0.5, 0.5, 0.0}, 5000, rng);
    EXPECT_LT(clean, 0.12);
    // ...a leaked state is clearly flagged (Section 7.2's
    // error-mitigation use case).
    const double leaked =
        rig_->leakageProbability({0.4, 0.3, 0.3}, 5000, rng);
    EXPECT_GT(leaked, clean + 0.12);
}

} // namespace
} // namespace qpulse
