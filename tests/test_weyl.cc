/**
 * @file
 * Tests for two-qubit local-equivalence machinery (Makhlin invariants,
 * Weyl coordinates) and the numeric basis decomposer that regenerates
 * Table 2.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/rng.h"
#include "linalg/gates.h"
#include "synth/decomposer.h"
#include "synth/weyl.h"

namespace qpulse {
namespace {

Matrix
randomLocal(Rng &rng)
{
    auto one = [&]() {
        return gates::u3(std::acos(1.0 - 2.0 * rng.uniform()),
                         rng.uniform(-kPi, kPi), rng.uniform(-kPi, kPi));
    };
    return kron(one(), one());
}

TEST(Makhlin, IdentityInvariants)
{
    const MakhlinInvariants inv =
        makhlinInvariants(Matrix::identity(4));
    EXPECT_NEAR(inv.g1.real(), 1.0, 1e-9);
    EXPECT_NEAR(inv.g1.imag(), 0.0, 1e-9);
    EXPECT_NEAR(inv.g2, 3.0, 1e-9);
}

TEST(Makhlin, CnotInvariants)
{
    const MakhlinInvariants inv = makhlinInvariants(gates::cnot());
    EXPECT_NEAR(std::abs(inv.g1), 0.0, 1e-9);
    EXPECT_NEAR(inv.g2, 1.0, 1e-9);
}

TEST(Makhlin, SwapInvariants)
{
    const MakhlinInvariants inv = makhlinInvariants(gates::swap());
    EXPECT_NEAR(inv.g1.real(), -1.0, 1e-9);
    EXPECT_NEAR(inv.g2, -3.0, 1e-9);
}

TEST(Makhlin, InvariantUnderLocalGates)
{
    Rng rng(3);
    const Matrix base = gates::cnot();
    const MakhlinInvariants ref = makhlinInvariants(base);
    for (int trial = 0; trial < 8; ++trial) {
        const Matrix dressed =
            randomLocal(rng) * base * randomLocal(rng);
        const MakhlinInvariants inv = makhlinInvariants(dressed);
        EXPECT_NEAR(std::abs(inv.g1 - ref.g1), 0.0, 1e-8);
        EXPECT_NEAR(inv.g2, ref.g2, 1e-8);
    }
}

TEST(Makhlin, LocalEquivalenceClasses)
{
    // CR(90) generates CNOT (Section 5.1) -> same class.
    EXPECT_TRUE(locallyEquivalent(gates::cr(kPi / 2), gates::cnot()));
    // MAP is a CZ-class (== CNOT-class) gate (Section 3.2).
    EXPECT_TRUE(locallyEquivalent(gates::map(), gates::cz()));
    EXPECT_TRUE(locallyEquivalent(gates::cz(), gates::cnot()));
    // iSWAP is NOT CNOT-class; sqrt(iSWAP) is neither.
    EXPECT_FALSE(locallyEquivalent(gates::iswap(), gates::cnot()));
    EXPECT_FALSE(locallyEquivalent(gates::sqrtIswap(), gates::iswap()));
    // ZZ(theta) ~ CR(theta) for matching theta (Section 6.2).
    EXPECT_TRUE(locallyEquivalent(gates::zz(0.8), gates::cr(0.8)));
    EXPECT_FALSE(locallyEquivalent(gates::zz(0.8), gates::cr(0.5)));
}

TEST(Weyl, CnotCoordinates)
{
    const WeylCoordinates c = weylCoordinates(gates::cnot());
    EXPECT_NEAR(c.c1, kPi / 2, 1e-3);
    EXPECT_NEAR(c.c2, 0.0, 1e-3);
    EXPECT_NEAR(c.c3, 0.0, 1e-3);
}

TEST(Weyl, IswapCoordinates)
{
    const WeylCoordinates c = weylCoordinates(gates::iswap());
    EXPECT_NEAR(c.c1, kPi / 2, 1e-3);
    EXPECT_NEAR(c.c2, kPi / 2, 1e-3);
    EXPECT_NEAR(c.c3, 0.0, 1e-3);
}

TEST(Weyl, SqrtIswapCoordinates)
{
    const WeylCoordinates c = weylCoordinates(gates::sqrtIswap());
    EXPECT_NEAR(c.c1, kPi / 4, 1e-3);
    EXPECT_NEAR(c.c2, kPi / 4, 1e-3);
    EXPECT_NEAR(c.c3, 0.0, 1e-3);
}

TEST(Weyl, ZzInteractionStrengthScales)
{
    // ZZ(theta) sits at c1 = theta (for theta in [0, pi/2]): the
    // "interaction strength is what you pay for" intuition behind the
    // CR(theta) column of Table 2.
    for (double theta : {0.3, 0.7, 1.2}) {
        const WeylCoordinates c = weylCoordinates(gates::zz(theta));
        EXPECT_NEAR(c.c1, theta, 2e-3);
        EXPECT_NEAR(c.c2, 0.0, 2e-3);
    }
}

TEST(Decomposer, TrialUnitaryParameterCount)
{
    const NativeGate basis = nativeCnot();
    // 2 applications -> 3 local layers -> 18 params.
    std::vector<double> params(18, 0.0);
    const Matrix u = buildTrialUnitary(basis, params, 2);
    EXPECT_TRUE(u.isUnitary(1e-9));
    EXPECT_THROW(buildTrialUnitary(basis, std::vector<double>(5, 0.0), 2),
                 FatalError);
}

TEST(Decomposer, ZeroApplicationsIsLocal)
{
    // With zero basis applications only local gates are available, so
    // CNOT cannot be reached but identity can.
    DecomposerOptions options;
    options.maxApplications = 0;
    options.restartsPerLayer = 6;
    const Decomposition id_result =
        decompose(Matrix::identity(4), nativeCnot(), options);
    EXPECT_TRUE(id_result.feasible);
    EXPECT_EQ(id_result.applications, 0);
    const Decomposition cx_result =
        decompose(gates::cnot(), nativeCnot(), options);
    EXPECT_FALSE(cx_result.feasible);
}

TEST(Decomposer, CnotFromCnotIsOne)
{
    DecomposerOptions options;
    options.maxApplications = 1;
    options.restartsPerLayer = 10;
    const Decomposition result =
        decompose(gates::cnot(), nativeCnot(), options);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.applications, 1);
    EXPECT_GE(result.fidelity, 0.999);
}

TEST(Decomposer, CnotFromCr90IsOne)
{
    DecomposerOptions options;
    options.maxApplications = 1;
    options.restartsPerLayer = 10;
    const Decomposition result =
        decompose(gates::cnot(), nativeCr90(), options);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.applications, 1);
}

TEST(Decomposer, ZzFromSqrtIswapIsTwoHalves)
{
    // Table 2: ZZ costs 1.0 with sqrt(iSWAP), i.e. two 0.5-cost
    // applications.
    DecomposerOptions options;
    options.maxApplications = 2;
    options.restartsPerLayer = 16;
    const Decomposition result = decompose(
        targetZzInteraction(deg(60)), nativeSqrtIswap(), options);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.applications, 2);
    EXPECT_NEAR(result.cost, 1.0, 1e-9);
}

TEST(Decomposer, ZzFromCrThetaCostsThetaOver90)
{
    // The headline Table 2 entry: ZZ(theta) costs theta/90deg with the
    // parametrized CR gate — 2x cheaper than the two CR(90) pulses of
    // the standard decomposition at theta = 90, and cheaper still for
    // smaller angles.
    DecomposerOptions options;
    options.maxApplications = 1;
    options.restartsPerLayer = 16;
    const double theta = deg(90);
    const Decomposition result =
        decompose(targetZzInteraction(theta), nativeCrTheta(), options);
    EXPECT_TRUE(result.feasible);
    // The 99.9% fidelity floor lets the optimizer shave a little off
    // the exact pi/2 angle, so the tolerances are loose-ish.
    EXPECT_NEAR(result.cost, 1.0, 0.08);
    ASSERT_EQ(result.thetas.size(), 1u);
    EXPECT_NEAR(std::abs(result.thetas[0]), kPi / 2, 0.12);
}

} // namespace
} // namespace qpulse
