/**
 * @file
 * Tests for the robustness layer: the structured validation gate
 * (every malformed-schedule class rejected with its distinct
 * ErrorCode), deterministic fault injection (bit-identical across
 * thread counts), bounded retry with terminal-error preservation, the
 * drift watchdog (exactly one recalibration per crossing), graceful
 * degradation to the standard decomposition, fault-plan parsing, the
 * diagnosed env helpers and the RB-under-faults accounting.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>

#include "common/env.h"
#include "common/status.h"
#include "compile/compiler.h"
#include "device/fault_injector.h"
#include "device/resilient_executor.h"
#include "device/schedule_validation.h"
#include "rb/randomized_benchmarking.h"

namespace qpulse {
namespace {

/** Calibrated single-qubit rig shared by the executor tests. */
struct Rig
{
    Rig()
        : config(almadenLineConfig(1)),
          backend(makeCalibratedBackend(config)),
          calibrator(config), cal(calibrator.calibrateQubit(0)),
          sim(calibrator.qubitModel(0))
    {}

    Schedule
    x180Schedule() const
    {
        Schedule schedule("x180");
        schedule.play(driveChannel(0), cal.x180Pulse());
        return schedule;
    }

    /** Standard-flow stand-in: two sequential x90 pulses. */
    Schedule
    twoX90Schedule() const
    {
        Schedule schedule("x90x90");
        schedule.play(driveChannel(0), cal.x90Pulse());
        schedule.play(driveChannel(0), cal.x90Pulse());
        return schedule;
    }

    BackendConfig config;
    std::shared_ptr<const PulseBackend> backend;
    Calibrator calibrator;
    QubitCalibration cal;
    PulseSimulator sim;
};

PulseShotOptions
shotOptions(long shots = 256, std::size_t max_threads = 0)
{
    PulseShotOptions opts;
    opts.shots = shots;
    opts.seed = 0xB0B;
    opts.maxThreads = max_threads;
    return opts;
}

TEST(Status, TaxonomyAndThrow)
{
    const Status ok = Status::okStatus();
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.toString(), "ok");

    const Status bad =
        Status::error(ErrorCode::NonFiniteSample, "NaN on d0");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::NonFiniteSample);
    EXPECT_EQ(bad.toString(), "non-finite-sample: NaN on d0");

    EXPECT_NO_THROW(throwIfError(ok));
    try {
        throwIfError(bad);
        FAIL() << "throwIfError must throw on a non-Ok status";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.code(), ErrorCode::NonFiniteSample);
    }
}

TEST(FaultPlan, ParseRoundTripsAndRejectsMalformedSpecs)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.transientRate = 0.25;
    plan.timeoutRate = 0.1;
    plan.driftRate = 0.5;
    plan.driftFreqKhz = 4000.0;
    plan.driftAmpError = 0.1;
    plan.awgNanRate = 0.01;
    plan.awgClipRate = 0.02;
    plan.awgDropRate = 0.03;
    plan.readoutFlipRate = 0.04;
    plan.readoutDropRate = 0.05;
    EXPECT_TRUE(plan.enabled());

    FaultPlan parsed;
    ASSERT_TRUE(FaultPlan::parse(plan.toString(), parsed).ok());
    EXPECT_EQ(parsed.toString(), plan.toString());

    // Malformed specs: distinct ParseError, `out` left untouched.
    FaultPlan out;
    out.transientRate = 0.7;
    EXPECT_EQ(FaultPlan::parse("bogus=1", out).code(),
              ErrorCode::ParseError);
    EXPECT_EQ(FaultPlan::parse("transient=nope", out).code(),
              ErrorCode::ParseError);
    EXPECT_EQ(FaultPlan::parse("transient=1.5", out).code(),
              ErrorCode::ParseError);
    EXPECT_EQ(FaultPlan::parse("transient", out).code(),
              ErrorCode::ParseError);
    EXPECT_DOUBLE_EQ(out.transientRate, 0.7);

    EXPECT_FALSE(FaultPlan{}.enabled());
}

TEST(Validation, RejectsEachMalformedClassWithDistinctCode)
{
    const Rig rig;

    // A calibrated schedule passes.
    EXPECT_TRUE(
        validateSchedule(rig.x180Schedule(), rig.config).ok());

    // Non-finite sample.
    std::vector<Complex> nan_samples(16, Complex{0.1, 0.0});
    nan_samples[7] =
        Complex{std::numeric_limits<double>::quiet_NaN(), 0.0};
    Schedule nan_schedule("nan");
    nan_schedule.play(driveChannel(0),
                      std::make_shared<SampledWaveform>(nan_samples));
    EXPECT_EQ(validateSchedule(nan_schedule, rig.config).code(),
              ErrorCode::NonFiniteSample);

    // Amplitude saturation (|d| > 1).
    Schedule hot_schedule("hot");
    hot_schedule.play(driveChannel(0),
                      std::make_shared<SampledWaveform>(
                          std::vector<Complex>(16, Complex{1.2, 0.0})));
    EXPECT_EQ(validateSchedule(hot_schedule, rig.config).code(),
              ErrorCode::AmplitudeSaturation);

    // Unknown channels: a drive index past the qubit count and a
    // control index on a config with no coupled edges.
    Schedule wrong_drive("wrong-drive");
    wrong_drive.play(driveChannel(3), rig.cal.x90Pulse());
    EXPECT_EQ(validateSchedule(wrong_drive, rig.config).code(),
              ErrorCode::UnknownChannel);
    Schedule wrong_control("wrong-control");
    wrong_control.play(controlChannel(0), rig.cal.x90Pulse());
    EXPECT_EQ(validateSchedule(wrong_control, rig.config).code(),
              ErrorCode::UnknownChannel);

    // Overlapping Play spans on one channel.
    Schedule overlapping("overlap");
    overlapping.playAt(0, driveChannel(0), rig.cal.x90Pulse());
    overlapping.playAt(rig.cal.x90Pulse()->duration() / 2,
                       driveChannel(0), rig.cal.x90Pulse());
    EXPECT_EQ(validateSchedule(overlapping, rig.config).code(),
              ErrorCode::NonMonotonicTime);
}

TEST(Validation, NegativeTimesThrowStructuredAtConstruction)
{
    // The Schedule API itself refuses negative start times with the
    // structured NegativeTime code (validateSchedule keeps the same
    // check as defence-in-depth for schedules built by other means).
    const Rig rig;
    Schedule schedule("negative");
    try {
        schedule.playAt(-4, driveChannel(0), rig.cal.x90Pulse());
        FAIL() << "negative play start must throw";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.code(), ErrorCode::NegativeTime);
    }

    PulseInstruction inst;
    inst.kind = PulseInstructionKind::Delay;
    inst.channel = driveChannel(0);
    inst.startTime = -1;
    try {
        schedule.addInstruction(inst);
        FAIL() << "negative instruction start must throw";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.code(), ErrorCode::NegativeTime);
    }
}

TEST(Validation, RunShotsThrowsStructuredErrorBeforeTheCache)
{
    const Rig rig;
    std::vector<Complex> samples(16, Complex{0.1, 0.0});
    samples[3] =
        Complex{0.0, std::numeric_limits<double>::infinity()};
    Schedule bad("inf");
    bad.play(driveChannel(0),
             std::make_shared<SampledWaveform>(samples));
    try {
        rig.backend->runShots(rig.sim, bad, shotOptions());
        FAIL() << "runShots must reject a malformed schedule";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.code(), ErrorCode::NonFiniteSample);
    }
}

TEST(Validation, CompileResultCarriesValidationStatus)
{
    const Rig rig;
    PulseCompiler compiler(rig.backend, CompileMode::Optimized);
    QuantumCircuit circuit(1);
    circuit.u3(1.0, 0.5, -0.25, 0);
    circuit.measure(0);
    const CompileResult result = compiler.compile(circuit);
    EXPECT_TRUE(result.validation.ok()) << result.validation.toString();
}

TEST(EnvParsing, EnvLongClampsAndFallsBack)
{
    const char *name = "QPULSE_ENVTEST";
    unsetenv(name);
    EXPECT_EQ(envLong(name, 7, 1, 64), 7);
    setenv(name, "12", 1);
    EXPECT_EQ(envLong(name, 7, 1, 64), 12);
    setenv(name, "9999", 1);
    EXPECT_EQ(envLong(name, 7, 1, 64), 64);
    setenv(name, "-3", 1);
    EXPECT_EQ(envLong(name, 7, 1, 64), 1);
    setenv(name, "abc", 1);
    EXPECT_EQ(envLong(name, 7, 1, 64), 7);
    setenv(name, "12abc", 1);
    EXPECT_EQ(envLong(name, 7, 1, 64), 7);
    unsetenv(name);
}

TEST(FaultInjection, DecisionsDeterministicAcrossInstances)
{
    const Rig rig;
    FaultPlan plan;
    plan.transientRate = 0.3;
    plan.timeoutRate = 0.2;
    plan.awgNanRate = 0.2;
    plan.awgClipRate = 0.2;
    plan.awgDropRate = 0.2;
    plan.readoutFlipRate = 0.1;
    plan.readoutDropRate = 0.1;

    FaultInjector a(plan), b(plan);
    const Schedule clean = rig.x180Schedule();
    for (std::uint64_t run = 0; run < 16; ++run)
        for (int attempt = 0; attempt < 3; ++attempt) {
            const auto ia = a.inject(clean, run, attempt);
            const auto ib = b.inject(clean, run, attempt);
            EXPECT_EQ(ia.transient, ib.transient);
            EXPECT_EQ(ia.timeout, ib.timeout);
            EXPECT_EQ(ia.corrupted, ib.corrupted);
            ASSERT_EQ(ia.schedule.instructions().size(),
                      ib.schedule.instructions().size());

            std::vector<long> counts_a = {100, 80, 20};
            std::vector<long> counts_b = counts_a;
            const std::vector<double> pops = {0.5, 0.4, 0.1};
            EXPECT_EQ(a.applyReadoutFaults(counts_a, pops, run, attempt),
                      b.applyReadoutFaults(counts_b, pops, run, attempt));
            EXPECT_EQ(counts_a, counts_b);
            long total = 0;
            for (const long c : counts_a)
                total += c;
            EXPECT_EQ(total, 200); // Faults never change the shot sum.
        }
    EXPECT_EQ(a.stats().toString(), b.stats().toString());
}

TEST(FaultInjection, ExecutorBitIdenticalAcrossThreadCounts)
{
    const Rig rig;
    FaultPlan plan;
    plan.transientRate = 0.25;
    plan.awgNanRate = 0.2;
    plan.awgDropRate = 0.15;
    plan.driftRate = 0.3;
    plan.driftFreqKhz = 4000.0;
    plan.driftAmpError = 0.2;
    plan.readoutFlipRate = 0.05;

    const auto run_all = [&](std::size_t max_threads) {
        ResilientExecutor executor(rig.backend);
        executor.setFaultInjector(
            std::make_shared<FaultInjector>(plan));
        ResilientRequest request;
        request.schedule = rig.x180Schedule();
        request.key = "x180/q0";
        request.fallback = rig.twoX90Schedule();
        std::vector<ResilientOutcome> outcomes;
        for (int run = 0; run < 3; ++run)
            outcomes.push_back(executor.run(
                rig.sim, request, shotOptions(192, max_threads)));
        return outcomes;
    };

    const auto sequential = run_all(1);
    const auto threaded = run_all(8);
    ASSERT_EQ(sequential.size(), threaded.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        EXPECT_EQ(sequential[i].status.code(),
                  threaded[i].status.code());
        EXPECT_EQ(sequential[i].result.counts,
                  threaded[i].result.counts);
        EXPECT_EQ(sequential[i].usedFallback, threaded[i].usedFallback);
        EXPECT_EQ(sequential[i].degraded, threaded[i].degraded);
        EXPECT_EQ(sequential[i].stats.toString(),
                  threaded[i].stats.toString());
    }
}

TEST(Retry, ExhaustedBudgetPreservesTerminalError)
{
    const Rig rig;
    FaultPlan plan;
    plan.transientRate = 1.0;
    RetryPolicy retry;
    retry.maxAttempts = 3;

    ResilientExecutor executor(rig.backend, retry);
    executor.setFaultInjector(std::make_shared<FaultInjector>(plan));
    ResilientRequest request;
    request.schedule = rig.x180Schedule();

    const ResilientOutcome outcome =
        executor.run(rig.sim, request, shotOptions());
    EXPECT_EQ(outcome.status.code(), ErrorCode::RetriesExhausted);
    EXPECT_EQ(outcome.lastError.code(), ErrorCode::TransientFailure);
    EXPECT_EQ(outcome.stats.attempts, 3);
    EXPECT_EQ(outcome.stats.retries, 2);
    EXPECT_EQ(outcome.stats.transientFailures, 3);
    EXPECT_TRUE(outcome.result.counts.empty());

    // Backoff accounting is bounded by the policy: every delay is at
    // most cap * (1 + jitter) and there is one per retry.
    EXPECT_GT(outcome.stats.backoffTotalMs, 0.0);
    EXPECT_LE(outcome.stats.backoffTotalMs,
              2.0 * retry.backoffCapMs * (1.0 + retry.jitter));
}

TEST(Retry, TimeoutClassPreserved)
{
    const Rig rig;
    FaultPlan plan;
    plan.timeoutRate = 1.0;
    RetryPolicy retry;
    retry.maxAttempts = 2;

    ResilientExecutor executor(rig.backend, retry);
    executor.setFaultInjector(std::make_shared<FaultInjector>(plan));
    ResilientRequest request;
    request.schedule = rig.x180Schedule();

    const ResilientOutcome outcome =
        executor.run(rig.sim, request, shotOptions());
    EXPECT_EQ(outcome.status.code(), ErrorCode::RetriesExhausted);
    EXPECT_EQ(outcome.lastError.code(), ErrorCode::Timeout);
    EXPECT_EQ(outcome.stats.timeouts, 2);
}

TEST(Retry, CorruptedUploadsCaughtByTheGateAndRetried)
{
    const Rig rig;
    FaultPlan plan;
    plan.awgNanRate = 1.0; // Every upload carries a NaN glitch.
    RetryPolicy retry;
    retry.maxAttempts = 3;

    ResilientExecutor executor(rig.backend, retry);
    executor.setFaultInjector(std::make_shared<FaultInjector>(plan));
    ResilientRequest request;
    request.schedule = rig.x180Schedule();

    const ResilientOutcome outcome =
        executor.run(rig.sim, request, shotOptions());
    EXPECT_EQ(outcome.status.code(), ErrorCode::RetriesExhausted);
    EXPECT_EQ(outcome.lastError.code(), ErrorCode::NonFiniteSample);
    EXPECT_EQ(outcome.stats.corruptedSchedules, 3);
    EXPECT_EQ(outcome.stats.validationRejects, 3);
}

TEST(DriftWatchdog, RecalibratesExactlyOncePerCrossing)
{
    const Rig rig;
    FaultPlan plan;
    plan.driftRate = 1.0; // A spike at every run boundary.
    plan.driftFreqKhz = 8000.0;
    plan.driftAmpError = 0.3;

    DriftWatchdogPolicy watchdog;
    watchdog.tolerance = 0.1;
    watchdog.maxRecalibrations = 2;

    ResilientExecutor executor(rig.backend, RetryPolicy{}, watchdog);
    const auto injector = std::make_shared<FaultInjector>(plan);
    executor.setFaultInjector(injector);
    int hook_calls = 0;
    executor.setRecalibrationHook([&hook_calls] { ++hook_calls; });

    ResilientRequest request;
    request.schedule = rig.x180Schedule();

    const ResilientOutcome first =
        executor.run(rig.sim, request, shotOptions(512));
    EXPECT_TRUE(first.status.ok()) << first.status.toString();
    EXPECT_FALSE(first.degraded);
    EXPECT_EQ(first.stats.recalibrations, 1);
    EXPECT_EQ(injector->stats().driftSpikes, 1);
    EXPECT_EQ(hook_calls, 1);
    // The post-recalibration batch recovered to within tolerance.
    EXPECT_LE(first.baseline - first.proxy, watchdog.tolerance);

    // The next run drifts again (rate 1): a new crossing, one more
    // targeted refresh — never a second one for the same crossing.
    const ResilientOutcome second =
        executor.run(rig.sim, request, shotOptions(512));
    EXPECT_TRUE(second.status.ok()) << second.status.toString();
    EXPECT_EQ(second.stats.recalibrations, 1);
    EXPECT_EQ(hook_calls, 2);
    EXPECT_EQ(executor.stats().recalibrations, 2);
}

TEST(Degradation, InvalidPrimaryFallsBackBitIdentically)
{
    const Rig rig;
    // A miscalibrated augmented entry: an envelope past the OpenPulse
    // |d| <= 1 bound (as an uploaded sample buffer — the ScaledWaveform
    // wrapper itself refuses to be built that way).
    Schedule bad_primary("direct_rx");
    bad_primary.play(driveChannel(0),
                     std::make_shared<SampledWaveform>(
                         std::vector<Complex>(160, Complex{1.2, 0.0}),
                         "saturated_rx"));

    ResilientExecutor executor(rig.backend);
    ResilientRequest request;
    request.schedule = bad_primary;
    request.key = "direct_rx/q0";
    request.fallback = rig.twoX90Schedule();

    const PulseShotOptions opts = shotOptions();
    const ResilientOutcome outcome =
        executor.run(rig.sim, request, opts);
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.toString();
    EXPECT_TRUE(outcome.usedFallback);
    EXPECT_EQ(outcome.stats.fallbacks, 1);
    EXPECT_EQ(outcome.stats.validationRejects, 1);
    EXPECT_EQ(outcome.lastError.code(),
              ErrorCode::AmplitudeSaturation);

    // The degraded path is the standard flow, bit for bit.
    const PulseShotResult direct =
        rig.backend->runShots(rig.sim, rig.twoX90Schedule(), opts);
    EXPECT_EQ(outcome.result.counts, direct.counts);

    // The failing entry is now stale: the next run skips the primary.
    EXPECT_TRUE(executor.entryStale("direct_rx/q0"));
    const ResilientOutcome next = executor.run(rig.sim, request, opts);
    EXPECT_TRUE(next.status.ok());
    EXPECT_TRUE(next.usedFallback);
    EXPECT_EQ(next.result.counts, direct.counts);

    // markFresh models a successful recalibration of the entry.
    executor.markFresh("direct_rx/q0");
    EXPECT_FALSE(executor.entryStale("direct_rx/q0"));
}

TEST(RbUnderFaults, BatchedAccountingDeterministicAndOptIn)
{
    const auto backend = makeCalibratedBackend(almadenLineConfig(1));
    RbConfig config;
    config.minLength = 2;
    config.maxLength = 4;
    config.lengthStride = 2;
    config.sequencesPerLength = 2;
    config.shots = 200;
    config.parallelSequences = true;
    config.faultMaxAttempts = 3;
    config.faultPlan.transientRate = 0.6;
    config.faultPlan.readoutFlipRate = 0.05;

    const RbResult first = runRb(backend, RbMode::Standard, config);
    const RbResult second = runRb(backend, RbMode::Standard, config);
    ASSERT_EQ(first.decay.size(), second.decay.size());
    for (std::size_t i = 0; i < first.decay.size(); ++i)
        EXPECT_DOUBLE_EQ(first.decay[i].survival,
                         second.decay[i].survival);
    EXPECT_EQ(first.resilience.toString(),
              second.resilience.toString());

    // 2 lengths x 2 sequences = 4 cells, each charged 1..3 attempts.
    EXPECT_GE(first.resilience.attempts, 4);
    EXPECT_LE(first.resilience.attempts, 12);
    EXPECT_GT(first.resilience.readoutFaultShots, 0);

    // Disabled plan (the default) leaves the accounting untouched.
    RbConfig plain = config;
    plain.faultPlan = FaultPlan{};
    const RbResult clean = runRb(backend, RbMode::Standard, plain);
    EXPECT_EQ(clean.resilience.attempts, 0);
    EXPECT_EQ(clean.resilience.readoutFaultShots, 0);
}

} // namespace
} // namespace qpulse
