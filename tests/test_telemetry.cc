/**
 * @file
 * Telemetry subsystem tests: span capture and ordering, ring-buffer
 * overflow accounting, exporter golden output, histogram percentile
 * math, registry reset semantics, thread-pool worker identity, and
 * the cross-thread counter determinism contract
 * (docs/OBSERVABILITY.md). The concurrency cases double as the TSan
 * targets for the `telemetry` ctest label.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "compile/compiler.h"
#include "device/calibration.h"
#include "device/schedule_validation.h"
#include "pulsesim/propagator_cache.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

using namespace qpulse;

namespace {

/** Enable tracing on a clean buffer; disable + drain on scope exit. */
class ScopedTracing
{
  public:
    ScopedTracing()
    {
        telemetry::Tracer::instance().clear();
        telemetry::Tracer::instance().setEnabled(true);
    }

    ~ScopedTracing()
    {
        telemetry::Tracer::instance().setEnabled(false);
        telemetry::Tracer::instance().clear();
    }
};

std::vector<telemetry::TraceEvent>
drainByName(const char *name)
{
    std::vector<telemetry::TraceEvent> out;
    for (const telemetry::TraceEvent &event :
         telemetry::Tracer::instance().drain())
        if (std::string(event.name) == name)
            out.push_back(event);
    return out;
}

TEST(TraceSpan, NestedSpansRecordContainedAndOrdered)
{
    ScopedTracing tracing;
    {
        telemetry::TraceSpan outer("test.outer");
        {
            telemetry::TraceSpan inner("test.inner");
        }
    }
    const std::vector<telemetry::TraceEvent> events =
        telemetry::Tracer::instance().drain();
    ASSERT_EQ(events.size(), 2u);
    // drain() sorts by (startNs, seq): the outer span starts first
    // even though the inner one completes (and is recorded) first.
    EXPECT_STREQ(events[0].name, "test.outer");
    EXPECT_STREQ(events[1].name, "test.inner");
    const telemetry::TraceEvent &outer = events[0];
    const telemetry::TraceEvent &inner = events[1];
    EXPECT_LE(outer.startNs, inner.startNs);
    EXPECT_LE(inner.startNs + inner.durationNs,
              outer.startNs + outer.durationNs);
    EXPECT_LT(inner.seq, outer.seq);
}

TEST(TraceSpan, DisabledModeRecordsNothing)
{
    telemetry::Tracer::instance().setEnabled(false);
    {
        telemetry::TraceSpan span("test.disabled_span");
    }
    telemetry::Tracer::instance().setEnabled(true);
    const auto matching = drainByName("test.disabled_span");
    telemetry::Tracer::instance().setEnabled(false);
    EXPECT_TRUE(matching.empty());
}

TEST(Tracer, RingOverflowDropsOldestAndCounts)
{
    ScopedTracing tracing;
    telemetry::Tracer &tracer = telemetry::Tracer::instance();
    const std::size_t capacity = tracer.threadBufferCapacity();
    const std::size_t extra = 10;
    for (std::size_t i = 0; i < capacity + extra; ++i)
        tracer.record("test.overflow", "qpulse", /*start_ns=*/i,
                      /*duration_ns=*/1);
    EXPECT_EQ(tracer.dropped(), extra);
    const std::vector<telemetry::TraceEvent> events = tracer.drain();
    ASSERT_EQ(events.size(), capacity);
    // The ring keeps the newest events: the `extra` oldest are gone.
    EXPECT_EQ(events.front().startNs, extra);
    EXPECT_EQ(events.back().startNs, capacity + extra - 1);
    EXPECT_EQ(tracer.dropped(), 0u); // drain() resets the loss count.
}

TEST(Tracer, ChromeExporterGoldenOutput)
{
    std::vector<telemetry::TraceEvent> events(2);
    events[0].name = "alpha";
    events[0].startNs = 1000;
    events[0].durationNs = 500;
    events[0].seq = 0;
    events[1].name = "beta";
    events[1].startNs = 2500;
    events[1].durationNs = 1250;
    events[1].seq = 1;

    std::ostringstream os;
    telemetry::Tracer::writeChromeTrace(os, events);
    const std::string golden =
        "{\"traceEvents\":[\n"
        "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"main\"}},\n"
        "{\"name\":\"alpha\",\"cat\":\"qpulse\",\"ph\":\"X\","
        "\"ts\":1.000,\"dur\":0.500,\"pid\":1,\"tid\":0},\n"
        "{\"name\":\"beta\",\"cat\":\"qpulse\",\"ph\":\"X\","
        "\"ts\":2.500,\"dur\":1.250,\"pid\":1,\"tid\":0}\n"
        "],\"displayTimeUnit\":\"ns\"}\n";
    EXPECT_EQ(os.str(), golden);
}

TEST(Tracer, JsonlExporterGoldenOutput)
{
    std::vector<telemetry::TraceEvent> events(1);
    events[0].name = "gamma";
    events[0].startNs = 42;
    events[0].durationNs = 7;
    events[0].tid = 5;

    std::ostringstream os;
    telemetry::Tracer::writeJsonl(os, events);
    EXPECT_EQ(os.str(),
              "{\"name\":\"gamma\",\"cat\":\"qpulse\","
              "\"ts_ns\":42,\"dur_ns\":7,\"tid\":5}\n");
}

TEST(Tracer, ConcurrentSpansFromManyThreadsAllMerge)
{
    ScopedTracing tracing;
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            telemetry::setCurrentThreadInfo(
                static_cast<std::uint32_t>(100 + t),
                "stress-" + std::to_string(t));
            for (int k = 0; k < kSpansPerThread; ++k)
                telemetry::TraceSpan span("test.concurrent");
        });
    for (std::thread &thread : threads)
        thread.join();

    const auto events = drainByName("test.concurrent");
    EXPECT_EQ(events.size(),
              static_cast<std::size_t>(kThreads * kSpansPerThread));
    std::set<std::uint32_t> tids;
    for (const telemetry::TraceEvent &event : events)
        tids.insert(event.tid);
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
    // The merged stream is sorted and seqs are unique.
    for (std::size_t k = 1; k < events.size(); ++k) {
        EXPECT_LE(events[k - 1].startNs, events[k].startNs);
        EXPECT_NE(events[k - 1].seq, events[k].seq);
    }
}

TEST(Histogram, PercentilesInterpolateExactlyOnUniformFill)
{
    std::vector<double> bounds;
    for (int k = 1; k <= 100; ++k)
        bounds.push_back(static_cast<double>(k));
    telemetry::Histogram histogram(bounds);
    for (int k = 1; k <= 100; ++k)
        histogram.observe(static_cast<double>(k));

    const telemetry::Histogram::Snapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count, 100u);
    EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 50.5);
    // Value k fills exactly the (k-1, k] bucket, so the interpolated
    // quantile is exact: p50 = 50, p95 = 95, p99 = 99.
    EXPECT_DOUBLE_EQ(snap.p50(), 50.0);
    EXPECT_DOUBLE_EQ(snap.p95(), 95.0);
    EXPECT_DOUBLE_EQ(snap.p99(), 99.0);
}

TEST(Histogram, BucketSelectionAndOverflowClamp)
{
    telemetry::Histogram histogram({10.0, 20.0});
    histogram.observe(5.0);  // [0, 10]
    histogram.observe(15.0); // (10, 20]
    histogram.observe(25.0); // overflow

    const telemetry::Histogram::Snapshot snap = histogram.snapshot();
    ASSERT_EQ(snap.buckets.size(), 3u);
    EXPECT_EQ(snap.buckets[0], 1u);
    EXPECT_EQ(snap.buckets[1], 1u);
    EXPECT_EQ(snap.buckets[2], 1u);
    EXPECT_DOUBLE_EQ(snap.percentile(0.5), 15.0);
    // The overflow bucket has no finite upper edge; quantiles landing
    // there clamp to its lower bound.
    EXPECT_DOUBLE_EQ(snap.p99(), 20.0);
    EXPECT_DOUBLE_EQ(snap.percentile(0.0), 0.0);
}

TEST(Histogram, EmptySnapshotIsAllZero)
{
    telemetry::Histogram histogram({1.0});
    const telemetry::Histogram::Snapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
    EXPECT_DOUBLE_EQ(snap.p50(), 0.0);
}

TEST(MetricsRegistry, ResetZeroesInPlaceAndKeepsHandlesValid)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    telemetry::Counter &counter =
        registry.counter("test.registry.reset");
    telemetry::Gauge &gauge = registry.gauge("test.registry.gauge");
    counter.add(5);
    gauge.set(2.5);
    registry.reset();
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
    // The handle cached before reset() still feeds the same metric.
    counter.add(2);
    EXPECT_EQ(
        registry.snapshot().counterValue("test.registry.reset"), 2u);
}

TEST(Report, JsonCarriesCountersAndHistograms)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    registry.counter("test.report.alpha").add(3);
    registry.histogram("test.report.lat").observe(4.0);

    const telemetry::Report report = telemetry::Report::capture();
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"test.report.alpha\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"test.report.lat\""), std::string::npos);
    EXPECT_NE(json.find("\"trace_events_dropped\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(report.toText().find("test.report.alpha = 3"),
              std::string::npos);
}

TEST(ThreadPool, WorkerIdsAreStableAndNamed)
{
    EXPECT_EQ(ThreadPool::currentWorkerId(), 0u);
    EXPECT_EQ(ThreadPool::currentWorkerName(), "main");

    ThreadPool pool(4);
    std::vector<std::size_t> ids(256, 0);
    std::vector<int> name_ok(256, 0);
    pool.parallelFor(ids.size(), [&](std::size_t i) {
        const std::size_t id = ThreadPool::currentWorkerId();
        ids[i] = id;
        const std::string expected =
            id == 0 ? "main" : "worker-" + std::to_string(id);
        name_ok[i] = ThreadPool::currentWorkerName() == expected;
    });
    for (std::size_t i = 0; i < ids.size(); ++i) {
        EXPECT_LT(ids[i], 4u);
        EXPECT_TRUE(name_ok[i]);
    }
}

TEST(Instrumentation, ValidationGateCountsChecksAndRejects)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    const auto waveform = std::make_shared<GaussianSquareWaveform>(
        320, 64.0, 128, Complex{0.1, 0.0});
    ChannelBudget budget;
    budget.driveChannels = 1;

    Schedule good("good");
    good.play(driveChannel(0), waveform);
    Schedule bad("bad");
    bad.play(driveChannel(3), waveform);

    const telemetry::MetricsSnapshot before = registry.snapshot();
    EXPECT_TRUE(validateSchedule(good, budget).ok());
    EXPECT_FALSE(validateSchedule(bad, budget).ok());
    const telemetry::MetricsSnapshot after = registry.snapshot();
    EXPECT_EQ(after.counterValue("device.validation.calls") -
                  before.counterValue("device.validation.calls"),
              2u);
    EXPECT_EQ(after.counterValue("device.validation.rejects") -
                  before.counterValue("device.validation.rejects"),
              1u);
}

TEST(Instrumentation, CacheSnapshotAndResetIsAtomicReadAndClear)
{
    PropagatorCache cache(8);
    PropagatorKey key;
    key.words = {1, 2, 3};
    const auto compute = [] { return Matrix::identity(2); };
    cache.getOrCompute(key, compute); // miss
    cache.getOrCompute(key, compute); // hit

    const PropagatorCacheStats taken = cache.snapshotAndReset();
    EXPECT_EQ(taken.hits, 1u);
    EXPECT_EQ(taken.misses, 1u);
    const PropagatorCacheStats remaining = cache.stats();
    EXPECT_EQ(remaining.hits, 0u);
    EXPECT_EQ(remaining.misses, 0u);
    EXPECT_EQ(cache.size(), 1u); // Entries survive a stats reset.
}

/**
 * The determinism contract: every counter incremented by the
 * instrumented stack counts work, not scheduling, so the deltas of a
 * fixed workload are bit-identical whatever the shot-loop thread
 * count is.
 */
TEST(Instrumentation, CountersAreIdenticalAcrossShotThreadCounts)
{
    const BackendConfig config = almadenLineConfig(1);
    const auto backend = makeCalibratedBackend(config);
    Calibrator calibrator(config);
    const PulseSimulator sim(calibrator.qubitModel(0));
    Schedule x180("x180");
    x180.play(driveChannel(0),
              calibrator.calibrateQubit(0).x180Pulse());

    const std::vector<std::string> tracked = {
        "backend.runs",
        "backend.shots",
        "backend.shot_batches",
        "device.validation.calls",
        "pulsesim.cache.hits",
        "pulsesim.cache.misses",
        "sim.evolve_state.calls",
        "sim.samples",
        "threadpool.parallel_for.calls",
        "threadpool.parallel_for.iterations",
    };
    const auto deltasFor = [&](std::size_t max_threads) {
        telemetry::MetricsRegistry &registry =
            telemetry::MetricsRegistry::global();
        const telemetry::MetricsSnapshot before = registry.snapshot();
        PulseShotOptions opts;
        opts.shots = 96;
        opts.seed = 11;
        opts.maxThreads = max_threads;
        backend->runShots(sim, x180, opts);
        const telemetry::MetricsSnapshot after = registry.snapshot();
        std::vector<std::uint64_t> deltas;
        for (const std::string &name : tracked)
            deltas.push_back(after.counterValue(name) -
                             before.counterValue(name));
        return deltas;
    };

    const std::vector<std::uint64_t> sequential = deltasFor(1);
    const std::vector<std::uint64_t> threaded = deltasFor(8);
    for (std::size_t k = 0; k < tracked.size(); ++k)
        EXPECT_EQ(sequential[k], threaded[k]) << tracked[k];
}

} // namespace
