/**
 * @file
 * Correctness tests for the propagator-cache hot path: the memoized
 * evolution (run-length collapse + quantized-key LRU cache) must agree
 * with the exact per-sample path to 1e-12 on schedules that exercise
 * frame changes, coupled CR tones and Lindblad decoherence; the LRU
 * must stay correct under eviction pressure; and the threaded shot
 * loop must be deterministic for a fixed seed regardless of thread
 * count or caching.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>

#include "common/constants.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "compile/compiler.h"
#include "pulsesim/simulator.h"
#include "telemetry/metrics.h"

namespace qpulse {
namespace {

TransmonParams
testQubit()
{
    TransmonParams params;
    params.frequencyGhz = 5.0;
    params.anharmonicityGhz = -0.33;
    params.driveStrengthGhz = 0.25;
    return params;
}

/** The Gaussian amplitude rotating the test qubit by pi in 160 dt. */
constexpr double kPiAmp = 0.0941;

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    double max_diff = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            max_diff = std::max(max_diff, std::abs(a(r, c) - b(r, c)));
    return max_diff;
}

double
maxAbsDiff(const Vector &a, const Vector &b)
{
    double max_diff = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k)
        max_diff = std::max(max_diff, std::abs(a[k] - b[k]));
    return max_diff;
}

/** Coupled 5.0/5.1 GHz pair with the CR control channel mapped. */
PulseSimulator
crPairSimulator(double t1_us = 0.0, double t2_us = 0.0)
{
    TransmonParams control = testQubit();
    TransmonParams target = testQubit();
    target.frequencyGhz = 5.1;
    if (t1_us > 0.0) {
        control.t1Us = target.t1Us = t1_us;
        control.t2Us = target.t2Us = t2_us;
    }
    PulseSimulator sim(TransmonModel::pair(
        control, target, CouplingParams{0, 1, 0.0035}, 3));
    sim.setControlChannel(
        0, ControlChannelSpec{0, 2.0 * kPi * (5.0 - 5.1)});
    return sim;
}

/**
 * An echoed-CR schedule: flat-top CR tone, pi on the control with a
 * virtual-Z frame change, negated CR tone — the shape that exercises
 * run-length collapse (flat-tops), frame tracking and the coupled
 * time-dependent key all at once.
 */
Schedule
crEchoSchedule()
{
    Schedule schedule("cr-echo");
    schedule.play(controlChannel(0),
                  std::make_shared<GaussianSquareWaveform>(
                      600, 15.0, 60, Complex{0.14, 0.0}));
    schedule.shiftPhase(driveChannel(0), kPi / 3.0);
    schedule.play(driveChannel(0),
                  std::make_shared<GaussianWaveform>(
                      160, 40.0, Complex{kPiAmp, 0.0}));
    schedule.shiftPhase(controlChannel(0), kPi);
    schedule.play(controlChannel(0),
                  std::make_shared<GaussianSquareWaveform>(
                      600, 15.0, 60, Complex{0.14, 0.0}));
    return schedule;
}

TEST(PulseSimCache, UnitaryMatchesUncachedOnCrEcho)
{
    const PulseSimulator cached = crPairSimulator();
    PulseSimulator exact = crPairSimulator();
    exact.setCachingEnabled(false);
    const Schedule schedule = crEchoSchedule();

    const UnitaryResult a = cached.evolveUnitary(schedule);
    const UnitaryResult b = exact.evolveUnitary(schedule);
    EXPECT_LE(maxAbsDiff(a.unitary, b.unitary), 1e-12);
    EXPECT_EQ(a.duration, b.duration);
    ASSERT_EQ(a.framePhase.size(), b.framePhase.size());
    for (std::size_t q = 0; q < a.framePhase.size(); ++q)
        EXPECT_NEAR(a.framePhase[q], b.framePhase[q], 1e-12);
}

TEST(PulseSimCache, StateMatchesUncachedOnCrEcho)
{
    const PulseSimulator cached = crPairSimulator();
    PulseSimulator exact = crPairSimulator();
    exact.setCachingEnabled(false);
    const Schedule schedule = crEchoSchedule();

    Vector ground(9);
    ground[0] = Complex{1.0, 0.0};
    EXPECT_LE(maxAbsDiff(cached.evolveState(schedule, ground),
                         exact.evolveState(schedule, ground)),
              1e-12);
}

TEST(PulseSimCache, LindbladMatchesUncachedOnCrEcho)
{
    const PulseSimulator cached = crPairSimulator(50.0, 70.0);
    PulseSimulator exact = crPairSimulator(50.0, 70.0);
    exact.setCachingEnabled(false);
    const Schedule schedule = crEchoSchedule();

    Matrix rho0(9, 9);
    rho0(0, 0) = Complex{1.0, 0.0};
    EXPECT_LE(maxAbsDiff(cached.evolveLindblad(schedule, rho0),
                         exact.evolveLindblad(schedule, rho0)),
              1e-12);
}

TEST(PulseSimCache, FlatTopCollapsesToFewUniquePropagators)
{
    // A constant pulse is one run: the per-call cache sees exactly one
    // unique single-sample Hamiltonian.
    PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    auto cache = std::make_shared<PropagatorCache>();
    sim.setPropagatorCache(cache);

    Schedule schedule("const");
    schedule.play(driveChannel(0), std::make_shared<ConstantWaveform>(
                                       200, Complex{0.05, 0.0}));
    (void)sim.evolveUnitary(schedule);
    EXPECT_EQ(cache->stats().misses, 1u);
}

TEST(PulseSimCache, CrossCallCacheHitsOnRepeatedSchedule)
{
    PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    auto cache = std::make_shared<PropagatorCache>();
    sim.setPropagatorCache(cache);

    Schedule schedule("x");
    schedule.play(driveChannel(0), std::make_shared<GaussianWaveform>(
                                       160, 40.0, Complex{kPiAmp, 0.0}));
    const UnitaryResult first = sim.evolveUnitary(schedule);
    const PropagatorCacheStats after_first = cache->stats();
    EXPECT_GT(after_first.misses, 0u);

    const UnitaryResult second = sim.evolveUnitary(schedule);
    const PropagatorCacheStats after_second = cache->stats();
    // Every propagator of the second pass is served from the cache.
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_GT(after_second.hits, after_first.hits);
    EXPECT_LE(maxAbsDiff(first.unitary, second.unitary), 0.0);
}

TEST(PulseSimCache, TinyCapacityEvictsButStaysCorrect)
{
    // Capacity 2 forces constant LRU churn on a 160-sample Gaussian
    // (~80 unique keys); the result must not change.
    PulseSimulator sim(TransmonModel::single(testQubit(), 3));
    PulseSimulator exact(TransmonModel::single(testQubit(), 3));
    exact.setCachingEnabled(false);
    auto tiny = std::make_shared<PropagatorCache>(2);
    sim.setPropagatorCache(tiny);

    Schedule schedule("x");
    schedule.play(driveChannel(0), std::make_shared<GaussianWaveform>(
                                       160, 40.0, Complex{kPiAmp, 0.0}));
    const Matrix a = sim.evolveUnitary(schedule).unitary;
    const Matrix b = exact.evolveUnitary(schedule).unitary;
    EXPECT_LE(maxAbsDiff(a, b), 1e-12);
    EXPECT_LE(tiny->size(), 2u);
    EXPECT_GT(tiny->stats().evictions, 0u);
}

TEST(PulseSimCache, DriftKernelMatchesLegacyUncachedPath)
{
    // The drift-frame kernel (prediagonalized H0, warm-started Jacobi,
    // in-place SIMD products) must agree with the pre-overhaul cold
    // per-sample path to 1e-12 on the full CR-echo schedule, for all
    // three evolution flavours.
    PulseSimulator fast = crPairSimulator(50.0, 70.0);
    PulseSimulator legacy = crPairSimulator(50.0, 70.0);
    fast.setCachingEnabled(false);
    legacy.setCachingEnabled(false);
    legacy.setDriftKernelEnabled(false);
    const Schedule schedule = crEchoSchedule();

    const UnitaryResult a = fast.evolveUnitary(schedule);
    const UnitaryResult b = legacy.evolveUnitary(schedule);
    EXPECT_LE(maxAbsDiff(a.unitary, b.unitary), 1e-12);

    Vector ground(9);
    ground[0] = Complex{1.0, 0.0};
    EXPECT_LE(maxAbsDiff(fast.evolveState(schedule, ground),
                         legacy.evolveState(schedule, ground)),
              1e-12);

    Matrix rho0(9, 9);
    rho0(0, 0) = Complex{1.0, 0.0};
    EXPECT_LE(maxAbsDiff(fast.evolveLindblad(schedule, rho0),
                         legacy.evolveLindblad(schedule, rho0)),
              1e-12);
}

TEST(PulseSimCache, DriftKernelWarmStartCutsJacobiSweeps)
{
    auto &reg = telemetry::MetricsRegistry::global();
    telemetry::Counter &warm_calls = reg.counter("sim.eig.warm.calls");
    telemetry::Counter &warm_sweeps =
        reg.counter("sim.eig.warm.sweeps");

    PulseSimulator sim = crPairSimulator();
    sim.setCachingEnabled(false);
    const std::uint64_t calls0 = warm_calls.value();
    const std::uint64_t sweeps0 = warm_sweeps.value();
    (void)sim.evolveUnitary(crEchoSchedule());

    const std::uint64_t calls = warm_calls.value() - calls0;
    const std::uint64_t sweeps = warm_sweeps.value() - sweeps0;
    ASSERT_GT(calls, 0u);
    // Adjacent AWG samples differ by O(dt): warm solves average well
    // under the cold sweep count (~7 for these 9x9 H's) even though
    // they converge to the round-off floor rather than the cold
    // tolerance (see eigHermitianInPlace).
    EXPECT_LT(static_cast<double>(sweeps) / static_cast<double>(calls),
              4.5);
}

TEST(PulseSimCache, BasisVersionKeysPreventStaleHitsAfterRecalibration)
{
    // Two simulators sharing one cache but prediagonalized over
    // different model parameters (a recalibration) must never exchange
    // propagators: their keys differ in the basis-version word.
    auto cache = std::make_shared<PropagatorCache>();
    PulseSimulator before(TransmonModel::single(testQubit(), 3));
    TransmonParams recal = testQubit();
    recal.driveStrengthGhz = 0.26; // Calibration drifted.
    PulseSimulator after(TransmonModel::single(recal, 3));
    EXPECT_NE(before.basisVersion(), after.basisVersion());
    before.setPropagatorCache(cache);
    after.setPropagatorCache(cache);

    Schedule schedule("x");
    schedule.play(driveChannel(0), std::make_shared<GaussianWaveform>(
                                       160, 40.0, Complex{kPiAmp, 0.0}));
    const Matrix u_before = before.evolveUnitary(schedule).unitary;
    const std::uint64_t before_misses = cache->stats().misses;
    const Matrix u_after = after.evolveUnitary(schedule).unitary;
    // The recalibrated simulator found none of the first one's entries:
    // it misses exactly as often as the first run did on the same
    // schedule. (Hits within its own run are fine — the Gaussian is
    // time-symmetric, so mirrored samples share a key.)
    const std::uint64_t after_misses =
        cache->stats().misses - before_misses;
    EXPECT_EQ(after_misses, before_misses);
    EXPECT_GT(maxAbsDiff(u_before, u_after), 1e-6);

    // Identical models produce identical versions, so the sharing
    // still works where it is sound: the third run misses nothing.
    PulseSimulator same(TransmonModel::single(testQubit(), 3));
    EXPECT_EQ(same.basisVersion(), before.basisVersion());
    same.setPropagatorCache(cache);
    const Matrix u_same = same.evolveUnitary(schedule).unitary;
    EXPECT_EQ(cache->stats().misses, before_misses + after_misses);
    EXPECT_LE(maxAbsDiff(u_same, u_before), 0.0);
}

TEST(PulseSimCache, RunShotsDeterministicAcrossThreadsAndCaching)
{
    const BackendConfig config = almadenLineConfig(1);
    const auto backend = makeCalibratedBackend(config);
    Calibrator calibrator(config);
    const QubitCalibration cal = calibrator.calibrateQubit(0);
    const PulseSimulator sim(calibrator.qubitModel(0));

    Schedule schedule("x180");
    schedule.play(driveChannel(0), cal.x180Pulse());

    PulseShotOptions opts;
    opts.shots = 96;
    opts.seed = 0xFEED;
    opts.useCache = true;
    opts.maxThreads = 1;
    const PulseShotResult sequential =
        backend->runShots(sim, schedule, opts);

    opts.maxThreads = 4;
    const PulseShotResult threaded =
        backend->runShots(sim, schedule, opts);

    opts.useCache = false;
    opts.maxThreads = 4;
    const PulseShotResult uncached =
        backend->runShots(sim, schedule, opts);

    long total = 0;
    for (const long count : sequential.counts)
        total += count;
    EXPECT_EQ(total, opts.shots);
    EXPECT_EQ(sequential.counts, threaded.counts);
    EXPECT_EQ(sequential.counts, uncached.counts);
    EXPECT_GT(threaded.cacheStats.hits, 0u);
    EXPECT_EQ(uncached.cacheStats.hits + uncached.cacheStats.misses,
              0u);

    // A different seed must give a different (but still complete) draw.
    opts.useCache = true;
    opts.seed = 0xBEEF;
    const PulseShotResult reseeded =
        backend->runShots(sim, schedule, opts);
    total = 0;
    for (const long count : reseeded.counts)
        total += count;
    EXPECT_EQ(total, opts.shots);
}

TEST(PulseSimCache, ParallelForCoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> visits(257);
    for (auto &visit : visits)
        visit.store(0);
    parallelFor(visits.size(), [&](std::size_t k) {
        visits[k].fetch_add(1);
    });
    for (const auto &visit : visits)
        EXPECT_EQ(visit.load(), 1);
}

TEST(PulseSimCache, DeriveSeedSeparatesStreams)
{
    // Derived per-shot seeds must differ from each other and from the
    // base seed (splitmix64 scrambling).
    const std::uint64_t base = 42;
    EXPECT_NE(Rng::deriveSeed(base, 0), base);
    EXPECT_NE(Rng::deriveSeed(base, 0), Rng::deriveSeed(base, 1));
    EXPECT_NE(Rng::deriveSeed(base, 1), Rng::deriveSeed(base + 1, 1));
    // And must be reproducible.
    EXPECT_EQ(Rng::deriveSeed(base, 7), Rng::deriveSeed(base, 7));
}

} // namespace
} // namespace qpulse
