/**
 * @file
 * Tests for the evaluation metrics: Hellinger distance/fidelity (the
 * paper's headline metric, Section 8.1), Bloch vectors and sampled
 * state tomography.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "linalg/gates.h"
#include "metrics/metrics.h"

namespace qpulse {
namespace {

TEST(Hellinger, IdenticalDistributions)
{
    const std::vector<double> p = {0.25, 0.25, 0.5};
    EXPECT_NEAR(hellingerDistance(p, p), 0.0, 1e-12);
    EXPECT_NEAR(hellingerFidelity(p, p), 1.0, 1e-12);
}

TEST(Hellinger, DisjointDistributions)
{
    const std::vector<double> p = {1.0, 0.0};
    const std::vector<double> q = {0.0, 1.0};
    EXPECT_NEAR(hellingerDistance(p, q), 1.0, 1e-12);
    EXPECT_NEAR(hellingerFidelity(p, q), 0.0, 1e-12);
}

TEST(Hellinger, KnownValue)
{
    // H^2 = 1 - sum sqrt(p q) = 1 - sqrt(0.5).
    const std::vector<double> p = {1.0, 0.0};
    const std::vector<double> q = {0.5, 0.5};
    EXPECT_NEAR(hellingerDistance(p, q),
                std::sqrt(1.0 - std::sqrt(0.5)), 1e-12);
}

TEST(Hellinger, SymmetricAndBounded)
{
    const std::vector<double> p = {0.7, 0.2, 0.1};
    const std::vector<double> q = {0.3, 0.3, 0.4};
    EXPECT_NEAR(hellingerDistance(p, q), hellingerDistance(q, p), 1e-12);
    EXPECT_GT(hellingerDistance(p, q), 0.0);
    EXPECT_LT(hellingerDistance(p, q), 1.0);
    EXPECT_THROW(hellingerDistance(p, {0.5, 0.5}), FatalError);
}

TEST(TotalVariation, KnownValue)
{
    EXPECT_NEAR(totalVariationDistance({1.0, 0.0}, {0.5, 0.5}), 0.5,
                1e-12);
}

TEST(Counts, Normalisation)
{
    const auto probs = countsToProbabilities({30, 70});
    EXPECT_NEAR(probs[0], 0.3, 1e-12);
    EXPECT_NEAR(probs[1], 0.7, 1e-12);
    EXPECT_THROW(countsToProbabilities({0, 0}), FatalError);
}

TEST(Bloch, BasisStates)
{
    Vector zero{Complex{1, 0}, Complex{0, 0}};
    const BlochVector bz = blochFromState(zero);
    EXPECT_NEAR(bz.z, 1.0, 1e-12);
    EXPECT_NEAR(bz.x, 0.0, 1e-12);

    Vector plus{Complex{1 / std::sqrt(2.0), 0},
                Complex{1 / std::sqrt(2.0), 0}};
    const BlochVector bp = blochFromState(plus);
    EXPECT_NEAR(bp.x, 1.0, 1e-12);
    EXPECT_NEAR(bp.z, 0.0, 1e-12);

    Vector plus_i{Complex{1 / std::sqrt(2.0), 0},
                  Complex{0, 1 / std::sqrt(2.0)}};
    const BlochVector by = blochFromState(plus_i);
    EXPECT_NEAR(by.y, 1.0, 1e-12);
}

TEST(Bloch, RotationTrajectory)
{
    // Rx(theta)|0> has y = -sin(theta), z = cos(theta) (the Figure 5
    // trajectory).
    for (double theta : {0.3, 1.0, 2.4}) {
        const Vector state = gates::rx(theta).apply(
            Vector{Complex{1, 0}, Complex{0, 0}});
        const BlochVector b = blochFromState(state);
        EXPECT_NEAR(b.z, std::cos(theta), 1e-12);
        EXPECT_NEAR(b.y, -std::sin(theta), 1e-12);
        EXPECT_NEAR(b.x, 0.0, 1e-12);
        EXPECT_NEAR(b.norm(), 1.0, 1e-12);
    }
}

TEST(Bloch, FromDensityMatchesPureState)
{
    const Vector state = gates::u3(0.8, 0.3, -0.5).apply(
        Vector{Complex{1, 0}, Complex{0, 0}});
    Matrix rho(2, 2);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            rho(r, c) = state[r] * std::conj(state[c]);
    const BlochVector from_state = blochFromState(state);
    const BlochVector from_rho = blochFromDensity(rho);
    EXPECT_NEAR(from_state.x, from_rho.x, 1e-12);
    EXPECT_NEAR(from_state.y, from_rho.y, 1e-12);
    EXPECT_NEAR(from_state.z, from_rho.z, 1e-12);
}

TEST(Tomography, ConvergesWithShots)
{
    // Shot-sampled tomography approaches the exact Bloch vector as
    // 1/sqrt(shots) (the Figure 7 procedure).
    const Vector state = gates::rx(1.1).apply(
        Vector{Complex{1, 0}, Complex{0, 0}});
    const BlochVector exact = blochFromState(state);
    Rng rng(23);
    const BlochVector coarse = sampledTomography(state, 100, rng);
    const BlochVector fine = sampledTomography(state, 100000, rng);
    const double err_fine = std::abs(fine.y - exact.y) +
                            std::abs(fine.z - exact.z);
    EXPECT_LT(err_fine, 0.02);
    // Statistical scaling (loose bound).
    (void)coarse;
}

TEST(Tomography, UnbiasedOverRepeats)
{
    const Vector state = gates::rx(0.7).apply(
        Vector{Complex{1, 0}, Complex{0, 0}});
    const BlochVector exact = blochFromState(state);
    Rng rng(29);
    double mean_z = 0.0;
    const int repeats = 200;
    for (int k = 0; k < repeats; ++k)
        mean_z += sampledTomography(state, 1000, rng).z;
    mean_z /= repeats;
    EXPECT_NEAR(mean_z, exact.z, 0.01);
}

TEST(BlochFidelity, PerfectAndOrthogonal)
{
    const BlochVector up{0, 0, 1};
    const BlochVector down{0, 0, -1};
    EXPECT_NEAR(blochStateFidelity(up, up), 1.0, 1e-12);
    EXPECT_NEAR(blochStateFidelity(up, down), 0.0, 1e-12);
    const BlochVector x_axis{1, 0, 0};
    EXPECT_NEAR(blochStateFidelity(up, x_axis), 0.5, 1e-12);
}

} // namespace
} // namespace qpulse
