/**
 * @file
 * Tests for the near-term algorithm library: Hamiltonian structure,
 * Trotter circuit correctness against exact matrix exponentials, the
 * UCC ansatz, QAOA-MAXCUT training, and the far-term kernels.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "algos/circuits.h"
#include "algos/hamiltonians.h"
#include "algos/vqe.h"
#include "common/constants.h"
#include "linalg/eigen.h"
#include "linalg/gates.h"
#include "noisesim/statevector.h"

namespace qpulse {
namespace {

TEST(Hamiltonians, MoleculesAreTwoQubitHermitian)
{
    for (const PauliOperator &h :
         {h2Hamiltonian(), lihHamiltonian(), methaneHamiltonian(),
          waterHamiltonian()}) {
        EXPECT_EQ(h.numQubits(), 2u);
        EXPECT_TRUE(h.toMatrix().isHermitian(1e-12));
        EXPECT_GE(h.terms().size(), 4u);
    }
}

TEST(Hamiltonians, H2GroundStateBelowHartreeFock)
{
    // The correlated ground state must undercut the |01> mean-field
    // reference energy.
    const PauliOperator h = h2Hamiltonian();
    Vector reference(4);
    reference[1] = Complex{1, 0}; // |01>.
    const double mean_field = h.expectation(reference);
    EXPECT_LT(h.groundStateEnergy(), mean_field - 1e-3);
}

TEST(Hamiltonians, ZzTermsPresent)
{
    // The benchmarks are ZZ-dominated (Section 8.1): every molecule
    // carries a ZZ term.
    for (const PauliOperator &h :
         {h2Hamiltonian(), lihHamiltonian(), methaneHamiltonian(),
          waterHamiltonian()}) {
        bool has_zz = false;
        for (const auto &term : h.terms())
            if (term.string.toString() == "ZZ")
                has_zz = true;
        EXPECT_TRUE(has_zz);
    }
}

TEST(Hamiltonians, MaxcutLineStructure)
{
    const PauliOperator cost = maxcutLineHamiltonian(4);
    // <C> on the alternating cut |0101> is 3 (all edges cut).
    Vector alternating(16);
    alternating[0b0101] = Complex{1, 0};
    EXPECT_NEAR(cost.expectation(alternating), 3.0, 1e-12);
    // All-zeros cuts nothing.
    Vector zeros(16);
    zeros[0] = Complex{1, 0};
    EXPECT_NEAR(cost.expectation(zeros), 0.0, 1e-12);
}

TEST(Hamiltonians, MaxcutLineValueMatchesOperator)
{
    const std::size_t n = 4;
    const PauliOperator cost = maxcutLineHamiltonian(n);
    for (std::size_t bits = 0; bits < 16; ++bits) {
        Vector state(16);
        state[bits] = Complex{1, 0};
        EXPECT_NEAR(cost.expectation(state),
                    static_cast<double>(maxcutLineValue(n, bits)),
                    1e-12)
            << bits;
    }
}

TEST(Trotter, SingleStepMatchesExponentialForCommutingTerms)
{
    // All-diagonal Hamiltonian: Trotter is exact.
    PauliOperator h(2);
    h.addTerm(0.4, "ZZ");
    h.addTerm(0.2, "ZI");
    const double t = 0.9;
    const QuantumCircuit circuit = trotterCircuit(h, t, 1);
    const Matrix exact = expMinusIHt(h.toMatrix(), t);
    EXPECT_GT(unitaryOverlap(circuit.unitary(), exact), 1 - 1e-9);
}

TEST(Trotter, ConvergesWithStepCount)
{
    const PauliOperator h = h2Hamiltonian();
    const double t = 1.0;
    const Matrix exact = expMinusIHt(h.toMatrix(), t);
    const double err1 =
        1.0 - unitaryOverlap(trotterCircuit(h, t, 1).unitary(), exact);
    const double err6 =
        1.0 - unitaryOverlap(trotterCircuit(h, t, 6).unitary(), exact);
    const double err24 =
        1.0 - unitaryOverlap(trotterCircuit(h, t, 24).unitary(), exact);
    EXPECT_LT(err6, err1);
    EXPECT_LT(err24, err6);
    EXPECT_LT(err24, 1e-3);
}

TEST(Trotter, EmitsTextbookZzSandwiches)
{
    // The Trotter circuits must contain CX.Rz.CX patterns for the
    // compiler to find (Section 6.2).
    const QuantumCircuit circuit =
        trotterCircuit(methaneHamiltonian(), 1.0, 6);
    EXPECT_GE(circuit.countType(GateType::Cnot), 12u);
    EXPECT_GE(circuit.countType(GateType::Rz), 6u);
    EXPECT_EQ(circuit.countType(GateType::Rzz), 0u);
}

TEST(Trotter, BasisChangesForXandYTerms)
{
    PauliOperator h(2);
    h.addTerm(0.5, "XY");
    const QuantumCircuit circuit = trotterCircuit(h, 0.7, 1);
    const Matrix exact = expMinusIHt(h.toMatrix(), 0.7);
    EXPECT_GT(unitaryOverlap(circuit.unitary(), exact), 1 - 1e-9);
    EXPECT_GE(circuit.countType(GateType::H), 2u);
}

TEST(Ucc, AnsatzPreservesParticleNumber)
{
    // The exchange rotation keeps the state in span{|01>, |10>}.
    const QuantumCircuit ansatz = uccAnsatz2q(0.8);
    const Vector state = ansatz.runStatevector();
    EXPECT_NEAR(std::norm(state[0]) + std::norm(state[3]), 0.0, 1e-9);
    EXPECT_NEAR(std::norm(state[1]) + std::norm(state[2]), 1.0, 1e-9);
}

TEST(Ucc, ThetaZeroIsReference)
{
    const Vector state = uccAnsatz2q(0.0).runStatevector();
    EXPECT_NEAR(std::norm(state[1]), 1.0, 1e-9); // |01>.
}

TEST(Ucc, SweepsTheExchangeManifold)
{
    // Some angle rotates fully to |10>.
    double best_10 = 0.0;
    for (double theta = 0.0; theta < 3.5; theta += 0.1) {
        const Vector state = uccAnsatz2q(theta).runStatevector();
        best_10 = std::max(best_10, std::norm(state[2]));
    }
    EXPECT_GT(best_10, 0.98);
}

TEST(Vqe, H2ReachesGroundEnergy)
{
    const PauliOperator h = h2Hamiltonian();
    const VariationalResult result = runVqe2q(h);
    EXPECT_NEAR(result.value, result.reference, 2e-3);
}

TEST(Vqe, LihReachesGroundEnergy)
{
    const PauliOperator h = lihHamiltonian();
    const VariationalResult result = runVqe2q(h);
    // LiH has XZ/ZX terms the 1-parameter ansatz cannot fully absorb;
    // require close-but-variational.
    EXPECT_GE(result.value, result.reference - 1e-9);
    EXPECT_NEAR(result.value, result.reference, 0.02);
}

TEST(Qaoa, CircuitShape)
{
    const QuantumCircuit circuit =
        qaoaLineCircuit(4, {0.4, 0.3}, {0.2, 0.5});
    EXPECT_EQ(circuit.countType(GateType::H), 4u);
    EXPECT_EQ(circuit.countType(GateType::Cnot), 2u * 3u * 2u);
    EXPECT_EQ(circuit.countType(GateType::Rx), 8u);
}

TEST(Qaoa, TrainingBeatsRandomGuess)
{
    const VariationalResult result = runQaoaLine(4, 2);
    // Random bitstrings on the 4-line average 1.5 cut edges; the true
    // maximum is 3. Trained p=2 QAOA should clear 2.4.
    EXPECT_GT(result.value, 2.4);
    EXPECT_LE(result.value, result.reference + 1e-9);
}

TEST(Qaoa, ExpectedCutMatchesOperator)
{
    const std::size_t n = 5;
    const QuantumCircuit circuit =
        qaoaLineCircuit(n, {0.35}, {0.45});
    const auto probs = idealDistribution(circuit);
    const double via_counts = expectedCutValue(n, probs);
    const double via_operator =
        maxcutLineHamiltonian(n).expectation(circuit.runStatevector());
    EXPECT_NEAR(via_counts, via_operator, 1e-9);
}

TEST(Qft, TransformsBasisStateToUniformPhases)
{
    const QuantumCircuit circuit = qftCircuit(3);
    const Matrix u = circuit.unitary();
    // QFT of |0> is the uniform superposition.
    Vector zero(8);
    zero[0] = Complex{1, 0};
    const Vector out = u.apply(zero);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_NEAR(std::norm(out[i]), 1.0 / 8.0, 1e-9);
    // Unitarity.
    EXPECT_TRUE(u.isUnitary(1e-9));
}

TEST(Qft, MatchesDftMatrix)
{
    const std::size_t n = 2;
    const QuantumCircuit circuit = qftCircuit(n);
    const Matrix u = circuit.unitary();
    const std::size_t dim = 4;
    Matrix dft(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            dft(r, c) = std::exp(Complex{
                            0.0, 2.0 * kPi *
                                     static_cast<double>(r * c) / dim}) /
                        2.0;
    EXPECT_GT(unitaryOverlap(u, dft), 1 - 1e-9);
}

TEST(HiddenShift, RecoversShift)
{
    for (std::size_t shift : {0b0000ul, 0b1010ul, 0b0111ul, 0b1111ul}) {
        const QuantumCircuit circuit = hiddenShiftCircuit(4, shift);
        const auto probs = idealDistribution(circuit);
        EXPECT_NEAR(probs[shift], 1.0, 1e-9) << shift;
    }
}

TEST(HiddenShift, RejectsOddWidth)
{
    EXPECT_THROW(hiddenShiftCircuit(3, 0), FatalError);
}

class AdderTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(AdderTest, TwoBitSums)
{
    const std::size_t a = std::get<0>(GetParam());
    const std::size_t b = std::get<1>(GetParam());
    const std::size_t w = 2;
    const QuantumCircuit circuit = adderCircuit(w, a, b);
    const auto probs = idealDistribution(circuit);
    // Expected basis state: a restored, b = (a+b) mod 4, ancilla 0.
    const std::size_t sum = (a + b) % 4;
    // Wire order: a0 a1 b0 b1 anc, with wire 0 the MSB of the index.
    std::size_t expected = 0;
    auto set_wire = [&](std::size_t wire) {
        expected |= std::size_t{1} << (2 * w + 1 - 1 - wire);
    };
    for (std::size_t bit = 0; bit < w; ++bit) {
        if ((a >> bit) & 1)
            set_wire(bit);
        if ((sum >> bit) & 1)
            set_wire(w + bit);
    }
    EXPECT_NEAR(probs[expected], 1.0, 1e-9)
        << a << " + " << b << " = " << sum;
}

INSTANTIATE_TEST_SUITE_P(AllInputs, AdderTest,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

TEST(Adder, ThreeBitSpotChecks)
{
    for (const auto &[a, b] : std::vector<std::pair<int, int>>{
             {3, 5}, {7, 7}, {0, 6}, {4, 4}}) {
        const QuantumCircuit circuit = adderCircuit(3, a, b);
        const auto probs = idealDistribution(circuit);
        const std::size_t sum = (a + b) % 8;
        std::size_t expected = 0;
        auto set_wire = [&](std::size_t wire) {
            expected |= std::size_t{1} << (7 - 1 - wire + 1);
        };
        (void)set_wire;
        // Recompute with explicit layout (7 wires, wire 0 = MSB).
        expected = 0;
        for (std::size_t bit = 0; bit < 3; ++bit) {
            if ((static_cast<std::size_t>(a) >> bit) & 1)
                expected |= std::size_t{1} << (6 - bit);
            if ((sum >> bit) & 1)
                expected |= std::size_t{1} << (6 - (3 + bit));
        }
        EXPECT_NEAR(probs[expected], 1.0, 1e-9)
            << a << "+" << b << "=" << sum;
    }
}

TEST(BernsteinVazirani, RecoversHiddenString)
{
    for (std::size_t hidden : {0b101ul, 0b011ul, 0b111ul, 0b000ul}) {
        const QuantumCircuit circuit =
            bernsteinVaziraniCircuit(3, hidden);
        const auto probs = idealDistribution(circuit);
        EXPECT_NEAR(probs[hidden], 1.0, 1e-9) << hidden;
    }
}

} // namespace
} // namespace qpulse
