/**
 * @file
 * Tests for the pulse IR: waveform shapes and the paper's three pulse
 * transformations (amplitude scaling, flat-top stretching, sideband
 * modulation), channel identity, schedule composition and rendering.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "pulse/cmd_def.h"
#include "pulse/schedule.h"
#include "pulse/waveform.h"

namespace qpulse {
namespace {

TEST(Waveform, GaussianShape)
{
    GaussianWaveform g(160, 40.0, Complex{0.5, 0.0});
    EXPECT_EQ(g.duration(), 160);
    // Peak at the centre, symmetric.
    EXPECT_NEAR(std::abs(g.sample(79)), std::abs(g.sample(80)), 1e-12);
    EXPECT_GT(std::abs(g.sample(80)), std::abs(g.sample(0)));
    EXPECT_NEAR(g.peakAmplitude(), 0.5, 1e-3);
}

TEST(Waveform, DragAddsImaginaryDerivative)
{
    DragWaveform d(160, 40.0, Complex{0.5, 0.0}, 2.0);
    // At the centre the derivative vanishes: purely real.
    const Complex centre = d.sample(80);
    EXPECT_NEAR(centre.imag(), 0.0, 1e-3);
    // Off-centre the imaginary part is nonzero and antisymmetric.
    const Complex left = d.sample(40);
    const Complex right = d.sample(119);
    EXPECT_GT(std::abs(left.imag()), 1e-4);
    EXPECT_NEAR(left.imag(), -right.imag(), 1e-6);
}

TEST(Waveform, DragBetaZeroIsGaussian)
{
    GaussianWaveform g(160, 40.0, Complex{0.3, 0.0});
    DragWaveform d(160, 40.0, Complex{0.3, 0.0}, 0.0);
    for (long t = 0; t < 160; t += 13)
        EXPECT_NEAR(std::abs(g.sample(t) - d.sample(t)), 0.0, 1e-12);
}

TEST(Waveform, GaussianSquareFlatTop)
{
    GaussianSquareWaveform gs(400, 15.0, 60, Complex{0.2, 0.0});
    EXPECT_EQ(gs.flatTop(), 280);
    // Flat in the middle.
    EXPECT_NEAR(std::abs(gs.sample(200)), 0.2, 1e-12);
    EXPECT_NEAR(std::abs(gs.sample(100)), 0.2, 1e-12);
    // Rising at the edge.
    EXPECT_LT(std::abs(gs.sample(0)), 0.2);
    EXPECT_THROW(GaussianSquareWaveform(50, 5.0, 30, Complex{0.1, 0.0}),
                 FatalError);
}

TEST(Waveform, StretchGaussianSquare)
{
    GaussianSquareWaveform base(400, 15.0, 60, Complex{0.2, 0.0});
    const WaveformPtr doubled = stretchGaussianSquare(base, 2.0);
    EXPECT_EQ(doubled->duration(), 280 * 2 + 120);
    const WaveformPtr halved = stretchGaussianSquare(base, 0.5);
    EXPECT_EQ(halved->duration(), 140 + 120);
    const WaveformPtr zero = stretchGaussianSquare(base, 0.0);
    EXPECT_EQ(zero->duration(), 120); // Edges only.
}

TEST(Waveform, ScaledWaveformHalvesArea)
{
    auto base = std::make_shared<GaussianWaveform>(160, 40.0,
                                                   Complex{0.4, 0.0});
    ScaledWaveform half(base, Complex{0.5, 0.0});
    EXPECT_NEAR(half.absArea(), base->absArea() / 2.0, 1e-9);
    // Negative scaling flips the sign (Rx(-theta) pulses).
    ScaledWaveform neg(base, Complex{-1.0, 0.0});
    EXPECT_NEAR(neg.sample(80).real(), -base->sample(80).real(), 1e-12);
}

TEST(Waveform, ScaledWaveformEnforcesAmplitudeBound)
{
    auto base = std::make_shared<ConstantWaveform>(10, Complex{1.0, 0.0});
    EXPECT_THROW(ScaledWaveform(base, Complex{1.5, 0.0}), FatalError);
}

TEST(Waveform, SidebandModulation)
{
    // A sideband at f shifts the phase by -2 pi f t dt per sample
    // (Equation 1 / Section 7.1).
    auto base = std::make_shared<ConstantWaveform>(100, Complex{0.5, 0.0});
    SidebandWaveform side(base, -0.33);
    EXPECT_NEAR(std::abs(side.sample(50)), 0.5, 1e-12);
    const double expected_phase = 2.0 * kPi * 0.33 * 50 * kDtNs;
    EXPECT_NEAR(std::arg(side.sample(50)),
                std::remainder(expected_phase, 2 * kPi), 1e-9);
}

TEST(Waveform, AreaUnderCurveFigure4)
{
    // Figure 4's logic: the 160 dt DirectX pulse and the two 160 dt
    // half-amplitude X90 pulses have the same total area.
    auto x180 = std::make_shared<GaussianWaveform>(160, 40.0,
                                                   Complex{0.2, 0.0});
    auto x90 = std::make_shared<GaussianWaveform>(160, 40.0,
                                                  Complex{0.1, 0.0});
    EXPECT_NEAR(x180->absArea(), 2.0 * x90->absArea(), 1e-9);
}

TEST(Channel, NamesAndOrdering)
{
    EXPECT_EQ(driveChannel(0).toString(), "d0");
    EXPECT_EQ(controlChannel(3).toString(), "u3");
    EXPECT_EQ(measureChannel(1).toString(), "m1");
    EXPECT_EQ(acquireChannel(2).toString(), "a2");
    EXPECT_TRUE(driveChannel(0) < driveChannel(1));
    EXPECT_TRUE(driveChannel(5) < controlChannel(0));
    EXPECT_TRUE(driveChannel(1) == driveChannel(1));
}

TEST(Schedule, PlayAppendsAtChannelEnd)
{
    Schedule schedule("s");
    auto wf = std::make_shared<ConstantWaveform>(100, Complex{0.1, 0.0});
    schedule.play(driveChannel(0), wf);
    schedule.play(driveChannel(0), wf);
    schedule.play(driveChannel(1), wf);
    EXPECT_EQ(schedule.duration(), 200);
    EXPECT_EQ(schedule.channelEndTime(driveChannel(0)), 200);
    EXPECT_EQ(schedule.channelEndTime(driveChannel(1)), 100);
    EXPECT_EQ(schedule.playCount(), 3u);
}

TEST(Schedule, ShiftPhaseIsZeroDuration)
{
    Schedule schedule("s");
    schedule.shiftPhase(driveChannel(0), 1.2);
    EXPECT_EQ(schedule.duration(), 0);
    schedule.play(driveChannel(0),
                  std::make_shared<ConstantWaveform>(50,
                                                     Complex{0.1, 0.0}));
    schedule.shiftPhase(driveChannel(0), -0.5);
    EXPECT_EQ(schedule.duration(), 50);
    EXPECT_EQ(schedule.instructions().back().startTime, 50);
}

TEST(Schedule, AppendPreservesInternalAlignment)
{
    auto wf100 =
        std::make_shared<ConstantWaveform>(100, Complex{0.1, 0.0});
    auto wf40 = std::make_shared<ConstantWaveform>(40, Complex{0.1, 0.0});

    Schedule first("first");
    first.play(driveChannel(0), wf100);

    // CR-echo-like block: u0 then d0 sequentially (relative offsets
    // must survive the append).
    Schedule block("block");
    block.playAt(0, controlChannel(0), wf40);
    block.playAt(40, driveChannel(0), wf40);

    first.append(block);
    // d0 is busy until 100, so the block shifts to keep alignment:
    // u0 at 60, d0 at 100.
    long u_start = -1, d_second_start = -1;
    for (const auto &inst : first.instructions()) {
        if (inst.channel == controlChannel(0))
            u_start = inst.startTime;
        if (inst.channel == driveChannel(0) && inst.startTime > 0)
            d_second_start = inst.startTime;
    }
    EXPECT_EQ(u_start, 60);
    EXPECT_EQ(d_second_start, 100);
}

TEST(Schedule, AppendBarrierSerialises)
{
    auto wf = std::make_shared<ConstantWaveform>(30, Complex{0.1, 0.0});
    Schedule a("a"), b("b");
    a.play(driveChannel(0), wf);
    b.play(driveChannel(1), wf);
    a.appendBarrier(b);
    EXPECT_EQ(a.duration(), 60);
}

TEST(Schedule, ShiftedRejectsNegative)
{
    Schedule schedule("s");
    schedule.playAt(10, driveChannel(0),
                    std::make_shared<ConstantWaveform>(
                        10, Complex{0.1, 0.0}));
    EXPECT_NO_THROW(schedule.shifted(5));
    EXPECT_THROW(schedule.shifted(-20), FatalError);
}

TEST(Schedule, DelayAndAcquire)
{
    Schedule schedule("s");
    schedule.delay(driveChannel(0), 80);
    schedule.acquire(acquireChannel(0), 200);
    EXPECT_EQ(schedule.duration(), 200);
    EXPECT_EQ(schedule.playCount(), 0u);
}

TEST(Schedule, RenderMentionsChannels)
{
    Schedule schedule("demo");
    schedule.play(driveChannel(2), std::make_shared<GaussianWaveform>(
                                       160, 40.0, Complex{0.1, 0.0}));
    schedule.shiftPhase(driveChannel(2), 0.5);
    const std::string text = schedule.render();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("d2"), std::string::npos);
    EXPECT_NE(text.find("gaussian"), std::string::npos);
}

TEST(Schedule, ValidateCleanSchedule)
{
    Schedule schedule("s");
    schedule.play(driveChannel(0), std::make_shared<GaussianWaveform>(
                                       160, 40.0, Complex{0.3, 0.0}));
    schedule.shiftPhase(driveChannel(0), 0.4);
    schedule.play(driveChannel(0), std::make_shared<GaussianWaveform>(
                                       160, 40.0, Complex{0.3, 0.0}));
    EXPECT_TRUE(schedule.validate().empty());
}

TEST(Schedule, ValidateFlagsOverlap)
{
    Schedule schedule("s");
    auto wf = std::make_shared<ConstantWaveform>(100, Complex{0.1, 0.0});
    schedule.playAt(0, driveChannel(0), wf);
    schedule.playAt(50, driveChannel(0), wf); // Overlaps.
    schedule.playAt(50, driveChannel(1), wf); // Different channel: OK.
    const auto violations = schedule.validate();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("overlapping"), std::string::npos);
    EXPECT_NE(violations[0].find("d0"), std::string::npos);
}

TEST(Schedule, ValidateFlagsOverdrive)
{
    Schedule schedule("s");
    // SampledWaveform bypasses the ScaledWaveform guard, so validate()
    // is the net that catches over-unit envelopes.
    schedule.play(driveChannel(0),
                  std::make_shared<SampledWaveform>(
                      std::vector<Complex>{Complex{1.4, 0.0}}));
    const auto violations = schedule.validate();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("|d|<=1"), std::string::npos);
}

TEST(CmdDef, DefineAndLookup)
{
    CmdDef cmd_def;
    cmd_def.define(GateType::X90, {0}, [](const Gate &) {
        Schedule schedule("x90");
        schedule.play(driveChannel(0),
                      std::make_shared<ConstantWaveform>(
                          160, Complex{0.1, 0.0}));
        return schedule;
    });
    EXPECT_TRUE(cmd_def.has(GateType::X90, {0}));
    EXPECT_FALSE(cmd_def.has(GateType::X90, {1}));
    const Schedule schedule =
        cmd_def.schedule(makeGate(GateType::X90, {0}));
    EXPECT_EQ(schedule.duration(), 160);
    EXPECT_THROW(cmd_def.schedule(makeGate(GateType::X90, {1})),
                 FatalError);
    EXPECT_EQ(cmd_def.keys().size(), 1u);
}

TEST(CmdDef, ParametrizedBuilderSeesGateParams)
{
    CmdDef cmd_def;
    cmd_def.define(GateType::DirectRx, {0}, [](const Gate &gate) {
        Schedule schedule("direct_rx");
        const double scale = gate.params[0] / kPi;
        schedule.play(driveChannel(0),
                      std::make_shared<ConstantWaveform>(
                          160, Complex{0.2 * scale, 0.0}));
        return schedule;
    });
    const Schedule schedule = cmd_def.schedule(
        makeGate(GateType::DirectRx, {0}, {kPi / 2}));
    double peak = 0.0;
    for (const auto &inst : schedule.instructions())
        peak = std::max(peak, inst.waveform->peakAmplitude());
    EXPECT_NEAR(peak, 0.1, 1e-12);
}

} // namespace
} // namespace qpulse
