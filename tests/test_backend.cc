/**
 * @file
 * Tests for the PulseBackend cmd_def entries and schedule assembly:
 * durations match the paper's Figure 4/8 accounting, schedules act
 * correctly on the pulse simulator, and the noise accounting used by
 * the density simulator is consistent.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/constants.h"
#include "compile/compiler.h"
#include "device/pulse_backend.h"
#include "linalg/gates.h"

namespace qpulse {
namespace {

class BackendTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        config_ = new BackendConfig(almadenLineConfig(2));
        backend_ = new std::shared_ptr<const PulseBackend>(
            makeCalibratedBackend(*config_));
        calibrator_ = new Calibrator(*config_);
        pair_sim_ = new PulseSimulator(calibrator_->pairSimulator(0, 1));
    }

    static void TearDownTestSuite()
    {
        delete pair_sim_;
        delete calibrator_;
        delete backend_;
        delete config_;
    }

    static Matrix projectQubits(const Matrix &u)
    {
        const std::size_t idx[4] = {0, 1, 3, 4};
        Matrix p(4, 4);
        for (std::size_t r = 0; r < 4; ++r)
            for (std::size_t c = 0; c < 4; ++c)
                p(r, c) = u(idx[r], idx[c]);
        return p;
    }

    static double scheduleFidelity(const Schedule &schedule,
                                   const Matrix &target)
    {
        const UnitaryResult result = pair_sim_->evolveUnitary(schedule);
        const Matrix eff =
            projectQubits(pair_sim_->effectiveUnitary(result));
        return averageGateFidelity(eff, target);
    }

    static BackendConfig *config_;
    static std::shared_ptr<const PulseBackend> *backend_;
    static Calibrator *calibrator_;
    static PulseSimulator *pair_sim_;
};

BackendConfig *BackendTest::config_ = nullptr;
std::shared_ptr<const PulseBackend> *BackendTest::backend_ = nullptr;
Calibrator *BackendTest::calibrator_ = nullptr;
PulseSimulator *BackendTest::pair_sim_ = nullptr;

TEST_F(BackendTest, DirectXDurationHalvesStandardX)
{
    // Figure 4: DirectX = 160 dt = 35.6 ns, standard X (2 pulses)
    // = 320 dt = 71.1 ns.
    const Gate direct_x = makeGate(GateType::DirectX, {0});
    EXPECT_EQ((*backend_)->gateDuration(direct_x), 160);
    const Gate x90 = makeGate(GateType::X90, {0});
    EXPECT_EQ((*backend_)->gateDuration(x90), 160);
}

TEST_F(BackendTest, RzIsZeroDurationZeroPulses)
{
    const Gate rz = makeGate(GateType::Rz, {1}, {0.7});
    EXPECT_EQ((*backend_)->gateDuration(rz), 0);
    EXPECT_EQ((*backend_)->gatePulseCount(rz), 0u);
}

TEST_F(BackendTest, RzShiftsControlChannelOfTargetingEdge)
{
    // An Rz on the CR target must also shift the u channel (the CR
    // drive lives in the target's frame).
    const Schedule schedule =
        (*backend_)->schedule(makeGate(GateType::Rz, {1}, {0.5}));
    bool shifted_u = false, shifted_d = false;
    for (const auto &inst : schedule.instructions()) {
        if (inst.kind != PulseInstructionKind::ShiftPhase)
            continue;
        if (inst.channel == controlChannel(0))
            shifted_u = true;
        if (inst.channel == driveChannel(1))
            shifted_d = true;
    }
    EXPECT_TRUE(shifted_u);
    EXPECT_TRUE(shifted_d);

    // An Rz on the control shifts only its own drive channel.
    const Schedule control_rz =
        (*backend_)->schedule(makeGate(GateType::Rz, {0}, {0.5}));
    for (const auto &inst : control_rz.instructions())
        EXPECT_FALSE(inst.channel == controlChannel(0));
}

TEST_F(BackendTest, DirectRxAmplitudeScales)
{
    const double full =
        (*backend_)->gatePeakAmplitude(makeGate(GateType::DirectX, {0}));
    const double half = (*backend_)->gatePeakAmplitude(
        makeGate(GateType::DirectRx, {0}, {kPi / 2}));
    EXPECT_NEAR(half, full / 2.0, 1e-6);
}

TEST_F(BackendTest, DirectRxWrapsLargeAngles)
{
    // 3 pi wraps to pi: same pulse as DirectX.
    const Schedule schedule = (*backend_)->schedule(
        makeGate(GateType::DirectRx, {0}, {3 * kPi}));
    EXPECT_EQ(schedule.duration(), 160);
    double peak = 0.0;
    for (const auto &inst : schedule.instructions())
        peak = std::max(peak, inst.waveform->peakAmplitude());
    const double full =
        (*backend_)->gatePeakAmplitude(makeGate(GateType::DirectX, {0}));
    EXPECT_NEAR(peak, full, 1e-6);
}

TEST_F(BackendTest, DirectXFidelity)
{
    const Schedule schedule =
        (*backend_)->schedule(makeGate(GateType::DirectX, {0}));
    EXPECT_GT(scheduleFidelity(schedule,
                               gates::embed1q(gates::rx(kPi), 0, 2)),
              0.995);
}

TEST_F(BackendTest, DirectRxSweepFidelity)
{
    for (double theta : {-2.0, -0.5, 0.8, 2.5}) {
        const Schedule schedule = (*backend_)->schedule(
            makeGate(GateType::DirectRx, {0}, {theta}));
        EXPECT_GT(scheduleFidelity(
                      schedule, gates::embed1q(gates::rx(theta), 0, 2)),
                  0.99)
            << theta;
    }
}

TEST_F(BackendTest, CnotScheduleFidelityAndDuration)
{
    const Gate cx = makeGate(GateType::Cnot, {0, 1});
    const Schedule schedule = (*backend_)->schedule(cx);
    EXPECT_GT(scheduleFidelity(schedule, gates::cnot()), 0.975);
    // An Almaden-era CNOT: a few hundred ns.
    const double ns = dtToNs(schedule.duration());
    EXPECT_GT(ns, 200.0);
    EXPECT_LT(ns, 700.0);
}

TEST_F(BackendTest, CrThetaFidelitySweep)
{
    // Edge-dominated short stretches (small theta) carry a little more
    // coherent residual than the 90-degree calibration point.
    for (double theta : {kPi / 8, kPi / 4, kPi / 2}) {
        const Schedule schedule = (*backend_)->schedule(
            makeGate(GateType::Cr, {0, 1}, {theta}));
        const double floor = theta < kPi / 4 ? 0.95 : 0.97;
        EXPECT_GT(scheduleFidelity(schedule, gates::cr(theta)), floor)
            << theta;
    }
}

TEST_F(BackendTest, CrNegativeTheta)
{
    const Schedule schedule = (*backend_)->schedule(
        makeGate(GateType::Cr, {0, 1}, {-kPi / 2}));
    EXPECT_GT(scheduleFidelity(schedule, gates::cr(-kPi / 2)), 0.97);
}

TEST_F(BackendTest, CrDurationScalesWithTheta)
{
    // Pulse stretching: smaller angle -> shorter schedule
    // (Section 6.1), approaching ~2x shorter ZZ vs two CNOTs.
    const long d90 = (*backend_)->gateDuration(
        makeGate(GateType::Cr, {0, 1}, {kPi / 2}));
    const long d45 = (*backend_)->gateDuration(
        makeGate(GateType::Cr, {0, 1}, {kPi / 4}));
    const long d10 = (*backend_)->gateDuration(
        makeGate(GateType::Cr, {0, 1}, {kPi / 18}));
    EXPECT_LT(d45, d90);
    EXPECT_LT(d10, d45);
}

TEST_F(BackendTest, EchoPairOfHalvesEqualsFullCr)
{
    // CrHalf(45) . X . CrHalf(-45) . X (in time order X first) should
    // land in the CR(90) class, like the monolithic CR entry.
    Schedule schedule("echo");
    QuantumCircuit circuit(2);
    circuit.append(makeGate(GateType::DirectX, {0}));
    circuit.append(makeGate(GateType::CrHalf, {0, 1}, {-kPi / 4}));
    circuit.append(makeGate(GateType::DirectX, {0}));
    circuit.append(makeGate(GateType::CrHalf, {0, 1}, {kPi / 4}));
    const Schedule assembled = (*backend_)->scheduleCircuit(circuit);
    EXPECT_GT(scheduleFidelity(assembled, gates::cr(kPi / 2)), 0.96);
}

TEST_F(BackendTest, ScheduleCircuitRespectsQubitOrdering)
{
    // Gates on disjoint qubits overlap; shared qubits serialise.
    QuantumCircuit parallel(2);
    parallel.append(makeGate(GateType::DirectX, {0}));
    parallel.append(makeGate(GateType::DirectX, {1}));
    EXPECT_EQ((*backend_)->scheduleCircuit(parallel).duration(), 160);

    QuantumCircuit serial(2);
    serial.append(makeGate(GateType::DirectX, {0}));
    serial.append(makeGate(GateType::DirectX, {0}));
    EXPECT_EQ((*backend_)->scheduleCircuit(serial).duration(), 320);
}

TEST_F(BackendTest, BarrierSynchronises)
{
    QuantumCircuit circuit(2);
    circuit.append(makeGate(GateType::DirectX, {0}));
    circuit.barrier();
    circuit.append(makeGate(GateType::DirectX, {1}));
    EXPECT_EQ((*backend_)->scheduleCircuit(circuit).duration(), 320);
}

TEST_F(BackendTest, MeasureScheduleHasStimulusAndAcquire)
{
    const Schedule schedule =
        (*backend_)->schedule(makeGate(GateType::Measure, {0}));
    bool has_measure_play = false, has_acquire = false;
    for (const auto &inst : schedule.instructions()) {
        if (inst.kind == PulseInstructionKind::Play &&
            inst.channel.kind == ChannelKind::Measure)
            has_measure_play = true;
        if (inst.kind == PulseInstructionKind::Acquire)
            has_acquire = true;
    }
    EXPECT_TRUE(has_measure_play);
    EXPECT_TRUE(has_acquire);
    EXPECT_EQ(schedule.duration(), config_->measureDuration);
}

TEST_F(BackendTest, NoiseProviderAccounting)
{
    PulseCompiler compiler(*backend_, CompileMode::Optimized);
    const NoiseInfoProvider provider = compiler.noiseProvider();

    // DirectX: one full-amplitude pulse -> weight 1.
    const GateNoiseInfo dx = provider(makeGate(GateType::DirectX, {0}));
    EXPECT_NEAR(dx.error1qWeight, 1.0, 0.05);
    EXPECT_EQ(dx.duration, 160);

    // DirectRx(90): half amplitude -> weight 0.25.
    const GateNoiseInfo half =
        provider(makeGate(GateType::DirectRx, {0}, {kPi / 2}));
    EXPECT_NEAR(half.error1qWeight, 0.25, 0.03);

    // X90 (standard pulse): half amplitude of the calibrated X180.
    const GateNoiseInfo x90 = provider(makeGate(GateType::X90, {0}));
    EXPECT_NEAR(x90.error1qWeight, 0.25, 0.03);

    // CNOT: two CR halves at full stretch -> 2q weight ~ 2.
    const GateNoiseInfo cx = provider(makeGate(GateType::Cnot, {0, 1}));
    EXPECT_NEAR(cx.error2qWeight, 2.0, 0.2);
    EXPECT_GT(cx.error1qWeight, 1.5); // Two X180 echoes + target X90.

    // CR(45): roughly half the 2q weight of CR(90).
    const GateNoiseInfo cr90 =
        provider(makeGate(GateType::Cr, {0, 1}, {kPi / 2}));
    const GateNoiseInfo cr45 =
        provider(makeGate(GateType::Cr, {0, 1}, {kPi / 4}));
    EXPECT_LT(cr45.error2qWeight, 0.75 * cr90.error2qWeight);

    // Measure: duration only.
    const GateNoiseInfo meas = provider(makeGate(GateType::Measure, {0}));
    EXPECT_EQ(meas.duration, config_->measureDuration);
    EXPECT_EQ(meas.error1qWeight, 0.0);
}

TEST(BackendConfigs, AlmadenShape)
{
    const BackendConfig config = almadenConfig();
    EXPECT_EQ(config.numQubits, 20u);
    EXPECT_EQ(config.qubits.size(), 20u);
    EXPECT_EQ(config.readout.size(), 20u);
    EXPECT_GE(config.couplings.size(), 20u);
    EXPECT_NEAR(config.qubits[0].t1Us, 94.0, 1e-9);
    EXPECT_NEAR(config.qubits[0].t2Us, 88.0, 1e-9);
    EXPECT_TRUE(config.hasEdge(0, 1));
    EXPECT_TRUE(config.hasEdge(1, 0)); // Undirected lookup.
    EXPECT_FALSE(config.hasEdge(0, 19));
    EXPECT_THROW(config.edge(0, 19), FatalError);
}

TEST(BackendConfigs, NeighbourDetuning)
{
    // Fixed-frequency CR needs detuned neighbours.
    const BackendConfig config = almadenLineConfig(5);
    for (std::size_t q = 0; q + 1 < 5; ++q)
        EXPECT_GT(std::abs(config.qubits[q].frequencyGhz -
                           config.qubits[q + 1].frequencyGhz),
                  0.05);
}

TEST(BackendConfigs, LineConfigBounds)
{
    EXPECT_THROW(almadenLineConfig(0), FatalError);
    EXPECT_THROW(almadenLineConfig(21), FatalError);
    EXPECT_EQ(almadenLineConfig(3).couplings.size(), 2u);
}

} // namespace
} // namespace qpulse
