/**
 * @file
 * Tests for the circuit IR: gate metadata, matrices, inverses, circuit
 * builders, unitary evaluation and circuit inversion.
 */
#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "common/constants.h"
#include "common/rng.h"
#include "linalg/gates.h"

namespace qpulse {
namespace {

TEST(GateMeta, NamesAndArity)
{
    EXPECT_EQ(gateName(GateType::Cnot), "cx");
    EXPECT_EQ(gateName(GateType::DirectRx), "direct_rx");
    EXPECT_EQ(gateArity(GateType::H), 1u);
    EXPECT_EQ(gateArity(GateType::Cr), 2u);
    EXPECT_EQ(gateArity(GateType::Barrier), 0u);
    EXPECT_EQ(gateParamCount(GateType::U3), 3u);
    EXPECT_EQ(gateParamCount(GateType::Cr), 1u);
}

TEST(GateMeta, DirectivesAndAugmented)
{
    EXPECT_TRUE(gateIsDirective(GateType::Measure));
    EXPECT_TRUE(gateIsDirective(GateType::Barrier));
    EXPECT_FALSE(gateIsDirective(GateType::X));
    EXPECT_TRUE(gateIsAugmented(GateType::DirectX));
    EXPECT_TRUE(gateIsAugmented(GateType::Cr));
    EXPECT_FALSE(gateIsAugmented(GateType::X90));
}

TEST(Gate, MakeGateValidation)
{
    EXPECT_THROW(makeGate(GateType::H, {0, 1}), FatalError);
    EXPECT_THROW(makeGate(GateType::Rx, {0}), FatalError); // No param.
    EXPECT_NO_THROW(makeGate(GateType::Rx, {0}, {0.5}));
    EXPECT_NO_THROW(makeGate(GateType::Cnot, {0, 1}));
}

class GateInverseTest : public ::testing::TestWithParam<GateType>
{
};

TEST_P(GateInverseTest, InverseComposesToIdentity)
{
    const GateType type = GateType(GetParam());
    std::vector<double> params(gateParamCount(type), 0.7);
    std::vector<std::size_t> qubits;
    for (std::size_t q = 0; q < gateArity(type); ++q)
        qubits.push_back(q);
    const Gate gate = makeGate(type, qubits, params);
    const Matrix product = gate.inverse().matrix() * gate.matrix();
    EXPECT_GT(unitaryOverlap(product,
                             Matrix::identity(product.rows())),
              1 - 1e-10)
        << gateName(type);
}

INSTANTIATE_TEST_SUITE_P(
    AllUnitaries, GateInverseTest,
    ::testing::Values(GateType::I, GateType::H, GateType::X, GateType::Y,
                      GateType::Z, GateType::S, GateType::Sdg,
                      GateType::T, GateType::Tdg, GateType::Rx,
                      GateType::Ry, GateType::Rz, GateType::U1,
                      GateType::U2, GateType::U3, GateType::Cnot,
                      GateType::Cz, GateType::Swap, GateType::Rzz,
                      GateType::OpenCnot, GateType::X90,
                      GateType::DirectX, GateType::DirectRx, GateType::Cr,
                      GateType::CrHalf));

TEST(Circuit, AppendValidatesWires)
{
    QuantumCircuit circuit(2);
    EXPECT_THROW(circuit.h(5), FatalError);
    EXPECT_THROW(circuit.cx(1, 1), FatalError);
    EXPECT_NO_THROW(circuit.cx(0, 1));
}

TEST(Circuit, CountsAndSize)
{
    QuantumCircuit circuit(3);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.cx(1, 2);
    circuit.rz(0.3, 2);
    circuit.measureAll();
    EXPECT_EQ(circuit.size(), 7u);
    EXPECT_EQ(circuit.countType(GateType::Cnot), 2u);
    EXPECT_EQ(circuit.countType(GateType::Measure), 3u);
    EXPECT_EQ(circuit.twoQubitGateCount(), 2u);
}

TEST(Circuit, BellStateVector)
{
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.cx(0, 1);
    const Vector state = circuit.runStatevector();
    EXPECT_NEAR(std::norm(state[0]), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(state[3]), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(state[1]), 0.0, 1e-12);
}

TEST(Circuit, UnitaryOfGhz)
{
    QuantumCircuit circuit(3);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.cx(1, 2);
    const Vector state = circuit.runStatevector();
    EXPECT_NEAR(std::norm(state[0]), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(state[7]), 0.5, 1e-12);
}

TEST(Circuit, UnitaryMatchesStatevector)
{
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.ry(0.7, 1);
    circuit.cx(0, 1);
    circuit.rz(1.1, 0);
    const Matrix u = circuit.unitary();
    Vector zero(4);
    zero[0] = Complex{1, 0};
    const Vector via_unitary = u.apply(zero);
    const Vector via_sim = circuit.runStatevector();
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(std::abs(via_unitary[i] - via_sim[i]), 0.0, 1e-12);
}

TEST(Circuit, InverseUndoesCircuit)
{
    Rng rng(5);
    QuantumCircuit circuit(3);
    circuit.h(0);
    circuit.u3(rng.uniform(0, 3), rng.uniform(-3, 3), rng.uniform(-3, 3),
               1);
    circuit.cx(0, 1);
    circuit.rzz(0.8, 1, 2);
    circuit.t(2);
    circuit.swap(0, 2);

    QuantumCircuit inverse = circuit.inverse();
    circuit.extend(inverse);
    EXPECT_GT(unitaryOverlap(circuit.unitary(), Matrix::identity(8)),
              1 - 1e-9);
}

TEST(Circuit, WithoutDirectives)
{
    QuantumCircuit circuit(1);
    circuit.x(0);
    circuit.barrier();
    circuit.measure(0);
    const QuantumCircuit clean = circuit.withoutDirectives();
    EXPECT_EQ(clean.size(), 1u);
}

TEST(Circuit, ToStringIsQasmLike)
{
    QuantumCircuit circuit(2);
    circuit.rz(1.5, 0);
    circuit.cx(0, 1);
    const std::string text = circuit.toString();
    EXPECT_NE(text.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(text.find("rz(1.5) q[0];"), std::string::npos);
    EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
}

TEST(Circuit, ExtendRejectsWider)
{
    QuantumCircuit narrow(1);
    QuantumCircuit wide(3);
    wide.h(2);
    EXPECT_THROW(narrow.extend(wide), FatalError);
}

TEST(Circuit, OpenCnotSemantics)
{
    // open-CNOT flips the target iff the control is |0>.
    QuantumCircuit circuit(2);
    circuit.openCx(0, 1);
    const Vector state = circuit.runStatevector(); // From |00>.
    EXPECT_NEAR(std::norm(state[1]), 1.0, 1e-12);  // -> |01>.
}

TEST(Circuit, RzzIsDiagonalPhase)
{
    QuantumCircuit circuit(2);
    circuit.rzz(0.9, 0, 1);
    const Matrix u = circuit.unitary();
    EXPECT_LT(u.maxAbsDiff(gates::zz(0.9)), 1e-12);
}

} // namespace
} // namespace qpulse
