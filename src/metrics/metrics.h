/**
 * @file
 * Top-level evaluation metrics (Section 8.1): the Hellinger distance
 * between measured and ideal outcome distributions — the paper's
 * headline error metric — plus state tomography helpers (Bloch-vector
 * reconstruction from X/Y/Z measurements) used by the Figures 5-7 and
 * 9 characterization experiments, and distribution utilities.
 */
#ifndef QPULSE_METRICS_METRICS_H
#define QPULSE_METRICS_METRICS_H

#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace qpulse {

/**
 * Hellinger distance between two probability distributions:
 * H(p, q) = sqrt(1 - sum_i sqrt(p_i q_i)). 0 for identical
 * distributions, 1 for disjoint support.
 */
double hellingerDistance(const std::vector<double> &p,
                         const std::vector<double> &q);

/** Hellinger fidelity = (1 - H^2)^2 = (sum sqrt(p q))^2. */
double hellingerFidelity(const std::vector<double> &p,
                         const std::vector<double> &q);

/** Total variation distance 0.5 * sum |p - q|. */
double totalVariationDistance(const std::vector<double> &p,
                              const std::vector<double> &q);

/** Normalise counts to a probability distribution. */
std::vector<double> countsToProbabilities(const std::vector<long> &counts);

/** Bloch vector (x, y, z) of a qubit state or 2x2 density matrix. */
struct BlochVector
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    double norm() const;
};

/** Bloch vector of a pure qubit state (first two amplitudes used). */
BlochVector blochFromState(const Vector &state);

/** Bloch vector of a 2x2 density matrix. */
BlochVector blochFromDensity(const Matrix &rho);

/**
 * Shot-sampled single-qubit state tomography: estimates the Bloch
 * vector by measuring <X>, <Y>, <Z>, each from `shots` samples of the
 * exact expectation (binomially distributed), exactly like the
 * 3 x 41 x 1000-shot experiments behind Figure 7.
 */
BlochVector sampledTomography(const Vector &state, long shots, Rng &rng);

/** State fidelity between a pure target and a measured Bloch vector:
 *  F = (1 + r . r_target) / 2 for unit target vectors. */
double blochStateFidelity(const BlochVector &measured,
                          const BlochVector &target);

} // namespace qpulse

#endif // QPULSE_METRICS_METRICS_H
