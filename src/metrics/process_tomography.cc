#include "metrics/process_tomography.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qpulse {

double
PauliTransferMatrix::averageGateFidelity(
    const PauliTransferMatrix &target) const
{
    // Process fidelity for qubit channels: Fp = tr(R_t^T R) / 4;
    // average gate fidelity F = (2 Fp + 1) / 3 = (d Fp + 1)/(d + 1).
    double trace = 0.0;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            trace += target.r[j][i] * r[j][i];
    const double process = trace / 4.0;
    return (2.0 * process + 1.0) / 3.0;
}

bool
PauliTransferMatrix::isTracePreserving(double tol) const
{
    return std::abs(r[0][0] - 1.0) < tol && std::abs(r[0][1]) < tol &&
           std::abs(r[0][2]) < tol && std::abs(r[0][3]) < tol;
}

double
PauliTransferMatrix::unitarity() const
{
    double total = 0.0;
    for (int i = 1; i < 4; ++i)
        for (int j = 1; j < 4; ++j)
            total += r[i][j] * r[i][j];
    return total / 3.0;
}

PauliTransferMatrix
processTomography(const BlochChannel &channel)
{
    qpulseRequire(channel != nullptr,
                  "processTomography needs a channel");

    // Probe the six cardinal states. For input Bloch vector n, the
    // output is t + M n where M is the unital block and t the affine
    // shift; +/- pairs separate them:
    //   M e_k = (out(+e_k) - out(-e_k)) / 2,
    //   t     = (out(+e_k) + out(-e_k)) / 2  (averaged over k).
    const BlochVector axes[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    PauliTransferMatrix ptm;
    ptm.r[0][0] = 1.0; // Trace preservation of physical channels.

    double shift[3] = {0.0, 0.0, 0.0};
    for (int k = 0; k < 3; ++k) {
        BlochVector minus_axis{-axes[k].x, -axes[k].y, -axes[k].z};
        const BlochVector plus = channel(axes[k]);
        const BlochVector minus = channel(minus_axis);
        const double column[3] = {(plus.x - minus.x) / 2.0,
                                  (plus.y - minus.y) / 2.0,
                                  (plus.z - minus.z) / 2.0};
        for (int i = 0; i < 3; ++i)
            ptm.r[i + 1][k + 1] = column[i];
        shift[0] += (plus.x + minus.x) / 2.0;
        shift[1] += (plus.y + minus.y) / 2.0;
        shift[2] += (plus.z + minus.z) / 2.0;
    }
    for (int i = 0; i < 3; ++i)
        ptm.r[i + 1][0] = shift[i] / 3.0;
    return ptm;
}

PauliTransferMatrix
ptmOfUnitary(const Matrix &u)
{
    qpulseRequire(u.rows() == 2 && u.cols() == 2,
                  "ptmOfUnitary requires a 2x2 unitary");
    const BlochChannel channel = [&](const BlochVector &in) {
        // Build the pure state with Bloch vector `in`, evolve, read.
        const double theta = std::acos(std::clamp(in.z, -1.0, 1.0));
        const double phi = std::atan2(in.y, in.x);
        Vector state{Complex{std::cos(theta / 2), 0.0},
                     std::polar(std::sin(theta / 2), phi)};
        return blochFromState(u.apply(state));
    };
    return processTomography(channel);
}

} // namespace qpulse
