/**
 * @file
 * Single-qubit quantum process tomography: reconstruct the Pauli
 * transfer matrix (PTM) of a channel from its action on the six
 * cardinal input states — the experiment behind the paper's per-gate
 * fidelity claims (Sections 4.1, 8.3). Works on any channel given as
 * a state-in / Bloch-vector-out callable, so it runs against the
 * pulse simulator (unitary or Lindblad) or the ideal matrices alike.
 */
#ifndef QPULSE_METRICS_PROCESS_TOMOGRAPHY_H
#define QPULSE_METRICS_PROCESS_TOMOGRAPHY_H

#include <array>
#include <functional>

#include "metrics/metrics.h"

namespace qpulse {

/**
 * The 4x4 Pauli transfer matrix R: R[i][j] = tr(P_i E(P_j)) / 2 over
 * the basis {I, X, Y, Z}. Row/column 0 encode trace preservation and
 * non-unitality.
 */
struct PauliTransferMatrix
{
    std::array<std::array<double, 4>, 4> r{};

    /** Average gate fidelity against a target unitary's PTM:
     *  F = (tr(R_target^T R) / 2 + 1) / 3 for qubit channels. */
    double averageGateFidelity(const PauliTransferMatrix &target) const;

    /** True if the channel is trace preserving (top row ~ e_0). */
    bool isTracePreserving(double tol = 1e-6) const;

    /** Unitarity proxy: norm of the lower-right 3x3 block squared / 3
     *  (1 for unitary channels, < 1 for decohering ones). */
    double unitarity() const;
};

/**
 * A channel under test: maps an input pure state (qubit Bloch vector)
 * to the output Bloch vector. Implementations wrap the pulse
 * simulator, the noisy density simulator, or an ideal matrix.
 */
using BlochChannel = std::function<BlochVector(const BlochVector &)>;

/**
 * Reconstruct the PTM by probing the six cardinal states (+-x, +-y,
 * +-z). Uses the +/- pairs to separate the unital part from the
 * affine shift, exactly as experimental tomography does.
 */
PauliTransferMatrix processTomography(const BlochChannel &channel);

/** PTM of an ideal single-qubit unitary. */
PauliTransferMatrix ptmOfUnitary(const Matrix &u);

} // namespace qpulse

#endif // QPULSE_METRICS_PROCESS_TOMOGRAPHY_H
