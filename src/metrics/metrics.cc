#include "metrics/metrics.h"

#include <cmath>

#include "common/logging.h"

namespace qpulse {

double
hellingerDistance(const std::vector<double> &p, const std::vector<double> &q)
{
    qpulseRequire(p.size() == q.size(),
                  "hellingerDistance size mismatch");
    double bc = 0.0; // Bhattacharyya coefficient.
    for (std::size_t i = 0; i < p.size(); ++i)
        bc += std::sqrt(std::max(p[i], 0.0) * std::max(q[i], 0.0));
    return std::sqrt(std::max(0.0, 1.0 - bc));
}

double
hellingerFidelity(const std::vector<double> &p, const std::vector<double> &q)
{
    qpulseRequire(p.size() == q.size(), "hellingerFidelity size mismatch");
    double bc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
        bc += std::sqrt(std::max(p[i], 0.0) * std::max(q[i], 0.0));
    return bc * bc;
}

double
totalVariationDistance(const std::vector<double> &p,
                       const std::vector<double> &q)
{
    qpulseRequire(p.size() == q.size(),
                  "totalVariationDistance size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
        total += std::abs(p[i] - q[i]);
    return total / 2.0;
}

std::vector<double>
countsToProbabilities(const std::vector<long> &counts)
{
    long total = 0;
    for (long c : counts)
        total += c;
    qpulseRequire(total > 0, "countsToProbabilities: empty counts");
    std::vector<double> probs(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
        probs[i] = static_cast<double>(counts[i]) /
                   static_cast<double>(total);
    return probs;
}

double
BlochVector::norm() const
{
    return std::sqrt(x * x + y * y + z * z);
}

BlochVector
blochFromState(const Vector &state)
{
    qpulseRequire(state.size() >= 2, "blochFromState needs >= 2 amps");
    const Complex a = state[0];
    const Complex b = state[1];
    BlochVector bloch;
    const Complex cross = std::conj(a) * b;
    bloch.x = 2.0 * cross.real();
    bloch.y = 2.0 * cross.imag();
    bloch.z = std::norm(a) - std::norm(b);
    return bloch;
}

BlochVector
blochFromDensity(const Matrix &rho)
{
    qpulseRequire(rho.rows() >= 2 && rho.cols() >= 2,
                  "blochFromDensity needs a >= 2x2 matrix");
    BlochVector bloch;
    bloch.x = 2.0 * rho(1, 0).real();
    bloch.y = 2.0 * rho(1, 0).imag();
    bloch.z = rho(0, 0).real() - rho(1, 1).real();
    return bloch;
}

BlochVector
sampledTomography(const Vector &state, long shots, Rng &rng)
{
    const BlochVector exact = blochFromState(state);
    BlochVector sampled;
    // Each axis measurement yields outcomes +-1 with
    // P(+1) = (1 + <axis>) / 2; estimate from `shots` draws.
    auto sample_axis = [&](double expectation) {
        const double p_plus = (1.0 + expectation) / 2.0;
        const long plus = rng.binomial(shots, p_plus);
        return 2.0 * static_cast<double>(plus) /
                   static_cast<double>(shots) -
               1.0;
    };
    sampled.x = sample_axis(exact.x);
    sampled.y = sample_axis(exact.y);
    sampled.z = sample_axis(exact.z);
    return sampled;
}

double
blochStateFidelity(const BlochVector &measured, const BlochVector &target)
{
    const double dot = measured.x * target.x + measured.y * target.y +
                       measured.z * target.z;
    return (1.0 + dot) / 2.0;
}

} // namespace qpulse
