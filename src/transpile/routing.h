/**
 * @file
 * Qubit routing: makes circuits executable on a restricted coupling
 * graph (e.g. Almaden's heavy-square lattice) by inserting SWAPs
 * along shortest paths when a two-qubit gate targets non-neighbouring
 * qubits. The paper's experiments all run on adjacent pairs, but any
 * production compiler needs routing for wider programs; this is a
 * greedy shortest-path router in the spirit of Qiskit's BasicSwap.
 */
#ifndef QPULSE_TRANSPILE_ROUTING_H
#define QPULSE_TRANSPILE_ROUTING_H

#include <vector>

#include "circuit/circuit.h"

namespace qpulse {

/**
 * Undirected coupling graph over n qubits with shortest-path queries
 * (BFS; graphs here are tiny).
 */
class CouplingGraph
{
  public:
    CouplingGraph(std::size_t n_qubits,
                  std::vector<std::pair<std::size_t, std::size_t>> edges);

    std::size_t numQubits() const { return numQubits_; }

    bool connected(std::size_t a, std::size_t b) const;

    /** Shortest path from a to b, inclusive; fatal if disconnected. */
    std::vector<std::size_t> shortestPath(std::size_t a,
                                          std::size_t b) const;

    /** Graph distance (hops) between two qubits. */
    std::size_t distance(std::size_t a, std::size_t b) const;

  private:
    std::size_t numQubits_;
    std::vector<std::vector<std::size_t>> adjacency_;
};

/** Result of routing: the rewritten circuit plus the final layout. */
struct RoutingResult
{
    QuantumCircuit circuit;

    /**
     * finalLayout[logical] = physical wire holding that logical qubit
     * at the end of the program (measurement results must be read
     * through this map when SWAPs were inserted).
     */
    std::vector<std::size_t> finalLayout;

    /** Number of SWAP gates inserted. */
    std::size_t swapsInserted = 0;
};

/**
 * Greedy router: walk the circuit in order; when a 2q gate spans
 * non-adjacent physical qubits, insert SWAPs along the shortest path
 * to bring them together, permuting the layout. 1q gates and
 * measurements follow the current layout.
 */
RoutingResult routeCircuit(const QuantumCircuit &circuit,
                           const CouplingGraph &graph);

} // namespace qpulse

#endif // QPULSE_TRANSPILE_ROUTING_H
