#include "transpile/pass.h"

#include "common/logging.h"

namespace qpulse {

void
PassManager::addPass(std::unique_ptr<Pass> pass)
{
    qpulseRequire(pass != nullptr, "addPass requires a pass");
    passes_.push_back(std::move(pass));
}

QuantumCircuit
PassManager::run(const QuantumCircuit &circuit, int max_rounds) const
{
    CircuitDag dag(circuit);
    for (int round = 0; round < max_rounds; ++round) {
        bool changed = false;
        for (const auto &pass : passes_)
            changed |= pass->run(dag);
        if (!changed)
            break;
        // Rebuild the DAG to compact dead nodes between rounds.
        if (round + 1 < max_rounds)
            dag = CircuitDag(dag.toCircuit());
    }
    return dag.toCircuit();
}

} // namespace qpulse
