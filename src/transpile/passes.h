/**
 * @file
 * The concrete transpiler passes of Section 3.3:
 *
 *  - CancelAdjacentInversesPass: removes adjacent gate/inverse pairs
 *    (X.X, CX.CX, H.H, ...), the basic Qiskit-style optimisation both
 *    compiler flows get.
 *  - ZzTemplateMatchPass: the combined commutativity-detection (CD) +
 *    augmented-basis-gate-detection (ABGD) rewrite of Figure 3. It
 *    finds CX(a,b) . [diagonals] . CX(a,b) patterns — floating
 *    diagonal gates off the control wire through the CNOTs, which is
 *    exactly the false-dependency obfuscation the paper handles — and
 *    fuses them into an Rzz(theta) node.
 *  - DecomposeTwoQubitPass: lowers two-qubit assembly to the target
 *    basis. Standard mode: Rzz -> CX.Rz.CX ("textbook"), open-CX ->
 *    X.CX.X, CZ -> H-conjugated CX, SWAP -> 3 CX, direction fixing via
 *    H conjugation. Augmented mode additionally: Rzz -> H.CR(theta).H
 *    (Section 6.2) and CX -> its true pulse-level atoms
 *    [DirectRx(-90) on target; X, CRhalf(-45), X, CRhalf(45) echo]
 *    so cross-gate pulse cancellation becomes visible (Section 5).
 *  - Collapse1qRunsPass: fuses every maximal run of single-qubit gates
 *    into one U3 and re-emits it as Equation 2 (standard: two X90
 *    pulses + frames) or Equation 3 (optimized: one DirectRx + frames),
 *    dropping identity runs entirely.
 */
#ifndef QPULSE_TRANSPILE_PASSES_H
#define QPULSE_TRANSPILE_PASSES_H

#include "transpile/pass.h"

namespace qpulse {

/** Remove adjacent inverse pairs on identical wire sets. */
class CancelAdjacentInversesPass : public Pass
{
  public:
    std::string name() const override { return "cancel-inverses"; }
    bool run(CircuitDag &dag) override;
};

/** CD + ABGD: fuse CX . diag . CX sandwiches into Rzz (Figure 3). */
class ZzTemplateMatchPass : public Pass
{
  public:
    std::string name() const override { return "zz-template-match"; }
    bool run(CircuitDag &dag) override;
};

/** Lower two-qubit assembly gates toward the target basis. */
class DecomposeTwoQubitPass : public Pass
{
  public:
    explicit DecomposeTwoQubitPass(TranspilerTarget target)
        : target_(std::move(target))
    {}

    std::string name() const override { return "decompose-2q"; }
    bool run(CircuitDag &dag) override;

  private:
    std::vector<Gate> lowerGate(const Gate &gate) const;

    TranspilerTarget target_;
};

/** Fuse 1q runs into U3 and emit Equation 2 / Equation 3 forms. */
class Collapse1qRunsPass : public Pass
{
  public:
    explicit Collapse1qRunsPass(bool augmented) : augmented_(augmented) {}

    std::string name() const override { return "collapse-1q-runs"; }
    bool run(CircuitDag &dag) override;

  private:
    bool augmented_;
};

/**
 * Merge adjacent same-generator two-qubit rotations: Rzz(a).Rzz(b) ->
 * Rzz(a+b) and Cr(a).Cr(b) -> Cr(a+b) on identical wire pairs (the
 * pulse-stretching analogue of Rz merging; one stretched pulse beats
 * two). Drops merged gates whose angle vanishes.
 */
class MergeTwoQubitRotationsPass : public Pass
{
  public:
    std::string name() const override { return "merge-2q-rotations"; }
    bool run(CircuitDag &dag) override;
};

/**
 * Commutation relocation (the CD pass generalised): float diagonal 1q
 * gates rightward through CNOT controls / Rzz / Cr control wires, and
 * X-family gates rightward through CNOT targets, whenever the swap
 * brings them adjacent to a gate they can merge or cancel with. This
 * exposes cancellations hidden by false dependencies (Figure 3).
 */
class CommutationRelocationPass : public Pass
{
  public:
    std::string name() const override { return "commutation-relocate"; }
    bool run(CircuitDag &dag) override;
};

/** Build the standard-flow pipeline (Figure 1, upper path). */
PassManager standardPassManager(const TranspilerTarget &target);

/** Build the optimized-flow pipeline (Figure 1, lower path). */
PassManager optimizedPassManager(const TranspilerTarget &target);

/** True if the gate is diagonal in the computational basis. */
bool gateIsDiagonal(GateType type);

/** Rz-equivalent angle of a diagonal 1q gate (up to global phase). */
double diagonalAngle(const Gate &gate);

} // namespace qpulse

#endif // QPULSE_TRANSPILE_PASSES_H
