/**
 * @file
 * Transpiler-pass framework (Section 3.3): passes transform the DAG
 * representation of quantum assembly "in the spirit of LLVM Transform
 * passes", and a PassManager runs a pipeline to fixpoint.
 */
#ifndef QPULSE_TRANSPILE_PASS_H
#define QPULSE_TRANSPILE_PASS_H

#include <memory>
#include <string>
#include <vector>

#include "circuit/dag.h"

namespace qpulse {

/** Directed coupling constraint + mode the transpiler targets. */
struct TranspilerTarget
{
    /** Directed, calibrated (control, target) pairs. */
    std::vector<std::pair<std::size_t, std::size_t>> edges;

    /** True when the augmented basis gates are available. */
    bool augmented = false;

    bool hasEdge(std::size_t control, std::size_t target) const
    {
        for (const auto &edge : edges)
            if (edge.first == control && edge.second == target)
                return true;
        return false;
    }
};

/** A single DAG-to-DAG rewrite. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Human-readable pass name. */
    virtual std::string name() const = 0;

    /**
     * Apply the rewrite.
     * @return true if the DAG changed.
     */
    virtual bool run(CircuitDag &dag) = 0;
};

/**
 * Runs an ordered pipeline of passes, optionally iterating the whole
 * pipeline until no pass reports a change.
 */
class PassManager
{
  public:
    void addPass(std::unique_ptr<Pass> pass);

    /** Transform a circuit through the pipeline. */
    QuantumCircuit run(const QuantumCircuit &circuit,
                       int max_rounds = 4) const;

    std::size_t passCount() const { return passes_.size(); }

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

} // namespace qpulse

#endif // QPULSE_TRANSPILE_PASS_H
