#include "transpile/routing.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace qpulse {

CouplingGraph::CouplingGraph(
    std::size_t n_qubits,
    std::vector<std::pair<std::size_t, std::size_t>> edges)
    : numQubits_(n_qubits), adjacency_(n_qubits)
{
    for (const auto &edge : edges) {
        qpulseRequire(edge.first < n_qubits && edge.second < n_qubits &&
                          edge.first != edge.second,
                      "invalid coupling edge");
        adjacency_[edge.first].push_back(edge.second);
        adjacency_[edge.second].push_back(edge.first);
    }
}

bool
CouplingGraph::connected(std::size_t a, std::size_t b) const
{
    qpulseRequire(a < numQubits_ && b < numQubits_,
                  "coupling query out of range");
    return std::find(adjacency_[a].begin(), adjacency_[a].end(), b) !=
           adjacency_[a].end();
}

std::vector<std::size_t>
CouplingGraph::shortestPath(std::size_t a, std::size_t b) const
{
    qpulseRequire(a < numQubits_ && b < numQubits_,
                  "path query out of range");
    if (a == b)
        return {a};

    std::vector<std::size_t> parent(numQubits_, numQubits_);
    std::queue<std::size_t> frontier;
    frontier.push(a);
    parent[a] = a;
    while (!frontier.empty()) {
        const std::size_t node = frontier.front();
        frontier.pop();
        for (std::size_t next : adjacency_[node]) {
            if (parent[next] != numQubits_)
                continue;
            parent[next] = node;
            if (next == b) {
                std::vector<std::size_t> path = {b};
                std::size_t cursor = b;
                while (cursor != a) {
                    cursor = parent[cursor];
                    path.push_back(cursor);
                }
                std::reverse(path.begin(), path.end());
                return path;
            }
            frontier.push(next);
        }
    }
    qpulseFatal("qubits ", a, " and ", b,
                " are disconnected in the coupling graph");
}

std::size_t
CouplingGraph::distance(std::size_t a, std::size_t b) const
{
    return shortestPath(a, b).size() - 1;
}

RoutingResult
routeCircuit(const QuantumCircuit &circuit, const CouplingGraph &graph)
{
    qpulseRequire(circuit.numQubits() <= graph.numQubits(),
                  "circuit wider than the coupling graph");

    // layout[logical] = physical.
    std::vector<std::size_t> layout(graph.numQubits());
    for (std::size_t q = 0; q < graph.numQubits(); ++q)
        layout[q] = q;

    RoutingResult result{QuantumCircuit(graph.numQubits()), {}, 0};

    auto swap_physical = [&](std::size_t pa, std::size_t pb) {
        result.circuit.swap(pa, pb);
        ++result.swapsInserted;
        // Update the logical -> physical map.
        for (auto &physical : layout) {
            if (physical == pa)
                physical = pb;
            else if (physical == pb)
                physical = pa;
        }
    };

    for (const auto &gate : circuit.gates()) {
        if (gate.type == GateType::Barrier) {
            result.circuit.barrier();
            continue;
        }
        Gate placed = gate;
        for (auto &wire : placed.qubits)
            wire = layout[wire];

        if (placed.qubits.size() == 2 &&
            !gateIsDirective(placed.type) &&
            !graph.connected(placed.qubits[0], placed.qubits[1])) {
            // Bring the control along the shortest path until it
            // neighbours the target.
            const auto path =
                graph.shortestPath(placed.qubits[0], placed.qubits[1]);
            for (std::size_t hop = 0; hop + 2 < path.size(); ++hop)
                swap_physical(path[hop], path[hop + 1]);
            // Re-resolve the wires after the permutation.
            placed = gate;
            for (auto &wire : placed.qubits)
                wire = layout[wire];
            qpulseAssert(graph.connected(placed.qubits[0],
                                         placed.qubits[1]),
                         "routing failed to make qubits adjacent");
        }
        result.circuit.append(std::move(placed));
    }

    result.finalLayout.assign(layout.begin(),
                              layout.begin() +
                                  static_cast<long>(circuit.numQubits()));
    return result;
}

} // namespace qpulse
