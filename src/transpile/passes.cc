#include "transpile/passes.h"

#include <cmath>

#include "common/constants.h"
#include "synth/euler.h"

namespace qpulse {

bool
gateIsDiagonal(GateType type)
{
    switch (type) {
      case GateType::I:
      case GateType::Z:
      case GateType::S:
      case GateType::Sdg:
      case GateType::T:
      case GateType::Tdg:
      case GateType::Rz:
      case GateType::U1:
        return true;
      default:
        return false;
    }
}

double
diagonalAngle(const Gate &gate)
{
    switch (gate.type) {
      case GateType::I:    return 0.0;
      case GateType::Z:    return kPi;
      case GateType::S:    return kPi / 2;
      case GateType::Sdg:  return -kPi / 2;
      case GateType::T:    return kPi / 4;
      case GateType::Tdg:  return -kPi / 4;
      case GateType::Rz:
      case GateType::U1:
        return gate.params[0];
      default:
        qpulsePanic("diagonalAngle of non-diagonal gate ",
                    gateName(gate.type));
    }
}

bool
CancelAdjacentInversesPass::run(CircuitDag &dag)
{
    bool changed = false;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t id = 0; id < dag.nodes().size(); ++id) {
            const DagNode &node = dag.node(id);
            if (!node.alive || gateIsDirective(node.gate.type))
                continue;
            // The candidate partner must be the immediate successor on
            // every wire the gate touches.
            const std::size_t partner =
                dag.nextOnWire(id, node.gate.qubits[0]);
            if (partner == kNoNode)
                continue;
            const DagNode &next = dag.node(partner);
            if (gateIsDirective(next.gate.type))
                continue;
            if (next.gate.qubits != node.gate.qubits)
                continue;
            bool adjacent_everywhere = true;
            for (std::size_t wire : node.gate.qubits)
                if (dag.nextOnWire(id, wire) != partner)
                    adjacent_everywhere = false;
            if (!adjacent_everywhere)
                continue;
            if (!(next.gate == node.gate.inverse()))
                continue;
            dag.removeNode(partner);
            dag.removeNode(id);
            changed = true;
            progress = true;
        }
    }
    return changed;
}

bool
ZzTemplateMatchPass::run(CircuitDag &dag)
{
    bool changed = false;
    for (std::size_t first = 0; first < dag.nodes().size(); ++first) {
        const DagNode &open_node = dag.node(first);
        if (!open_node.alive || open_node.gate.type != GateType::Cnot)
            continue;
        const std::size_t control = open_node.gate.qubits[0];
        const std::size_t target = open_node.gate.qubits[1];

        // Walk forward on the target wire collecting diagonal gates
        // until (hopefully) the partner CX.
        double theta = 0.0;
        std::vector<std::size_t> absorbed;
        std::size_t cursor = dag.nextOnWire(first, target);
        std::size_t partner = kNoNode;
        while (cursor != kNoNode) {
            const DagNode &node = dag.node(cursor);
            if (node.gate.type == GateType::Cnot &&
                node.gate.qubits == open_node.gate.qubits) {
                partner = cursor;
                break;
            }
            if (node.gate.qubits.size() != 1 ||
                !gateIsDiagonal(node.gate.type))
                break;
            theta += diagonalAngle(node.gate);
            absorbed.push_back(cursor);
            cursor = dag.nextOnWire(cursor, target);
        }
        if (partner == kNoNode || absorbed.empty())
            continue;

        // Commutativity detection on the control wire (Figure 3): any
        // gate between the two CNOTs must be diagonal so it commutes
        // with the CNOT control and can float out of the sandwich.
        bool control_clear = true;
        std::size_t scan = dag.nextOnWire(first, control);
        while (scan != kNoNode && scan != partner) {
            const DagNode &node = dag.node(scan);
            if (node.gate.qubits.size() != 1 ||
                !gateIsDiagonal(node.gate.type)) {
                control_clear = false;
                break;
            }
            scan = dag.nextOnWire(scan, control);
        }
        if (scan != partner)
            control_clear = false;
        if (!control_clear)
            continue;

        // Rewrite: drop the absorbed diagonals and the partner CX,
        // replace the first CX by Rzz(theta). Diagonals left on the
        // control wire stay where they are — they commute with Rzz.
        for (std::size_t id : absorbed)
            dag.removeNode(id);
        dag.removeNode(partner);
        dag.replaceNode(first,
                        {makeGate(GateType::Rzz, {control, target},
                                  {theta})});
        changed = true;
    }
    return changed;
}

std::vector<Gate>
DecomposeTwoQubitPass::lowerGate(const Gate &gate) const
{
    const std::size_t a = gate.qubits[0];
    const std::size_t b = gate.qubits[1];
    std::vector<Gate> out;

    auto emit_cx = [&](std::size_t control, std::size_t target) {
        if (target_.hasEdge(control, target) ||
            !target_.hasEdge(target, control)) {
            out.push_back(makeGate(GateType::Cnot, {control, target}));
        } else {
            // Direction fix: CX(c,t) = (H (x) H) CX(t,c) (H (x) H).
            out.push_back(makeGate(GateType::H, {control}));
            out.push_back(makeGate(GateType::H, {target}));
            out.push_back(makeGate(GateType::Cnot, {target, control}));
            out.push_back(makeGate(GateType::H, {control}));
            out.push_back(makeGate(GateType::H, {target}));
        }
    };

    switch (gate.type) {
      case GateType::OpenCnot:
        out.push_back(makeGate(GateType::X, {a}));
        emit_cx(a, b);
        out.push_back(makeGate(GateType::X, {a}));
        return out;
      case GateType::Cz:
        out.push_back(makeGate(GateType::H, {b}));
        emit_cx(a, b);
        out.push_back(makeGate(GateType::H, {b}));
        return out;
      case GateType::Swap:
        emit_cx(a, b);
        emit_cx(b, a);
        emit_cx(a, b);
        return out;
      case GateType::Rzz: {
        const double theta = gate.params[0];
        if (angleIsZero(theta))
            return out; // Drops to nothing.
        if (target_.augmented) {
            // Section 6.2: ZZ(theta) = (I (x) H) CR(theta) (I (x) H),
            // using whichever edge direction is calibrated (ZZ is
            // symmetric, so the H lands on the CR target qubit).
            std::size_t control = a, tgt = b;
            if (!target_.hasEdge(a, b) && target_.hasEdge(b, a)) {
                control = b;
                tgt = a;
            }
            out.push_back(makeGate(GateType::H, {tgt}));
            out.push_back(
                makeGate(GateType::Cr, {control, tgt}, {theta}));
            out.push_back(makeGate(GateType::H, {tgt}));
        } else {
            // "Textbook" two-CNOT realisation.
            emit_cx(a, b);
            out.push_back(makeGate(GateType::Rz, {b}, {theta}));
            emit_cx(a, b);
        }
        return out;
      }
      case GateType::Cnot:
        if (target_.augmented) {
            if (!target_.hasEdge(a, b) && target_.hasEdge(b, a)) {
                // Fix the direction first; the recursive structure is
                // handled by running the pass to fixpoint.
                out.push_back(makeGate(GateType::H, {a}));
                out.push_back(makeGate(GateType::H, {b}));
                out.push_back(makeGate(GateType::Cnot, {b, a}));
                out.push_back(makeGate(GateType::H, {a}));
                out.push_back(makeGate(GateType::H, {b}));
                return out;
            }
            // Pulse-level atoms (Section 5.1): CNOT = e^{-i pi/4}
            // Rz(-90)_a . Rx(-90)_b . CR(90), with the echoed CR
            // spelled out as X / CR(-45) / X / CR(45) so cancellation
            // against neighbouring gates becomes visible.
            out.push_back(makeGate(GateType::Rz, {a}, {-kPi / 2}));
            out.push_back(makeGate(GateType::DirectRx, {b}, {-kPi / 2}));
            out.push_back(makeGate(GateType::DirectX, {a}));
            out.push_back(
                makeGate(GateType::CrHalf, {a, b}, {-kPi / 4}));
            out.push_back(makeGate(GateType::DirectX, {a}));
            out.push_back(makeGate(GateType::CrHalf, {a, b}, {kPi / 4}));
            return out;
        }
        if (!target_.hasEdge(a, b) && target_.hasEdge(b, a)) {
            out.push_back(makeGate(GateType::H, {a}));
            out.push_back(makeGate(GateType::H, {b}));
            out.push_back(makeGate(GateType::Cnot, {b, a}));
            out.push_back(makeGate(GateType::H, {a}));
            out.push_back(makeGate(GateType::H, {b}));
            return out;
        }
        return {gate}; // Standard flow keeps the monolithic CX.
      default:
        return {gate};
    }
}

bool
DecomposeTwoQubitPass::run(CircuitDag &dag)
{
    bool changed = false;
    const std::size_t node_count = dag.nodes().size();
    for (std::size_t id = 0; id < node_count; ++id) {
        const DagNode &node = dag.node(id);
        if (!node.alive || node.gate.qubits.size() != 2 ||
            gateIsDirective(node.gate.type))
            continue;
        const std::vector<Gate> lowered = lowerGate(node.gate);
        if (lowered.size() == 1 && lowered[0] == node.gate)
            continue;
        dag.replaceNode(id, lowered);
        changed = true;
    }
    return changed;
}

namespace {

/** True for single-qubit unitary gates the 1q collapser may fuse. */
bool
fusable1q(const Gate &gate)
{
    return !gateIsDirective(gate.type) && gate.qubits.size() == 1;
}

/** Emit the minimal basis form of a fused 1q unitary. */
std::vector<Gate>
emit1q(const Matrix &unitary, std::size_t wire, bool augmented)
{
    const U3Angles angles = u3FromUnitary(unitary);

    // Pure frame change: keep it virtual.
    if (angleIsZero(angles.theta, 1e-9)) {
        const double total = wrapAngle(angles.phi + angles.lambda);
        if (angleIsZero(total, 1e-9))
            return {};
        return {makeGate(GateType::Rz, {wire}, {total})};
    }
    if (augmented) {
        std::vector<Gate> out = lowerU3Direct(angles, wire);
        // Drop zero-angle frame changes for cleanliness.
        std::vector<Gate> cleaned;
        for (auto &gate : out)
            if (gate.type != GateType::Rz ||
                !angleIsZero(gate.params[0], 1e-9))
                cleaned.push_back(std::move(gate));
        return cleaned;
    }
    std::vector<Gate> out = lowerU3Standard(angles, wire);
    std::vector<Gate> cleaned;
    for (auto &gate : out)
        if (gate.type != GateType::Rz ||
            !angleIsZero(gate.params[0], 1e-9))
            cleaned.push_back(std::move(gate));
    return cleaned;
}

/** Canonical form of a 1q run, used to detect no-op rewrites. */
bool
sameGateSequence(const std::vector<Gate> &a, const std::vector<Gate> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!(a[i] == b[i]))
            return false;
    return true;
}

} // namespace

bool
Collapse1qRunsPass::run(CircuitDag &dag)
{
    bool changed = false;
    for (std::size_t wire = 0; wire < dag.numQubits(); ++wire) {
        std::size_t cursor = dag.wireFront(wire);
        while (cursor != kNoNode) {
            // Collect a maximal run of fusable 1q gates on this wire.
            std::vector<std::size_t> run;
            std::size_t scan = cursor;
            while (scan != kNoNode && fusable1q(dag.node(scan).gate)) {
                run.push_back(scan);
                scan = dag.nextOnWire(scan, wire);
            }
            if (run.empty()) {
                cursor = scan != cursor ? scan
                                        : dag.nextOnWire(cursor, wire);
                continue;
            }

            // Fuse and re-emit.
            Matrix unitary = Matrix::identity(2);
            std::vector<Gate> original;
            for (std::size_t id : run) {
                unitary = dag.node(id).gate.matrix() * unitary;
                original.push_back(dag.node(id).gate);
            }
            const std::vector<Gate> emitted =
                emit1q(unitary, wire, augmented_);

            if (!sameGateSequence(emitted, original)) {
                for (std::size_t k = 1; k < run.size(); ++k)
                    dag.removeNode(run[k]);
                if (emitted.empty()) {
                    dag.removeNode(run[0]);
                } else {
                    dag.replaceNode(run[0], emitted);
                }
                changed = true;
            }
            cursor = scan;
        }
    }
    return changed;
}

bool
MergeTwoQubitRotationsPass::run(CircuitDag &dag)
{
    bool changed = false;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t id = 0; id < dag.nodes().size(); ++id) {
            const DagNode &node = dag.node(id);
            if (!node.alive)
                continue;
            if (node.gate.type != GateType::Rzz &&
                node.gate.type != GateType::Cr)
                continue;
            const std::size_t partner =
                dag.nextOnWire(id, node.gate.qubits[0]);
            if (partner == kNoNode)
                continue;
            const DagNode &next = dag.node(partner);
            if (next.gate.type != node.gate.type ||
                next.gate.qubits != node.gate.qubits)
                continue;
            bool adjacent_everywhere = true;
            for (std::size_t wire : node.gate.qubits)
                if (dag.nextOnWire(id, wire) != partner)
                    adjacent_everywhere = false;
            if (!adjacent_everywhere)
                continue;

            const double merged =
                node.gate.params[0] + next.gate.params[0];
            dag.removeNode(partner);
            if (angleIsZero(merged)) {
                dag.removeNode(id);
            } else {
                Gate fused = node.gate;
                fused.params[0] = merged;
                dag.replaceNode(id, {fused});
            }
            changed = true;
            progress = true;
        }
    }
    return changed;
}

namespace {

/** Can `gate` float rightward past `blocker` on their shared wire? */
bool
commutesThrough(const Gate &gate, const Gate &blocker, std::size_t wire)
{
    if (gateIsDirective(blocker.type))
        return false;
    if (gateIsDiagonal(gate.type)) {
        // Diagonal 1q gates commute with anything diagonal on this
        // wire and with the *control* side of CNOT / the control of Cr
        // (Z (x) X commutes with Z (x) I), and with Rzz entirely.
        if (blocker.qubits.size() == 1)
            return gateIsDiagonal(blocker.type);
        switch (blocker.type) {
          case GateType::Rzz:
          case GateType::Cz:
            return true;
          case GateType::Cnot:
          case GateType::Cr:
          case GateType::CrHalf:
            return blocker.qubits[0] == wire; // Control side only.
          default:
            return false;
        }
    }
    if (gate.type == GateType::X || gate.type == GateType::DirectX) {
        // X commutes with the *target* side of CNOT and of the
        // ZX-generated CR gates (I (x) X commutes with Z (x) X).
        switch (blocker.type) {
          case GateType::Cnot:
          case GateType::Cr:
          case GateType::CrHalf:
            return blocker.qubits[1] == wire;
          default:
            return false;
        }
    }
    return false;
}

/** Would `gate` cancel or fuse with `candidate`? */
bool
attractedTo(const Gate &gate, const Gate &candidate)
{
    if (gateIsDirective(candidate.type))
        return false;
    if (candidate.qubits.size() != 1 || gate.qubits.size() != 1)
        return false;
    if (candidate.qubits != gate.qubits)
        return false;
    // Same-family 1q gates merge in the 1q collapser; inverse pairs
    // cancel in the inverse canceller.
    if (gateIsDiagonal(gate.type) && gateIsDiagonal(candidate.type))
        return true;
    if ((gate.type == GateType::X || gate.type == GateType::DirectX) &&
        (candidate.type == GateType::X ||
         candidate.type == GateType::DirectX))
        return true;
    return false;
}

} // namespace

bool
CommutationRelocationPass::run(CircuitDag &dag)
{
    bool changed = false;
    for (std::size_t id = 0; id < dag.nodes().size(); ++id) {
        if (!dag.node(id).alive)
            continue;
        const Gate gate = dag.node(id).gate;
        if (gate.qubits.size() != 1 || gateIsDirective(gate.type))
            continue;
        const std::size_t wire = gate.qubits[0];

        // Look ahead: can this gate float to a merge partner?
        std::size_t cursor = dag.nextOnWire(id, wire);
        int hops = 0;
        bool found = false;
        while (cursor != kNoNode && hops < 8) {
            const Gate &ahead = dag.node(cursor).gate;
            if (attractedTo(gate, ahead)) {
                found = hops > 0; // Already adjacent: nothing to do.
                break;
            }
            if (!commutesThrough(gate, ahead, wire))
                break;
            cursor = dag.nextOnWire(cursor, wire);
            ++hops;
        }
        if (!found)
            continue;

        // Float the gate rightward one hop at a time.
        for (int hop = 0; hop < hops; ++hop)
            dag.swapAdjacent(id, wire);
        changed = true;
    }
    return changed;
}

PassManager
standardPassManager(const TranspilerTarget &target)
{
    TranspilerTarget standard = target;
    standard.augmented = false;
    PassManager manager;
    manager.addPass(std::make_unique<CancelAdjacentInversesPass>());
    manager.addPass(std::make_unique<DecomposeTwoQubitPass>(standard));
    manager.addPass(std::make_unique<CancelAdjacentInversesPass>());
    manager.addPass(std::make_unique<Collapse1qRunsPass>(false));
    return manager;
}

PassManager
optimizedPassManager(const TranspilerTarget &target)
{
    TranspilerTarget augmented = target;
    augmented.augmented = true;
    PassManager manager;
    manager.addPass(std::make_unique<CancelAdjacentInversesPass>());
    manager.addPass(std::make_unique<ZzTemplateMatchPass>());
    // Merge textbook Rzz chains before lowering, and stretched CR
    // rotations after: one longer pulse always beats two.
    manager.addPass(std::make_unique<MergeTwoQubitRotationsPass>());
    manager.addPass(std::make_unique<DecomposeTwoQubitPass>(augmented));
    manager.addPass(std::make_unique<MergeTwoQubitRotationsPass>());
    manager.addPass(std::make_unique<CommutationRelocationPass>());
    manager.addPass(std::make_unique<CancelAdjacentInversesPass>());
    manager.addPass(std::make_unique<Collapse1qRunsPass>(true));
    return manager;
}

} // namespace qpulse
