#include "circuit/circuit.h"

#include <algorithm>
#include <sstream>

#include "linalg/gates.h"

namespace qpulse {

QuantumCircuit::QuantumCircuit(std::size_t n_qubits) : numQubits_(n_qubits)
{
    qpulseRequire(n_qubits > 0, "circuit needs at least one qubit");
}

void
QuantumCircuit::append(Gate gate)
{
    for (std::size_t wire : gate.qubits)
        qpulseRequire(wire < numQubits_, "gate ", gate.toString(),
                      " targets out-of-range wire on a ", numQubits_,
                      "-qubit circuit");
    if (gate.qubits.size() == 2)
        qpulseRequire(gate.qubits[0] != gate.qubits[1],
                      "two-qubit gate on identical wires");
    gates_.push_back(std::move(gate));
}

void
QuantumCircuit::extend(const QuantumCircuit &other)
{
    qpulseRequire(other.numQubits_ <= numQubits_,
                  "extend with a wider circuit");
    for (const auto &gate : other.gates_)
        append(gate);
}

void
QuantumCircuit::measureAll()
{
    for (std::size_t q = 0; q < numQubits_; ++q)
        measure(q);
}

void
QuantumCircuit::barrier()
{
    gates_.push_back(Gate{GateType::Barrier, {}, {}});
}

std::size_t
QuantumCircuit::countType(GateType type) const
{
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(),
                      [&](const Gate &g) { return g.type == type; }));
}

std::size_t
QuantumCircuit::twoQubitGateCount() const
{
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(), [](const Gate &g) {
            return !gateIsDirective(g.type) && g.qubits.size() == 2;
        }));
}

QuantumCircuit
QuantumCircuit::withoutDirectives() const
{
    QuantumCircuit result(numQubits_);
    for (const auto &gate : gates_)
        if (!gateIsDirective(gate.type))
            result.append(gate);
    return result;
}

Matrix
QuantumCircuit::unitary() const
{
    const std::size_t dim = std::size_t{1} << numQubits_;
    Matrix result = Matrix::identity(dim);
    for (const auto &gate : gates_) {
        if (gateIsDirective(gate.type))
            continue;
        Matrix embedded;
        if (gate.qubits.size() == 1) {
            embedded = gates::embed1q(gate.matrix(), gate.qubits[0],
                                      numQubits_);
        } else {
            embedded = gates::embed2q(gate.matrix(), gate.qubits[0],
                                      gate.qubits[1], numQubits_);
        }
        result = embedded * result;
    }
    return result;
}

Vector
QuantumCircuit::runStatevector() const
{
    const std::size_t dim = std::size_t{1} << numQubits_;
    Vector state(dim);
    state[0] = Complex{1.0, 0.0};
    for (const auto &gate : gates_) {
        if (gateIsDirective(gate.type))
            continue;
        Matrix embedded;
        if (gate.qubits.size() == 1) {
            embedded = gates::embed1q(gate.matrix(), gate.qubits[0],
                                      numQubits_);
        } else {
            embedded = gates::embed2q(gate.matrix(), gate.qubits[0],
                                      gate.qubits[1], numQubits_);
        }
        state = embedded.apply(state);
    }
    return state;
}

QuantumCircuit
QuantumCircuit::inverse() const
{
    QuantumCircuit result(numQubits_);
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
        if (gateIsDirective(it->type))
            continue;
        result.append(it->inverse());
    }
    return result;
}

std::string
QuantumCircuit::toString() const
{
    std::ostringstream os;
    os << "qreg q[" << numQubits_ << "];\n";
    for (const auto &gate : gates_)
        os << gate.toString() << ";\n";
    return os.str();
}

} // namespace qpulse
