#include "circuit/gate.h"

#include <cmath>
#include <sstream>

#include "common/constants.h"
#include "linalg/gates.h"

namespace qpulse {

std::string
gateName(GateType type)
{
    switch (type) {
      case GateType::I:        return "id";
      case GateType::H:        return "h";
      case GateType::X:        return "x";
      case GateType::Y:        return "y";
      case GateType::Z:        return "z";
      case GateType::S:        return "s";
      case GateType::Sdg:      return "sdg";
      case GateType::T:        return "t";
      case GateType::Tdg:      return "tdg";
      case GateType::Rx:       return "rx";
      case GateType::Ry:       return "ry";
      case GateType::Rz:       return "rz";
      case GateType::U1:       return "u1";
      case GateType::U2:       return "u2";
      case GateType::U3:       return "u3";
      case GateType::Cnot:     return "cx";
      case GateType::Cz:       return "cz";
      case GateType::Swap:     return "swap";
      case GateType::Rzz:      return "rzz";
      case GateType::OpenCnot: return "open_cx";
      case GateType::X90:      return "x90";
      case GateType::DirectX:  return "direct_x";
      case GateType::DirectRx: return "direct_rx";
      case GateType::Cr:       return "cr";
      case GateType::CrHalf:   return "cr_half";
      case GateType::Measure:  return "measure";
      case GateType::Barrier:  return "barrier";
    }
    qpulsePanic("unknown gate type");
}

std::size_t
gateArity(GateType type)
{
    switch (type) {
      case GateType::Cnot:
      case GateType::Cz:
      case GateType::Swap:
      case GateType::Rzz:
      case GateType::OpenCnot:
      case GateType::Cr:
      case GateType::CrHalf:
        return 2;
      case GateType::Barrier:
        return 0;
      default:
        return 1;
    }
}

std::size_t
gateParamCount(GateType type)
{
    switch (type) {
      case GateType::Rx:
      case GateType::Ry:
      case GateType::Rz:
      case GateType::U1:
      case GateType::Rzz:
      case GateType::DirectRx:
      case GateType::Cr:
      case GateType::CrHalf:
        return 1;
      case GateType::U2:
        return 2;
      case GateType::U3:
        return 3;
      default:
        return 0;
    }
}

bool
gateIsDirective(GateType type)
{
    return type == GateType::Measure || type == GateType::Barrier;
}

bool
gateIsAugmented(GateType type)
{
    switch (type) {
      case GateType::DirectX:
      case GateType::DirectRx:
      case GateType::Cr:
      case GateType::CrHalf:
        return true;
      default:
        return false;
    }
}

Matrix
Gate::matrix() const
{
    qpulseRequire(!gateIsDirective(type),
                  "directive gate has no matrix: ", gateName(type));
    switch (type) {
      case GateType::I:        return gates::i2();
      case GateType::H:        return gates::h();
      case GateType::X:        return gates::x();
      case GateType::Y:        return gates::y();
      case GateType::Z:        return gates::z();
      case GateType::S:        return gates::s();
      case GateType::Sdg:      return gates::sdg();
      case GateType::T:        return gates::t();
      case GateType::Tdg:      return gates::tdg();
      case GateType::Rx:       return gates::rx(params[0]);
      case GateType::Ry:       return gates::ry(params[0]);
      case GateType::Rz:       return gates::rz(params[0]);
      case GateType::U1:       return gates::u1(params[0]);
      case GateType::U2:
        return gates::u3(kPi / 2, params[0], params[1]);
      case GateType::U3:
        return gates::u3(params[0], params[1], params[2]);
      case GateType::Cnot:     return gates::cnot();
      case GateType::Cz:       return gates::cz();
      case GateType::Swap:     return gates::swap();
      case GateType::Rzz:      return gates::zz(params[0]);
      case GateType::OpenCnot: return gates::openCnot();
      case GateType::X90:      return gates::rx(kPi / 2);
      case GateType::DirectX:  return gates::rx(kPi);
      case GateType::DirectRx: return gates::rx(params[0]);
      case GateType::Cr:       return gates::cr(params[0]);
      case GateType::CrHalf:   return gates::cr(params[0]);
      case GateType::Measure:
      case GateType::Barrier:
        break;
    }
    qpulsePanic("unhandled gate type in matrix()");
}

Gate
Gate::inverse() const
{
    qpulseRequire(!gateIsDirective(type),
                  "directive gate has no inverse: ", gateName(type));
    Gate inv = *this;
    switch (type) {
      case GateType::S:   inv.type = GateType::Sdg; return inv;
      case GateType::Sdg: inv.type = GateType::S; return inv;
      case GateType::T:   inv.type = GateType::Tdg; return inv;
      case GateType::Tdg: inv.type = GateType::T; return inv;
      case GateType::Rx:
      case GateType::Ry:
      case GateType::Rz:
      case GateType::U1:
      case GateType::Rzz:
      case GateType::DirectRx:
      case GateType::Cr:
      case GateType::CrHalf:
        inv.params[0] = -params[0];
        return inv;
      case GateType::X90:
        // Inverse of Rx(90) is Rx(-90): represent as DirectRx(-pi/2).
        inv.type = GateType::DirectRx;
        inv.params = {-kPi / 2};
        return inv;
      case GateType::U2:
        // u2(phi, lambda) = u3(pi/2, phi, lambda); the U3 inverse rule
        // gives u3(-pi/2, -lambda, -phi).
        inv.type = GateType::U3;
        inv.params = {-kPi / 2, -params[1], -params[0]};
        return inv;
      case GateType::U3:
        inv.params = {-params[0], -params[2], -params[1]};
        return inv;
      default:
        // Self-inverse gates (I, H, X, Y, Z, CX, CZ, SWAP, OpenCnot,
        // DirectX).
        return inv;
    }
}

std::string
Gate::toString() const
{
    std::ostringstream os;
    os << gateName(type);
    if (!params.empty()) {
        os << "(";
        for (std::size_t i = 0; i < params.size(); ++i)
            os << (i ? "," : "") << params[i];
        os << ")";
    }
    for (std::size_t i = 0; i < qubits.size(); ++i)
        os << (i ? "," : " ") << "q[" << qubits[i] << "]";
    return os.str();
}

bool
Gate::operator==(const Gate &other) const
{
    if (type != other.type || qubits != other.qubits ||
        params.size() != other.params.size())
        return false;
    for (std::size_t i = 0; i < params.size(); ++i)
        if (std::abs(params[i] - other.params[i]) > 1e-12)
            return false;
    return true;
}

Gate
makeGate(GateType type, std::vector<std::size_t> qubits,
         std::vector<double> params)
{
    const std::size_t arity = gateArity(type);
    if (arity != 0)
        qpulseRequire(qubits.size() == arity, "gate ", gateName(type),
                      " expects ", arity, " qubits, got ", qubits.size());
    qpulseRequire(params.size() == gateParamCount(type), "gate ",
                  gateName(type), " expects ", gateParamCount(type),
                  " params, got ", params.size());
    return Gate{type, std::move(qubits), std::move(params)};
}

} // namespace qpulse
