/**
 * @file
 * DAG representation of a quantum circuit.
 *
 * The transpiler passes of Section 3.3 operate on a DAG whose nodes are
 * gates and whose edges are the per-wire data dependencies. Nodes are
 * stored in a stable vector with alive flags so passes can remove and
 * replace nodes without invalidating indices mid-walk; conversion back
 * to a QuantumCircuit performs a topological linearisation.
 */
#ifndef QPULSE_CIRCUIT_DAG_H
#define QPULSE_CIRCUIT_DAG_H

#include <optional>
#include <vector>

#include "circuit/circuit.h"

namespace qpulse {

/** Sentinel meaning "no node". */
inline constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

/** One node of the circuit DAG. */
struct DagNode
{
    Gate gate;
    bool alive = true;
    /** Per operand wire: previous node index on that wire (kNoNode). */
    std::vector<std::size_t> prev;
    /** Per operand wire: next node index on that wire (kNoNode). */
    std::vector<std::size_t> next;
};

/**
 * Circuit DAG with per-wire linked structure.
 */
class CircuitDag
{
  public:
    /** Build the DAG from a circuit (barriers act as full-width gates). */
    explicit CircuitDag(const QuantumCircuit &circuit);

    std::size_t numQubits() const { return numQubits_; }

    /** All node slots, including dead ones. */
    const std::vector<DagNode> &nodes() const { return nodes_; }
    DagNode &node(std::size_t id) { return nodes_[id]; }
    const DagNode &node(std::size_t id) const { return nodes_[id]; }

    /** Number of alive nodes. */
    std::size_t aliveCount() const;

    /** First alive node on the wire, or kNoNode. */
    std::size_t wireFront(std::size_t wire) const { return front_[wire]; }

    /** Successor of a node along one of its wires, or kNoNode. */
    std::size_t nextOnWire(std::size_t id, std::size_t wire) const;

    /** Predecessor of a node along one of its wires, or kNoNode. */
    std::size_t prevOnWire(std::size_t id, std::size_t wire) const;

    /** Remove a node, stitching its per-wire neighbours together. */
    void removeNode(std::size_t id);

    /**
     * Replace a node by a sequence of gates acting on (a subset of) the
     * same wires, preserving the node's position in every wire order.
     * @return Indices of the inserted nodes, in order.
     */
    std::vector<std::size_t> replaceNode(std::size_t id,
                                         const std::vector<Gate> &gates);

    /**
     * Swap a node with its successor on the given wire (both must be
     * single-wire-adjacent, i.e. share exactly that wire). Used by the
     * commutativity-detection pass to float gates past each other.
     */
    void swapAdjacent(std::size_t id, std::size_t wire);

    /** Topologically linearised circuit. */
    QuantumCircuit toCircuit() const;

    /** Index of the operand slot of `wire` within node `id`. */
    std::size_t operandIndex(std::size_t id, std::size_t wire) const;

  private:
    void linkAtEnd(std::size_t id);

    std::size_t numQubits_;
    std::vector<DagNode> nodes_;
    std::vector<std::size_t> front_; ///< First node per wire.
    std::vector<std::size_t> back_;  ///< Last node per wire.
};

} // namespace qpulse

#endif // QPULSE_CIRCUIT_DAG_H
