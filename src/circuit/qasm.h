/**
 * @file
 * OpenQASM 2.0 front end: parse a practical subset of the assembly
 * language the paper's toolchain consumes (Section 3.1.2, [6]) into a
 * QuantumCircuit, and serialise circuits back out. Supported:
 *
 *   OPENQASM 2.0;             (optional, ignored)
 *   include "qelib1.inc";     (ignored)
 *   qreg q[N];                (single register)
 *   creg c[N];                (parsed, ignored)
 *   h/x/y/z/s/sdg/t/tdg/id q[i];
 *   rx(expr)/ry(expr)/rz(expr)/u1(expr) q[i];
 *   u2(e1,e2) q[i];  u3(e1,e2,e3) q[i];
 *   cx/cz/swap q[i],q[j];  rzz(expr) q[i],q[j];
 *   measure q[i] -> c[i];  barrier ...;
 *
 * Angle expressions support pi, numeric literals, + - * / and
 * parentheses. Comments (// ...) are stripped.
 */
#ifndef QPULSE_CIRCUIT_QASM_H
#define QPULSE_CIRCUIT_QASM_H

#include <string>

#include "circuit/circuit.h"

namespace qpulse {

/** Parse OpenQASM 2.0 source into a circuit; fatal on syntax errors. */
QuantumCircuit parseQasm(const std::string &source);

/** Serialise a circuit to OpenQASM 2.0 (assembly-level gates only). */
std::string toQasm(const QuantumCircuit &circuit);

} // namespace qpulse

#endif // QPULSE_CIRCUIT_QASM_H
