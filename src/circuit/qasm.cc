#include "circuit/qasm.h"

#include <cctype>
#include <cmath>
#include <map>
#include <optional>
#include <sstream>

#include "common/constants.h"
#include "common/logging.h"

namespace qpulse {

namespace {

/**
 * Recursive-descent evaluator for angle expressions:
 * expr := term (('+'|'-') term)*
 * term := factor (('*'|'/') factor)*
 * factor := number | 'pi' | '-' factor | '(' expr ')'
 */
class ExprParser
{
  public:
    explicit ExprParser(const std::string &text) : text_(text) {}

    double parse()
    {
        const double value = parseExpr();
        skipSpace();
        qpulseRequire(pos_ == text_.size(),
                      "trailing characters in angle expression \"",
                      text_, "\"");
        return value;
    }

  private:
    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool eat(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    double parseExpr()
    {
        double value = parseTerm();
        while (true) {
            if (eat('+'))
                value += parseTerm();
            else if (eat('-'))
                value -= parseTerm();
            else
                return value;
        }
    }

    double parseTerm()
    {
        double value = parseFactor();
        while (true) {
            if (eat('*'))
                value *= parseFactor();
            else if (eat('/')) {
                const double rhs = parseFactor();
                qpulseRequire(rhs != 0.0,
                              "division by zero in angle expression");
                value /= rhs;
            } else
                return value;
        }
    }

    double parseFactor()
    {
        skipSpace();
        if (eat('-'))
            return -parseFactor();
        if (eat('('))
        {
            const double value = parseExpr();
            qpulseRequire(eat(')'), "missing ')' in angle expression \"",
                          text_, "\"");
            return value;
        }
        if (text_.compare(pos_, 2, "pi") == 0) {
            pos_ += 2;
            return kPi;
        }
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' ||
                ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))))
            ++pos_;
        qpulseRequire(pos_ > start, "expected a number in \"", text_,
                      "\" at offset ", start);
        return std::stod(text_.substr(start, pos_ - start));
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Strip // comments and split the source into ';'-terminated
 *  statements. */
std::vector<std::string>
splitStatements(const std::string &source)
{
    std::string cleaned;
    cleaned.reserve(source.size());
    for (std::size_t i = 0; i < source.size(); ++i) {
        if (source[i] == '/' && i + 1 < source.size() &&
            source[i + 1] == '/') {
            while (i < source.size() && source[i] != '\n')
                ++i;
            continue;
        }
        cleaned += source[i];
    }

    std::vector<std::string> statements;
    std::string current;
    for (char c : cleaned) {
        if (c == ';') {
            statements.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    // Trailing non-';' content must be blank.
    for (char c : current)
        qpulseRequire(std::isspace(static_cast<unsigned char>(c)),
                      "QASM source does not end with ';'");
    return statements;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0, end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

/** Parse "q[3]" (register name ignored, must match the qreg). */
std::size_t
parseQubitRef(const std::string &text, const std::string &reg_name)
{
    const std::string t = trim(text);
    const std::size_t open = t.find('[');
    const std::size_t close = t.find(']');
    qpulseRequire(open != std::string::npos && close != std::string::npos &&
                      close > open,
                  "malformed qubit reference \"", text, "\"");
    const std::string name = trim(t.substr(0, open));
    qpulseRequire(name == reg_name, "unknown register \"", name,
                  "\" (declared: \"", reg_name, "\")");
    return static_cast<std::size_t>(
        std::stoul(t.substr(open + 1, close - open - 1)));
}

/** Split "a,b,c" at top level (no nested parens expected here). */
std::vector<std::string>
splitArgs(const std::string &text)
{
    std::vector<std::string> parts;
    std::string current;
    int depth = 0;
    for (char c : text) {
        if (c == '(')
            ++depth;
        if (c == ')')
            --depth;
        if (c == ',' && depth == 0) {
            parts.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!trim(current).empty())
        parts.push_back(current);
    return parts;
}

} // namespace

QuantumCircuit
parseQasm(const std::string &source)
{
    const std::vector<std::string> statements = splitStatements(source);

    std::optional<QuantumCircuit> circuit;
    std::string qreg_name;

    for (const std::string &raw : statements) {
        const std::string statement = trim(raw);
        if (statement.empty())
            continue;

        // Header / declarations.
        if (statement.rfind("OPENQASM", 0) == 0 ||
            statement.rfind("include", 0) == 0)
            continue;
        if (statement.rfind("qreg", 0) == 0) {
            qpulseRequire(!circuit.has_value(),
                          "only one qreg is supported");
            const std::string decl = trim(statement.substr(4));
            const std::size_t open = decl.find('[');
            const std::size_t close = decl.find(']');
            qpulseRequire(open != std::string::npos &&
                              close != std::string::npos,
                          "malformed qreg declaration \"", statement,
                          "\"");
            qreg_name = trim(decl.substr(0, open));
            const std::size_t width = std::stoul(
                decl.substr(open + 1, close - open - 1));
            circuit.emplace(width);
            continue;
        }
        if (statement.rfind("creg", 0) == 0)
            continue;

        qpulseRequire(circuit.has_value(),
                      "gate statement before qreg declaration: \"",
                      statement, "\"");

        // Measurement.
        if (statement.rfind("measure", 0) == 0) {
            const std::string rest = trim(statement.substr(7));
            const std::size_t arrow = rest.find("->");
            const std::string qubit_text =
                arrow == std::string::npos ? rest
                                           : trim(rest.substr(0, arrow));
            circuit->measure(parseQubitRef(qubit_text, qreg_name));
            continue;
        }
        if (statement.rfind("barrier", 0) == 0) {
            circuit->barrier();
            continue;
        }

        // Gate: name[(params)] operands.
        std::size_t name_end = 0;
        while (name_end < statement.size() &&
               (std::isalnum(static_cast<unsigned char>(
                    statement[name_end])) ||
                statement[name_end] == '_'))
            ++name_end;
        const std::string name = statement.substr(0, name_end);
        std::string rest = trim(statement.substr(name_end));

        std::vector<double> params;
        if (!rest.empty() && rest[0] == '(') {
            const std::size_t close = rest.rfind(')');
            qpulseRequire(close != std::string::npos,
                          "missing ')' in \"", statement, "\"");
            for (const std::string &param :
                 splitArgs(rest.substr(1, close - 1)))
                params.push_back(ExprParser(trim(param)).parse());
            rest = trim(rest.substr(close + 1));
        }

        std::vector<std::size_t> qubits;
        for (const std::string &operand : splitArgs(rest))
            qubits.push_back(parseQubitRef(operand, qreg_name));

        static const std::map<std::string, GateType> gate_names = {
            {"id", GateType::I},     {"h", GateType::H},
            {"x", GateType::X},      {"y", GateType::Y},
            {"z", GateType::Z},      {"s", GateType::S},
            {"sdg", GateType::Sdg},  {"t", GateType::T},
            {"tdg", GateType::Tdg},  {"rx", GateType::Rx},
            {"ry", GateType::Ry},    {"rz", GateType::Rz},
            {"u1", GateType::U1},    {"u2", GateType::U2},
            {"u3", GateType::U3},    {"cx", GateType::Cnot},
            {"CX", GateType::Cnot},  {"cz", GateType::Cz},
            {"swap", GateType::Swap},{"rzz", GateType::Rzz},
        };
        const auto it = gate_names.find(name);
        qpulseRequire(it != gate_names.end(), "unsupported QASM gate \"",
                      name, "\"");
        circuit->append(makeGate(it->second, qubits, params));
    }

    qpulseRequire(circuit.has_value(), "QASM source declares no qreg");
    return *circuit;
}

std::string
toQasm(const QuantumCircuit &circuit)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "qreg q[" << circuit.numQubits() << "];\n";
    os << "creg c[" << circuit.numQubits() << "];\n";
    for (const auto &gate : circuit.gates()) {
        if (gate.type == GateType::Barrier) {
            os << "barrier q;\n";
            continue;
        }
        if (gate.type == GateType::Measure) {
            os << "measure q[" << gate.qubits[0] << "] -> c["
               << gate.qubits[0] << "];\n";
            continue;
        }
        qpulseRequire(!gateIsAugmented(gate.type) &&
                          gate.type != GateType::X90 &&
                          gate.type != GateType::OpenCnot,
                      "gate ", gateName(gate.type),
                      " has no OpenQASM 2.0 spelling");
        os << gateName(gate.type);
        if (!gate.params.empty()) {
            os << "(";
            for (std::size_t i = 0; i < gate.params.size(); ++i)
                os << (i ? "," : "") << gate.params[i];
            os << ")";
        }
        os << " ";
        for (std::size_t i = 0; i < gate.qubits.size(); ++i)
            os << (i ? ",q[" : "q[") << gate.qubits[i] << "]";
        os << ";\n";
    }
    return os.str();
}

} // namespace qpulse
