#include "circuit/dag.h"

#include <algorithm>

namespace qpulse {

CircuitDag::CircuitDag(const QuantumCircuit &circuit)
    : numQubits_(circuit.numQubits()),
      front_(circuit.numQubits(), kNoNode),
      back_(circuit.numQubits(), kNoNode)
{
    nodes_.reserve(circuit.size());
    for (const auto &gate : circuit.gates()) {
        Gate stored = gate;
        if (stored.type == GateType::Barrier && stored.qubits.empty()) {
            // A bare barrier spans the whole register.
            stored.qubits.resize(numQubits_);
            for (std::size_t q = 0; q < numQubits_; ++q)
                stored.qubits[q] = q;
        }
        DagNode node;
        node.gate = std::move(stored);
        node.prev.assign(node.gate.qubits.size(), kNoNode);
        node.next.assign(node.gate.qubits.size(), kNoNode);
        nodes_.push_back(std::move(node));
        linkAtEnd(nodes_.size() - 1);
    }
}

void
CircuitDag::linkAtEnd(std::size_t id)
{
    DagNode &node = nodes_[id];
    for (std::size_t slot = 0; slot < node.gate.qubits.size(); ++slot) {
        const std::size_t wire = node.gate.qubits[slot];
        const std::size_t tail = back_[wire];
        node.prev[slot] = tail;
        if (tail == kNoNode) {
            front_[wire] = id;
        } else {
            DagNode &prev_node = nodes_[tail];
            prev_node.next[operandIndex(tail, wire)] = id;
        }
        back_[wire] = id;
    }
}

std::size_t
CircuitDag::aliveCount() const
{
    return static_cast<std::size_t>(
        std::count_if(nodes_.begin(), nodes_.end(),
                      [](const DagNode &n) { return n.alive; }));
}

std::size_t
CircuitDag::operandIndex(std::size_t id, std::size_t wire) const
{
    const DagNode &node = nodes_[id];
    for (std::size_t slot = 0; slot < node.gate.qubits.size(); ++slot)
        if (node.gate.qubits[slot] == wire)
            return slot;
    qpulsePanic("node ", id, " does not touch wire ", wire);
}

std::size_t
CircuitDag::nextOnWire(std::size_t id, std::size_t wire) const
{
    return nodes_[id].next[operandIndex(id, wire)];
}

std::size_t
CircuitDag::prevOnWire(std::size_t id, std::size_t wire) const
{
    return nodes_[id].prev[operandIndex(id, wire)];
}

void
CircuitDag::removeNode(std::size_t id)
{
    DagNode &node = nodes_[id];
    qpulseAssert(node.alive, "removing a dead node");
    for (std::size_t slot = 0; slot < node.gate.qubits.size(); ++slot) {
        const std::size_t wire = node.gate.qubits[slot];
        const std::size_t before = node.prev[slot];
        const std::size_t after = node.next[slot];
        if (before == kNoNode)
            front_[wire] = after;
        else
            nodes_[before].next[operandIndex(before, wire)] = after;
        if (after == kNoNode)
            back_[wire] = before;
        else
            nodes_[after].prev[operandIndex(after, wire)] = before;
    }
    node.alive = false;
}

std::vector<std::size_t>
CircuitDag::replaceNode(std::size_t id, const std::vector<Gate> &gates)
{
    const DagNode original = nodes_[id];
    qpulseAssert(original.alive, "replacing a dead node");
    for (const auto &gate : gates)
        for (std::size_t wire : gate.qubits)
            qpulseAssert(std::find(original.gate.qubits.begin(),
                                   original.gate.qubits.end(), wire) !=
                             original.gate.qubits.end(),
                         "replacement gate leaves the original wires");

    // Per wire, track the node the next insertion should hang after.
    std::vector<std::size_t> tail_on_wire(numQubits_, kNoNode);
    std::vector<bool> wire_touched(numQubits_, false);
    for (std::size_t slot = 0; slot < original.gate.qubits.size();
         ++slot) {
        const std::size_t wire = original.gate.qubits[slot];
        tail_on_wire[wire] = original.prev[slot];
        wire_touched[wire] = true;
    }

    removeNode(id);

    std::vector<std::size_t> inserted;
    inserted.reserve(gates.size());
    for (const auto &gate : gates) {
        DagNode node;
        node.gate = gate;
        node.prev.assign(gate.qubits.size(), kNoNode);
        node.next.assign(gate.qubits.size(), kNoNode);
        nodes_.push_back(std::move(node));
        const std::size_t new_id = nodes_.size() - 1;
        // Splice onto each wire after the current tail.
        DagNode &fresh = nodes_[new_id];
        for (std::size_t slot = 0; slot < fresh.gate.qubits.size();
             ++slot) {
            const std::size_t wire = fresh.gate.qubits[slot];
            const std::size_t before = tail_on_wire[wire];
            std::size_t after;
            if (before == kNoNode)
                after = front_[wire];
            else
                after = nodes_[before].next[operandIndex(before, wire)];
            // Rewire the wire gap around the original position: the gap
            // on this wire is (before -> after); insert fresh between.
            fresh.prev[slot] = before;
            fresh.next[slot] = after;
            if (before == kNoNode)
                front_[wire] = new_id;
            else
                nodes_[before].next[operandIndex(before, wire)] = new_id;
            if (after == kNoNode)
                back_[wire] = new_id;
            else
                nodes_[after].prev[operandIndex(after, wire)] = new_id;
            tail_on_wire[wire] = new_id;
        }
        inserted.push_back(new_id);
    }
    return inserted;
}

void
CircuitDag::swapAdjacent(std::size_t id, std::size_t wire)
{
    const std::size_t after = nextOnWire(id, wire);
    qpulseAssert(after != kNoNode, "swapAdjacent at wire tail");

    DagNode &a = nodes_[id];
    DagNode &b = nodes_[after];

    // Both nodes must touch no shared wire other than `wire`, otherwise
    // the swap would not be a pure reordering on a single wire.
    for (std::size_t wa : a.gate.qubits)
        for (std::size_t wb : b.gate.qubits)
            qpulseAssert(wa != wb || wa == wire,
                         "swapAdjacent nodes share an extra wire");

    const std::size_t slot_a = operandIndex(id, wire);
    const std::size_t slot_b = operandIndex(after, wire);
    const std::size_t before = a.prev[slot_a];
    const std::size_t beyond = b.next[slot_b];

    // before -> b -> a -> beyond on this wire.
    if (before == kNoNode)
        front_[wire] = after;
    else
        nodes_[before].next[operandIndex(before, wire)] = after;
    b.prev[slot_b] = before;
    b.next[slot_b] = id;
    a.prev[slot_a] = after;
    a.next[slot_a] = beyond;
    if (beyond == kNoNode)
        back_[wire] = id;
    else
        nodes_[beyond].prev[operandIndex(beyond, wire)] = id;
}

QuantumCircuit
CircuitDag::toCircuit() const
{
    QuantumCircuit circuit(numQubits_);

    // Kahn-style topological linearisation that prefers original node
    // order for determinism.
    std::vector<std::size_t> pending_inputs(nodes_.size(), 0);
    std::vector<std::size_t> ready;
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
        const DagNode &node = nodes_[id];
        if (!node.alive)
            continue;
        std::size_t count = 0;
        for (std::size_t p : node.prev)
            if (p != kNoNode)
                ++count;
        pending_inputs[id] = count;
        if (count == 0)
            ready.push_back(id);
    }

    std::size_t emitted = 0;
    while (!ready.empty()) {
        // Smallest id first for stable output.
        const auto it = std::min_element(ready.begin(), ready.end());
        const std::size_t id = *it;
        ready.erase(it);

        const DagNode &node = nodes_[id];
        Gate gate = node.gate;
        if (gate.type == GateType::Barrier)
            gate.qubits.clear();
        circuit.append(std::move(gate));
        ++emitted;

        for (std::size_t successor : node.next) {
            if (successor == kNoNode)
                continue;
            qpulseAssert(pending_inputs[successor] > 0,
                         "DAG inconsistency in toCircuit");
            if (--pending_inputs[successor] == 0)
                ready.push_back(successor);
        }
    }
    qpulseAssert(emitted == aliveCount(),
                 "DAG linearisation dropped nodes: cycle?");
    return circuit;
}

} // namespace qpulse
