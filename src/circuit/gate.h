/**
 * @file
 * Gate vocabulary for the three circuit-level stages of Table 1:
 * assembly gates (hardware-agnostic), the standard basis gates that
 * IBM-style backends expose (u1/u2/u3/cx), and the augmented basis
 * gates this paper introduces (DirectX, DirectRx, CR(theta), and the
 * echoed-CR atomic primitives).
 */
#ifndef QPULSE_CIRCUIT_GATE_H
#define QPULSE_CIRCUIT_GATE_H

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace qpulse {

/**
 * Every operation the compiler ever materialises. The comment per
 * enumerator gives arity / parameter count.
 */
enum class GateType
{
    // --- assembly-level gates (Section 3.1.2) ---
    I,        ///< 1q / 0p identity (explicit idle)
    H,        ///< 1q / 0p Hadamard
    X,        ///< 1q / 0p NOT
    Y,        ///< 1q / 0p
    Z,        ///< 1q / 0p
    S,        ///< 1q / 0p
    Sdg,      ///< 1q / 0p
    T,        ///< 1q / 0p
    Tdg,      ///< 1q / 0p
    Rx,       ///< 1q / 1p rotation about X
    Ry,       ///< 1q / 1p rotation about Y
    Rz,       ///< 1q / 1p rotation about Z (virtual, zero cost)
    U1,       ///< 1q / 1p phase gate
    U2,       ///< 1q / 2p sqrt-X class gate
    U3,       ///< 1q / 3p generic single-qubit gate
    Cnot,     ///< 2q / 0p controlled-NOT (control first)
    Cz,       ///< 2q / 0p controlled-Z
    Swap,     ///< 2q / 0p
    Rzz,      ///< 2q / 1p ZZ interaction exp(-i theta/2 ZZ) (Section 6)
    OpenCnot, ///< 2q / 0p 0-controlled NOT (Section 5.2)

    // --- standard basis gates (Section 3.1.3, IBM backend set) ---
    X90,      ///< 1q / 0p calibrated Rx(90 deg) pulse-backed gate

    // --- augmented basis gates (this paper) ---
    DirectX,  ///< 1q / 0p pre-calibrated Rx(180 deg) pulse (Section 4.1)
    DirectRx, ///< 1q / 1p amplitude-scaled Rx(theta) pulse (Section 4.2)
    Cr,       ///< 2q / 1p echoed cross-resonance CR(theta) (Section 6)
    CrHalf,   ///< 2q / 1p single (unechoed) CR pulse half (Section 5.1)

    // --- non-unitary markers ---
    Measure,  ///< 1q / 0p computational-basis measurement
    Barrier,  ///< nq / 0p scheduling barrier
};

/** Human-readable lowercase mnemonic, e.g. "cx", "direct_rx". */
std::string gateName(GateType type);

/** Number of qubits the gate acts on (0 means variadic: Barrier). */
std::size_t gateArity(GateType type);

/** Number of real parameters the gate carries. */
std::size_t gateParamCount(GateType type);

/** True for Measure/Barrier, which have no unitary matrix. */
bool gateIsDirective(GateType type);

/** True for the augmented basis gates introduced by the paper. */
bool gateIsAugmented(GateType type);

/**
 * One gate application in a circuit: type, target wires and parameters
 * (angles in radians).
 */
struct Gate
{
    GateType type;
    std::vector<std::size_t> qubits;
    std::vector<double> params;

    /** Unitary matrix of the bare gate (2x2 or 4x4). */
    Matrix matrix() const;

    /** The inverse gate (panics for directives). */
    Gate inverse() const;

    /** Text form, e.g. "rz(1.5708) q[2]". */
    std::string toString() const;

    bool operator==(const Gate &other) const;
};

/** Construct helpers. */
Gate makeGate(GateType type, std::vector<std::size_t> qubits,
              std::vector<double> params = {});

} // namespace qpulse

#endif // QPULSE_CIRCUIT_GATE_H
