/**
 * @file
 * QuantumCircuit: an ordered gate list over an n-qubit register, with
 * builder helpers for every assembly gate, unitary evaluation, and a
 * QASM-flavoured text dump. The circuit is the "assembly" stage of
 * Table 1; the transpiler (src/transpile) rewrites it toward the basis
 * and augmented-basis stages.
 */
#ifndef QPULSE_CIRCUIT_CIRCUIT_H
#define QPULSE_CIRCUIT_CIRCUIT_H

#include <string>
#include <vector>

#include "circuit/gate.h"
#include "linalg/matrix.h"

namespace qpulse {

/**
 * Ordered sequence of gates on a fixed-width qubit register.
 */
class QuantumCircuit
{
  public:
    /** Circuit over n qubits, initially empty. */
    explicit QuantumCircuit(std::size_t n_qubits);

    std::size_t numQubits() const { return numQubits_; }

    /** Append a pre-built gate (validates wire indices). */
    void append(Gate gate);

    /** Append all gates of another circuit (widths must match). */
    void extend(const QuantumCircuit &other);

    // Builder helpers, one per assembly gate.
    void i(std::size_t q)   { append(makeGate(GateType::I, {q})); }
    void h(std::size_t q)   { append(makeGate(GateType::H, {q})); }
    void x(std::size_t q)   { append(makeGate(GateType::X, {q})); }
    void y(std::size_t q)   { append(makeGate(GateType::Y, {q})); }
    void z(std::size_t q)   { append(makeGate(GateType::Z, {q})); }
    void s(std::size_t q)   { append(makeGate(GateType::S, {q})); }
    void sdg(std::size_t q) { append(makeGate(GateType::Sdg, {q})); }
    void t(std::size_t q)   { append(makeGate(GateType::T, {q})); }
    void tdg(std::size_t q) { append(makeGate(GateType::Tdg, {q})); }
    void rx(double theta, std::size_t q)
    {
        append(makeGate(GateType::Rx, {q}, {theta}));
    }
    void ry(double theta, std::size_t q)
    {
        append(makeGate(GateType::Ry, {q}, {theta}));
    }
    void rz(double theta, std::size_t q)
    {
        append(makeGate(GateType::Rz, {q}, {theta}));
    }
    void u1(double lambda, std::size_t q)
    {
        append(makeGate(GateType::U1, {q}, {lambda}));
    }
    void u2(double phi, double lambda, std::size_t q)
    {
        append(makeGate(GateType::U2, {q}, {phi, lambda}));
    }
    void u3(double theta, double phi, double lambda, std::size_t q)
    {
        append(makeGate(GateType::U3, {q}, {theta, phi, lambda}));
    }
    void cx(std::size_t control, std::size_t target)
    {
        append(makeGate(GateType::Cnot, {control, target}));
    }
    void cz(std::size_t a, std::size_t b)
    {
        append(makeGate(GateType::Cz, {a, b}));
    }
    void swap(std::size_t a, std::size_t b)
    {
        append(makeGate(GateType::Swap, {a, b}));
    }
    void rzz(double theta, std::size_t a, std::size_t b)
    {
        append(makeGate(GateType::Rzz, {a, b}, {theta}));
    }
    void openCx(std::size_t control, std::size_t target)
    {
        append(makeGate(GateType::OpenCnot, {control, target}));
    }
    void measure(std::size_t q)
    {
        append(makeGate(GateType::Measure, {q}));
    }
    void measureAll();
    void barrier();

    const std::vector<Gate> &gates() const { return gates_; }
    std::vector<Gate> &gates() { return gates_; }

    /** Number of gates (including directives). */
    std::size_t size() const { return gates_.size(); }

    /** Count of gates of one type. */
    std::size_t countType(GateType type) const;

    /** Count of two-qubit (entangling) gates. */
    std::size_t twoQubitGateCount() const;

    /** Drop all Measure/Barrier directives (for unitary evaluation). */
    QuantumCircuit withoutDirectives() const;

    /**
     * Full-register unitary of the circuit (directives skipped).
     * Qubit 0 is the most significant bit of the basis index.
     */
    Matrix unitary() const;

    /** State produced by applying the circuit to |0...0>. */
    Vector runStatevector() const;

    /** Inverse circuit (reversed order, inverted gates). */
    QuantumCircuit inverse() const;

    /** QASM-flavoured multi-line dump. */
    std::string toString() const;

  private:
    std::size_t numQubits_;
    std::vector<Gate> gates_;
};

} // namespace qpulse

#endif // QPULSE_CIRCUIT_CIRCUIT_H
