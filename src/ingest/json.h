/**
 * @file
 * Defensive, dependency-free JSON parsing for the ingestion boundary.
 *
 * This parser exists to face *untrusted* bytes: the OpenPulse-JSON
 * payloads external clients hand the RequestFrontEnd (frontend.h).
 * Unlike the trusting round-trip scanner in pulse/qobj.cc it must
 * survive millions of adversarial documents, so every defect class is
 * a distinct structured ErrorCode (common/status.h) instead of an
 * exception or a crash:
 *
 *   - malformed-json       token/grammar violation
 *   - unexpected-end       truncated input (EOF inside a value)
 *   - invalid-utf8         non-UTF-8 bytes, overlong encodings,
 *                          surrogate halves, lone \uD800-style escapes
 *   - depth-limit          nesting beyond JsonLimits::maxDepth
 *   - size-limit           document/string/node budget exceeded
 *   - number-out-of-range  literal overflows a finite double
 *   - duplicate-key        an object repeats a member key
 *
 * Every parse-error Status message ends with the canonical location
 * suffix " at byte B (line L, column C)" — golden-tested in
 * tests/test_ingest.cc so the format cannot silently regress.
 *
 * Implementation constraints: iteration only (an explicit container
 * stack, so a 100k-deep nest exhausts the depth *limit*, never the
 * call stack), one pass, no locale-dependent parsing, and no
 * dependencies beyond the standard library.
 */
#ifndef QPULSE_INGEST_JSON_H
#define QPULSE_INGEST_JSON_H

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace qpulse {
namespace ingest {

/** Hard budgets applied while parsing untrusted input. */
struct JsonLimits
{
    /** Max document size in bytes. */
    std::size_t maxBytes = 8u << 20;
    /** Max container nesting depth. */
    std::size_t maxDepth = 64;
    /** Max decoded bytes of one string value or key. */
    std::size_t maxStringBytes = 64u << 10;
    /** Max total values (scalars + containers) in one document. */
    std::size_t maxValues = 1u << 20;
};

/**
 * Parsed JSON document node. Object members keep insertion order (the
 * parser has already rejected duplicates), so lowering code can
 * report the *first* offending field deterministically.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Stable lower-case kind name ("object", "number", ...). */
    const char *kindName() const;

    bool boolean() const { return bool_; }
    double number() const { return number_; }
    const std::string &string() const { return string_; }
    const std::vector<JsonValue> &items() const { return items_; }
    const std::vector<Member> &members() const { return members_; }

    /** Member lookup by key; nullptr when absent. */
    const JsonValue *find(std::string_view key) const;

    /** Byte offset of this value's first character in the document
     *  (for schema-level diagnostics that outlive the parse). */
    std::size_t offset() const { return offset_; }

    static JsonValue makeNull(std::size_t offset);
    static JsonValue makeBool(bool value, std::size_t offset);
    static JsonValue makeNumber(double value, std::size_t offset);
    static JsonValue makeString(std::string value, std::size_t offset);
    static JsonValue makeArray(std::size_t offset);
    static JsonValue makeObject(std::size_t offset);

    /** Mutable container access (parser/back-end construction only). */
    std::vector<JsonValue> &mutableItems() { return items_; }
    std::vector<Member> &mutableMembers() { return members_; }

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
    std::size_t offset_ = 0;
};

/** 1-based line/column of a byte offset in `text` (tab = 1 column). */
struct TextLocation
{
    std::size_t line = 1;
    std::size_t column = 1;
};
TextLocation locateOffset(std::string_view text, std::size_t offset);

/**
 * The canonical location suffix every ingest parse error carries:
 * " at byte B (line L, column C)". Exposed so schema-level rejects
 * (openpulse.cc) format identically to token-level ones.
 */
std::string locationSuffix(std::string_view text, std::size_t offset);

/**
 * Parse one complete JSON document. On success `out` holds the root
 * value and Ok is returned; on any defect `out` is left untouched and
 * the Status carries the distinct ErrorCode plus a message ending in
 * the canonical location suffix. Never throws, never crashes, never
 * recurses.
 */
Status parseJson(std::string_view text, const JsonLimits &limits,
                 JsonValue &out);

/**
 * Validate that `text` is well-formed UTF-8 (RFC 3629: no overlong
 * forms, no surrogates, no code points above U+10FFFF). Returns the
 * byte offset of the first offending byte, or npos when clean.
 */
std::size_t findInvalidUtf8(std::string_view text);

} // namespace ingest
} // namespace qpulse

#endif // QPULSE_INGEST_JSON_H
