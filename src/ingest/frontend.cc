#include "ingest/frontend.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <utility>

#include "common/env.h"
#include "common/rng.h"
#include "telemetry/metrics.h"

namespace qpulse {
namespace ingest {

namespace {

struct FrontEndMetrics
{
    telemetry::Counter &bytes;
    telemetry::Counter &documents;
    telemetry::Counter &accepted;
    telemetry::Counter &rejected;
    telemetry::Counter &completed;
    telemetry::Counter &failed;
    telemetry::Counter &disconnects;
    telemetry::Counter &overflow;
    telemetry::Counter &chunks;
    telemetry::Counter &faults;
    telemetry::Gauge &active;
    telemetry::Histogram &documentBytes;
};

FrontEndMetrics &
metrics()
{
    auto &reg = telemetry::MetricsRegistry::global();
    static FrontEndMetrics m{
        reg.counter("ingest.frontend.bytes"),
        reg.counter("ingest.frontend.documents"),
        reg.counter("ingest.frontend.accepted"),
        reg.counter("ingest.frontend.rejected"),
        reg.counter("ingest.frontend.completed"),
        reg.counter("ingest.frontend.failed"),
        reg.counter("ingest.frontend.disconnects"),
        reg.counter("ingest.frontend.overflow"),
        reg.counter("ingest.frontend.chunks"),
        reg.counter("ingest.faults.injected"),
        reg.gauge("ingest.frontend.active"),
        reg.histogram("ingest.document.bytes",
                      {64, 256, 1024, 4096, 16384, 65536, 262144,
                       1048576, 4194304}),
    };
    return m;
}

/** Feed slice size: bounds how far a buffer can overshoot its budget
 *  before the overflow check runs. */
constexpr std::size_t kFeedSliceBytes = 64u << 10;

bool
isJsonWhitespace(char c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

} // namespace

void
DocumentFramer::feed(std::string_view bytes,
                     std::vector<std::string> &frames)
{
    for (const char c : bytes) {
        if (buffer_.empty() && !inGarbage_) {
            // Between frames: skip whitespace, start a document on a
            // container opener, start a garbage run on anything else.
            if (isJsonWhitespace(c))
                continue;
            buffer_.push_back(c);
            if (c == '{' || c == '[') {
                depth_ = 1;
                inString_ = false;
                escaped_ = false;
            } else {
                inGarbage_ = true;
            }
            continue;
        }

        if (inGarbage_) {
            // Resync: the garbage run ends where a document could
            // plausibly begin; the run itself becomes a frame the
            // parser rejects with a structured code.
            if (c == '{' || c == '[') {
                frames.push_back(std::move(buffer_));
                buffer_.clear();
                inGarbage_ = false;
                buffer_.push_back(c);
                depth_ = 1;
                inString_ = false;
                escaped_ = false;
            } else {
                buffer_.push_back(c);
            }
            continue;
        }

        buffer_.push_back(c);
        if (inString_) {
            if (escaped_)
                escaped_ = false;
            else if (c == '\\')
                escaped_ = true;
            else if (c == '"')
                inString_ = false;
            continue;
        }
        if (c == '"') {
            inString_ = true;
        } else if (c == '{' || c == '[') {
            ++depth_;
        } else if (c == '}' || c == ']') {
            // A mismatched closer still closes the frame (depth can
            // only fall); the parser reports the actual defect.
            if (--depth_ <= 0) {
                frames.push_back(std::move(buffer_));
                buffer_.clear();
                depth_ = 0;
            }
        }
    }
}

bool
DocumentFramer::flush(std::string &frame)
{
    if (buffer_.empty())
        return false;
    frame = std::move(buffer_);
    reset();
    return true;
}

void
DocumentFramer::reset()
{
    buffer_.clear();
    depth_ = 0;
    inString_ = false;
    escaped_ = false;
    inGarbage_ = false;
}

const char *
streamEventKindName(StreamEventKind kind)
{
    switch (kind) {
    case StreamEventKind::Accepted:
        return "accepted";
    case StreamEventKind::Partial:
        return "partial";
    case StreamEventKind::Completed:
        return "completed";
    case StreamEventKind::Rejected:
        return "rejected";
    case StreamEventKind::Failed:
        return "failed";
    case StreamEventKind::Disconnected:
        return "disconnected";
    }
    return "unknown";
}

RequestFrontEnd::RequestFrontEnd(ExecutionService &service,
                                 FrontEndPolicy policy)
    : service_(service), policy_(policy)
{
    if (policy_.maxConnectionBufferBytes == 0)
        policy_.maxConnectionBufferBytes =
            static_cast<std::size_t>(envIngestMaxBytes());
    if (policy_.maxPendingPerConnection == 0)
        policy_.maxPendingPerConnection = 1;
    if (policy_.streamBatchShots <= 0)
        policy_.streamBatchShots = 64;
}

int
RequestFrontEnd::open()
{
    const int id = nextConnection_++;
    connections_[id].openFlag = true;
    return id;
}

void
RequestFrontEnd::emit(StreamEvent event)
{
    if (sink_)
        sink_(event);
}

void
RequestFrontEnd::feed(int connection, std::string_view bytes)
{
    auto it = connections_.find(connection);
    if (it == connections_.end() || !it->second.openFlag)
        return; // Bytes of a dead peer: dropped, never fatal.
    Connection &conn = it->second;

    stats_.bytesReceived += static_cast<long>(bytes.size());
    metrics().bytes.add(bytes.size());

    // Feed in bounded slices so the byte budget is enforced even when
    // one call carries a very large payload.
    std::vector<std::string> frames;
    while (!bytes.empty()) {
        const std::size_t take =
            std::min(bytes.size(), kFeedSliceBytes);
        conn.framer.feed(bytes.substr(0, take), frames);
        bytes.remove_prefix(take);

        for (std::string &frame : frames)
            handleDocument(connection, frame);
        frames.clear();

        if (conn.framer.buffered() > policy_.maxConnectionBufferBytes) {
            // Buffer budget blown mid-document: drop it with a
            // structured reject and resynchronize on the next frame.
            ++stats_.overflowDrops;
            metrics().overflow.increment();
            const std::uint64_t request = nextRequest_++;
            rejectDocument(
                connection, request,
                "ingest/" + std::to_string(request),
                Status::error(
                    ErrorCode::SizeLimitExceeded,
                    "connection buffer exceeded " +
                        std::to_string(
                            policy_.maxConnectionBufferBytes) +
                        " bytes mid-document"));
            conn.framer.reset();
        }
    }
}

std::uint64_t
RequestFrontEnd::deliver(int connection, const std::string &document)
{
    const std::uint64_t ordinal = nextDelivery_++;
    if (!injector_) {
        feed(connection, document);
        return ordinal;
    }
    FaultInjector::IngestInjection injection =
        injector_->injectIngest(document, ordinal);
    if (injection.mutated() || injection.disconnected) {
        ++stats_.ingestFaults;
        metrics().faults.increment();
    }
    if (injection.disconnected) {
        feed(connection,
             std::string_view(injection.payload)
                 .substr(0, injection.disconnectAfter));
        close(connection);
    } else {
        feed(connection, injection.payload);
    }
    return ordinal;
}

void
RequestFrontEnd::handleDocument(int connection,
                                const std::string &text)
{
    ++stats_.documents;
    metrics().documents.increment();
    metrics().documentBytes.observe(static_cast<double>(text.size()));

    const std::uint64_t request = nextRequest_++;
    const std::string defaultKey =
        "ingest/c" + std::to_string(connection) + "/r" +
        std::to_string(request);

    IngestedJob job;
    Status status = parseJob(text, policy_.limits, job);
    if (!status.ok()) {
        rejectDocument(connection, request, defaultKey, status);
        return;
    }
    const std::string key = job.key.empty() ? defaultKey : job.key;

    if (policy_.validate) {
        status = validateSchedule(job.schedule, policy_.budget);
        if (!status.ok()) {
            rejectDocument(connection, request, key, status);
            return;
        }
    }

    Connection &conn = connections_[connection];
    if (conn.pending >= policy_.maxPendingPerConnection) {
        rejectDocument(
            connection, request, key,
            Status::error(ErrorCode::ResourceExhausted,
                          "connection holds " +
                              std::to_string(conn.pending) +
                              " streaming requests (budget " +
                              std::to_string(
                                  policy_.maxPendingPerConnection) +
                              ")"));
        return;
    }

    ActiveRequest active;
    active.connection = connection;
    active.request = request;
    active.key = key;
    active.job = std::move(job);
    active.chunksTotal =
        (active.job.shots + policy_.streamBatchShots - 1) /
        policy_.streamBatchShots;

    StreamEvent event;
    event.kind = StreamEventKind::Accepted;
    event.connection = connection;
    event.request = request;
    event.key = key;
    event.shotsRequested = active.job.shots;
    emit(std::move(event));

    ++conn.pending;
    ++stats_.accepted;
    metrics().accepted.increment();
    active_.emplace(request, std::move(active));
    metrics().active.set(static_cast<double>(active_.size()));
}

void
RequestFrontEnd::rejectDocument(int connection, std::uint64_t request,
                                const std::string &key, Status status)
{
    ++stats_.rejected;
    metrics().rejected.increment();
    StreamEvent event;
    event.kind = StreamEventKind::Rejected;
    event.connection = connection;
    event.request = request;
    event.key = key;
    event.status = std::move(status);
    emit(std::move(event));
}

void
RequestFrontEnd::finish(int connection)
{
    auto it = connections_.find(connection);
    if (it == connections_.end() || !it->second.openFlag)
        return;
    std::string trailing;
    if (it->second.framer.flush(trailing))
        handleDocument(connection, trailing);
}

void
RequestFrontEnd::close(int connection)
{
    auto it = connections_.find(connection);
    if (it == connections_.end() || !it->second.openFlag)
        return;
    it->second.framer.reset();
    it->second.openFlag = false;

    const Status reason = Status::error(
        ErrorCode::Cancelled, "connection closed mid-stream");
    for (auto active = active_.begin(); active != active_.end();) {
        if (active->second.connection == connection)
            active = retire(active, StreamEventKind::Disconnected,
                            reason);
        else
            ++active;
    }
}

std::map<std::uint64_t, RequestFrontEnd::ActiveRequest>::iterator
RequestFrontEnd::retire(
    std::map<std::uint64_t, ActiveRequest>::iterator it,
    StreamEventKind kind, Status status)
{
    ActiveRequest &active = it->second;
    StreamEvent event;
    event.kind = kind;
    event.connection = active.connection;
    event.request = active.request;
    event.key = active.key;
    event.status = std::move(status);
    event.shotsRequested = active.job.shots;
    event.shotsCompleted = active.shotsCompleted;
    event.counts = active.counts;
    emit(std::move(event));

    auto conn = connections_.find(active.connection);
    if (conn != connections_.end() && conn->second.pending > 0)
        --conn->second.pending;

    switch (kind) {
    case StreamEventKind::Completed:
        ++stats_.completed;
        metrics().completed.increment();
        break;
    case StreamEventKind::Failed:
        ++stats_.failed;
        metrics().failed.increment();
        break;
    case StreamEventKind::Disconnected:
        ++stats_.disconnected;
        metrics().disconnects.increment();
        break;
    default:
        break;
    }

    auto next = active_.erase(it);
    metrics().active.set(static_cast<double>(active_.size()));
    return next;
}

std::size_t
RequestFrontEnd::pump()
{
    if (active_.empty())
        return 0;

    // Submit the next chunk of every active request, ordinal order —
    // round-robin streaming across requests and connections.
    std::vector<std::pair<std::uint64_t, Status>> submitFailures;
    for (auto &[id, active] : active_) {
        if (active.chunksSubmitted >= active.chunksTotal)
            continue;
        const long chunk = active.chunksSubmitted;
        const long start = chunk * policy_.streamBatchShots;
        JobRequest request;
        request.schedule = active.job.schedule;
        request.key = "ingest/" + std::to_string(id) + "/" +
                      std::to_string(chunk);
        request.tenant = active.job.tenant;
        request.backendName = active.job.backend;
        request.shots = std::min(policy_.streamBatchShots,
                                 active.job.shots - start);
        request.seed = Rng::deriveSeed(
            active.job.seed, static_cast<std::uint64_t>(chunk));
        request.priority = active.job.priority;
        const Status status = service_.submit(std::move(request));
        if (!status.ok())
            submitFailures.emplace_back(id, status);
        else
            ++active.chunksSubmitted;
    }
    for (auto &[id, status] : submitFailures) {
        auto it = active_.find(id);
        if (it != active_.end())
            retire(it, StreamEventKind::Failed, status);
    }

    std::size_t routed = 0;
    for (JobOutcome &outcome : service_.drain()) {
        // Only outcomes we submitted carry the "ingest/<id>/<chunk>"
        // key; anything else on a shared service is not ours.
        if (outcome.key.rfind("ingest/", 0) != 0)
            continue;
        const char *digits = outcome.key.c_str() + 7;
        char *end = nullptr;
        const std::uint64_t id = std::strtoull(digits, &end, 10);
        if (end == digits)
            continue;
        auto it = active_.find(id);
        if (it == active_.end())
            continue; // Request already retired (disconnect).
        ++routed;
        ++stats_.chunksExecuted;
        metrics().chunks.increment();

        ActiveRequest &active = it->second;
        if (!outcome.status.ok()) {
            retire(it, StreamEventKind::Failed, outcome.status);
            continue;
        }
        const PulseShotResult &result = outcome.execution.result;
        if (active.counts.size() < result.counts.size())
            active.counts.resize(result.counts.size(), 0);
        long chunkShots = 0;
        for (std::size_t i = 0; i < result.counts.size(); ++i) {
            active.counts[i] += result.counts[i];
            chunkShots += result.counts[i];
        }
        active.shotsCompleted += chunkShots;
        ++active.chunksDone;

        if (active.chunksDone >= active.chunksTotal) {
            retire(it, StreamEventKind::Completed,
                   Status::okStatus());
            continue;
        }
        StreamEvent event;
        event.kind = StreamEventKind::Partial;
        event.connection = active.connection;
        event.request = active.request;
        event.key = active.key;
        event.shotsRequested = active.job.shots;
        event.shotsCompleted = active.shotsCompleted;
        event.counts = active.counts;
        emit(std::move(event));
    }
    return routed;
}

void
RequestFrontEnd::run()
{
    while (!active_.empty()) {
        if (pump() == 0 && !active_.empty()) {
            // Nothing routed yet requests remain: every remaining
            // request failed to make progress (e.g. all submits
            // rejected). retire() in pump already handled them, so
            // an empty round with survivors means a wedged service —
            // fail the survivors instead of spinning forever.
            const Status stuck = Status::error(
                ErrorCode::Unavailable,
                "execution service made no progress on a pump");
            while (!active_.empty())
                retire(active_.begin(), StreamEventKind::Failed,
                       stuck);
        }
    }
}

} // namespace ingest
} // namespace qpulse
