#include "ingest/json.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace qpulse {
namespace ingest {

namespace {

/** npos sentinel for findInvalidUtf8. */
constexpr std::size_t kNpos = std::string_view::npos;

bool
isJsonSpace(char c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool
isDigit(char c)
{
    return c >= '0' && c <= '9';
}

/** Append a code point as UTF-8 (caller has range-checked it). */
void
appendUtf8(std::string &out, std::uint32_t cp)
{
    if (cp < 0x80) {
        out += static_cast<char>(cp);
    } else if (cp < 0x800) {
        out += static_cast<char>(0xC0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
        out += static_cast<char>(0xE0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
        out += static_cast<char>(0xF0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    }
}

/**
 * One partially-built container on the explicit parse stack. The key
 * set shadows the member vector so duplicate detection stays
 * O(log n) per key even for adversarial member counts.
 */
struct Frame
{
    JsonValue container;
    std::string pendingKey;
    bool hasPendingKey = false;
    std::set<std::string> keys;
};

/**
 * The iterative parser. All state lives in this struct and the
 * explicit `stack_`; nothing recurses.
 */
class Parser
{
  public:
    Parser(std::string_view text, const JsonLimits &limits)
        : text_(text), limits_(limits)
    {}

    Status
    parse(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail(ErrorCode::UnexpectedEnd,
                        "empty document", pos_);

        // expectValue_ == true: the next token must start a value.
        // false: the next token must continue/close a container.
        bool expect_value = true;
        while (true) {
            skipSpace();
            if (pos_ >= text_.size())
                return fail(ErrorCode::UnexpectedEnd,
                            stack_.empty()
                                ? "input ended before a value"
                                : "input ended inside a container",
                            pos_);
            const char c = text_[pos_];

            if (expect_value) {
                if (c == '{' || c == '[') {
                    if (stack_.size() >= limits_.maxDepth)
                        return fail(ErrorCode::DepthLimitExceeded,
                                    "nesting deeper than " +
                                        std::to_string(
                                            limits_.maxDepth) +
                                        " levels",
                                    pos_);
                    Status budget = chargeValue(pos_);
                    if (!budget.ok())
                        return budget;
                    Frame frame;
                    frame.container = c == '{'
                                          ? JsonValue::makeObject(pos_)
                                          : JsonValue::makeArray(pos_);
                    stack_.push_back(std::move(frame));
                    ++pos_;
                    skipSpace();
                    // Empty containers close immediately.
                    if (pos_ < text_.size() &&
                        ((c == '{' && text_[pos_] == '}') ||
                         (c == '[' && text_[pos_] == ']'))) {
                        ++pos_;
                        Status closed = closeTop(out, expect_value);
                        if (!closed.ok())
                            return closed;
                        if (done_)
                            return Status::okStatus();
                        continue;
                    }
                    if (c == '{') {
                        Status key = parseObjectKey();
                        if (!key.ok())
                            return key;
                    }
                    // expect_value stays true: a value follows the
                    // key (object) or starts the array.
                    continue;
                }

                JsonValue value;
                Status scalar = parseScalar(value);
                if (!scalar.ok())
                    return scalar;
                Status attached = attach(std::move(value), out,
                                         expect_value);
                if (!attached.ok())
                    return attached;
                if (done_)
                    return Status::okStatus();
                continue;
            }

            // Continuation inside a container: ',' or the closer.
            Frame &top = stack_.back();
            const bool in_object = top.container.isObject();
            if (c == ',') {
                ++pos_;
                if (in_object) {
                    Status key = parseObjectKey();
                    if (!key.ok())
                        return key;
                }
                expect_value = true;
                continue;
            }
            if ((in_object && c == '}') || (!in_object && c == ']')) {
                ++pos_;
                Status closed = closeTop(out, expect_value);
                if (!closed.ok())
                    return closed;
                if (done_)
                    return Status::okStatus();
                continue;
            }
            return fail(ErrorCode::MalformedJson,
                        std::string("expected ',' or '") +
                            (in_object ? '}' : ']') + "', found '" +
                            printable(c) + "'",
                        pos_);
        }
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() && isJsonSpace(text_[pos_]))
            ++pos_;
    }

    /** Printable rendering of a byte for error messages. */
    static std::string
    printable(char c)
    {
        const unsigned char u = static_cast<unsigned char>(c);
        if (u >= 0x20 && u < 0x7F)
            return std::string(1, c);
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\x%02X", u);
        return std::string(buf);
    }

    Status
    fail(ErrorCode code, const std::string &detail,
         std::size_t offset) const
    {
        return Status::error(code,
                             detail + locationSuffix(text_, offset));
    }

    /** Enforce the total node budget. */
    Status
    chargeValue(std::size_t offset)
    {
        if (++valueCount_ > limits_.maxValues)
            return fail(ErrorCode::SizeLimitExceeded,
                        "document exceeds " +
                            std::to_string(limits_.maxValues) +
                            " values",
                        offset);
        return Status::okStatus();
    }

    /** Parse `"key" :` into the top frame, rejecting duplicates. */
    Status
    parseObjectKey()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail(ErrorCode::UnexpectedEnd,
                        "input ended before an object key", pos_);
        if (text_[pos_] != '"')
            return fail(ErrorCode::MalformedJson,
                        std::string("expected '\"' to open an object "
                                    "key, found '") +
                            printable(text_[pos_]) + "'",
                        pos_);
        const std::size_t key_offset = pos_;
        std::string key;
        Status parsed = parseStringBody(key);
        if (!parsed.ok())
            return parsed;
        Frame &top = stack_.back();
        if (!top.keys.insert(key).second)
            return fail(ErrorCode::DuplicateKey,
                        "object repeats key \"" + key + "\"",
                        key_offset);
        skipSpace();
        if (pos_ >= text_.size())
            return fail(ErrorCode::UnexpectedEnd,
                        "input ended after an object key", pos_);
        if (text_[pos_] != ':')
            return fail(ErrorCode::MalformedJson,
                        std::string("expected ':' after an object "
                                    "key, found '") +
                            printable(text_[pos_]) + "'",
                        pos_);
        ++pos_;
        top.pendingKey = std::move(key);
        top.hasPendingKey = true;
        return Status::okStatus();
    }

    /** Parse one scalar (string, number, true/false/null). */
    Status
    parseScalar(JsonValue &out)
    {
        const std::size_t start = pos_;
        const char c = text_[pos_];
        Status budget = chargeValue(start);
        if (!budget.ok())
            return budget;
        if (c == '"') {
            std::string value;
            Status parsed = parseStringBody(value);
            if (!parsed.ok())
                return parsed;
            out = JsonValue::makeString(std::move(value), start);
            return Status::okStatus();
        }
        if (c == '-' || isDigit(c))
            return parseNumber(out);
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            out = JsonValue::makeBool(true, start);
            return Status::okStatus();
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            out = JsonValue::makeBool(false, start);
            return Status::okStatus();
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            out = JsonValue::makeNull(start);
            return Status::okStatus();
        }
        // A truncated keyword is a truncation, not a typo.
        if (text_.compare(pos_, text_.size() - pos_, "true", 0,
                          text_.size() - pos_) == 0 ||
            text_.compare(pos_, text_.size() - pos_, "false", 0,
                          text_.size() - pos_) == 0 ||
            text_.compare(pos_, text_.size() - pos_, "null", 0,
                          text_.size() - pos_) == 0)
            return fail(ErrorCode::UnexpectedEnd,
                        "input ended inside a literal", start);
        return fail(ErrorCode::MalformedJson,
                    std::string("unexpected character '") +
                        printable(c) + "'",
                    start);
    }

    /**
     * Parse a string starting at the opening quote; leaves pos_ after
     * the closing quote and the decoded UTF-8 bytes in `out`.
     */
    Status
    parseStringBody(std::string &out)
    {
        const std::size_t start = pos_;
        ++pos_; // Opening quote.
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail(ErrorCode::UnexpectedEnd,
                            "input ended inside a string", start);
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return Status::okStatus();
            }
            if (c < 0x20)
                return fail(ErrorCode::MalformedJson,
                            "raw control character " + printable(c) +
                                " inside a string (escape it)",
                            pos_);
            if (out.size() >= limits_.maxStringBytes)
                return fail(ErrorCode::SizeLimitExceeded,
                            "string longer than " +
                                std::to_string(
                                    limits_.maxStringBytes) +
                                " bytes",
                            start);
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            // Escape sequence.
            const std::size_t esc = pos_;
            if (++pos_ >= text_.size())
                return fail(ErrorCode::UnexpectedEnd,
                            "input ended inside an escape", esc);
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                std::uint32_t cp = 0;
                Status hex = parseHex4(esc, cp);
                if (!hex.ok())
                    return hex;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a \uDC00..\uDFFF must follow.
                    if (pos_ + 1 >= text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
                        return fail(ErrorCode::InvalidUtf8,
                                    "lone high surrogate escape",
                                    esc);
                    pos_ += 2;
                    std::uint32_t lo = 0;
                    Status hex2 = parseHex4(esc, lo);
                    if (!hex2.ok())
                        return hex2;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail(ErrorCode::InvalidUtf8,
                                    "invalid low surrogate escape",
                                    esc);
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail(ErrorCode::InvalidUtf8,
                                "lone low surrogate escape", esc);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail(ErrorCode::MalformedJson,
                            std::string("invalid escape '\\") +
                                printable(e) + "'",
                            esc);
            }
        }
    }

    /** Parse exactly four hex digits at pos_ into `out`. */
    Status
    parseHex4(std::size_t esc_offset, std::uint32_t &out)
    {
        if (pos_ + 4 > text_.size())
            return fail(ErrorCode::UnexpectedEnd,
                        "input ended inside a \\u escape",
                        esc_offset);
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            std::uint32_t digit;
            if (h >= '0' && h <= '9')
                digit = static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f')
                digit = static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                digit = static_cast<std::uint32_t>(h - 'A' + 10);
            else
                return fail(ErrorCode::MalformedJson,
                            std::string("non-hex digit '") +
                                printable(h) + "' in a \\u escape",
                            esc_offset);
            value = (value << 4) | digit;
        }
        pos_ += 4;
        out = value;
        return Status::okStatus();
    }

    /** Strict JSON number grammar, then a finite-range check. */
    Status
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size())
            return fail(ErrorCode::UnexpectedEnd,
                        "input ended inside a number", start);
        // Integer part: 0, or [1-9][0-9]* — leading zeros rejected.
        if (text_[pos_] == '0') {
            ++pos_;
            if (pos_ < text_.size() && isDigit(text_[pos_]))
                return fail(ErrorCode::MalformedJson,
                            "leading zero in number", start);
        } else if (isDigit(text_[pos_])) {
            while (pos_ < text_.size() && isDigit(text_[pos_]))
                ++pos_;
        } else {
            return fail(ErrorCode::MalformedJson,
                        "number has no digits", start);
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size())
                return fail(ErrorCode::UnexpectedEnd,
                            "input ended inside a number", start);
            if (!isDigit(text_[pos_]))
                return fail(ErrorCode::MalformedJson,
                            "no digits after decimal point", start);
            while (pos_ < text_.size() && isDigit(text_[pos_]))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size())
                return fail(ErrorCode::UnexpectedEnd,
                            "input ended inside a number", start);
            if (!isDigit(text_[pos_]))
                return fail(ErrorCode::MalformedJson,
                            "no digits in exponent", start);
            while (pos_ < text_.size() && isDigit(text_[pos_]))
                ++pos_;
        }
        // The grammar above admits only what strtod parses in the C
        // locale; a bounded copy keeps strtod off the raw buffer
        // (string_view is not NUL-terminated).
        const std::string token(text_.substr(start, pos_ - start));
        errno = 0;
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() ||
            !std::isfinite(value))
            return fail(ErrorCode::NumberOutOfRange,
                        "number '" + token +
                            "' overflows a finite double",
                        start);
        out = JsonValue::makeNumber(value, start);
        return Status::okStatus();
    }

    /**
     * Attach a completed value to the top frame (or make it the
     * root). Sets done_ once the root value closes and only trailing
     * whitespace remains.
     */
    Status
    attach(JsonValue value, JsonValue &out, bool &expect_value)
    {
        if (stack_.empty()) {
            skipSpace();
            if (pos_ < text_.size())
                return fail(ErrorCode::MalformedJson,
                            "trailing content after the document",
                            pos_);
            out = std::move(value);
            done_ = true;
            return Status::okStatus();
        }
        Frame &top = stack_.back();
        if (top.container.isObject()) {
            top.container.mutableMembers().emplace_back(
                std::move(top.pendingKey), std::move(value));
            top.hasPendingKey = false;
        } else {
            top.container.mutableItems().push_back(std::move(value));
        }
        expect_value = false;
        return Status::okStatus();
    }

    /** Pop the top container and attach it one level down. */
    Status
    closeTop(JsonValue &out, bool &expect_value)
    {
        JsonValue completed = std::move(stack_.back().container);
        stack_.pop_back();
        return attach(std::move(completed), out, expect_value);
    }

    std::string_view text_;
    const JsonLimits &limits_;
    std::size_t pos_ = 0;
    std::size_t valueCount_ = 0;
    std::vector<Frame> stack_;
    bool done_ = false;
};

} // namespace

const char *
JsonValue::kindName() const
{
    switch (kind_) {
      case Kind::Null:   return "null";
      case Kind::Bool:   return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array:  return "array";
      case Kind::Object: return "object";
    }
    return "unknown";
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const Member &member : members_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

JsonValue
JsonValue::makeNull(std::size_t offset)
{
    JsonValue v;
    v.kind_ = Kind::Null;
    v.offset_ = offset;
    return v;
}

JsonValue
JsonValue::makeBool(bool value, std::size_t offset)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = value;
    v.offset_ = offset;
    return v;
}

JsonValue
JsonValue::makeNumber(double value, std::size_t offset)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = value;
    v.offset_ = offset;
    return v;
}

JsonValue
JsonValue::makeString(std::string value, std::size_t offset)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(value);
    v.offset_ = offset;
    return v;
}

JsonValue
JsonValue::makeArray(std::size_t offset)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.offset_ = offset;
    return v;
}

JsonValue
JsonValue::makeObject(std::size_t offset)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.offset_ = offset;
    return v;
}

TextLocation
locateOffset(std::string_view text, std::size_t offset)
{
    TextLocation loc;
    const std::size_t end = std::min(offset, text.size());
    for (std::size_t i = 0; i < end; ++i) {
        if (text[i] == '\n') {
            ++loc.line;
            loc.column = 1;
        } else {
            ++loc.column;
        }
    }
    return loc;
}

std::string
locationSuffix(std::string_view text, std::size_t offset)
{
    const TextLocation loc = locateOffset(text, offset);
    return " at byte " + std::to_string(offset) + " (line " +
           std::to_string(loc.line) + ", column " +
           std::to_string(loc.column) + ")";
}

std::size_t
findInvalidUtf8(std::string_view text)
{
    const std::size_t n = text.size();
    std::size_t i = 0;
    while (i < n) {
        const unsigned char b0 = static_cast<unsigned char>(text[i]);
        if (b0 < 0x80) {
            ++i;
            continue;
        }
        std::size_t len;
        std::uint32_t cp;
        if ((b0 & 0xE0) == 0xC0) {
            len = 2;
            cp = b0 & 0x1F;
        } else if ((b0 & 0xF0) == 0xE0) {
            len = 3;
            cp = b0 & 0x0F;
        } else if ((b0 & 0xF8) == 0xF0) {
            len = 4;
            cp = b0 & 0x07;
        } else {
            return i; // Continuation or invalid lead byte.
        }
        if (i + len > n)
            return i; // Truncated sequence.
        for (std::size_t k = 1; k < len; ++k) {
            const unsigned char bk =
                static_cast<unsigned char>(text[i + k]);
            if ((bk & 0xC0) != 0x80)
                return i;
            cp = (cp << 6) | (bk & 0x3F);
        }
        // Overlong encodings, surrogates and out-of-range points.
        if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
            (len == 4 && cp < 0x10000) ||
            (cp >= 0xD800 && cp <= 0xDFFF) || cp > 0x10FFFF)
            return i;
        i += len;
    }
    return kNpos;
}

Status
parseJson(std::string_view text, const JsonLimits &limits,
          JsonValue &out)
{
    if (text.size() > limits.maxBytes)
        return Status::error(
            ErrorCode::SizeLimitExceeded,
            "document of " + std::to_string(text.size()) +
                " bytes exceeds the " +
                std::to_string(limits.maxBytes) + "-byte limit" +
                locationSuffix(text, limits.maxBytes));
    const std::size_t bad_utf8 = findInvalidUtf8(text);
    if (bad_utf8 != kNpos)
        return Status::error(ErrorCode::InvalidUtf8,
                             "invalid UTF-8 byte" +
                                 locationSuffix(text, bad_utf8));
    Parser parser(text, limits);
    JsonValue root;
    Status status = parser.parse(root);
    if (!status.ok())
        return status;
    out = std::move(root);
    return Status::okStatus();
}

} // namespace ingest
} // namespace qpulse
