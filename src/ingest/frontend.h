/**
 * @file
 * RequestFrontEnd: the streaming request loop over ExecutionService.
 *
 * This is where untrusted bytes meet the execution stack. Clients
 * open logical connections and feed raw bytes; the front end frames
 * complete JSON documents out of the stream (DocumentFramer — a
 * string/escape-aware brace balancer, because scheduleToQobjJson
 * emits multi-line documents), pushes each one through the defensive
 * parse + lowering pipeline (json.h, openpulse.h), gates the lowered
 * schedule through validateSchedule, and streams the job's shots
 * through the service in chunks so partial counts flow back to the
 * client while later chunks are still executing.
 *
 * Robustness posture (docs/ROBUSTNESS.md, "Ingestion boundary"):
 *
 *   - Per-connection byte budget: a connection whose receive buffer
 *     exceeds FrontEndPolicy::maxConnectionBufferBytes is rejected
 *     with size-limit and the buffer dropped (resync at the next
 *     top-level '{'/'['); one hostile client cannot balloon memory.
 *   - Admission: a connection may hold at most maxPendingPerConnection
 *     streaming requests; excess documents are rejected with
 *     resource-exhausted before any work is done.
 *   - Graceful degradation: malformed, truncated, non-UTF-8 or
 *     oversized documents produce Rejected events carrying the
 *     structured ErrorCode — never an exception, never a crash, and
 *     never a poisoned neighbor (framing resynchronizes).
 *   - Fault injection: an attached FaultInjector's ingest classes
 *     (QPULSE_FAULT_PLAN ingest_trunc/ingest_corrupt/ingest_dupkey/
 *     ingest_disc) mutate payloads deterministically inside
 *     deliver(), modeling a flaky transport in front of the framer.
 *
 * Determinism: all counters count work, not scheduling, and shot
 * chunks draw per-chunk seeds via Rng::deriveSeed, so a streamed run
 * is bit-identical across QPULSE_THREADS (bench_ingest diffs the
 * fingerprint across 1 and 8 threads in CI).
 */
#ifndef QPULSE_INGEST_FRONTEND_H
#define QPULSE_INGEST_FRONTEND_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "device/fault_injector.h"
#include "device/schedule_validation.h"
#include "ingest/openpulse.h"
#include "service/execution_service.h"

namespace qpulse {
namespace ingest {

/**
 * Splits a byte stream into complete top-level JSON documents: a
 * brace/bracket balancer that tracks string and escape state, so
 * braces inside string literals never confuse the frame. Bytes that
 * cannot start a document (anything but '{' or '[') are collected
 * into a "garbage" frame delimited by the next plausible document
 * start — the parser then rejects that frame with a structured code,
 * which is how the stream resynchronizes after corruption.
 */
class DocumentFramer
{
  public:
    /** Feed bytes; complete frames are appended to `frames`. */
    void feed(std::string_view bytes, std::vector<std::string> &frames);

    /**
     * Flush the trailing partial frame (end of stream). Returns true
     * and fills `frame` when undelivered bytes existed.
     */
    bool flush(std::string &frame);

    /** Bytes currently buffered (the incomplete frame). */
    std::size_t buffered() const { return buffer_.size(); }

    /** Drop all buffered bytes and reset to the between-frames state
     *  (byte-budget overflow handling). */
    void reset();

  private:
    std::string buffer_;
    int depth_ = 0;
    bool inString_ = false;
    bool escaped_ = false;
    bool inGarbage_ = false;
};

/** What kind of streaming event a StreamEvent reports. */
enum class StreamEventKind
{
    Accepted,     ///< Document parsed, validated and admitted.
    Partial,      ///< A shot chunk finished; cumulative counts inside.
    Completed,    ///< All chunks done; final cumulative counts inside.
    Rejected,     ///< Document refused (parse/schema/validate/admission).
    Failed,       ///< Admitted request terminated with an error.
    Disconnected, ///< Connection closed with the request in flight.
};

/** Stable lower-case event name ("accepted", "partial", ...). */
const char *streamEventKindName(StreamEventKind kind);

/** One streaming result event, pushed to the connection's sink. */
struct StreamEvent
{
    StreamEventKind kind = StreamEventKind::Rejected;
    int connection = -1;
    /** Front-end-wide framed-document ordinal. */
    std::uint64_t request = 0;
    /** Client job key, or "ingest/c<conn>/r<req>" when none given. */
    std::string key;
    /** Reject/failure reason (Ok for progress events). */
    Status status;
    long shotsRequested = 0;
    /** Cumulative shots finished across completed chunks. */
    long shotsCompleted = 0;
    /** Cumulative counts (Partial/Completed only). */
    std::vector<long> counts;
};

/** Front-end policy knobs. */
struct FrontEndPolicy
{
    /** Parse + lowering budgets for every document. */
    IngestLimits limits;
    /**
     * Per-connection receive-buffer budget in bytes. 0 = read
     * QPULSE_INGEST_MAX_BYTES (default 8 MiB).
     */
    std::size_t maxConnectionBufferBytes = 0;
    /** Max streaming requests one connection may hold (admission). */
    std::size_t maxPendingPerConnection = 8;
    /** Shots per streamed chunk (partial-result granularity). */
    long streamBatchShots = 64;
    /** Channel budget for the pre-submit validateSchedule gate. */
    ChannelBudget budget;
    /** Run the validateSchedule gate before admission. */
    bool validate = true;
};

/** Deterministic front-end counters (mirrored into ingest.*). */
struct FrontEndStats
{
    long bytesReceived = 0;
    long documents = 0;     ///< Complete frames seen.
    long accepted = 0;      ///< Admitted streaming requests.
    long rejected = 0;      ///< Structured document rejections.
    long completed = 0;     ///< Requests that finished all chunks.
    long failed = 0;        ///< Requests terminated by an error.
    long disconnected = 0;  ///< Requests killed by a disconnect.
    long overflowDrops = 0; ///< Buffer-budget rejections.
    long chunksExecuted = 0;///< Shot chunks drained from the service.
    long ingestFaults = 0;  ///< Transport faults injected in deliver().
};

/**
 * The streaming request front end. Sequential by design, like the
 * ExecutionService beneath it: one thread calls open/feed/pump; the
 * parallelism lives inside each chunk's shot loop.
 */
class RequestFrontEnd
{
  public:
    using EventSink = std::function<void(const StreamEvent &)>;

    /** The service is borrowed; it must outlive the front end. */
    RequestFrontEnd(ExecutionService &service,
                    FrontEndPolicy policy = {});

    /** Install the event sink (null = events only counted). */
    void setEventSink(EventSink sink) { sink_ = std::move(sink); }

    /** Attach the transport fault source used by deliver(). */
    void setFaultInjector(std::shared_ptr<FaultInjector> injector)
    {
        injector_ = std::move(injector);
    }

    /** Open a logical connection; returns its id. */
    int open();

    /**
     * Feed raw bytes into `connection`. Complete documents are
     * parsed, validated, admitted (Accepted event) or refused
     * (Rejected event with the structured code) immediately; shot
     * execution happens in pump(). Unknown/closed connections are
     * ignored (the bytes of a dead peer).
     */
    void feed(int connection, std::string_view bytes);

    /**
     * Deliver one whole client document over `connection` through the
     * attached fault injector (identity transport when none): the
     * payload may arrive truncated, corrupted or with a duplicated
     * key, and the connection may drop mid-document (Disconnected
     * events for its in-flight requests). Returns the request ordinal
     * the document was assigned.
     */
    std::uint64_t deliver(int connection, const std::string &document);

    /**
     * Graceful end-of-stream: flush the trailing partial frame (a
     * truncated trailing document is Rejected with unexpected-end).
     * The connection's admitted requests keep streaming.
     */
    void finish(int connection);

    /**
     * Abortive close: drop buffered bytes and kill the connection's
     * in-flight requests with Disconnected events.
     */
    void close(int connection);

    /**
     * One streaming step: submit the next shot chunk of every active
     * request, drain the service, route outcomes back and emit
     * Partial/Completed/Failed events. Returns the number of chunk
     * outcomes routed (0 = nothing active).
     */
    std::size_t pump();

    /** Pump until every admitted request reached a terminal event. */
    void run();

    std::size_t activeRequests() const { return active_.size(); }
    const FrontEndStats &stats() const { return stats_; }
    const FrontEndPolicy &policy() const { return policy_; }

  private:
    struct Connection
    {
        DocumentFramer framer;
        bool openFlag = false;
        std::size_t pending = 0; ///< Active requests on this conn.
    };

    /** One admitted streaming request. */
    struct ActiveRequest
    {
        int connection = -1;
        std::uint64_t request = 0;
        std::string key;
        IngestedJob job;
        long chunksTotal = 0;
        long chunksSubmitted = 0;
        long chunksDone = 0;
        long shotsCompleted = 0;
        std::vector<long> counts;
    };

    void emit(StreamEvent event);
    void handleDocument(int connection, const std::string &text);
    void rejectDocument(int connection, std::uint64_t request,
                        const std::string &key, Status status);
    /** Terminal bookkeeping shared by Completed/Failed/Disconnected;
     *  returns the iterator past the erased request. */
    std::map<std::uint64_t, ActiveRequest>::iterator
    retire(std::map<std::uint64_t, ActiveRequest>::iterator it,
           StreamEventKind kind, Status status);

    ExecutionService &service_;
    FrontEndPolicy policy_;
    EventSink sink_;
    std::shared_ptr<FaultInjector> injector_;
    std::map<int, Connection> connections_;
    /** Active requests keyed by ordinal (stable pump order). */
    std::map<std::uint64_t, ActiveRequest> active_;
    int nextConnection_ = 0;
    std::uint64_t nextRequest_ = 0;
    std::uint64_t nextDelivery_ = 0; ///< Fault-stream coordinate.
    FrontEndStats stats_;
};

} // namespace ingest
} // namespace qpulse

#endif // QPULSE_INGEST_FRONTEND_H
