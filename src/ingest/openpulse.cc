#include "ingest/openpulse.h"

#include <cmath>
#include <memory>
#include <vector>

#include "pulse/waveform.h"
#include "telemetry/metrics.h"

namespace qpulse {
namespace ingest {

namespace {

/** Shared formatting for every lowering rejection. */
class Lowerer
{
  public:
    Lowerer(std::string_view text, const IngestLimits &limits)
        : text_(text), limits_(limits)
    {}

    Status
    lower(const JsonValue &root, IngestedJob &out)
    {
        if (!root.isObject())
            return fail(ErrorCode::SchemaError,
                        std::string("document root must be an "
                                    "object, got ") +
                            root.kindName(),
                        root.offset());
        IngestedJob job;
        const JsonValue *qobj = root.find("qobj");
        Status status = qobj != nullptr
                            ? lowerEnvelope(root, *qobj, job)
                            : lowerSchedule(root, job);
        if (!status.ok())
            return status;
        out = std::move(job);
        return Status::okStatus();
    }

  private:
    Status
    fail(ErrorCode code, const std::string &detail,
         std::size_t offset) const
    {
        return Status::error(code,
                             detail + locationSuffix(text_, offset));
    }

    /** Fetch a member, requiring `kind`; nullptr when absent. */
    Status
    member(const JsonValue &object, const char *key,
           JsonValue::Kind kind, const JsonValue *&out) const
    {
        out = object.find(key);
        if (out == nullptr)
            return Status::okStatus();
        if (out->kind() != kind) {
            const char *want =
                kind == JsonValue::Kind::Number   ? "number"
                : kind == JsonValue::Kind::String ? "string"
                : kind == JsonValue::Kind::Array  ? "array"
                                                  : "object";
            return fail(ErrorCode::SchemaError,
                        std::string("field \"") + key +
                            "\" must be a " + want + ", got " +
                            out->kindName(),
                        out->offset());
        }
        return Status::okStatus();
    }

    /** Bounded string field with a default. */
    Status
    stringField(const JsonValue &object, const char *key,
                std::string &inout) const
    {
        const JsonValue *value = nullptr;
        Status status =
            member(object, key, JsonValue::Kind::String, value);
        if (!status.ok())
            return status;
        if (value == nullptr)
            return Status::okStatus();
        if (value->string().size() > limits_.maxNameBytes)
            return fail(ErrorCode::SizeLimitExceeded,
                        std::string("field \"") + key +
                            "\" longer than " +
                            std::to_string(limits_.maxNameBytes) +
                            " bytes",
                        value->offset());
        inout = value->string();
        return Status::okStatus();
    }

    /** Integral number field in [lo, hi] with a default. */
    Status
    integerField(const JsonValue &object, const char *key, double lo,
                 double hi, double &inout) const
    {
        const JsonValue *value = nullptr;
        Status status =
            member(object, key, JsonValue::Kind::Number, value);
        if (!status.ok())
            return status;
        if (value == nullptr)
            return Status::okStatus();
        const double number = value->number();
        if (number != std::floor(number))
            return fail(ErrorCode::SchemaError,
                        std::string("field \"") + key +
                            "\" must be an integer",
                        value->offset());
        if (number < lo || number > hi)
            return fail(ErrorCode::NumberOutOfRange,
                        std::string("field \"") + key + "\" = " +
                            std::to_string(number) + " outside [" +
                            std::to_string(lo) + ", " +
                            std::to_string(hi) + "]",
                        value->offset());
        inout = number;
        return Status::okStatus();
    }

    /** Reject members outside `allowed` (defensive boundary). */
    Status
    checkFields(const JsonValue &object,
                const std::vector<std::string_view> &allowed) const
    {
        for (const JsonValue::Member &m : object.members()) {
            bool known = false;
            for (std::string_view a : allowed)
                if (m.first == a) {
                    known = true;
                    break;
                }
            if (!known)
                return fail(ErrorCode::UnknownField,
                            "unknown field \"" + m.first + "\"",
                            m.second.offset());
        }
        return Status::okStatus();
    }

    Status
    lowerEnvelope(const JsonValue &root, const JsonValue &qobj,
                  IngestedJob &job)
    {
        Status fields = checkFields(
            root, {"qobj", "shots", "seed", "priority", "tenant",
                   "backend", "key"});
        if (!fields.ok())
            return fields;
        if (!qobj.isObject())
            return fail(ErrorCode::SchemaError,
                        std::string("field \"qobj\" must be an "
                                    "object, got ") +
                            qobj.kindName(),
                        qobj.offset());

        double shots = static_cast<double>(job.shots);
        Status status = integerField(
            root, "shots", 1.0,
            static_cast<double>(limits_.maxShots), shots);
        if (!status.ok())
            return status;
        job.shots = static_cast<long>(shots);

        // Seeds are transported as JSON numbers, so the usable range
        // is the exactly-representable doubles [0, 2^53).
        double seed = static_cast<double>(job.seed);
        status = integerField(root, "seed", 0.0, 9007199254740991.0,
                              seed);
        if (!status.ok())
            return status;
        job.seed = static_cast<std::uint64_t>(seed);

        double priority = static_cast<double>(job.priority);
        status = integerField(root, "priority", -100.0, 100.0,
                              priority);
        if (!status.ok())
            return status;
        job.priority = static_cast<int>(priority);

        status = stringField(root, "tenant", job.tenant);
        if (!status.ok())
            return status;
        status = stringField(root, "backend", job.backend);
        if (!status.ok())
            return status;
        status = stringField(root, "key", job.key);
        if (!status.ok())
            return status;
        return lowerSchedule(qobj, job);
    }

    Status
    lowerSchedule(const JsonValue &object, IngestedJob &job)
    {
        Status fields = checkFields(
            object, {"name", "duration", "instructions"});
        if (!fields.ok())
            return fields;

        Status status = stringField(object, "name", job.name);
        if (!status.ok())
            return status;
        job.schedule.setName(job.name);

        // "duration" is accepted for round-trip compatibility but
        // recomputed from the instructions; only its type is checked.
        const JsonValue *duration = nullptr;
        status = member(object, "duration",
                        JsonValue::Kind::Number, duration);
        if (!status.ok())
            return status;

        const JsonValue *instructions = nullptr;
        status = member(object, "instructions",
                        JsonValue::Kind::Array, instructions);
        if (!status.ok())
            return status;
        if (instructions == nullptr)
            return fail(ErrorCode::SchemaError,
                        "missing required field \"instructions\"",
                        object.offset());
        if (instructions->items().size() > limits_.maxInstructions)
            return fail(ErrorCode::SizeLimitExceeded,
                        "schedule has " +
                            std::to_string(
                                instructions->items().size()) +
                            " instructions (limit " +
                            std::to_string(limits_.maxInstructions) +
                            ")",
                        instructions->offset());

        for (const JsonValue &entry : instructions->items()) {
            status = lowerInstruction(entry, job.schedule);
            if (!status.ok())
                return status;
        }
        return Status::okStatus();
    }

    Status
    parseChannel(const JsonValue &value, Channel &out) const
    {
        const std::string &name = value.string();
        const bool shaped =
            name.size() >= 2 && name.size() <= 20 &&
            (name[0] == 'd' || name[0] == 'u' || name[0] == 'm' ||
             name[0] == 'a');
        bool digits = shaped;
        for (std::size_t i = 1; digits && i < name.size(); ++i)
            digits = name[i] >= '0' && name[i] <= '9';
        if (!digits)
            return fail(ErrorCode::SchemaError,
                        "channel \"" + name +
                            "\" is not d<i>/u<i>/m<i>/a<i>",
                        value.offset());
        unsigned long long index = 0;
        for (std::size_t i = 1; i < name.size(); ++i) {
            index = index * 10 +
                    static_cast<unsigned long long>(name[i] - '0');
            if (index > limits_.maxChannelIndex)
                return fail(ErrorCode::NumberOutOfRange,
                            "channel index of \"" + name +
                                "\" exceeds " +
                                std::to_string(
                                    limits_.maxChannelIndex),
                            value.offset());
        }
        switch (name[0]) {
          case 'd': out = driveChannel(index); break;
          case 'u': out = controlChannel(index); break;
          case 'm': out = measureChannel(index); break;
          default:  out = acquireChannel(index); break;
        }
        return Status::okStatus();
    }

    Status
    lowerInstruction(const JsonValue &entry, Schedule &schedule)
    {
        if (!entry.isObject())
            return fail(ErrorCode::SchemaError,
                        std::string("instruction must be an object, "
                                    "got ") +
                            entry.kindName(),
                        entry.offset());
        Status fields = checkFields(
            entry, {"t0", "ch", "name", "pulse", "duration", "phase",
                    "frequency", "samples"});
        if (!fields.ok())
            return fields;

        const JsonValue *name = nullptr;
        Status status =
            member(entry, "name", JsonValue::Kind::String, name);
        if (!status.ok())
            return status;
        if (name == nullptr)
            return fail(ErrorCode::SchemaError,
                        "instruction missing required field "
                        "\"name\"",
                        entry.offset());

        const JsonValue *ch = nullptr;
        status = member(entry, "ch", JsonValue::Kind::String, ch);
        if (!status.ok())
            return status;
        if (ch == nullptr)
            return fail(ErrorCode::SchemaError,
                        "instruction missing required field \"ch\"",
                        entry.offset());
        Channel channel{ChannelKind::Drive, 0};
        status = parseChannel(*ch, channel);
        if (!status.ok())
            return status;

        // t0 may be negative: NegativeTime belongs to the
        // validateSchedule gate, not the boundary. Only the magnitude
        // budget is enforced here.
        double t0 = 0.0;
        status = integerField(
            entry, "t0", -static_cast<double>(limits_.maxTime),
            static_cast<double>(limits_.maxTime), t0);
        if (!status.ok())
            return status;

        double duration = 0.0;
        status = integerField(entry, "duration", 0.0,
                              static_cast<double>(limits_.maxTime),
                              duration);
        if (!status.ok())
            return status;

        PulseInstruction inst;
        inst.channel = channel;
        inst.startTime = static_cast<long>(t0);
        const std::string &kind = name->string();

        if (kind == "play") {
            std::string pulse_name = "sampled";
            status = stringField(entry, "pulse", pulse_name);
            if (!status.ok())
                return status;
            const JsonValue *samples = nullptr;
            status = member(entry, "samples", JsonValue::Kind::Array,
                            samples);
            if (!status.ok())
                return status;
            if (samples == nullptr)
                return fail(ErrorCode::SchemaError,
                            "play instruction missing required "
                            "field \"samples\"",
                            entry.offset());
            if (samples->items().size() > limits_.maxSamples)
                return fail(
                    ErrorCode::SizeLimitExceeded,
                    "play has " +
                        std::to_string(samples->items().size()) +
                        " samples (limit " +
                        std::to_string(limits_.maxSamples) + ")",
                    samples->offset());
            std::vector<Complex> envelope;
            envelope.reserve(samples->items().size());
            for (const JsonValue &pair : samples->items()) {
                if (!pair.isArray() || pair.items().size() != 2 ||
                    !pair.items()[0].isNumber() ||
                    !pair.items()[1].isNumber())
                    return fail(ErrorCode::SchemaError,
                                "sample must be a [re, im] number "
                                "pair",
                                pair.offset());
                envelope.emplace_back(pair.items()[0].number(),
                                      pair.items()[1].number());
            }
            inst.kind = PulseInstructionKind::Play;
            inst.waveform = std::make_shared<SampledWaveform>(
                std::move(envelope), pulse_name);
            inst.duration = inst.waveform->duration();
        } else if (kind == "fc") {
            const JsonValue *phase = nullptr;
            status = member(entry, "phase", JsonValue::Kind::Number,
                            phase);
            if (!status.ok())
                return status;
            if (phase == nullptr)
                return fail(ErrorCode::SchemaError,
                            "fc instruction missing required field "
                            "\"phase\"",
                            entry.offset());
            inst.kind = PulseInstructionKind::ShiftPhase;
            inst.phase = phase->number();
        } else if (kind == "sf") {
            const JsonValue *frequency = nullptr;
            status = member(entry, "frequency",
                            JsonValue::Kind::Number, frequency);
            if (!status.ok())
                return status;
            if (frequency == nullptr)
                return fail(ErrorCode::SchemaError,
                            "sf instruction missing required field "
                            "\"frequency\"",
                            entry.offset());
            inst.kind = PulseInstructionKind::ShiftFrequency;
            inst.frequencyGhz = frequency->number();
        } else if (kind == "delay" || kind == "acquire") {
            if (entry.find("duration") == nullptr)
                return fail(ErrorCode::SchemaError,
                            kind + " instruction missing required "
                                   "field \"duration\"",
                            entry.offset());
            inst.kind = kind == "delay"
                            ? PulseInstructionKind::Delay
                            : PulseInstructionKind::Acquire;
            inst.duration = static_cast<long>(duration);
        } else {
            return fail(ErrorCode::SchemaError,
                        "unknown instruction \"" + kind +
                            "\" (expected play/fc/sf/delay/acquire)",
                        name->offset());
        }
        schedule.addInstruction(std::move(inst));
        return Status::okStatus();
    }

    std::string_view text_;
    const IngestLimits &limits_;
};

} // namespace

Status
lowerJob(const JsonValue &root, std::string_view text,
         const IngestLimits &limits, IngestedJob &out)
{
    Lowerer lowerer(text, limits);
    return lowerer.lower(root, out);
}

Status
parseJob(std::string_view text, const IngestLimits &limits,
         IngestedJob &out)
{
    static telemetry::Counter &parse_calls =
        telemetry::MetricsRegistry::global().counter(
            "ingest.parse.calls");
    static telemetry::Counter &parse_rejects =
        telemetry::MetricsRegistry::global().counter(
            "ingest.parse.rejects");
    parse_calls.increment();
    JsonValue root;
    Status status = parseJson(text, limits.json, root);
    if (status.ok())
        status = lowerJob(root, text, limits, out);
    if (!status.ok())
        parse_rejects.increment();
    return status;
}

} // namespace ingest
} // namespace qpulse
