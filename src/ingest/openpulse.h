/**
 * @file
 * Lowering of parsed OpenPulse-JSON documents into qpulse::Schedule
 * and service job parameters — the semantic half of the ingestion
 * boundary (json.h is the syntactic half).
 *
 * Two document forms are accepted:
 *
 *  1. a bare schedule object, exactly the wire format
 *     scheduleToQobjJson (pulse/qobj.h) emits with samples inlined:
 *       {"name": ..., "duration": ..., "instructions": [
 *          {"t0": 0, "ch": "d0", "name": "play", "pulse": ...,
 *           "duration": 16, "samples": [[re, im], ...]},
 *          {"t0": 16, "ch": "d0", "name": "fc", "phase": 1.57}, ...]}
 *
 *  2. a job envelope wrapping a schedule plus execution parameters:
 *       {"qobj": {<schedule object>}, "shots": 256, "seed": 7,
 *        "priority": 0, "tenant": "alice", "backend": "default",
 *        "key": "x180/q0"}
 *
 * Lowering is defensive in the same way the parser is: every
 * rejection is a distinct structured ErrorCode (SchemaError for
 * wrong-type/missing fields, UnknownField for fields outside the
 * schema, NumberOutOfRange / SizeLimitExceeded for field budgets) and
 * messages carry the canonical " at byte B (line L, column C)"
 * location of the offending value. What lowering does *not* check is
 * deliberate: physical-validity classes (NegativeTime,
 * AmplitudeSaturation, ZeroDurationPlay, channel budgets...) stay
 * the job of the existing validateSchedule gate, so the PR 2
 * taxonomy keeps one owner per defect class.
 */
#ifndef QPULSE_INGEST_OPENPULSE_H
#define QPULSE_INGEST_OPENPULSE_H

#include <cstdint>
#include <string>
#include <string_view>

#include "ingest/json.h"
#include "pulse/schedule.h"

namespace qpulse {
namespace ingest {

/** Semantic budgets for one ingested document. */
struct IngestLimits
{
    JsonLimits json;
    /** Max instructions in one schedule. */
    std::size_t maxInstructions = 4096;
    /** Max samples in one Play envelope. */
    std::size_t maxSamples = 64u << 10;
    /** |t0| and duration bound, in dt samples. */
    long maxTime = 1L << 40;
    /** Max shots one job may request. */
    long maxShots = 1L << 20;
    /** Max channel index accepted at the boundary. */
    std::size_t maxChannelIndex = 4096;
    /** Max bytes of a name/tenant/backend/key/pulse string. */
    std::size_t maxNameBytes = 256;
};

/** A validated, lowered job ready for the execution service. */
struct IngestedJob
{
    Schedule schedule;
    std::string name = "schedule";
    long shots = 256;
    std::uint64_t seed = 1;
    int priority = 0;
    std::string tenant = "default";
    std::string backend = "default";
    /** Stale-tracking identity forwarded to JobRequest::key. */
    std::string key;
};

/**
 * Lower a parsed document (either form) into `out`. `text` is the
 * original payload, used only to format the location suffix of error
 * messages. On any defect `out` is untouched and the returned Status
 * carries the structured code.
 */
Status lowerJob(const JsonValue &root, std::string_view text,
                const IngestLimits &limits, IngestedJob &out);

/** Parse + lower in one call: the full defensive front door. */
Status parseJob(std::string_view text, const IngestLimits &limits,
                IngestedJob &out);

} // namespace ingest
} // namespace qpulse

#endif // QPULSE_INGEST_OPENPULSE_H
