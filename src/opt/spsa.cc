#include "opt/spsa.h"

#include <cmath>

#include "common/logging.h"

namespace qpulse {

OptResult
spsa(const Objective &objective, const std::vector<double> &x0, Rng &rng,
     const SpsaOptions &options)
{
    qpulseRequire(!x0.empty(), "spsa requires a nonempty start");
    std::vector<double> x = x0;
    std::vector<double> best_x = x0;
    double best_f = objective(x0);

    const std::size_t n = x.size();
    for (int k = 0; k < options.iterations; ++k) {
        const double ak =
            options.a / std::pow(k + 1 + options.stability, options.alpha);
        const double ck = options.c / std::pow(k + 1, options.gamma);

        // Rademacher perturbation direction.
        std::vector<double> delta(n);
        for (auto &d : delta)
            d = rng.uniform() < 0.5 ? -1.0 : 1.0;

        std::vector<double> x_plus = x, x_minus = x;
        for (std::size_t i = 0; i < n; ++i) {
            x_plus[i] += ck * delta[i];
            x_minus[i] -= ck * delta[i];
        }
        const double f_plus = objective(x_plus);
        const double f_minus = objective(x_minus);
        const double diff = (f_plus - f_minus) / (2.0 * ck);

        for (std::size_t i = 0; i < n; ++i)
            x[i] -= ak * diff / delta[i];

        const double f_now = std::min(f_plus, f_minus);
        if (f_now < best_f) {
            best_f = f_now;
            best_x = f_plus < f_minus ? x_plus : x_minus;
        }
    }

    // One final evaluation at the terminal iterate.
    const double f_final = objective(x);
    OptResult result;
    if (f_final < best_f) {
        result.x = x;
        result.fun = f_final;
    } else {
        result.x = best_x;
        result.fun = best_f;
    }
    result.iterations = options.iterations;
    result.converged = true;
    return result;
}

double
brentMinimize(const std::function<double(double)> &f, double lo, double hi,
              double tol, int max_iter)
{
    qpulseRequire(hi > lo, "brentMinimize requires hi > lo");
    const double golden = 0.3819660112501051;

    double a = lo, b = hi;
    double x = a + golden * (b - a);
    double w = x, v = x;
    double fx = f(x), fw = fx, fv = fx;
    double d = 0.0, e = 0.0;

    for (int iter = 0; iter < max_iter; ++iter) {
        const double mid = 0.5 * (a + b);
        const double tol1 = tol * std::abs(x) + 1e-12;
        const double tol2 = 2.0 * tol1;
        if (std::abs(x - mid) <= tol2 - 0.5 * (b - a))
            break;

        bool use_golden = true;
        if (std::abs(e) > tol1) {
            // Parabolic interpolation through (x, w, v).
            const double r = (x - w) * (fx - fv);
            double q = (x - v) * (fx - fw);
            double p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if (q > 0.0)
                p = -p;
            q = std::abs(q);
            const double e_temp = e;
            e = d;
            if (std::abs(p) < std::abs(0.5 * q * e_temp) &&
                p > q * (a - x) && p < q * (b - x)) {
                d = p / q;
                const double u = x + d;
                if (u - a < tol2 || b - u < tol2)
                    d = (mid > x) ? tol1 : -tol1;
                use_golden = false;
            }
        }
        if (use_golden) {
            e = (x < mid) ? b - x : a - x;
            d = golden * e;
        }

        const double u =
            (std::abs(d) >= tol1) ? x + d : x + (d > 0 ? tol1 : -tol1);
        const double fu = f(u);
        if (fu <= fx) {
            if (u < x)
                b = x;
            else
                a = x;
            v = w; fv = fw;
            w = x; fw = fx;
            x = u; fx = fu;
        } else {
            if (u < x)
                a = u;
            else
                b = u;
            if (fu <= fw || w == x) {
                v = w; fv = fw;
                w = u; fw = fu;
            } else if (fu <= fv || v == x || v == w) {
                v = u; fv = fu;
            }
        }
    }
    return x;
}

} // namespace qpulse
