/**
 * @file
 * Simultaneous Perturbation Stochastic Approximation (SPSA) and Brent
 * 1-D minimisation.
 *
 * SPSA trains the VQE/QAOA variational parameters in the Figure 12
 * benchmarks: it tolerates the shot noise of sampled expectation values
 * with only two objective evaluations per step, which is why it is the
 * de-facto optimiser for near-term variational experiments.
 */
#ifndef QPULSE_OPT_SPSA_H
#define QPULSE_OPT_SPSA_H

#include "opt/nelder_mead.h"

namespace qpulse {

/** SPSA hyper-parameters (standard Spall schedule). */
struct SpsaOptions
{
    int iterations = 200;
    double a = 0.2;        ///< Step-size scale.
    double c = 0.1;        ///< Perturbation scale.
    double alpha = 0.602;  ///< Step-size decay exponent.
    double gamma = 0.101;  ///< Perturbation decay exponent.
    double stability = 10; ///< Step-size stabiliser A.
};

/**
 * Minimise a (possibly noisy) objective with SPSA.
 *
 * @param objective Noisy objective (e.g. sampled energy).
 * @param x0        Initial parameters.
 * @param rng       RNG for the Rademacher perturbations.
 * @param options   Schedule knobs.
 */
OptResult spsa(const Objective &objective, const std::vector<double> &x0,
               Rng &rng, const SpsaOptions &options = {});

/**
 * Brent-style 1-D minimisation on [lo, hi] (golden-section with
 * parabolic acceleration). Used by calibration scans that tune a single
 * amplitude or DRAG coefficient.
 */
double brentMinimize(const std::function<double(double)> &f, double lo,
                     double hi, double tol = 1e-8, int max_iter = 200);

} // namespace qpulse

#endif // QPULSE_OPT_SPSA_H
