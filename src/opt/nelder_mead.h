/**
 * @file
 * Derivative-free minimisation: Nelder-Mead simplex plus a COBYLA-style
 * constrained wrapper.
 *
 * The paper (Section 3.2) computes the parametrized CR(theta)
 * decomposition-cost column of Table 2 with scipy's COBYLA under a
 * 99.9% fidelity constraint. We reproduce the same search with a
 * restarted Nelder-Mead simplex and a quadratic penalty for the
 * fidelity constraint, which converges reliably on these small smooth
 * landscapes.
 */
#ifndef QPULSE_OPT_NELDER_MEAD_H
#define QPULSE_OPT_NELDER_MEAD_H

#include <functional>
#include <vector>

#include "common/rng.h"

namespace qpulse {

/** Objective over a real parameter vector. */
using Objective = std::function<double(const std::vector<double> &)>;

/** Configuration for the Nelder-Mead simplex. */
struct NelderMeadOptions
{
    int maxIterations = 4000;
    double initialStep = 0.5;      ///< Simplex edge length.
    double fTolerance = 1e-12;     ///< Spread-of-values stop criterion.
    double xTolerance = 1e-10;     ///< Simplex-size stop criterion.
};

/** Result of an optimisation run. */
struct OptResult
{
    std::vector<double> x;  ///< Best parameter vector found.
    double fun = 0.0;       ///< Objective value at x.
    int iterations = 0;     ///< Iterations consumed.
    bool converged = false; ///< Whether a stop criterion fired.
};

/**
 * Minimise an objective with the Nelder-Mead simplex method.
 *
 * @param objective Function to minimise.
 * @param x0        Starting point (defines the dimension).
 * @param options   Algorithm knobs.
 */
OptResult nelderMead(const Objective &objective,
                     const std::vector<double> &x0,
                     const NelderMeadOptions &options = {});

/**
 * Multi-start Nelder-Mead: run from x0 and from uniformly random
 * restarts within [-span, span]^n, keeping the best result. This is
 * the workhorse behind the Table 2 decomposition-cost search.
 */
OptResult nelderMeadMultiStart(const Objective &objective,
                               const std::vector<double> &x0, int restarts,
                               double span, Rng &rng,
                               const NelderMeadOptions &options = {});

/** A single inequality constraint g(x) >= 0 (COBYLA convention). */
using Constraint = std::function<double(const std::vector<double> &)>;

/**
 * COBYLA-style constrained minimisation via quadratic penalty with an
 * escalating penalty weight: minimise f(x) subject to g_i(x) >= 0.
 *
 * Matches how the paper's decomposer enforces the ">= 99.9% fidelity"
 * requirement while minimising pulse cost.
 */
OptResult constrainedMinimize(const Objective &objective,
                              const std::vector<Constraint> &constraints,
                              const std::vector<double> &x0, int restarts,
                              double span, Rng &rng,
                              const NelderMeadOptions &options = {});

} // namespace qpulse

#endif // QPULSE_OPT_NELDER_MEAD_H
