#include "opt/fitting.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/logging.h"
#include "linalg/eigen.h"

namespace qpulse {

FitResult
levenbergMarquardt(const FitModel &model, const std::vector<double> &xs,
                   const std::vector<double> &ys, std::vector<double> p0,
                   int max_iterations)
{
    qpulseRequire(xs.size() == ys.size(), "fit data size mismatch");
    qpulseRequire(!p0.empty(), "fit requires at least one parameter");

    const std::size_t n_params = p0.size();
    const std::size_t n_points = xs.size();

    auto residual_sum = [&](const std::vector<double> &params) {
        double total = 0.0;
        for (std::size_t i = 0; i < n_points; ++i) {
            const double r = ys[i] - model(xs[i], params);
            total += r * r;
        }
        return total;
    };

    std::vector<double> params = p0;
    double current = residual_sum(params);
    double lambda = 1e-3;

    FitResult result;
    for (int iter = 0; iter < max_iterations; ++iter) {
        // Numeric Jacobian.
        std::vector<std::vector<double>> jacobian(
            n_points, std::vector<double>(n_params, 0.0));
        std::vector<double> residuals(n_points);
        for (std::size_t i = 0; i < n_points; ++i)
            residuals[i] = ys[i] - model(xs[i], params);
        for (std::size_t j = 0; j < n_params; ++j) {
            const double step =
                1e-7 * std::max(1.0, std::abs(params[j]));
            std::vector<double> perturbed = params;
            perturbed[j] += step;
            for (std::size_t i = 0; i < n_points; ++i) {
                const double plus = model(xs[i], perturbed);
                const double base = model(xs[i], params);
                jacobian[i][j] = (plus - base) / step;
            }
        }

        // Normal equations (J^T J + lambda diag) dp = J^T r.
        std::vector<std::vector<double>> jtj(
            n_params, std::vector<double>(n_params, 0.0));
        std::vector<double> jtr(n_params, 0.0);
        for (std::size_t i = 0; i < n_points; ++i) {
            for (std::size_t a = 0; a < n_params; ++a) {
                jtr[a] += jacobian[i][a] * residuals[i];
                for (std::size_t b = 0; b < n_params; ++b)
                    jtj[a][b] += jacobian[i][a] * jacobian[i][b];
            }
        }

        bool improved = false;
        for (int attempt = 0; attempt < 12 && !improved; ++attempt) {
            auto damped = jtj;
            for (std::size_t a = 0; a < n_params; ++a)
                damped[a][a] += lambda * std::max(jtj[a][a], 1e-12);
            std::vector<double> delta;
            try {
                delta = solveLinearReal(damped, jtr);
            } catch (const FatalError &) {
                lambda *= 10.0;
                continue;
            }
            std::vector<double> trial = params;
            for (std::size_t a = 0; a < n_params; ++a)
                trial[a] += delta[a];
            const double trial_cost = residual_sum(trial);
            if (trial_cost < current) {
                params = trial;
                current = trial_cost;
                lambda = std::max(lambda * 0.3, 1e-12);
                improved = true;
            } else {
                lambda *= 10.0;
            }
        }
        if (!improved) {
            result.converged = true;
            break;
        }
        if (current < 1e-18) {
            result.converged = true;
            break;
        }
    }

    result.params = params;
    result.residualSumSq = current;
    return result;
}

FitResult
fitCosine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    qpulseRequire(xs.size() == ys.size() && xs.size() >= 4,
                  "fitCosine requires >= 4 points");

    const FitModel model = [](double x, const std::vector<double> &p) {
        // p = {offset, amplitude, frequency, phase}
        return p[0] + p[1] * std::cos(2.0 * kPi * p[2] * x + p[3]);
    };

    const double y_mean = mean(ys);
    double y_min = ys[0], y_max = ys[0];
    for (double y : ys) {
        y_min = std::min(y_min, y);
        y_max = std::max(y_max, y);
    }
    const double amp0 = std::max((y_max - y_min) / 2.0, 1e-6);
    const double x_span = xs.back() - xs.front();
    qpulseRequire(x_span > 0.0, "fitCosine requires increasing abscissae");

    // Frequencies above the Nyquist limit of the sampling alias onto
    // low frequencies and must be rejected or the fit can lock onto a
    // spurious high-frequency solution.
    double min_spacing = x_span;
    for (std::size_t i = 1; i < xs.size(); ++i)
        min_spacing = std::min(min_spacing, xs[i] - xs[i - 1]);
    qpulseRequire(min_spacing > 0.0,
                  "fitCosine requires strictly increasing abscissae");
    const double nyquist = 0.5 / min_spacing;

    // Coarse frequency grid search up to (just below) Nyquist.
    FitResult best;
    best.residualSumSq = 1e300;
    const int grid = 160;
    for (int k = 1; k <= grid; ++k) {
        const double freq = std::min(0.05 * k / x_span, 0.95 * nyquist);
        for (double phase : {0.0, kPi / 2, kPi, 3 * kPi / 2}) {
            FitResult fit = levenbergMarquardt(
                model, xs, ys, {y_mean, amp0, freq, phase}, 60);
            if (std::abs(fit.params[2]) > nyquist)
                continue;
            if (fit.residualSumSq < best.residualSumSq)
                best = fit;
        }
        if (best.residualSumSq <
                1e-8 * static_cast<double>(xs.size()) ||
            0.05 * k / x_span >= nyquist)
            break;
    }
    qpulseRequire(best.residualSumSq < 1e300,
                  "fitCosine failed to find a sub-Nyquist fit");
    // Normalise: frequency positive (cos is even) and amplitude
    // positive (fold the sign into the phase), phase wrapped.
    if (best.params[2] < 0.0) {
        best.params[2] = -best.params[2];
        best.params[3] = -best.params[3];
    }
    if (best.params[1] < 0.0) {
        best.params[1] = -best.params[1];
        best.params[3] += kPi;
    }
    best.params[3] = std::remainder(best.params[3], 2.0 * kPi);
    best.converged = true;
    return best;
}

FitResult
fitExponentialDecay(const std::vector<double> &ks,
                    const std::vector<double> &ys)
{
    qpulseRequire(ks.size() == ys.size() && ks.size() >= 3,
                  "fitExponentialDecay requires >= 3 points");

    const FitModel model = [](double k, const std::vector<double> &p) {
        // p = {a, f, b}: y = a * f^k + b
        return p[0] * std::pow(std::max(p[1], 1e-12), k) + p[2];
    };

    // Initial estimate: assume b ~ min(y)/2 and estimate f from the
    // endpoint ratio.
    double y_min = ys[0], y_max = ys[0];
    for (double y : ys) {
        y_min = std::min(y_min, y);
        y_max = std::max(y_max, y);
    }
    const double b0 = std::max(0.0, y_min - 0.1 * (y_max - y_min));
    const double a0 = std::max(y_max - b0, 1e-3);
    double f0 = 0.99;
    if (ys.front() - b0 > 1e-9 && ys.back() - b0 > 1e-9) {
        const double ratio = (ys.back() - b0) / (ys.front() - b0);
        const double dk = ks.back() - ks.front();
        if (ratio > 0.0 && dk > 0.0)
            f0 = std::min(0.999999, std::pow(ratio, 1.0 / dk));
    }

    FitResult fit =
        levenbergMarquardt(model, ks, ys, {a0, f0, b0}, 400);
    fit.converged = true;
    return fit;
}

FitResult
fitExponentialDecayFixedOffset(const std::vector<double> &ks,
                               const std::vector<double> &ys,
                               double offset)
{
    qpulseRequire(ks.size() == ys.size() && ks.size() >= 2,
                  "fitExponentialDecayFixedOffset requires >= 2 points");

    const FitModel model = [offset](double k,
                                    const std::vector<double> &p) {
        // p = {a, f}: y = a * f^k + offset.
        return p[0] * std::pow(std::max(p[1], 1e-12), k) + offset;
    };

    const double a0 = std::max(ys.front() - offset, 1e-3);
    double f0 = 0.999;
    if (ys.front() - offset > 1e-9 && ys.back() - offset > 1e-9) {
        const double ratio = (ys.back() - offset) / (ys.front() - offset);
        const double dk = ks.back() - ks.front();
        if (ratio > 0.0 && dk > 0.0)
            f0 = std::min(0.999999, std::pow(ratio, 1.0 / dk));
    }

    FitResult fit = levenbergMarquardt(model, ks, ys, {a0, f0}, 400);
    fit.params.push_back(offset);
    fit.converged = true;
    return fit;
}

double
mean(const std::vector<double> &xs)
{
    qpulseRequire(!xs.empty(), "mean of empty sample");
    double total = 0.0;
    for (double x : xs)
        total += x;
    return total / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    const double mu = mean(xs);
    double total = 0.0;
    for (double x : xs)
        total += (x - mu) * (x - mu);
    return std::sqrt(total / static_cast<double>(xs.size()));
}

} // namespace qpulse
