#include "opt/nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qpulse {

namespace {

/** A simplex vertex: parameter vector plus cached objective value. */
struct Vertex
{
    std::vector<double> x;
    double f = 0.0;
};

std::vector<double>
centroidExcludingWorst(const std::vector<Vertex> &simplex)
{
    const std::size_t n = simplex.front().x.size();
    std::vector<double> centroid(n, 0.0);
    for (std::size_t v = 0; v + 1 < simplex.size(); ++v)
        for (std::size_t i = 0; i < n; ++i)
            centroid[i] += simplex[v].x[i];
    for (auto &c : centroid)
        c /= static_cast<double>(simplex.size() - 1);
    return centroid;
}

std::vector<double>
affine(const std::vector<double> &base, const std::vector<double> &dir,
       double scale)
{
    std::vector<double> result(base.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        result[i] = base[i] + scale * (dir[i] - base[i]);
    return result;
}

} // namespace

OptResult
nelderMead(const Objective &objective, const std::vector<double> &x0,
           const NelderMeadOptions &options)
{
    qpulseRequire(!x0.empty(), "nelderMead requires a nonempty start");
    const std::size_t n = x0.size();

    std::vector<Vertex> simplex(n + 1);
    simplex[0] = {x0, objective(x0)};
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> x = x0;
        x[i] += options.initialStep;
        simplex[i + 1] = {x, objective(x)};
    }

    auto by_value = [](const Vertex &a, const Vertex &b) {
        return a.f < b.f;
    };

    OptResult result;
    int iter = 0;
    for (; iter < options.maxIterations; ++iter) {
        std::sort(simplex.begin(), simplex.end(), by_value);

        // Convergence: spread of objective values and simplex extent.
        const double f_spread = simplex.back().f - simplex.front().f;
        double x_spread = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            x_spread = std::max(x_spread,
                                std::abs(simplex.back().x[i] -
                                         simplex.front().x[i]));
        if (std::abs(f_spread) < options.fTolerance &&
            x_spread < options.xTolerance) {
            result.converged = true;
            break;
        }

        const auto centroid = centroidExcludingWorst(simplex);
        Vertex &worst = simplex.back();

        // Reflection.
        const auto reflected = affine(centroid, worst.x, -1.0);
        const double f_reflected = objective(reflected);

        if (f_reflected < simplex.front().f) {
            // Expansion.
            const auto expanded = affine(centroid, worst.x, -2.0);
            const double f_expanded = objective(expanded);
            if (f_expanded < f_reflected)
                worst = {expanded, f_expanded};
            else
                worst = {reflected, f_reflected};
        } else if (f_reflected < simplex[n - 1].f) {
            worst = {reflected, f_reflected};
        } else {
            // Contraction (outside if reflected beats worst, else inside).
            const bool outside = f_reflected < worst.f;
            const auto contracted =
                affine(centroid, outside ? reflected : worst.x, 0.5);
            const double f_contracted = objective(contracted);
            if (f_contracted < std::min(worst.f, f_reflected)) {
                worst = {contracted, f_contracted};
            } else {
                // Shrink toward the best vertex.
                for (std::size_t v = 1; v < simplex.size(); ++v) {
                    simplex[v].x =
                        affine(simplex[0].x, simplex[v].x, 0.5);
                    simplex[v].f = objective(simplex[v].x);
                }
            }
        }
    }

    std::sort(simplex.begin(), simplex.end(), by_value);
    result.x = simplex.front().x;
    result.fun = simplex.front().f;
    result.iterations = iter;
    return result;
}

OptResult
nelderMeadMultiStart(const Objective &objective,
                     const std::vector<double> &x0, int restarts,
                     double span, Rng &rng,
                     const NelderMeadOptions &options)
{
    OptResult best = nelderMead(objective, x0, options);
    for (int r = 0; r < restarts; ++r) {
        std::vector<double> start(x0.size());
        for (auto &value : start)
            value = rng.uniform(-span, span);
        OptResult candidate = nelderMead(objective, start, options);
        if (candidate.fun < best.fun)
            best = candidate;
    }
    return best;
}

OptResult
constrainedMinimize(const Objective &objective,
                    const std::vector<Constraint> &constraints,
                    const std::vector<double> &x0, int restarts,
                    double span, Rng &rng, const NelderMeadOptions &options)
{
    // Escalating quadratic penalty: violated constraints (g < 0)
    // contribute weight * g^2. The penalty solution can sit a hair on
    // the infeasible side of an active constraint (g ~ -1/weight), so
    // feasibility is judged with a small tolerance.
    constexpr double feasibility_tol = 1e-6;
    OptResult best;
    bool have_best = false;
    double weight = 1e3;
    std::vector<double> start = x0;
    OptResult last_candidate;
    for (int round = 0; round < 5; ++round, weight *= 100.0) {
        const double w = weight;
        Objective penalized = [&](const std::vector<double> &x) {
            double value = objective(x);
            if (!std::isfinite(value))
                return 1e30;
            for (const auto &g : constraints) {
                const double slack = g(x);
                if (!std::isfinite(slack))
                    return 1e30;
                if (slack < 0.0)
                    value += w * slack * slack;
            }
            return value;
        };
        OptResult candidate =
            nelderMeadMultiStart(penalized, start, restarts, span, rng,
                                 options);
        bool feasible = true;
        for (const auto &g : constraints)
            if (g(candidate.x) < -feasibility_tol)
                feasible = false;
        if (feasible && (!have_best || objective(candidate.x) <
                                           best.fun)) {
            best = candidate;
            // Re-evaluate true objective (without penalty) at solution.
            best.fun = objective(best.x);
            have_best = true;
        }
        start = candidate.x;
        last_candidate = candidate;
    }
    if (!have_best) {
        // No feasible point found: return the final penalty iterate,
        // flagged as non-converged so the caller can reject it.
        best = last_candidate;
        best.fun = objective(best.x);
        best.converged = false;
    }
    return best;
}

} // namespace qpulse
