/**
 * @file
 * Curve-fitting routines used by the calibration and benchmarking
 * harnesses: sinusoid fits for Rabi amplitude scans, exponential-decay
 * fits (f^K - b) for the randomized-benchmarking analysis of Figure 13,
 * and a small Levenberg-Marquardt engine underneath both.
 */
#ifndef QPULSE_OPT_FITTING_H
#define QPULSE_OPT_FITTING_H

#include <functional>
#include <vector>

namespace qpulse {

/** Model y = f(x; params) with analytic evaluation only. */
using FitModel =
    std::function<double(double x, const std::vector<double> &params)>;

/** Result of a least-squares fit. */
struct FitResult
{
    std::vector<double> params;  ///< Best-fit parameters.
    double residualSumSq = 0.0;  ///< Sum of squared residuals.
    bool converged = false;
};

/**
 * Levenberg-Marquardt least squares with numeric Jacobian.
 *
 * @param model  Model function.
 * @param xs     Sample abscissae.
 * @param ys     Sample ordinates.
 * @param p0     Initial parameter guess.
 */
FitResult levenbergMarquardt(const FitModel &model,
                             const std::vector<double> &xs,
                             const std::vector<double> &ys,
                             std::vector<double> p0, int max_iterations = 200);

/**
 * Fit y = offset + amplitude * cos(2 pi freq * x + phase).
 *
 * Used by the Rabi calibration scan: the pi-pulse amplitude is half a
 * period of the fitted oscillation. Initial frequency is found with a
 * coarse grid search, so the caller needs no good guess.
 */
FitResult fitCosine(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/**
 * Fit the randomized-benchmarking decay y = a * f^K + b.
 *
 * Section 8.3 fits "f^K - b"; the general affine-exponential form
 * covers it and is the standard RB estimator. Returns {a, f, b}.
 */
FitResult fitExponentialDecay(const std::vector<double> &ks,
                              const std::vector<double> &ys);

/**
 * Same decay model with the offset pinned to a known asymptote
 * (e.g. the maximally-mixed-state survival through the readout):
 * y = a * f^K + b_fixed, fitting only {a, f}. In the slow-decay
 * regime the three-parameter fit is ill-conditioned (a near-linear
 * curve cannot separate a, f and b), so RB analysis pins b.
 * Returns {a, f, b_fixed} for interface parity.
 */
FitResult fitExponentialDecayFixedOffset(const std::vector<double> &ks,
                                         const std::vector<double> &ys,
                                         double offset);

/** Mean of a sample. */
double mean(const std::vector<double> &xs);

/** Population standard deviation of a sample. */
double stddev(const std::vector<double> &xs);

} // namespace qpulse

#endif // QPULSE_OPT_FITTING_H
