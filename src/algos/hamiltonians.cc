#include "algos/hamiltonians.h"

#include "common/logging.h"

namespace qpulse {

PauliOperator
h2Hamiltonian()
{
    // Two-qubit reduced H2 near equilibrium bond length, in the
    // g0 II + g1 ZI + g2 IZ + g3 ZZ + g4 XX + g5 YY form standard for
    // two-electron / two-orbital problems (coefficients in Hartree).
    PauliOperator h(2);
    h.addTerm(-0.3980, "II");
    h.addTerm(0.3593, "ZI");
    h.addTerm(-0.3593, "IZ");
    h.addTerm(-0.0113, "ZZ");
    h.addTerm(0.1810, "XX");
    h.addTerm(0.1810, "YY");
    return h;
}

PauliOperator
lihHamiltonian()
{
    // Two-qubit reduced LiH (frozen-core + symmetry reduction),
    // dominated by single-Z and ZZ terms with a weaker exchange part.
    PauliOperator h(2);
    h.addTerm(-7.4989, "II");
    h.addTerm(0.0129, "ZI");
    h.addTerm(0.0129, "IZ");
    h.addTerm(0.1535, "ZZ");
    h.addTerm(0.0933, "XX");
    h.addTerm(0.0933, "YY");
    h.addTerm(-0.0033, "XZ");
    h.addTerm(-0.0033, "ZX");
    return h;
}

PauliOperator
methaneHamiltonian()
{
    // Two-qubit reduced CH4 dynamics kernel (orbital-reduced).
    PauliOperator h(2);
    h.addTerm(-13.8410, "II");
    h.addTerm(0.2628, "ZI");
    h.addTerm(-0.2628, "IZ");
    h.addTerm(0.1942, "ZZ");
    h.addTerm(0.0862, "XX");
    return h;
}

PauliOperator
waterHamiltonian()
{
    // Two-qubit reduced H2O dynamics kernel (orbital-reduced).
    PauliOperator h(2);
    h.addTerm(-74.3821, "II");
    h.addTerm(0.3421, "ZI");
    h.addTerm(-0.3421, "IZ");
    h.addTerm(0.2305, "ZZ");
    h.addTerm(0.1124, "XX");
    h.addTerm(0.1124, "YY");
    return h;
}

PauliOperator
maxcutLineHamiltonian(std::size_t n_qubits)
{
    qpulseRequire(n_qubits >= 2, "MAXCUT needs >= 2 qubits");
    PauliOperator cost(n_qubits);
    // C = sum over edges of (1 - Z_i Z_j) / 2.
    cost.addTerm(0.5 * static_cast<double>(n_qubits - 1),
                 PauliString(n_qubits));
    for (std::size_t i = 0; i + 1 < n_qubits; ++i) {
        PauliString zz(n_qubits);
        zz.setOp(i, PauliOp::Z);
        zz.setOp(i + 1, PauliOp::Z);
        cost.addTerm(-0.5, zz);
    }
    return cost;
}

int
maxcutLineValue(std::size_t n_qubits, std::size_t bitstring)
{
    int cut = 0;
    for (std::size_t i = 0; i + 1 < n_qubits; ++i) {
        const bool a = (bitstring >> (n_qubits - 1 - i)) & 1;
        const bool b = (bitstring >> (n_qubits - 2 - i)) & 1;
        if (a != b)
            ++cut;
    }
    return cut;
}

} // namespace qpulse
