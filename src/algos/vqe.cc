#include "algos/vqe.h"

#include <cmath>

#include "common/constants.h"
#include "opt/nelder_mead.h"

namespace qpulse {

VariationalResult
runVqe2q(const PauliOperator &hamiltonian)
{
    qpulseRequire(hamiltonian.numQubits() == 2,
                  "runVqe2q expects a two-qubit Hamiltonian");

    Objective energy = [&](const std::vector<double> &params) {
        const QuantumCircuit ansatz = uccAnsatz2q(params[0]);
        return hamiltonian.expectation(ansatz.runStatevector());
    };

    Rng seeded(0x5EED);
    const OptResult best =
        nelderMeadMultiStart(energy, {0.1}, 8, kPi, seeded);

    VariationalResult result;
    result.params = best.x;
    result.value = best.fun;
    result.reference = hamiltonian.groundStateEnergy();
    return result;
}

VariationalResult
runQaoaLine(std::size_t n_qubits, int layers)
{
    qpulseRequire(layers >= 1, "QAOA needs >= 1 layer");
    const PauliOperator cost = maxcutLineHamiltonian(n_qubits);

    Objective negative_cut = [&](const std::vector<double> &params) {
        std::vector<double> gammas(params.begin(),
                                   params.begin() + layers);
        std::vector<double> betas(params.begin() + layers, params.end());
        const QuantumCircuit circuit =
            qaoaLineCircuit(n_qubits, gammas, betas);
        return -cost.expectation(circuit.runStatevector());
    };

    Rng seeded(0x9A0A);
    std::vector<double> x0(2 * static_cast<std::size_t>(layers), 0.4);
    const OptResult best =
        nelderMeadMultiStart(negative_cut, x0, 12, kPi, seeded);

    VariationalResult result;
    result.params = best.x;
    result.value = -best.fun;
    result.reference = static_cast<double>(n_qubits - 1);
    return result;
}

double
expectedCutValue(std::size_t n_qubits, const std::vector<double> &probs)
{
    double total = 0.0;
    for (std::size_t bits = 0; bits < probs.size(); ++bits)
        total += probs[bits] *
                 static_cast<double>(maxcutLineValue(n_qubits, bits));
    return total;
}

} // namespace qpulse
