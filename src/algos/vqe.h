/**
 * @file
 * Variational drivers for the Figure 12 benchmarks: a VQE loop over
 * the two-qubit UCC ansatz (H2/LiH ground-state estimation) and a
 * QAOA-MAXCUT driver on line graphs. Training runs against ideal
 * (noise-free) expectation values — the paper's benchmarks compare
 * compiled executions of the *trained* circuits — with SPSA available
 * for shot-noise-robust training experiments.
 */
#ifndef QPULSE_ALGOS_VQE_H
#define QPULSE_ALGOS_VQE_H

#include "algos/circuits.h"
#include "algos/hamiltonians.h"
#include "opt/spsa.h"

namespace qpulse {

/** Outcome of a variational optimisation. */
struct VariationalResult
{
    std::vector<double> params; ///< Optimal parameters found.
    double value = 0.0;         ///< Objective at the optimum.
    double reference = 0.0;     ///< Exact target (ground energy / cut).
};

/**
 * Train the two-qubit UCC ansatz against a molecular Hamiltonian.
 * Returns the optimal exchange angle and the achieved energy, with
 * the exact ground-state energy as reference.
 */
VariationalResult runVqe2q(const PauliOperator &hamiltonian);

/**
 * Train p-layer QAOA-MAXCUT on an n-qubit line graph (noise-free
 * expectation maximisation over gammas/betas). The reference value is
 * the true MAXCUT size (n - 1 for a line).
 */
VariationalResult runQaoaLine(std::size_t n_qubits, int layers);

/** Expected cut value <C> of a distribution over bitstrings. */
double expectedCutValue(std::size_t n_qubits,
                        const std::vector<double> &probs);

} // namespace qpulse

#endif // QPULSE_ALGOS_VQE_H
