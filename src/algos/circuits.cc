#include "algos/circuits.h"

#include <cmath>

#include "common/constants.h"

namespace qpulse {

namespace {

/** Qubits a Pauli string touches non-trivially. */
std::vector<std::size_t>
support(const PauliString &string)
{
    std::vector<std::size_t> wires;
    for (std::size_t q = 0; q < string.numQubits(); ++q)
        if (string.op(q) != PauliOp::I)
            wires.push_back(q);
    return wires;
}

/** Basis change taking the string's factors onto Z (forward = true)
 *  or back (forward = false). */
void
appendBasisChange(QuantumCircuit &circuit, const PauliString &string,
                  bool forward)
{
    for (std::size_t q = 0; q < string.numQubits(); ++q) {
        switch (string.op(q)) {
          case PauliOp::X:
            circuit.h(q);
            break;
          case PauliOp::Y:
            // Y -> Z via Sdg then H (forward), H then S (back).
            if (forward) {
                circuit.sdg(q);
                circuit.h(q);
            } else {
                circuit.h(q);
                circuit.s(q);
            }
            break;
          default:
            break;
        }
    }
}

} // namespace

void
appendTrotterStep(QuantumCircuit &circuit, const PauliOperator &h,
                  double dt)
{
    for (const auto &term : h.terms()) {
        const auto wires = support(term.string);
        if (wires.empty())
            continue; // Identity: global phase only.
        const double angle = 2.0 * term.coefficient * dt;
        if (std::abs(angle) < 1e-14)
            continue;

        appendBasisChange(circuit, term.string, true);
        if (wires.size() == 1) {
            circuit.rz(angle, wires[0]);
        } else {
            // CX ladder onto the last wire, Rz, unladder — the
            // "textbook" exp(-i theta/2 Z...Z) circuit whose inner
            // CX . Rz . CX pair is the compiler's ZZ template.
            for (std::size_t k = 0; k + 1 < wires.size(); ++k)
                circuit.cx(wires[k], wires[k + 1]);
            circuit.rz(angle, wires.back());
            for (std::size_t k = wires.size() - 1; k-- > 0;)
                circuit.cx(wires[k], wires[k + 1]);
        }
        appendBasisChange(circuit, term.string, false);
    }
}

QuantumCircuit
trotterCircuit(const PauliOperator &h, double total_time, int steps)
{
    qpulseRequire(steps > 0, "trotterCircuit needs >= 1 step");
    QuantumCircuit circuit(h.numQubits());
    const double dt = total_time / static_cast<double>(steps);
    for (int s = 0; s < steps; ++s)
        appendTrotterStep(circuit, h, dt);
    return circuit;
}

QuantumCircuit
uccAnsatz2q(double theta)
{
    // Reference |01> then the two-parameter-free exchange rotation
    // exp(-i theta (X0 Y1 - Y0 X1) / 2) in textbook gates.
    QuantumCircuit circuit(2);
    circuit.x(1);
    // exp(-i theta/2 * X (x) Y):
    circuit.h(0);
    circuit.sdg(1);
    circuit.h(1);
    circuit.cx(0, 1);
    circuit.rz(theta, 1);
    circuit.cx(0, 1);
    circuit.h(0);
    circuit.h(1);
    circuit.s(1);
    // exp(+i theta/2 * Y (x) X):
    circuit.sdg(0);
    circuit.h(0);
    circuit.h(1);
    circuit.cx(0, 1);
    circuit.rz(-theta, 1);
    circuit.cx(0, 1);
    circuit.h(0);
    circuit.s(0);
    circuit.h(1);
    return circuit;
}

QuantumCircuit
qaoaLineCircuit(std::size_t n_qubits, const std::vector<double> &gammas,
                const std::vector<double> &betas)
{
    qpulseRequire(gammas.size() == betas.size() && !gammas.empty(),
                  "QAOA needs matching, nonempty angle lists");
    QuantumCircuit circuit(n_qubits);
    for (std::size_t q = 0; q < n_qubits; ++q)
        circuit.h(q);
    for (std::size_t layer = 0; layer < gammas.size(); ++layer) {
        // Cost unitary: exp(-i gamma sum ZZ/2)-style phase separation,
        // written with textbook CX . Rz . CX pairs.
        for (std::size_t q = 0; q + 1 < n_qubits; ++q) {
            circuit.cx(q, q + 1);
            circuit.rz(gammas[layer], q + 1);
            circuit.cx(q, q + 1);
        }
        // Mixer.
        for (std::size_t q = 0; q < n_qubits; ++q)
            circuit.rx(2.0 * betas[layer], q);
    }
    return circuit;
}

QuantumCircuit
qftCircuit(std::size_t n_qubits)
{
    QuantumCircuit circuit(n_qubits);
    for (std::size_t i = 0; i < n_qubits; ++i) {
        circuit.h(i);
        for (std::size_t j = i + 1; j < n_qubits; ++j) {
            // Controlled phase via the textbook CX sandwich.
            const double angle = kPi / std::pow(2.0, double(j - i));
            circuit.rz(angle / 2, i);
            circuit.cx(j, i);
            circuit.rz(-angle / 2, i);
            circuit.cx(j, i);
            circuit.rz(angle / 2, j);
        }
    }
    for (std::size_t i = 0; i < n_qubits / 2; ++i)
        circuit.swap(i, n_qubits - 1 - i);
    return circuit;
}

QuantumCircuit
hiddenShiftCircuit(std::size_t n_qubits, std::size_t shift)
{
    qpulseRequire(n_qubits >= 2 && n_qubits % 2 == 0,
                  "hidden shift needs an even qubit count");
    qpulseRequire(shift < (std::size_t{1} << n_qubits),
                  "shift out of range");
    const std::size_t m = n_qubits / 2;
    QuantumCircuit circuit(n_qubits);

    auto apply_shift = [&] {
        for (std::size_t q = 0; q < n_qubits; ++q)
            if ((shift >> (n_qubits - 1 - q)) & 1)
                circuit.x(q);
    };
    auto oracle = [&] {
        // Maiorana-McFarland bent function f(x, y) = x . y: CZ pairs.
        for (std::size_t i = 0; i < m; ++i)
            circuit.cz(i, i + m);
    };

    // H^n . O_f~ . H^n . O_g with g(z) = f(z - s): yields |s>.
    for (std::size_t q = 0; q < n_qubits; ++q)
        circuit.h(q);
    apply_shift();
    oracle();
    apply_shift();
    for (std::size_t q = 0; q < n_qubits; ++q)
        circuit.h(q);
    oracle();
    for (std::size_t q = 0; q < n_qubits; ++q)
        circuit.h(q);
    return circuit;
}

namespace {

/** Standard 6-CNOT + T-ladder Toffoli decomposition. */
void
appendToffoli(QuantumCircuit &circuit, std::size_t a, std::size_t b,
              std::size_t c)
{
    circuit.h(c);
    circuit.cx(b, c);
    circuit.tdg(c);
    circuit.cx(a, c);
    circuit.t(c);
    circuit.cx(b, c);
    circuit.tdg(c);
    circuit.cx(a, c);
    circuit.t(b);
    circuit.t(c);
    circuit.h(c);
    circuit.cx(a, b);
    circuit.t(a);
    circuit.tdg(b);
    circuit.cx(a, b);
}

} // namespace

QuantumCircuit
adderCircuit(std::size_t bits_per_register, std::size_t a_value,
             std::size_t b_value)
{
    const std::size_t w = bits_per_register;
    qpulseRequire(w >= 1 && w <= 4, "adderCircuit supports 1..4 bits");
    qpulseRequire(a_value < (std::size_t{1} << w) &&
                      b_value < (std::size_t{1} << w),
                  "adder inputs out of range");

    // Layout: [0, w) = a (little-endian), [w, 2w) = b, 2w = ancilla.
    QuantumCircuit circuit(2 * w + 1);
    for (std::size_t bit = 0; bit < w; ++bit) {
        if ((a_value >> bit) & 1)
            circuit.x(bit);
        if ((b_value >> bit) & 1)
            circuit.x(w + bit);
    }

    // Cuccaro ripple adder without carry-out: b <- a + b mod 2^w.
    const std::size_t ancilla = 2 * w;
    auto maj = [&](std::size_t x, std::size_t y, std::size_t z) {
        circuit.cx(z, y);
        circuit.cx(z, x);
        appendToffoli(circuit, x, y, z);
    };
    auto uma = [&](std::size_t x, std::size_t y, std::size_t z) {
        appendToffoli(circuit, x, y, z);
        circuit.cx(z, x);
        circuit.cx(x, y);
    };

    // MAJ chain: carries ripple through the a register.
    maj(ancilla, w + 0, 0);
    for (std::size_t bit = 1; bit < w; ++bit)
        maj(bit - 1, w + bit, bit);
    // UMA chain restores a and completes the sum bits in b.
    for (std::size_t bit = w; bit-- > 1;)
        uma(bit - 1, w + bit, bit);
    uma(ancilla, w + 0, 0);
    return circuit;
}

QuantumCircuit
bernsteinVaziraniCircuit(std::size_t n_qubits, std::size_t hidden)
{
    // Phase-kickback form without an ancilla: H^n . Z_s . H^n.
    QuantumCircuit circuit(n_qubits);
    for (std::size_t q = 0; q < n_qubits; ++q)
        circuit.h(q);
    for (std::size_t q = 0; q < n_qubits; ++q)
        if ((hidden >> (n_qubits - 1 - q)) & 1)
            circuit.z(q);
    for (std::size_t q = 0; q < n_qubits; ++q)
        circuit.h(q);
    return circuit;
}

} // namespace qpulse
