/**
 * @file
 * Algorithm circuit generators: Trotterized Hamiltonian evolution and
 * the UCC-style two-qubit ansatz for the VQE benchmarks, QAOA-MAXCUT
 * circuits on line graphs (Section 8.1), plus the far-term kernels
 * (QFT, Bernstein-Vazirani) the paper contrasts against in its
 * benchmark discussion.
 *
 * All circuits are emitted in hardware-agnostic assembly — notably,
 * every ZZ interaction is written in the "textbook" CX . Rz . CX form
 * so that detecting it is genuinely the compiler's job (Section 6.2).
 */
#ifndef QPULSE_ALGOS_CIRCUITS_H
#define QPULSE_ALGOS_CIRCUITS_H

#include "circuit/circuit.h"
#include "pauli/pauli.h"

namespace qpulse {

/**
 * One first-order Trotter step of exp(-i H dt): each Pauli term is
 * basis-rotated onto Z...Z, evolved with a CX-ladder + Rz, and rotated
 * back. Identity terms contribute only a global phase and are skipped.
 */
void appendTrotterStep(QuantumCircuit &circuit, const PauliOperator &h,
                       double dt);

/** Full Trotterized evolution circuit with the given step count. */
QuantumCircuit trotterCircuit(const PauliOperator &h, double total_time,
                              int steps);

/**
 * Two-qubit unitary-coupled-cluster-style ansatz used by the H2/LiH
 * VQE benchmarks: |01> reference, exchange rotation
 * exp(-i theta (XY - YX)/2) implemented with textbook gates.
 */
QuantumCircuit uccAnsatz2q(double theta);

/**
 * QAOA-MAXCUT circuit on an n-qubit line graph with p layers:
 * alternating cost (ZZ) and mixer (Rx) unitaries over a uniform
 * superposition.
 *
 * @param gammas Cost angles (size p).
 * @param betas  Mixer angles (size p).
 */
QuantumCircuit qaoaLineCircuit(std::size_t n_qubits,
                               const std::vector<double> &gammas,
                               const std::vector<double> &betas);

/** Quantum Fourier transform on n qubits (far-term comparison). */
QuantumCircuit qftCircuit(std::size_t n_qubits);

/** Bernstein-Vazirani circuit for a hidden bitstring. */
QuantumCircuit bernsteinVaziraniCircuit(std::size_t n_qubits,
                                        std::size_t hidden);

/**
 * Hidden-shift circuit for a bent-function instance (Childs & van
 * Dam style): for the Maiorana-McFarland bent function on n = 2m
 * qubits f(x, y) = x . y, the circuit H^n . O_shifted . (CZ layer) .
 * H^n returns the hidden shift s with certainty.
 */
QuantumCircuit hiddenShiftCircuit(std::size_t n_qubits,
                                  std::size_t shift);

/**
 * Ripple-carry majority-based adder (Cuccaro style) computing
 * a + b for two w-bit registers: qubits [0, w) hold a, [w, 2w) hold
 * b (a is overwritten with the sum, little-endian within each
 * register, no carry ancilla: addition is mod 2^w).
 */
QuantumCircuit adderCircuit(std::size_t bits_per_register,
                            std::size_t a_value, std::size_t b_value);

} // namespace qpulse

#endif // QPULSE_ALGOS_CIRCUITS_H
