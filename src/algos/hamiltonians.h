/**
 * @file
 * Molecular and combinatorial Hamiltonians for the Figure 12
 * benchmarks.
 *
 * The paper's H2 and LiH VQE benchmarks replicate O'Malley et al. 2016
 * and Hempel et al. 2018, both reduced to two qubits via symmetry /
 * orbital reductions; the methane and water dynamics Hamiltonians were
 * generated with OpenFermion and reduced to two qubits the same way.
 * We use the standard published two-qubit reductions: real Pauli
 * coefficient sets with the gI, gZ0, gZ1, gZZ, gXX(, gYY) structure
 * that every two-electron/two-orbital molecule reduces to. Exact
 * coefficients differ run-to-run on hardware anyway; what the
 * benchmarks exercise is the ZZ-dominated Trotter/ansatz structure.
 */
#ifndef QPULSE_ALGOS_HAMILTONIANS_H
#define QPULSE_ALGOS_HAMILTONIANS_H

#include "pauli/pauli.h"

namespace qpulse {

/**
 * H2 at ~0.74 A bond length, 2-qubit reduction (O'Malley et al. 2016,
 * Table 1 coefficients at R = 0.75 A).
 */
PauliOperator h2Hamiltonian();

/** LiH 2-qubit reduction (Hempel et al. 2018 style). */
PauliOperator lihHamiltonian();

/** Methane (CH4) 2-qubit reduced dynamics Hamiltonian. */
PauliOperator methaneHamiltonian();

/** Water (H2O) 2-qubit reduced dynamics Hamiltonian. */
PauliOperator waterHamiltonian();

/**
 * MAXCUT cost Hamiltonian on an n-qubit line graph:
 * C = sum_i (1 - Z_i Z_{i+1}) / 2; QAOA maximises <C>.
 */
PauliOperator maxcutLineHamiltonian(std::size_t n_qubits);

/** Number of edges cut by a bitstring on the line graph. */
int maxcutLineValue(std::size_t n_qubits, std::size_t bitstring);

} // namespace qpulse

#endif // QPULSE_ALGOS_HAMILTONIANS_H
