#include "device/resilient_executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "device/schedule_validation.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {

namespace {

constexpr std::uint64_t kBackoffSalt = 0xBAC0FF01ull;

/**
 * Re-export the per-run ResilienceStats delta into the global metrics
 * registry, so executor health shows up in the one telemetry report
 * alongside cache and backend counters. Every field counts decisions
 * taken by the deterministic retry state machine, never scheduling,
 * so the exported values are thread-count invariant.
 */
void
absorbResilienceStats(const ResilienceStats &stats)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_attempts =
        registry.counter("executor.attempts");
    static telemetry::Counter &c_retries =
        registry.counter("executor.retries");
    static telemetry::Counter &c_faults =
        registry.counter("executor.faults_detected");
    static telemetry::Counter &c_recals =
        registry.counter("executor.recalibrations");
    static telemetry::Counter &c_fallbacks =
        registry.counter("executor.fallbacks");
    static telemetry::Counter &c_degraded =
        registry.counter("executor.degraded_runs");
    static telemetry::Counter &c_rejects =
        registry.counter("executor.validation_rejects");
    const auto u64 = [](long v) {
        return static_cast<std::uint64_t>(v < 0 ? 0 : v);
    };
    c_attempts.add(u64(stats.attempts));
    c_retries.add(u64(stats.retries));
    c_faults.add(u64(stats.faultsDetected));
    c_recals.add(u64(stats.recalibrations));
    c_fallbacks.add(u64(stats.fallbacks));
    c_degraded.add(u64(stats.degradedRuns));
    c_rejects.add(u64(stats.validationRejects));
}

/** Expected top basis state and its probability, fault-free. */
struct Baseline
{
    std::size_t index = 0;
    double proxy = 0.0;
};

Baseline
cleanBaseline(const PulseSimulator &sim, const Schedule &schedule)
{
    Vector ground(sim.model().dim());
    ground[0] = Complex{1.0, 0.0};
    const std::vector<double> pops =
        sim.populations(sim.evolveState(schedule, ground));
    Baseline baseline;
    for (std::size_t i = 0; i < pops.size(); ++i)
        if (pops[i] > baseline.proxy) {
            baseline.proxy = pops[i];
            baseline.index = i;
        }
    return baseline;
}

} // namespace

ResilientExecutor::ResilientExecutor(
    std::shared_ptr<const PulseBackend> backend, RetryPolicy retry,
    DriftWatchdogPolicy watchdog, DegradePolicy degrade)
    : backend_(std::move(backend)), retry_(retry), watchdog_(watchdog),
      degrade_(degrade)
{
    qpulseRequire(backend_ != nullptr,
                  "ResilientExecutor needs a backend");
    qpulseRequire(retry_.maxAttempts >= 1,
                  "RetryPolicy needs maxAttempts >= 1");
}

double
ResilientExecutor::backoffMs(int attempt, std::uint64_t run_id,
                             std::uint64_t seed) const
{
    // attempt is the retry ordinal (1 = first retry). Deterministic
    // jitter: the delay depends only on (seed, run, attempt), never on
    // the clock, preserving the bit-identical-replay contract.
    double delay = retry_.backoffBaseMs *
                   std::pow(retry_.backoffFactor, attempt - 1);
    delay = std::min(delay, retry_.backoffCapMs);
    Rng rng(Rng::deriveSeed(Rng::deriveSeed(seed ^ kBackoffSalt, run_id),
                            static_cast<std::uint64_t>(attempt)));
    delay *= 1.0 + retry_.jitter * (2.0 * rng.uniform() - 1.0);
    return delay;
}

bool
ResilientExecutor::entryStale(const std::string &key) const
{
    if (!degrade_.enabled || key.empty())
        return false;
    const auto it = failureStreaks_.find(key);
    return it != failureStreaks_.end() &&
           it->second >= degrade_.staleAfterFailures;
}

void
ResilientExecutor::markFresh(const std::string &key)
{
    if (!key.empty())
        failureStreaks_.erase(key);
}

void
ResilientExecutor::registerFailure(const std::string &key)
{
    if (!key.empty())
        ++failureStreaks_[key];
}

ResilientOutcome
ResilientExecutor::run(const PulseSimulator &sim,
                       const ResilientRequest &request,
                       const PulseShotOptions &opts)
{
    telemetry::TraceSpan run_span("executor.run");
    static telemetry::Counter &c_runs =
        telemetry::MetricsRegistry::global().counter("executor.runs");
    c_runs.increment();

    const std::uint64_t run_id = runCounter_++;
    ResilientOutcome outcome;
    ResilienceStats &stats = outcome.stats;
    const ChannelBudget budget =
        ChannelBudget::fromConfig(backend_->config());

    // --- Phase selection: a stale entry skips its primary schedule.
    bool on_fallback = false;
    const Schedule *active = &request.schedule;
    if (request.fallback && entryStale(request.key)) {
        on_fallback = true;
        active = &*request.fallback;
        ++stats.fallbacks;
        outcome.usedFallback = true;
        outcome.lastError = Status::error(
            ErrorCode::StaleCalibration,
            "entry '" + request.key + "' is stale; using fallback");
    }

    // --- Validation gate (the primary may be structurally invalid —
    // e.g. a miscalibrated augmented entry scaling past |d| = 1 — in
    // which case it is immediately stale and the standard
    // decomposition takes over).
    Status valid = validateSchedule(*active, budget);
    if (!valid.ok()) {
        ++stats.validationRejects;
        outcome.lastError = valid;
        if (!on_fallback && request.fallback) {
            if (!request.key.empty())
                failureStreaks_[request.key] =
                    std::max(failureStreaks_[request.key],
                             degrade_.staleAfterFailures);
            on_fallback = true;
            active = &*request.fallback;
            ++stats.fallbacks;
            outcome.usedFallback = true;
            valid = validateSchedule(*active, budget);
            if (!valid.ok()) {
                ++stats.validationRejects;
                outcome.lastError = valid;
            }
        }
        if (!valid.ok()) {
            outcome.status = valid;
            outcome.result.resilience = stats;
            stats_ += stats;
            absorbResilienceStats(stats);
            return outcome;
        }
    }

    // --- Fidelity-proxy baseline from a clean, fault-free evolution.
    Baseline baseline = cleanBaseline(sim, *active);
    if (request.baselineProxy >= 0.0)
        baseline.proxy = request.baselineProxy;
    outcome.baseline = baseline.proxy;

    const auto shots = static_cast<double>(opts.shots);

    // Cooperative interruption: set once the token fires or the
    // deadline expires; the attempt loop stops retrying and the
    // partial shot result (if any attempt got that far) is surfaced.
    Status interrupt;
    PulseShotResult interrupt_partial;
    double backoff_spent_ms = 0.0; // Cumulative, both phases.

    // One bounded attempt loop over a schedule; returns true when a
    // result (healthy or accepted-degraded) landed in outcome.result.
    const auto run_phase = [&](const Schedule &schedule) -> bool {
        int recalibrations = 0;
        bool have_best = false;
        PulseShotResult best;
        double best_proxy = 0.0;
        for (int attempt = 0; attempt < retry_.maxAttempts; ++attempt) {
            interrupt = opts.deadline.check(opts.token);
            if (!interrupt.ok())
                return false; // Cancelled/expired: stop retrying.
            telemetry::TraceSpan attempt_span("executor.attempt");
            ++stats.attempts;
            if (attempt > 0) {
                telemetry::TraceSpan retry_span("executor.retry");
                ++stats.retries;
                double delay = backoffMs(attempt, run_id, opts.seed);
                // Per-attempt budget: never sleep past the cumulative
                // backoff cap, and never past the wall-clock deadline
                // (remainingMs() is +inf for unlimited/virtual, so
                // those never shrink a delay).
                if (retry_.maxTotalBackoffMs >= 0.0)
                    delay = std::min(
                        delay, std::max(0.0, retry_.maxTotalBackoffMs -
                                                 backoff_spent_ms));
                delay = std::min(delay, opts.deadline.remainingMs());
                backoff_spent_ms += delay;
                stats.backoffTotalMs += delay;
                if (retry_.sleep && delay > 0.0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double, std::milli>(
                            delay));
            }

            FaultInjector::Injection injection;
            if (injector_) {
                injection = injector_->inject(schedule, run_id, attempt);
            } else {
                injection.schedule = schedule;
            }

            if (injection.transient || injection.timeout) {
                ++stats.faultsDetected;
                if (injection.transient) {
                    ++stats.transientFailures;
                    outcome.lastError = Status::error(
                        ErrorCode::TransientFailure,
                        "shot batch rejected (attempt " +
                            std::to_string(attempt + 1) + ")");
                } else {
                    ++stats.timeouts;
                    outcome.lastError = Status::error(
                        ErrorCode::Timeout,
                        "shot batch timed out (attempt " +
                            std::to_string(attempt + 1) + ")");
                }
                continue;
            }

            if (injection.corrupted) {
                // The validation gate catches structurally-broken
                // uploads (NaN glitches, clipped envelopes) before
                // they can poison the propagator cache; re-uploading
                // is the fix. Silently-degrading corruption (dropped
                // samples) passes here and is caught by the proxy
                // check below instead.
                const Status upload =
                    validateSchedule(injection.schedule, budget);
                if (!upload.ok()) {
                    ++stats.faultsDetected;
                    ++stats.corruptedSchedules;
                    ++stats.validationRejects;
                    outcome.lastError = upload;
                    continue;
                }
            }

            PulseShotResult result =
                backend_->runShots(sim, injection.schedule, opts);
            if (injector_)
                stats.readoutFaultShots +=
                    injector_->applyReadoutFaults(
                        result.counts, result.populations, run_id,
                        attempt);

            if (!result.interruption.ok()) {
                // The run was cut short mid-shots. Keep the partial
                // counts — they are complete, valid draws — and stop
                // retrying: more attempts cannot outlive the deadline.
                interrupt = result.interruption;
                interrupt_partial = std::move(result);
                return false;
            }

            const double proxy =
                static_cast<double>(result.counts[baseline.index]) /
                shots;
            outcome.proxy = proxy;
            if (!watchdog_.enabled ||
                baseline.proxy - proxy <= watchdog_.tolerance) {
                outcome.result = std::move(result);
                return true;
            }

            // Proxy crossed the threshold: the prime suspect between
            // daily calibrations is coherent drift, so trigger one
            // targeted calibration refresh per crossing (bounded),
            // then retry. Keep the batch as the best-effort result.
            ++stats.faultsDetected;
            if (!have_best || proxy > best_proxy) {
                best = std::move(result);
                best_proxy = proxy;
                have_best = true;
            }
            outcome.lastError = Status::error(
                ErrorCode::StaleCalibration,
                "fidelity proxy " + std::to_string(proxy) +
                    " fell below baseline " +
                    std::to_string(baseline.proxy) + " - tolerance");
            if (recalibrations < watchdog_.maxRecalibrations) {
                ++recalibrations;
                ++stats.recalibrations;
                if (injector_)
                    injector_->recalibrate();
                if (recalibrationHook_)
                    recalibrationHook_();
            }
        }
        if (have_best) {
            // Budget exhausted with completed-but-degraded batches:
            // accept the best one rather than erroring out.
            ++stats.degradedRuns;
            outcome.degraded = true;
            outcome.proxy = best_proxy;
            outcome.result = std::move(best);
            return true;
        }
        return false;
    };

    bool success = run_phase(*active);

    // --- Graceful degradation: a run whose primary phase exhausted
    // its budget falls back to the standard decomposition instead of
    // erroring out; repeated failures mark the entry stale so future
    // runs skip the primary entirely. An interrupted run never falls
    // back: the fallback would face the same dead token/deadline.
    if (!success && !interrupt.ok()) {
        static telemetry::Counter &c_interrupts =
            telemetry::MetricsRegistry::global().counter(
                "executor.interrupted_runs");
        c_interrupts.increment();
        if (!interrupt_partial.partial) {
            // Interrupt fired before any shot ran: synthesize an
            // empty partial so consumers see one uniform shape.
            interrupt_partial.partial = true;
            interrupt_partial.shotsRequested = opts.shots;
            interrupt_partial.interruption = interrupt;
        }
        outcome.lastError = interrupt;
        outcome.status = interrupt;
        outcome.result = std::move(interrupt_partial);
        outcome.result.resilience = stats;
        stats_ += stats;
        absorbResilienceStats(stats);
        return outcome;
    }
    if (!success && !on_fallback) {
        registerFailure(request.key);
        if (request.fallback) {
            const Status fallback_valid =
                validateSchedule(*request.fallback, budget);
            if (fallback_valid.ok()) {
                on_fallback = true;
                ++stats.fallbacks;
                outcome.usedFallback = true;
                baseline = cleanBaseline(sim, *request.fallback);
                outcome.baseline = baseline.proxy;
                success = run_phase(*request.fallback);
            } else {
                ++stats.validationRejects;
                outcome.lastError = fallback_valid;
            }
        }
    }

    if (success) {
        if (!on_fallback)
            markFresh(request.key);
        outcome.status = Status::okStatus();
    } else {
        if (on_fallback)
            registerFailure(request.key);
        outcome.status = Status::error(
            ErrorCode::RetriesExhausted,
            "gave up after " + std::to_string(stats.attempts) +
                " attempts; last error: " +
                outcome.lastError.toString());
    }
    outcome.result.resilience = stats;
    stats_ += stats;
    absorbResilienceStats(stats);
    return outcome;
}

} // namespace qpulse
