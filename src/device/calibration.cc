#include "device/calibration.h"

#include <cmath>
#include <sstream>

#include "common/constants.h"
#include "linalg/gates.h"
#include "opt/fitting.h"
#include "opt/nelder_mead.h"
#include "opt/spsa.h"
#include "synth/euler.h"

namespace qpulse {

WaveformPtr
QubitCalibration::x90Pulse() const
{
    return std::make_shared<DragWaveform>(duration, sigma,
                                          Complex{x90Amp, 0.0}, dragBeta);
}

WaveformPtr
QubitCalibration::x180Pulse() const
{
    return std::make_shared<DragWaveform>(duration, sigma,
                                          Complex{x180Amp, 0.0}, dragBeta);
}

CrCalibration::Stretch
CrCalibration::stretchFor(double theta_rad) const
{
    const double magnitude = std::abs(theta_rad);
    // Each echo half contributes theta/2; the per-half angle at a
    // given flat length is radAtZeroFlat + radPerDtFlat * flat in the
    // *net* angle convention (the calibration fit is against the net
    // rotation, so the formulas below are already in net angle).
    if (magnitude >= radAtZeroFlat) {
        const long flat = static_cast<long>(std::llround(
            (magnitude - radAtZeroFlat) / radPerDtFlat));
        return {flat, 1.0};
    }
    // Below the edge-only angle, scale the amplitude down instead of
    // stretching (the CR rate is linear in drive amplitude to first
    // order, the same bootstrap assumption as DirectRx).
    return {0, magnitude / radAtZeroFlat};
}

CrCalibration::PhaseFixPoint
CrCalibration::fixAt(double theta_rad) const
{
    const double magnitude = std::abs(theta_rad);
    if (fixTable.empty()) {
        // Legacy path: linear scaling of the 90-degree values.
        const double scale = magnitude / (kPi / 2);
        return {magnitude, phaseFixControl * scale,
                phaseFixTarget * scale, axisPhaseTarget};
    }
    auto blend = [&](const PhaseFixPoint &lo, const PhaseFixPoint &hi,
                     double w) {
        return PhaseFixPoint{magnitude,
                             lo.control + w * (hi.control - lo.control),
                             lo.target + w * (hi.target - lo.target),
                             lo.axis + w * (hi.axis - lo.axis)};
    };
    if (magnitude <= fixTable.front().theta) {
        const double scale =
            fixTable.front().theta > 0.0
                ? magnitude / fixTable.front().theta
                : 0.0;
        // The after-fixes vanish with the pulse area; the axis is a
        // property of the drive line and stays at the first point.
        return {magnitude, fixTable.front().control * scale,
                fixTable.front().target * scale,
                fixTable.front().axis};
    }
    for (std::size_t i = 1; i < fixTable.size(); ++i)
        if (magnitude <= fixTable[i].theta)
            return blend(fixTable[i - 1], fixTable[i],
                         (magnitude - fixTable[i - 1].theta) /
                             (fixTable[i].theta -
                              fixTable[i - 1].theta));
    // Beyond the table: extrapolate along the last segment.
    const auto &lo = fixTable[fixTable.size() - 2];
    const auto &hi = fixTable.back();
    return blend(lo, hi,
                 (magnitude - lo.theta) / (hi.theta - lo.theta));
}

WaveformPtr
CrCalibration::halfPulse(long flat, double amp_scale, double sign) const
{
    return std::make_shared<GaussianSquareWaveform>(
        flat + 2 * risefall, sigma, risefall,
        Complex{amplitude * amp_scale * sign, 0.0});
}

const CrCalibration &
PulseLibrary::cr(std::size_t control, std::size_t target) const
{
    for (const auto &cal : crs)
        if (cal.control == control && cal.target == target)
            return cal;
    qpulseFatal("no CR calibration for edge ", control, "->", target);
}

std::size_t
PulseLibrary::controlChannelIndex(std::size_t control,
                                  std::size_t target) const
{
    for (std::size_t i = 0; i < crs.size(); ++i)
        if (crs[i].control == control && crs[i].target == target)
            return i;
    qpulseFatal("no control channel for edge ", control, "->", target);
}

Calibrator::Calibrator(BackendConfig config) : config_(std::move(config))
{
}

TransmonModel
Calibrator::qubitModel(std::size_t qubit) const
{
    qpulseRequire(qubit < config_.numQubits, "qubit out of range");
    return TransmonModel::single(config_.qubits[qubit], 3);
}

PulseSimulator
Calibrator::pairSimulator(std::size_t control, std::size_t target) const
{
    const auto &edge = config_.edge(control, target);
    CouplingParams coupling;
    coupling.qubitA = 0;
    coupling.qubitB = 1;
    coupling.strengthGhz = edge.strengthGhz;
    TransmonModel model = TransmonModel::pair(
        config_.qubits[control], config_.qubits[target], coupling, 3);
    PulseSimulator sim(std::move(model));
    const double detuning =
        2.0 * kPi * (config_.qubits[control].frequencyGhz -
                     config_.qubits[target].frequencyGhz);
    sim.setControlChannel(0, ControlChannelSpec{0, detuning});
    return sim;
}

namespace {

std::string
qubitKey(const TransmonParams &params)
{
    std::ostringstream os;
    os << params.frequencyGhz << "/" << params.anharmonicityGhz << "/"
       << params.driveStrengthGhz;
    return os.str();
}

std::string
crKey(const TransmonParams &c, const TransmonParams &t, double j_ghz)
{
    return qubitKey(c) + "|" + qubitKey(t) + "|" + std::to_string(j_ghz);
}

/** P(level == want) of transmon `which` (0-based) in a pair state. */
double
marginalPopulation(const Vector &state, std::size_t which,
                   std::size_t want, std::size_t n_transmons,
                   std::size_t levels)
{
    double total = 0.0;
    for (std::size_t idx = 0; idx < state.size(); ++idx) {
        std::size_t rest = idx;
        std::size_t level = 0;
        for (std::size_t j = n_transmons; j-- > 0;) {
            const std::size_t this_level = rest % levels;
            rest /= levels;
            if (j == which)
                level = this_level;
        }
        if (level == want)
            total += std::norm(state[idx]);
    }
    return total;
}

} // namespace

QubitCalibration
Calibrator::calibrateQubit(std::size_t qubit)
{
    const std::string key = qubitKey(config_.qubits[qubit]);
    const auto cached = qubitCache_.find(key);
    if (cached != qubitCache_.end())
        return cached->second;

    PulseSimulator sim(qubitModel(qubit));
    QubitCalibration cal;
    cal.duration = config_.pulseDuration;
    cal.sigma = config_.pulseSigma;

    Vector ground(3);
    ground[0] = Complex{1.0, 0.0};

    // --- Rabi amplitude scan (Section 2.3): plain Gaussian pulses. ---
    std::vector<double> amps, p1s;
    for (int k = 0; k <= 24; ++k) {
        const double amp = 0.3 * static_cast<double>(k) / 24.0;
        Schedule schedule("rabi");
        schedule.play(driveChannel(0),
                      std::make_shared<GaussianWaveform>(
                          cal.duration, cal.sigma, Complex{amp, 0.0}));
        const Vector out = sim.evolveState(schedule, ground);
        amps.push_back(amp);
        p1s.push_back(std::norm(out[1]));
    }
    const FitResult rabi = fitCosine(amps, p1s);
    // p1 = offset + A cos(2 pi f amp + phase); the first maximum of p1
    // is the pi-pulse amplitude.
    const double freq = rabi.params[2];
    double pi_amp = -rabi.params[3] / (2.0 * kPi * freq);
    while (pi_amp <= 0.0)
        pi_amp += 1.0 / freq;
    cal.x180Amp = pi_amp;
    cal.x90Amp = pi_amp / 2.0;

    // --- DRAG calibration: null the X component of the post-pulse
    //     state (tomography observable). The DRAG quadrature corrects
    //     both leakage and the Stark-induced axis tilt; for these slow
    //     pulses the tilt dominates, and zeroing <X> after an X pulse
    //     is the standard fine-tuning experiment. ---
    auto x_error_for = [&](double beta) {
        Schedule schedule("drag");
        schedule.play(driveChannel(0),
                      std::make_shared<DragWaveform>(
                          cal.duration, cal.sigma,
                          Complex{cal.x180Amp, 0.0}, beta));
        const Vector out = sim.evolveState(schedule, ground);
        const Complex cross = std::conj(out[0]) * out[1];
        const double x_component = 2.0 * cross.real();
        return x_component * x_component + std::norm(out[2]);
    };
    cal.dragBeta = brentMinimize(x_error_for, -6.0, 6.0, 1e-7);

    // --- Fine amplitude scan with DRAG applied: peak the |1> pop. ---
    auto miss_for = [&](double amp) {
        Schedule schedule("fine-amp");
        schedule.play(driveChannel(0),
                      std::make_shared<DragWaveform>(
                          cal.duration, cal.sigma, Complex{amp, 0.0},
                          cal.dragBeta));
        const Vector out = sim.evolveState(schedule, ground);
        return 1.0 - std::norm(out[1]);
    };
    cal.x180Amp = brentMinimize(miss_for, 0.85 * cal.x180Amp,
                                1.15 * cal.x180Amp, 1e-7);
    cal.x90Amp = cal.x180Amp / 2.0;

    qubitCache_[key] = cal;
    return cal;
}

void
Calibrator::calibrateQutrit(std::size_t qubit, QubitCalibration &cal)
{
    PulseSimulator sim(qubitModel(qubit));
    const double alpha = config_.qubits[qubit].anharmonicityGhz;
    Vector ground(3);
    ground[0] = Complex{1.0, 0.0};
    cal.qutritDuration = cal.duration;

    // --- f12 sideband pi pulse: prepare |1> with the calibrated X,
    //     then drive at f12 = f01 + alpha and scan the amplitude. ---
    auto x12_miss = [&](double amp) {
        Schedule schedule("x12-scan");
        schedule.play(driveChannel(0), cal.x180Pulse());
        schedule.play(driveChannel(0),
                      std::make_shared<SidebandWaveform>(
                          std::make_shared<GaussianWaveform>(
                              cal.qutritDuration, cal.sigma,
                              Complex{amp, 0.0}),
                          alpha));
        const Vector out = sim.evolveState(schedule, ground);
        return 1.0 - std::norm(out[2]);
    };
    // The 1-2 matrix element is sqrt(2) stronger, so the pi amplitude
    // sits near x180Amp / sqrt(2); bracket that and refine.
    cal.x12Amp = brentMinimize(x12_miss, 0.3 * cal.x180Amp,
                               1.3 * cal.x180Amp, 1e-6);

    // --- f02/2 two-photon pi pulse: drive from |0> at (f01+f12)/2.
    //     The 0-2 coupling is suppressed (Section 7.2), so the scan
    //     covers much larger amplitudes; the Rabi rate is quadratic in
    //     the amplitude, so a coarse scan locates the first peak. ---
    auto p2_for = [&](double amp) {
        Schedule schedule("x02-scan");
        schedule.play(driveChannel(0),
                      std::make_shared<SidebandWaveform>(
                          std::make_shared<GaussianWaveform>(
                              cal.qutritDuration, cal.sigma,
                              Complex{amp, 0.0}),
                          alpha / 2.0));
        const Vector out = sim.evolveState(schedule, ground);
        return std::norm(out[2]);
    };
    double best_amp = 0.2, best_p2 = 0.0;
    for (int k = 4; k <= 48; ++k) {
        const double amp = static_cast<double>(k) / 50.0;
        const double p2 = p2_for(amp);
        if (p2 > best_p2) {
            best_p2 = p2;
            best_amp = amp;
        }
        // Stop at the first strong peak: past it the next lobe would
        // confuse the bracket.
        if (best_p2 > 0.9 && p2 < best_p2 - 0.2)
            break;
    }
    cal.x02Amp = brentMinimize([&](double a) { return 1.0 - p2_for(a); },
                               std::max(0.05, best_amp - 0.08),
                               std::min(0.96, best_amp + 0.08), 1e-6);
}

namespace {

/** Time-sequential echoed-CR body used during calibration. */
Schedule
echoBody(const CrCalibration &cr, const QubitCalibration &control_cal,
         long flat, double amp_scale, double sign)
{
    Schedule schedule("cr-echo");
    long cursor = 0;
    const auto cr_plus = cr.halfPulse(flat, amp_scale, sign);
    const auto cr_minus = cr.halfPulse(flat, amp_scale, -sign);
    const auto x180 = control_cal.x180Pulse();

    schedule.playAt(cursor, controlChannel(0), cr_plus);
    cursor += cr_plus->duration();
    schedule.playAt(cursor, driveChannel(0), x180);
    cursor += x180->duration();
    schedule.playAt(cursor, controlChannel(0), cr_minus);
    cursor += cr_minus->duration();
    schedule.playAt(cursor, driveChannel(0), x180);
    return schedule;
}

} // namespace

CrCalibration
Calibrator::calibrateCr(std::size_t control, std::size_t target,
                        const QubitCalibration &control_cal)
{
    const auto &edge = config_.edge(control, target);
    const std::string key = crKey(config_.qubits[control],
                                  config_.qubits[target],
                                  edge.strengthGhz);
    const auto cached = crCache_.find(key);
    if (cached != crCache_.end()) {
        CrCalibration cal = cached->second;
        cal.control = control;
        cal.target = target;
        return cal;
    }

    PulseSimulator sim = pairSimulator(control, target);
    CrCalibration cal;
    cal.control = control;
    cal.target = target;
    cal.amplitude = config_.crAmplitude;
    cal.risefall = config_.crRisefall;
    cal.sigma = static_cast<double>(config_.crRisefall) / 4.0;

    Vector ground(9);
    ground[0] = Complex{1.0, 0.0};

    // --- Flat-top duration scan: net target rotation vs flat. ---
    // p1 = 0.5 - 0.5 cos(theta) with theta = rad_per_flat * flat + b:
    // match offset + A cos(2 pi f flat + phase) by theta = 2 pi f flat
    // + phase - pi. (The zero-flat intercept is the small edge-area
    // angle; fit noise can push it marginally negative, so clamp.)
    auto fringe_scan = [&]() {
        std::vector<double> flats, p1s;
        for (long flat = 0; flat <= 1600; flat += 100) {
            const Schedule schedule =
                echoBody(cal, control_cal, flat, 1.0, 1.0);
            const Vector out = sim.evolveState(schedule, ground);
            flats.push_back(static_cast<double>(flat));
            p1s.push_back(marginalPopulation(out, 1, 1, 2, 3));
        }
        const FitResult fit = fitCosine(flats, p1s);
        cal.radPerDtFlat = 2.0 * kPi * fit.params[2];
        cal.radAtZeroFlat =
            std::max(1e-4, wrapAngle(fit.params[3] - kPi));
    };
    fringe_scan();

    // Sign of the rotation via Y tomography at a quarter period: apply
    // an ideal basis change on the target and compare populations.
    const long probe_flat = static_cast<long>(
        std::llround((kPi / 2 - cal.radAtZeroFlat) / cal.radPerDtFlat));
    {
        const Schedule schedule =
            echoBody(cal, control_cal, std::max(probe_flat, 0L), 1.0, 1.0);
        const UnitaryResult result = sim.evolveUnitary(schedule);
        const Vector out = result.unitary.apply(ground);
        // <Y> on target: rotate by Rx(pi/2) (maps Y to Z) and read P1:
        // P1 = (1 + <Y>)/2.
        const Matrix rot = kron(Matrix::identity(3),
                                [] {
                                    Matrix r(3, 3);
                                    const Matrix rx = gates::rx(kPi / 2);
                                    for (std::size_t i = 0; i < 2; ++i)
                                        for (std::size_t j = 0; j < 2; ++j)
                                            r(i, j) = rx(i, j);
                                    r(2, 2) = Complex{1.0, 0.0};
                                    return r;
                                }());
        const Vector rotated = rot.apply(out);
        const double y_expect =
            2.0 * marginalPopulation(rotated, 1, 1, 2, 3) - 1.0;
        // CR(+theta) from |00> leaves the target with <Y> = -sin theta.
        if (y_expect > 0.0)
            cal.amplitude = -cal.amplitude;
    }

    // Per-half flat for a net CR(90).
    cal.flatFor90 = std::max(
        0L, static_cast<long>(std::llround(
                (kPi / 2 - cal.radAtZeroFlat) / cal.radPerDtFlat)));

    // --- Fine amplitude trim: at theta = 90 the target sits on the
    //     equator (P1 = 1/2), the most sensitive point of the fringe;
    //     trim the amplitude until the fringe crosses it exactly. ---
    {
        auto miss = [&](double trim) {
            CrCalibration trial = cal;
            trial.amplitude = cal.amplitude * trim;
            const Schedule schedule =
                echoBody(trial, control_cal, cal.flatFor90, 1.0, 1.0);
            const Vector out = sim.evolveState(schedule, ground);
            const double p1 = marginalPopulation(out, 1, 1, 2, 3);
            return (p1 - 0.5) * (p1 - 0.5);
        };
        // Trim resolution 1e-4 bounds the angle error at ~0.01 deg —
        // far below the other residuals — while keeping calibration
        // time reasonable.
        const double trim = brentMinimize(miss, 0.90, 1.10, 1e-4, 28);
        cal.amplitude *= trim;
        // The rate is only approximately linear in the drive, so
        // rather than rescaling the bookkeeping, redo the fringe scan
        // at the trimmed amplitude — that keeps CR(theta) stretching
        // accurate across the whole 0..180 degree range.
        fringe_scan();
        cal.flatFor90 = std::max(
            0L, static_cast<long>(std::llround(
                    (kPi / 2 - cal.radAtZeroFlat) / cal.radPerDtFlat)));
    }

    // --- Phase corrections: free Rz's after the echo that maximise
    //     fidelity to the ideal CR(90) (bootstrapped from simulated
    //     process tomography, not from the Hamiltonian). ---
    {
        // The sign flip (if any) is already folded into cal.amplitude,
        // so a +1.0 echo realises CR(+90).
        const Schedule schedule =
            echoBody(cal, control_cal, cal.flatFor90, 1.0, 1.0);
        const UnitaryResult result = sim.evolveUnitary(schedule);

        // Project the 9x9 propagator onto the 2x2 (x) 2x2 subspace.
        auto project = [&](const Matrix &u) {
            const std::size_t idx[4] = {0, 1, 3, 4};
            Matrix p(4, 4);
            for (std::size_t r = 0; r < 4; ++r)
                for (std::size_t c = 0; c < 4; ++c)
                    p(r, c) = u(idx[r], idx[c]);
            return p;
        };
        const Matrix u_qubit = project(result.unitary);
        const Matrix target_u = gates::cr(kPi / 2);
        // p = {phi_control_after, phi_target_after, psi_axis}: the
        // psi sandwich rotates the echo's target axis onto X, the two
        // after-phases absorb the Stark-like IZ/ZI residuals. All
        // three are free virtual-Z frame changes.
        Objective objective = [&](const std::vector<double> &p) {
            const Matrix after =
                kron(gates::rz(p[0]), gates::rz(p[1] - p[2]));
            const Matrix before =
                kron(Matrix::identity(2), gates::rz(p[2]));
            return 1.0 -
                   unitaryOverlap(target_u, after * u_qubit * before);
        };
        Rng rng(0xCA1);
        const OptResult best = nelderMeadMultiStart(
            objective, {0.0, 0.0, 0.0}, 12, kPi, rng);
        // The after-fixes are scaled linearly with theta when the CR
        // is stretched, so they must be the wrapped representatives
        // (an unwrapped 2pi offset would not scale equivalently).
        cal.phaseFixControl = wrapAngle(best.x[0]);
        cal.phaseFixTarget = wrapAngle(best.x[1]);
        cal.axisPhaseTarget = wrapAngle(best.x[2]);
    }

    // --- Per-angle fix table: the Stark residuals are not exactly
    //     linear in the stretch, so measure them at several net
    //     angles. Each point seeds from the previous one so the
    //     table stays on a continuous branch (no 2 pi jumps). ---
    {
        auto project = [&](const Matrix &u) {
            const std::size_t idx[4] = {0, 1, 3, 4};
            Matrix p(4, 4);
            for (std::size_t r = 0; r < 4; ++r)
                for (std::size_t c = 0; c < 4; ++c)
                    p(r, c) = u(idx[r], idx[c]);
            return p;
        };
        std::vector<double> seed = {cal.phaseFixControl / 4.0,
                                    cal.phaseFixTarget / 4.0,
                                    cal.axisPhaseTarget};
        for (double theta : {kPi / 8, kPi / 4, kPi / 2, 3 * kPi / 4,
                             kPi}) {
            const auto stretch = cal.stretchFor(theta);
            const Schedule schedule = echoBody(
                cal, control_cal, stretch.flat, stretch.ampScale, 1.0);
            const UnitaryResult result = sim.evolveUnitary(schedule);
            const Matrix u_qubit = project(result.unitary);
            const Matrix target_u = gates::cr(theta);
            Objective objective = [&](const std::vector<double> &p) {
                const Matrix after =
                    kron(gates::rz(p[0]), gates::rz(p[1] - p[2]));
                const Matrix before =
                    kron(Matrix::identity(2), gates::rz(p[2]));
                return 1.0 - unitaryOverlap(target_u,
                                            after * u_qubit * before);
            };
            const OptResult best = nelderMead(objective, seed);
            cal.fixTable.push_back(
                {theta, best.x[0], best.x[1], best.x[2]});
            seed = best.x;
        }
    }

    crCache_[key] = cal;
    return cal;
}

PulseLibrary
Calibrator::calibrateAll(bool include_qutrit)
{
    PulseLibrary library;
    library.config = config_;
    for (std::size_t q = 0; q < config_.numQubits; ++q) {
        QubitCalibration cal = calibrateQubit(q);
        if (include_qutrit)
            calibrateQutrit(q, cal);
        library.qubits.push_back(cal);
    }
    for (const auto &edge : config_.couplings)
        library.crs.push_back(calibrateCr(edge.control, edge.target,
                                          library.qubits[edge.control]));
    return library;
}

} // namespace qpulse
