/**
 * @file
 * PulseBackend: turns a calibrated PulseLibrary into the cmd_def
 * translation table of Figure 1 — both the standard flow's entries
 * (rz frame changes, the calibrated X90, the echoed-CR CNOT, measure)
 * and the augmented-basis entries this paper adds (DirectX, DirectRx,
 * CR(theta), CR halves). It also provides the channel bookkeeping a
 * schedule consumer needs (which control channel belongs to which
 * directed edge, and which channels receive an Rz frame change).
 */
#ifndef QPULSE_DEVICE_PULSE_BACKEND_H
#define QPULSE_DEVICE_PULSE_BACKEND_H

#include <cstddef>
#include <memory>

#include "circuit/circuit.h"
#include "common/cancellation.h"
#include "common/rng.h"
#include "common/status.h"
#include "device/calibration.h"
#include "device/resilience_stats.h"
#include "pulse/cmd_def.h"
#include "pulsesim/simulator.h"

namespace qpulse {

/** Options for pulse-level shot execution (PulseBackend::runShots). */
/**
 * Shots are chunked into at most this many batches regardless of the
 * worker count, so shot-batch spans and counters stay deterministic
 * across QPULSE_THREADS settings (docs/OBSERVABILITY.md).
 */
inline constexpr std::size_t kShotBatches = 64;

struct PulseShotOptions
{
    long shots = 1024;
    std::uint64_t seed = 1;

    /**
     * Cross-shot propagator cache. When null, runShots creates one
     * internally for the duration of the call (every shot after the
     * first still hits); pass a caller-owned cache to extend reuse
     * across schedules, e.g. over an RB sequence batch.
     */
    std::shared_ptr<PropagatorCache> cache;

    /** Disable memoization entirely (legacy per-sample baseline). */
    bool useCache = true;

    /**
     * Thread cap for the shot loop: 0 = the global pool's size, 1 =
     * sequential. Results are identical for every setting — each shot
     * draws from its own Rng(deriveSeed(seed, shot)) stream.
     */
    std::size_t maxThreads = 0;

    /**
     * Maximum states packed into one StatePanel per evolution
     * (pulsesim/simulator.h, evolveStatesBatched): the per-sample
     * propagators are computed once per panel and applied to all K
     * resident states as a single gemm. 0 = the QPULSE_BATCH
     * environment default (64); 1 = the looped per-shot path. Panel
     * boundaries are a pure function of shot indices, so counts and
     * counters stay bit-identical across maxThreads settings whatever
     * the width.
     */
    std::size_t batchWidth = 0;

    /**
     * Cooperative cancellation. The default token is inert (free to
     * check, can never fire); pass CancelToken::make() and cancel it
     * from another thread to wind the run down between shots / every
     * few hundred simulated samples. The shots completed so far come
     * back as a partial result (PulseShotResult::partial).
     */
    CancelToken token;

    /**
     * Execution deadline. Wall-clock deadlines are checked per shot
     * and mid-evolution; virtual-time budgets (common/cancellation.h)
     * are charged sequentially at shot-batch granularity before the
     * parallel dispatch, so the admitted batch set — and therefore the
     * partial counts — is bit-identical across maxThreads settings.
     */
    Deadline deadline;
};

/** Result of a pulse-level shot run. */
struct PulseShotResult
{
    /** Sampled counts per full-space basis state (sum = shots). */
    std::vector<long> counts;

    /** Final-state populations the shots were drawn from. */
    std::vector<double> populations;

    /** Cache counters accumulated during this run (zeros if off). */
    PropagatorCacheStats cacheStats;

    /**
     * Resilience counters. Plain runShots leaves this zeroed; the
     * ResilientExecutor fills in its retry/fault/recalibration
     * accounting so every consumer reads outcomes from one place.
     */
    ResilienceStats resilience;

    /**
     * Partial-result channel. When a cancel token fires or a deadline
     * expires mid-run, runShots returns normally with the shots that
     * did complete (sum(counts) == shotsCompleted < shotsRequested),
     * partial = true, and `interruption` carrying the structured
     * Cancelled / DeadlineExceeded reason. A full run has partial =
     * false and an Ok interruption.
     */
    bool partial = false;
    long shotsRequested = 0;
    long shotsCompleted = 0;
    Status interruption;
};

/**
 * A calibrated backend able to translate basis gates into schedules.
 */
class PulseBackend
{
  public:
    explicit PulseBackend(PulseLibrary library);

    const PulseLibrary &library() const { return library_; }
    const BackendConfig &config() const { return library_.config; }

    /**
     * The cmd_def covering every defined (gate, qubits) pair:
     * standard entries always, augmented entries included so that the
     * optimized compiler can emit them (the standard flow simply never
     * uses them, as on real OpenPulse backends where users may add
     * pulse definitions).
     */
    const CmdDef &cmdDef() const { return cmdDef_; }

    /** Schedule for one basis-gate instance. */
    Schedule schedule(const Gate &gate) const { return cmdDef_.schedule(gate); }

    /**
     * Schedule for a whole basis-level circuit, composed ASAP with a
     * barrier between gates that share qubits (plain per-channel ASAP
     * otherwise). Measures map to the measurement stimulus.
     */
    Schedule scheduleCircuit(const QuantumCircuit &circuit) const;

    /**
     * Minimal health-probe schedule for fleet quarantine recovery: the
     * calibrated x180 on `qubit`, the cheapest pulse whose outcome
     * distribution still separates a healthy substrate from a wedged
     * or badly drifted one. BackendPool runs this through the
     * backend's executor as the deterministic half-open probe job.
     */
    Schedule probeSchedule(std::size_t qubit = 0) const;

    /** Duration (dt) the backend charges a single gate instance. */
    long gateDuration(const Gate &gate) const;

    /** Number of calibrated-pulse applications in one gate instance. */
    std::size_t gatePulseCount(const Gate &gate) const;

    /** Peak |d(t)| across the gate's pulses (for the leakage knob). */
    double gatePeakAmplitude(const Gate &gate) const;

    /**
     * Execute `schedule` on `sim` for opts.shots shots: every shot
     * evolves the ground state through the schedule (drawing from the
     * shared propagator cache, so repeated evolutions after the first
     * are near-free) and samples one measured basis state. Shots are
     * distributed over the common thread pool; per-shot Rng streams
     * make the counts deterministic for a fixed seed regardless of
     * thread count.
     *
     * Per-shot evolution is deliberate: forthcoming per-shot noise
     * (quasi-static drift, stochastic readout) varies shot to shot,
     * and the cache — not a hoisted single evolution — is what keeps
     * the repeated-schedule workload cheap.
     *
     * The schedule is validated against the backend's channel budget
     * before any evolution (device/schedule_validation.h); a
     * malformed schedule — NaN/Inf samples, |d| > 1 saturation,
     * unknown channels, negative or non-monotonic times — throws a
     * StatusError carrying the distinct reject code instead of
     * flowing into the propagator cache. Use ResilientExecutor for
     * the non-throwing, retrying form.
     */
    PulseShotResult runShots(const PulseSimulator &sim,
                             const Schedule &schedule,
                             const PulseShotOptions &opts = {}) const;

  private:
    void buildCmdDef();
    void defineQubitEntries(std::size_t qubit);
    void defineEdgeEntries(std::size_t edge_index);

    /** Rz(lambda) on `qubit`: frame shifts on d and affected u lines. */
    Schedule rzSchedule(std::size_t qubit, double lambda) const;

    /** Echoed CR(theta) with calibrated phase corrections. */
    Schedule crSchedule(std::size_t control, std::size_t target,
                        double theta) const;

    /** Full CNOT schedule (Section 5.1 decomposition). */
    Schedule cnotSchedule(std::size_t control, std::size_t target) const;

    PulseLibrary library_;
    CmdDef cmdDef_;
};

} // namespace qpulse

#endif // QPULSE_DEVICE_PULSE_BACKEND_H
