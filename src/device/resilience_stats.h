/**
 * @file
 * Counter block surfacing every resilience outcome of a run: how many
 * attempts were made, which fault classes fired (injected) and were
 * caught (detected), how often the validation gate rejected a
 * schedule, and how the executor recovered (retries, recalibrations,
 * fallbacks to the standard decomposition). Threaded into
 * PulseShotResult so shot-level callers, the ResilientExecutor, the
 * RB batched path and bench_robustness all report through one struct.
 */
#ifndef QPULSE_DEVICE_RESILIENCE_STATS_H
#define QPULSE_DEVICE_RESILIENCE_STATS_H

#include <string>

namespace qpulse {

/** Resilience counters; zeros mean "nothing eventful happened". */
struct ResilienceStats
{
    long attempts = 0;         ///< Shot-batch attempts started.
    long retries = 0;          ///< Attempts after the first.
    long faultsInjected = 0;   ///< Faults the injector fired.
    long faultsDetected = 0;   ///< Faults the executor caught.
    long transientFailures = 0;///< Transient batch failures seen.
    long timeouts = 0;         ///< Batch timeouts seen.
    long corruptedSchedules = 0; ///< AWG-corrupted uploads caught.
    long validationRejects = 0;  ///< Schedules rejected by the gate.
    long driftSpikes = 0;      ///< Coherent drift spikes injected.
    long recalibrations = 0;   ///< Drift-watchdog calibration refreshes.
    long fallbacks = 0;        ///< Standard-decomposition fallbacks.
    long degradedRuns = 0;     ///< Accepted below-baseline results.
    long readoutFaultShots = 0;///< Shots hit by readout flips/dropouts.
    long ingestFaults = 0;     ///< Ingest payload faults injected.
    double backoffTotalMs = 0.0; ///< Accumulated backoff delay.

    ResilienceStats &
    operator+=(const ResilienceStats &other)
    {
        attempts += other.attempts;
        retries += other.retries;
        faultsInjected += other.faultsInjected;
        faultsDetected += other.faultsDetected;
        transientFailures += other.transientFailures;
        timeouts += other.timeouts;
        corruptedSchedules += other.corruptedSchedules;
        validationRejects += other.validationRejects;
        driftSpikes += other.driftSpikes;
        recalibrations += other.recalibrations;
        fallbacks += other.fallbacks;
        degradedRuns += other.degradedRuns;
        readoutFaultShots += other.readoutFaultShots;
        ingestFaults += other.ingestFaults;
        backoffTotalMs += other.backoffTotalMs;
        return *this;
    }

    /** One-line summary for bench/diagnostic output. */
    std::string
    toString() const
    {
        return "attempts=" + std::to_string(attempts) +
               " retries=" + std::to_string(retries) +
               " faults=" + std::to_string(faultsInjected) + "/" +
               std::to_string(faultsDetected) +
               " rejects=" + std::to_string(validationRejects) +
               " recal=" + std::to_string(recalibrations) +
               " fallbacks=" + std::to_string(fallbacks) +
               " degraded=" + std::to_string(degradedRuns);
    }
};

} // namespace qpulse

#endif // QPULSE_DEVICE_RESILIENCE_STATS_H
