/**
 * @file
 * Backend device descriptions, mirroring the two IBM systems used in
 * the paper (Section 2.4): Almaden, a 20-qubit device with mean T1/T2
 * of 94/88 us, 0.14% single-qubit error, 1.78% CNOT error and 3.8%
 * readout error; and Armonk, the single-qubit OpenPulse device used
 * for the Figure 13 randomized-benchmarking runs.
 *
 * The config also carries the *noise budget knobs* used by the
 * duration-aware noisy simulator, organised by the paper's three error
 * sources (Section 8.3): per-calibrated-pulse depolarizing error
 * (calibration-error susceptibility), duration-proportional T1/T2
 * decoherence (shorter pulses win), and amplitude-proportional leakage
 * (smaller amplitudes win).
 */
#ifndef QPULSE_DEVICE_BACKEND_CONFIG_H
#define QPULSE_DEVICE_BACKEND_CONFIG_H

#include <string>
#include <vector>

#include "pulsesim/transmon.h"

namespace qpulse {

/** Readout (measurement) error of one qubit. */
struct ReadoutError
{
    double probFlip0to1 = 0.038; ///< P(read 1 | prepared 0).
    double probFlip1to0 = 0.038; ///< P(read 0 | prepared 1).
};

/** Directed two-qubit connection with its calibration-relevant data. */
struct CouplingEdge
{
    std::size_t control;
    std::size_t target;
    double strengthGhz = 0.0035; ///< Exchange J.
};

/** Noise-model knobs for the duration-aware simulator (Section 8.3). */
struct NoiseBudget
{
    /**
     * Depolarizing probability per calibrated 1q pulse application
     * (weighted by squared relative amplitude). Tuned so that the RB
     * improvement splits ~70/30 between shorter pulses and
     * fewer/smaller pulses, as measured in Section 8.3.
     */
    double perPulseError1q = 0.00065;
    /** Depolarizing probability per CR pulse-half application. */
    double perPulseError2q = 0.0066;
    /** Relative amplitude miscalibration (coherent) per pulse. */
    double amplitudeError = 0.003;
    /** Extra depolarizing per pulse proportional to peak amplitude^2. */
    double leakagePerAmpSq = 0.0006;
};

/** A full backend description. */
struct BackendConfig
{
    std::string name;
    std::size_t numQubits = 1;
    std::vector<TransmonParams> qubits;
    std::vector<CouplingEdge> couplings;
    std::vector<ReadoutError> readout;
    NoiseBudget noise;

    /** Standard single-pulse duration: 160 dt = 35.6 ns (Figure 4). */
    long pulseDuration = 160;
    /** Gaussian sigma for 1q pulses, in dt. */
    double pulseSigma = 40.0;
    /**
     * Rise/fall length of the CR GaussianSquare, in dt. Long enough
     * (13 ns) that the edge bandwidth stays below the qubit-qubit
     * detuning, keeping the off-resonant control-qubit excitation
     * adiabatic.
     */
    long crRisefall = 60;
    /**
     * CR drive amplitude used during calibration. Must stay in the
     * perturbative cross-resonance regime (drive Rabi rate well below
     * the qubit-qubit detuning), or the echo stops producing a clean
     * ZX interaction: 0.14 * 0.25 GHz = 35 MHz against a 100 MHz
     * detuning.
     */
    double crAmplitude = 0.14;
    /** Measurement stimulus + acquisition window, in dt (~3.5 us). */
    long measureDuration = 16000;

    /** The coupling edge for a (control, target) pair; fatal if absent. */
    const CouplingEdge &edge(std::size_t control,
                             std::size_t target) const;

    /** True if a directed edge exists. */
    bool hasEdge(std::size_t control, std::size_t target) const;
};

/**
 * Almaden-like 20-qubit backend. Qubit frequencies are staggered
 * around 5 GHz (neighbouring qubits detuned by ~100 MHz as in IBM's
 * fixed-frequency lattices) with alpha ~ -330 MHz; coherence and error
 * rates match the Section 2.4 means.
 */
BackendConfig almadenConfig();

/** Armonk-like single-qubit backend (Figure 13 experiments). */
BackendConfig armonkConfig();

/** Small n-qubit line cut of the Almaden config (for benchmarks). */
BackendConfig almadenLineConfig(std::size_t n_qubits);

} // namespace qpulse

#endif // QPULSE_DEVICE_BACKEND_CONFIG_H
