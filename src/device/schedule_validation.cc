#include "device/schedule_validation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {

namespace {

std::string
instContext(const PulseInstruction &inst)
{
    return inst.channel.toString() + " at t=" +
           std::to_string(inst.startTime);
}

} // namespace

ChannelBudget
ChannelBudget::fromConfig(const BackendConfig &config)
{
    ChannelBudget budget;
    budget.driveChannels = config.numQubits;
    budget.controlChannels = config.couplings.size();
    budget.measureChannels = config.numQubits;
    budget.acquireChannels = config.numQubits;
    return budget;
}

namespace {

/** Count the gate's verdict into the global metrics sink. */
Status
countValidation(Status status)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_calls =
        registry.counter("device.validation.calls");
    c_calls.increment();
    if (!status.ok()) {
        static telemetry::Counter &c_rejects =
            registry.counter("device.validation.rejects");
        c_rejects.increment();
    }
    return status;
}

Status
validateScheduleImpl(const Schedule &schedule,
                     const ChannelBudget &budget)
{
    // An empty schedule is structurally meaningless as a job payload:
    // before this check it flowed through admission, burned a full
    // execution attempt and only failed downstream (zero-length drive
    // timeline, counts drawn from an unevolved ground state).
    if (schedule.instructions().empty())
        return Status::error(
            ErrorCode::EmptySchedule,
            "schedule '" + schedule.name() + "' has no instructions");

    std::map<Channel, std::vector<std::pair<long, long>>> play_spans;

    for (const auto &inst : schedule.instructions()) {
        if (inst.startTime < 0)
            return Status::error(
                ErrorCode::NegativeTime,
                "instruction on " + instContext(inst) +
                    " starts before t=0");

        std::size_t limit = 0;
        switch (inst.channel.kind) {
          case ChannelKind::Drive:   limit = budget.driveChannels; break;
          case ChannelKind::Control: limit = budget.controlChannels; break;
          case ChannelKind::Measure: limit = budget.measureChannels; break;
          case ChannelKind::Acquire: limit = budget.acquireChannels; break;
        }
        if (inst.channel.index >= limit)
            return Status::error(
                ErrorCode::UnknownChannel,
                "channel " + inst.channel.toString() +
                    " outside the backend budget (" +
                    std::to_string(limit) + " channels of this kind)");

        if (inst.kind != PulseInstructionKind::Play)
            continue;
        if (!inst.waveform)
            return Status::error(ErrorCode::InvalidArgument,
                                 "Play without a waveform on " +
                                     instContext(inst));

        // One pass over the samples covers both the finiteness and the
        // saturation check; the scan is memoized per (immutable)
        // waveform object, so re-validating a schedule whose pulses are
        // already known — e.g. a compile-cache hit checked against the
        // current calibration — costs O(instructions), not O(samples).
        const long duration = inst.waveform->duration();
        if (duration <= 0)
            return Status::error(
                ErrorCode::ZeroDurationPlay,
                "zero-duration Play of '" + inst.waveform->name() +
                    "' on " + instContext(inst));
        const WaveformScan &scan = inst.waveform->sampleScan();
        if (scan.firstNonFinite >= 0)
            return Status::error(
                ErrorCode::NonFiniteSample,
                "non-finite sample " +
                    std::to_string(scan.firstNonFinite) + " in '" +
                    inst.waveform->name() + "' on " + instContext(inst));
        if (scan.peak > 1.0 + 1e-9)
            return Status::error(
                ErrorCode::AmplitudeSaturation,
                "pulse '" + inst.waveform->name() + "' on " +
                    instContext(inst) + " saturates the AWG (peak |d|=" +
                    std::to_string(scan.peak) + " > 1)");

        play_spans[inst.channel].emplace_back(inst.startTime,
                                              inst.endTime());
    }

    for (auto &entry : play_spans) {
        auto &spans = entry.second;
        std::sort(spans.begin(), spans.end());
        for (std::size_t i = 1; i < spans.size(); ++i)
            if (spans[i].first < spans[i - 1].second)
                return Status::error(
                    ErrorCode::NonMonotonicTime,
                    "non-monotonic Play times on " +
                        entry.first.toString() + ": pulse at t=" +
                        std::to_string(spans[i].first) +
                        " starts before the previous pulse ends (t=" +
                        std::to_string(spans[i - 1].second) + ")");
    }
    return Status::okStatus();
}

} // namespace

Status
validateSchedule(const Schedule &schedule, const ChannelBudget &budget)
{
    telemetry::TraceSpan span("device.validate_schedule");
    return countValidation(validateScheduleImpl(schedule, budget));
}

Status
validateSchedule(const Schedule &schedule, const BackendConfig &config)
{
    return validateSchedule(schedule, ChannelBudget::fromConfig(config));
}

} // namespace qpulse
