/**
 * @file
 * Gate calibration: the daily routine the paper bootstraps from
 * (Sections 2.3 and 3.4). Every calibrated quantity here is obtained
 * by running *experiments* against the pulse simulator — Rabi
 * amplitude scans, DRAG leakage scans, cross-resonance duration scans,
 * sideband amplitude scans — never by reading the model Hamiltonian.
 * The results populate the PulseLibrary that both compiler flows (and
 * all augmented basis gates) are built from.
 */
#ifndef QPULSE_DEVICE_CALIBRATION_H
#define QPULSE_DEVICE_CALIBRATION_H

#include <map>
#include <optional>

#include "device/backend_config.h"
#include "pulse/waveform.h"
#include "pulsesim/simulator.h"

namespace qpulse {

/** Calibrated single-qubit pulse set. */
struct QubitCalibration
{
    long duration = 160;   ///< Pulse length in dt (35.6 ns).
    double sigma = 40.0;   ///< Gaussian sigma in dt.
    double x90Amp = 0.0;   ///< DRAG amplitude for a 90 deg rotation.
    double x180Amp = 0.0;  ///< DRAG amplitude for a 180 deg rotation.
    double dragBeta = 0.0; ///< DRAG derivative coefficient (samples).

    // Qutrit extension (Section 7): sideband pulse amplitudes.
    double x12Amp = 0.0;     ///< pi pulse on |1>-|2> at f12.
    double x02Amp = 0.0;     ///< two-photon pi pulse on |0>-|2> at f02/2.
    long qutritDuration = 160;

    /** The calibrated Rx(90) DRAG pulse. */
    WaveformPtr x90Pulse() const;
    /** The calibrated Rx(180) DRAG pulse (the DirectX pulse). */
    WaveformPtr x180Pulse() const;
};

/** Calibrated echoed cross-resonance for one directed edge. */
struct CrCalibration
{
    std::size_t control = 0;
    std::size_t target = 1;
    double amplitude = 0.0;     ///< GaussianSquare amplitude.
    long risefall = 20;         ///< Edge length in dt.
    double sigma = 5.0;         ///< Edge sigma in dt.
    long flatFor90 = 0;         ///< Per-half flat-top for net CR(90).
    double radPerDtFlat = 0.0;  ///< d(theta)/d(per-half flat) slope.
    double radAtZeroFlat = 0.0; ///< theta at zero flat (edge area).
    double phaseFixControl = 0.0; ///< Rz correction after the echo.
    double phaseFixTarget = 0.0;  ///< Rz correction after the echo.
    /**
     * Rotation-axis correction: the J-mediated target drive arrives
     * with a fixed phase offset, so the raw echo rotates the target
     * about a tilted axis in the XY plane. A virtual-Z sandwich
     * Rz(-psi) . echo . Rz(psi) on the target straightens the axis to
     * X. This mirrors the CR tone phase calibration done on hardware.
     */
    double axisPhaseTarget = 0.0;

    /** Calibrated Stark after-fixes at one stretch angle. */
    struct PhaseFixPoint
    {
        double theta;   ///< Net CR angle the fixes were tuned at.
        double control; ///< Rz correction on the control.
        double target;  ///< Rz correction on the target.
        double axis;    ///< Axis sandwich angle at this stretch.
    };

    /**
     * Per-angle phase-fix table (sorted by theta): the Stark-like
     * residuals do not scale exactly linearly with the stretch, so
     * the calibration measures them at several angles and consumers
     * interpolate. Falls back to linear scaling of the 90-degree
     * values when empty.
     */
    std::vector<PhaseFixPoint> fixTable;

    /** Interpolated {control, target, axis} corrections for |theta|. */
    PhaseFixPoint fixAt(double theta_rad) const;

    /**
     * Per-half flat-top duration and amplitude scale realising a net
     * CR(|theta|). When |theta| is below the zero-flat angle the pulse
     * is amplitude-scaled instead of stretched.
     */
    struct Stretch { long flat; double ampScale; };
    Stretch stretchFor(double theta_rad) const;

    /** One echo half: the GaussianSquare CR pulse (sign applied). */
    WaveformPtr halfPulse(long flat, double amp_scale, double sign) const;
};

/** Everything the backend reports after its daily calibration. */
struct PulseLibrary
{
    BackendConfig config;
    std::vector<QubitCalibration> qubits;
    std::vector<CrCalibration> crs; ///< One per coupling edge, directed
                                    ///< control -> target as configured.

    /** The CR calibration for a directed edge; fatal if absent. */
    const CrCalibration &cr(std::size_t control, std::size_t target) const;

    /** Control-channel index assigned to a directed edge. */
    std::size_t controlChannelIndex(std::size_t control,
                                    std::size_t target) const;
};

/**
 * Runs calibration experiments on pulse-simulated hardware.
 */
class Calibrator
{
  public:
    explicit Calibrator(BackendConfig config);

    /** Calibrate every qubit and every coupling edge. */
    PulseLibrary calibrateAll(bool include_qutrit = false);

    /** Calibrate the single-qubit pulses of one qubit. */
    QubitCalibration calibrateQubit(std::size_t qubit);

    /** Calibrate the qutrit sideband pulses of one qubit. */
    void calibrateQutrit(std::size_t qubit, QubitCalibration &cal);

    /** Calibrate the echoed CR of one directed edge. */
    CrCalibration calibrateCr(std::size_t control, std::size_t target,
                              const QubitCalibration &control_cal);

    /** Single-transmon model for a qubit (3 levels). */
    TransmonModel qubitModel(std::size_t qubit) const;

    /**
     * Two-transmon model for an edge; transmon 0 is the control. The
     * returned simulator has control channel u0 mapped to drive the
     * control transmon at the target's frequency.
     */
    PulseSimulator pairSimulator(std::size_t control,
                                 std::size_t target) const;

  private:
    BackendConfig config_;
    /** Memoised per-qubit results (identical params -> same pulses). */
    std::map<std::string, QubitCalibration> qubitCache_;
    std::map<std::string, CrCalibration> crCache_;
};

} // namespace qpulse

#endif // QPULSE_DEVICE_CALIBRATION_H
