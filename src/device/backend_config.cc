#include "device/backend_config.h"

#include "common/logging.h"

namespace qpulse {

const CouplingEdge &
BackendConfig::edge(std::size_t control, std::size_t target) const
{
    for (const auto &e : couplings)
        if ((e.control == control && e.target == target) ||
            (e.control == target && e.target == control))
            return e;
    qpulseFatal("backend ", name, " has no coupling between qubits ",
                control, " and ", target);
}

bool
BackendConfig::hasEdge(std::size_t control, std::size_t target) const
{
    for (const auto &e : couplings)
        if ((e.control == control && e.target == target) ||
            (e.control == target && e.target == control))
            return true;
    return false;
}

namespace {

/** Shared qubit-parameter recipe for the Almaden-like lattice. */
TransmonParams
almadenQubit(std::size_t index)
{
    TransmonParams params;
    // Staggered fixed frequencies: neighbours detuned by ~100 MHz so
    // cross-resonance is effective, with mild per-qubit spread.
    params.frequencyGhz =
        5.00 + 0.10 * static_cast<double>(index % 2) +
        0.004 * static_cast<double>(index % 5);
    params.anharmonicityGhz = -0.330;
    params.driveStrengthGhz = 0.25;
    params.t1Us = 94.0;
    params.t2Us = 88.0;
    return params;
}

} // namespace

BackendConfig
almadenConfig()
{
    BackendConfig config;
    config.name = "almaden-sim";
    config.numQubits = 20;
    for (std::size_t q = 0; q < config.numQubits; ++q) {
        config.qubits.push_back(almadenQubit(q));
        config.readout.push_back(ReadoutError{0.038, 0.038});
    }
    // Almaden's heavy-square lattice: four rows of five qubits with
    // alternating rung couplers.
    auto connect = [&](std::size_t a, std::size_t b) {
        config.couplings.push_back(CouplingEdge{a, b, 0.0035});
    };
    for (std::size_t row = 0; row < 4; ++row)
        for (std::size_t col = 0; col + 1 < 5; ++col)
            connect(row * 5 + col, row * 5 + col + 1);
    connect(1, 6);
    connect(3, 8);
    connect(5, 10);
    connect(7, 12);
    connect(9, 14);
    connect(11, 16);
    connect(13, 18);
    return config;
}

BackendConfig
armonkConfig()
{
    BackendConfig config;
    config.name = "armonk-sim";
    config.numQubits = 1;
    TransmonParams params;
    params.frequencyGhz = 4.974; // Armonk's actual f01.
    params.anharmonicityGhz = -0.347;
    params.driveStrengthGhz = 0.25;
    params.t1Us = 140.0;
    params.t2Us = 90.0;
    config.qubits.push_back(params);
    config.readout.push_back(ReadoutError{0.025, 0.035});
    return config;
}

BackendConfig
almadenLineConfig(std::size_t n_qubits)
{
    qpulseRequire(n_qubits >= 1 && n_qubits <= 20,
                  "almadenLineConfig supports 1..20 qubits");
    BackendConfig config;
    config.name = "almaden-line-" + std::to_string(n_qubits);
    config.numQubits = n_qubits;
    for (std::size_t q = 0; q < n_qubits; ++q) {
        config.qubits.push_back(almadenQubit(q));
        config.readout.push_back(ReadoutError{0.038, 0.038});
    }
    for (std::size_t q = 0; q + 1 < n_qubits; ++q)
        config.couplings.push_back(CouplingEdge{q, q + 1, 0.0035});
    return config;
}

} // namespace qpulse
