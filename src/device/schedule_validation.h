/**
 * @file
 * validateSchedule(): the structured gate at the PulseBackend /
 * PulseSimulator boundary. Real OpenPulse backends reject malformed
 * Qobjs up front; before this gate existed a NaN amplitude or a
 * saturated envelope flowed silently into the quantized propagator
 * cache keys and eigendecompositions, producing garbage counts with
 * no diagnostic. Every malformed-schedule class maps to a distinct
 * ErrorCode (common/status.h) so callers can branch on the reject
 * reason: NonFiniteSample, AmplitudeSaturation, UnknownChannel,
 * NegativeTime, NonMonotonicTime.
 */
#ifndef QPULSE_DEVICE_SCHEDULE_VALIDATION_H
#define QPULSE_DEVICE_SCHEDULE_VALIDATION_H

#include "common/status.h"
#include "device/backend_config.h"
#include "pulse/schedule.h"

namespace qpulse {

/** The channels a backend actually exposes. */
struct ChannelBudget
{
    std::size_t driveChannels = 0;   ///< d0..d{n-1}.
    std::size_t controlChannels = 0; ///< u0..u{e-1} (one per edge).
    std::size_t measureChannels = 0; ///< m0..m{n-1}.
    std::size_t acquireChannels = 0; ///< a0..a{n-1}.

    /** Budget implied by a backend config (qubits + directed edges). */
    static ChannelBudget fromConfig(const BackendConfig &config);
};

/**
 * Validate one schedule against a channel budget. Returns the first
 * violation found (instruction order, then per-channel overlap scan)
 * as a non-Ok Status with a distinct ErrorCode per malformed class;
 * Ok when the schedule may safely reach the simulator.
 *
 * Checks, before anything else:
 *  - EmptySchedule: the schedule has no instructions at all (an empty
 *    payload used to burn a full execution attempt before failing
 *    downstream);
 * then in order per instruction:
 *  - NegativeTime: startTime < 0;
 *  - UnknownChannel: channel index outside the budget;
 *  - ZeroDurationPlay: a Play whose waveform has no samples;
 *  - NonFiniteSample: any NaN/Inf Play sample;
 *  - AmplitudeSaturation: |d(t)| > 1 + 1e-9 on any Play sample;
 * then across instructions:
 *  - NonMonotonicTime: overlapping Play spans on one channel (the
 *    channel's upload times run backwards relative to the previous
 *    pulse's end).
 */
Status validateSchedule(const Schedule &schedule,
                        const ChannelBudget &budget);

/** Convenience overload: budget derived from the config. */
Status validateSchedule(const Schedule &schedule,
                        const BackendConfig &config);

} // namespace qpulse

#endif // QPULSE_DEVICE_SCHEDULE_VALIDATION_H
