/**
 * @file
 * ResilientExecutor: pulse execution that survives a faulty substrate
 * (validate -> inject -> retry -> recalibrate -> degrade).
 *
 * Wraps PulseBackend::runShots with the recovery loop a production
 * client of a real OpenPulse backend needs:
 *
 *  - every schedule passes the validateSchedule gate before touching
 *    the simulator (structured reject, never silent garbage);
 *  - transient batch failures/timeouts are retried with bounded
 *    exponential backoff and *deterministic* jitter (seed-derived, so
 *    fault-injected runs stay bit-identical across thread counts);
 *  - corrupted AWG uploads (NaN, clipped envelopes) are caught by the
 *    same gate and re-uploaded;
 *  - a drift watchdog compares a readout-fidelity proxy (probability
 *    of the expected top basis state) against the calibrated baseline
 *    and triggers a targeted calibration refresh when the tolerance is
 *    crossed — once per crossing, bounded per run;
 *  - when a (typically augmented-basis: DirectRx / CR(theta)) entry is
 *    structurally invalid or repeatedly failing, the executor degrades
 *    gracefully to the caller-supplied standard cmd_def decomposition
 *    instead of erroring out, mirroring how the paper's optimized flow
 *    coexists with the standard flow.
 *
 * Every outcome is counted in a ResilienceStats block threaded into
 * the returned PulseShotResult. The executor is deliberately *not*
 * thread-safe across calls (stale tracking and the fault injector are
 * sequential state); the shot-level parallelism below it is untouched.
 */
#ifndef QPULSE_DEVICE_RESILIENT_EXECUTOR_H
#define QPULSE_DEVICE_RESILIENT_EXECUTOR_H

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "device/fault_injector.h"
#include "device/pulse_backend.h"
#include "device/resilience_stats.h"

namespace qpulse {

/** Bounded-retry policy with exponential backoff. */
struct RetryPolicy
{
    int maxAttempts = 4;        ///< Attempt budget per schedule phase.
    double backoffBaseMs = 1.0; ///< Delay before the first retry.
    double backoffFactor = 2.0; ///< Exponential growth per retry.
    double backoffCapMs = 64.0; ///< Upper bound on a single delay.
    double jitter = 0.25;       ///< +/- fraction, deterministic.
    /**
     * Cap on the *cumulative* backoff of one run() call, both phases
     * included. backoffCapMs bounds a single delay, but maxAttempts
     * delays still sum to ~maxAttempts * cap — a latency hole under a
     * deadline. Once the cumulative delay reaches this cap, later
     * retries proceed immediately. Negative = unbounded (legacy
     * behaviour). Delays are additionally clamped to the deadline's
     * remainingMs() so backoff can never overshoot the job budget.
     */
    double maxTotalBackoffMs = -1.0;
    /**
     * Actually sleep the computed delays. Off by default: tests and
     * benches only need the accounting (backoffTotalMs), and the
     * simulated backend has no rate limit to respect.
     */
    bool sleep = false;
};

/** Drift-watchdog policy. */
struct DriftWatchdogPolicy
{
    bool enabled = true;
    /** Allowed drop of the fidelity proxy below the baseline. */
    double tolerance = 0.08;
    /** Calibration refreshes the watchdog may trigger per run. */
    int maxRecalibrations = 2;
};

/** Graceful-degradation policy. */
struct DegradePolicy
{
    bool enabled = true;
    /**
     * Consecutive failed runs after which an entry is marked stale
     * and future runs go straight to the fallback decomposition.
     */
    int staleAfterFailures = 2;
};

/** One resilient execution request. */
struct ResilientRequest
{
    Schedule schedule; ///< Primary (optimized/augmented) schedule.
    /**
     * Identity for stale tracking, e.g. "direct_rx/q0". Empty means
     * no cross-run tracking.
     */
    std::string key;
    /** Standard-flow decomposition to degrade to (optional). */
    std::optional<Schedule> fallback;
    /**
     * Expected probability of the dominant basis state (the readout
     * fidelity proxy's baseline). Negative = derive from a clean
     * fault-free evolution of the schedule.
     */
    double baselineProxy = -1.0;
};

/** Everything a resilient run reports. */
struct ResilientOutcome
{
    /** Ok on success (possibly degraded); the terminal error else. */
    Status status;
    /** Last fault seen, preserved even when recovery succeeded. */
    Status lastError;
    /** Shot result; counts empty if status is not ok. The stats block
     *  is mirrored in result.resilience. */
    PulseShotResult result;
    bool usedFallback = false;
    /** True when the accepted result stayed below the proxy baseline
     *  (best-effort after the retry/recalibration budget ran out). */
    bool degraded = false;
    double baseline = 0.0; ///< Baseline proxy used.
    double proxy = 0.0;    ///< Measured proxy of the accepted result.
    ResilienceStats stats; ///< This run's counters.
};

/**
 * The resilient execution layer over PulseBackend::runShots.
 */
class ResilientExecutor
{
  public:
    explicit ResilientExecutor(
        std::shared_ptr<const PulseBackend> backend,
        RetryPolicy retry = {}, DriftWatchdogPolicy watchdog = {},
        DegradePolicy degrade = {});

    /** Attach the fault source (null = fault-free substrate). */
    void setFaultInjector(std::shared_ptr<FaultInjector> injector)
    {
        injector_ = std::move(injector);
    }

    /**
     * Invoked whenever the drift watchdog fires, in addition to the
     * injector's own recalibrate(). Hook a targeted Calibrator refresh
     * here on a real device.
     */
    void setRecalibrationHook(std::function<void()> hook)
    {
        recalibrationHook_ = std::move(hook);
    }

    /** Execute one request (sequential; see class comment). */
    ResilientOutcome run(const PulseSimulator &sim,
                         const ResilientRequest &request,
                         const PulseShotOptions &opts);

    /** True once `key` accumulated staleAfterFailures failed runs. */
    bool entryStale(const std::string &key) const;

    /** Clear a key's failure streak (e.g. after recalibration). */
    void markFresh(const std::string &key);

    /** Lifetime totals across all run() calls. */
    const ResilienceStats &stats() const { return stats_; }

    const RetryPolicy &retryPolicy() const { return retry_; }
    const DriftWatchdogPolicy &watchdogPolicy() const
    {
        return watchdog_;
    }

  private:
    /** Deterministic backoff delay for retry number `attempt`. */
    double backoffMs(int attempt, std::uint64_t run_id,
                     std::uint64_t seed) const;

    void registerFailure(const std::string &key);

    std::shared_ptr<const PulseBackend> backend_;
    std::shared_ptr<FaultInjector> injector_;
    std::function<void()> recalibrationHook_;
    RetryPolicy retry_;
    DriftWatchdogPolicy watchdog_;
    DegradePolicy degrade_;
    std::map<std::string, int> failureStreaks_;
    ResilienceStats stats_;
    std::uint64_t runCounter_ = 0;
};

} // namespace qpulse

#endif // QPULSE_DEVICE_RESILIENT_EXECUTOR_H
