#include "device/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/env.h"

namespace qpulse {

namespace {

// Salts decorrelating the decision streams from each other and from
// the shot-sampling streams (which use the raw user seed).
constexpr std::uint64_t kDriftSalt = 0xD21F7A5Eull;
constexpr std::uint64_t kAttemptSalt = 0xA77E3B17ull;
constexpr std::uint64_t kReadoutSalt = 0x2EAD0375ull;
constexpr std::uint64_t kFleetSalt = 0xF1EE7BACull;
constexpr std::uint64_t kIngestSalt = 0x169E5707ull;

/** Peak |d| above which a clipped upload sits (DAC saturation). */
constexpr double kClipPeak = 1.5;

bool
parseDouble(const std::string &text, double &out)
{
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0' &&
           std::isfinite(out);
}

} // namespace

bool
FaultPlan::enabled() const
{
    return transientRate > 0.0 || timeoutRate > 0.0 ||
           driftRate > 0.0 || awgNanRate > 0.0 || awgClipRate > 0.0 ||
           awgDropRate > 0.0 || readoutFlipRate > 0.0 ||
           readoutDropRate > 0.0 || ingestTruncateRate > 0.0 ||
           ingestCorruptRate > 0.0 || ingestDupKeyRate > 0.0 ||
           ingestDisconnectRate > 0.0;
}

std::string
FaultPlan::toString() const
{
    auto fmt = [](double value) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%g", value);
        return std::string(buf);
    };
    return "seed=" + std::to_string(seed) +
           ",transient=" + fmt(transientRate) +
           ",timeout=" + fmt(timeoutRate) + ",drift=" + fmt(driftRate) +
           ",drift_khz=" + fmt(driftFreqKhz) +
           ",drift_amp=" + fmt(driftAmpError) +
           ",awg_nan=" + fmt(awgNanRate) +
           ",awg_clip=" + fmt(awgClipRate) +
           ",awg_drop=" + fmt(awgDropRate) +
           ",ro_flip=" + fmt(readoutFlipRate) +
           ",ro_drop=" + fmt(readoutDropRate) +
           ",ingest_trunc=" + fmt(ingestTruncateRate) +
           ",ingest_corrupt=" + fmt(ingestCorruptRate) +
           ",ingest_dupkey=" + fmt(ingestDupKeyRate) +
           ",ingest_disc=" + fmt(ingestDisconnectRate);
}

Status
FaultPlan::parse(const std::string &spec, FaultPlan &out)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find_first_of(",;", pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string item = spec.substr(pos, end - pos);
        pos = end + 1;

        // Trim surrounding whitespace; empty items are allowed.
        const std::size_t first = item.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue;
        const std::size_t last = item.find_last_not_of(" \t");
        item = item.substr(first, last - first + 1);

        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            return Status::error(ErrorCode::ParseError,
                                 "fault-plan item '" + item +
                                     "' is not key=value");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);

        if (key == "seed") {
            char *endp = nullptr;
            const unsigned long long parsed =
                std::strtoull(value.c_str(), &endp, 10);
            if (endp == value.c_str() || *endp != '\0')
                return Status::error(ErrorCode::ParseError,
                                     "fault-plan seed '" + value +
                                         "' is not an integer");
            plan.seed = parsed;
            continue;
        }

        double number = 0.0;
        if (!parseDouble(value, number))
            return Status::error(ErrorCode::ParseError,
                                 "fault-plan value '" + value +
                                     "' for key '" + key +
                                     "' is not a number");

        // Magnitude knobs take any non-negative value; rates are
        // probabilities and must stay in [0, 1].
        if (key == "drift_khz" || key == "drift_amp") {
            if (number < 0.0)
                return Status::error(ErrorCode::ParseError,
                                     "fault-plan '" + key +
                                         "' must be >= 0");
            (key == "drift_khz" ? plan.driftFreqKhz
                                : plan.driftAmpError) = number;
            continue;
        }
        if (number < 0.0 || number > 1.0)
            return Status::error(ErrorCode::ParseError,
                                 "fault-plan rate '" + key + "'=" +
                                     value + " outside [0, 1]");
        if (key == "transient")
            plan.transientRate = number;
        else if (key == "timeout")
            plan.timeoutRate = number;
        else if (key == "drift")
            plan.driftRate = number;
        else if (key == "awg_nan")
            plan.awgNanRate = number;
        else if (key == "awg_clip")
            plan.awgClipRate = number;
        else if (key == "awg_drop")
            plan.awgDropRate = number;
        else if (key == "ro_flip")
            plan.readoutFlipRate = number;
        else if (key == "ro_drop")
            plan.readoutDropRate = number;
        else if (key == "ingest_trunc")
            plan.ingestTruncateRate = number;
        else if (key == "ingest_corrupt")
            plan.ingestCorruptRate = number;
        else if (key == "ingest_dupkey")
            plan.ingestDupKeyRate = number;
        else if (key == "ingest_disc")
            plan.ingestDisconnectRate = number;
        else
            return Status::error(ErrorCode::ParseError,
                                 "unknown fault-plan key '" + key +
                                     "'");
    }
    out = plan;
    return Status::okStatus();
}

FaultPlan
FaultPlan::deriveForBackend(std::uint64_t backend_index) const
{
    FaultPlan derived = *this;
    derived.seed = Rng::deriveSeed(seed ^ kFleetSalt, backend_index);
    return derived;
}

FaultPlan
FaultPlan::fromEnv()
{
    FaultPlan plan;
    const auto spec = envString("QPULSE_FAULT_PLAN");
    if (!spec)
        return plan;
    const Status status = FaultPlan::parse(*spec, plan);
    if (!status.ok()) {
        envWarn("QPULSE_FAULT_PLAN",
                status.toString() + "; fault injection disabled");
        return FaultPlan{};
    }
    return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {}

void
FaultInjector::rollDrift(std::uint64_t run)
{
    if (plan_.driftRate <= 0.0 || run == lastDriftRollRun_)
        return;
    lastDriftRollRun_ = run;
    Rng rng(Rng::deriveSeed(plan_.seed ^ kDriftSalt, run));
    if (!driftActive_ && rng.uniform() < plan_.driftRate) {
        driftActive_ = true;
        ++stats_.driftSpikes;
        ++stats_.faultsInjected;
    }
}

Schedule
FaultInjector::applyDrift(const Schedule &clean) const
{
    // Coherent drift relative to calibration (the bench_ablation_drift
    // model): every calibrated envelope is played at a slightly wrong
    // frequency and amplitude. Correlated across pulses — unlike the
    // per-pulse AWG faults — which is exactly why only a calibration
    // refresh (not a retry) can remove it.
    Schedule drifted(clean.name());
    const double freq_ghz = plan_.driftFreqKhz * 1e-6;
    const Complex scale{1.0 + plan_.driftAmpError, 0.0};
    for (const auto &inst : clean.instructions()) {
        PulseInstruction copy = inst;
        if (inst.kind == PulseInstructionKind::Play &&
            (inst.channel.kind == ChannelKind::Drive ||
             inst.channel.kind == ChannelKind::Control)) {
            WaveformPtr wave = inst.waveform;
            if (freq_ghz != 0.0)
                wave = std::make_shared<SidebandWaveform>(wave,
                                                          freq_ghz);
            if (plan_.driftAmpError != 0.0) {
                // Materialize the amplitude error instead of wrapping
                // in ScaledWaveform: that wrapper enforces the
                // compile-layer |scale| <= 1 invariant, and a drifted
                // amplifier can legitimately overshoot it (validation
                // still rejects the envelope if it exceeds |d| = 1).
                std::vector<Complex> samples = wave->samples();
                for (Complex &d : samples)
                    d *= scale;
                wave = std::make_shared<SampledWaveform>(
                    std::move(samples),
                    "drifted(" + inst.waveform->name() + ")");
            }
            copy.waveform = wave;
        }
        drifted.addInstruction(copy);
    }
    return drifted;
}

Schedule
FaultInjector::corrupt(const Schedule &clean, Rng &rng, bool nan,
                       bool clip, bool drop) const
{
    // Pick one drive/control Play as the corrupted upload.
    std::vector<std::size_t> candidates;
    const auto &insts = clean.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i)
        if (insts[i].kind == PulseInstructionKind::Play &&
            (insts[i].channel.kind == ChannelKind::Drive ||
             insts[i].channel.kind == ChannelKind::Control))
            candidates.push_back(i);
    if (candidates.empty())
        return clean;
    const std::size_t target =
        candidates[rng.uniformInt(candidates.size())];

    std::vector<Complex> samples = insts[target].waveform->samples();
    if (samples.empty())
        return clean;
    if (nan) {
        samples[rng.uniformInt(samples.size())] =
            Complex{std::numeric_limits<double>::quiet_NaN(), 0.0};
    } else if (clip) {
        // DAC glitch: the whole envelope saturates above |d| = 1, so
        // the validation gate rejects the upload deterministically.
        double peak = 0.0;
        for (const Complex &d : samples)
            peak = std::max(peak, std::abs(d));
        const double factor = peak > 0.0 ? kClipPeak / peak : 1.0;
        for (Complex &d : samples)
            d *= factor;
    } else if (drop) {
        // A contiguous quarter of the samples never reaches the AWG.
        const std::size_t len = std::max<std::size_t>(
            1, samples.size() / 4);
        const std::size_t start =
            rng.uniformInt(samples.size() - len + 1);
        for (std::size_t k = start; k < start + len; ++k)
            samples[k] = Complex{0.0, 0.0};
    }

    Schedule corrupted(clean.name());
    for (std::size_t i = 0; i < insts.size(); ++i) {
        PulseInstruction copy = insts[i];
        if (i == target)
            copy.waveform = std::make_shared<SampledWaveform>(
                std::move(samples),
                "corrupted(" + insts[i].waveform->name() + ")");
        corrupted.addInstruction(copy);
    }
    return corrupted;
}

FaultInjector::Injection
FaultInjector::inject(const Schedule &clean, std::uint64_t run,
                      int attempt)
{
    Injection injection;
    rollDrift(run);

    Rng rng(Rng::deriveSeed(
        Rng::deriveSeed(plan_.seed ^ kAttemptSalt, run),
        static_cast<std::uint64_t>(attempt)));

    // Fixed draw order keeps the sequence reproducible regardless of
    // which classes are enabled at a given rate.
    const bool transient = rng.uniform() < plan_.transientRate;
    const bool timeout = rng.uniform() < plan_.timeoutRate;
    const bool nan = rng.uniform() < plan_.awgNanRate;
    const bool clip = rng.uniform() < plan_.awgClipRate;
    const bool drop = rng.uniform() < plan_.awgDropRate;

    if (transient || timeout) {
        injection.transient = transient;
        injection.timeout = !transient && timeout;
        ++stats_.faultsInjected;
        if (injection.transient)
            ++stats_.transientFailures;
        else
            ++stats_.timeouts;
        injection.schedule = clean;
        return injection;
    }

    Schedule result = clean;
    if (nan || clip || drop) {
        result = corrupt(result, rng, nan, clip, drop);
        injection.corrupted = true;
        ++stats_.faultsInjected;
        ++stats_.corruptedSchedules;
    }
    if (driftActive_) {
        result = applyDrift(result);
        injection.driftApplied = true;
    }
    injection.schedule = std::move(result);
    return injection;
}

FaultInjector::IngestInjection
FaultInjector::injectIngest(const std::string &document,
                            std::uint64_t request)
{
    IngestInjection injection;
    injection.payload = document;
    if (document.empty())
        return injection;

    Rng rng(Rng::deriveSeed(plan_.seed ^ kIngestSalt, request));

    // Fixed draw order (as in inject()): every class consumes its
    // uniform whether or not it fires, so enabling one class never
    // shifts another's stream.
    const bool trunc = rng.uniform() < plan_.ingestTruncateRate;
    const bool corrupt = rng.uniform() < plan_.ingestCorruptRate;
    const bool dupkey = rng.uniform() < plan_.ingestDupKeyRate;
    const bool disconnect = rng.uniform() < plan_.ingestDisconnectRate;

    // At most one payload mutation fires (priority truncate > corrupt
    // > dup-key); the disconnect decision is independent because a
    // connection can die regardless of what the bytes look like.
    if (trunc && document.size() > 1) {
        injection.truncated = true;
        injection.payload.resize(
            1 + rng.uniformInt(document.size() - 1));
    } else if (corrupt) {
        injection.corrupted = true;
        const std::size_t at = rng.uniformInt(document.size());
        injection.payload[at] = static_cast<char>(
            static_cast<unsigned char>(injection.payload[at]) ^
            static_cast<unsigned char>(1 + rng.uniformInt(255)));
    } else if (dupkey) {
        injection.duplicatedKey = true;
        const std::size_t brace = injection.payload.find('{');
        const std::string dup = "\"__dup__\":0,\"__dup__\":0,";
        if (brace == std::string::npos)
            injection.payload = "{" + dup.substr(0, dup.size() - 1) +
                                "}";
        else
            injection.payload.insert(brace + 1, dup);
    }

    if (disconnect) {
        injection.disconnected = true;
        injection.disconnectAfter =
            rng.uniformInt(injection.payload.size());
    }

    if (injection.mutated() || injection.disconnected) {
        ++stats_.faultsInjected;
        ++stats_.ingestFaults;
    }
    return injection;
}

long
FaultInjector::applyReadoutFaults(std::vector<long> &counts,
                                  const std::vector<double> &populations,
                                  std::uint64_t run, int attempt)
{
    if (plan_.readoutFlipRate <= 0.0 && plan_.readoutDropRate <= 0.0)
        return 0;
    qpulseRequire(populations.size() == counts.size(),
                  "readout fault populations/counts size mismatch");
    Rng rng(Rng::deriveSeed(
        Rng::deriveSeed(plan_.seed ^ kReadoutSalt, run),
        static_cast<std::uint64_t>(attempt)));
    const std::size_t dim = counts.size();
    long affected = 0;

    if (plan_.readoutFlipRate > 0.0 && dim > 1) {
        // Flipped shots land uniformly on one of the other states
        // (channel crosstalk / classification glitch).
        std::vector<long> incoming(dim, 0);
        for (std::size_t i = 0; i < dim; ++i) {
            const long flips =
                rng.binomial(counts[i], plan_.readoutFlipRate);
            counts[i] -= flips;
            for (long f = 0; f < flips; ++f) {
                std::size_t other = rng.uniformInt(dim - 1);
                if (other >= i)
                    ++other;
                ++incoming[other];
            }
            affected += flips;
        }
        for (std::size_t i = 0; i < dim; ++i)
            counts[i] += incoming[i];
    }

    if (plan_.readoutDropRate > 0.0) {
        // Dropped shots are re-triggered: redrawn from the run's true
        // populations so the total shot budget is preserved.
        long dropped = 0;
        for (std::size_t i = 0; i < dim; ++i) {
            const long drops =
                rng.binomial(counts[i], plan_.readoutDropRate);
            counts[i] -= drops;
            dropped += drops;
        }
        if (dropped > 0) {
            const std::vector<long> redraw =
                rng.multinomial(dropped, populations);
            for (std::size_t i = 0; i < dim; ++i)
                counts[i] += redraw[i];
        }
        affected += dropped;
    }

    if (affected > 0) {
        ++stats_.faultsInjected;
        stats_.readoutFaultShots += affected;
    }
    return affected;
}

} // namespace qpulse
