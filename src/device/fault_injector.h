/**
 * @file
 * Deterministic fault injection for the pulse execution stack.
 *
 * Real OpenPulse backends fail in ways the simulator's clean substrate
 * never does: shot batches are transiently rejected or time out, the
 * device drifts coherently between the daily calibrations (the
 * bench_ablation_drift model), AWG uploads corrupt samples (NaN
 * glitches, DAC saturation clips, dropped samples) and the readout
 * chain drops or flips outcomes. FaultInjector models all of these as
 * a *deterministic, seed-derived* fault plan: every decision is drawn
 * from an Rng stream derived (splitmix64, Rng::deriveSeed) from the
 * plan seed and the (run, attempt) coordinates — the same determinism
 * contract as the shot loop — so a fault-injected run is bit-identical
 * across thread counts and reruns.
 *
 * Plans come from code or from the QPULSE_FAULT_PLAN environment spec
 * (grammar in docs/ROBUSTNESS.md), e.g.
 *   QPULSE_FAULT_PLAN="seed=7,transient=0.2,drift=0.1,drift_khz=4000"
 */
#ifndef QPULSE_DEVICE_FAULT_INJECTOR_H
#define QPULSE_DEVICE_FAULT_INJECTOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "device/resilience_stats.h"
#include "pulse/schedule.h"

namespace qpulse {

/** Per-class fault probabilities (all default to "never"). */
struct FaultPlan
{
    std::uint64_t seed = 0x5EEDFA11ull;

    // Transient shot-batch failures (per attempt).
    double transientRate = 0.0; ///< Batch rejected by the backend.
    double timeoutRate = 0.0;   ///< Batch times out.

    // Coherent calibration drift: a spike appears at a run boundary
    // with probability driftRate and *persists* until recalibration
    // (FaultInjector::recalibrate), mirroring how a drifted device
    // stays drifted until the next calibration pass.
    double driftRate = 0.0;
    double driftFreqKhz = 0.0; ///< Frequency drift magnitude.
    double driftAmpError = 0.0; ///< Relative amplitude drift.

    // AWG sample corruption (per attempt, one Play instruction hit).
    double awgNanRate = 0.0;  ///< A sample becomes NaN.
    double awgClipRate = 0.0; ///< Samples saturate above |d| = 1.
    double awgDropRate = 0.0; ///< A chunk of samples is zeroed.

    // Readout channel faults (per shot, applied to sampled counts).
    double readoutFlipRate = 0.0; ///< Outcome flipped to another state.
    double readoutDropRate = 0.0; ///< Shot dropped and re-triggered.

    // Ingestion faults (per document, applied to the raw payload at
    // the request boundary before parsing; src/ingest/frontend.h).
    double ingestTruncateRate = 0.0;   ///< Payload tail dropped.
    double ingestCorruptRate = 0.0;    ///< One payload byte flipped.
    double ingestDupKeyRate = 0.0;     ///< Duplicate member key spliced in.
    double ingestDisconnectRate = 0.0; ///< Connection cut mid-stream.

    /** True when any fault class can fire. */
    bool enabled() const;

    /** Canonical spec string (parse(toString()) round-trips). */
    std::string toString() const;

    /**
     * Parse a "key=value,key=value" spec (',' or ';' separators).
     * Keys: seed, transient, timeout, drift, drift_khz, drift_amp,
     * awg_nan, awg_clip, awg_drop, ro_flip, ro_drop, ingest_trunc,
     * ingest_corrupt, ingest_dupkey, ingest_disc. Rates must lie in
     * [0, 1]. Returns ParseError (and leaves `out` untouched) on an
     * unknown key, bad number, or out-of-range rate.
     */
    static Status parse(const std::string &spec, FaultPlan &out);

    /**
     * Plan from QPULSE_FAULT_PLAN; a malformed spec warns on stderr
     * (env.h diagnostic) and yields a disabled plan rather than
     * silently half-applying.
     */
    static FaultPlan fromEnv();

    /**
     * The same rates with a seed derived (splitmix64) from this
     * plan's seed and `backend_index`, so every member of a backend
     * fleet draws its transients, timeouts and drift spikes from an
     * *independent* deterministic stream — backends fail and drift
     * independently, yet the whole fleet replays bit-identically.
     */
    FaultPlan deriveForBackend(std::uint64_t backend_index) const;
};

/**
 * Draws deterministic fault decisions from a FaultPlan.
 *
 * Not thread-safe: one injector belongs to one (sequential) execution
 * loop. The shot-level parallelism below it is unaffected because the
 * injector only acts at batch granularity.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan);

    const FaultPlan &plan() const { return plan_; }

    /** What the injector decided for one (run, attempt). */
    struct Injection
    {
        bool transient = false; ///< Batch fails transiently.
        bool timeout = false;   ///< Batch times out.
        bool corrupted = false; ///< AWG corruption applied.
        bool driftApplied = false; ///< Coherent drift applied.
        Schedule schedule;      ///< The schedule to actually execute.
    };

    /**
     * Deterministic injection for attempt `attempt` of run `run`:
     * draws the transient/timeout/corruption decisions from the
     * (seed, run, attempt) stream, rolls the per-run drift spike, and
     * returns the schedule with corruption and any active drift
     * applied (the clean schedule when nothing fired).
     */
    Injection inject(const Schedule &clean, std::uint64_t run,
                     int attempt);

    /** True while a drift spike is active (until recalibrate()). */
    bool driftActive() const { return driftActive_; }

    /**
     * Model a targeted Calibrator refresh: the device is re-tuned, so
     * the active drift spike disappears.
     */
    void recalibrate() { driftActive_ = false; }

    /**
     * Apply readout faults to aggregated counts (sum preserved):
     * flipped shots move to a uniformly-drawn other basis state,
     * dropped shots are re-triggered, i.e. redrawn from
     * `populations`. Deterministic per (run, attempt) stream.
     * @return Number of shots affected.
     */
    long applyReadoutFaults(std::vector<long> &counts,
                            const std::vector<double> &populations,
                            std::uint64_t run, int attempt);

    /** What the injector decided for one ingested document. */
    struct IngestInjection
    {
        bool truncated = false;    ///< Payload tail was dropped.
        bool corrupted = false;    ///< One payload byte was flipped.
        bool duplicatedKey = false; ///< Duplicate key spliced in.
        bool disconnected = false; ///< Connection cut mid-document.
        /** Bytes delivered before the cut (when disconnected). */
        std::size_t disconnectAfter = 0;
        /** The payload to actually deliver to the parser. */
        std::string payload;

        /** True when the payload bytes differ from the original. */
        bool mutated() const
        {
            return truncated || corrupted || duplicatedKey;
        }
    };

    /**
     * Deterministic ingest-boundary injection for document `request`:
     * draws truncation/corruption/duplicate-key mutations (at most one
     * fires, priority truncate > corrupt > dup-key) and an independent
     * mid-stream disconnect decision from the (seed, request) stream.
     * The returned payload is what the front end should feed the
     * parser; when `disconnected`, only the first `disconnectAfter`
     * bytes arrive before the connection dies.
     */
    IngestInjection injectIngest(const std::string &document,
                                 std::uint64_t request);

    /** Injected-side counters accumulated over this injector's life. */
    const ResilienceStats &stats() const { return stats_; }

  private:
    /** Roll (once per run) whether a drift spike starts. */
    void rollDrift(std::uint64_t run);

    /** Corrupt one Play instruction of `schedule` per the draw. */
    Schedule corrupt(const Schedule &clean, Rng &rng, bool nan,
                     bool clip, bool drop) const;

    /** Wrap drive/control Plays with the active drift error. */
    Schedule applyDrift(const Schedule &clean) const;

    FaultPlan plan_;
    bool driftActive_ = false;
    std::uint64_t lastDriftRollRun_ = ~0ull;
    ResilienceStats stats_;
};

} // namespace qpulse

#endif // QPULSE_DEVICE_FAULT_INJECTOR_H
