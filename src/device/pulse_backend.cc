#include "device/pulse_backend.h"

#include <atomic>
#include <cmath>
#include <mutex>

#include "common/constants.h"
#include "common/env.h"
#include "common/thread_pool.h"
#include "device/schedule_validation.h"
#include "synth/euler.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {

PulseBackend::PulseBackend(PulseLibrary library)
    : library_(std::move(library))
{
    buildCmdDef();
}

Schedule
PulseBackend::rzSchedule(std::size_t qubit, double lambda) const
{
    // Virtual-Z: an Rz(lambda) becomes a -lambda frame change on the
    // qubit's drive line and on every control line whose CR drive sits
    // in this qubit's frame (i.e. edges that *target* this qubit).
    Schedule schedule("rz");
    schedule.shiftPhase(driveChannel(qubit), -lambda);
    for (std::size_t i = 0; i < library_.crs.size(); ++i)
        if (library_.crs[i].target == qubit)
            schedule.shiftPhase(controlChannel(i), -lambda);
    return schedule;
}

Schedule
PulseBackend::crSchedule(std::size_t control, std::size_t target,
                         double theta) const
{
    const CrCalibration &cal = library_.cr(control, target);
    const std::size_t u_index =
        library_.controlChannelIndex(control, target);
    const double sign = theta >= 0.0 ? 1.0 : -1.0;
    const auto stretch = cal.stretchFor(theta);

    Schedule schedule("cr");
    // Calibrated corrections at this stretch angle.
    const CrCalibration::PhaseFixPoint fix = cal.fixAt(theta);
    // Axis straightening: virtual-Z sandwich on the target (free).
    schedule.appendBarrier(rzSchedule(target, fix.axis));

    long cursor = 0;
    const auto first = cal.halfPulse(stretch.flat, stretch.ampScale, sign);
    const auto second =
        cal.halfPulse(stretch.flat, stretch.ampScale, -sign);
    const auto x180 = library_.qubits[control].x180Pulse();

    schedule.playAt(cursor, controlChannel(u_index), first);
    cursor += first->duration();
    schedule.playAt(cursor, driveChannel(control), x180);
    cursor += x180->duration();
    schedule.playAt(cursor, controlChannel(u_index), second);
    cursor += second->duration();
    schedule.playAt(cursor, driveChannel(control), x180);

    // Calibrated phase corrections: undo the axis sandwich and apply
    // the Stark-like after-phases, interpolated from the per-angle
    // calibration table (those residuals grow with the pulse area but
    // not exactly linearly).
    schedule.appendBarrier(rzSchedule(control, fix.control));
    schedule.appendBarrier(rzSchedule(target, fix.target - fix.axis));
    return schedule;
}

Schedule
PulseBackend::cnotSchedule(std::size_t control, std::size_t target) const
{
    // CNOT = e^{-i pi/4} Rz(-90)_c . Rx(-90)_t . CR(90) (all factors
    // commute); scheduled as the target pre-rotation followed by the
    // echoed CR (Section 5.1).
    Schedule schedule("cx");
    schedule.appendBarrier(rzSchedule(control, -kPi / 2));
    const auto x90_neg = std::make_shared<ScaledWaveform>(
        library_.qubits[target].x90Pulse(), Complex{-1.0, 0.0});
    schedule.playAt(0, driveChannel(target), x90_neg);
    schedule.appendBarrier(crSchedule(control, target, kPi / 2));
    return schedule;
}

void
PulseBackend::defineQubitEntries(std::size_t qubit)
{
    const QubitCalibration &cal = library_.qubits[qubit];

    cmdDef_.define(GateType::Rz, {qubit}, [this, qubit](const Gate &g) {
        return rzSchedule(qubit, g.params[0]);
    });
    cmdDef_.define(GateType::U1, {qubit}, [this, qubit](const Gate &g) {
        return rzSchedule(qubit, g.params[0]);
    });
    cmdDef_.define(GateType::X90, {qubit}, [cal, qubit](const Gate &) {
        Schedule schedule("x90");
        schedule.play(driveChannel(qubit), cal.x90Pulse());
        return schedule;
    });
    cmdDef_.define(GateType::DirectX, {qubit},
                   [cal, qubit](const Gate &) {
                       Schedule schedule("direct_x");
                       schedule.play(driveChannel(qubit), cal.x180Pulse());
                       return schedule;
                   });
    cmdDef_.define(
        GateType::DirectRx, {qubit}, [cal, qubit](const Gate &g) {
            // Amplitude-scale the calibrated Rx(180) by theta/180deg
            // (Section 4.2); theta is wrapped into [-pi, pi] so the
            // scale never exceeds the calibrated amplitude.
            const double theta = wrapAngle(g.params[0]);
            Schedule schedule("direct_rx");
            if (std::abs(theta) > 1e-12)
                schedule.play(driveChannel(qubit),
                              std::make_shared<ScaledWaveform>(
                                  cal.x180Pulse(),
                                  Complex{theta / kPi, 0.0}));
            return schedule;
        });
    cmdDef_.define(GateType::I, {qubit}, [cal, qubit](const Gate &) {
        Schedule schedule("id");
        schedule.delay(driveChannel(qubit), cal.duration);
        return schedule;
    });

    const long measure_duration = library_.config.measureDuration;
    cmdDef_.define(GateType::Measure, {qubit},
                   [measure_duration, qubit](const Gate &) {
                       Schedule schedule("measure");
                       schedule.play(
                           measureChannel(qubit),
                           std::make_shared<GaussianSquareWaveform>(
                               measure_duration, 64.0, 256,
                               Complex{0.1, 0.0}));
                       schedule.acquire(acquireChannel(qubit),
                                        measure_duration);
                       return schedule;
                   });
}

void
PulseBackend::defineEdgeEntries(std::size_t edge_index)
{
    const CrCalibration &cal = library_.crs[edge_index];
    const std::size_t control = cal.control;
    const std::size_t target = cal.target;

    cmdDef_.define(GateType::Cnot, {control, target},
                   [this, control, target](const Gate &) {
                       return cnotSchedule(control, target);
                   });
    cmdDef_.define(GateType::Cr, {control, target},
                   [this, control, target](const Gate &g) {
                       return crSchedule(control, target, g.params[0]);
                   });
    cmdDef_.define(
        GateType::CrHalf, {control, target},
        [this, cal, edge_index, control, target](const Gate &g) {
            // A single (unechoed) CR pulse half; valid inside echo
            // patterns where the transpiler guarantees the partner
            // pulse. The net angle of a full echo with this half is
            // 2 * theta, so the stretch targets 2|theta|. The
            // calibrated corrections are applied pro-rated: the full
            // axis sandwich (a fixed property of the drive line) and
            // half of the Stark after-fixes, scaled with the pulse
            // area.
            const double theta = g.params[0];
            const auto stretch = cal.stretchFor(2.0 * std::abs(theta));
            const CrCalibration::PhaseFixPoint fix =
                cal.fixAt(2.0 * std::abs(theta));
            Schedule schedule("cr_half");
            schedule.appendBarrier(rzSchedule(target, fix.axis));
            schedule.play(controlChannel(edge_index),
                          cal.halfPulse(stretch.flat, stretch.ampScale,
                                        theta >= 0.0 ? 1.0 : -1.0));
            schedule.appendBarrier(
                rzSchedule(control, fix.control / 2.0));
            schedule.appendBarrier(rzSchedule(
                target, fix.target / 2.0 - fix.axis));
            return schedule;
        });
}

void
PulseBackend::buildCmdDef()
{
    for (std::size_t q = 0; q < library_.qubits.size(); ++q)
        defineQubitEntries(q);
    for (std::size_t e = 0; e < library_.crs.size(); ++e)
        defineEdgeEntries(e);
}

Schedule
PulseBackend::scheduleCircuit(const QuantumCircuit &circuit) const
{
    Schedule total("circuit");
    std::vector<long> cursor(config().numQubits, 0);

    for (const auto &gate : circuit.gates()) {
        if (gate.type == GateType::Barrier) {
            long latest = 0;
            for (long c : cursor)
                latest = std::max(latest, c);
            for (auto &c : cursor)
                c = latest;
            continue;
        }
        const Schedule piece = cmdDef_.schedule(gate);
        long start = 0;
        for (std::size_t q : gate.qubits)
            start = std::max(start, cursor[q]);
        const Schedule placed = piece.shifted(start);
        for (const auto &inst : placed.instructions())
            total.addInstruction(inst);
        const long advance = piece.duration();
        for (std::size_t q : gate.qubits)
            cursor[q] = start + advance;
    }
    return total;
}

Schedule
PulseBackend::probeSchedule(std::size_t qubit) const
{
    qpulseRequire(qubit < library_.qubits.size(),
                  "probeSchedule: qubit outside the backend");
    Schedule schedule("health_probe");
    schedule.play(driveChannel(qubit),
                  library_.qubits[qubit].x180Pulse());
    return schedule;
}

long
PulseBackend::gateDuration(const Gate &gate) const
{
    return cmdDef_.schedule(gate).duration();
}

std::size_t
PulseBackend::gatePulseCount(const Gate &gate) const
{
    const Schedule schedule = cmdDef_.schedule(gate);
    std::size_t count = 0;
    for (const auto &inst : schedule.instructions())
        if (inst.kind == PulseInstructionKind::Play &&
            inst.channel.kind != ChannelKind::Measure)
            ++count;
    return count;
}

PulseShotResult
PulseBackend::runShots(const PulseSimulator &sim,
                       const Schedule &schedule,
                       const PulseShotOptions &opts) const
{
    qpulseRequire(opts.shots >= 1, "runShots needs shots >= 1");

    telemetry::TraceSpan run_span("backend.run_shots");
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_runs =
        registry.counter("backend.runs");
    static telemetry::Counter &c_shots =
        registry.counter("backend.shots");
    static telemetry::Counter &c_batches =
        registry.counter("backend.shot_batches");
    c_runs.increment();
    c_shots.add(static_cast<std::uint64_t>(opts.shots));

    // Validation gate: a malformed schedule (NaN/Inf samples,
    // saturated envelopes, unknown channels, non-monotonic times)
    // must never reach the quantized cache keys or the
    // eigendecomposition hot path — reject it with its structured
    // reason here, once per batch, before any evolution.
    throwIfError(validateSchedule(schedule, library_.config));

    // Work on a copy so the shot run can attach its cache without
    // mutating the caller's simulator (the copy is a few small
    // matrices). Concurrent const evolve calls on one simulator are
    // safe; the shared cache is internally locked.
    PulseSimulator worker = sim;
    std::shared_ptr<PropagatorCache> cache;
    if (opts.useCache) {
        cache = opts.cache ? opts.cache
                           : std::make_shared<PropagatorCache>();
        worker.setPropagatorCache(cache);
    }
    worker.setCachingEnabled(opts.useCache);
    // The worker polls the token and any *wall-clock* deadline
    // mid-evolution. Virtual budgets are deliberately not checked
    // inside evolve (setInterrupt drops them): their charge happens at
    // batch admission below, and an admitted batch must run to
    // completion or the partial counts would depend on scheduling.
    worker.setInterrupt(opts.token, opts.deadline);
    const PropagatorCacheStats before =
        cache ? cache->stats() : PropagatorCacheStats{};

    const std::size_t dim = worker.model().dim();
    Vector ground(dim);
    ground[0] = Complex{1.0, 0.0};

    PulseShotResult result;
    result.shotsRequested = opts.shots;
    result.counts.assign(dim, 0);
    result.populations.assign(dim, 0.0);

    static telemetry::Counter &c_interrupted =
        registry.counter("backend.runs_interrupted");
    const auto finishInterrupted = [&](Status reason) {
        result.partial = true;
        result.interruption = std::move(reason);
        c_interrupted.increment();
    };

    // Pre-start gate: a job already cancelled or expired returns an
    // empty partial result instead of burning the warm-up evolution.
    if (const Status gate = opts.deadline.check(opts.token);
        !gate.ok()) {
        finishInterrupted(gate);
        return result;
    }

    try {
        result.populations =
            worker.populations(worker.evolveState(schedule, ground));
    } catch (const StatusError &err) {
        if (err.code() != ErrorCode::Cancelled &&
            err.code() != ErrorCode::DeadlineExceeded)
            throw;
        finishInterrupted(err.status());
        return result;
    }

    std::vector<std::atomic<long>> counts(dim);
    const std::size_t shots = static_cast<std::size_t>(opts.shots);
    // Shots are dispatched in a fixed number of batches (independent
    // of the worker count) so that (a) every "backend.shot_batch"
    // span covers enough work to be visible in a trace and (b) the
    // batch counter is bit-identical across QPULSE_THREADS settings.
    const std::size_t batches = std::min(shots, kShotBatches);
    c_batches.add(batches);

    // Panel width for the batched evolution inside each shot chunk:
    // the option wins, then the QPULSE_BATCH environment knob (warn-
    // and-clamp diagnosed parse, common/env.h), then the default.
    // Width 1 selects the looped per-shot reference path.
    const std::size_t batch_width =
        opts.batchWidth > 0 ? opts.batchWidth : envBatchWidth();

    // Virtual-time admission: charge every batch's simulated-sample
    // cost sequentially, *before* the parallel dispatch, so the set of
    // admitted batches — and with it shotsCompleted and the partial
    // counts — is a pure function of the workload, bit-identical
    // across maxThreads settings. Wall-clock/unlimited deadlines admit
    // everything here; the per-shot checks inside the batch body (and
    // the worker's mid-evolve polls) bound them instead.
    const std::uint64_t sample_cost = static_cast<std::uint64_t>(
        std::max<long>(schedule.duration(), 1));
    std::vector<char> admitted(batches, 1);
    if (opts.deadline.isVirtual())
        for (std::size_t batch = 0; batch < batches; ++batch) {
            const std::uint64_t batch_shots = static_cast<std::uint64_t>(
                (batch + 1) * shots / batches - batch * shots / batches);
            admitted[batch] =
                opts.deadline.tryCharge(batch_shots * sample_cost) ? 1
                                                                   : 0;
        }

    std::atomic<long> completed{0};
    std::atomic<bool> interrupted{false};
    std::mutex interrupt_mutex;
    Status interrupt_reason;
    parallelFor(
        batches,
        [&](std::size_t batch) {
            if (!admitted[batch])
                return; // Refused at virtual admission: never starts.
            telemetry::TraceSpan batch_span("backend.shot_batch");
            const std::size_t begin = batch * shots / batches;
            const std::size_t end = (batch + 1) * shots / batches;
            try {
                // Commit one shot's draw into the shared tallies.
                const auto commitShot = [&](std::size_t shot,
                                            const Vector &out) {
                    Rng rng(Rng::deriveSeed(opts.seed, shot));
                    const std::size_t outcome =
                        rng.discrete(worker.populations(out));
                    counts[outcome].fetch_add(1,
                                              std::memory_order_relaxed);
                    completed.fetch_add(1, std::memory_order_relaxed);
                };
                if (batch_width <= 1) {
                    // Looped per-shot reference path (QPULSE_BATCH=1).
                    for (std::size_t shot = begin; shot < end; ++shot) {
                        worker.checkInterrupt();
                        // Every shot re-evolves the schedule: with the
                        // cache hot this is matvec-only, and per-shot
                        // noise sources can slot in here without
                        // changing the sampling contract. The seed
                        // derivation stays per-shot, so sampled counts
                        // are independent of the batching.
                        const Vector out =
                            worker.evolveState(schedule, ground);
                        commitShot(shot, out);
                    }
                } else {
                    // Batched path: pack up to batch_width ground
                    // states into one panel and evolve them through
                    // the schedule together — one propagator
                    // computation per sample shared by the whole
                    // panel. Per-shot RNG streams are untouched (the
                    // seed still derives from the absolute shot
                    // index), so counts are independent of the panel
                    // width and of maxThreads. The per-thread
                    // workspace keeps the loop heap-silent once warm.
                    Workspace &ws = tlsWorkspace();
                    Vector &shot_state = ws.vector(0, dim);
                    std::size_t shot = begin;
                    while (shot < end) {
                        worker.checkInterrupt();
                        const std::size_t width =
                            std::min(batch_width, end - shot);
                        StatePanel &panel =
                            ws.statePanel(1, dim, width);
                        panel.fillColumns(ground);
                        worker.evolveStatesBatched(schedule, panel,
                                                   ws);
                        for (std::size_t c = 0; c < width;
                             ++c, ++shot) {
                            panel.getColumn(c, shot_state);
                            commitShot(shot, shot_state);
                        }
                    }
                }
            } catch (const StatusError &err) {
                // An interrupt mid-batch keeps the shots already
                // sampled (they are complete, valid draws) and records
                // the first reason; anything else propagates.
                if (err.code() != ErrorCode::Cancelled &&
                    err.code() != ErrorCode::DeadlineExceeded)
                    throw;
                std::lock_guard<std::mutex> lock(interrupt_mutex);
                if (!interrupted.load(std::memory_order_relaxed)) {
                    interrupt_reason = err.status();
                    interrupted.store(true, std::memory_order_relaxed);
                }
            }
        },
        opts.maxThreads);

    for (std::size_t i = 0; i < dim; ++i)
        result.counts[i] = counts[i].load(std::memory_order_relaxed);
    result.shotsCompleted = completed.load(std::memory_order_relaxed);
    if (interrupted.load(std::memory_order_relaxed)) {
        finishInterrupted(interrupt_reason);
    } else if (result.shotsCompleted < opts.shots) {
        // Only virtual admission refusals can get here: deterministic
        // partial result, flagged with the budget's structured reason.
        finishInterrupted(Status::error(
            ErrorCode::DeadlineExceeded,
            "virtual-time budget exhausted after " +
                std::to_string(result.shotsCompleted) + " of " +
                std::to_string(opts.shots) + " shots"));
    }
    if (cache) {
        const PropagatorCacheStats after = cache->stats();
        result.cacheStats.hits = after.hits - before.hits;
        result.cacheStats.misses = after.misses - before.misses;
        result.cacheStats.evictions =
            after.evictions - before.evictions;
    }
    return result;
}

double
PulseBackend::gatePeakAmplitude(const Gate &gate) const
{
    const Schedule schedule = cmdDef_.schedule(gate);
    double peak = 0.0;
    for (const auto &inst : schedule.instructions())
        if (inst.kind == PulseInstructionKind::Play &&
            inst.channel.kind != ChannelKind::Measure)
            peak = std::max(peak, inst.waveform->peakAmplitude());
    return peak;
}

} // namespace qpulse
