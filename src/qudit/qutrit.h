/**
 * @file
 * Qutrit (d = 3) operations library — the Section 7 contribution as a
 * reusable component. Standard basis gates only address the qubit
 * subspace; with pulse-level control the f12 and f02/2 transitions
 * become available, enabling base-3 counters, mod-3 parity
 * accumulators and leakage detection.
 *
 * This module provides the ideal qutrit unitaries (for verification),
 * and QutritRig, which owns a calibrated single-transmon setup (pulse
 * library + simulator + LDA readout) and exposes the counter and
 * parity-check applications of Section 7.2.
 */
#ifndef QPULSE_QUDIT_QUTRIT_H
#define QPULSE_QUDIT_QUTRIT_H

#include "device/calibration.h"
#include "readout/readout.h"

namespace qpulse {

namespace qutrit {

/** Ideal pi rotation on the |0>-|1> subspace (phase convention of a
 *  resonant Rx(pi): off-diagonals -i). */
Matrix x01();

/** Ideal pi rotation on the |1>-|2> subspace. */
Matrix x12();

/** Ideal pi rotation on the |0>-|2> subspace (two-photon). */
Matrix x02();

/** Ideal cyclic increment permutation |n> -> |n+1 mod 3>. */
Matrix increment();

/** One full counter cycle x02 . x12 . x01: returns the ground state
 *  to itself (up to phase) after three hops — the counter's operating
 *  condition. (Other levels are permuted, so this is not an identity;
 *  the counter always starts from |0>.) */
Matrix cycle();

} // namespace qutrit

/**
 * A calibrated single-transmon qutrit test rig.
 */
class QutritRig
{
  public:
    /** Calibrate the rig on the given single-qubit backend config. */
    explicit QutritRig(const BackendConfig &config,
                       std::uint64_t readout_seed = 0x0D17);

    const QubitCalibration &calibration() const { return calibration_; }
    const PulseSimulator &simulator() const { return simulator_; }

    /**
     * The single hop pulse advancing the counter from level `phase`
     * (mod 3): phase 0 -> the f01 pulse, 1 -> the f12 sideband,
     * 2 -> the two-photon f02/2 pulse. The controller tracks the
     * phase classically, exactly as a counter does.
     */
    Schedule hopSchedule(int phase) const;

    /** One full counter cycle (three hops, back to ground). */
    Schedule cycleSchedule() const;

    /** Schedule performing `count` full cycles back to back. */
    Schedule counterSchedule(int count) const;

    /**
     * Run `cycles` full counter cycles from |0> with decoherence and
     * return the final level populations {P0, P1, P2} (ideally all
     * weight back on |0>).
     */
    std::vector<double> runCounter(int cycles) const;

    /**
     * Mod-3 parity accumulator (Section 7.2): one hop per set bit of
     * the stream (idling on clear bits), with the hop phase tracked
     * classically. Returns the final populations; the ideal outcome
     * is the level equal to popcount mod 3.
     */
    std::vector<double> runParityAccumulator(
        const std::vector<bool> &bits) const;

    /**
     * Classify `shots` readout shots drawn from the populations with
     * the trained LDA discriminator; returns per-level counts.
     */
    std::vector<long> classifyShots(const std::vector<double> &populations,
                                    long shots, Rng &rng) const;

    /**
     * Leakage detection (Section 7.2): probability that a state is
     * classified as |2>, i.e. outside the qubit subspace.
     */
    double leakageProbability(const std::vector<double> &populations,
                              long shots, Rng &rng) const;

  private:
    BackendConfig config_;
    QubitCalibration calibration_;
    PulseSimulator simulator_;
    IqReadoutModel readout_;
    LdaClassifier discriminator_;
};

} // namespace qpulse

#endif // QPULSE_QUDIT_QUTRIT_H
