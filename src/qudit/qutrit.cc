#include "qudit/qutrit.h"

#include <memory>

#include "common/constants.h"

namespace qpulse {

namespace qutrit {

Matrix
x01()
{
    return Matrix{{0, Complex{0, -1}, 0},
                  {Complex{0, -1}, 0, 0},
                  {0, 0, 1}};
}

Matrix
x12()
{
    return Matrix{{1, 0, 0},
                  {0, 0, Complex{0, -1}},
                  {0, Complex{0, -1}, 0}};
}

Matrix
x02()
{
    return Matrix{{0, 0, Complex{0, -1}},
                  {0, 1, 0},
                  {Complex{0, -1}, 0, 0}};
}

Matrix
increment()
{
    return Matrix{{0, 0, 1}, {1, 0, 0}, {0, 1, 0}};
}

Matrix
cycle()
{
    return x02() * x12() * x01();
}

} // namespace qutrit

QutritRig::QutritRig(const BackendConfig &config,
                     std::uint64_t readout_seed)
    : config_(config),
      calibration_([&] {
          Calibrator calibrator(config);
          QubitCalibration cal = calibrator.calibrateQubit(0);
          calibrator.calibrateQutrit(0, cal);
          return cal;
      }()),
      simulator_(TransmonModel::single(config.qubits[0], 3)),
      readout_(IqReadoutModel::qutritDefault())
{
    // The counter/parity experiments replay the same hop and cycle
    // schedules hundreds of times; a rig-lifetime propagator cache
    // makes every replay after the first matmul-only.
    simulator_.setPropagatorCache(std::make_shared<PropagatorCache>());
    // Train the LDA discriminator on labelled calibration shots.
    Rng rng(readout_seed);
    std::vector<IqPoint> points;
    std::vector<std::size_t> labels;
    for (std::size_t level = 0; level < 3; ++level)
        for (int k = 0; k < 1500; ++k) {
            points.push_back(readout_.sampleShot(level, rng));
            labels.push_back(level);
        }
    discriminator_.fit(points, labels);
}

Schedule
QutritRig::hopSchedule(int phase) const
{
    const double alpha = config_.qubits[0].anharmonicityGhz;
    Schedule schedule("hop");
    switch (((phase % 3) + 3) % 3) {
      case 0:
        schedule.play(driveChannel(0), calibration_.x180Pulse());
        break;
      case 1:
        schedule.play(driveChannel(0),
                      std::make_shared<SidebandWaveform>(
                          std::make_shared<GaussianWaveform>(
                              calibration_.qutritDuration,
                              calibration_.sigma,
                              Complex{calibration_.x12Amp, 0.0}),
                          alpha));
        break;
      default:
        schedule.play(driveChannel(0),
                      std::make_shared<SidebandWaveform>(
                          std::make_shared<GaussianWaveform>(
                              calibration_.qutritDuration,
                              calibration_.sigma,
                              Complex{calibration_.x02Amp, 0.0}),
                          alpha / 2.0));
        break;
    }
    return schedule;
}

Schedule
QutritRig::cycleSchedule() const
{
    Schedule total("cycle");
    for (int hop = 0; hop < 3; ++hop)
        total.appendBarrier(hopSchedule(hop));
    return total;
}

Schedule
QutritRig::counterSchedule(int count) const
{
    Schedule total("counter");
    const Schedule one = cycleSchedule();
    for (int k = 0; k < count; ++k)
        total.appendBarrier(one);
    return total;
}

std::vector<double>
QutritRig::runCounter(int cycles) const
{
    Matrix rho(3, 3);
    rho(0, 0) = Complex{1.0, 0.0};
    const Schedule one = cycleSchedule();
    for (int cycle = 0; cycle < cycles; ++cycle)
        rho = simulator_.evolveLindblad(one, rho);
    return {rho(0, 0).real(), rho(1, 1).real(), rho(2, 2).real()};
}

std::vector<double>
QutritRig::runParityAccumulator(const std::vector<bool> &bits) const
{
    Matrix rho(3, 3);
    rho(0, 0) = Complex{1.0, 0.0};
    const long hop_duration = hopSchedule(0).duration();
    int count = 0;
    for (bool bit : bits) {
        if (bit) {
            rho = simulator_.evolveLindblad(hopSchedule(count % 3),
                                            rho);
            ++count;
        } else {
            // A zero bit idles for the same wall-clock time.
            Schedule idle("idle");
            idle.delay(driveChannel(0), hop_duration);
            rho = simulator_.evolveLindblad(idle, rho);
        }
    }
    return {rho(0, 0).real(), rho(1, 1).real(), rho(2, 2).real()};
}

std::vector<long>
QutritRig::classifyShots(const std::vector<double> &populations,
                         long shots, Rng &rng) const
{
    std::vector<long> counts(3, 0);
    for (long shot = 0; shot < shots; ++shot)
        ++counts[discriminator_.predict(
            readout_.sampleShot(populations, rng))];
    return counts;
}

double
QutritRig::leakageProbability(const std::vector<double> &populations,
                              long shots, Rng &rng) const
{
    const std::vector<long> counts =
        classifyShots(populations, shots, rng);
    return static_cast<double>(counts[2]) / static_cast<double>(shots);
}

} // namespace qpulse
