#include "rb/randomized_benchmarking.h"

#include <cmath>

#include "common/constants.h"
#include "common/thread_pool.h"
#include "linalg/gates.h"
#include "synth/euler.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {

QuantumCircuit
rbSequence(int length, std::size_t qubit, std::size_t n_qubits, Rng &rng)
{
    qpulseRequire(length >= 1, "rbSequence needs length >= 1");
    QuantumCircuit circuit(n_qubits);
    Matrix product = Matrix::identity(2);
    for (int k = 0; k + 1 < length; ++k) {
        // Haar-ish random U3: theta from arccos distribution,
        // phi/lambda uniform. Barriers keep the compiler from fusing
        // the sequence into a single gate — each element must be
        // executed as its own pulse(s), as in a real RB experiment.
        const double theta = std::acos(1.0 - 2.0 * rng.uniform());
        const double phi = rng.uniform(-kPi, kPi);
        const double lambda = rng.uniform(-kPi, kPi);
        circuit.u3(theta, phi, lambda, qubit);
        circuit.barrier();
        product = gates::u3(theta, phi, lambda) * product;
    }
    // Terminal inverting unitary.
    const Matrix inverse = product.adjoint();
    const U3Angles angles = u3FromUnitary(inverse);
    circuit.u3(angles.theta, angles.phi, angles.lambda, qubit);
    return circuit;
}

RbResult
runRb(const std::shared_ptr<const PulseBackend> &backend, RbMode mode,
      const RbConfig &config)
{
    telemetry::TraceSpan run_span("rb.run");
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_runs = registry.counter("rb.runs");
    static telemetry::Counter &c_cells = registry.counter("rb.cells");
    c_runs.increment();

    const CompileMode compile_mode = mode == RbMode::Standard
        ? CompileMode::Standard
        : CompileMode::Optimized;
    PulseCompiler compiler(backend, compile_mode);
    PulseCompiler standard_compiler(backend, CompileMode::Standard);

    // optimized-slow: optimized pulses, but every gate is charged the
    // standard flow's U3 duration (NO-OP idling inserted at the pulse
    // level), isolating error source #1 from #2/#3 (Section 8.3).
    NoiseInfoProvider provider = compiler.noiseProvider();
    if (mode == RbMode::OptimizedSlow) {
        const long standard_u3_duration =
            2 * backend->config().pulseDuration;
        const NoiseInfoProvider inner = provider;
        provider = [inner, standard_u3_duration](const Gate &gate) {
            GateNoiseInfo info = inner(gate);
            if (!gateIsDirective(gate.type) && gate.qubits.size() == 1 &&
                info.duration > 0)
                info.duration =
                    std::max(info.duration, standard_u3_duration);
            return info;
        };
    }
    DensitySimulator simulator(backend->config(), std::move(provider));

    Rng rng(config.seed);
    RbResult result;
    result.mode = mode;

    std::vector<int> lengths;
    for (int length = config.minLength; length <= config.maxLength;
         length += config.lengthStride)
        lengths.push_back(length);

    std::vector<double> ks, survivals;
    if (config.parallelSequences) {
        // Batched path: every (length, seq) cell gets its own Rng
        // stream, so the transpile + noisy-run + sampling pipeline —
        // the dominant cost — fans out over the thread pool while
        // staying deterministic for any thread count.
        const std::size_t cells = lengths.size() *
            static_cast<std::size_t>(config.sequencesPerLength);
        std::vector<double> cell_survival(cells, 0.0);

        // RB-under-faults: the density path always completes, so the
        // batch-level fault classes reduce to deterministic retry
        // accounting plus readout perturbation of the sampled counts.
        // AWG/drift classes are pulse-level (they act on schedules)
        // and are masked off so the injected-side stats stay honest;
        // the unconditional draw order keeps the transient/timeout
        // decisions identical to the full plan's.
        const bool inject_faults = config.faultPlan.enabled();
        FaultPlan cell_plan = config.faultPlan;
        cell_plan.awgNanRate = 0.0;
        cell_plan.awgClipRate = 0.0;
        cell_plan.awgDropRate = 0.0;
        cell_plan.driftRate = 0.0;
        std::vector<ResilienceStats> cell_stats(
            inject_faults ? cells : 0);

        c_cells.add(cells);
        parallelFor(cells, [&](std::size_t cell) {
            telemetry::TraceSpan cell_span("rb.cell");
            const int length =
                lengths[cell / static_cast<std::size_t>(
                                   config.sequencesPerLength)];
            Rng cell_rng(Rng::deriveSeed(config.seed, cell));
            QuantumCircuit circuit = rbSequence(length, 0, 1, cell_rng);
            circuit.measure(0);
            const QuantumCircuit compiled = compiler.transpile(circuit);
            const NoisyRunResult run = simulator.run(compiled);
            std::vector<long> counts =
                simulator.sampleCounts(run, config.shots, cell_rng);
            if (inject_faults) {
                // One injector per cell, keyed on the cell index, so
                // the accounting is independent of thread count. A
                // transient/timeout decision "rejects the batch" and
                // charges a retry out of the bounded budget; a cell
                // that exhausts it keeps its (always-available)
                // density result and is counted as degraded.
                FaultInjector injector(cell_plan);
                ResilienceStats &stats = cell_stats[cell];
                const Schedule batch_marker;
                int attempt = 0;
                for (; attempt < config.faultMaxAttempts; ++attempt) {
                    ++stats.attempts;
                    if (attempt > 0)
                        ++stats.retries;
                    const FaultInjector::Injection injection =
                        injector.inject(batch_marker, cell, attempt);
                    if (!injection.transient && !injection.timeout)
                        break;
                    ++stats.faultsDetected;
                }
                if (attempt == config.faultMaxAttempts) {
                    ++stats.degradedRuns;
                    attempt = config.faultMaxAttempts - 1;
                }
                stats.readoutFaultShots += injector.applyReadoutFaults(
                    counts, run.probs, cell, attempt);
                stats.transientFailures =
                    injector.stats().transientFailures;
                stats.timeouts = injector.stats().timeouts;
                stats.faultsInjected = injector.stats().faultsInjected;
            }
            cell_survival[cell] = static_cast<double>(counts[0]) /
                                  static_cast<double>(config.shots);
        });
        for (const ResilienceStats &stats : cell_stats)
            result.resilience += stats;
        for (std::size_t li = 0; li < lengths.size(); ++li) {
            double total = 0.0;
            for (int seq = 0; seq < config.sequencesPerLength; ++seq)
                total += cell_survival
                    [li * static_cast<std::size_t>(
                              config.sequencesPerLength) +
                     static_cast<std::size_t>(seq)];
            const double survival =
                total / static_cast<double>(config.sequencesPerLength);
            result.decay.push_back({lengths[li], survival});
            ks.push_back(static_cast<double>(lengths[li]));
            survivals.push_back(survival);
        }
    } else {
        // Sequential path: consumes the single rng stream in program
        // order — bit-identical to the historical implementation.
        for (const int length : lengths) {
            double total = 0.0;
            for (int seq = 0; seq < config.sequencesPerLength; ++seq) {
                telemetry::TraceSpan cell_span("rb.cell");
                c_cells.increment();
                QuantumCircuit circuit = rbSequence(length, 0, 1, rng);
                circuit.measure(0);
                const QuantumCircuit compiled =
                    compiler.transpile(circuit);
                const NoisyRunResult run = simulator.run(compiled);
                const std::vector<long> counts =
                    simulator.sampleCounts(run, config.shots, rng);
                total += static_cast<double>(counts[0]) /
                         static_cast<double>(config.shots);
            }
            const double survival =
                total / static_cast<double>(config.sequencesPerLength);
            result.decay.push_back({length, survival});
            ks.push_back(static_cast<double>(length));
            survivals.push_back(survival);
        }
    }

    // In the slow-decay regime a free-offset exponential fit is
    // ill-conditioned, so pin the offset to the mixed-state asymptote
    // through the readout: P(read 0 | maximally mixed).
    const ReadoutError &readout = backend->config().readout[0];
    const double asymptote =
        ((1.0 - readout.probFlip0to1) + readout.probFlip1to0) / 2.0;
    const FitResult fit =
        fitExponentialDecayFixedOffset(ks, survivals, asymptote);
    result.amplitude = fit.params[0];
    result.gateFidelity = fit.params[1];
    result.spamOffset = fit.params[2];
    return result;
}

double
coherenceLimitError(double duration_ns, double t1_us, double t2_us)
{
    // Average gate error of an identity-intent gate limited purely by
    // relaxation/dephasing over its duration (cf. Naik et al., Eq. 24):
    // E = 1/2 (1 - e^{-t/T1}/3 - 2 e^{-t/T2}/3) to first order
    //   ~ t/6 (1/T1) + t/3 (1/T2).
    const double t1_ns = t1_us * 1000.0;
    const double t2_ns = t2_us * 1000.0;
    return 0.5 * (1.0 - std::exp(-duration_ns / t1_ns) / 3.0 -
                  2.0 * std::exp(-duration_ns / t2_ns) / 3.0);
}

} // namespace qpulse
